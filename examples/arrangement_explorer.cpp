// Arrangement explorer: renders the physical placement of any arrangement as
// ASCII art and prints its topology metrics side by side — handy for
// understanding why the HexaMesh beats the grid.
//
//   ./arrangement_explorer [grid|brickwall|hexamesh] [N]
//   ./arrangement_explorer all [N]        (compare all three)
//       --telemetry         print the metrics snapshot on exit
//       --trace out.json    record a Chrome trace (load in Perfetto)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cli_util.hpp"
#include "core/arrangement.hpp"
#include "core/evaluator.hpp"
#include "core/shape.hpp"
#include "graph/algorithms.hpp"
#include "partition/partitioner.hpp"

namespace {

using namespace hm::core;

void show(ArrangementType type, std::size_t n) {
  const Arrangement arr = make_arrangement(type, n);
  const double ac = kDefaultTotalAreaMm2 / static_cast<double>(n);
  const ChipletShape shape = solve_shape(type, {ac, kDefaultPowerFraction});
  const auto placement = arr.placement(shape.width, shape.height);
  const auto bb = placement.bounding_box();
  const auto stats = arr.neighbor_stats();

  std::printf("--- %s ---\n", arr.name().c_str());
  std::printf("%s", placement.to_ascii(64).c_str());
  std::printf("chiplets %.2f x %.2f mm | footprint %.1f x %.1f mm | "
              "utilization %.0f%%\n",
              shape.width, shape.height, bb.w, bb.h,
              100.0 * placement.utilization());
  std::printf("links %zu | neighbours %zu/%.2f/%zu | diameter %d | "
              "bisection %zu links\n\n",
              arr.graph().edge_count(), stats.min, stats.avg, stats.max,
              hm::graph::diameter(arr.graph()),
              hm::partition::bisection_width(arr.graph()));
}

}  // namespace

int main(int argc, char** argv) {
  const auto tcli = hm::cli::TelemetryCli::extract(argc, argv);
  tcli.begin();
  const std::string which = argc > 1 ? argv[1] : "all";
  // PR 4's checked parser, now hoisted into examples/cli_util.hpp and
  // shared by every example: rejects garbage, negatives (which strtoul
  // would wrap into huge counts) and overflow up front; degenerate sizes
  // like 0 fall through to make_arrangement, which reports one uniform
  // error for every family.
  std::size_t n = 37;
  if (argc > 2) {
    if (!hm::cli::parse_size(argv[2], 0, hm::cli::kMaxChiplets, &n)) {
      std::fprintf(stderr, "N must be a chiplet count in [0, %zu]\n",
                   hm::cli::kMaxChiplets);
      return 1;
    }
  }

  try {
    if (which == "grid") {
      show(ArrangementType::kGrid, n);
    } else if (which == "brickwall") {
      show(ArrangementType::kBrickwall, n);
    } else if (which == "hexamesh") {
      show(ArrangementType::kHexaMesh, n);
    } else if (which == "all") {
      show(ArrangementType::kGrid, n);
      show(ArrangementType::kBrickwall, n);
      show(ArrangementType::kHexaMesh, n);
    } else {
      std::fprintf(stderr,
                   "usage: %s [grid|brickwall|hexamesh|all] [N]\n", argv[0]);
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  tcli.finish();
  return 0;
}
