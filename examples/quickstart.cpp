// Quickstart: build a 37-chiplet HexaMesh, inspect its topology, solve the
// chiplet shape, estimate the D2D link bandwidth, and run the cycle-accurate
// evaluation — the whole public API in ~60 lines.
//
//   ./quickstart [N]        (default N = 37, a regular 3-ring HexaMesh)
//       --telemetry         print the metrics snapshot on exit
//       --trace out.json    record a Chrome trace (load in Perfetto)
#include <cstdio>
#include <cstdlib>

#include "cli_util.hpp"
#include "core/evaluator.hpp"
#include "core/hexamesh.hpp"
#include "core/link_model.hpp"
#include "core/shape.hpp"
#include "graph/algorithms.hpp"

int main(int argc, char** argv) {
  using namespace hm::core;
  const auto tcli = hm::cli::TelemetryCli::extract(argc, argv);
  tcli.begin();
  const std::size_t n =
      argc > 1 ? hm::cli::require_size(argv[1], "N", 1, hm::cli::kMaxChiplets)
               : 37;

  // 1. Build the arrangement (regular when N = 1+3r(r+1), else irregular).
  const Arrangement arr = make_hexamesh(n);
  std::printf("arrangement: %s\n", arr.name().c_str());
  const auto stats = arr.neighbor_stats();
  std::printf("topology:    %zu D2D links, neighbours min/avg/max = "
              "%zu/%.2f/%zu, diameter = %d hops\n",
              arr.graph().edge_count(), stats.min, stats.avg, stats.max,
              hm::graph::diameter(arr.graph()));

  // 2. Solve the chiplet shape for the paper's 800 mm^2 budget.
  const double chiplet_area = kDefaultTotalAreaMm2 / static_cast<double>(n);
  const ChipletShape shape =
      solve_shape(ArrangementType::kHexaMesh, {chiplet_area, 0.4});
  std::printf("chiplet:     %.2f x %.2f mm (A_C = %.1f mm^2), "
              "D_B = %.2f mm, A_B = %.2f mm^2/link\n",
              shape.width, shape.height, chiplet_area,
              shape.bump_edge_distance, shape.link_sector_area);

  // 3. Estimate the per-link bandwidth with the D2D link model.
  LinkModelParams lp;
  lp.link_area_mm2 = shape.link_sector_area;
  const LinkEstimate link = estimate_link(lp);
  std::printf("D2D link:    %lld wires (%lld data) -> %.0f Gb/s at 16 GHz\n",
              static_cast<long long>(link.total_wires),
              static_cast<long long>(link.data_wires),
              link.bandwidth_bps / 1e9);

  if (n < 2) {
    tcli.finish();
    return 0;
  }

  // 4. Cycle-accurate evaluation (zero-load latency + saturation throughput).
  EvaluationParams params;
  params.latency_measure = 6000;      // quick demo settings
  params.throughput_warmup = 5000;
  params.throughput_measure = 5000;
  const EvaluationResult r = evaluate(arr, params);
  std::printf("simulation:  zero-load latency %.1f cycles, saturation "
              "%.1f%% of full rate = %.2f Tb/s\n",
              r.zero_load_latency_cycles, 100.0 * r.saturation_fraction,
              r.saturation_throughput_bps / 1e12);
  tcli.finish();
  return 0;
}
