// I/O floorplan example (Sec. III-A, Fig. 2): place I/O chiplets on the
// perimeter of a compute arrangement, render the combined floorplan, and
// simulate hotspot traffic toward the I/O chiplets on the extended graph.
//
//   ./io_floorplan [grid|brickwall|hexamesh] [N] [io_depth_mm]
//       --telemetry         print the metrics snapshot on exit
//       --trace out.json    record a Chrome trace (load in Perfetto)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cli_util.hpp"
#include "core/evaluator.hpp"
#include "core/io_chiplets.hpp"
#include "core/shape.hpp"
#include "graph/algorithms.hpp"
#include "noc/simulator.hpp"

int main(int argc, char** argv) {
  using namespace hm::core;
  const auto tcli = hm::cli::TelemetryCli::extract(argc, argv);
  tcli.begin();
  const std::string which = argc > 1 ? argv[1] : "hexamesh";
  const std::size_t n =
      argc > 2 ? hm::cli::require_size(argv[2], "N", 1, hm::cli::kMaxChiplets)
               : 19;

  ArrangementType type;
  if (which == "grid") {
    type = ArrangementType::kGrid;
  } else if (which == "brickwall") {
    type = ArrangementType::kBrickwall;
  } else if (which == "hexamesh") {
    type = ArrangementType::kHexaMesh;
  } else {
    std::fprintf(stderr, "usage: %s [grid|brickwall|hexamesh] [N] [depth]\n",
                 argv[0]);
    return 1;
  }

  const Arrangement arr = make_arrangement(type, n);
  const double ac = kDefaultTotalAreaMm2 / static_cast<double>(n);
  const ChipletShape shape = solve_shape(type, {ac, kDefaultPowerFraction});
  const double io_depth =
      argc > 3 ? hm::cli::require_double(argv[3], "io_depth_mm", 0.01, 1000.0)
               : shape.height / 2.0;

  const IoFloorplan plan =
      place_io_chiplets(arr, shape.width, shape.height, io_depth);
  std::printf("%s + %zu perimeter I/O chiplets (depth %.2f mm)\n\n",
              arr.name().c_str(), plan.io.size(), io_depth);
  std::printf("%s\n", plan.combined_placement().to_ascii(70).c_str());
  std::printf("extended graph: %zu vertices, %zu edges, connected: %s\n",
              plan.extended.node_count(), plan.extended.edge_count(),
              hm::graph::is_connected(plan.extended) ? "yes" : "no");

  if (plan.extended.node_count() < 2) {
    tcli.finish();
    return 0;
  }

  // Hotspot traffic: 30% of packets target the first I/O chiplet's
  // endpoints (e.g. a memory controller), the rest are uniform.
  hm::noc::TrafficSpec spec;
  spec.pattern = hm::noc::TrafficPattern::kHotspot;
  spec.hotspot_fraction = 0.3;
  const auto first_io = static_cast<std::uint16_t>(2 * n);  // endpoint ids
  spec.hotspots = {first_io, static_cast<std::uint16_t>(first_io + 1)};

  hm::noc::SimConfig cfg;
  hm::noc::Simulator sim(plan.extended, cfg);
  sim.set_traffic(spec);
  const auto lat = sim.run_latency(0.01, 2000, 8000);
  std::printf("hotspot-to-I/O zero-load latency: %.1f cycles over %llu "
              "packets (drained: %s)\n",
              lat.avg_packet_latency,
              static_cast<unsigned long long>(lat.packets_measured),
              lat.drained ? "yes" : "no");

  hm::noc::SaturationSearchOptions opts;
  opts.warmup = 3000;
  opts.measure = 3000;
  const auto sat = hm::noc::find_saturation(plan.extended, cfg, opts, spec);
  std::printf("hotspot-to-I/O saturation: %.3f of full injection rate\n",
              sat.accepted_flit_rate);
  tcli.finish();
  return 0;
}
