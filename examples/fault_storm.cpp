// Fault storm: drive the fault-injection subsystem (src/faults/) against a
// stock arrangement and report the resilience metrics per plan — degraded
// throughput, recovery time, flits dropped — plus a flit-conservation check
// (injected == ejected + in-network + dropped) after every run.
//
// Three scenario shapes, all deterministic in the seed:
//   default        K independent seeded single-link kills (one plan each)
//   --storm M      one plan of M successive seeded random kills
//   --sweep        exhaustive: one plan per non-bridge link of the graph
//
//   ./fault_storm [grid|brickwall|hexamesh] [N]
//       --singles K        seeded single-link-kill plans (default 3)
//       --storm M          add an M-kill storm plan
//       --sweep            kill every non-bridge link, one plan per link
//       --rate R           offered flit rate per endpoint (default 0.25)
//       --kill-at C        first kill, cycles after arm (default 2000)
//       --spacing C        storm kill spacing (default 400)
//       --repair-after C   single kills: repair C cycles later (default off)
//       --reconvergence C  stale-table window before the re-routed swap
//       --seed S           scenario seed (also seeds the simulator RNG)
//       --csv out.csv      export one row per plan
//       --telemetry        print the metrics snapshot (fault.* counters)
//       --trace out.json   record a Chrome trace (load in Perfetto)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "core/arrangement.hpp"
#include "faults/fault_plan.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "noc/simulator.hpp"

namespace {

void usage_and_exit(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [grid|brickwall|hexamesh] [N] [--singles K] [--storm M] "
      "[--sweep] [--rate R] [--kill-at C] [--spacing C] [--repair-after C] "
      "[--reconvergence C] [--seed S] [--csv out.csv] [--telemetry] "
      "[--trace out.json]\n",
      argv0);
  std::exit(1);
}

struct PlanOutcome {
  std::string what;
  hm::faults::ResilienceStats stats;
  std::uint64_t injected = 0;
  std::uint64_t ejected = 0;
  std::uint64_t in_network = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hm;
  const auto tcli = hm::cli::TelemetryCli::extract(argc, argv);
  tcli.begin();

  std::string family = "hexamesh";
  std::size_t n = 37;
  std::size_t singles = 3;
  bool singles_set = false;
  std::size_t storm = 0;
  bool sweep = false;
  double rate = 0.25;
  noc::Cycle kill_at = 2000;
  noc::Cycle spacing = 400;
  noc::Cycle repair_after = 0;
  noc::Cycle reconvergence = 0;
  unsigned long long seed = 1;
  std::string csv_path;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--singles") == 0) {
      singles = hm::cli::require_size(need_value("--singles"), "--singles",
                                      0, 64);
      singles_set = true;
    } else if (std::strcmp(argv[i], "--storm") == 0) {
      storm = hm::cli::require_size(need_value("--storm"),
                                    "--storm kill count", 1, 64);
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      rate = hm::cli::require_double(need_value("--rate"), "--rate", 0.001,
                                     1.0);
    } else if (std::strcmp(argv[i], "--kill-at") == 0) {
      kill_at = static_cast<noc::Cycle>(hm::cli::require_size(
          need_value("--kill-at"), "--kill-at", 1, 1000000));
    } else if (std::strcmp(argv[i], "--spacing") == 0) {
      spacing = static_cast<noc::Cycle>(hm::cli::require_size(
          need_value("--spacing"), "--spacing", 1, 1000000));
    } else if (std::strcmp(argv[i], "--repair-after") == 0) {
      repair_after = static_cast<noc::Cycle>(hm::cli::require_size(
          need_value("--repair-after"), "--repair-after", 1, 1000000));
    } else if (std::strcmp(argv[i], "--reconvergence") == 0) {
      reconvergence = static_cast<noc::Cycle>(hm::cli::require_size(
          need_value("--reconvergence"), "--reconvergence", 0, 100000));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = hm::cli::require_u64(need_value("--seed"), "--seed");
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_path = need_value("--csv");
    } else if (positional == 0) {
      family = argv[i];
      ++positional;
    } else if (positional == 1) {
      n = hm::cli::require_size(argv[i], "N", 2, hm::cli::kMaxChiplets);
      ++positional;
    } else {
      usage_and_exit(argv[0]);
    }
  }
  // A storm or sweep request replaces the default single-kill plans unless
  // the user asked for both explicitly.
  if ((storm > 0 || sweep) && !singles_set) singles = 0;
  if (singles == 0 && storm == 0 && !sweep) {
    std::fprintf(stderr, "nothing to do: --singles 0 with no --storm/--sweep\n");
    return 1;
  }

  core::ArrangementType type;
  if (family == "grid") {
    type = core::ArrangementType::kGrid;
  } else if (family == "brickwall") {
    type = core::ArrangementType::kBrickwall;
  } else if (family == "hexamesh") {
    type = core::ArrangementType::kHexaMesh;
  } else {
    usage_and_exit(argv[0]);
    return 1;  // unreachable
  }

  try {
    const core::Arrangement arr = core::make_arrangement(type, n);
    const graph::Graph& g = arr.graph();

    faults::FaultScenarioSpec spec;
    spec.single_link_kills = static_cast<int>(singles);
    spec.storm_kills = static_cast<int>(storm);
    spec.seed = seed;
    spec.kill_at = kill_at;
    spec.storm_spacing = spacing;
    spec.repair_after = repair_after;
    spec.reconvergence_delay = reconvergence;
    spec.offered_rate = rate;
    if (sweep) {
      // One plan per non-bridge link, in the graph's deterministic edge
      // order — an exhaustive single-fault vulnerability map.
      const auto bridges = graph::bridges(g);
      for (const auto& e : g.edges()) {
        if (std::find(bridges.begin(), bridges.end(), e) != bridges.end()) {
          continue;
        }
        faults::FaultPlan plan;
        plan.events.push_back(
            {kill_at, faults::FaultKind::kLinkKill, e.first, e.second});
        if (repair_after > 0) {
          plan.events.push_back({kill_at + repair_after,
                                 faults::FaultKind::kLinkRepair, e.first,
                                 e.second});
        }
        plan.reconvergence_delay = reconvergence;
        spec.explicit_plans.push_back(std::move(plan));
      }
    }
    spec.validate();
    const auto plans = spec.plans_for(g);

    std::printf("%s, %zu chiplets: %zu fault plan%s (%s)\n",
                arr.name().c_str(), n, plans.size(),
                plans.size() == 1 ? "" : "s", spec.describe().c_str());
    std::printf("%-42s | %9s | %9s | %8s | %7s | %5s\n", "plan",
                "pre f/c/e", "degraded", "recovery", "dropped", "lost");
    for (int i = 0; i < 96; ++i) std::putchar('-');
    std::putchar('\n');

    std::vector<PlanOutcome> outcomes;
    double worst_rate = -1.0;
    noc::Cycle slowest_recovery = 0;
    bool all_recovered = true;
    std::uint64_t total_dropped = 0;
    for (const auto& plan : plans) {
      noc::SimConfig cfg;
      cfg.seed = seed;
      noc::Simulator sim(g, cfg);

      PlanOutcome out;
      out.what = plan.empty() ? "(empty)" : plan.describe();
      out.stats = sim.run_resilience(rate, plan, spec.warmup, spec.measure);
      out.injected = sim.network().total_flits_injected();
      out.ejected = sim.network().total_flits_ejected();
      out.in_network = sim.network().flits_in_network();

      std::string why;
      if (!sim.network().invariants_ok(&why)) {
        std::fprintf(stderr, "invariant violation: %s\n", why.c_str());
        return 1;
      }
      if (out.injected !=
          out.ejected + out.in_network + out.stats.flits_dropped) {
        std::fprintf(stderr,
                     "flit leak: injected %llu != ejected %llu + "
                     "in-network %llu + dropped %llu\n",
                     static_cast<unsigned long long>(out.injected),
                     static_cast<unsigned long long>(out.ejected),
                     static_cast<unsigned long long>(out.in_network),
                     static_cast<unsigned long long>(out.stats.flits_dropped));
        return 1;
      }

      const auto& s = out.stats;
      char recovery[32];
      if (s.recovered) {
        std::snprintf(recovery, sizeof(recovery), "%lld cyc",
                      static_cast<long long>(s.recovery_cycles));
      } else {
        std::snprintf(recovery, sizeof(recovery), "%s",
                      s.first_kill_cycle < 0 ? "n/a" : "none");
      }
      std::printf("%-42.42s | %9.4f | %9.4f | %8s | %7llu | %5llu\n",
                  out.what.c_str(), s.pre_fault_rate, s.degraded_rate,
                  recovery,
                  static_cast<unsigned long long>(s.flits_dropped),
                  static_cast<unsigned long long>(s.packets_lost));

      if (worst_rate < 0.0 || s.degraded_rate < worst_rate) {
        worst_rate = s.degraded_rate;
      }
      if (s.recovered) {
        slowest_recovery = std::max(slowest_recovery, s.recovery_cycles);
      } else if (s.first_kill_cycle >= 0) {
        all_recovered = false;
      }
      total_dropped += s.flits_dropped;
      outcomes.push_back(std::move(out));
    }

    std::printf(
        "\nworst degraded rate %.4f flits/cycle/endpoint, recovery %s, "
        "%llu flits dropped total; conservation OK on every run\n",
        worst_rate < 0.0 ? 0.0 : worst_rate,
        all_recovered
            ? (std::to_string(static_cast<long long>(slowest_recovery)) +
               " cyc (slowest)")
                  .c_str()
            : "incomplete",
        static_cast<unsigned long long>(total_dropped));

    if (!csv_path.empty()) {
      std::ofstream os(csv_path);
      if (!os) throw std::runtime_error("cannot open " + csv_path);
      os << "plan,links_killed,routers_killed,repairs,flits_dropped,"
            "packets_lost,packets_rerouted,packets_unroutable,"
            "pre_fault_rate,degraded_rate,recovery_cycles,recovered\n";
      for (const auto& out : outcomes) {
        const auto& s = out.stats;
        std::string what = out.what;
        for (char& c : what) {
          if (c == ',') c = ';';  // keep the CSV single-celled
        }
        os << what << ',' << s.links_killed << ',' << s.routers_killed << ','
           << s.repairs << ',' << s.flits_dropped << ',' << s.packets_lost
           << ',' << s.packets_rerouted << ',' << s.packets_unroutable << ','
           << s.pre_fault_rate << ',' << s.degraded_rate << ','
           << s.recovery_cycles << ',' << (s.recovered ? 1 : 0) << '\n';
      }
      std::printf("per-plan results exported: %s\n", csv_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  tcli.finish();
  return 0;
}
