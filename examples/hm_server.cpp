// hm_server: serve evaluate/sweep/search requests over a Unix-domain
// socket and/or a 127.0.0.1 TCP port, keeping the topology intern cache,
// the result cache and (with --cache-dir) the persistent result store warm
// across requests. See src/server/server.hpp for the protocol and the
// batching/fairness model; drive it with hm_client.
//
//   ./hm_server --unix /tmp/hm.sock                serve on a Unix socket
//   ./hm_server --port 0                           serve on an ephemeral
//                                                  TCP port (printed as
//                                                  "port: N" on stdout)
//   ./hm_server --unix P --port N --threads K --cache-dir DIR
//   ./hm_server ... --max-pending N --max-per-client N
//                                                  admission control knobs
//   ./hm_server ... --telemetry                    print the metrics
//                                                  snapshot on exit
//
// The process runs until a kShutdown command arrives (hm_client ...
// shutdown); it then drains in-flight work, flushes the store, unlinks the
// Unix socket and exits 0.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "cli_util.hpp"
#include "server/server.hpp"
#include "store/result_store.hpp"

int main(int argc, char** argv) {
  const auto tcli = hm::cli::TelemetryCli::extract(argc, argv);
  tcli.begin();

  hm::server::ServerOptions opt;
  std::string cache_dir;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--unix") == 0) {
      opt.unix_path = need_value("--unix");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      opt.tcp_port = static_cast<int>(hm::cli::require_unsigned(
          need_value("--port"), "--port", 0, 65535));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opt.threads = hm::cli::require_unsigned(need_value("--threads"),
                                              "--threads", 0, 4096);
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      cache_dir = need_value("--cache-dir");
    } else if (std::strcmp(argv[i], "--max-pending") == 0) {
      opt.max_pending = hm::cli::require_size(need_value("--max-pending"),
                                              "--max-pending", 1, 100000);
    } else if (std::strcmp(argv[i], "--max-per-client") == 0) {
      opt.max_pending_per_client = hm::cli::require_size(
          need_value("--max-per-client"), "--max-per-client", 1, 100000);
    } else {
      std::fprintf(stderr,
                   "unknown argument %s\nusage: %s (--unix PATH | --port P) "
                   "[--threads K] [--cache-dir DIR] [--max-pending N] "
                   "[--max-per-client N] [--telemetry]\n",
                   argv[i], argv[0]);
      return 1;
    }
  }
  if (opt.unix_path.empty() && opt.tcp_port < 0) {
    std::fprintf(stderr, "need --unix PATH and/or --port P\n");
    return 1;
  }
  opt.cache_dir = hm::store::ResultStore::resolve_dir(cache_dir);

  // Interactive-speed measurement windows (paper-length defaults would
  // make each request take minutes).
  opt.params.latency_measure = 6000;
  opt.params.throughput_warmup = 2000;
  opt.params.throughput_measure = 2000;

  try {
    hm::server::Server server(opt);
    server.start();
    if (!opt.unix_path.empty()) {
      std::fprintf(stderr, "listening on unix socket %s\n",
                   opt.unix_path.c_str());
    }
    if (server.tcp_port() >= 0) {
      // stdout, parseable: smoke scripts bind port 0 and scrape this.
      std::printf("port: %d\n", server.tcp_port());
      std::fflush(stdout);
    }
    if (!opt.cache_dir.empty()) {
      std::fprintf(stderr, "persistent store: %s\n", opt.cache_dir.c_str());
    }
    server.wait();
    server.stop();
    const auto stats = server.stats_snapshot();
    std::fprintf(stderr,
                 "served %llu requests (%llu rejected) in %.1f s\n",
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.rejects),
                 stats.uptime_s);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  tcli.finish();
  return 0;
}
