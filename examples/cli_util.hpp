// Shared checked CLI parsing for the example programs.
//
// The seed examples parsed sizes/threads with bare strtoul/atof: a negative
// value wraps to a huge unsigned ("-5" becomes 18446744073709551611
// chiplets), trailing garbage is silently ignored ("12abc" parses as 12),
// and overflow saturates without any error. PR 4 hardened
// arrangement_explorer only; this header hoists that checked parser so
// every example rejects malformed input with a diagnostic and exit code 1
// instead of crashing or silently exploding (CI runs each example with
// malformed args and requires a clean non-zero exit).
//
// Header-only on purpose: the examples are standalone binaries linked only
// against the hm library, and the parsers are a few lines each. The
// bool-returning parse_* functions are the testable core
// (tests/test_cli_util.cpp); the require_* wrappers add the
// print-usage-and-exit(1) behavior the example main()s want.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace hm::cli {

/// Parses a non-negative integer in [min_value, max_value]. Rejects empty
/// strings, any '-' (strtoull would wrap negatives), trailing garbage,
/// non-decimal input and overflow. Returns false without touching *out on
/// rejection.
[[nodiscard]] inline bool parse_size(const char* s, std::size_t min_value,
                                     std::size_t max_value,
                                     std::size_t* out) {
  if (s == nullptr || *s == '\0' || std::strchr(s, '-') != nullptr ||
      std::isspace(static_cast<unsigned char>(*s)) != 0) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  if constexpr (sizeof(std::size_t) < sizeof(unsigned long long)) {
    if (parsed > std::numeric_limits<std::size_t>::max()) return false;
  }
  const auto value = static_cast<std::size_t>(parsed);
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

/// parse_size for unsigned (thread counts and similar small knobs).
[[nodiscard]] inline bool parse_unsigned(const char* s, unsigned min_value,
                                         unsigned max_value, unsigned* out) {
  std::size_t wide = 0;
  if (!parse_size(s, min_value, max_value, &wide)) return false;
  *out = static_cast<unsigned>(wide);
  return true;
}

/// parse_size for 64-bit seeds (full unsigned long long range).
[[nodiscard]] inline bool parse_u64(const char* s, unsigned long long* out) {
  if (s == nullptr || *s == '\0' || std::strchr(s, '-') != nullptr ||
      std::isspace(static_cast<unsigned char>(*s)) != 0) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = parsed;
  return true;
}

/// Parses a finite double in [min_value, max_value]. Rejects empty
/// strings, trailing garbage, inf/nan and out-of-range values (atof's
/// silent 0.0 fallback accepted anything).
[[nodiscard]] inline bool parse_double(const char* s, double min_value,
                                       double max_value, double* out) {
  if (s == nullptr || *s == '\0' ||
      std::isspace(static_cast<unsigned char>(*s)) != 0) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  if (!(parsed >= min_value) || !(parsed <= max_value)) return false;  // NaN
  *out = parsed;
  return true;
}

/// parse_size or print "<what> must be ... in [min, max]" and exit(1).
inline std::size_t require_size(const char* s, const char* what,
                                std::size_t min_value,
                                std::size_t max_value) {
  std::size_t value = 0;
  if (!parse_size(s, min_value, max_value, &value)) {
    std::fprintf(stderr, "%s must be an integer in [%zu, %zu] (got \"%s\")\n",
                 what, min_value, max_value, s == nullptr ? "" : s);
    std::exit(1);
  }
  return value;
}

inline unsigned require_unsigned(const char* s, const char* what,
                                 unsigned min_value, unsigned max_value) {
  unsigned value = 0;
  if (!parse_unsigned(s, min_value, max_value, &value)) {
    std::fprintf(stderr, "%s must be an integer in [%u, %u] (got \"%s\")\n",
                 what, min_value, max_value, s == nullptr ? "" : s);
    std::exit(1);
  }
  return value;
}

inline unsigned long long require_u64(const char* s, const char* what) {
  unsigned long long value = 0;
  if (!parse_u64(s, &value)) {
    std::fprintf(stderr, "%s must be a non-negative integer (got \"%s\")\n",
                 what, s == nullptr ? "" : s);
    std::exit(1);
  }
  return value;
}

inline double require_double(const char* s, const char* what,
                             double min_value, double max_value) {
  double value = 0.0;
  if (!parse_double(s, min_value, max_value, &value)) {
    std::fprintf(stderr, "%s must be a number in [%g, %g] (got \"%s\")\n",
                 what, min_value, max_value, s == nullptr ? "" : s);
    std::exit(1);
  }
  return value;
}

/// The chiplet-count ceiling shared by every example (hoisted from PR 4's
/// arrangement_explorer hardening): large enough for any plausible demo,
/// small enough that a typo cannot allocate the machine away.
inline constexpr std::size_t kMaxChiplets = 100000;

/// Shared `--telemetry` / `--trace FILE` handling for the example mains
/// (the flag-based twin of the HM_TELEMETRY / HM_TRACE_FILE env knobs in
/// telemetry/). extract() strips the two flags out of argv *before* the
/// example's own loop runs — the examples address positionals by argv
/// index, so the flags must not still be there — then begin() arms the
/// metrics registry and the Chrome tracer and finish() flushes the trace
/// file and prints the telemetry::snapshot() JSON. The trace flag name is
/// a parameter because search_arrangement already owns `--trace` for its
/// deterministic search-step CSV; it passes "--chrome-trace" instead.
struct TelemetryCli {
  bool telemetry = false;
  std::string trace_path;

  [[nodiscard]] static TelemetryCli extract(
      int& argc, char** argv, const char* trace_flag = "--trace") {
    TelemetryCli t;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--telemetry") == 0) {
        t.telemetry = true;
      } else if (std::strcmp(argv[i], trace_flag) == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", trace_flag);
          std::exit(1);
        }
        t.trace_path = argv[++i];
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    argv[argc] = nullptr;
    return t;
  }

  /// Arms the registry and (when a path was given) the tracer. Tracing
  /// switches the registry on too: a trace without its counters is only
  /// half a flight recording.
  void begin() const {
    if (telemetry || !trace_path.empty()) hm::telemetry::set_enabled(true);
    if (!trace_path.empty() && !hm::telemetry::trace_start(trace_path)) {
      std::fprintf(stderr,
                   "warning: tracing already armed (HM_TRACE_FILE?); "
                   "%s ignored\n",
                   trace_path.c_str());
    }
  }

  /// Writes the trace file and prints the metrics snapshot (stdout, so it
  /// can be piped into jq/python). Call on the success paths of main();
  /// skipping it on error exits just loses the report, never corrupts
  /// anything.
  void finish() const {
    if (!trace_path.empty() && hm::telemetry::trace_stop()) {
      std::fprintf(stderr, "chrome trace written: %s (load in Perfetto)\n",
                   trace_path.c_str());
    }
    if (telemetry) {
      std::printf("telemetry snapshot:\n%s\n",
                  hm::telemetry::snapshot_json().c_str());
    }
  }
};

}  // namespace hm::cli
