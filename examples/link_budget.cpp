// Link-budget report: for a given chiplet count and packaging technology,
// derive the chiplet shape, the Fig. 5 bump-sector plan and the resulting
// D2D link budget — the Sec. IV-B/V workflow a chiplet architect would run.
//
//   ./link_budget [N] [c4|microbump] [power_fraction]
//       --telemetry         print the metrics snapshot on exit
//       --trace out.json    record a Chrome trace (load in Perfetto)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cli_util.hpp"
#include "core/arrangement.hpp"
#include "core/link_model.hpp"
#include "core/shape.hpp"
#include "geometry/bump_layout.hpp"

int main(int argc, char** argv) {
  using namespace hm::core;
  const auto tcli = hm::cli::TelemetryCli::extract(argc, argv);
  tcli.begin();
  const std::size_t n =
      argc > 1 ? hm::cli::require_size(argv[1], "N", 1, hm::cli::kMaxChiplets)
               : 64;
  const std::string tech = argc > 2 ? argv[2] : "c4";
  const double pp =
      argc > 3 ? hm::cli::require_double(argv[3], "power fraction", 0.0,
                                         0.999999)
               : kDefaultPowerFraction;
  if (tech != "c4" && tech != "microbump") {
    std::fprintf(stderr, "usage: %s [N>=1] [c4|microbump] [pp in [0,1))\n",
                 argv[0]);
    return 1;
  }
  const double pitch = tech == "c4" ? kDefaultBumpPitchMm : kMicroBumpPitchMm;

  const double ac = kDefaultTotalAreaMm2 / static_cast<double>(n);
  std::printf("design: %zu chiplets of %.2f mm^2 (A_all = %.0f mm^2), "
              "%s bumps (pitch %.3f mm), p_p = %.2f\n\n",
              n, ac, kDefaultTotalAreaMm2, tech.c_str(), pitch, pp);

  for (auto type : {ArrangementType::kGrid, ArrangementType::kHexaMesh}) {
    const ChipletShape s = solve_shape(type, {ac, pp});
    LinkModelParams lp;
    lp.link_area_mm2 = s.link_sector_area;
    lp.bump_pitch_mm = pitch;
    const LinkEstimate e = estimate_link(lp);

    std::printf("%s chiplet: %.2f x %.2f mm, %d link sectors\n",
                to_string(type).c_str(), s.width, s.height, s.link_sectors);
    std::printf("  bump plan (role: area mm^2, max dist to edge mm):\n");
    for (const auto& sector : bump_sectors(s)) {
      if (sector.role == hm::geom::SectorRole::kPower) {
        std::printf("    %-5s  %6.2f       -\n",
                    hm::geom::to_string(sector.role).c_str(), sector.area());
      } else {
        std::printf("    %-5s  %6.2f  %6.2f\n",
                    hm::geom::to_string(sector.role).c_str(), sector.area(),
                    hm::geom::max_bump_to_edge_distance(sector, s.width,
                                                        s.height));
      }
    }
    std::printf("  link budget: %lld bumps -> %lld data wires -> %.0f Gb/s "
                "per link (%.1f GB/s)\n",
                static_cast<long long>(e.total_wires),
                static_cast<long long>(e.data_wires), e.bandwidth_bps / 1e9,
                e.bandwidth_bps / 8e9);
    std::printf("  estimated D2D link length ~ D_B = %.2f mm "
                "(%s)\n\n",
                s.bump_edge_distance,
                s.bump_edge_distance <= 2.0
                    ? "OK for silicon interposer (<= 2 mm, Sec. II)"
                    : "needs package substrate (> 2 mm)");
  }
  tcli.finish();
  return 0;
}
