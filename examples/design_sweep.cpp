// Design sweep: for a range of chiplet counts, evaluate grid vs HexaMesh
// end to end (simulation included) and recommend the better arrangement per
// design point — the decision a 2.5D system architect faces.
//
//   ./design_sweep [N1 N2 ...]      (default: 16 25 37 64)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/arrangement.hpp"
#include "core/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace hm::core;
  std::vector<std::size_t> sweep;
  for (int i = 1; i < argc; ++i) {
    const auto n = std::strtoul(argv[i], nullptr, 10);
    if (n < 2) {
      std::fprintf(stderr, "chiplet counts must be >= 2\n");
      return 1;
    }
    sweep.push_back(n);
  }
  if (sweep.empty()) sweep = {16, 25, 37, 64};

  EvaluationParams params;
  params.latency_measure = 6000;  // quick interactive settings
  params.throughput_warmup = 5000;
  params.throughput_measure = 5000;

  std::printf("%4s | %-26s | %-26s | %s\n", "N", "grid (lat, thr)",
              "hexamesh (lat, thr)", "recommendation");
  for (int i = 0; i < 84; ++i) std::putchar('-');
  std::putchar('\n');

  for (std::size_t n : sweep) {
    const auto g = evaluate(make_arrangement(ArrangementType::kGrid, n),
                            params);
    const auto h = evaluate(make_arrangement(ArrangementType::kHexaMesh, n),
                            params);
    const double lat_gain = 1.0 - h.zero_load_latency_cycles /
                                      g.zero_load_latency_cycles;
    const double thr_gain = h.saturation_throughput_bps /
                                g.saturation_throughput_bps -
                            1.0;
    const bool hm_wins = lat_gain > 0.0 && thr_gain > 0.0;
    std::printf("%4zu | %7.1f cyc, %7.2f Tb/s | %7.1f cyc, %7.2f Tb/s | "
                "%s (lat %+.0f%%, thr %+.0f%%)\n",
                n, g.zero_load_latency_cycles,
                g.saturation_throughput_bps / 1e12,
                h.zero_load_latency_cycles,
                h.saturation_throughput_bps / 1e12,
                hm_wins ? "HexaMesh" : "mixed", -100.0 * lat_gain,
                100.0 * thr_gain);
    std::fflush(stdout);
  }
  return 0;
}
