// Design sweep: for a range of chiplet counts, evaluate grid vs HexaMesh
// end to end (simulation included) and recommend the better arrangement per
// design point — the decision a 2.5D system architect faces. The sweep runs
// through the explore::SweepEngine: all design points in parallel, with
// deterministic per-job seeding (the output is identical at any thread
// count) and optional CSV export of the raw records.
//
// With --search S, every HexaMesh start is first improved by a short
// parallel-tempering run (S steps; search/tempering.hpp) and the searched
// arrangements ride in the same sweep as extra labelled points
// (SweepEngine::add_arrangement), so the CSV compares searched vs. stock
// families under identical seeding.
//
//   ./design_sweep [N1 N2 ...]              (default: 16 25 37 64)
//   ./design_sweep --threads K [N...]       sweep with K threads
//   ./design_sweep --csv out.csv [N...]     export raw records as CSV
//                                           (.json exports JSON; with
//                                           --telemetry the JSON gains a
//                                           "telemetry" snapshot block)
//   ./design_sweep --search S [N...]        add tempering-searched points
//   ./design_sweep --faults K [N...]        score every point under K seeded
//                                           single-link kills too (adds the
//                                           fault_* columns to the export)
//   ./design_sweep --telemetry [N...]       print the metrics snapshot
//   ./design_sweep --trace out.json [N...]  record a Chrome trace (Perfetto)
//   ./design_sweep --cache-dir DIR [N...]   persist results in an on-disk
//                                           store (also via HM_CACHE_DIR;
//                                           the flag wins) — a warm re-run
//                                           skips every simulation
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "core/arrangement.hpp"
#include "core/evaluator.hpp"
#include "explore/export.hpp"
#include "explore/sweep.hpp"
#include "search/tempering.hpp"
#include "store/result_store.hpp"

int main(int argc, char** argv) {
  using namespace hm::core;
  const auto tcli = hm::cli::TelemetryCli::extract(argc, argv);
  tcli.begin();
  std::vector<std::size_t> sweep;
  unsigned threads = 0;  // hardware concurrency
  std::size_t search_steps = 0;
  std::size_t fault_kills = 0;
  std::string csv_path;
  std::string cache_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 ||
        std::strcmp(argv[i], "--csv") == 0 ||
        std::strcmp(argv[i], "--search") == 0 ||
        std::strcmp(argv[i], "--cache-dir") == 0 ||
        std::strcmp(argv[i], "--faults") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        return 1;
      }
      if (std::strcmp(argv[i], "--threads") == 0) {
        threads = hm::cli::require_unsigned(argv[++i], "--threads", 0, 4096);
      } else if (std::strcmp(argv[i], "--search") == 0) {
        search_steps =
            hm::cli::require_size(argv[++i], "--search steps", 1, 1000000);
      } else if (std::strcmp(argv[i], "--faults") == 0) {
        fault_kills =
            hm::cli::require_size(argv[++i], "--faults kill count", 1, 64);
      } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
        cache_dir = argv[++i];
      } else {
        csv_path = argv[++i];
      }
      continue;
    }
    sweep.push_back(hm::cli::require_size(argv[i], "chiplet count", 2,
                                          hm::cli::kMaxChiplets));
  }
  if (sweep.empty()) sweep = {16, 25, 37, 64};

  EvaluationParams params;
  params.latency_measure = 6000;  // quick interactive settings
  params.throughput_warmup = 5000;
  params.throughput_measure = 5000;
  if (fault_kills > 0) {
    params.faults.single_link_kills = static_cast<int>(fault_kills);
  }

  hm::explore::SweepSpec spec;
  spec.types = {ArrangementType::kGrid, ArrangementType::kHexaMesh};
  spec.chiplet_counts = sweep;
  spec.param_grid = {params};

  hm::explore::SweepEngine::Options opt;
  opt.threads = threads;
  // --cache-dir wins over the HM_CACHE_DIR environment variable; either
  // arms the persistent result store under the sweep cache.
  opt.cache_dir = hm::store::ResultStore::resolve_dir(cache_dir);
  opt.on_progress = [](const hm::explore::SweepProgress& p) {
    std::fprintf(stderr, "\r[%zu/%zu] designs evaluated", p.completed,
                 p.total);
    if (p.completed == p.total) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  };
  hm::explore::SweepEngine engine(opt);

  try {
    if (search_steps > 0) {
      // Short tempering runs warm-start the sweep: the searched best of
      // every HexaMesh start joins the sweep as a labelled extra point.
      hm::search::TemperingOptions topt;
      topt.replicas = 3;
      topt.steps = search_steps;
      topt.threads = threads;
      topt.params = params;
      topt.params.throughput_warmup = 2000;  // search-speed windows
      topt.params.throughput_measure = 2000;
      topt.cache_dir = opt.cache_dir;  // share the persistent store
      // One engine for every sweep size: runs share the worker pool and
      // the sharded result cache (TemperingEngine::run is re-entrant).
      hm::search::TemperingEngine searcher(topt);
      for (const std::size_t n : sweep) {
        const auto res =
            searcher.run(make_arrangement(ArrangementType::kHexaMesh, n));
        engine.add_arrangement(res.best,
                               "hexamesh-searched-N" + std::to_string(n));
        std::fprintf(stderr,
                     "searched N=%zu: best/baseline = %.4f (%zu evals)\n", n,
                     res.baseline_score > 0.0
                         ? res.best_score / res.baseline_score
                         : 0.0,
                     res.evaluations);
      }
    }

    const auto records = engine.run(spec);

    std::printf("%4s | %-26s | %-26s | %s\n", "N", "grid (lat, thr)",
                "hexamesh (lat, thr)", "recommendation");
    for (int i = 0; i < 84; ++i) std::putchar('-');
    std::putchar('\n');

    const auto find = [&records](ArrangementType type, std::size_t n)
        -> const hm::explore::SweepRecord& {
      for (const auto& r : records) {
        if (r.point.type == type && r.point.chiplet_count == n &&
            !r.point.custom) {
          return r;
        }
      }
      std::abort();  // every requested point has a record
    };

    for (std::size_t n : sweep) {
      const auto& g = find(ArrangementType::kGrid, n).result;
      const auto& h = find(ArrangementType::kHexaMesh, n).result;
      const double lat_gain = 1.0 - h.zero_load_latency_cycles /
                                        g.zero_load_latency_cycles;
      const double thr_gain = h.saturation_throughput_bps /
                                  g.saturation_throughput_bps -
                              1.0;
      const bool hm_wins = lat_gain > 0.0 && thr_gain > 0.0;
      std::printf("%4zu | %7.1f cyc, %7.2f Tb/s | %7.1f cyc, %7.2f Tb/s | "
                  "%s (lat %+.0f%%, thr %+.0f%%)\n",
                  n, g.zero_load_latency_cycles,
                  g.saturation_throughput_bps / 1e12,
                  h.zero_load_latency_cycles,
                  h.saturation_throughput_bps / 1e12,
                  hm_wins ? "HexaMesh" : "mixed", -100.0 * lat_gain,
                  100.0 * thr_gain);
    }

    if (fault_kills > 0) {
      std::printf("\nresilience (%zu single-link kills, worst case):\n",
                  fault_kills);
      for (std::size_t n : sweep) {
        const auto& g = find(ArrangementType::kGrid, n).result;
        const auto& h = find(ArrangementType::kHexaMesh, n).result;
        std::printf("%4zu | grid %6.2f Tb/s | hexamesh %6.2f Tb/s\n", n,
                    g.fault_robust_throughput_bps / 1e12,
                    h.fault_robust_throughput_bps / 1e12);
      }
    }

    if (search_steps > 0) {
      std::printf("\nsearched points (tempering, %zu steps):\n",
                  search_steps);
      for (const auto& r : records) {
        if (!r.point.custom) continue;
        std::printf("%4zu | searched: %7.1f cyc, %7.2f Tb/s (%s)\n",
                    r.point.chiplet_count,
                    r.result.zero_load_latency_cycles,
                    r.result.saturation_throughput_bps / 1e12,
                    r.point.label.c_str());
      }
    }

    if (!csv_path.empty()) {
      const bool json = csv_path.size() >= 5 &&
                        csv_path.compare(csv_path.size() - 5, 5, ".json") == 0;
      if (json && tcli.telemetry) {
        // Opt-in richer export: the plain record array plus the current
        // telemetry snapshot. Plain exports stay byte-identical (goldens).
        std::ofstream os(csv_path);
        if (!os) throw std::runtime_error("cannot open " + csv_path);
        hm::explore::write_json_with_telemetry(os, records);
      } else {
        hm::explore::export_file(csv_path, records);
      }
      std::printf("\nraw records exported: %s\n", csv_path.c_str());
    }

    if (!opt.cache_dir.empty()) {
      engine.cache().flush_to_store();
      const auto stats =
          hm::store::ResultStore::open(opt.cache_dir)->stats();
      std::fprintf(stderr,
                   "store %s: %zu entries, %zu segments, %llu bytes\n",
                   opt.cache_dir.c_str(), stats.entries, stats.segments,
                   static_cast<unsigned long long>(stats.disk_bytes));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  tcli.finish();
  return 0;
}
