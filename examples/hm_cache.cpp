// hm_cache: maintenance CLI for persistent result stores (src/store/).
//
//   ./hm_cache stats DIR          entry/segment/byte counts
//   ./hm_cache verify DIR         offline integrity walk; exit 1 when any
//                                 corruption or a stale index is found
//   ./hm_cache merge DST SRC...   import entries absent in DST from each
//                                 SRC store, then flush DST
//   ./hm_cache compact DIR        rewrite live entries into one segment,
//                                 dropping superseded records
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "store/result_store.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (stats DIR | verify DIR | merge DST SRC... | "
               "compact DIR)\n",
               argv0);
  std::exit(1);
}

void print_stats(const hm::store::StoreStats& s, const char* dir) {
  std::printf("%s: %zu entries, %zu segments, %llu bytes on disk, "
              "%zu superseded records, %zu pending\n",
              dir, s.entries, s.segments,
              static_cast<unsigned long long>(s.disk_bytes),
              s.superseded_records, s.pending);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage(argv[0]);
  const std::string command = argv[1];

  try {
    if (command == "stats" && argc == 3) {
      print_stats(hm::store::ResultStore::open(argv[2])->stats(), argv[2]);
      return 0;
    }
    if (command == "verify" && argc == 3) {
      const auto report = hm::store::ResultStore::verify(argv[2]);
      std::printf("%s: %zu segments, %zu records, %zu corrupt, "
                  "%zu foreign segments, index %s\n",
                  argv[2], report.segments, report.records,
                  report.corrupt_records, report.foreign_segments,
                  !report.index_present ? "absent"
                  : report.index_ok     ? "ok"
                                        : "BAD");
      for (const auto& issue : report.issues) {
        std::fprintf(stderr, "  issue: %s\n", issue.c_str());
      }
      if (!report.clean()) {
        std::fprintf(stderr, "verify FAILED\n");
        return 1;
      }
      std::printf("verify OK\n");
      return 0;
    }
    if (command == "merge" && argc >= 4) {
      const auto dst = hm::store::ResultStore::open(argv[2]);
      std::size_t imported = 0;
      for (int i = 3; i < argc; ++i) {
        const auto src = hm::store::ResultStore::open(argv[i]);
        const std::size_t n = dst->merge_from(*src);
        std::printf("merged %s: %zu new entries\n", argv[i], n);
        imported += n;
      }
      dst->flush();
      std::printf("%s: imported %zu entries total\n", argv[2], imported);
      print_stats(dst->stats(), argv[2]);
      return 0;
    }
    if (command == "compact" && argc == 3) {
      const auto store = hm::store::ResultStore::open(argv[2]);
      const auto before = store->stats();
      store->compact();
      const auto after = store->stats();
      std::printf("compacted %s: %zu -> %zu segments, %llu -> %llu bytes\n",
                  argv[2], before.segments, after.segments,
                  static_cast<unsigned long long>(before.disk_bytes),
                  static_cast<unsigned long long>(after.disk_bytes));
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  usage(argv[0]);
}
