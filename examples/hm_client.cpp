// hm_client: drive a running hm_server over its framed binary protocol.
//
//   ./hm_client (--unix PATH | --port P) COMMAND...
//
//   ping                               liveness round trip
//   evaluate FAMILY N [--seed S] [--out FILE]
//       evaluate one design point; prints the result fields, --out dumps
//       the raw reply body (the store codec bytes — byte-identical across
//       runs for identical requests, which CI cmp's)
//   sweep FAM[,FAM...] N[,N...] [--seed S] [--no-sim] [--out FILE]
//       run a sweep server-side; prints/dumps the deterministic CSV
//   search FAMILY N STEPS [--seed S]   local search server-side
//   stats                              JSON server statistics
//   shutdown                           ask the server to drain and exit
//   badframe                           send malformed/truncated frames and
//                                      verify the server rejects them and
//                                      survives (exit 0 = it did)
//
// FAMILY is grid | brickwall | hexamesh | honeycomb.
//
// When the server sheds load (admission control replies kRejected), the
// client retries with a deterministic exponential backoff: base * 2^attempt
// with no jitter, so a scripted run produces the same schedule every time.
// --retries N bounds the attempts (default 4, 0 disables); --retry-base-ms
// sets the first delay (default 100).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "cli_util.hpp"
#include "core/arrangement.hpp"
#include "server/protocol.hpp"
#include "store/record.hpp"
#include "util/byte_io.hpp"

namespace {

using namespace hm;
using namespace hm::server;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--unix PATH | --port P) "
      "[--retries N] [--retry-base-ms MS] "
      "(ping | evaluate FAMILY N [--seed S] [--out F] | "
      "sweep FAMS NS [--seed S] [--no-sim] [--out F] | "
      "search FAMILY N STEPS [--seed S] | stats | shutdown | badframe)\n",
      argv0);
  std::exit(1);
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct Endpoint {
  std::string unix_path;
  int port = -1;
  [[nodiscard]] int connect() const {
    const int fd = unix_path.empty() ? connect_tcp(port)
                                     : connect_unix(unix_path);
    if (fd < 0) std::fprintf(stderr, "cannot connect to server\n");
    return fd;
  }
};

core::ArrangementType parse_family(const std::string& name) {
  if (name == "grid") return core::ArrangementType::kGrid;
  if (name == "brickwall") return core::ArrangementType::kBrickwall;
  if (name == "hexamesh") return core::ArrangementType::kHexaMesh;
  if (name == "honeycomb") return core::ArrangementType::kHoneycomb;
  std::fprintf(stderr, "unknown family '%s'\n", name.c_str());
  std::exit(1);
}

/// One request/reply round trip. Returns nullopt on transport failure.
std::optional<std::pair<Status, std::vector<std::uint8_t>>> roundtrip(
    int fd, Command cmd, const std::vector<std::uint8_t>& payload) {
  if (!write_frame(fd, kRequestMagic, cmd, payload)) return std::nullopt;
  FrameHeader header;
  std::vector<std::uint8_t> reply;
  if (read_frame(fd, kReplyMagic, &header, &reply) != ReadResult::kOk) {
    return std::nullopt;
  }
  const auto view = parse_reply_payload(reply.data(), reply.size());
  if (!view) return std::nullopt;
  return std::make_pair(
      view->status,
      std::vector<std::uint8_t>(view->body, view->body + view->body_size));
}

void write_out(const std::string& path, const std::vector<std::uint8_t>& b) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  if (!b.empty()) std::fwrite(b.data(), 1, b.size(), f);
  std::fclose(f);
}

int fail_with(Status status, const std::vector<std::uint8_t>& body) {
  std::fprintf(stderr, "server replied status %u: %.*s\n",
               static_cast<unsigned>(status), static_cast<int>(body.size()),
               reinterpret_cast<const char*>(body.data()));
  return 1;
}

/// badframe: malformed frames must be rejected without killing the server.
int run_badframe(const Endpoint& ep) {
  // 1. Wrong magic, otherwise plausible header: expect a kBadRequest reply
  //    (the header still frames) and then a closed connection.
  {
    const int fd = ep.connect();
    if (fd < 0) return 1;
    std::vector<std::uint8_t> raw;
    util::ByteWriter w(raw);
    w.u32(0x58585858u).u16(kProtocolVersion).u16(0).u32(0);  // "XXXX"
    if (!write_all(fd, raw.data(), raw.size())) return 1;
    FrameHeader header;
    std::vector<std::uint8_t> reply;
    if (read_frame(fd, kReplyMagic, &header, &reply) == ReadResult::kOk) {
      const auto view = parse_reply_payload(reply.data(), reply.size());
      if (!view || view->status != Status::kBadRequest) {
        std::fprintf(stderr, "bad-magic frame was not rejected\n");
        return 1;
      }
    }
    ::close(fd);
  }
  // 2. Oversized payload_len: must be rejected, never allocated/awaited.
  {
    const int fd = ep.connect();
    if (fd < 0) return 1;
    std::vector<std::uint8_t> raw;
    util::ByteWriter w(raw);
    w.u32(kRequestMagic).u16(kProtocolVersion).u16(1).u32(0x7fffffffu);
    if (!write_all(fd, raw.data(), raw.size())) return 1;
    FrameHeader header;
    std::vector<std::uint8_t> reply;
    if (read_frame(fd, kReplyMagic, &header, &reply) == ReadResult::kOk) {
      const auto view = parse_reply_payload(reply.data(), reply.size());
      if (!view || view->status != Status::kBadRequest) {
        std::fprintf(stderr, "oversized frame was not rejected\n");
        return 1;
      }
    }
    ::close(fd);
  }
  // 3. Truncated frame: promise a payload, close mid-frame.
  {
    const int fd = ep.connect();
    if (fd < 0) return 1;
    std::vector<std::uint8_t> raw;
    util::ByteWriter w(raw);
    w.u32(kRequestMagic).u16(kProtocolVersion).u16(1).u32(64);
    raw.push_back(0xab);  // 1 of the promised 64 payload bytes
    (void)write_all(fd, raw.data(), raw.size());
    ::close(fd);
  }
  // 4. The server must still answer a clean ping.
  const int fd = ep.connect();
  if (fd < 0) {
    std::fprintf(stderr, "server died after malformed frames\n");
    return 1;
  }
  const auto pong = roundtrip(fd, Command::kPing, {});
  ::close(fd);
  if (!pong || pong->first != Status::kOk) {
    std::fprintf(stderr, "server did not survive malformed frames\n");
    return 1;
  }
  std::printf("badframe: server rejected malformed frames and survived\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Endpoint ep;
  // kRejected backoff policy: `retries` extra attempts after the first,
  // sleeping retry_base_ms << attempt between them (jitterless by design —
  // identical invocations must behave identically).
  std::uint64_t retries = 4;
  std::uint64_t retry_base_ms = 100;
  int i = 1;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--unix") == 0 && i + 1 < argc) {
      ep.unix_path = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      ep.port = static_cast<int>(
          hm::cli::require_unsigned(argv[++i], "--port", 1, 65535));
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      retries = hm::cli::require_unsigned(argv[++i], "--retries", 0, 16);
    } else if (std::strcmp(argv[i], "--retry-base-ms") == 0 && i + 1 < argc) {
      retry_base_ms =
          hm::cli::require_unsigned(argv[++i], "--retry-base-ms", 1, 60000);
    } else {
      break;
    }
  }
  if ((ep.unix_path.empty() && ep.port < 0) || i >= argc) usage(argv[0]);
  const std::string command = argv[i++];

  // Trailing options shared by the work commands.
  std::uint64_t seed = 42;
  bool no_sim = false;
  std::string out_path;
  std::vector<std::string> positional;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = hm::cli::require_u64(argv[++i], "--seed");
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-sim") == 0) {
      no_sim = true;
    } else {
      positional.emplace_back(argv[i]);
    }
  }

  if (command == "badframe") return run_badframe(ep);

  Command cmd;
  std::vector<std::uint8_t> payload;
  if (command == "ping") {
    cmd = Command::kPing;
  } else if (command == "stats") {
    cmd = Command::kStats;
  } else if (command == "shutdown") {
    cmd = Command::kShutdown;
  } else if (command == "evaluate") {
    if (positional.size() != 2) usage(argv[0]);
    EvaluateRequest req;
    req.type = parse_family(positional[0]);
    req.chiplet_count = hm::cli::require_size(positional[1].c_str(), "N", 1,
                                              hm::cli::kMaxChiplets);
    req.seed = seed;
    encode_evaluate_request(req, payload);
    cmd = Command::kEvaluate;
  } else if (command == "sweep") {
    if (positional.size() != 2) usage(argv[0]);
    SweepRequest req;
    std::string token;
    for (const char* p = positional[0].c_str();; ++p) {
      if (*p == ',' || *p == '\0') {
        req.types.push_back(parse_family(token));
        token.clear();
        if (*p == '\0') break;
      } else {
        token += *p;
      }
    }
    for (const char* p = positional[1].c_str();; ++p) {
      if (*p == ',' || *p == '\0') {
        req.chiplet_counts.push_back(
            hm::cli::require_size(token.c_str(), "N", 1,
                                  hm::cli::kMaxChiplets));
        token.clear();
        if (*p == '\0') break;
      } else {
        token += *p;
      }
    }
    req.base_seed = seed;
    req.simulate = !no_sim;
    encode_sweep_request(req, payload);
    cmd = Command::kSweep;
  } else if (command == "search") {
    if (positional.size() != 3) usage(argv[0]);
    SearchRequest req;
    req.type = parse_family(positional[0]);
    req.chiplet_count = hm::cli::require_size(positional[1].c_str(), "N", 2,
                                              hm::cli::kMaxChiplets);
    req.steps = hm::cli::require_size(positional[2].c_str(), "steps", 1,
                                      100000);
    req.seed = seed;
    encode_search_request(req, payload);
    cmd = Command::kSearch;
  } else {
    usage(argv[0]);
  }

  // Connect + round trip, retrying only admission-control rejections
  // (kRejected: the queue is full and the server asked us to come back).
  // Transport errors and every other status stay fail-fast — a retry
  // cannot fix a bad request, and CI's malformed-input checks rely on
  // immediate nonzero exits.
  std::optional<std::pair<Status, std::vector<std::uint8_t>>> reply;
  for (std::uint64_t attempt = 0;; ++attempt) {
    const int fd = ep.connect();
    if (fd < 0) return 1;
    reply = roundtrip(fd, cmd, payload);
    ::close(fd);
    if (!reply) {
      std::fprintf(stderr, "transport error talking to server\n");
      return 1;
    }
    if (reply->first != Status::kRejected || attempt >= retries) break;
    const std::uint64_t delay_ms = retry_base_ms << attempt;
    std::fprintf(stderr,
                 "server rejected request (queue full), attempt %llu/%llu: "
                 "retrying in %llu ms\n",
                 static_cast<unsigned long long>(attempt + 1),
                 static_cast<unsigned long long>(retries + 1),
                 static_cast<unsigned long long>(delay_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  const auto& [status, body] = *reply;
  if (status != Status::kOk) return fail_with(status, body);

  if (!out_path.empty()) write_out(out_path, body);

  if (cmd == Command::kPing) {
    std::printf("pong\n");
  } else if (cmd == Command::kShutdown) {
    std::printf("server shutting down\n");
  } else if (cmd == Command::kStats) {
    std::printf("%.*s\n", static_cast<int>(body.size()),
                reinterpret_cast<const char*>(body.data()));
  } else if (cmd == Command::kEvaluate) {
    const auto result = store::decode_result(body.data(), body.size());
    if (!result) {
      std::fprintf(stderr, "undecodable evaluate reply\n");
      return 1;
    }
    std::printf("chiplets: %zu\nlinks: %zu\ndiameter: %d\n"
                "avg_hops: %.6g\nzero_load_latency: %.6g cycles\n"
                "saturation: %.6g Tb/s\n",
                result->chiplet_count, result->link_count, result->diameter,
                result->avg_hop_distance, result->zero_load_latency_cycles,
                result->saturation_throughput_bps / 1e12);
  } else if (cmd == Command::kSweep) {
    if (out_path.empty()) {
      std::fwrite(body.data(), 1, body.size(), stdout);
    } else {
      std::printf("sweep CSV written: %s (%zu bytes)\n", out_path.c_str(),
                  body.size());
    }
  } else if (cmd == Command::kSearch) {
    util::ByteReader rd(body.data(), body.size());
    const double best = rd.f64();
    const double baseline = rd.f64();
    const std::uint64_t evals = rd.u64();
    if (!rd.ok()) {
      std::fprintf(stderr, "undecodable search reply\n");
      return 1;
    }
    std::printf("best: %.6g\nbaseline: %.6g\nevaluations: %llu\n", best,
                baseline, static_cast<unsigned long long>(evals));
  }
  return 0;
}
