// Arrangement search: start from a stock family arrangement and hunt for a
// better one with the mutation-based optimizers, scoring candidates with
// the paper's cycle-accurate pipeline. Two engines share the move set and
// objective: the single-chain local search (hill climb / simulated
// annealing) and the population-based parallel tempering of
// search/tempering.hpp. Prints the baseline vs. the best state found and,
// optionally, exports the deterministic step-by-step trace.
//
//   ./search_arrangement [grid|brickwall|hexamesh] [N] [steps]
//       --anneal            simulated annealing instead of hill climbing
//       --tempering K       parallel tempering with K replicas
//       --exchange I        tempering swap attempt every I steps (default 4)
//       --objective O       throughput (default) | latency |
//                           throughput-per-area (thr per mm^2 of D2D links) |
//                           robust (worst-case thr over a fault scenario)
//       --area-weight W     scalarization knob of throughput-per-area
//       --latency           shorthand for --objective latency
//       --fault-kills K     robust objective: score each candidate under K
//                           seeded single-link kills (default 2)
//       --threads K         candidate-evaluation concurrency (default: hw)
//       --seed S            search RNG base seed (default 42)
//       --trace out.csv     export the search trace (.json for JSON)
//       --cache-dir DIR     persist candidate results in an on-disk store
//                           (also via HM_CACHE_DIR; the flag wins)
//       --telemetry         print the metrics snapshot on exit
//       --chrome-trace F    record a Chrome trace (load in Perfetto);
//                           distinct from --trace, which stays the
//                           deterministic step-by-step search CSV
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cli_util.hpp"
#include "core/arrangement.hpp"
#include "noc/routing.hpp"
#include "search/search.hpp"
#include "search/tempering.hpp"
#include "store/result_store.hpp"

namespace {

void usage_and_exit(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [grid|brickwall|hexamesh] [N] [steps] [--anneal] "
      "[--tempering K] [--exchange I] [--objective thr|latency|"
      "thr-per-area|robust] [--area-weight W] [--latency] "
      "[--fault-kills K] [--threads K] "
      "[--seed S] [--trace out.csv] [--cache-dir DIR] [--telemetry] "
      "[--chrome-trace out.json]\n",
      argv0);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hm;
  // --trace here is the deterministic search CSV (CI diffs it across
  // thread counts), so the Chrome trace rides on --chrome-trace instead.
  const auto tcli =
      hm::cli::TelemetryCli::extract(argc, argv, "--chrome-trace");
  tcli.begin();

  std::string family = "hexamesh";
  std::size_t n = 37;
  std::size_t steps = 32;
  std::size_t tempering_replicas = 0;  // 0 = single-chain engine
  std::size_t exchange_interval = 4;
  bool exchange_set = false;
  bool anneal = false;
  hm::search::ObjectiveSpec objective;
  int fault_kills = 0;  // 0 = objective default (robust: 2 single kills)
  unsigned threads = 0;
  unsigned long long seed = 42;
  std::string trace_path;
  std::string cache_dir;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--anneal") == 0) {
      anneal = true;
    } else if (std::strcmp(argv[i], "--tempering") == 0) {
      tempering_replicas = hm::cli::require_size(
          need_value("--tempering"), "--tempering replica count", 1, 64);
    } else if (std::strcmp(argv[i], "--exchange") == 0) {
      exchange_interval = hm::cli::require_size(
          need_value("--exchange"), "--exchange interval", 1, 1000000);
      exchange_set = true;
    } else if (std::strcmp(argv[i], "--objective") == 0) {
      const std::string o = need_value("--objective");
      if (o == "thr" || o == "throughput") {
        objective.kind = hm::search::Objective::kSaturationThroughput;
      } else if (o == "latency") {
        objective.kind = hm::search::Objective::kZeroLoadLatency;
      } else if (o == "thr-per-area" || o == "throughput-per-area") {
        objective.kind = hm::search::Objective::kThroughputPerLinkArea;
      } else if (o == "robust" || o == "robust-throughput") {
        objective.kind = hm::search::Objective::kRobustThroughput;
      } else {
        usage_and_exit(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--area-weight") == 0) {
      objective.area_weight = hm::cli::require_double(
          need_value("--area-weight"), "--area-weight", 0.0, 16.0);
    } else if (std::strcmp(argv[i], "--latency") == 0) {
      objective.kind = hm::search::Objective::kZeroLoadLatency;
    } else if (std::strcmp(argv[i], "--fault-kills") == 0) {
      fault_kills = static_cast<int>(hm::cli::require_size(
          need_value("--fault-kills"), "--fault-kills", 1, 64));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = hm::cli::require_unsigned(need_value("--threads"),
                                          "--threads", 0, 4096);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = hm::cli::require_u64(need_value("--seed"), "--seed");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = need_value("--trace");
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      cache_dir = need_value("--cache-dir");
    } else if (positional == 0) {
      family = argv[i];
      ++positional;
    } else if (positional == 1) {
      n = hm::cli::require_size(argv[i], "N", 1, hm::cli::kMaxChiplets);
      ++positional;
    } else if (positional == 2) {
      steps = hm::cli::require_size(argv[i], "steps", 1, 1000000);
      ++positional;
    } else {
      usage_and_exit(argv[0]);
    }
  }

  // Reject silently-inert flag combinations instead of misleading the
  // user about which schedule actually ran.
  if (tempering_replicas > 0 && anneal) {
    std::fprintf(stderr,
                 "--anneal applies to the single-chain engine only; "
                 "parallel tempering runs fixed-temperature replicas "
                 "(drop one of --anneal / --tempering)\n");
    return 1;
  }
  if (exchange_set && tempering_replicas == 0) {
    std::fprintf(stderr,
                 "--exchange requires --tempering (replica exchange has "
                 "no effect on the single-chain engine)\n");
    return 1;
  }

  core::ArrangementType type;
  if (family == "grid") {
    type = core::ArrangementType::kGrid;
  } else if (family == "brickwall") {
    type = core::ArrangementType::kBrickwall;
  } else if (family == "hexamesh") {
    type = core::ArrangementType::kHexaMesh;
  } else {
    usage_and_exit(argv[0]);
    return 1;  // unreachable
  }

  if (fault_kills > 0 &&
      objective.kind != hm::search::Objective::kRobustThroughput) {
    std::fprintf(stderr,
                 "--fault-kills requires --objective robust (other "
                 "objectives never run the fault scenario)\n");
    return 1;
  }

  // Interactive-speed measurement windows (the defaults are paper-length).
  core::EvaluationParams params;
  params.throughput_warmup = 2000;
  params.throughput_measure = 2000;
  params.latency_measure = 6000;
  if (fault_kills > 0) params.faults.single_link_kills = fault_kills;

  const bool robust =
      objective.kind == hm::search::Objective::kRobustThroughput;
  const bool thr =
      objective.kind != hm::search::Objective::kZeroLoadLatency;
  const auto value = [&](const core::EvaluationResult& r) {
    if (robust) return r.fault_robust_throughput_bps / 1e12;
    return thr ? r.saturation_throughput_bps / 1e12
               : r.zero_load_latency_cycles;
  };
  const char* unit = thr ? "Tb/s" : "cycles";

  try {
    const core::Arrangement start = core::make_arrangement(type, n);
    // --cache-dir wins over HM_CACHE_DIR; either arms the persistent store
    // under whichever engine runs below.
    const std::string store_dir = hm::store::ResultStore::resolve_dir(cache_dir);

    if (tempering_replicas > 0) {
      hm::search::TemperingOptions opt;
      opt.replicas = tempering_replicas;
      opt.steps = steps;
      opt.exchange_interval = exchange_interval;
      opt.objective = objective;
      opt.threads = threads;
      opt.seed = seed;
      opt.params = params;
      opt.cache_dir = store_dir;
      opt.on_progress = [](const hm::search::TemperingProgress& p) {
        std::fprintf(stderr, "\r[%zu/%zu] best %.4g", p.step, p.total,
                     p.best_score);
        if (p.step == p.total) std::fprintf(stderr, "\n");
        std::fflush(stderr);
      };
      hm::search::TemperingEngine engine(opt);
      const auto res = engine.run(start);

      std::printf("start:  %s — %.4g %s\n", start.name().c_str(),
                  value(res.baseline_result), unit);
      std::printf("best:   %s, %zu links — %.4g %s (%+.2f%% score)\n",
                  res.best.name().c_str(), res.best.graph().edge_count(),
                  value(res.best_result), unit,
                  100.0 * (res.best_score - res.baseline_score) /
                      std::abs(res.baseline_score));
      std::printf("ladder:");
      for (const double t : res.temperatures) std::printf(" %.3g", t);
      std::printf(" (coldest -> hottest)\n");
      std::printf(
          "search: %zu steps x %zu replicas, %zu/%zu exchanges accepted, "
          "%zu evaluations (%llu cache hits), %llu incremental rebuilds, "
          "%.1f s\n",
          steps, opt.replicas, res.exchange_accepts, res.exchange_attempts,
          res.evaluations,
          static_cast<unsigned long long>(res.cache_hits),
          static_cast<unsigned long long>(res.incremental_rebuilds),
          res.wall_seconds);
      if (!trace_path.empty()) {
        hm::search::export_trace_file(trace_path, res.trace);
        std::printf("trace exported: %s\n", trace_path.c_str());
      }
      tcli.finish();
      return 0;
    }

    hm::search::SearchOptions opt;
    opt.schedule = anneal ? hm::search::Schedule::kAnneal
                          : hm::search::Schedule::kHillClimb;
    opt.objective = objective;
    opt.steps = steps;
    opt.threads = threads;
    opt.seed = seed;
    opt.params = params;
    opt.cache_dir = store_dir;
    opt.on_progress = [](const hm::search::SearchProgress& p) {
      std::fprintf(stderr, "\r[%zu/%zu] best %.4g", p.step, p.total,
                   p.best_score);
      if (p.step == p.total) std::fprintf(stderr, "\n");
      std::fflush(stderr);
    };
    hm::search::SearchEngine engine(opt);
    const auto res = engine.run(start);

    std::size_t accepted = 0;
    for (const auto& s : res.trace) accepted += s.accepted ? 1 : 0;

    std::printf("start:  %s — %.4g %s\n", start.name().c_str(),
                value(res.baseline_result), unit);
    std::printf("best:   %s, %zu links — %.4g %s (%+.2f%% score)\n",
                res.best.name().c_str(), res.best.graph().edge_count(),
                value(res.best_result), unit,
                100.0 * (res.best_score - res.baseline_score) /
                    std::abs(res.baseline_score));
    std::printf(
        "search: %zu steps, %zu accepted, %zu evaluations "
        "(%llu cache hits), %llu incremental table rebuilds, %.1f s\n",
        res.trace.size(), accepted, res.evaluations,
        static_cast<unsigned long long>(res.cache_hits),
        static_cast<unsigned long long>(res.incremental_rebuilds),
        res.wall_seconds);

    if (!trace_path.empty()) {
      hm::search::export_trace_file(trace_path, res.trace);
      std::printf("trace exported: %s\n", trace_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  tcli.finish();
  return 0;
}
