// Arrangement local search: start from a stock family arrangement and let
// the mutation-based optimizer (relocate/swap chiplets, toggle D2D links)
// hunt for a better one, scoring candidates with the paper's cycle-accurate
// pipeline. Prints the baseline vs. the best state found and, optionally,
// exports the deterministic step-by-step trace.
//
//   ./search_arrangement [grid|brickwall|hexamesh] [N] [steps]
//       --anneal            simulated annealing instead of hill climbing
//       --latency           minimize zero-load latency instead of
//                           maximizing saturation throughput
//       --threads K         candidate-evaluation concurrency (default: hw)
//       --seed S            search RNG base seed (default 42)
//       --trace out.csv     export the search trace (.json for JSON)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/arrangement.hpp"
#include "noc/routing.hpp"
#include "search/search.hpp"

int main(int argc, char** argv) {
  using namespace hm;

  std::string family = "hexamesh";
  std::size_t n = 37;
  hm::search::SearchOptions opt;
  opt.steps = 32;
  std::string trace_path;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--anneal") == 0) {
      opt.schedule = hm::search::Schedule::kAnneal;
    } else if (std::strcmp(argv[i], "--latency") == 0) {
      opt.objective = hm::search::Objective::kZeroLoadLatency;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opt.threads = static_cast<unsigned>(
          std::strtoul(need_value("--threads"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = need_value("--trace");
    } else if (positional == 0) {
      family = argv[i];
      ++positional;
    } else if (positional == 1) {
      n = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    } else {
      opt.steps = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    }
  }

  core::ArrangementType type;
  if (family == "grid") {
    type = core::ArrangementType::kGrid;
  } else if (family == "brickwall") {
    type = core::ArrangementType::kBrickwall;
  } else if (family == "hexamesh") {
    type = core::ArrangementType::kHexaMesh;
  } else {
    std::fprintf(stderr,
                 "usage: %s [grid|brickwall|hexamesh] [N] [steps] [--anneal] "
                 "[--latency] [--threads K] [--seed S] [--trace out.csv]\n",
                 argv[0]);
    return 1;
  }

  // Interactive-speed measurement windows (the defaults are paper-length).
  opt.params.throughput_warmup = 2000;
  opt.params.throughput_measure = 2000;
  opt.params.latency_measure = 6000;
  opt.on_progress = [](const hm::search::SearchProgress& p) {
    std::fprintf(stderr, "\r[%zu/%zu] best %.4g", p.step, p.total,
                 p.best_score);
    if (p.step == p.total) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  };

  try {
    const core::Arrangement start = core::make_arrangement(type, n);
    hm::search::SearchEngine engine(opt);
    const auto res = engine.run(start);

    const bool thr =
        opt.objective == hm::search::Objective::kSaturationThroughput;
    const auto value = [&](const core::EvaluationResult& r) {
      return thr ? r.saturation_throughput_bps / 1e12
                 : r.zero_load_latency_cycles;
    };
    const char* unit = thr ? "Tb/s" : "cycles";
    std::size_t accepted = 0;
    for (const auto& s : res.trace) accepted += s.accepted ? 1 : 0;

    std::printf("start:  %s — %.4g %s\n", start.name().c_str(),
                value(res.baseline_result), unit);
    std::printf("best:   %s, %zu links — %.4g %s (%+.2f%%)\n",
                res.best.name().c_str(), res.best.graph().edge_count(),
                value(res.best_result), unit,
                100.0 * (res.best_score - res.baseline_score) /
                    std::abs(res.baseline_score));
    std::printf(
        "search: %zu steps, %zu accepted, %zu evaluations "
        "(%llu cache hits), %llu incremental table rebuilds, %.1f s\n",
        res.trace.size(), accepted, res.evaluations,
        static_cast<unsigned long long>(res.cache_hits),
        static_cast<unsigned long long>(res.incremental_rebuilds),
        res.wall_seconds);

    if (!trace_path.empty()) {
      hm::search::export_trace_file(trace_path, res.trace);
      std::printf("trace exported: %s\n", trace_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
