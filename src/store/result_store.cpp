#include "store/result_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "store/record.hpp"
#include "telemetry/telemetry.hpp"
#include "util/byte_io.hpp"

namespace hm::store {

namespace fs = std::filesystem;

namespace {

constexpr char kSegmentMagic[4] = {'H', 'M', 'S', 'T'};
constexpr char kIndexMagic[4] = {'H', 'M', 'I', 'X'};
constexpr const char* kIndexName = "index.hmi";
/// Records larger than this are structurally impossible (the result codec
/// is fixed-size); treat bigger lengths as corruption, not allocations.
constexpr std::uint32_t kMaxPayloadLen = 1 << 20;

std::uint32_t process_tag() {
#ifndef _WIN32
  return static_cast<std::uint32_t>(::getpid());
#else
  return 0;
#endif
}

bool is_segment_name(const std::string& name) {
  return name.size() > 8 && name.rfind("seg-", 0) == 0 &&
         name.compare(name.size() - 4, 4, ".hms") == 0;
}

/// Sorted segment file names in `dir` (lexicographic == creation order,
/// because the name starts with the zero-padded hex segment id).
std::vector<std::string> list_segments(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    if (is_segment_name(name)) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t parse_segment_id(const std::string& name) {
  // seg-<16 hex digits>-<pid>.hms; malformed names simply contribute 0.
  if (name.size() < 4 + 16) return 0;
  return std::strtoull(name.substr(4, 16).c_str(), nullptr, 16);
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::vector<std::uint8_t> data;
  if (!is) return data;
  is.seekg(0, std::ios::end);
  const auto size = is.tellg();
  if (size <= 0) return data;
  data.resize(static_cast<std::size_t>(size));
  is.seekg(0);
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!is) data.clear();
  return data;
}

/// Writes `data` to `dir/name` via tmp-file + rename (atomic on POSIX).
void write_file_atomic(const std::string& dir, const std::string& name,
                       const std::vector<std::uint8_t>& data) {
  const fs::path tmp = fs::path(dir) / ("tmp-" + name);
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("ResultStore: cannot write " + tmp.string());
    }
    os.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
    os.flush();
    if (!os) {
      throw std::runtime_error("ResultStore: short write to " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, fs::path(dir) / name, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("ResultStore: cannot rename into " + dir + "/" +
                             name);
  }
}

struct ParsedRecord {
  std::uint64_t key = 0;
  std::uint64_t offset = 0;  ///< of the record header within the segment
  std::uint32_t len = 0;
  std::uint64_t checksum = 0;
  core::EvaluationResult result;
};

/// Walks one segment buffer. Returns false when the header is foreign (bad
/// magic or format version). Structural damage (truncated tail, absurd
/// length) stops the walk; a record whose payload fails its checksum or
/// decode is skipped and counted, later records still load (record framing
/// stays intact when only payload bytes flipped).
bool walk_segment(const std::vector<std::uint8_t>& data,
                  std::vector<ParsedRecord>* out,
                  std::size_t* corrupt_records,
                  std::vector<std::string>* issues,
                  const std::string& name) {
  constexpr std::size_t kHeader = 4 + 4;
  constexpr std::size_t kRecordHeader = 8 + 4 + 8;
  if (data.size() < kHeader ||
      std::memcmp(data.data(), kSegmentMagic, 4) != 0) {
    if (issues) issues->push_back(name + ": bad segment magic");
    return false;
  }
  util::ByteReader hdr(data.data() + 4, 4);
  if (hdr.u32() != kStoreFormatVersion) {
    if (issues) issues->push_back(name + ": foreign format version");
    return false;
  }
  std::size_t off = kHeader;
  while (off < data.size()) {
    if (data.size() - off < kRecordHeader) {
      if (corrupt_records) ++*corrupt_records;
      if (issues) issues->push_back(name + ": truncated record header");
      break;
    }
    util::ByteReader rh(data.data() + off, kRecordHeader);
    ParsedRecord rec;
    rec.key = rh.u64();
    rec.len = rh.u32();
    rec.checksum = rh.u64();
    rec.offset = off;
    if (rec.len > kMaxPayloadLen || data.size() - off - kRecordHeader <
                                        rec.len) {
      if (corrupt_records) ++*corrupt_records;
      if (issues) issues->push_back(name + ": truncated/oversized payload");
      break;
    }
    const std::uint8_t* payload = data.data() + off + kRecordHeader;
    off += kRecordHeader + rec.len;
    if (util::fnv1a_bytes(payload, rec.len) != rec.checksum) {
      if (corrupt_records) ++*corrupt_records;
      if (issues) issues->push_back(name + ": record checksum mismatch");
      continue;
    }
    const auto decoded = decode_result(payload, rec.len);
    if (!decoded) {
      if (corrupt_records) ++*corrupt_records;
      if (issues) issues->push_back(name + ": undecodable record payload");
      continue;
    }
    rec.result = *decoded;
    if (out) out->push_back(std::move(rec));
  }
  return true;
}

struct IndexEntry {
  std::uint64_t key = 0;
  std::uint32_t segment = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
  std::uint64_t checksum = 0;
};

struct IndexFile {
  std::vector<std::pair<std::string, std::uint64_t>> segments;  ///< name,size
  std::vector<IndexEntry> entries;
  std::uint64_t superseded = 0;
};

bool parse_index(const std::vector<std::uint8_t>& data, IndexFile* out) {
  if (data.size() < 8 || std::memcmp(data.data(), kIndexMagic, 4) != 0) {
    return false;
  }
  util::ByteReader rd(data.data() + 4, data.size() - 4);
  if (rd.u32() != kStoreFormatVersion) return false;
  const std::uint64_t nseg = rd.u64();
  if (nseg > 1 << 20) return false;
  for (std::uint64_t s = 0; s < nseg; ++s) {
    const std::uint32_t name_len = rd.u32();
    if (!rd.ok() || name_len > 4096) return false;
    std::string name = rd.string_of(name_len);
    const std::uint64_t size = rd.u64();
    if (!rd.ok()) return false;
    out->segments.emplace_back(std::move(name), size);
  }
  out->superseded = rd.u64();
  const std::uint64_t nent = rd.u64();
  if (!rd.ok() || nent > (1ULL << 32)) return false;
  out->entries.reserve(static_cast<std::size_t>(nent));
  for (std::uint64_t i = 0; i < nent; ++i) {
    IndexEntry e;
    e.key = rd.u64();
    e.segment = rd.u32();
    e.offset = rd.u64();
    e.len = rd.u32();
    e.checksum = rd.u64();
    if (!rd.ok() || e.segment >= out->segments.size()) return false;
    out->entries.push_back(e);
  }
  return rd.exhausted();
}

/// True when the index's segment list matches the directory exactly
/// (same names, same sizes) — the staleness test for index-accelerated
/// open.
bool index_matches_dir(const IndexFile& idx, const std::string& dir,
                       const std::vector<std::string>& dir_segments) {
  if (idx.segments.size() != dir_segments.size()) return false;
  for (std::size_t i = 0; i < dir_segments.size(); ++i) {
    if (idx.segments[i].first != dir_segments[i]) return false;
    std::error_code ec;
    const auto size = fs::file_size(fs::path(dir) / dir_segments[i], ec);
    if (ec || size != idx.segments[i].second) return false;
  }
  return true;
}

}  // namespace

std::shared_ptr<ResultStore> ResultStore::open(const std::string& dir) {
  if (dir.empty()) {
    throw std::runtime_error("ResultStore::open: empty directory path");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("ResultStore: cannot create directory " + dir);
  }
  const std::string canon = fs::weakly_canonical(dir, ec).string();
  const std::string key = ec ? dir : canon;

  // One instance per directory per process (the TopologyContext intern
  // idiom): every engine attached to the same cache dir shares one index,
  // one pending set and one flush stream.
  static std::mutex intern_mu;
  static std::map<std::string, std::weak_ptr<ResultStore>> interned;
  const std::lock_guard<std::mutex> lock(intern_mu);
  if (auto existing = interned[key].lock()) return existing;
  std::shared_ptr<ResultStore> fresh(new ResultStore(dir));
  interned[key] = fresh;
  return fresh;
}

std::string ResultStore::resolve_dir(const std::string& cli_dir) {
  if (!cli_dir.empty()) return cli_dir;
  if (const char* env = std::getenv("HM_CACHE_DIR")) return env;
  return {};
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  load_locked();
}

ResultStore::~ResultStore() {
  // Shutdown flush (the "warm next run" contract). Errors are swallowed:
  // a destructor must not throw, and a failed final flush only costs
  // warmth, never correctness.
  try {
    flush();
  } catch (...) {
  }
}

void ResultStore::load_locked() {
  segment_names_ = list_segments(dir_);
  for (const auto& name : segment_names_) {
    next_segment_id_ =
        std::max(next_segment_id_, parse_segment_id(name) + 1);
  }

  // Fast path: a fresh index file describes exactly the segments on disk,
  // so only the live records get read and decoded.
  IndexFile idx;
  const auto index_data = read_file(fs::path(dir_) / kIndexName);
  if (!index_data.empty() && parse_index(index_data, &idx) &&
      index_matches_dir(idx, dir_, segment_names_)) {
    bool consistent = true;
    std::map<std::uint64_t, Entry> loaded;
    std::vector<std::vector<std::uint8_t>> segment_data(
        segment_names_.size());
    for (const auto& e : idx.entries) {
      auto& data = segment_data[e.segment];
      if (data.empty()) {
        data = read_file(fs::path(dir_) / segment_names_[e.segment]);
      }
      constexpr std::size_t kRecordHeader = 8 + 4 + 8;
      if (e.offset + kRecordHeader + e.len > data.size()) {
        consistent = false;
        break;
      }
      util::ByteReader rh(data.data() + e.offset, kRecordHeader);
      const std::uint64_t key = rh.u64();
      const std::uint32_t len = rh.u32();
      const std::uint64_t checksum = rh.u64();
      const std::uint8_t* payload = data.data() + e.offset + kRecordHeader;
      if (key != e.key || len != e.len || checksum != e.checksum ||
          util::fnv1a_bytes(payload, len) != checksum) {
        consistent = false;
        break;
      }
      const auto decoded = decode_result(payload, len);
      if (!decoded) {
        consistent = false;
        break;
      }
      Entry entry;
      entry.result = *decoded;
      entry.seq = next_seq_ + loaded.size();
      loaded[e.key] = std::move(entry);
    }
    if (consistent) {
      index_ = std::move(loaded);
      next_seq_ += index_.size();
      superseded_records_ = static_cast<std::size_t>(idx.superseded);
      return;
    }
  }

  // Slow path: full scan of every segment in order; later records
  // supersede earlier ones for the same key.
  index_.clear();
  superseded_records_ = 0;
  for (const auto& name : segment_names_) {
    const auto data = read_file(fs::path(dir_) / name);
    std::vector<ParsedRecord> records;
    if (!walk_segment(data, &records, nullptr, nullptr, name)) continue;
    for (auto& rec : records) {
      auto [it, inserted] = index_.try_emplace(rec.key);
      if (!inserted) ++superseded_records_;
      it->second.result = std::move(rec.result);
      it->second.seq = next_seq_++;
    }
  }
}

std::optional<core::EvaluationResult> ResultStore::lookup(
    std::uint64_t key, std::uint64_t* seq_out) const {
  static telemetry::Counter hits("store.hits");
  static telemetry::Counter misses("store.misses");
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses.add();
    return std::nullopt;
  }
  hits.add();
  if (seq_out != nullptr) *seq_out = it->second.seq;
  return it->second.result;
}

void ResultStore::put(std::uint64_t key,
                      const core::EvaluationResult& result) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = index_.try_emplace(key);
  it->second.result = result;
  it->second.seq = next_seq_++;
  if (inserted || pending_.empty() || pending_.back() != key) {
    pending_.push_back(key);
  }
}

std::size_t ResultStore::flush() {
  static telemetry::Counter flushes("store.flushes");
  const std::unique_lock<std::shared_mutex> lock(mu_);
  if (pending_.empty()) return 0;

  // A key staged repeatedly only needs one record of its current value.
  std::vector<std::uint64_t> keys;
  keys.reserve(pending_.size());
  for (const std::uint64_t key : pending_) {
    if (index_.count(key) == 0) continue;  // clear()ed away before flush
    bool seen = false;
    for (const std::uint64_t k : keys) {
      if (k == key) {
        seen = true;
        break;
      }
    }
    if (!seen) keys.push_back(key);
  }
  std::size_t written = 0;
  if (!keys.empty()) {
    written = write_segment_locked(keys);
    write_index_locked();
  }
  pending_.clear();
  flushes.add();
  return written;
}

std::size_t ResultStore::write_segment_locked(
    const std::vector<std::uint64_t>& keys) {
  std::vector<std::uint8_t> data;
  util::ByteWriter w(data);
  w.bytes(kSegmentMagic, 4).u32(kStoreFormatVersion);
  for (const std::uint64_t key : keys) {
    std::vector<std::uint8_t> payload;
    encode_result(index_.at(key).result, payload);
    w.u64(key)
        .u32(static_cast<std::uint32_t>(payload.size()))
        .u64(util::fnv1a_bytes(payload.data(), payload.size()))
        .bytes(payload.data(), payload.size());
  }

  char name[64];
  std::snprintf(name, sizeof(name), "seg-%016llx-%08x.hms",
                static_cast<unsigned long long>(next_segment_id_++),
                process_tag());
  write_file_atomic(dir_, name, data);
  segment_names_.push_back(name);
  std::sort(segment_names_.begin(), segment_names_.end());
  return keys.size();
}

void ResultStore::write_index_locked() {
  // Rebuild the dedup index from the segments on disk (cheap: headers are
  // re-walked structurally, payloads are not decoded) so the entry
  // locations are exact even for keys written by earlier processes.
  std::vector<std::uint8_t> out;
  util::ByteWriter w(out);
  w.bytes(kIndexMagic, 4).u32(kStoreFormatVersion);
  w.u64(segment_names_.size());
  for (const auto& name : segment_names_) {
    std::error_code ec;
    const auto size = fs::file_size(fs::path(dir_) / name, ec);
    w.u32(static_cast<std::uint32_t>(name.size()));
    w.bytes(name.data(), name.size());
    w.u64(ec ? 0 : static_cast<std::uint64_t>(size));
  }

  std::map<std::uint64_t, IndexEntry> live;
  std::size_t superseded = 0;
  for (std::size_t s = 0; s < segment_names_.size(); ++s) {
    const auto data = read_file(fs::path(dir_) / segment_names_[s]);
    std::vector<ParsedRecord> records;
    if (!walk_segment(data, &records, nullptr, nullptr, segment_names_[s])) {
      continue;
    }
    for (const auto& rec : records) {
      auto [it, inserted] = live.try_emplace(rec.key);
      if (!inserted) ++superseded;
      it->second = {rec.key, static_cast<std::uint32_t>(s), rec.offset,
                    rec.len, rec.checksum};
    }
  }
  superseded_records_ = superseded;
  w.u64(superseded);
  w.u64(live.size());
  for (const auto& [key, e] : live) {
    w.u64(e.key).u32(e.segment).u64(e.offset).u32(e.len).u64(e.checksum);
  }
  write_file_atomic(dir_, kIndexName, out);
}

std::uint64_t ResultStore::next_sequence() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return next_seq_;
}

std::size_t ResultStore::merge_from(const ResultStore& other) {
  if (&other == this) return 0;
  // Snapshot the source first so the two locks never nest (a concurrent
  // A.merge_from(B) / B.merge_from(A) pair must not deadlock).
  std::vector<std::pair<std::uint64_t, core::EvaluationResult>> source;
  {
    const std::shared_lock<std::shared_mutex> lock(other.mu_);
    source.reserve(other.index_.size());
    for (const auto& [key, entry] : other.index_) {
      source.emplace_back(key, entry.result);
    }
  }
  std::size_t imported = 0;
  const std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [key, result] : source) {
    auto [it, inserted] = index_.try_emplace(key);
    if (!inserted) continue;  // deterministic keys: local value is the value
    it->second.result = std::move(result);
    it->second.seq = next_seq_++;
    pending_.push_back(key);
    ++imported;
  }
  return imported;
}

void ResultStore::compact() {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<std::uint64_t> keys;
  keys.reserve(index_.size());
  for (const auto& [key, entry] : index_) keys.push_back(key);

  const std::vector<std::string> old_segments = segment_names_;
  if (!keys.empty()) {
    write_segment_locked(keys);  // appends the fresh segment name
  }
  // The fresh segment holds every live record, so the old files are dead
  // weight now; removal failures only leave harmless duplicates behind.
  std::vector<std::string> kept;
  for (const auto& name : segment_names_) {
    bool is_old = false;
    for (const auto& old : old_segments) {
      if (name == old) {
        is_old = true;
        break;
      }
    }
    if (is_old) {
      std::error_code ec;
      fs::remove(fs::path(dir_) / name, ec);
      if (ec) kept.push_back(name);
    } else {
      kept.push_back(name);
    }
  }
  segment_names_ = std::move(kept);
  pending_.clear();
  write_index_locked();
}

StoreStats ResultStore::stats() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  StoreStats s;
  s.entries = index_.size();
  s.segments = segment_names_.size();
  s.superseded_records = superseded_records_;
  s.pending = pending_.size();
  for (const auto& name : segment_names_) {
    std::error_code ec;
    const auto size = fs::file_size(fs::path(dir_) / name, ec);
    if (!ec) s.disk_bytes += size;
  }
  std::error_code ec;
  const auto idx_size = fs::file_size(fs::path(dir_) / kIndexName, ec);
  if (!ec) s.disk_bytes += idx_size;
  return s;
}

std::size_t ResultStore::entry_count() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return index_.size();
}

ResultStore::VerifyReport ResultStore::verify(const std::string& dir) {
  VerifyReport report;
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    report.issues.push_back(dir + ": not a directory");
    ++report.foreign_segments;
    return report;
  }
  const auto segments = list_segments(dir);
  report.segments = segments.size();
  std::map<std::uint64_t, IndexEntry> live;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const auto data = read_file(fs::path(dir) / segments[s]);
    std::vector<ParsedRecord> records;
    if (!walk_segment(data, &records, &report.corrupt_records,
                      &report.issues, segments[s])) {
      ++report.foreign_segments;
      continue;
    }
    for (const auto& rec : records) {
      ++report.records;
      live[rec.key] = {rec.key, static_cast<std::uint32_t>(s), rec.offset,
                       rec.len, rec.checksum};
    }
  }

  const auto index_data = read_file(fs::path(dir) / kIndexName);
  if (!index_data.empty()) {
    report.index_present = true;
    IndexFile idx;
    if (!parse_index(index_data, &idx)) {
      report.issues.push_back("index.hmi: unparseable");
    } else if (!index_matches_dir(idx, dir, segments)) {
      report.issues.push_back("index.hmi: stale (segment set mismatch)");
    } else if (idx.entries.size() != live.size()) {
      report.issues.push_back("index.hmi: entry count mismatch");
    } else {
      bool entries_ok = true;
      for (const auto& e : idx.entries) {
        const auto it = live.find(e.key);
        if (it == live.end() || it->second.segment != e.segment ||
            it->second.offset != e.offset || it->second.len != e.len ||
            it->second.checksum != e.checksum) {
          entries_ok = false;
          report.issues.push_back("index.hmi: entry mismatch for key");
          break;
        }
      }
      report.index_ok = entries_ok;
    }
  }
  return report;
}

}  // namespace hm::store
