// Content-addressed persistent store of evaluation results.
//
// The sharded in-process explore::ResultCache dies with the process, so
// every CI run and every user re-pays the whole sweep even though the
// stable 64-bit content hashes of (arrangement, params, traffic) already
// make result keys portable across processes. ResultStore is the on-disk
// tier under that cache: a directory of append-only segment files plus an
// index, holding versioned, endianness-stable binary records of
// core::EvaluationResult keyed by those hashes (store/record.hpp).
//
// On-disk layout (`dir/`):
//   seg-<id>-<pid>.hms   append-only segments, written once, never edited:
//                        header {magic "HMST", u32 format version}, then
//                        records {u64 key, u32 payload_len, u64 fnv1a
//                        checksum, payload}. Lexicographic segment order is
//                        the total order; a later record for the same key
//                        supersedes earlier ones.
//   index.hmi            dedup index rewritten on every flush/compact:
//                        the segment set (names + sizes) and, per live key,
//                        the (segment, offset, len, checksum) of its latest
//                        record. open() uses it to read exactly the live
//                        records; when it is missing or stale (segment set
//                        mismatch) open falls back to a full segment scan
//                        and rebuilds it on the next flush.
//
// Crash safety: segments and the index are written to a tmp- file and
// renamed into place, so a crash mid-flush leaves at worst an ignored tmp-
// file, never a half-valid segment. Corrupt or truncated records (bad
// magic, checksum mismatch, undecodable payload, foreign format version)
// are skipped on load and reported by verify() — a damaged store degrades
// to misses, it never serves a misread result.
//
// Concurrency: one ResultStore instance per directory per process
// (open() interns by canonical path, the same idiom as the
// noc::TopologyContext cache), with a shared_mutex over the in-memory
// index — concurrent lookups from sweep workers are shared-lock reads,
// put/flush/merge/compact are exclusive. Cross-process writers are safe
// against each other through the pid-suffixed segment names and atomic
// renames; concurrent cross-process flushes simply interleave as separate
// segments.
//
// Telemetry: lookups and flushes publish the store.{hits,misses,flushes}
// counter family through telemetry::snapshot().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/evaluator.hpp"

namespace hm::store {

/// On-disk store format; bump on any layout change. Segments (and stores)
/// written with a different version are rejected wholesale on load.
inline constexpr std::uint32_t kStoreFormatVersion = 1;

struct StoreStats {
  std::size_t entries = 0;          ///< live keys in the index
  std::size_t segments = 0;         ///< segment files on disk
  std::uint64_t disk_bytes = 0;     ///< total size of segments + index
  std::size_t superseded_records = 0;  ///< duplicate records compaction drops
  std::size_t pending = 0;          ///< puts not yet flushed to a segment
};

class ResultStore {
 public:
  /// Opens (creating the directory if needed) the store at `dir`. One
  /// instance per canonical directory per process: a second open() of the
  /// same directory returns the same instance, so every engine attached to
  /// one cache dir shares one warm index and one pending set. Throws
  /// std::runtime_error when the directory cannot be created or read.
  [[nodiscard]] static std::shared_ptr<ResultStore> open(
      const std::string& dir);

  /// Resolves the cache directory from a CLI value and the HM_CACHE_DIR
  /// environment variable (CLI wins). Empty when neither is set.
  [[nodiscard]] static std::string resolve_dir(const std::string& cli_dir);

  /// Returns the stored result for `key`, if any. `seq_out`, when given,
  /// receives the entry's load/insert sequence number — the freshness
  /// token ResultCache's clear() watermark compares against. Counts a
  /// store.hit or store.miss.
  [[nodiscard]] std::optional<core::EvaluationResult> lookup(
      std::uint64_t key, std::uint64_t* seq_out = nullptr) const;

  /// Stages `result` under `key` (visible to lookup immediately, durable
  /// after the next flush). Last writer wins; with deterministic
  /// evaluation, racing writers stage identical values.
  void put(std::uint64_t key, const core::EvaluationResult& result);

  /// Writes every staged put into one new segment (write-temp-then-rename)
  /// and rewrites the index. Returns the number of records written (0 when
  /// nothing was pending — no empty segments). Throws std::runtime_error
  /// on I/O failure; the staged entries stay pending in that case.
  std::size_t flush();

  /// The sequence number the next loaded/staged entry would get. Entries
  /// with seq < next_sequence() existed before "now" — the watermark
  /// ResultCache::clear() uses to stop resurrecting pre-clear disk state.
  [[nodiscard]] std::uint64_t next_sequence() const;

  /// Imports every key present in `other` but absent here (content hashes
  /// collide only for identical inputs, so the local value wins on
  /// overlap). Returns the number of imported entries; call flush() to
  /// persist them.
  std::size_t merge_from(const ResultStore& other);

  /// Rewrites all live entries (pending included) into a single fresh
  /// segment and deletes the superseded segment files. Throws
  /// std::runtime_error on I/O failure, leaving the old segments intact.
  void compact();

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::size_t entry_count() const;

  /// Offline integrity check of a store directory: walks every segment
  /// record by record (magic, version, bounds, checksum, payload decode)
  /// and validates the index against the segment set. Does not require —
  /// and does not create — an open store.
  struct VerifyReport {
    std::size_t segments = 0;
    std::size_t records = 0;           ///< well-formed records
    std::size_t corrupt_records = 0;   ///< checksum/decode/bounds failures
    std::size_t foreign_segments = 0;  ///< bad magic or format version
    bool index_present = false;
    bool index_ok = false;  ///< parses and matches the segment set
    std::vector<std::string> issues;  ///< human-readable findings
    [[nodiscard]] bool clean() const noexcept {
      return corrupt_records == 0 && foreign_segments == 0 &&
             (!index_present || index_ok);
    }
  };
  [[nodiscard]] static VerifyReport verify(const std::string& dir);

  ~ResultStore();
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

 private:
  explicit ResultStore(std::string dir);

  struct Entry {
    core::EvaluationResult result;
    std::uint64_t seq = 0;
  };

  void load_locked();
  std::size_t write_segment_locked(const std::vector<std::uint64_t>& keys);
  void write_index_locked();

  const std::string dir_;
  mutable std::shared_mutex mu_;
  std::map<std::uint64_t, Entry> index_;       ///< key -> latest value
  std::vector<std::uint64_t> pending_;         ///< keys staged since flush
  std::vector<std::string> segment_names_;     ///< sorted, loaded set
  std::size_t superseded_records_ = 0;         ///< duplicates seen on load
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_segment_id_ = 0;
};

}  // namespace hm::store
