// Versioned binary codec for core::EvaluationResult — the payload format of
// the persistent result store and of the server's evaluate replies.
//
// Every field is serialized explicitly, in a fixed order, with an explicit
// width, little-endian (util/byte_io.hpp), so records are portable across
// hosts and bit-exact through a round trip: doubles travel as IEEE-754 bit
// patterns (NaN payloads and -0.0 survive — the same values
// saturation_rate_key normalizes before memo keying must come back
// unchanged from disk).
//
// The leading version byte gates decoding: when EvaluationResult grows or
// changes a field, bump kResultCodecVersion and old records are rejected
// cleanly (a store miss, never a misread). decode also rejects payloads
// whose size differs from the fixed record size — a truncated or padded
// payload is corruption, not a best-effort partial result.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/evaluator.hpp"

namespace hm::store {

/// Bump whenever the EvaluationResult field set or encoding changes.
inline constexpr std::uint8_t kResultCodecVersion = 1;

/// Encoded size: 1 version byte + the fixed-width fields below. Kept as a
/// constant so decode can reject wrong-sized payloads outright.
inline constexpr std::size_t kEncodedResultSize =
    1 +       // codec version
    8 + 1 +   // chiplet_count, regularity
    8 + 8 + 8 +                // diameter, avg_hop_distance, bisection_links
    8 + 8 + 8 + 8 + 8 +        // link_count .. full_global_bandwidth_bps
    8 + 8 + 8 + 1 +            // latency/saturation measurements + drained
    8 + 8 + 8 + 8 + 8;         // fault_* block

/// Appends the encoded record to `out`.
void encode_result(const core::EvaluationResult& r,
                   std::vector<std::uint8_t>& out);

/// Decodes a payload previously produced by encode_result. Returns nullopt
/// on any mismatch: wrong size, wrong version byte, or a malformed field
/// (e.g. a bool byte that is neither 0 nor 1, an enum out of range).
[[nodiscard]] std::optional<core::EvaluationResult> decode_result(
    const std::uint8_t* data, std::size_t size);

}  // namespace hm::store
