#include "store/record.hpp"

#include "util/byte_io.hpp"

namespace hm::store {

void encode_result(const core::EvaluationResult& r,
                   std::vector<std::uint8_t>& out) {
  util::ByteWriter w(out);
  w.u8(kResultCodecVersion)
      .u64(r.chiplet_count)
      .u8(static_cast<std::uint8_t>(r.regularity))
      .i64(r.diameter)
      .f64(r.avg_hop_distance)
      .u64(r.bisection_links)
      .u64(r.link_count)
      .f64(r.chiplet_area_mm2)
      .f64(r.link_area_mm2)
      .f64(r.per_link_bandwidth_bps)
      .f64(r.full_global_bandwidth_bps)
      .f64(r.zero_load_latency_cycles)
      .f64(r.saturation_fraction)
      .f64(r.saturation_throughput_bps)
      .boolean(r.latency_run_drained)
      .u64(r.fault_plans_run)
      .f64(r.fault_degraded_throughput)
      .f64(r.fault_robust_throughput_bps)
      .i64(r.fault_recovery_cycles)
      .u64(r.fault_packets_lost);
}

std::optional<core::EvaluationResult> decode_result(const std::uint8_t* data,
                                                    std::size_t size) {
  if (size != kEncodedResultSize) return std::nullopt;
  util::ByteReader rd(data, size);
  if (rd.u8() != kResultCodecVersion) return std::nullopt;

  core::EvaluationResult r;
  r.chiplet_count = static_cast<std::size_t>(rd.u64());
  const std::uint8_t regularity = rd.u8();
  if (regularity >
      static_cast<std::uint8_t>(core::RegularityClass::kIrregular)) {
    return std::nullopt;
  }
  r.regularity = static_cast<core::RegularityClass>(regularity);
  r.diameter = static_cast<int>(rd.i64());
  r.avg_hop_distance = rd.f64();
  r.bisection_links = static_cast<std::size_t>(rd.u64());
  r.link_count = static_cast<std::size_t>(rd.u64());
  r.chiplet_area_mm2 = rd.f64();
  r.link_area_mm2 = rd.f64();
  r.per_link_bandwidth_bps = rd.f64();
  r.full_global_bandwidth_bps = rd.f64();
  r.zero_load_latency_cycles = rd.f64();
  r.saturation_fraction = rd.f64();
  r.saturation_throughput_bps = rd.f64();
  r.latency_run_drained = rd.boolean();
  r.fault_plans_run = static_cast<std::size_t>(rd.u64());
  r.fault_degraded_throughput = rd.f64();
  r.fault_robust_throughput_bps = rd.f64();
  r.fault_recovery_cycles = rd.i64();
  r.fault_packets_lost = rd.u64();
  if (!rd.exhausted()) return std::nullopt;
  return r;
}

}  // namespace hm::store
