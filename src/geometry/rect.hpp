// Planar geometry primitives used to model physical chiplet placements
// (paper Figs. 2-5): axis-aligned rectangles for chiplets and bump sectors,
// and simple polygons for the trapezoidal bump sectors of the grid layout.
#pragma once

#include <string>
#include <vector>

namespace hm::geom {

/// Geometric tolerance (mm) for adjacency/containment decisions. Chiplet
/// dimensions are O(1..30) mm and coordinates are built from a handful of
/// floating-point operations, so 1e-6 mm absorbs all rounding error while
/// staying far below manufacturing scales (bump pitches are >= 30e-3 mm).
inline constexpr double kEps = 1e-6;

/// A 2D point (mm).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// An axis-aligned rectangle with lower-left corner (x, y), width w, height h
/// (all mm). Degenerate (zero-area) rectangles are allowed only as
/// intermediate values; validate() rejects them.
struct Rect {
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;

  [[nodiscard]] double left() const noexcept { return x; }
  [[nodiscard]] double right() const noexcept { return x + w; }
  [[nodiscard]] double bottom() const noexcept { return y; }
  [[nodiscard]] double top() const noexcept { return y + h; }
  [[nodiscard]] double area() const noexcept { return w * h; }
  [[nodiscard]] Point center() const noexcept { return {x + w / 2, y + h / 2}; }

  /// Throws std::invalid_argument unless w > 0 and h > 0.
  void validate() const;

  /// True iff the two rectangles overlap with positive area.
  [[nodiscard]] bool overlaps(const Rect& o) const noexcept;

  /// True iff `p` lies inside or on the boundary (within kEps).
  [[nodiscard]] bool contains(const Point& p) const noexcept;

  /// "Rect(x, y, w, h)" with 4 significant digits.
  [[nodiscard]] std::string to_string() const;
};

/// Length of the shared boundary segment between two non-overlapping,
/// edge-adjacent rectangles; 0 if they only touch at a corner or not at all.
/// This implements the paper's adjacency rule (Sec. III-C): chiplets are
/// connectable iff they share a common edge of positive length.
[[nodiscard]] double shared_edge_length(const Rect& a, const Rect& b) noexcept;

/// Euclidean distance between two points.
[[nodiscard]] double distance(const Point& a, const Point& b) noexcept;

/// A simple polygon (vertices in counter-clockwise order).
struct Polygon {
  std::vector<Point> vertices;

  /// Signed shoelace area; positive for counter-clockwise orientation.
  [[nodiscard]] double signed_area() const noexcept;

  /// Absolute enclosed area.
  [[nodiscard]] double area() const noexcept;
};

/// The polygon of a rectangle (counter-clockwise from the lower-left corner).
[[nodiscard]] Polygon to_polygon(const Rect& r);

/// Smallest axis-aligned rectangle enclosing all given rectangles.
/// Throws std::invalid_argument for an empty input.
[[nodiscard]] Rect bounding_box(const std::vector<Rect>& rects);

}  // namespace hm::geom
