// Physical chiplet placement: a rectangle per chiplet plus derived
// quantities — the shared-edge adjacency graph (paper Sec. III-C), overlap
// validation, bounding box, and area utilization. The combinatorial
// arrangement generators in hm_core produce placements; tests cross-check
// that geometric adjacency equals the combinatorial adjacency graph.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/rect.hpp"
#include "graph/graph.hpp"

namespace hm::geom {

/// A set of placed chiplet rectangles (index = chiplet id).
class ChipletPlacement {
 public:
  ChipletPlacement() = default;

  /// Takes ownership of the chiplet rectangles. Each rectangle must have
  /// positive area (std::invalid_argument otherwise).
  explicit ChipletPlacement(std::vector<Rect> chiplets);

  /// Appends one chiplet; returns its id.
  std::size_t add_chiplet(const Rect& r);

  [[nodiscard]] std::size_t size() const noexcept { return chiplets_.size(); }
  [[nodiscard]] const Rect& chiplet(std::size_t i) const;
  [[nodiscard]] const std::vector<Rect>& chiplets() const noexcept {
    return chiplets_;
  }

  /// True iff no two chiplets overlap with positive area. O(n^2); placements
  /// here are <= a few hundred chiplets.
  [[nodiscard]] bool is_overlap_free() const noexcept;

  /// Derives the adjacency graph: vertices = chiplets, edge {a,b} iff the
  /// rectangles share a boundary segment strictly longer than `min_contact`
  /// (mm). Corner-only contact never creates an edge (paper Sec. III-C).
  [[nodiscard]] graph::Graph adjacency_graph(double min_contact = kEps) const;

  /// Length of the shared boundary between chiplets a and b (0 if none).
  [[nodiscard]] double contact_length(std::size_t a, std::size_t b) const;

  /// Straight-line distance between the centers of the shared boundary
  /// segments is not defined for non-adjacent chiplets; for adjacent ones the
  /// D2D link spans the shared edge, so we report the center-to-center
  /// distance of the two rectangles as a conservative routing-length proxy.
  [[nodiscard]] double center_distance(std::size_t a, std::size_t b) const;

  /// Smallest axis-aligned rectangle containing all chiplets
  /// (the interposer/package-substrate footprint under the arrangement).
  [[nodiscard]] Rect bounding_box() const;

  /// sum(chiplet areas) / bounding-box area, in (0, 1].
  [[nodiscard]] double utilization() const;

  /// ASCII rendering of the placement (top view), `cols` characters wide.
  /// Each chiplet is filled with a letter/digit cycling through ids.
  [[nodiscard]] std::string to_ascii(std::size_t cols = 72) const;

 private:
  void check_index(std::size_t i) const;
  std::vector<Rect> chiplets_;
};

}  // namespace hm::geom
