#include "geometry/placement.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace hm::geom {

ChipletPlacement::ChipletPlacement(std::vector<Rect> chiplets)
    : chiplets_(std::move(chiplets)) {
  for (const Rect& r : chiplets_) r.validate();
}

std::size_t ChipletPlacement::add_chiplet(const Rect& r) {
  r.validate();
  chiplets_.push_back(r);
  return chiplets_.size() - 1;
}

void ChipletPlacement::check_index(std::size_t i) const {
  if (i >= chiplets_.size()) {
    throw std::out_of_range("ChipletPlacement: chiplet index out of range");
  }
}

const Rect& ChipletPlacement::chiplet(std::size_t i) const {
  check_index(i);
  return chiplets_[i];
}

bool ChipletPlacement::is_overlap_free() const noexcept {
  for (std::size_t a = 0; a < chiplets_.size(); ++a) {
    for (std::size_t b = a + 1; b < chiplets_.size(); ++b) {
      if (chiplets_[a].overlaps(chiplets_[b])) return false;
    }
  }
  return true;
}

graph::Graph ChipletPlacement::adjacency_graph(double min_contact) const {
  graph::Graph g(chiplets_.size());
  for (std::size_t a = 0; a < chiplets_.size(); ++a) {
    for (std::size_t b = a + 1; b < chiplets_.size(); ++b) {
      if (shared_edge_length(chiplets_[a], chiplets_[b]) > min_contact) {
        g.add_edge(static_cast<graph::NodeId>(a),
                   static_cast<graph::NodeId>(b));
      }
    }
  }
  return g;
}

double ChipletPlacement::contact_length(std::size_t a, std::size_t b) const {
  check_index(a);
  check_index(b);
  return shared_edge_length(chiplets_[a], chiplets_[b]);
}

double ChipletPlacement::center_distance(std::size_t a, std::size_t b) const {
  check_index(a);
  check_index(b);
  return distance(chiplets_[a].center(), chiplets_[b].center());
}

Rect ChipletPlacement::bounding_box() const {
  return hm::geom::bounding_box(chiplets_);
}

double ChipletPlacement::utilization() const {
  const Rect bb = bounding_box();
  double total = 0.0;
  for (const Rect& r : chiplets_) total += r.area();
  return total / bb.area();
}

std::string ChipletPlacement::to_ascii(std::size_t cols) const {
  if (chiplets_.empty()) return "(empty placement)\n";
  const Rect bb = bounding_box();
  cols = std::max<std::size_t>(cols, 8);
  // Terminal cells are roughly twice as tall as wide; halve the row count to
  // keep the aspect ratio visually faithful.
  const double cell_w = bb.w / static_cast<double>(cols);
  const std::size_t rows =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::lround(bb.h / cell_w / 2.0)));
  const double cell_h = bb.h / static_cast<double>(rows);

  static const char* kGlyphs =
      "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
  const std::size_t n_glyphs = 62;

  std::string out;
  out.reserve((cols + 1) * rows);
  for (std::size_t row = 0; row < rows; ++row) {
    // Render top row first (larger y).
    const double y =
        bb.bottom() + (static_cast<double>(rows - 1 - row) + 0.5) * cell_h;
    for (std::size_t col = 0; col < cols; ++col) {
      const double x = bb.left() + (static_cast<double>(col) + 0.5) * cell_w;
      char glyph = '.';
      for (std::size_t i = 0; i < chiplets_.size(); ++i) {
        if (chiplets_[i].contains({x, y})) {
          glyph = kGlyphs[i % n_glyphs];
          break;
        }
      }
      out.push_back(glyph);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace hm::geom
