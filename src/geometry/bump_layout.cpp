#include "geometry/bump_layout.hpp"

#include <algorithm>
#include <stdexcept>

namespace hm::geom {

std::string to_string(SectorRole role) {
  switch (role) {
    case SectorRole::kPower: return "power";
    case SectorRole::kLinkNorth: return "N";
    case SectorRole::kLinkEast: return "E";
    case SectorRole::kLinkSouth: return "S";
    case SectorRole::kLinkWest: return "W";
    case SectorRole::kLinkNorthWest: return "NW";
    case SectorRole::kLinkNorthEast: return "NE";
    case SectorRole::kLinkSouthWest: return "SW";
    case SectorRole::kLinkSouthEast: return "SE";
  }
  return "?";
}

std::vector<BumpSector> grid_bump_layout(double wc, double wp) {
  if (!(wc > 0.0) || !(wp > 0.0) || !(wp < wc)) {
    throw std::invalid_argument(
        "grid_bump_layout: need 0 < wp < wc (power square inside chiplet)");
  }
  const double m = (wc - wp) / 2.0;  // frame thickness == D_B
  // Power square corners.
  const Point p00{m, m}, p10{wc - m, m}, p11{wc - m, wc - m}, p01{m, wc - m};
  // Chiplet corners.
  const Point c00{0, 0}, c10{wc, 0}, c11{wc, wc}, c01{0, wc};

  std::vector<BumpSector> sectors;
  sectors.push_back({SectorRole::kPower, Polygon{{p00, p10, p11, p01}}});
  // Four trapezoids between the chiplet edge and the power square, bounded by
  // the diagonals chiplet-corner -> power-corner (all counter-clockwise).
  sectors.push_back({SectorRole::kLinkSouth, Polygon{{c00, c10, p10, p00}}});
  sectors.push_back({SectorRole::kLinkEast, Polygon{{c10, c11, p11, p10}}});
  sectors.push_back({SectorRole::kLinkNorth, Polygon{{c11, c01, p01, p11}}});
  sectors.push_back({SectorRole::kLinkWest, Polygon{{c01, c00, p00, p01}}});
  return sectors;
}

std::vector<BumpSector> hex_bump_layout(double wc, double hc, double db) {
  if (!(wc > 0.0) || !(hc > 0.0) || !(db > 0.0) || !(2.0 * db < hc) ||
      !(2.0 * db < wc)) {
    throw std::invalid_argument(
        "hex_bump_layout: need 0 < 2*db < min(wc, hc)");
  }
  const double lb = hc - 2.0 * db;  // middle band height (paper's L_B)
  const double half = wc / 2.0;

  auto rect_sector = [](SectorRole role, double x, double y, double w,
                        double h) {
    return BumpSector{role, to_polygon(Rect{x, y, w, h})};
  };

  std::vector<BumpSector> sectors;
  // Middle band: West | Power | East.
  sectors.push_back(
      rect_sector(SectorRole::kPower, db, db, wc - 2.0 * db, lb));
  sectors.push_back(rect_sector(SectorRole::kLinkWest, 0.0, db, db, lb));
  sectors.push_back(rect_sector(SectorRole::kLinkEast, wc - db, db, db, lb));
  // Top band: NW | NE.
  sectors.push_back(
      rect_sector(SectorRole::kLinkNorthWest, 0.0, hc - db, half, db));
  sectors.push_back(
      rect_sector(SectorRole::kLinkNorthEast, half, hc - db, half, db));
  // Bottom band: SW | SE.
  sectors.push_back(rect_sector(SectorRole::kLinkSouthWest, 0.0, 0.0, half, db));
  sectors.push_back(
      rect_sector(SectorRole::kLinkSouthEast, half, 0.0, half, db));
  return sectors;
}

double max_bump_to_edge_distance(const BumpSector& sector, double wc,
                                 double hc) {
  if (sector.role == SectorRole::kPower) {
    throw std::invalid_argument(
        "max_bump_to_edge_distance: power sector serves no edge");
  }
  double worst = 0.0;
  for (const Point& p : sector.shape.vertices) {
    double d = 0.0;
    switch (sector.role) {
      case SectorRole::kLinkNorth:
      case SectorRole::kLinkNorthWest:
      case SectorRole::kLinkNorthEast:
        d = hc - p.y;
        break;
      case SectorRole::kLinkSouth:
      case SectorRole::kLinkSouthWest:
      case SectorRole::kLinkSouthEast:
        d = p.y;
        break;
      case SectorRole::kLinkEast:
        d = wc - p.x;
        break;
      case SectorRole::kLinkWest:
        d = p.x;
        break;
      case SectorRole::kPower:
        break;  // unreachable
    }
    worst = std::max(worst, d);
  }
  return worst;
}

}  // namespace hm::geom
