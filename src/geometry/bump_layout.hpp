// Bump-sector layouts of paper Fig. 5: the chiplet area is divided into one
// central sector for power-supply bumps and one sector of C4/micro-bumps per
// D2D link. The layout determines the area A_B available per link (hence the
// link bandwidth, Sec. V) and the maximum bump-to-edge distance D_B (hence
// the link length, Sec. IV-B).
#pragma once

#include <string>
#include <vector>

#include "geometry/rect.hpp"

namespace hm::geom {

/// Which chiplet edge (or function) a bump sector serves.
enum class SectorRole {
  kPower,           ///< central power-supply bumps
  kLinkNorth,       ///< grid: link across the top edge
  kLinkEast,        ///< grid + hex: link across the right edge
  kLinkSouth,       ///< grid: link across the bottom edge
  kLinkWest,        ///< grid + hex: link across the left edge
  kLinkNorthWest,   ///< hex: link across the left half of the top edge
  kLinkNorthEast,   ///< hex: link across the right half of the top edge
  kLinkSouthWest,   ///< hex: link across the left half of the bottom edge
  kLinkSouthEast,   ///< hex: link across the right half of the bottom edge
};

/// Short name, e.g. "power", "N", "NE".
[[nodiscard]] std::string to_string(SectorRole role);

/// One bump sector in chiplet-local coordinates (origin = lower-left corner).
struct BumpSector {
  SectorRole role = SectorRole::kPower;
  Polygon shape;

  [[nodiscard]] double area() const { return shape.area(); }
};

/// Fig. 5a layout for grid chiplets: a centered power square of side `wp`
/// inside a square chiplet of side `wc`, with the remaining frame cut along
/// the corner diagonals into four congruent trapezoids (N/E/S/W links).
/// Requires 0 < wp < wc.
[[nodiscard]] std::vector<BumpSector> grid_bump_layout(double wc, double wp);

/// Fig. 5b layout for brickwall/HexaMesh chiplets: chiplet wc x hc, horizontal
/// bands of heights db / (hc - 2db) / db; the middle band holds
/// West | Power | East and each outer band splits at wc/2 into two corner
/// sectors (NW/NE resp. SW/SE). Requires 0 < 2*db < min(wc, hc).
[[nodiscard]] std::vector<BumpSector> hex_bump_layout(double wc, double hc,
                                                      double db);

/// Maximum distance from any bump position in `sector` to the chiplet edge
/// the sector's link crosses (the paper's D_B). `wc`/`hc` are the chiplet
/// dimensions the sector was built for. Throws for the power sector.
[[nodiscard]] double max_bump_to_edge_distance(const BumpSector& sector,
                                               double wc, double hc);

}  // namespace hm::geom
