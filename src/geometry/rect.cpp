#include "geometry/rect.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hm::geom {

void Rect::validate() const {
  if (!(w > 0.0) || !(h > 0.0)) {
    throw std::invalid_argument("Rect: width and height must be positive, got " +
                                to_string());
  }
}

bool Rect::overlaps(const Rect& o) const noexcept {
  return left() < o.right() - kEps && o.left() < right() - kEps &&
         bottom() < o.top() - kEps && o.bottom() < top() - kEps;
}

bool Rect::contains(const Point& p) const noexcept {
  return p.x >= left() - kEps && p.x <= right() + kEps &&
         p.y >= bottom() - kEps && p.y <= top() + kEps;
}

std::string Rect::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Rect(%.4g, %.4g, %.4g, %.4g)", x, y, w, h);
  return buf;
}

double shared_edge_length(const Rect& a, const Rect& b) noexcept {
  // Vertical contact: a's right edge against b's left edge or vice versa.
  if (std::abs(a.right() - b.left()) < kEps ||
      std::abs(b.right() - a.left()) < kEps) {
    const double overlap =
        std::min(a.top(), b.top()) - std::max(a.bottom(), b.bottom());
    return overlap > kEps ? overlap : 0.0;
  }
  // Horizontal contact: a's top edge against b's bottom edge or vice versa.
  if (std::abs(a.top() - b.bottom()) < kEps ||
      std::abs(b.top() - a.bottom()) < kEps) {
    const double overlap =
        std::min(a.right(), b.right()) - std::max(a.left(), b.left());
    return overlap > kEps ? overlap : 0.0;
  }
  return 0.0;
}

double distance(const Point& a, const Point& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double Polygon::signed_area() const noexcept {
  double twice = 0.0;
  const std::size_t n = vertices.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& p = vertices[i];
    const Point& q = vertices[(i + 1) % n];
    twice += p.x * q.y - q.x * p.y;
  }
  return twice / 2.0;
}

double Polygon::area() const noexcept { return std::abs(signed_area()); }

Polygon to_polygon(const Rect& r) {
  return Polygon{{{r.left(), r.bottom()},
                  {r.right(), r.bottom()},
                  {r.right(), r.top()},
                  {r.left(), r.top()}}};
}

Rect bounding_box(const std::vector<Rect>& rects) {
  if (rects.empty()) {
    throw std::invalid_argument("bounding_box: empty rectangle list");
  }
  double lo_x = rects[0].left(), hi_x = rects[0].right();
  double lo_y = rects[0].bottom(), hi_y = rects[0].top();
  for (const Rect& r : rects) {
    lo_x = std::min(lo_x, r.left());
    hi_x = std::max(hi_x, r.right());
    lo_y = std::min(lo_y, r.bottom());
    hi_y = std::max(hi_y, r.top());
  }
  return Rect{lo_x, lo_y, hi_x - lo_x, hi_y - lo_y};
}

}  // namespace hm::geom
