// Stable 64-bit content hashing (FNV-1a over explicitly serialized fields).
//
// "Stable" means the digest depends only on the logical content serialized
// field by field in a fixed order — never on pointers, container capacity or
// platform. Hoisted out of explore/ so lower layers (noc/topology's context
// cache) can key on the same digests the exploration result cache uses;
// explore/hash.hpp re-exports these names for its existing callers.
#pragma once

#include <bit>
#include <cstdint>

namespace hm::util {

/// FNV-1a (64-bit) accumulator over explicitly serialized fields.
class StableHash {
 public:
  StableHash& mix(std::uint64_t v) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      h_ ^= (v >> (8 * byte)) & 0xffULL;
      h_ *= kFnvPrime;
    }
    return *this;
  }
  StableHash& mix_i(std::int64_t v) noexcept {
    return mix(static_cast<std::uint64_t>(v));
  }
  /// Bit pattern of a double (-0.0 != +0.0).
  StableHash& mix_f(double v) noexcept {
    return mix(std::bit_cast<std::uint64_t>(v));
  }
  StableHash& mix_b(bool v) noexcept { return mix(v ? 1 : 0); }

  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  static constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

/// Order-independent-of-nothing combiner: mixes `b` into `a` (asymmetric).
[[nodiscard]] inline std::uint64_t hash_combine(std::uint64_t a,
                                                std::uint64_t b) noexcept {
  StableHash h;
  h.mix(a).mix(b);
  return h.value();
}

}  // namespace hm::util
