// Endianness-stable binary serialization primitives.
//
// Everything the persistent result store and the server wire protocol put
// on disk or on a socket goes through these helpers: little-endian byte
// order written out explicitly with shifts, so a store written on any host
// reads back identically on any other (the same portability contract the
// stable hashes of util/stable_hash.hpp give the keys). Doubles travel as
// their IEEE-754 bit pattern via bit_cast — bit-exact round trips including
// NaN payloads and -0.0, which the result cache's memo keys distinguish.
//
// ByteWriter appends to a caller-owned byte vector; ByteReader consumes a
// borrowed span with sticky bounds checking (one ok() check at the end
// replaces per-field error handling, and a truncated or oversized buffer
// can never read out of bounds).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hm::util {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  ByteWriter& u8(std::uint8_t v) {
    out_.push_back(v);
    return *this;
  }
  ByteWriter& u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v & 0xff));
    out_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    return *this;
  }
  ByteWriter& u32(std::uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      out_.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xff));
    }
    return *this;
  }
  ByteWriter& u64(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      out_.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xff));
    }
    return *this;
  }
  ByteWriter& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern: exact for every value including NaN payloads
  /// and the sign of zero.
  ByteWriter& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }
  ByteWriter& boolean(bool v) { return u8(v ? 1 : 0); }
  ByteWriter& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
    return *this;
  }

 private:
  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[off_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = 0;
    for (int b = 0; b < 2; ++b) {
      v = static_cast<std::uint16_t>(
          v | (static_cast<std::uint16_t>(data_[off_ + b]) << (8 * b)));
    }
    off_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) {
      v |= static_cast<std::uint32_t>(data_[off_ + b]) << (8 * b);
    }
    off_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(data_[off_ + b]) << (8 * b);
    }
    off_ += 8;
    return v;
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  /// Strict: only 0/1 are valid encodings, anything else marks the reader
  /// failed (a flipped bool byte counts as corruption, not as "true").
  [[nodiscard]] bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) ok_ = false;
    return v == 1;
  }
  [[nodiscard]] std::string string_of(std::size_t n) {
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + off_), n);
    off_ += n;
    return s;
  }

  /// True iff every read so far was in bounds and well-formed.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True iff ok() and the buffer was consumed exactly.
  [[nodiscard]] bool exhausted() const noexcept { return ok_ && off_ == size_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - off_; }

 private:
  [[nodiscard]] bool take(std::size_t n) {
    if (!ok_ || size_ - off_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

/// FNV-1a over raw bytes — the record checksum of the on-disk store (same
/// family as util::StableHash, which mixes whole u64s).
[[nodiscard]] inline std::uint64_t fnv1a_bytes(const std::uint8_t* data,
                                               std::size_t n) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hm::util
