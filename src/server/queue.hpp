// Per-client fair request queue with admission control — the batching
// front half of hm_server, kept socket-free so its fairness and admission
// policies are unit-testable deterministically (tests/test_server.cpp).
//
// Policy:
//   * Admission — push() rejects once the global pending count reaches
//     max_pending, or the pushing client's own count reaches
//     max_pending_per_client. A rejected request gets an immediate
//     kRejected reply instead of unbounded queueing (one chatty client
//     cannot starve the pool or balloon memory).
//   * Fairness — pop_batch() drains clients round-robin, one request per
//     client per turn, starting after the client served last. With client
//     A holding 3 requests and B, C one each, a batch of 5 comes out
//     A1 B1 C1 A2 A3 — every client's first request rides in the first
//     fan-out, no matter how many requests a neighbour queued first.
//
// Within one client, order is FIFO — so replies written in batch order
// reach each client in the order it sent its requests (pipelining works).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace hm::server {

template <typename Request>
class RequestQueue {
 public:
  RequestQueue(std::size_t max_pending, std::size_t max_pending_per_client)
      : max_pending_(max_pending),
        max_per_client_(max_pending_per_client) {}

  /// Enqueues `request` for `client`. Returns false (request untouched)
  /// when admission control rejects it; the caller replies kRejected.
  bool push(std::uint64_t client, Request request) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      if (pending_ >= max_pending_) return false;
      auto& q = clients_[client];
      if (q.size() >= max_per_client_) return false;
      q.push_back(std::move(request));
      ++pending_;
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until at least one request is pending (or the queue closes),
  /// then collects up to `max_batch` requests round-robin across clients.
  /// Empty result means the queue is closed and fully drained.
  std::vector<Request> pop_batch(std::size_t max_batch) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return pending_ > 0 || closed_; });
    std::vector<Request> batch;
    while (batch.size() < max_batch && pending_ > 0) {
      // One pass of the rotation: one request per non-empty client,
      // starting just after the client served last time.
      const std::size_t took_before = batch.size();
      auto it = clients_.upper_bound(rr_cursor_);
      for (std::size_t visited = 0;
           visited < clients_.size() && batch.size() < max_batch;
           ++visited) {
        if (it == clients_.end()) it = clients_.begin();
        if (!it->second.empty()) {
          batch.push_back(std::move(it->second.front()));
          it->second.pop_front();
          --pending_;
          rr_cursor_ = it->first;
        }
        ++it;
      }
      if (batch.size() == took_before) break;  // nothing left anywhere
    }
    // Drop empty per-client queues so departed clients don't grow the map
    // (their cursor slot is irrelevant once empty).
    for (auto it = clients_.begin(); it != clients_.end();) {
      it = it->second.empty() ? clients_.erase(it) : std::next(it);
    }
    return batch;
  }

  /// Wakes every waiter; subsequent push() fails, pop_batch() drains what
  /// is left and then returns empty.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t pending() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return pending_;
  }

 private:
  const std::size_t max_pending_;
  const std::size_t max_per_client_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::deque<Request>> clients_;
  std::size_t pending_ = 0;
  std::uint64_t rr_cursor_ = 0;
  bool closed_ = false;
};

}  // namespace hm::server
