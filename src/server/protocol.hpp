// Framed binary wire protocol of hm_server.
//
// Every message is one frame:
//
//   offset  size  field
//   0       4     magic       "HMRQ" (request) / "HMRP" (reply), LE u32
//   4       2     version     kProtocolVersion; mismatches are rejected
//   6       2     command     Command (request) / echoed command (reply)
//   8       4     payload_len <= kMaxPayload
//   12      n     payload
//
// Reply payloads start with a u16 Status; the body that follows is
// command-specific on kOk and a human-readable message string otherwise.
// All integers are little-endian via util/byte_io.hpp, and evaluate reply
// bodies reuse the persistent store's EvaluationResult codec
// (store/record.hpp) — so identical requests produce byte-identical
// replies across runs and hosts (the determinism CI cmp's).
//
// Command table (version 1):
//   kPing      empty                      -> empty
//   kEvaluate  u8 family, u64 n, u64 seed,
//              u8 flags (1=latency, 2=saturation)
//                                         -> encoded EvaluationResult
//   kSweep     u8 nfam, families...,
//              u8 ncnt, u64 counts...,
//              u64 base_seed, u8 simulate -> sweep CSV bytes
//   kSearch    u8 family, u64 n, u64 steps,
//              u64 seed                   -> f64 best, f64 baseline,
//                                            u64 evaluations,
//                                            encoded best EvaluationResult
//   kStats     empty                      -> JSON text (nondeterministic)
//   kShutdown  empty                      -> empty; server then drains
//
// Malformed-input contract: a frame with bad magic, foreign version or an
// oversized payload_len gets a kBadRequest reply (when a reply can still
// be framed) and the connection is closed; a truncated frame just closes
// the connection. The server itself always survives.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/arrangement.hpp"

namespace hm::server {

inline constexpr std::uint16_t kProtocolVersion = 1;
/// "HMRQ" / "HMRP" as little-endian u32s.
inline constexpr std::uint32_t kRequestMagic = 0x51524d48u;
inline constexpr std::uint32_t kReplyMagic = 0x50524d48u;
inline constexpr std::uint32_t kMaxPayload = 1u << 20;
inline constexpr std::size_t kFrameHeaderSize = 12;

enum class Command : std::uint16_t {
  kPing = 0,
  kEvaluate = 1,
  kSweep = 2,
  kSearch = 3,
  kStats = 4,
  kShutdown = 5,
};

enum class Status : std::uint16_t {
  kOk = 0,
  kBadRequest = 1,   ///< unparsable frame or request body
  kRejected = 2,     ///< admission control: queue full, try again
  kError = 3,        ///< evaluation threw; body carries the message
  kShuttingDown = 4, ///< server is draining; no new work accepted
};

struct FrameHeader {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t command = 0;
  std::uint32_t payload_len = 0;
};

/// Serializes a frame header + payload. `magic` selects request vs reply.
void encode_frame(std::uint32_t magic, Command command,
                  const std::vector<std::uint8_t>& payload,
                  std::vector<std::uint8_t>& out);

/// Parses the fixed 12-byte header. Returns nullopt when `size` is short;
/// magic/version/length validation is the caller's (see frame_header_ok).
[[nodiscard]] std::optional<FrameHeader> parse_frame_header(
    const std::uint8_t* data, std::size_t size);

/// Validates a parsed header against the expected magic, the protocol
/// version and the payload cap.
[[nodiscard]] bool frame_header_ok(const FrameHeader& h,
                                   std::uint32_t expected_magic);

// ---------------------------------------------------------------- requests

struct EvaluateRequest {
  core::ArrangementType type = core::ArrangementType::kHexaMesh;
  std::uint64_t chiplet_count = 0;
  std::uint64_t seed = 0;
  bool measure_latency = true;
  bool measure_saturation = true;
};

struct SweepRequest {
  std::vector<core::ArrangementType> types;
  std::vector<std::uint64_t> chiplet_counts;
  std::uint64_t base_seed = 42;
  bool simulate = true;
};

struct SearchRequest {
  core::ArrangementType type = core::ArrangementType::kHexaMesh;
  std::uint64_t chiplet_count = 0;
  std::uint64_t steps = 0;
  std::uint64_t seed = 42;
};

void encode_evaluate_request(const EvaluateRequest& r,
                             std::vector<std::uint8_t>& out);
[[nodiscard]] std::optional<EvaluateRequest> decode_evaluate_request(
    const std::uint8_t* data, std::size_t size);

void encode_sweep_request(const SweepRequest& r,
                          std::vector<std::uint8_t>& out);
[[nodiscard]] std::optional<SweepRequest> decode_sweep_request(
    const std::uint8_t* data, std::size_t size);

void encode_search_request(const SearchRequest& r,
                           std::vector<std::uint8_t>& out);
[[nodiscard]] std::optional<SearchRequest> decode_search_request(
    const std::uint8_t* data, std::size_t size);

/// Builds a reply payload: u16 status + body.
void encode_reply_payload(Status status, const std::vector<std::uint8_t>& body,
                          std::vector<std::uint8_t>& out);
/// Splits a reply payload into status + body view. nullopt when too short.
struct ReplyView {
  Status status = Status::kError;
  const std::uint8_t* body = nullptr;
  std::size_t body_size = 0;
};
[[nodiscard]] std::optional<ReplyView> parse_reply_payload(
    const std::uint8_t* data, std::size_t size);

// ------------------------------------------------------------- socket I/O

/// Blocking exact read/write with EINTR handling. Return false on EOF or
/// error (errno left for the caller).
[[nodiscard]] bool read_exact(int fd, void* buf, std::size_t n);
[[nodiscard]] bool write_all(int fd, const void* buf, std::size_t n);

enum class ReadResult {
  kOk,
  kEof,        ///< clean close before a header byte arrived
  kBadHeader,  ///< header read but magic/version/length invalid
  kTruncated,  ///< connection died mid-frame
};

/// Reads one full frame. `expected_magic` selects the request or reply
/// direction; on kBadHeader the offending header is left in `header`.
[[nodiscard]] ReadResult read_frame(int fd, std::uint32_t expected_magic,
                                    FrameHeader* header,
                                    std::vector<std::uint8_t>* payload);

/// Frames and writes one message.
[[nodiscard]] bool write_frame(int fd, std::uint32_t magic, Command command,
                               const std::vector<std::uint8_t>& payload);

}  // namespace hm::server
