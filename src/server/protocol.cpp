#include "server/protocol.hpp"

#include <cerrno>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "util/byte_io.hpp"

namespace hm::server {

void encode_frame(std::uint32_t magic, Command command,
                  const std::vector<std::uint8_t>& payload,
                  std::vector<std::uint8_t>& out) {
  util::ByteWriter w(out);
  w.u32(magic)
      .u16(kProtocolVersion)
      .u16(static_cast<std::uint16_t>(command))
      .u32(static_cast<std::uint32_t>(payload.size()))
      .bytes(payload.data(), payload.size());
}

std::optional<FrameHeader> parse_frame_header(const std::uint8_t* data,
                                              std::size_t size) {
  if (size < kFrameHeaderSize) return std::nullopt;
  util::ByteReader rd(data, kFrameHeaderSize);
  FrameHeader h;
  h.magic = rd.u32();
  h.version = rd.u16();
  h.command = rd.u16();
  h.payload_len = rd.u32();
  return h;
}

bool frame_header_ok(const FrameHeader& h, std::uint32_t expected_magic) {
  return h.magic == expected_magic && h.version == kProtocolVersion &&
         h.payload_len <= kMaxPayload;
}

namespace {

constexpr std::uint8_t kMaxFamily =
    static_cast<std::uint8_t>(core::ArrangementType::kHoneycomb);

[[nodiscard]] std::optional<core::ArrangementType> family_of(
    std::uint8_t raw) {
  if (raw > kMaxFamily) return std::nullopt;
  return static_cast<core::ArrangementType>(raw);
}

}  // namespace

void encode_evaluate_request(const EvaluateRequest& r,
                             std::vector<std::uint8_t>& out) {
  util::ByteWriter w(out);
  const std::uint8_t flags =
      static_cast<std::uint8_t>((r.measure_latency ? 1 : 0) |
                                (r.measure_saturation ? 2 : 0));
  w.u8(static_cast<std::uint8_t>(r.type))
      .u64(r.chiplet_count)
      .u64(r.seed)
      .u8(flags);
}

std::optional<EvaluateRequest> decode_evaluate_request(
    const std::uint8_t* data, std::size_t size) {
  util::ByteReader rd(data, size);
  EvaluateRequest r;
  const auto family = family_of(rd.u8());
  if (!family) return std::nullopt;
  r.type = *family;
  r.chiplet_count = rd.u64();
  r.seed = rd.u64();
  const std::uint8_t flags = rd.u8();
  if (!rd.exhausted() || flags > 3 || r.chiplet_count == 0) {
    return std::nullopt;
  }
  r.measure_latency = (flags & 1) != 0;
  r.measure_saturation = (flags & 2) != 0;
  return r;
}

void encode_sweep_request(const SweepRequest& r,
                          std::vector<std::uint8_t>& out) {
  util::ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(r.types.size()));
  for (const auto t : r.types) w.u8(static_cast<std::uint8_t>(t));
  w.u8(static_cast<std::uint8_t>(r.chiplet_counts.size()));
  for (const auto n : r.chiplet_counts) w.u64(n);
  w.u64(r.base_seed).boolean(r.simulate);
}

std::optional<SweepRequest> decode_sweep_request(const std::uint8_t* data,
                                                 std::size_t size) {
  util::ByteReader rd(data, size);
  SweepRequest r;
  const std::uint8_t nfam = rd.u8();
  if (nfam == 0) return std::nullopt;
  for (std::uint8_t i = 0; i < nfam; ++i) {
    const auto family = family_of(rd.u8());
    if (!family) return std::nullopt;
    r.types.push_back(*family);
  }
  const std::uint8_t ncnt = rd.u8();
  if (ncnt == 0) return std::nullopt;
  for (std::uint8_t i = 0; i < ncnt; ++i) {
    const std::uint64_t n = rd.u64();
    if (n == 0) return std::nullopt;
    r.chiplet_counts.push_back(n);
  }
  r.base_seed = rd.u64();
  r.simulate = rd.boolean();
  if (!rd.exhausted()) return std::nullopt;
  return r;
}

void encode_search_request(const SearchRequest& r,
                           std::vector<std::uint8_t>& out) {
  util::ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(r.type))
      .u64(r.chiplet_count)
      .u64(r.steps)
      .u64(r.seed);
}

std::optional<SearchRequest> decode_search_request(const std::uint8_t* data,
                                                   std::size_t size) {
  util::ByteReader rd(data, size);
  SearchRequest r;
  const auto family = family_of(rd.u8());
  if (!family) return std::nullopt;
  r.type = *family;
  r.chiplet_count = rd.u64();
  r.steps = rd.u64();
  r.seed = rd.u64();
  if (!rd.exhausted() || r.chiplet_count < 2 || r.steps == 0) {
    return std::nullopt;
  }
  return r;
}

void encode_reply_payload(Status status,
                          const std::vector<std::uint8_t>& body,
                          std::vector<std::uint8_t>& out) {
  util::ByteWriter w(out);
  w.u16(static_cast<std::uint16_t>(status)).bytes(body.data(), body.size());
}

std::optional<ReplyView> parse_reply_payload(const std::uint8_t* data,
                                             std::size_t size) {
  if (size < 2) return std::nullopt;
  util::ByteReader rd(data, 2);
  const std::uint16_t raw = rd.u16();
  if (raw > static_cast<std::uint16_t>(Status::kShuttingDown)) {
    return std::nullopt;
  }
  ReplyView view;
  view.status = static_cast<Status>(raw);
  view.body = data + 2;
  view.body_size = size - 2;
  return view;
}

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r == 0) return false;  // peer closed
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, p + sent, n - sent, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

ReadResult read_frame(int fd, std::uint32_t expected_magic,
                      FrameHeader* header,
                      std::vector<std::uint8_t>* payload) {
  std::uint8_t raw[kFrameHeaderSize];
  // Distinguish a clean pre-header close (kEof) from a mid-frame death:
  // read the first byte separately.
  if (!read_exact(fd, raw, 1)) return ReadResult::kEof;
  if (!read_exact(fd, raw + 1, kFrameHeaderSize - 1)) {
    return ReadResult::kTruncated;
  }
  const auto parsed = parse_frame_header(raw, kFrameHeaderSize);
  *header = *parsed;
  if (!frame_header_ok(*header, expected_magic)) {
    return ReadResult::kBadHeader;
  }
  payload->resize(header->payload_len);
  if (header->payload_len > 0 &&
      !read_exact(fd, payload->data(), payload->size())) {
    return ReadResult::kTruncated;
  }
  return ReadResult::kOk;
}

bool write_frame(int fd, std::uint32_t magic, Command command,
                 const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> framed;
  framed.reserve(kFrameHeaderSize + payload.size());
  encode_frame(magic, command, payload, framed);
  return write_all(fd, framed.data(), framed.size());
}

}  // namespace hm::server
