// hm_server: exploration as a service.
//
// A long-lived process that keeps the expensive state warm — the interned
// TopologyContext cache, the sharded ResultCache and (with a cache_dir)
// the persistent ResultStore — and serves evaluate/sweep/search requests
// over the framed binary protocol of server/protocol.hpp, on a Unix-domain
// socket and/or a 127.0.0.1 TCP port.
//
// Request flow: one reader thread per connection parses frames and pushes
// evaluate/sweep/search requests into a RequestQueue (server/queue.hpp)
// that enforces per-client and global admission caps and serves clients
// round-robin. A single dispatcher thread pops fair batches, fans the
// batch's evaluate requests out across the shared ThreadPool (each through
// explore::cached_evaluate against the warm cache/store), runs sweep and
// search requests one at a time (they parallelize internally), and writes
// replies back in batch order — which is FIFO per client, so pipelined
// clients read replies in the order they sent requests. Ping, stats and
// shutdown are answered inline on the reader thread.
//
// Shutdown: the kShutdown command (or stop()) closes the listeners, drains
// the queue, flushes the store and joins every thread; the Unix socket
// path is unlinked. Malformed frames (bad magic/version/oversized length)
// are answered with kBadRequest where a reply can still be framed and the
// connection is closed; truncated frames just close the connection — the
// server survives both (CI's badframe probe pins this).
//
// Telemetry: server.{uptime_s,requests,rejects} join the registry
// families; the kStats reply carries a JSON snapshot of the same numbers
// plus store statistics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "explore/result_cache.hpp"
#include "explore/thread_pool.hpp"
#include "noc/traffic.hpp"
#include "server/protocol.hpp"
#include "server/queue.hpp"

namespace hm::server {

struct ServerOptions {
  /// Unix-domain socket path (empty = no Unix listener).
  std::string unix_path;
  /// TCP port on 127.0.0.1 (-1 = no TCP listener, 0 = ephemeral; the bound
  /// port is available from Server::tcp_port()).
  int tcp_port = -1;
  /// Evaluation worker concurrency (explore::ThreadPool; 0 = hardware).
  unsigned threads = 0;
  /// Persistent result store directory (empty = memory-only cache).
  std::string cache_dir;
  /// Admission control (see server/queue.hpp).
  std::size_t max_pending = 64;
  std::size_t max_pending_per_client = 8;
  /// Largest fan-out batch the dispatcher collects per round.
  std::size_t max_batch = 16;
  /// Request size caps, protecting the pool from absurd work items.
  std::uint64_t max_chiplets = 100000;
  std::uint64_t max_search_steps = 100000;
  std::size_t max_sweep_points = 4096;
  /// Base evaluation pipeline configuration; evaluate requests override
  /// the seed and the measurement-selection flags per request.
  core::EvaluationParams params;
  noc::TrafficSpec traffic;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and spawns the accept + dispatcher threads.
  /// Throws std::runtime_error when no listener could be bound.
  void start();

  /// Blocks until a kShutdown command arrives or stop() is called.
  void wait();

  /// Stops accepting, drains in-flight work, joins every thread, flushes
  /// the store and unlinks the Unix socket. Idempotent.
  void stop();

  /// The bound TCP port (after start(); -1 without a TCP listener).
  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }

  struct StatsSnapshot {
    std::uint64_t requests = 0;
    std::uint64_t rejects = 0;
    std::uint64_t batches = 0;
    std::size_t pending = 0;
    double uptime_s = 0.0;
  };
  [[nodiscard]] StatsSnapshot stats_snapshot() const;
  /// The kStats reply body (JSON text).
  [[nodiscard]] std::string stats_json() const;

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::mutex write_mu;
    std::atomic<bool> alive{true};
  };

  struct PendingRequest {
    std::shared_ptr<Connection> conn;
    Command command = Command::kPing;
    std::vector<std::uint8_t> payload;
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  void dispatch_loop();
  void send_reply(Connection& conn, Command command, Status status,
                  const std::vector<std::uint8_t>& body);

  void handle_evaluate(const PendingRequest& req, Status* status,
                       std::vector<std::uint8_t>* body);
  void handle_sweep(const PendingRequest& req, Status* status,
                    std::vector<std::uint8_t>* body);
  void handle_search(const PendingRequest& req, Status* status,
                     std::vector<std::uint8_t>* body);

  void request_shutdown();

  ServerOptions options_;
  explore::ThreadPool pool_;
  explore::ResultCache cache_;
  RequestQueue<PendingRequest> queue_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejects_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> next_client_id_{1};
  std::chrono::steady_clock::time_point started_at_;

  std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;

  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::mutex conns_mu_;
  std::vector<std::weak_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace hm::server
