#include "server/server.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "explore/cached_eval.hpp"
#include "explore/export.hpp"
#include "explore/sweep.hpp"
#include "search/search.hpp"
#include "store/record.hpp"
#include "store/result_store.hpp"
#include "telemetry/telemetry.hpp"
#include "util/byte_io.hpp"

namespace hm::server {

namespace {

telemetry::Counter& requests_counter() {
  static telemetry::Counter c("server.requests");
  return c;
}

telemetry::Counter& rejects_counter() {
  static telemetry::Counter c("server.rejects");
  return c;
}

std::vector<std::uint8_t> message_body(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      pool_(options_.threads),
      queue_(options_.max_pending, options_.max_pending_per_client) {
  if (!options_.cache_dir.empty()) {
    cache_.attach_store(store::ResultStore::open(options_.cache_dir));
  }
}

Server::~Server() { stop(); }

void Server::start() {
  started_at_ = std::chrono::steady_clock::now();

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("Server: unix socket path too long");
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) throw std::runtime_error("Server: socket() failed");
    // A stale path from a crashed predecessor would fail the bind; remove
    // it first (a live server would still hold the listening socket, so
    // this only ever reaps corpses).
    ::unlink(options_.unix_path.c_str());
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(unix_fd_, 16) != 0) {
      close_fd(unix_fd_);
      throw std::runtime_error("Server: cannot bind unix socket " +
                               options_.unix_path);
    }
  }

  if (options_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      close_fd(unix_fd_);
      throw std::runtime_error("Server: socket() failed");
    }
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never public
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(tcp_fd_, 16) != 0) {
      close_fd(tcp_fd_);
      close_fd(unix_fd_);
      throw std::runtime_error("Server: cannot bind 127.0.0.1:" +
                               std::to_string(options_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }

  if (unix_fd_ < 0 && tcp_fd_ < 0) {
    throw std::runtime_error(
        "Server: no listener configured (need unix_path and/or tcp_port)");
  }

  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  lifecycle_cv_.wait(lock, [&] { return shutdown_requested_ || stopped_; });
}

void Server::request_shutdown() {
  {
    const std::lock_guard<std::mutex> lock(lifecycle_mu_);
    shutdown_requested_ = true;
  }
  lifecycle_cv_.notify_all();
}

void Server::stop() {
  {
    const std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true);

  // Unblock the accept loop and refuse new connections.
  if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
  if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);

  // Unblock every reader parked in recv().
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& weak : conns_) {
      if (const auto conn = weak.lock()) {
        conn->alive.store(false);
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }

  queue_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();

  close_fd(unix_fd_);
  close_fd(tcp_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());

  // Shutdown flush: everything the warm cache learned becomes durable.
  try {
    cache_.flush_to_store();
  } catch (...) {
  }
  lifecycle_cv_.notify_all();
}

Server::StatsSnapshot Server::stats_snapshot() const {
  StatsSnapshot s;
  s.requests = requests_.load();
  s.rejects = rejects_.load();
  s.batches = batches_.load();
  s.pending = queue_.pending();
  s.uptime_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started_at_)
                   .count();
  return s;
}

std::string Server::stats_json() const {
  static telemetry::Gauge uptime_gauge("server.uptime_s");
  const StatsSnapshot s = stats_snapshot();
  // Max-gauge + monotone uptime = current uptime in whole seconds.
  uptime_gauge.set_max(static_cast<std::uint64_t>(s.uptime_s));

  std::ostringstream os;
  os << "{\"uptime_s\":" << s.uptime_s << ",\"requests\":" << s.requests
     << ",\"rejects\":" << s.rejects << ",\"batches\":" << s.batches
     << ",\"pending\":" << s.pending << ",\"threads\":"
     << pool_.thread_count() << ",\"cache_entries\":" << cache_.size();
  if (!options_.cache_dir.empty()) {
    const auto st = store::ResultStore::open(options_.cache_dir)->stats();
    os << ",\"store\":{\"entries\":" << st.entries
       << ",\"segments\":" << st.segments
       << ",\"disk_bytes\":" << st.disk_bytes
       << ",\"pending\":" << st.pending << "}";
  }
  os << "}";
  return os.str();
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    pollfd fds[2];
    nfds_t nfds = 0;
    if (unix_fd_ >= 0) fds[nfds++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = {tcp_fd_, POLLIN, 0};
    const int rc = ::poll(fds, nfds, 200);
    if (stopping_.load()) break;
    if (rc <= 0) continue;
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;
      auto conn = std::make_shared<Connection>();
      conn->fd = client;
      conn->id = next_client_id_.fetch_add(1);
      {
        const std::lock_guard<std::mutex> lock(conns_mu_);
        // Reap dead weak_ptrs so a long-lived server doesn't grow the list.
        std::erase_if(conns_,
                      [](const auto& weak) { return weak.expired(); });
        conns_.push_back(conn);
        conn_threads_.emplace_back(
            [this, conn] { connection_loop(conn); });
      }
    }
  }
}

void Server::send_reply(Connection& conn, Command command, Status status,
                        const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> payload;
  payload.reserve(2 + body.size());
  encode_reply_payload(status, body, payload);
  const std::lock_guard<std::mutex> lock(conn.write_mu);
  if (!conn.alive.load() || conn.fd < 0) return;
  if (!write_frame(conn.fd, kReplyMagic, command, payload)) {
    conn.alive.store(false);
  }
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  while (!stopping_.load() && conn->alive.load()) {
    FrameHeader header;
    std::vector<std::uint8_t> payload;
    const ReadResult rr =
        read_frame(conn->fd, kRequestMagic, &header, &payload);
    if (rr == ReadResult::kEof || rr == ReadResult::kTruncated) break;
    if (rr == ReadResult::kBadHeader) {
      // The header parsed structurally, so a reply can still be framed;
      // then drop the connection (its byte stream can't be trusted).
      send_reply(*conn, static_cast<Command>(header.command),
                 Status::kBadRequest, message_body("malformed frame"));
      break;
    }

    requests_.fetch_add(1);
    requests_counter().add();
    if (header.command > static_cast<std::uint16_t>(Command::kShutdown)) {
      send_reply(*conn, static_cast<Command>(header.command),
                 Status::kBadRequest, message_body("unknown command"));
      continue;
    }
    const Command cmd = static_cast<Command>(header.command);

    // Ping/stats/shutdown are control traffic: answered inline so they
    // stay responsive while the pool is busy.
    if (cmd == Command::kPing) {
      send_reply(*conn, cmd, Status::kOk, {});
      continue;
    }
    if (cmd == Command::kStats) {
      send_reply(*conn, cmd, Status::kOk, message_body(stats_json()));
      continue;
    }
    if (cmd == Command::kShutdown) {
      send_reply(*conn, cmd, Status::kOk, {});
      request_shutdown();
      break;
    }

    if (stopping_.load()) {
      send_reply(*conn, cmd, Status::kShuttingDown,
                 message_body("server is shutting down"));
      break;
    }
    PendingRequest pending;
    pending.conn = conn;
    pending.command = cmd;
    pending.payload = std::move(payload);
    if (!queue_.push(conn->id, std::move(pending))) {
      rejects_.fetch_add(1);
      rejects_counter().add();
      send_reply(*conn, cmd, Status::kRejected,
                 message_body("admission control: queue full"));
      continue;
    }
  }
  conn->alive.store(false);
  // Close under both locks: conns_mu_ serializes against stop()'s
  // shutdown() sweep, write_mu against a dispatcher mid-reply — so the fd
  // can never be closed (and its number reused) under a concurrent user.
  const std::lock_guard<std::mutex> conns_lock(conns_mu_);
  const std::lock_guard<std::mutex> write_lock(conn->write_mu);
  if (conn->fd >= 0) {
    ::shutdown(conn->fd, SHUT_RDWR);
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void Server::dispatch_loop() {
  while (true) {
    auto batch = queue_.pop_batch(options_.max_batch);
    if (batch.empty()) break;  // queue closed and drained
    batches_.fetch_add(1);

    std::vector<Status> statuses(batch.size(), Status::kOk);
    std::vector<std::vector<std::uint8_t>> bodies(batch.size());

    // Evaluate requests fan out as one parallel batch over the shared
    // pool; every job reads/writes the same warm cache and store.
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].command != Command::kEvaluate) continue;
      jobs.push_back([this, &batch, &statuses, &bodies, i] {
        handle_evaluate(batch[i], &statuses[i], &bodies[i]);
      });
    }
    if (!jobs.empty()) pool_.run_batch(jobs);

    // Sweep/search parallelize internally; run them one at a time.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].command == Command::kSweep) {
        handle_sweep(batch[i], &statuses[i], &bodies[i]);
      } else if (batch[i].command == Command::kSearch) {
        handle_search(batch[i], &statuses[i], &bodies[i]);
      }
    }

    // Replies go out in batch order — FIFO per client by construction of
    // pop_batch, so pipelined clients read replies in send order.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      send_reply(*batch[i].conn, batch[i].command, statuses[i], bodies[i]);
    }
  }
}

void Server::handle_evaluate(const PendingRequest& req, Status* status,
                             std::vector<std::uint8_t>* body) {
  const auto parsed =
      decode_evaluate_request(req.payload.data(), req.payload.size());
  if (!parsed || parsed->chiplet_count > options_.max_chiplets) {
    *status = Status::kBadRequest;
    *body = message_body("bad evaluate request");
    return;
  }
  try {
    const core::Arrangement arr = core::make_arrangement(
        parsed->type, static_cast<std::size_t>(parsed->chiplet_count));
    core::EvaluationParams params = options_.params;
    params.measure_latency = parsed->measure_latency;
    params.measure_saturation = parsed->measure_saturation;
    params.sim.seed = parsed->seed;
    const core::EvaluationResult result = explore::cached_evaluate(
        arr, params, options_.traffic, &cache_);
    store::encode_result(result, *body);
  } catch (const std::exception& e) {
    body->clear();
    *status = Status::kError;
    *body = message_body(e.what());
  }
}

void Server::handle_sweep(const PendingRequest& req, Status* status,
                          std::vector<std::uint8_t>* body) {
  const auto parsed =
      decode_sweep_request(req.payload.data(), req.payload.size());
  if (!parsed) {
    *status = Status::kBadRequest;
    *body = message_body("bad sweep request");
    return;
  }
  for (const auto n : parsed->chiplet_counts) {
    if (n > options_.max_chiplets) {
      *status = Status::kBadRequest;
      *body = message_body("sweep chiplet count over limit");
      return;
    }
  }
  if (parsed->types.size() * parsed->chiplet_counts.size() >
      options_.max_sweep_points) {
    *status = Status::kBadRequest;
    *body = message_body("sweep too large");
    return;
  }
  try {
    explore::SweepSpec spec;
    spec.types = parsed->types;
    spec.chiplet_counts.assign(parsed->chiplet_counts.begin(),
                               parsed->chiplet_counts.end());
    spec.param_grid = {options_.params};
    spec.simulate = parsed->simulate;
    spec.base_seed = parsed->base_seed;

    // A per-request engine, but warm state is shared anyway: the store is
    // interned per directory and topology contexts are process-wide.
    explore::SweepEngine::Options opt;
    opt.threads = options_.threads;
    opt.cache_dir = options_.cache_dir;
    explore::SweepEngine engine(opt);
    const auto records = engine.run(spec);
    const std::string csv = explore::to_csv(records);
    *body = message_body(csv);
  } catch (const std::exception& e) {
    *status = Status::kError;
    *body = message_body(e.what());
  }
}

void Server::handle_search(const PendingRequest& req, Status* status,
                           std::vector<std::uint8_t>* body) {
  const auto parsed =
      decode_search_request(req.payload.data(), req.payload.size());
  if (!parsed || parsed->chiplet_count > options_.max_chiplets ||
      parsed->steps > options_.max_search_steps) {
    *status = Status::kBadRequest;
    *body = message_body("bad search request");
    return;
  }
  try {
    search::SearchOptions opt;
    opt.steps = static_cast<std::size_t>(parsed->steps);
    opt.seed = parsed->seed;
    opt.threads = options_.threads;
    opt.cache_dir = options_.cache_dir;
    opt.params = options_.params;
    opt.traffic = options_.traffic;
    search::SearchEngine engine(opt);
    const auto res = engine.run(core::make_arrangement(
        parsed->type, static_cast<std::size_t>(parsed->chiplet_count)));

    util::ByteWriter w(*body);
    w.f64(res.best_score)
        .f64(res.baseline_score)
        .u64(res.evaluations);
    store::encode_result(res.best_result, *body);
  } catch (const std::exception& e) {
    body->clear();
    *status = Status::kError;
    *body = message_body(e.what());
  }
}

}  // namespace hm::server
