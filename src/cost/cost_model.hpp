// Manufacturing cost / yield model (extension module). The paper motivates
// 2.5D integration economically (Sec. I: yield, reuse, binning, NRE) and
// points to Chiplet Actuary [17] for a full cost model; this module provides
// a compact, classical version of that analysis so the economics claims can
// be quantified alongside the ICI performance results:
//   * negative-binomial defect yield   Y = (1 + A*D0/alpha)^(-alpha)
//   * geometric dies-per-wafer estimate
//   * per-good-die silicon cost, packaging and PHY-overhead terms
//   * NRE amortization over production volume.
#pragma once

#include <cstddef>

namespace hm::cost {

/// Process/technology assumptions.
struct ProcessParams {
  double wafer_diameter_mm = 300.0;
  double wafer_cost = 10000.0;            ///< $ per processed wafer
  double defect_density_per_mm2 = 0.001;  ///< D0
  double clustering_alpha = 3.0;          ///< negative-binomial alpha
  /// Throws std::invalid_argument when out of range.
  void validate() const;
};

/// Yield of a die of `area_mm2` under the negative-binomial defect model.
[[nodiscard]] double negative_binomial_yield(double area_mm2,
                                             const ProcessParams& p);

/// Geometric dies-per-wafer estimate:
/// pi (d/2)^2 / A  -  pi d / sqrt(2 A)  (edge loss correction).
[[nodiscard]] double dies_per_wafer(double area_mm2, const ProcessParams& p);

/// Silicon cost of one *good* die: wafer cost / (dies per wafer * yield).
[[nodiscard]] double good_die_cost(double area_mm2, const ProcessParams& p);

/// System-level assumptions for a monolithic-vs-chiplets comparison.
struct SystemParams {
  double total_logic_area_mm2 = 800.0;  ///< functional silicon, A_all
  std::size_t num_chiplets = 16;        ///< identical compute chiplets
  /// Extra PHY area per chiplet as a fraction of the chiplet area (D2D PHY
  /// overhead; Sec. I notes combined chiplet area exceeds the monolith).
  double phy_area_fraction = 0.05;
  double package_base_cost = 30.0;        ///< substrate/interposer base
  double package_cost_per_chiplet = 5.0;  ///< bonding/assembly per chiplet
  /// Probability a known-good die survives assembly (per chiplet).
  double assembly_yield_per_chiplet = 0.999;
  double nre_cost = 5e6;        ///< masks/design, amortized over volume
  std::size_t volume = 100000;  ///< units produced
  /// Throws std::invalid_argument when out of range.
  void validate() const;
};

/// Cost decomposition of one sellable unit.
struct CostBreakdown {
  double silicon = 0.0;
  double packaging = 0.0;
  double nre_per_unit = 0.0;
  double total = 0.0;
  double compound_yield = 0.0;  ///< die yield (monolith) or assembly yield
};

/// Cost of the monolithic implementation (one big die, no PHY overhead,
/// cheap package).
[[nodiscard]] CostBreakdown monolithic_cost(const SystemParams& s,
                                            const ProcessParams& p);

/// Cost of the 2.5D implementation: N identical chiplets (known-good-die
/// tested, so silicon cost uses per-chiplet yield) + packaging + NRE for a
/// single chiplet design (reuse).
[[nodiscard]] CostBreakdown chiplet_cost(const SystemParams& s,
                                         const ProcessParams& p);

/// Total silicon area committed to D2D PHY across the package: every link
/// occupies one bump sector of `per_link_sector_area_mm2` on *each* of its
/// two endpoint chiplets (Sec. IV-B/Fig. 5). This is the area denominator
/// of the multi-objective search score (throughput per mm² of D2D links) —
/// the same PHY overhead SystemParams::phy_area_fraction charges per
/// chiplet, but derived from the actual link count of an arrangement
/// instead of a flat fraction. Throws std::invalid_argument when the
/// per-link area is negative or non-finite.
[[nodiscard]] double d2d_link_area_mm2(double per_link_sector_area_mm2,
                                       std::size_t link_count);

}  // namespace hm::cost
