#include "cost/cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace hm::cost {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

void ProcessParams::validate() const {
  if (!(wafer_diameter_mm > 0.0) || !(wafer_cost > 0.0) ||
      !(defect_density_per_mm2 >= 0.0) || !(clustering_alpha > 0.0)) {
    throw std::invalid_argument("ProcessParams: out of range");
  }
}

void SystemParams::validate() const {
  if (!(total_logic_area_mm2 > 0.0) || num_chiplets < 1 ||
      !(phy_area_fraction >= 0.0) || !(package_base_cost >= 0.0) ||
      !(package_cost_per_chiplet >= 0.0) ||
      !(assembly_yield_per_chiplet > 0.0) ||
      !(assembly_yield_per_chiplet <= 1.0) || !(nre_cost >= 0.0) ||
      volume < 1) {
    throw std::invalid_argument("SystemParams: out of range");
  }
}

double negative_binomial_yield(double area_mm2, const ProcessParams& p) {
  p.validate();
  if (!(area_mm2 > 0.0)) {
    throw std::invalid_argument("yield: area must be positive");
  }
  return std::pow(
      1.0 + area_mm2 * p.defect_density_per_mm2 / p.clustering_alpha,
      -p.clustering_alpha);
}

double dies_per_wafer(double area_mm2, const ProcessParams& p) {
  p.validate();
  if (!(area_mm2 > 0.0)) {
    throw std::invalid_argument("dies_per_wafer: area must be positive");
  }
  const double d = p.wafer_diameter_mm;
  const double gross = kPi * d * d / 4.0 / area_mm2 -
                       kPi * d / std::sqrt(2.0 * area_mm2);
  return std::max(0.0, gross);
}

double good_die_cost(double area_mm2, const ProcessParams& p) {
  const double dpw = dies_per_wafer(area_mm2, p);
  if (dpw <= 0.0) {
    throw std::invalid_argument(
        "good_die_cost: die larger than the usable wafer");
  }
  return p.wafer_cost / (dpw * negative_binomial_yield(area_mm2, p));
}

CostBreakdown monolithic_cost(const SystemParams& s, const ProcessParams& p) {
  s.validate();
  CostBreakdown c;
  c.compound_yield = negative_binomial_yield(s.total_logic_area_mm2, p);
  c.silicon = good_die_cost(s.total_logic_area_mm2, p);
  c.packaging = s.package_base_cost;  // single-die package
  c.nre_per_unit = s.nre_cost / static_cast<double>(s.volume);
  c.total = c.silicon + c.packaging + c.nre_per_unit;
  return c;
}

CostBreakdown chiplet_cost(const SystemParams& s, const ProcessParams& p) {
  s.validate();
  const auto n = static_cast<double>(s.num_chiplets);
  // Each chiplet carries its share of logic plus D2D PHY overhead.
  const double chiplet_area =
      s.total_logic_area_mm2 / n * (1.0 + s.phy_area_fraction);

  CostBreakdown c;
  // Known-good-die testing: silicon cost scales with per-chiplet yield;
  // assembly can still lose the package.
  c.compound_yield = std::pow(s.assembly_yield_per_chiplet, n);
  const double silicon_per_unit = n * good_die_cost(chiplet_area, p);
  const double packaging_per_unit =
      s.package_base_cost + n * s.package_cost_per_chiplet;
  // Assembly losses scrap the whole unit (silicon + package).
  c.silicon = silicon_per_unit / c.compound_yield;
  c.packaging = packaging_per_unit / c.compound_yield;
  c.nre_per_unit = s.nre_cost / static_cast<double>(s.volume);
  c.total = c.silicon + c.packaging + c.nre_per_unit;
  return c;
}

double d2d_link_area_mm2(double per_link_sector_area_mm2,
                         std::size_t link_count) {
  if (!(per_link_sector_area_mm2 >= 0.0) ||
      !std::isfinite(per_link_sector_area_mm2)) {
    throw std::invalid_argument(
        "d2d_link_area_mm2: per-link sector area must be finite and >= 0");
  }
  // One sector on each endpoint chiplet per link.
  return 2.0 * per_link_sector_area_mm2 * static_cast<double>(link_count);
}

}  // namespace hm::cost
