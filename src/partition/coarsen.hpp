// Heavy-edge-matching coarsening for the multilevel bisection pipeline
// (the same scheme METIS uses): repeatedly contract a maximal matching that
// prefers heavy edges, halving the graph size per level while preserving cut
// structure.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "partition/wgraph.hpp"

namespace hm::partition::detail {

/// Result of one coarsening level.
struct CoarseLevel {
  WeightedGraph graph;               ///< contracted graph
  std::vector<std::uint32_t> map;    ///< fine vertex -> coarse vertex
};

/// Contracts a heavy-edge maximal matching of `g`. Vertices are visited in a
/// random order drawn from `rng`; each unmatched vertex is matched to its
/// unmatched neighbour with the heaviest connecting edge (ties by smaller id).
/// `max_node_weight` caps the merged vertex weight to keep parts balanceable.
[[nodiscard]] CoarseLevel coarsen_once(const WeightedGraph& g,
                                       std::mt19937& rng,
                                       int max_node_weight);

}  // namespace hm::partition::detail
