#include "partition/partitioner.hpp"

#include <algorithm>
#include <random>

#include "partition/coarsen.hpp"
#include "partition/fm_refine.hpp"
#include "partition/wgraph.hpp"

namespace hm::partition {

namespace {

using detail::CoarseLevel;
using detail::WeightedGraph;

/// One full multilevel V-cycle from a random seed; returns the refined side
/// assignment for the original graph.
std::vector<int> vcycle(const WeightedGraph& g0, std::mt19937& rng,
                        long long max_part_weight, bool multilevel) {
  // --- Coarsening phase ---------------------------------------------------
  std::vector<WeightedGraph> graphs{g0};
  std::vector<std::vector<std::uint32_t>> maps;
  if (multilevel) {
    // Cap merged vertex weight so the coarsest graph stays balanceable.
    const int max_nw = std::max<int>(
        2, static_cast<int>(g0.total_node_weight() / 10));
    while (graphs.back().n() > 24) {
      CoarseLevel level = detail::coarsen_once(graphs.back(), rng, max_nw);
      // Stop if matching no longer shrinks the graph meaningfully.
      if (level.graph.n() >= graphs.back().n() * 95 / 100) break;
      maps.push_back(std::move(level.map));
      graphs.push_back(std::move(level.graph));
    }
  }

  // --- Initial partition on the coarsest graph ----------------------------
  const WeightedGraph& coarsest = graphs.back();
  std::vector<int> side;
  long long best_cut = -1;
  const int tries = std::max<std::size_t>(1, std::min<std::size_t>(coarsest.n(), 8));
  for (int t = 0; t < tries; ++t) {
    const auto seed_vertex = static_cast<std::uint32_t>(
        std::uniform_int_distribution<std::size_t>(0, coarsest.n() - 1)(rng));
    auto candidate =
        detail::grow_initial_partition(coarsest, seed_vertex, max_part_weight);
    const long long cut =
        detail::fm_refine(coarsest, candidate, max_part_weight);
    if (best_cut < 0 || cut < best_cut) {
      best_cut = cut;
      side = std::move(candidate);
    }
  }

  // --- Uncoarsening + refinement -------------------------------------------
  for (std::size_t lvl = graphs.size() - 1; lvl-- > 0;) {
    const auto& map = maps[lvl];
    std::vector<int> fine_side(graphs[lvl].n());
    for (std::uint32_t v = 0; v < graphs[lvl].n(); ++v) {
      fine_side[v] = side[map[v]];
    }
    side = std::move(fine_side);
    detail::fm_refine(graphs[lvl], side, max_part_weight);
  }
  return side;
}

}  // namespace

BisectionResult bisect(const graph::Graph& g, const BisectionOptions& opts) {
  BisectionResult result;
  const std::size_t n = g.node_count();
  result.side.assign(n, 0);
  if (n < 2) {
    result.part_sizes = {n, 0};
    return result;
  }

  const WeightedGraph wg = detail::from_graph(g);
  const long long max_part_weight =
      static_cast<long long>((n + 1) / 2 + opts.extra_imbalance);

  std::mt19937 rng(opts.seed);
  long long best_cut = -1;
  std::vector<int> best_side;
  for (int s = 0; s < std::max(1, opts.num_starts); ++s) {
    auto side = vcycle(wg, rng, max_part_weight, opts.multilevel);
    const long long cut = detail::cut_weight(wg, side);
    if (best_cut < 0 || cut < best_cut) {
      best_cut = cut;
      best_side = std::move(side);
    }
  }

  result.side = std::move(best_side);
  result.cut_edges = static_cast<std::size_t>(best_cut);
  result.part_sizes = {0, 0};
  for (int s : result.side) ++result.part_sizes[s];
  return result;
}

std::size_t bisection_width(const graph::Graph& g,
                            const BisectionOptions& opts) {
  return bisect(g, opts).cut_edges;
}

}  // namespace hm::partition
