#include "partition/fm_refine.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace hm::partition::detail {

namespace {

/// gain(v) = cut reduction if v switches sides
/// = (weight of edges to the other side) - (weight to own side).
long long move_gain(const WeightedGraph& g, const std::vector<int>& side,
                    std::uint32_t v) {
  long long gain = 0;
  for (const auto& [u, w] : g.adj[v]) {
    gain += (side[u] != side[v]) ? w : -w;
  }
  return gain;
}

}  // namespace

long long fm_refine(const WeightedGraph& g, std::vector<int>& side,
                    long long max_part_weight, int max_passes) {
  const std::size_t n = g.n();
  long long part_weight[2] = {0, 0};
  for (std::uint32_t v = 0; v < n; ++v) {
    part_weight[side[v]] += g.node_weight[v];
  }
  long long cut = cut_weight(g, side);

  for (int pass = 0; pass < max_passes; ++pass) {
    std::vector<char> locked(n, 0);
    std::vector<long long> gain(n);
    for (std::uint32_t v = 0; v < n; ++v) gain[v] = move_gain(g, side, v);

    // Record the move sequence so we can roll back to the best prefix.
    std::vector<std::uint32_t> moves;
    moves.reserve(n);
    long long running_cut = cut;
    long long best_cut = cut;
    std::size_t best_prefix = 0;

    for (std::size_t step = 0; step < n; ++step) {
      // Pick the unlocked vertex with the highest gain whose move keeps the
      // destination part within the weight cap. O(n) scan; graphs here are
      // small (arrangements have <= a few hundred chiplets).
      std::uint32_t best_v = static_cast<std::uint32_t>(-1);
      long long best_gain = std::numeric_limits<long long>::min();
      for (std::uint32_t v = 0; v < n; ++v) {
        if (locked[v]) continue;
        const int to = 1 - side[v];
        if (part_weight[to] + g.node_weight[v] > max_part_weight) continue;
        if (gain[v] > best_gain) {
          best_gain = gain[v];
          best_v = v;
        }
      }
      if (best_v == static_cast<std::uint32_t>(-1)) break;

      // Apply the move.
      const int from = side[best_v];
      side[best_v] = 1 - from;
      part_weight[from] -= g.node_weight[best_v];
      part_weight[1 - from] += g.node_weight[best_v];
      locked[best_v] = 1;
      running_cut -= best_gain;
      moves.push_back(best_v);
      for (const auto& [u, w] : g.adj[best_v]) {
        if (locked[u]) continue;
        // best_v switched sides: edges to u flip their contribution.
        gain[u] += (side[u] == side[best_v]) ? -2LL * w : 2LL * w;
      }

      if (running_cut < best_cut) {
        best_cut = running_cut;
        best_prefix = moves.size();
      }
    }

    // Roll back moves beyond the best prefix.
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      const std::uint32_t v = moves[i - 1];
      const int from = side[v];
      side[v] = 1 - from;
      part_weight[from] -= g.node_weight[v];
      part_weight[1 - from] += g.node_weight[v];
    }

    if (best_cut >= cut) break;  // no improvement this pass
    cut = best_cut;
  }
  return cut;
}

std::vector<int> grow_initial_partition(const WeightedGraph& g,
                                        std::uint32_t seed_vertex,
                                        long long max_part_weight) {
  const std::size_t n = g.n();
  std::vector<int> side(n, 1);
  if (n == 0) return side;

  const long long total = g.total_node_weight();
  const long long target = total / 2;

  side[seed_vertex] = 0;
  long long grown = g.node_weight[seed_vertex];

  // Frontier-based region growing: absorb the neighbour with the largest
  // connectivity into part 0 (breaks ties by id for determinism).
  while (grown < target) {
    std::uint32_t best = static_cast<std::uint32_t>(-1);
    long long best_conn = -1;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (side[v] == 0) continue;
      if (grown + g.node_weight[v] > max_part_weight) continue;
      long long conn = 0;
      bool touches = false;
      for (const auto& [u, w] : g.adj[v]) {
        if (side[u] == 0) {
          conn += w;
          touches = true;
        }
      }
      if (touches && conn > best_conn) {
        best_conn = conn;
        best = v;
      }
    }
    if (best == static_cast<std::uint32_t>(-1)) {
      // Disconnected frontier: absorb any eligible vertex to reach balance.
      for (std::uint32_t v = 0; v < n; ++v) {
        if (side[v] == 1 && grown + g.node_weight[v] <= max_part_weight) {
          best = v;
          break;
        }
      }
      if (best == static_cast<std::uint32_t>(-1)) break;
    }
    side[best] = 0;
    grown += g.node_weight[best];
  }
  return side;
}

}  // namespace hm::partition::detail
