// Fiduccia–Mattheyses refinement of a two-way partition of a weighted graph.
// Used both to refine projected partitions during uncoarsening and to polish
// initial partitions at the coarsest level.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/wgraph.hpp"

namespace hm::partition::detail {

/// Runs FM passes on `side` (0/1 per vertex) until a pass yields no
/// improvement. Each pass tentatively moves every vertex at most once in
/// best-gain order (subject to both parts staying <= `max_part_weight`) and
/// rolls back to the best prefix. Returns the final cut weight.
long long fm_refine(const WeightedGraph& g, std::vector<int>& side,
                    long long max_part_weight, int max_passes = 16);

/// Greedy BFS-grown initial bisection: grows part 0 from `seed` by repeatedly
/// absorbing the frontier vertex with the best (internal - external) gain
/// until part 0 holds ~half the node weight. Remaining vertices form part 1.
[[nodiscard]] std::vector<int> grow_initial_partition(const WeightedGraph& g,
                                                      std::uint32_t seed_vertex,
                                                      long long max_part_weight);

}  // namespace hm::partition::detail
