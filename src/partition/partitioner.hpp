// Balanced two-way graph partitioning — the stand-in for METIS [13], which
// the paper uses to estimate the bisection bandwidth of semi-regular and
// irregular arrangements (Sec. IV-D). The bisection bandwidth of an
// arrangement equals the minimum number of D2D links that must be cut to
// split the chip into two (nearly) equal halves.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace hm::partition {

/// A two-way partition of a graph.
struct BisectionResult {
  /// side[v] in {0, 1}: which half vertex v belongs to.
  std::vector<int> side;
  /// Number of edges crossing between the halves (the bisection width).
  std::size_t cut_edges = 0;
  /// Vertex counts of the two halves; differ by at most the allowed imbalance.
  std::array<std::size_t, 2> part_sizes{0, 0};
};

/// Tuning knobs for the multilevel bisection.
struct BisectionOptions {
  /// RNG seed; identical seeds give identical results.
  unsigned seed = 1;
  /// Number of independent multi-start attempts; the best cut wins.
  int num_starts = 12;
  /// Extra vertices the larger half may hold beyond ceil(n/2).
  /// 0 reproduces the exact-bisection definition used by the paper.
  std::size_t extra_imbalance = 0;
  /// Enable multilevel (coarsen/refine) search; single-level FM otherwise.
  bool multilevel = true;
};

/// Computes a balanced bisection of `g` minimizing the edge cut.
/// Multilevel heavy-edge-matching + FM (the METIS algorithm family). Exact
/// on small regular arrangements in practice; always returns a feasible
/// balanced partition. Graphs with < 2 vertices get a trivial all-zero side.
[[nodiscard]] BisectionResult bisect(const graph::Graph& g,
                                     const BisectionOptions& opts = {});

/// Convenience wrapper returning only the cut size (the paper's estimated
/// bisection bandwidth in links).
[[nodiscard]] std::size_t bisection_width(const graph::Graph& g,
                                          const BisectionOptions& opts = {});

}  // namespace hm::partition
