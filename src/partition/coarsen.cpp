#include "partition/coarsen.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace hm::partition::detail {

CoarseLevel coarsen_once(const WeightedGraph& g, std::mt19937& rng,
                         int max_node_weight) {
  const std::size_t n = g.n();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  constexpr std::uint32_t kUnmatched = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> match(n, kUnmatched);

  for (std::uint32_t v : order) {
    if (match[v] != kUnmatched) continue;
    std::uint32_t best = kUnmatched;
    int best_w = -1;
    for (const auto& [u, w] : g.adj[v]) {
      if (match[u] != kUnmatched) continue;
      if (g.node_weight[v] + g.node_weight[u] > max_node_weight) continue;
      if (w > best_w || (w == best_w && (best == kUnmatched || u < best))) {
        best = u;
        best_w = w;
      }
    }
    if (best != kUnmatched) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays a singleton
    }
  }

  CoarseLevel level;
  level.map.assign(n, 0);
  std::uint32_t next_id = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    // v is the representative of its pair (or a singleton) iff match[v] >= v.
    if (match[v] >= v) {
      level.map[v] = next_id;
      if (match[v] != v) level.map[match[v]] = next_id;
      ++next_id;
    }
  }

  level.graph.node_weight.assign(next_id, 0);
  level.graph.adj.resize(next_id);
  for (std::uint32_t v = 0; v < n; ++v) {
    level.graph.node_weight[level.map[v]] += g.node_weight[v];
  }

  // Merge parallel edges between coarse vertices by summing weights.
  std::vector<std::map<std::uint32_t, int>> merged(next_id);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t cv = level.map[v];
    for (const auto& [u, w] : g.adj[v]) {
      const std::uint32_t cu = level.map[u];
      if (cv < cu) merged[cv][cu] += w;
    }
  }
  for (std::uint32_t cv = 0; cv < next_id; ++cv) {
    for (const auto& [cu, w] : merged[cv]) {
      level.graph.adj[cv].emplace_back(cu, w);
      level.graph.adj[cu].emplace_back(cv, w);
    }
  }
  return level;
}

}  // namespace hm::partition::detail
