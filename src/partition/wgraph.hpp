// Internal weighted-graph representation used by the multilevel bisection
// pipeline (coarsening merges vertices, so both vertices and edges carry
// integer weights). Not part of the public API.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace hm::partition::detail {

/// Vertex/edge-weighted undirected graph in adjacency-list form.
struct WeightedGraph {
  /// node_weight[v] = number of original vertices contracted into v.
  std::vector<int> node_weight;
  /// adj[v] = list of (neighbour, edge weight); symmetric.
  std::vector<std::vector<std::pair<std::uint32_t, int>>> adj;

  [[nodiscard]] std::size_t n() const noexcept { return adj.size(); }

  [[nodiscard]] long long total_node_weight() const noexcept {
    long long t = 0;
    for (int w : node_weight) t += w;
    return t;
  }
};

/// Lifts an unweighted graph (all weights 1) into the weighted form.
[[nodiscard]] inline WeightedGraph from_graph(const graph::Graph& g) {
  WeightedGraph wg;
  wg.node_weight.assign(g.node_count(), 1);
  wg.adj.resize(g.node_count());
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    for (graph::NodeId u : g.neighbors(v)) {
      wg.adj[v].emplace_back(u, 1);
    }
  }
  return wg;
}

/// Weighted cut of a 0/1 side assignment.
[[nodiscard]] inline long long cut_weight(const WeightedGraph& g,
                                          const std::vector<int>& side) {
  long long cut = 0;
  for (std::uint32_t v = 0; v < g.n(); ++v) {
    for (const auto& [u, w] : g.adj[v]) {
      if (v < u && side[v] != side[u]) cut += w;
    }
  }
  return cut;
}

}  // namespace hm::partition::detail
