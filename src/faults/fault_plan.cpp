#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <utility>

#include "graph/algorithms.hpp"
#include "noc/rng.hpp"

namespace hm::faults {

namespace {

using graph::NodeId;

[[nodiscard]] std::pair<NodeId, NodeId> canon(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

[[nodiscard]] std::string link_name(NodeId a, NodeId b) {
  return std::to_string(a) + "-" + std::to_string(b);
}

[[nodiscard]] std::string event_label(std::size_t i, const FaultEvent& e) {
  return "FaultPlan event " + std::to_string(i) + " (" +
         std::string(to_string(e.kind)) + " @" + std::to_string(e.at) + ")";
}

/// Connectivity of the subgraph induced on alive vertices (dead vertices
/// sit isolated in `work`, so a plain is_connected would always fail).
[[nodiscard]] bool live_connected(const graph::Graph& work,
                                  const std::vector<char>& alive) {
  std::vector<NodeId> id(work.node_count(), graph::kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < work.node_count(); ++v) {
    if (alive[v]) id[v] = next++;
  }
  graph::Graph live(next);
  for (const auto& [a, b] : work.edges()) {
    if (id[a] != graph::kInvalidNode && id[b] != graph::kInvalidNode) {
      live.add_edge(id[a], id[b]);
    }
  }
  return graph::is_connected(live);
}

[[nodiscard]] std::string fmt_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkKill:
      return "kill-link";
    case FaultKind::kRouterKill:
      return "kill-router";
    case FaultKind::kLinkRepair:
      return "repair-link";
    case FaultKind::kRouterRepair:
      return "repair-router";
  }
  return "?";
}

void FaultPlan::validate(const graph::Graph& g) const {
  if (!(recovery_threshold > 0.0) || !(recovery_threshold <= 1.0)) {
    throw std::invalid_argument(
        "FaultPlan: recovery_threshold must be in (0, 1], got " +
        std::to_string(recovery_threshold));
  }
  if (recovery_window < 1) {
    throw std::invalid_argument("FaultPlan: recovery_window must be >= 1");
  }
  if (reconvergence_delay < 0) {
    throw std::invalid_argument(
        "FaultPlan: reconvergence_delay must be >= 0");
  }

  const std::size_t n = g.node_count();
  graph::Graph work = g;
  std::vector<char> alive(n, 1);
  std::set<std::pair<NodeId, NodeId>> killed_links;
  noc::Cycle prev_at = 0;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const bool link_event = e.kind == FaultKind::kLinkKill ||
                            e.kind == FaultKind::kLinkRepair;
    if (e.at < 0) {
      throw std::invalid_argument(event_label(i, e) + ": negative time");
    }
    if (e.at < prev_at) {
      throw std::invalid_argument(
          event_label(i, e) + ": out of order (previous event at cycle " +
          std::to_string(prev_at) + ")");
    }
    prev_at = e.at;
    if (e.a >= n || (link_event && e.b >= n)) {
      throw std::invalid_argument(event_label(i, e) +
                                  ": router id out of range (graph has " +
                                  std::to_string(n) + " nodes)");
    }
    if (link_event && e.a == e.b) {
      throw std::invalid_argument(event_label(i, e) + ": self-loop link");
    }

    switch (e.kind) {
      case FaultKind::kLinkKill: {
        if (!alive[e.a] || !alive[e.b]) {
          throw std::invalid_argument(
              event_label(i, e) + ": link " + link_name(e.a, e.b) +
              " touches an already-killed router");
        }
        if (!work.has_edge(e.a, e.b)) {
          if (killed_links.count(canon(e.a, e.b)) != 0) {
            throw std::invalid_argument(event_label(i, e) +
                                        ": duplicate kill of link " +
                                        link_name(e.a, e.b));
          }
          throw std::invalid_argument(event_label(i, e) + ": no link " +
                                      link_name(e.a, e.b) +
                                      " in the arrangement graph");
        }
        if (!allow_partition) {
          const auto br = graph::bridges(work);
          if (std::binary_search(br.begin(), br.end(), canon(e.a, e.b))) {
            throw std::invalid_argument(
                event_label(i, e) + ": killing bridge link " +
                link_name(e.a, e.b) +
                " would disconnect the network (set allow_partition to "
                "permit degraded islands)");
          }
        }
        work.remove_edge(e.a, e.b);
        killed_links.insert(canon(e.a, e.b));
        break;
      }
      case FaultKind::kRouterKill: {
        if (!alive[e.a]) {
          throw std::invalid_argument(event_label(i, e) +
                                      ": duplicate kill of router " +
                                      std::to_string(e.a));
        }
        const std::span<const NodeId> nbrs = work.neighbors(e.a);
        const std::vector<NodeId> to_cut(nbrs.begin(), nbrs.end());
        for (const NodeId nb : to_cut) work.remove_edge(e.a, nb);
        alive[e.a] = 0;
        if (!allow_partition && !live_connected(work, alive)) {
          throw std::invalid_argument(
              event_label(i, e) + ": killing router " + std::to_string(e.a) +
              " would disconnect the network (set allow_partition to "
              "permit degraded islands)");
        }
        break;
      }
      case FaultKind::kLinkRepair: {
        if (!alive[e.a] || !alive[e.b]) {
          throw std::invalid_argument(
              event_label(i, e) + ": link " + link_name(e.a, e.b) +
              " touches a killed router (repair the router first)");
        }
        if (killed_links.erase(canon(e.a, e.b)) == 0) {
          throw std::invalid_argument(event_label(i, e) + ": link " +
                                      link_name(e.a, e.b) +
                                      " is not killed at that time");
        }
        work.add_edge(e.a, e.b);
        break;
      }
      case FaultKind::kRouterRepair: {
        if (alive[e.a]) {
          throw std::invalid_argument(event_label(i, e) + ": router " +
                                      std::to_string(e.a) +
                                      " is not killed at that time");
        }
        alive[e.a] = 1;
        for (const NodeId nb : g.neighbors(e.a)) {
          if (alive[nb] && killed_links.count(canon(e.a, nb)) == 0) {
            work.add_edge(e.a, nb);
          }
        }
        break;
      }
    }
  }
}

std::string FaultPlan::describe() const {
  if (events.empty()) return "no-faults";
  std::string s;
  for (const FaultEvent& e : events) {
    if (!s.empty()) s += "; ";
    s += to_string(e.kind);
    s += ' ';
    s += std::to_string(e.a);
    if (e.kind == FaultKind::kLinkKill || e.kind == FaultKind::kLinkRepair) {
      s += '-';
      s += std::to_string(e.b);
    }
    s += " @";
    s += std::to_string(e.at);
  }
  return s;
}

void FaultScenarioSpec::validate() const {
  if (single_link_kills < 0 || single_link_kills > 64) {
    throw std::invalid_argument(
        "FaultScenarioSpec: single_link_kills must be in [0, 64]");
  }
  if (storm_kills < 0 || storm_kills > 256) {
    throw std::invalid_argument(
        "FaultScenarioSpec: storm_kills must be in [0, 256]");
  }
  if (kill_at < 1) {
    throw std::invalid_argument("FaultScenarioSpec: kill_at must be >= 1");
  }
  if (storm_kills > 0 && storm_spacing < 1) {
    throw std::invalid_argument(
        "FaultScenarioSpec: storm_spacing must be >= 1");
  }
  if (repair_after < 0) {
    throw std::invalid_argument(
        "FaultScenarioSpec: repair_after must be >= 0");
  }
  if (reconvergence_delay < 0) {
    throw std::invalid_argument(
        "FaultScenarioSpec: reconvergence_delay must be >= 0");
  }
  if (!(offered_rate > 0.0) || !(offered_rate <= 1.0)) {
    throw std::invalid_argument(
        "FaultScenarioSpec: offered_rate must be in (0, 1], got " +
        fmt_rate(offered_rate));
  }
  if (warmup < 0 || measure < 1) {
    throw std::invalid_argument(
        "FaultScenarioSpec: warmup must be >= 0 and measure >= 1");
  }
  if (!(recovery_threshold > 0.0) || !(recovery_threshold <= 1.0)) {
    throw std::invalid_argument(
        "FaultScenarioSpec: recovery_threshold must be in (0, 1]");
  }
  if (recovery_window < 1) {
    throw std::invalid_argument(
        "FaultScenarioSpec: recovery_window must be >= 1");
  }
}

std::vector<FaultPlan> FaultScenarioSpec::plans_for(
    const graph::Graph& g) const {
  std::vector<FaultPlan> plans = explicit_plans;
  const auto with_knobs = [&] {
    FaultPlan p;
    p.reconvergence_delay = reconvergence_delay;
    p.recovery_threshold = recovery_threshold;
    p.recovery_window = recovery_window;
    return p;
  };
  const auto killable = [](const graph::Graph& work) {
    const auto br = graph::bridges(work);
    std::vector<std::pair<NodeId, NodeId>> out;
    for (const auto& e : work.edges()) {
      if (!std::binary_search(br.begin(), br.end(), e)) out.push_back(e);
    }
    return out;
  };

  if (single_link_kills > 0) {
    auto candidates = killable(g);
    noc::Rng rng(noc::derive_seed(seed, 0x4B494C4CULL));  // "KILL"
    for (int k = 0; k < single_link_kills && !candidates.empty(); ++k) {
      const auto idx =
          static_cast<std::size_t>(rng.uniform_int(candidates.size()));
      const auto [a, b] = candidates[idx];
      candidates.erase(candidates.begin() +
                       static_cast<std::ptrdiff_t>(idx));
      FaultPlan p = with_knobs();
      p.events.push_back({kill_at, FaultKind::kLinkKill, a, b});
      if (repair_after > 0) {
        p.events.push_back(
            {kill_at + repair_after, FaultKind::kLinkRepair, a, b});
      }
      plans.push_back(std::move(p));
    }
  }

  if (storm_kills > 0) {
    graph::Graph work = g;
    noc::Rng rng(noc::derive_seed(seed, 0x53544F524DULL));  // "STORM"
    FaultPlan p = with_knobs();
    for (int k = 0; k < storm_kills; ++k) {
      const auto candidates = killable(work);
      if (candidates.empty()) break;  // nothing left to kill survivably
      const auto [a, b] = candidates[static_cast<std::size_t>(
          rng.uniform_int(candidates.size()))];
      p.events.push_back({kill_at + static_cast<noc::Cycle>(k) *
                                        storm_spacing,
                          FaultKind::kLinkKill, a, b});
      work.remove_edge(a, b);
    }
    if (!p.events.empty()) plans.push_back(std::move(p));
  }
  return plans;
}

std::string FaultScenarioSpec::describe() const {
  if (!enabled()) return "";
  std::string s = "kills=" + std::to_string(single_link_kills) +
                  " storm=" + std::to_string(storm_kills) +
                  " seed=" + std::to_string(seed) +
                  " rate=" + fmt_rate(offered_rate);
  if (!explicit_plans.empty()) {
    s += " explicit=" + std::to_string(explicit_plans.size());
  }
  if (repair_after > 0) s += " repair=" + std::to_string(repair_after);
  if (reconvergence_delay > 0) {
    s += " reconv=" + std::to_string(reconvergence_delay);
  }
  return s;
}

}  // namespace hm::faults
