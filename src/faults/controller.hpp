// Runtime driver of one FaultPlan against a live Network.
//
// The controller owns the fault state machine the Network itself stays
// ignorant of: which routers/links the plan has killed so far, which part of
// the arrangement is still routable (the principal surviving component),
// what the degraded routing tables look like, and when they become visible
// to the routers (the reconvergence window). The Network only ever sees two
// primitives — fault_transition() with explicit kill/repair/online sets, and
// set_degraded_routing() with a prebuilt view — so every policy decision
// (partitions, islands powering down, table-swap delays, recovery windows)
// lives here in one place.
//
// Determinism: events fire at exact absolute cycles (arm cycle + event.at),
// the Simulator's fast-forward is clamped by next_event_cycle(), and the
// recovery sampler closes windows lazily from monotone delivered counts, so
// a faulted run is bit-reproducible across thread counts and skip-idle
// modes (test_faults pins this).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"
#include "noc/network.hpp"

namespace hm::faults {

/// Applies a FaultPlan's events to a Network at their scheduled cycles,
/// rebuilds the degraded routing view after each batch (incrementally via
/// TopologyContext::rebuild_from while the vertex set is intact), delays its
/// installation by the plan's reconvergence window, and samples the
/// delivered-rate windows that define the recovery metrics.
class FaultController {
 public:
  explicit FaultController(FaultPlan plan);

  /// Arms the plan on `net` at cycle `now`: event times become absolute
  /// (now + event.at) and recovery sampling starts. Validates the plan
  /// against the network's graph (throws std::invalid_argument).
  void arm(noc::Network& net, noc::Cycle now);

  /// Next cycle at which the controller changes simulation state (fault
  /// batch or table swap) — the Simulator must not fast-forward past it.
  /// Cycle max when nothing is pending; recovery sampling is lazy and
  /// needs no wakeups.
  [[nodiscard]] noc::Cycle next_event_cycle() const noexcept;

  /// Runs everything due at `now`. Must be called at the top of each
  /// processed tick, before traffic generation and the network step.
  void on_tick(noc::Network& net, noc::Cycle now);

  /// True when both endpoints of a generated packet lie on routable
  /// routers. The Simulator suppresses (and counts) the rest.
  [[nodiscard]] bool packet_routable(const noc::Packet& p) const noexcept {
    return routable_[p.src_endpoint / eps_] != 0 &&
           routable_[p.dst_endpoint / eps_] != 0;
  }
  void note_unroutable_packet() noexcept { ++stats_.packets_unroutable; }

  [[nodiscard]] const ResilienceStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool armed() const noexcept { return armed_; }

  /// Adds this run's numbers to the process-wide fault.* telemetry
  /// counters (no-op while telemetry is disabled).
  void flush_telemetry() const;

 private:
  using Edge = std::pair<graph::NodeId, graph::NodeId>;

  struct PendingSwap {
    noc::Cycle at = 0;
    const noc::DegradedRouting* view = nullptr;  ///< nullptr: healthy
  };

  void apply_batch(noc::Network& net, noc::Cycle now);
  void sample_recovery(const noc::Network& net, noc::Cycle now);
  /// Routable = alive and inside the principal (largest, lowest-id on
  /// ties) component of the live graph.
  [[nodiscard]] std::vector<char> compute_routable() const;
  /// Edges that should carry traffic given `routable`: present in the base
  /// graph, not killed, both endpoints routable.
  [[nodiscard]] std::set<Edge> wired_set(
      const std::vector<char>& routable) const;
  /// Builds (and keeps alive) the degraded view matching the current fault
  /// state; nullptr when the network is back to full health.
  [[nodiscard]] const noc::DegradedRouting* build_view(
      const std::vector<char>& routable);

  FaultPlan plan_;
  bool armed_ = false;
  noc::Cycle arm_cycle_ = 0;
  std::size_t next_event_ = 0;  ///< into plan_.events
  std::size_t eps_ = 1;         ///< endpoints per chiplet

  std::shared_ptr<const noc::TopologyContext> base_topo_;
  std::vector<char> alive_;    ///< per router: not explicitly killed
  std::set<Edge> killed_links_;
  std::vector<char> routable_;
  std::set<Edge> wired_;       ///< edges currently carrying traffic

  /// Views installed (or pending) on the network; the routers borrow raw
  /// pointers into these, so they live until the controller dies.
  std::vector<std::unique_ptr<noc::DegradedRouting>> views_;
  std::vector<PendingSwap> swaps_;  ///< monotone `at` (constant delay)
  std::size_t next_swap_ = 0;
  /// Incremental rebuild chain while the vertex set is intact; null after
  /// a compaction (re-seeded from scratch on the next link-only state).
  std::shared_ptr<const noc::TopologyContext> identity_topo_;

  // Recovery sampling: fixed windows [arm + k*W, arm + (k+1)*W), closed
  // lazily from the monotone delivered-flit counter.
  noc::Cycle window_end_ = 0;
  std::uint64_t window_start_count_ = 0;
  std::uint64_t arm_delivered_ = 0;
  bool have_pre_rate_ = false;
  bool have_degraded_ = false;
  bool done_sampling_ = false;

  ResilienceStats stats_;
};

}  // namespace hm::faults
