// Fault injection plans for the cycle-accurate NoC simulator.
//
// A FaultPlan is a validated schedule of link-kill / router-kill / repair
// events applied to a running Network (paper context: a D2D link or a whole
// chiplet router dying mid-run). Validation replays the schedule against the
// arrangement graph up front and rejects, with a precise message, anything
// the runtime could not apply deterministically: unordered times, ids out of
// range, duplicate kills, repairs of healthy components, and — unless
// `allow_partition` is set — any cut that would disconnect endpoints
// (detected via graph::bridges for link kills and a live-subgraph
// connectivity check for router kills).
//
// A FaultScenarioSpec is the search/sweep-facing wrapper: instead of fixing
// concrete events (which would bind to one graph), it deterministically
// *generates* per-graph plans from a seed — K independent single-link kills
// avoiding bridges, or an N-kill storm — so the same spec can score every
// candidate arrangement of a search and feed the worst case back as a
// robust objective.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "noc/flit.hpp"

namespace hm::faults {

enum class FaultKind : std::uint8_t {
  kLinkKill,
  kRouterKill,
  kLinkRepair,
  kRouterRepair,
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scheduled fault event. `at` counts cycles from the instant the plan
/// is armed on a run (run start), not absolute simulation time, so a plan
/// is reusable across runs. Link events use both endpoints {a, b}; router
/// events use `a` only.
struct FaultEvent {
  noc::Cycle at = 0;
  FaultKind kind = FaultKind::kLinkKill;
  graph::NodeId a = 0;
  graph::NodeId b = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A validated schedule of fault events plus the knobs governing how the
/// network reacts (reconvergence) and how recovery is measured.
struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Permit cuts that disconnect the network. Routers outside the largest
  /// surviving component fall silent (their endpoints stop injecting and
  /// traffic addressed to them is dropped/suppressed), mirroring the
  /// router-kill semantics.
  bool allow_partition = false;

  /// Cycles between a topology change and the swap to freshly rebuilt
  /// routing tables. During the window routers run on stale tables; heads
  /// aimed at a dead port block on zero credits and are revoked onto the
  /// escape path each cycle, deterministically.
  noc::Cycle reconvergence_delay = 0;

  /// Recovery = first post-kill sampling window whose delivered-flit rate
  /// reaches `recovery_threshold` x the pre-fault rate.
  double recovery_threshold = 0.9;
  noc::Cycle recovery_window = 512;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Replays the schedule against `g` and throws std::invalid_argument on
  /// the first inconsistency (see file comment for the rule set).
  void validate(const graph::Graph& g) const;

  /// Compact single-line description, e.g.
  /// "kill-link 3-7 @1000; repair-link 3-7 @4000".
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Outcome of one faulted run (Simulator::run_resilience). Rates are
/// delivered flits/cycle/endpoint, comparable to ThroughputResult rates.
struct ResilienceStats {
  std::uint64_t links_killed = 0;
  std::uint64_t routers_killed = 0;
  std::uint64_t repairs = 0;
  /// In-network flits excised by kills (never silently leaked: conservation
  /// is injected == ejected + in-network + dropped, pinned by test_faults).
  std::uint64_t flits_dropped = 0;
  /// Distinct in-flight packets excised by kills.
  std::uint64_t packets_lost = 0;
  /// Source-queue packets removed before injection (dead source or dead
  /// destination) — lost offered load, but no flits ever entered the net.
  std::uint64_t packets_flushed = 0;
  /// Heads holding a route toward a killed port with zero flits sent:
  /// their allocation is revoked and they re-route on the degraded tables.
  std::uint64_t packets_rerouted = 0;
  /// Generated packets suppressed because src or dst endpoint was dead.
  std::uint64_t packets_unroutable = 0;

  double pre_fault_rate = 0.0;  ///< last full window before the first kill
  double degraded_rate = 0.0;   ///< worst post-kill window before recovery
  noc::Cycle first_kill_cycle = -1;
  noc::Cycle recovery_cycles = -1;  ///< -1: not recovered within the run
  bool recovered = false;
};

/// Deterministic per-graph fault-plan generator, embeddable in
/// core::EvaluationParams so sweeps and searches can score candidate
/// arrangements under faults. All generated kills avoid bridges (and each
/// other), so every plan passes FaultPlan::validate on its graph.
struct FaultScenarioSpec {
  /// K independent plans, each killing one seeded random non-bridge link.
  int single_link_kills = 0;
  /// One additional plan with this many successive random kills spaced
  /// `storm_spacing` apart (kills are permanent in storm mode).
  int storm_kills = 0;
  std::uint64_t seed = 1;

  noc::Cycle kill_at = 2000;  ///< first kill, cycles after run start
  noc::Cycle storm_spacing = 400;
  /// Single-kill plans only: repair the killed link this many cycles after
  /// the kill (0 = no repair).
  noc::Cycle repair_after = 0;
  noc::Cycle reconvergence_delay = 0;

  /// Fixed offered rate (flits/cycle/endpoint) of the resilience runs.
  double offered_rate = 0.25;
  noc::Cycle warmup = 2000;   ///< healthy cycles before `kill_at` applies
  noc::Cycle measure = 6000;  ///< post-arm horizon beyond the warmup
  double recovery_threshold = 0.9;
  noc::Cycle recovery_window = 512;

  /// Hand-written plans for fixed graphs (CLI / explicit sweeps). They are
  /// validated against each graph they run on.
  std::vector<FaultPlan> explicit_plans;

  [[nodiscard]] bool enabled() const noexcept {
    return single_link_kills > 0 || storm_kills > 0 || !explicit_plans.empty();
  }

  /// Graph-independent knob validation (throws std::invalid_argument).
  void validate() const;

  /// Generates the concrete plans for `g`: explicit plans first, then the
  /// seeded single-kill plans, then the storm plan. Deterministic in
  /// (spec, g); graphs with no killable (non-bridge) link yield fewer
  /// plans than requested.
  [[nodiscard]] std::vector<FaultPlan> plans_for(const graph::Graph& g) const;

  /// Compact description for export columns, e.g.
  /// "kills=2 storm=0 seed=1 rate=0.25".
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const FaultScenarioSpec&,
                         const FaultScenarioSpec&) = default;
};

}  // namespace hm::faults
