#include "faults/controller.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "telemetry/telemetry.hpp"

namespace hm::faults {

namespace {

using graph::NodeId;

[[nodiscard]] std::pair<NodeId, NodeId> canon(NodeId a, NodeId b) {
  return a < b ? std::pair<NodeId, NodeId>{a, b}
               : std::pair<NodeId, NodeId>{b, a};
}

}  // namespace

FaultController::FaultController(FaultPlan plan) : plan_(std::move(plan)) {}

void FaultController::arm(noc::Network& net, noc::Cycle now) {
  assert(!armed_);
  base_topo_ = net.topology_ptr();
  plan_.validate(base_topo_->graph());
  armed_ = true;
  arm_cycle_ = now;
  eps_ = static_cast<std::size_t>(net.config().endpoints_per_chiplet);

  const std::size_t n = base_topo_->graph().node_count();
  alive_.assign(n, 1);
  routable_.assign(n, 1);
  killed_links_.clear();
  identity_topo_ = base_topo_;
  wired_.clear();
  for (const Edge& e : base_topo_->graph().edges()) wired_.insert(e);

  window_end_ = now + plan_.recovery_window;
  arm_delivered_ = net.total_flits_ejected();
  window_start_count_ = arm_delivered_;
}

noc::Cycle FaultController::next_event_cycle() const noexcept {
  noc::Cycle next = std::numeric_limits<noc::Cycle>::max();
  if (next_event_ < plan_.events.size()) {
    next = arm_cycle_ + plan_.events[next_event_].at;
  }
  if (next_swap_ < swaps_.size() && swaps_[next_swap_].at < next) {
    next = swaps_[next_swap_].at;
  }
  return next;
}

void FaultController::on_tick(noc::Network& net, noc::Cycle now) {
  // Sample first: the delivered counter covers cycles < now, so a window
  // ending exactly at `now` closes with the exact count. Then install due
  // table swaps (scheduled by earlier batches) before applying any batch
  // due this very cycle, which may schedule its own later swap.
  sample_recovery(net, now);
  while (next_swap_ < swaps_.size() && swaps_[next_swap_].at <= now) {
    net.set_degraded_routing(swaps_[next_swap_].view);
    ++next_swap_;
  }
  while (next_event_ < plan_.events.size() &&
         arm_cycle_ + plan_.events[next_event_].at <= now) {
    apply_batch(net, now);
  }
}

void FaultController::apply_batch(noc::Network& net, noc::Cycle now) {
  // Consume every event sharing the batch's scheduled time so simultaneous
  // kills become one transition (one routable recompute, one excision).
  const noc::Cycle at = plan_.events[next_event_].at;
  bool any_kill = false;
  while (next_event_ < plan_.events.size() &&
         plan_.events[next_event_].at == at) {
    const FaultEvent& e = plan_.events[next_event_++];
    switch (e.kind) {
      case FaultKind::kLinkKill:
        killed_links_.insert(canon(e.a, e.b));
        ++stats_.links_killed;
        any_kill = true;
        break;
      case FaultKind::kRouterKill:
        alive_[e.a] = 0;
        ++stats_.routers_killed;
        any_kill = true;
        break;
      case FaultKind::kLinkRepair:
        killed_links_.erase(canon(e.a, e.b));
        ++stats_.repairs;
        break;
      case FaultKind::kRouterRepair:
        alive_[e.a] = 1;
        ++stats_.repairs;
        break;
    }
  }

  if (any_kill && stats_.first_kill_cycle < 0) {
    stats_.first_kill_cycle = now - arm_cycle_;  // reported relative to arm
    if (!have_pre_rate_) {
      // No full pre-fault window closed yet: fall back to the cumulative
      // healthy-phase rate so recovery has a meaningful baseline.
      const noc::Cycle span = now - arm_cycle_;
      const std::uint64_t delivered =
          net.total_flits_ejected() - arm_delivered_;
      stats_.pre_fault_rate =
          span > 0 ? static_cast<double>(delivered) /
                         (static_cast<double>(span) *
                          static_cast<double>(net.num_endpoints()))
                   : 0.0;
      have_pre_rate_ = true;
    }
  }

  // The network-facing kill/repair lists are the symmetric difference of
  // the wired sets before/after the batch. This makes islands power down
  // wholesale (their internal links are unwired too, so no credits can
  // drift while they are dark) and come back fully rewired on revival.
  const std::vector<char> routable = compute_routable();
  const std::set<Edge> wired_after = wired_set(routable);
  std::vector<Edge> kills;
  std::vector<Edge> repairs;
  for (const Edge& e : wired_) {
    if (wired_after.count(e) == 0) kills.push_back(e);
  }
  for (const Edge& e : wired_after) {
    if (wired_.count(e) == 0) repairs.push_back(e);
  }

  const noc::Network::FaultOutcome outcome =
      net.fault_transition(kills, repairs, routable);
  stats_.flits_dropped += outcome.flits_dropped;
  stats_.packets_lost += outcome.packets_lost;
  stats_.packets_flushed += outcome.packets_flushed;
  stats_.packets_rerouted += outcome.packets_rerouted;

  wired_ = wired_after;
  routable_ = routable;

  const noc::DegradedRouting* view = build_view(routable);
  if (plan_.reconvergence_delay <= 0) {
    net.set_degraded_routing(view);
  } else {
    swaps_.push_back(PendingSwap{now + plan_.reconvergence_delay, view});
  }
}

std::vector<char> FaultController::compute_routable() const {
  const graph::Graph& g = base_topo_->graph();
  const std::size_t n = g.node_count();
  std::vector<int> comp(n, -1);
  std::vector<std::size_t> comp_size;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (alive_[s] == 0 || comp[s] >= 0) continue;
    const int c = static_cast<int>(comp_size.size());
    comp_size.push_back(0);
    comp[s] = c;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      ++comp_size[static_cast<std::size_t>(c)];
      for (const NodeId nb : g.neighbors(v)) {
        if (alive_[nb] == 0 || comp[nb] >= 0) continue;
        if (killed_links_.count(canon(v, nb)) != 0) continue;
        comp[nb] = c;
        stack.push_back(nb);
      }
    }
  }
  // Principal component: largest; ties go to the first discovered, i.e.
  // the one containing the lowest router id (components are found in
  // ascending seed order).
  int best = -1;
  std::size_t best_size = 0;
  for (std::size_t c = 0; c < comp_size.size(); ++c) {
    if (comp_size[c] > best_size) {
      best = static_cast<int>(c);
      best_size = comp_size[c];
    }
  }
  std::vector<char> routable(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    routable[v] = comp[v] >= 0 && comp[v] == best ? 1 : 0;
  }
  return routable;
}

std::set<FaultController::Edge> FaultController::wired_set(
    const std::vector<char>& routable) const {
  std::set<Edge> out;
  for (const Edge& e : base_topo_->graph().edges()) {
    if (routable[e.first] != 0 && routable[e.second] != 0 &&
        killed_links_.count(e) == 0) {
      out.insert(e);
    }
  }
  return out;
}

const noc::DegradedRouting* FaultController::build_view(
    const std::vector<char>& routable) {
  const graph::Graph& g = base_topo_->graph();
  const std::size_t n = g.node_count();
  const bool all_routable = std::all_of(
      routable.begin(), routable.end(), [](char c) { return c != 0; });
  if (all_routable && killed_links_.empty()) {
    identity_topo_ = base_topo_;  // back to full health
    return nullptr;
  }

  auto view = std::make_unique<noc::DegradedRouting>();
  view->live_id.assign(n, noc::DegradedRouting::kDead);
  view->port_map.resize(n);

  if (all_routable) {
    // Link-only degradation: same vertex set, so the routing tables can be
    // rebuilt incrementally from the previous live topology (the delta is
    // this batch's kills/repairs). After a compaction the chain is broken
    // and the live graph is re-acquired from scratch once.
    if (identity_topo_ == nullptr) {
      graph::Graph live(n);
      for (const Edge& e : g.edges()) {
        if (killed_links_.count(e) == 0) live.add_edge(e.first, e.second);
      }
      identity_topo_ = noc::TopologyContext::acquire(live);
    } else {
      noc::GraphEdit edit;
      const graph::Graph& prev = identity_topo_->graph();
      for (const Edge& e : g.edges()) {
        const bool now_wired = killed_links_.count(e) == 0;
        const bool was_wired = prev.has_edge(e.first, e.second);
        if (was_wired && !now_wired) edit.removed.push_back(e);
        if (!was_wired && now_wired) edit.added.push_back(e);
      }
      identity_topo_ = noc::TopologyContext::rebuild_from(identity_topo_, edit);
    }
    view->topo = identity_topo_;
    for (NodeId r = 0; r < n; ++r) {
      view->live_id[r] = r;
      const std::span<const NodeId> nbrs = g.neighbors(r);
      for (std::size_t p = 0; p < nbrs.size(); ++p) {
        if (killed_links_.count(canon(r, nbrs[p])) == 0) {
          view->port_map[r].push_back(static_cast<std::uint8_t>(p));
        }
      }
    }
  } else {
    // Compaction: routable routers are renumbered in ascending id order.
    // The relabeling is monotone, so each live router's sorted-adjacency
    // order is preserved and live port k maps to its k-th surviving
    // physical neighbor — port_map below is exactly that walk.
    identity_topo_ = nullptr;
    std::uint32_t next = 0;
    for (NodeId r = 0; r < n; ++r) {
      if (routable[r] != 0) view->live_id[r] = next++;
    }
    if (next > 0) {
      graph::Graph live(next);
      for (const Edge& e : g.edges()) {
        if (routable[e.first] != 0 && routable[e.second] != 0 &&
            killed_links_.count(e) == 0) {
          live.add_edge(view->live_id[e.first], view->live_id[e.second]);
        }
      }
      view->topo = noc::TopologyContext::acquire(live);
    }
    for (NodeId r = 0; r < n; ++r) {
      if (routable[r] == 0) continue;
      const std::span<const NodeId> nbrs = g.neighbors(r);
      for (std::size_t p = 0; p < nbrs.size(); ++p) {
        if (routable[nbrs[p]] != 0 &&
            killed_links_.count(canon(r, nbrs[p])) == 0) {
          view->port_map[r].push_back(static_cast<std::uint8_t>(p));
        }
      }
    }
  }

  views_.push_back(std::move(view));
  return views_.back().get();
}

void FaultController::sample_recovery(const noc::Network& net,
                                      noc::Cycle now) {
  if (done_sampling_) return;
  // Lazy catch-up is exact: the network is quiescent over any fast-forward
  // skip, so the delivered counter is constant across every window closed
  // in arrears.
  while (!done_sampling_ && window_end_ <= now) {
    const std::uint64_t delivered = net.total_flits_ejected();
    const double rate =
        static_cast<double>(delivered - window_start_count_) /
        (static_cast<double>(plan_.recovery_window) *
         static_cast<double>(net.num_endpoints()));
    if (stats_.first_kill_cycle < 0) {
      stats_.pre_fault_rate = rate;
      have_pre_rate_ = true;
    } else {
      if (!have_degraded_ || rate < stats_.degraded_rate) {
        stats_.degraded_rate = rate;
        have_degraded_ = true;
      }
      if (stats_.pre_fault_rate > 0.0 &&
          rate >= plan_.recovery_threshold * stats_.pre_fault_rate) {
        stats_.recovered = true;
        stats_.recovery_cycles =
            window_end_ - (arm_cycle_ + stats_.first_kill_cycle);
        done_sampling_ = true;
      }
    }
    window_start_count_ = delivered;
    window_end_ += plan_.recovery_window;
  }
}

void FaultController::flush_telemetry() const {
  if (!telemetry::enabled()) return;
  static telemetry::Counter links_killed("fault.links_killed");
  static telemetry::Counter routers_killed("fault.routers_killed");
  static telemetry::Counter repairs("fault.repairs");
  static telemetry::Counter flits_dropped("fault.flits_dropped");
  static telemetry::Counter packets_lost("fault.packets_lost");
  static telemetry::Counter packets_rerouted("fault.packets_rerouted");
  static telemetry::Counter packets_unroutable("fault.packets_unroutable");
  static telemetry::Counter recoveries("fault.recoveries");
  static telemetry::Counter recovery_cycles("fault.recovery_cycles");
  links_killed.add(stats_.links_killed);
  routers_killed.add(stats_.routers_killed);
  repairs.add(stats_.repairs);
  flits_dropped.add(stats_.flits_dropped);
  packets_lost.add(stats_.packets_lost);
  packets_rerouted.add(stats_.packets_rerouted);
  packets_unroutable.add(stats_.packets_unroutable);
  if (stats_.recovered) {
    recoveries.add(1);
    recovery_cycles.add(static_cast<std::uint64_t>(stats_.recovery_cycles));
  }
}

}  // namespace hm::faults
