// Chiplet shape solver (Sec. IV-B): given the chiplet area A_C and the
// fraction p_p of bumps reserved for the power supply, compute the chiplet
// dimensions, the bump-sector area per D2D link A_B, and the maximum
// bump-to-edge distance D_B that minimizes the D2D link length.
//
// Grid chiplets are square with a centered power square; brickwall/HexaMesh
// chiplets solve the system of equations (1)-(5):
//   H_C = 2 D_B + L_B          (1)
//   W_C = 2 L_B                (2)
//   W_P = W_C - 2 D_B          (3)
//   H_C * W_C = A_C            (4)
//   W_P * L_B = A_C * p_p      (5)
#pragma once

#include <vector>

#include "core/arrangement.hpp"
#include "geometry/bump_layout.hpp"

namespace hm::core {

/// Inputs of the shape solver.
struct ShapeParams {
  double chiplet_area_mm2 = 16.0;  ///< A_C
  double power_fraction = 0.4;     ///< p_p in [0, 1)

  /// Throws std::invalid_argument when out of range.
  void validate() const;
};

/// Solved shape of one chiplet (all lengths mm, areas mm^2).
struct ChipletShape {
  double width = 0.0;             ///< W_C
  double height = 0.0;            ///< H_C
  double power_width = 0.0;       ///< W_P
  double power_height = 0.0;      ///< H_P (grid) / L_B (hex layouts)
  double link_sector_area = 0.0;  ///< A_B
  double bump_edge_distance = 0.0;  ///< D_B
  int link_sectors = 0;           ///< 4 (grid) or 6 (brickwall/HexaMesh)
};

/// Square grid chiplet (Fig. 5a): W_C = H_C = sqrt(A_C),
/// A_B = (1-p_p) A_C / 4, D_B = (W_C - W_P)/2.
[[nodiscard]] ChipletShape solve_grid_shape(const ShapeParams& p);

/// Brickwall/HexaMesh chiplet (Fig. 5b): closed-form solution of (1)-(5):
/// W_C = sqrt(A_C (2+4p_p)/3), H_C = A_C/W_C,
/// D_B = (1-p_p) A_C / sqrt(A_C (6+12p_p)), A_B = (1-p_p) A_C / 6.
[[nodiscard]] ChipletShape solve_hex_shape(const ShapeParams& p);

/// Dispatch on arrangement type (throws for the honeycomb, whose chiplets
/// are not rectangular).
[[nodiscard]] ChipletShape solve_shape(ArrangementType t,
                                       const ShapeParams& p);

/// Largest residual of equations (1)-(5) for a hex-layout shape; ~0 for
/// shapes produced by solve_hex_shape (used for validation).
[[nodiscard]] double hex_shape_residual(const ChipletShape& s,
                                        const ShapeParams& p);

/// Concrete Fig. 5 bump-sector layout for a solved shape, in chiplet-local
/// coordinates. Sector areas equal A_B (links) and p_p*A_C (power); the
/// maximum bump-to-edge distance of every link sector equals D_B.
[[nodiscard]] std::vector<geom::BumpSector> bump_sectors(
    const ChipletShape& s);

}  // namespace hm::core
