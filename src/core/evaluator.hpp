// End-to-end evaluation pipeline of Sec. VI: an arrangement of N chiplets is
// turned into (a) analytic proxies (diameter, bisection width via the
// partitioner for non-regular cases), (b) a per-link bandwidth from the
// chiplet-shape solver + D2D link model, and (c) cycle-accurate zero-load
// latency and saturation throughput from the NoC simulator. Saturation
// throughput in Tb/s = accepted fraction x full global bandwidth, where the
// full global bandwidth is N x endpoints/chiplet x per-link bandwidth
// (Sec. VI-A).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/arrangement.hpp"
#include "core/link_model.hpp"
#include "core/shape.hpp"
#include "faults/fault_plan.hpp"
#include "noc/config.hpp"
#include "noc/flit.hpp"
#include "noc/traffic.hpp"

namespace hm::noc {
class ProbeExecutor;
class TopologyContext;
}  // namespace hm::noc

namespace hm::core {

/// All parameters of the paper's evaluation (defaults = Sec. VI values).
struct EvaluationParams {
  double total_area_mm2 = kDefaultTotalAreaMm2;  ///< A_all; A_C = A_all / N
  double power_fraction = kDefaultPowerFraction;
  double bump_pitch_mm = kDefaultBumpPitchMm;
  int non_data_wires = kDefaultNonDataWires;
  double frequency_hz = kDefaultFrequencyHz;

  /// The paper hand-optimizes bump assignment for N <= 7 (Sec. VI-B) without
  /// specifying how. When true, designs with N <= 7 chiplets grant each link
  /// A_B = (1-p_p) * A_C / max_degree instead of the general sector formula.
  bool hand_optimized_small_n = false;

  /// Injection rate used for the zero-load latency measurement
  /// (flits/cycle/endpoint; low enough to avoid queueing).
  double zero_load_injection_rate = 0.01;

  /// Cycle-accurate simulator knobs (defaults mirror Sec. VI-A).
  noc::SimConfig sim;

  /// Simulation phase lengths (cycles). The throughput windows apply to
  /// each probe of the saturation binary search (~8 probes per design).
  noc::Cycle latency_warmup = 3000;
  noc::Cycle latency_measure = 8000;
  noc::Cycle latency_drain_limit = 300000;
  noc::Cycle throughput_warmup = 3500;
  noc::Cycle throughput_measure = 3500;

  /// Which cycle-accurate measurements evaluate() runs. Sweeps that only
  /// plot one of the two figures (e.g. Fig. 7a vs 7b) skip the other half
  /// of the simulation budget; skipped fields stay zero.
  bool measure_latency = true;
  bool measure_saturation = true;

  /// Fault-injection scenario (disabled by default). When enabled,
  /// evaluate() additionally runs one resilience simulation per generated
  /// plan and reports the worst case over the plan set — the robust
  /// objective the search can optimize.
  faults::FaultScenarioSpec faults;
};

/// Everything the paper reports per design point.
struct EvaluationResult {
  std::size_t chiplet_count = 0;
  RegularityClass regularity = RegularityClass::kRegular;

  // Analytic proxies (Sec. IV-D).
  int diameter = 0;
  double avg_hop_distance = 0.0;
  std::size_t bisection_links = 0;

  // Link model (Sec. V).
  std::size_t link_count = 0;  ///< D2D links in the arrangement graph
  double chiplet_area_mm2 = 0.0;
  double link_area_mm2 = 0.0;
  double per_link_bandwidth_bps = 0.0;
  double full_global_bandwidth_bps = 0.0;

  // Cycle-accurate simulation (Sec. VI-A).
  double zero_load_latency_cycles = 0.0;
  /// Accepted flit rate at the saturation knee, as a fraction of the full
  /// injection rate (binary search over offered load, BookSim methodology).
  double saturation_fraction = 0.0;
  double saturation_throughput_bps = 0.0; ///< fraction x full global BW
  bool latency_run_drained = false;

  // Fault injection & resilience (worst case over params.faults' plan set;
  // zeros/-1 when the scenario is disabled).
  std::size_t fault_plans_run = 0;
  /// Worst (minimum over plans) degraded delivered rate,
  /// flits/cycle/endpoint — the robust counterpart of saturation_fraction.
  double fault_degraded_throughput = 0.0;
  /// fault_degraded_throughput x full global bandwidth: the worst-case
  /// delivered bandwidth under the fault scenario.
  double fault_robust_throughput_bps = 0.0;
  /// Slowest recovery over the plan set; -1 when any plan failed to reach
  /// the recovery threshold within its run.
  noc::Cycle fault_recovery_cycles = -1;
  std::uint64_t fault_packets_lost = 0;  ///< summed over plans
};

/// Per-link bump-sector area A_B for an arrangement whose chiplets have area
/// `chiplet_area` (applies the hand-optimized rule for N <= 7 when enabled).
[[nodiscard]] double link_area_for(const Arrangement& arr,
                                   double chiplet_area_mm2,
                                   const EvaluationParams& params);

/// Analytic-only evaluation (no simulation): proxies + link model.
/// Bisection uses the closed forms for regular arrangements and the
/// balanced partitioner otherwise (exactly like the paper's Fig. 6b).
[[nodiscard]] EvaluationResult evaluate_analytic(
    const Arrangement& arr, const EvaluationParams& params = {});

/// Analytic saturation estimate in [0, 1] for
/// noc::SaturationSearchOptions::surrogate_rate, from the analytic fields
/// of `r` (bisection_links, link_count, avg_hop_distance, chiplet_count):
/// the tighter of the uniform-traffic bisection bound and the
/// channel-capacity bound on the per-endpoint flit rate, scaled by an
/// empirical input-queued-router efficiency. Only a search seed — a poor
/// estimate costs the saturation search extra probes, never a different
/// answer. Returns 0 when the fields needed are missing/degenerate (the
/// search then gallops up from the bottom of the grid).
[[nodiscard]] double analytic_saturation_estimate(
    const EvaluationResult& r, const EvaluationParams& params);

/// Full evaluation including the cycle-accurate simulations (Fig. 7).
/// Requires >= 2 chiplets (a 1-chiplet design has no ICI to simulate).
///
/// Re-entrant and const-correct: it touches no shared mutable state, so
/// concurrent calls on different (or the same) arrangements are safe —
/// this is the entry point the explore::SweepEngine fans out across
/// threads. `traffic` selects the simulated pattern (default: uniform
/// random, the paper's setup). When `executor` is non-null, the
/// independent simulation probes within this one design — the zero-load
/// latency run and the saturation-search probes — run in parallel; the
/// result is bit-identical to the sequential evaluation because every
/// probe owns a fresh, deterministically seeded simulator.
[[nodiscard]] EvaluationResult evaluate(const Arrangement& arr,
                                        const EvaluationParams& params = {},
                                        const noc::TrafficSpec& traffic = {},
                                        noc::ProbeExecutor* executor = nullptr);

/// evaluate() on a pre-acquired shared topology for arr.graph(): the
/// zero-load latency run and every saturation probe reuse `topology`
/// read-only instead of rebuilding routing tables per fresh simulator.
/// Throws std::invalid_argument when `topology` was built for a different
/// graph. The overloads without a context acquire one per call, which the
/// process-wide context cache still collapses to a single build per graph.
[[nodiscard]] EvaluationResult evaluate(
    const Arrangement& arr, const EvaluationParams& params,
    const noc::TrafficSpec& traffic, noc::ProbeExecutor* executor,
    std::shared_ptr<const noc::TopologyContext> topology);

/// The simulation half of evaluate(): takes an `analytic` result already
/// computed by evaluate_analytic(arr, params) and fills in the
/// cycle-accurate fields. Lets callers (e.g. the sweep engine's
/// ResultCache) share one analytic evaluation across many traffic or
/// simulator ablations of the same design.
[[nodiscard]] EvaluationResult evaluate_simulation(
    const Arrangement& arr, const EvaluationParams& params,
    EvaluationResult analytic, const noc::TrafficSpec& traffic = {},
    noc::ProbeExecutor* executor = nullptr);

/// evaluate_simulation() on a pre-acquired shared topology (see the
/// evaluate() context overload). This is the entry point the sweep engine
/// uses so that one topology build serves every probe of a job — and, via
/// the context cache, every job of the same design.
[[nodiscard]] EvaluationResult evaluate_simulation(
    const Arrangement& arr, const EvaluationParams& params,
    EvaluationResult analytic, const noc::TrafficSpec& traffic,
    noc::ProbeExecutor* executor,
    std::shared_ptr<const noc::TopologyContext> topology);

}  // namespace hm::core
