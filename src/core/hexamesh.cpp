#include "core/hexamesh.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/lattice_detail.hpp"

namespace hm::core {

namespace {

/// Axial coordinates are stored as LatticeCoord{a = r, b = q}.
LatticeCoord axial(int q, int r) { return LatticeCoord{r, q}; }

/// The six axial directions, in ring-walk order.
constexpr int kDirQ[6] = {1, 0, -1, -1, 0, 1};
constexpr int kDirR[6] = {0, 1, 1, 0, -1, -1};

/// Cells of ring k (k >= 1) in a contiguous cyclic walk (6k cells). The walk
/// starts at the corner k * direction 4 and proceeds so that consecutive
/// cells are lattice neighbours.
std::vector<LatticeCoord> ring_walk(std::size_t k) {
  std::vector<LatticeCoord> out;
  out.reserve(6 * k);
  int q = 0 * static_cast<int>(k) + kDirQ[4] * static_cast<int>(k);
  int r = kDirR[4] * static_cast<int>(k);
  for (int side = 0; side < 6; ++side) {
    for (std::size_t step = 0; step < k; ++step) {
      out.push_back(axial(q, r));
      q += kDirQ[side];
      r += kDirR[side];
    }
  }
  return out;
}

/// All cells with hex distance <= radius, center first, then ring by ring in
/// walk order (deterministic chiplet ids: id 0 is always the center).
std::vector<LatticeCoord> ball(std::size_t radius) {
  std::vector<LatticeCoord> coords{axial(0, 0)};
  for (std::size_t k = 1; k <= radius; ++k) {
    const auto ring = ring_walk(k);
    coords.insert(coords.end(), ring.begin(), ring.end());
  }
  return coords;
}

Arrangement build_hm(std::vector<LatticeCoord> coords, RegularityClass cls) {
  graph::Graph g = detail::build_lattice_graph(coords, detail::hex_neighbors);
  return Arrangement(ArrangementType::kHexaMesh, cls, std::move(coords),
                     std::move(g));
}

}  // namespace

std::size_t hexamesh_chiplet_count(std::size_t rings) {
  return 1 + 3 * rings * (rings + 1);
}

bool is_regular_hexamesh_count(std::size_t n) {
  if (n < 1) return false;
  return hexamesh_chiplet_count(hexamesh_max_complete_rings(n)) == n;
}

std::size_t hexamesh_max_complete_rings(std::size_t n) {
  if (n < 1) {
    throw std::invalid_argument("hexamesh_max_complete_rings: n >= 1");
  }
  std::size_t r = 0;
  while (hexamesh_chiplet_count(r + 1) <= n) ++r;
  return r;
}

Arrangement make_hexamesh_regular(std::size_t rings) {
  return build_hm(ball(rings), RegularityClass::kRegular);
}

Arrangement make_hexamesh_irregular(std::size_t n) {
  if (n < 1) throw std::invalid_argument("make_hexamesh_irregular: n >= 1");
  const std::size_t core_rings = hexamesh_max_complete_rings(n);
  std::vector<LatticeCoord> coords = ball(core_rings);
  std::size_t extra = n - coords.size();
  if (extra > 0) {
    const std::size_t k = core_rings + 1;
    std::vector<LatticeCoord> ring = ring_walk(k);
    // Rotate the walk so it starts at a mid-edge cell (which touches two
    // cells of the completed core); corners touch only one. For k == 1 every
    // ring cell touches just the center, so no rotation helps.
    if (k >= 2) {
      std::rotate(ring.begin(), ring.begin() + static_cast<long>(k / 2),
                  ring.end());
    }
    coords.insert(coords.end(), ring.begin(),
                  ring.begin() + static_cast<long>(extra));
  }
  return build_hm(std::move(coords), RegularityClass::kIrregular);
}

Arrangement make_hexamesh(std::size_t n) {
  if (n < 1) throw std::invalid_argument("make_hexamesh: n >= 1");
  return is_regular_hexamesh_count(n) ? make_hexamesh_regular(
                                            hexamesh_max_complete_rings(n))
                                      : make_hexamesh_irregular(n);
}

}  // namespace hm::core
