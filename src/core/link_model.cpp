#include "core/link_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hm::core {

void LinkModelParams::validate() const {
  if (!(link_area_mm2 > 0.0)) {
    throw std::invalid_argument("LinkModelParams: A_B must be positive");
  }
  if (!(bump_pitch_mm > 0.0)) {
    throw std::invalid_argument("LinkModelParams: P_B must be positive");
  }
  if (non_data_wires < 0) {
    throw std::invalid_argument("LinkModelParams: N_ndw must be >= 0");
  }
  if (!(frequency_hz > 0.0)) {
    throw std::invalid_argument("LinkModelParams: f must be positive");
  }
}

LinkEstimate estimate_link(const LinkModelParams& p) {
  p.validate();
  LinkEstimate e;
  e.total_wires = static_cast<std::int64_t>(
      std::floor(p.link_area_mm2 / (p.bump_pitch_mm * p.bump_pitch_mm)));
  e.data_wires = std::max<std::int64_t>(0, e.total_wires - p.non_data_wires);
  e.bandwidth_bps = static_cast<double>(e.data_wires) * p.frequency_hz;
  return e;
}

}  // namespace hm::core
