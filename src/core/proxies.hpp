// Closed-form performance proxies of Sec. IV-D: network diameter (latency
// proxy) and bisection bandwidth in links (throughput proxy) for regular
// arrangements, plus their asymptotic ratios vs the grid baseline.
#pragma once

#include <cstddef>

#include "core/arrangement.hpp"

namespace hm::core {

/// D_G(N) = 2*sqrt(N) - 2 (regular grid; N a perfect square).
[[nodiscard]] double grid_diameter(std::size_t n);

/// D_BW(N) = 2*sqrt(N) - 2 - floor((sqrt(N)-1)/2) (regular brickwall).
[[nodiscard]] double brickwall_diameter(std::size_t n);

/// D_HM(N) = (1/3)*sqrt(12N - 3) - 1 (regular HexaMesh; N = 1 + 3r(r+1)).
[[nodiscard]] double hexamesh_diameter(std::size_t n);

/// B_G(N) = sqrt(N).
[[nodiscard]] double grid_bisection(std::size_t n);

/// B_BW(N) = 2*sqrt(N) - 1.
[[nodiscard]] double brickwall_bisection(std::size_t n);

/// B_HM(N) = (2/3)*sqrt(12N - 3) - 1.
[[nodiscard]] double hexamesh_bisection(std::size_t n);

/// Dispatch on arrangement type (honeycomb shares the brickwall formulas).
[[nodiscard]] double analytic_diameter(ArrangementType t, std::size_t n);
[[nodiscard]] double analytic_bisection(ArrangementType t, std::size_t n);

/// lim D_BW/D_G = 3/4: the brickwall cuts the diameter by 25%.
[[nodiscard]] double asymptotic_diameter_ratio_bw();

/// lim D_HM/D_G = 1/sqrt(3) ~= 0.577: HexaMesh cuts the diameter by 42%.
[[nodiscard]] double asymptotic_diameter_ratio_hm();

/// lim B_BW/B_G = 2: the brickwall doubles the bisection bandwidth.
[[nodiscard]] double asymptotic_bisection_ratio_bw();

/// lim B_HM/B_G = 4/sqrt(3) ~= 2.31: HexaMesh improves it by 130%.
[[nodiscard]] double asymptotic_bisection_ratio_hm();

/// Upper bound on the average neighbour count of any planar arrangement
/// (Sec. IV-A): 6 - 12/N. The honeycomb/brickwall family attains it
/// asymptotically.
[[nodiscard]] double max_avg_neighbors(std::size_t n);

}  // namespace hm::core
