// HexaMesh (HM) arrangement factories (Fig. 4d) — the paper's contribution:
// rectangular chiplets in brickwall-style rows arranged as concentric rings
// around a central chiplet. A regular HM with r rings has N = 1 + 3r(r+1)
// chiplets (ring i holds 6i); its graph is the radius-r ball of the
// triangular lattice, with diameter 2r and minimum degree 3.
#pragma once

#include <cstddef>

#include "core/arrangement.hpp"

namespace hm::core {

/// Chiplet count of a regular HexaMesh with `rings` rings: 1 + 3r(r+1).
[[nodiscard]] std::size_t hexamesh_chiplet_count(std::size_t rings);

/// True iff n == 1 + 3r(r+1) for some r >= 0 (i.e. a regular HM exists).
[[nodiscard]] bool is_regular_hexamesh_count(std::size_t n);

/// Number of complete rings of the largest regular HM with <= n chiplets.
[[nodiscard]] std::size_t hexamesh_max_complete_rings(std::size_t n);

/// Regular HexaMesh with `rings` rings (rings >= 0; 0 = single chiplet).
[[nodiscard]] Arrangement make_hexamesh_regular(std::size_t rings);

/// Irregular HexaMesh with exactly `n` chiplets: the largest complete-ring
/// core plus a partial outer ring, walked contiguously starting from a
/// mid-edge position so every appended chiplet touches >= 2 already-placed
/// chiplets (Sec. IV-C). Requires n >= 1.
[[nodiscard]] Arrangement make_hexamesh_irregular(std::size_t n);

/// Auto-classified HexaMesh: regular when n = 1 + 3r(r+1), else irregular.
[[nodiscard]] Arrangement make_hexamesh(std::size_t n);

}  // namespace hm::core
