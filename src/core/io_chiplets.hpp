// Perimeter I/O-chiplet placement (Sec. III-A, Fig. 2): the paper assumes
// that chiplets for I/O drivers and other functions sit on the perimeter of
// the compute-chiplet arrangement, where package solder balls are routable.
// This module enumerates the perimeter slots of an arrangement, places I/O
// chiplets flush against exposed compute-chiplet sides, and extends the
// adjacency graph so the combined design can be analyzed and simulated.
#pragma once

#include <cstddef>
#include <vector>

#include "core/arrangement.hpp"
#include "geometry/placement.hpp"
#include "graph/graph.hpp"

namespace hm::core {

/// One placed I/O chiplet.
struct IoSlot {
  geom::Rect rect;               ///< physical I/O chiplet rectangle
  std::size_t attached_chiplet;  ///< compute chiplet it abuts
  double contact_mm = 0.0;       ///< shared edge length with that chiplet
};

/// A compute arrangement extended with perimeter I/O chiplets.
struct IoFloorplan {
  geom::ChipletPlacement compute;  ///< the compute-chiplet placement
  std::vector<IoSlot> io;          ///< accepted I/O slots
  /// Adjacency graph over compute + I/O chiplets: vertices 0..N-1 are the
  /// compute chiplets (same ids as the arrangement), vertices N.. are the
  /// I/O chiplets in `io` order. Includes I/O-to-I/O contacts.
  graph::Graph extended;

  /// Compute + I/O rectangles in extended-graph vertex order (for rendering
  /// and geometric checks).
  [[nodiscard]] geom::ChipletPlacement combined_placement() const;
};

/// Places I/O chiplets around `arr` (compute chiplets of `wc` x `hc` mm).
/// Every fully exposed side of a compute chiplet (no other chiplet touching
/// it) yields a candidate I/O rectangle of depth `io_depth` mirrored across
/// that side; candidates are accepted greedily in deterministic order
/// (chiplet id, then side N/E/S/W) while they stay overlap-free.
/// `max_io` = 0 accepts every non-overlapping candidate. Throws
/// std::invalid_argument for non-positive dimensions or a honeycomb
/// arrangement (no rectangle placement).
[[nodiscard]] IoFloorplan place_io_chiplets(const Arrangement& arr, double wc,
                                            double hc, double io_depth,
                                            std::size_t max_io = 0);

}  // namespace hm::core
