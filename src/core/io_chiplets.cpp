#include "core/io_chiplets.hpp"

#include <stdexcept>

namespace hm::core {

namespace {

/// The four axis-aligned sides of a rectangle, as outward I/O candidates.
enum class Side { kNorth, kEast, kSouth, kWest };

/// I/O rectangle of depth `d` mirrored across `side` of `r`.
geom::Rect mirror_rect(const geom::Rect& r, Side side, double d) {
  switch (side) {
    case Side::kNorth: return geom::Rect{r.x, r.top(), r.w, d};
    case Side::kSouth: return geom::Rect{r.x, r.y - d, r.w, d};
    case Side::kEast: return geom::Rect{r.right(), r.y, d, r.h};
    case Side::kWest: return geom::Rect{r.x - d, r.y, d, r.h};
  }
  throw std::logic_error("mirror_rect: bad side");
}

/// Length of `r`'s `side`.
double side_length(const geom::Rect& r, Side side) {
  return (side == Side::kNorth || side == Side::kSouth) ? r.w : r.h;
}

}  // namespace

geom::ChipletPlacement IoFloorplan::combined_placement() const {
  std::vector<geom::Rect> rects = compute.chiplets();
  rects.reserve(rects.size() + io.size());
  for (const IoSlot& slot : io) rects.push_back(slot.rect);
  return geom::ChipletPlacement(std::move(rects));
}

IoFloorplan place_io_chiplets(const Arrangement& arr, double wc, double hc,
                              double io_depth, std::size_t max_io) {
  if (!(io_depth > 0.0)) {
    throw std::invalid_argument("place_io_chiplets: io_depth must be > 0");
  }
  IoFloorplan plan;
  plan.compute = arr.placement(wc, hc);  // validates wc/hc and type
  const std::size_t n = plan.compute.size();

  // Exposed side = no other compute chiplet shares any part of it. A side
  // is covered iff some other chiplet's mirrored strip would overlap; we
  // test contact directly: the candidate I/O rect overlaps a compute
  // chiplet exactly when the side is (partially) covered.
  for (std::size_t c = 0; c < n && (max_io == 0 || plan.io.size() < max_io);
       ++c) {
    const geom::Rect& r = plan.compute.chiplet(c);
    for (Side side : {Side::kNorth, Side::kEast, Side::kSouth, Side::kWest}) {
      if (max_io != 0 && plan.io.size() >= max_io) break;
      const geom::Rect candidate = mirror_rect(r, side, io_depth);

      bool free = true;
      for (std::size_t other = 0; other < n && free; ++other) {
        if (candidate.overlaps(plan.compute.chiplet(other))) free = false;
      }
      for (const IoSlot& placed : plan.io) {
        if (!free) break;
        if (candidate.overlaps(placed.rect)) free = false;
      }
      if (!free) continue;

      IoSlot slot;
      slot.rect = candidate;
      slot.attached_chiplet = c;
      slot.contact_mm = side_length(r, side);
      plan.io.push_back(slot);
    }
  }

  plan.extended = plan.combined_placement().adjacency_graph();
  return plan;
}

}  // namespace hm::core
