#include "core/shape.hpp"

#include <cmath>
#include <stdexcept>

namespace hm::core {

void ShapeParams::validate() const {
  if (!(chiplet_area_mm2 > 0.0)) {
    throw std::invalid_argument("ShapeParams: chiplet area must be positive");
  }
  if (!(power_fraction >= 0.0) || !(power_fraction < 1.0)) {
    throw std::invalid_argument(
        "ShapeParams: power fraction must be in [0, 1)");
  }
}

ChipletShape solve_grid_shape(const ShapeParams& p) {
  p.validate();
  const double ac = p.chiplet_area_mm2;
  const double pp = p.power_fraction;
  ChipletShape s;
  s.width = std::sqrt(ac);
  s.height = s.width;
  s.power_width = std::sqrt(pp * ac);
  s.power_height = s.power_width;
  s.link_sector_area = (1.0 - pp) * ac / 4.0;
  s.bump_edge_distance = (s.width - s.power_width) / 2.0;
  s.link_sectors = 4;
  return s;
}

ChipletShape solve_hex_shape(const ShapeParams& p) {
  p.validate();
  const double ac = p.chiplet_area_mm2;
  const double pp = p.power_fraction;
  ChipletShape s;
  s.width = std::sqrt(ac * (2.0 + 4.0 * pp) / 3.0);
  s.height = ac / s.width;
  s.bump_edge_distance =
      (1.0 - pp) * ac / std::sqrt(ac * (6.0 + 12.0 * pp));
  s.power_width = s.width - 2.0 * s.bump_edge_distance;
  s.power_height = s.width / 2.0;  // L_B = W_C / 2 (middle-band height)
  s.link_sector_area = (1.0 - pp) * ac / 6.0;
  s.link_sectors = 6;
  return s;
}

ChipletShape solve_shape(ArrangementType t, const ShapeParams& p) {
  switch (t) {
    case ArrangementType::kGrid:
      return solve_grid_shape(p);
    case ArrangementType::kBrickwall:
    case ArrangementType::kHexaMesh:
      return solve_hex_shape(p);
    case ArrangementType::kHoneycomb:
      throw std::invalid_argument(
          "solve_shape: honeycomb chiplets are not rectangular");
  }
  throw std::invalid_argument("solve_shape: unknown type");
}

double hex_shape_residual(const ChipletShape& s, const ShapeParams& p) {
  const double lb = s.power_height;  // L_B
  const double r1 = s.height - (2.0 * s.bump_edge_distance + lb);
  const double r2 = s.width - 2.0 * lb;
  const double r3 = s.power_width - (s.width - 2.0 * s.bump_edge_distance);
  const double r4 = s.height * s.width - p.chiplet_area_mm2;
  const double r5 = s.power_width * lb - p.chiplet_area_mm2 * p.power_fraction;
  double worst = 0.0;
  for (double r : {r1, r2, r3, r4, r5}) worst = std::max(worst, std::abs(r));
  return worst;
}

std::vector<geom::BumpSector> bump_sectors(const ChipletShape& s) {
  if (s.link_sectors == 4) {
    return geom::grid_bump_layout(s.width, s.power_width);
  }
  if (s.link_sectors == 6) {
    return geom::hex_bump_layout(s.width, s.height, s.bump_edge_distance);
  }
  throw std::invalid_argument("bump_sectors: unsupported sector count");
}

}  // namespace hm::core
