#include "core/brickwall.hpp"

#include <cmath>
#include <stdexcept>

#include "core/lattice_detail.hpp"

namespace hm::core {

namespace {

Arrangement build_bw(std::vector<LatticeCoord> coords, RegularityClass cls) {
  graph::Graph g =
      detail::build_lattice_graph(coords, detail::brickwall_neighbors);
  return Arrangement(ArrangementType::kBrickwall, cls, std::move(coords),
                     std::move(g));
}

std::vector<LatticeCoord> full_rows(std::size_t rows, std::size_t cols) {
  std::vector<LatticeCoord> coords;
  coords.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      coords.push_back({static_cast<int>(r), static_cast<int>(c)});
    }
  }
  return coords;
}

}  // namespace

Arrangement make_brickwall_regular(std::size_t side) {
  if (side < 1) {
    throw std::invalid_argument("make_brickwall_regular: side >= 1");
  }
  return build_bw(full_rows(side, side), RegularityClass::kRegular);
}

Arrangement make_brickwall_rect(std::size_t rows, std::size_t cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("make_brickwall_rect: rows, cols >= 1");
  }
  if (rows == cols) return make_brickwall_regular(rows);
  return build_bw(full_rows(rows, cols), RegularityClass::kSemiRegular);
}

Arrangement make_brickwall_irregular(std::size_t n) {
  if (n < 1) throw std::invalid_argument("make_brickwall_irregular: n >= 1");
  const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  std::vector<LatticeCoord> coords = full_rows(side, side);
  std::size_t extra = n - side * side;

  // Append chiplets into incomplete rows on top. Within a new row, the
  // columns that touch two chiplets of the row below are placed first
  // (even rows: 1..side-1, odd rows: 0..side-2 because of the half-offset);
  // the remaining corner column is placed last, when it also touches its row
  // neighbour. This keeps the minimum neighbour count at 2 for most n.
  std::size_t row = side;
  while (extra > 0) {
    const std::size_t take = std::min(extra, side);
    const bool odd = row % 2 == 1;
    for (std::size_t i = 0; i < take; ++i) {
      std::size_t col;
      if (odd) {
        col = (i + 1 < side) ? i : side - 1;  // 0..side-2, then side-1
      } else {
        col = (i + 1 < side) ? i + 1 : 0;  // 1..side-1, then 0
      }
      coords.push_back({static_cast<int>(row), static_cast<int>(col)});
    }
    extra -= take;
    ++row;
  }
  return build_bw(std::move(coords), RegularityClass::kIrregular);
}

Arrangement make_brickwall(std::size_t n) {
  if (n < 1) throw std::invalid_argument("make_brickwall: n >= 1");
  const auto root = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(n))));
  if (root * root == n) return make_brickwall_regular(root);
  const auto [rows, cols] = detail::best_factor_pair(n);
  if (static_cast<double>(cols) / static_cast<double>(rows) <=
      detail::kMaxSemiRegularAspect) {
    return make_brickwall_rect(rows, cols);
  }
  return make_brickwall_irregular(n);
}

}  // namespace hm::core
