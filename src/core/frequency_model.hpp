// Link-length-aware frequency model (extension of Sec. V). The paper keeps
// the D2D operating frequency a constant input because it only connects
// adjacent chiplets, whose links are short: "below 4 mm in general, for
// N >= 10 chiplets even below 2 mm" (Sec. V). This module makes that
// reasoning executable: it estimates the physical length of an adjacent-
// chiplet link from the solved chiplet shape and derates the operating
// frequency for longer (non-adjacent) links, quantifying why topologies
// with long links (e.g. Kite [15]) pay a frequency penalty.
#pragma once

#include "core/link_model.hpp"
#include "core/shape.hpp"

namespace hm::core {

/// 2.5D packaging technology (Sec. II).
enum class PackagingTech {
  kSiliconInterposer,  ///< micro-bumps; links must stay <= ~2 mm at full rate
  kOrganicSubstrate,   ///< C4 bumps; links may reach ~4 mm at full rate
};

/// Length (mm) up to which a link runs at the full data rate.
[[nodiscard]] double full_rate_reach_mm(PackagingTech tech);

/// Maximum reliable operating frequency for a D2D link of `length_mm`.
/// Piecewise model: full rate up to the technology's reach, then inversely
/// proportional to length (doubling the length halves the rate, the
/// first-order behaviour of channel loss-limited links [9]), floored at
/// 1/8 of the full rate. Throws std::invalid_argument for length <= 0.
[[nodiscard]] double max_link_frequency_hz(
    double length_mm, PackagingTech tech,
    double full_rate_hz = kDefaultFrequencyHz);

/// Estimated physical length of a link between *adjacent* chiplets. We use
/// the maximum bump-to-edge distance D_B (the quantity the shape solver
/// minimizes, Sec. IV-B): this is the length figure whose values reproduce
/// the paper's Sec. V claim exactly (e.g. 3.65 mm at N = 2, 1.63 mm at
/// N = 10 with the default parameters). The worst-case bump-to-bump wire is
/// up to 2 x D_B; use that pessimistic figure by doubling if desired.
[[nodiscard]] double adjacent_link_length_mm(const ChipletShape& shape);

/// Link bandwidth with length-dependent frequency derating applied.
[[nodiscard]] LinkEstimate estimate_link_with_length(
    const LinkModelParams& params, double length_mm, PackagingTech tech);

}  // namespace hm::core
