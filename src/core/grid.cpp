#include "core/grid.hpp"

#include <cmath>
#include <stdexcept>

#include "core/lattice_detail.hpp"

namespace hm::core {

namespace {

Arrangement build_grid(std::vector<LatticeCoord> coords, RegularityClass cls) {
  graph::Graph g = detail::build_lattice_graph(coords, detail::grid_neighbors);
  return Arrangement(ArrangementType::kGrid, cls, std::move(coords),
                     std::move(g));
}

}  // namespace

Arrangement make_grid_regular(std::size_t side) {
  if (side < 1) throw std::invalid_argument("make_grid_regular: side >= 1");
  std::vector<LatticeCoord> coords;
  coords.reserve(side * side);
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      coords.push_back({static_cast<int>(r), static_cast<int>(c)});
    }
  }
  return build_grid(std::move(coords), RegularityClass::kRegular);
}

Arrangement make_grid_rect(std::size_t rows, std::size_t cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("make_grid_rect: rows, cols >= 1");
  }
  if (rows == cols) return make_grid_regular(rows);
  std::vector<LatticeCoord> coords;
  coords.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      coords.push_back({static_cast<int>(r), static_cast<int>(c)});
    }
  }
  return build_grid(std::move(coords), RegularityClass::kSemiRegular);
}

Arrangement make_grid_irregular(std::size_t n) {
  if (n < 1) throw std::invalid_argument("make_grid_irregular: n >= 1");
  const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  std::vector<LatticeCoord> coords;
  coords.reserve(n);
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      coords.push_back({static_cast<int>(r), static_cast<int>(c)});
    }
  }
  // Append the remaining chiplets: first an incomplete extra column (rows
  // 0..side-1 at col side), then an incomplete extra row (Sec. IV-C).
  std::size_t extra = n - side * side;
  for (std::size_t r = 0; r < side && extra > 0; ++r, --extra) {
    coords.push_back({static_cast<int>(r), static_cast<int>(side)});
  }
  for (std::size_t c = 0; extra > 0; ++c, --extra) {
    coords.push_back({static_cast<int>(side), static_cast<int>(c)});
  }
  return build_grid(std::move(coords), RegularityClass::kIrregular);
}

Arrangement make_grid(std::size_t n) {
  if (n < 1) throw std::invalid_argument("make_grid: n >= 1");
  const auto root = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(n))));
  if (root * root == n) return make_grid_regular(root);
  const auto [rows, cols] = detail::best_factor_pair(n);
  if (static_cast<double>(cols) / static_cast<double>(rows) <=
      detail::kMaxSemiRegularAspect) {
    return make_grid_rect(rows, cols);
  }
  return make_grid_irregular(n);
}

}  // namespace hm::core
