#include "core/honeycomb.hpp"

#include "core/brickwall.hpp"

namespace hm::core {

Arrangement make_honeycomb(std::size_t n) {
  // Same lattice, same graph, different chiplet shape (hexagons). We reuse
  // the brickwall construction and re-tag the type; the Arrangement class
  // refuses to emit a rectangle placement for honeycombs.
  Arrangement bw = make_brickwall(n);
  graph::Graph g = bw.graph();
  std::vector<LatticeCoord> coords = bw.coords();
  return Arrangement(ArrangementType::kHoneycomb, bw.regularity(),
                     std::move(coords), std::move(g));
}

}  // namespace hm::core
