#include "core/arrangement.hpp"

#include <stdexcept>

#include "core/brickwall.hpp"
#include "core/grid.hpp"
#include "core/hexamesh.hpp"
#include "core/honeycomb.hpp"

namespace hm::core {

std::string to_string(ArrangementType t) {
  switch (t) {
    case ArrangementType::kGrid: return "grid";
    case ArrangementType::kBrickwall: return "brickwall";
    case ArrangementType::kHexaMesh: return "hexamesh";
    case ArrangementType::kHoneycomb: return "honeycomb";
  }
  return "?";
}

std::string to_string(RegularityClass c) {
  switch (c) {
    case RegularityClass::kRegular: return "regular";
    case RegularityClass::kSemiRegular: return "semi-regular";
    case RegularityClass::kIrregular: return "irregular";
  }
  return "?";
}

Arrangement::Arrangement(ArrangementType type, RegularityClass regularity,
                         std::vector<LatticeCoord> coords, graph::Graph graph)
    : type_(type),
      regularity_(regularity),
      coords_(std::move(coords)),
      graph_(std::move(graph)) {
  if (graph_.node_count() != coords_.size()) {
    throw std::invalid_argument(
        "Arrangement: graph vertex count must equal chiplet count");
  }
  if (coords_.empty()) {
    throw std::invalid_argument("Arrangement: at least one chiplet required");
  }
}

NeighborStats Arrangement::neighbor_stats() const {
  return NeighborStats{graph_.min_degree(), graph_.max_degree(),
                       graph_.avg_degree()};
}

bool Arrangement::has_rect_placement() const noexcept {
  return type_ != ArrangementType::kHoneycomb;
}

geom::ChipletPlacement Arrangement::placement(double wc, double hc) const {
  if (!has_rect_placement()) {
    throw std::logic_error(
        "Arrangement::placement: honeycomb chiplets are hexagonal; no "
        "rectangle placement exists");
  }
  if (!(wc > 0.0) || !(hc > 0.0)) {
    throw std::invalid_argument(
        "Arrangement::placement: chiplet dimensions must be positive");
  }
  std::vector<geom::Rect> rects;
  rects.reserve(coords_.size());
  for (const LatticeCoord& c : coords_) {
    double x = 0.0;
    const double y = static_cast<double>(c.a) * hc;
    switch (type_) {
      case ArrangementType::kGrid:
        x = static_cast<double>(c.b) * wc;
        break;
      case ArrangementType::kBrickwall:
        // Odd rows are offset by half a chiplet width (Fig. 4c).
        x = (static_cast<double>(c.b) + ((c.a % 2 + 2) % 2) * 0.5) * wc;
        break;
      case ArrangementType::kHexaMesh:
        // Axial (q, r) -> brickwall row r with cumulative half-offset
        // (Fig. 4d); rows shift wc/2 per ring step.
        x = (static_cast<double>(c.b) + static_cast<double>(c.a) * 0.5) * wc;
        break;
      case ArrangementType::kHoneycomb:
        break;  // unreachable (guarded above)
    }
    rects.push_back(geom::Rect{x, y, wc, hc});
  }
  return geom::ChipletPlacement(std::move(rects));
}

std::string Arrangement::name() const {
  return to_string(type_) + " (" + to_string(regularity_) +
         ", N=" + std::to_string(chiplet_count()) + ")";
}

Arrangement make_arrangement(ArrangementType type, std::size_t n) {
  // Validated once here, with one message for every family: the per-family
  // factories historically rejected degenerate sizes with family-specific
  // errors (or, for sizes near 0 reached through family helpers, none at
  // all), which callers like arrangement_explorer surfaced inconsistently.
  if (n < 1) {
    throw std::invalid_argument(
        "make_arrangement: chiplet count must be >= 1 (got " +
        std::to_string(n) + ") for " + to_string(type));
  }
  switch (type) {
    case ArrangementType::kGrid: return make_grid(n);
    case ArrangementType::kBrickwall: return make_brickwall(n);
    case ArrangementType::kHexaMesh: return make_hexamesh(n);
    case ArrangementType::kHoneycomb: return make_honeycomb(n);
  }
  throw std::invalid_argument("make_arrangement: unknown type");
}

}  // namespace hm::core
