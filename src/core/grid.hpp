// Grid (G) arrangement factories — the paper's baseline (Fig. 4a).
#pragma once

#include <cstddef>

#include "core/arrangement.hpp"

namespace hm::core {

/// Regular side x side grid (N = side^2). Requires side >= 1.
[[nodiscard]] Arrangement make_grid_regular(std::size_t side);

/// Semi-regular rows x cols grid (classified regular when rows == cols).
/// Requires rows, cols >= 1.
[[nodiscard]] Arrangement make_grid_rect(std::size_t rows, std::size_t cols);

/// Irregular grid with exactly `n` chiplets: the largest regular s x s grid
/// with s^2 <= n plus appended chiplets forming an incomplete column and, if
/// needed, an incomplete row (Sec. IV-C). Requires n >= 1.
[[nodiscard]] Arrangement make_grid_irregular(std::size_t n);

/// Auto-classified grid with `n` chiplets: regular if n is a perfect square,
/// semi-regular if a factorization with aspect ratio <= 2 exists, irregular
/// otherwise. Requires n >= 1.
[[nodiscard]] Arrangement make_grid(std::size_t n);

}  // namespace hm::core
