#include "core/proxies.hpp"

#include <cmath>
#include <stdexcept>

namespace hm::core {

namespace {

double check_n(std::size_t n) {
  if (n < 1) throw std::invalid_argument("proxy formulas require n >= 1");
  return static_cast<double>(n);
}

}  // namespace

double grid_diameter(std::size_t n) {
  const double nn = check_n(n);
  return 2.0 * std::sqrt(nn) - 2.0;
}

double brickwall_diameter(std::size_t n) {
  const double nn = check_n(n);
  const double root = std::sqrt(nn);
  return 2.0 * root - 2.0 - std::floor((root - 1.0) / 2.0);
}

double hexamesh_diameter(std::size_t n) {
  const double nn = check_n(n);
  return std::sqrt(12.0 * nn - 3.0) / 3.0 - 1.0;
}

double grid_bisection(std::size_t n) { return std::sqrt(check_n(n)); }

double brickwall_bisection(std::size_t n) {
  return 2.0 * std::sqrt(check_n(n)) - 1.0;
}

double hexamesh_bisection(std::size_t n) {
  return 2.0 / 3.0 * std::sqrt(12.0 * check_n(n) - 3.0) - 1.0;
}

double analytic_diameter(ArrangementType t, std::size_t n) {
  switch (t) {
    case ArrangementType::kGrid: return grid_diameter(n);
    case ArrangementType::kBrickwall:
    case ArrangementType::kHoneycomb: return brickwall_diameter(n);
    case ArrangementType::kHexaMesh: return hexamesh_diameter(n);
  }
  throw std::invalid_argument("analytic_diameter: unknown type");
}

double analytic_bisection(ArrangementType t, std::size_t n) {
  switch (t) {
    case ArrangementType::kGrid: return grid_bisection(n);
    case ArrangementType::kBrickwall:
    case ArrangementType::kHoneycomb: return brickwall_bisection(n);
    case ArrangementType::kHexaMesh: return hexamesh_bisection(n);
  }
  throw std::invalid_argument("analytic_bisection: unknown type");
}

double asymptotic_diameter_ratio_bw() { return 3.0 / 4.0; }

double asymptotic_diameter_ratio_hm() { return 1.0 / std::sqrt(3.0); }

double asymptotic_bisection_ratio_bw() { return 2.0; }

double asymptotic_bisection_ratio_hm() { return 4.0 / std::sqrt(3.0); }

double max_avg_neighbors(std::size_t n) {
  const double nn = check_n(n);
  return 6.0 - 12.0 / nn;
}

}  // namespace hm::core
