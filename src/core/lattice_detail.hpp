// Internal helpers shared by the arrangement generators: building the
// adjacency graph of a set of lattice coordinates from a per-cell neighbour
// rule, and choosing semi-regular factorizations. Not part of the public API.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "core/arrangement.hpp"
#include "graph/graph.hpp"

namespace hm::core::detail {

/// Returns the lattice neighbours of a cell (candidates; they may or may not
/// be occupied).
using NeighborRule = std::function<std::vector<LatticeCoord>(LatticeCoord)>;

/// Builds the adjacency graph over `coords`: an edge is added for every pair
/// of occupied cells relates by the neighbour rule. The rule must be
/// symmetric (u in rule(v) iff v in rule(u)).
[[nodiscard]] inline graph::Graph build_lattice_graph(
    const std::vector<LatticeCoord>& coords, const NeighborRule& rule) {
  std::map<std::pair<int, int>, graph::NodeId> index;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    index[{coords[i].a, coords[i].b}] = static_cast<graph::NodeId>(i);
  }
  graph::Graph g(coords.size());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    for (const LatticeCoord& nb : rule(coords[i])) {
      const auto it = index.find({nb.a, nb.b});
      if (it != index.end() && it->second > static_cast<graph::NodeId>(i)) {
        g.add_edge(static_cast<graph::NodeId>(i), it->second);
      }
    }
  }
  return g;
}

/// Best factorization n = rows * cols with rows <= cols, minimizing the
/// aspect ratio cols/rows. Always exists (1 x n in the worst case).
[[nodiscard]] inline std::pair<std::size_t, std::size_t> best_factor_pair(
    std::size_t n) {
  std::pair<std::size_t, std::size_t> best{1, n};
  for (std::size_t r = 1; r * r <= n; ++r) {
    if (n % r == 0) best = {r, n / r};
  }
  return best;
}

/// Aspect-ratio threshold below which a rows x cols factorization counts as
/// a usable semi-regular arrangement (Sec. IV-C: "semi-regular arrangements
/// make only sense if R and C are similar").
inline constexpr double kMaxSemiRegularAspect = 2.0;

/// Neighbour rule of the plain 2D grid lattice.
[[nodiscard]] inline std::vector<LatticeCoord> grid_neighbors(LatticeCoord c) {
  return {{c.a + 1, c.b}, {c.a - 1, c.b}, {c.a, c.b + 1}, {c.a, c.b - 1}};
}

/// Neighbour rule of the brickwall lattice: rows offset by half a chiplet,
/// so each cell touches 2 cells in the row above and 2 below (parity-aware),
/// plus its 2 same-row neighbours.
[[nodiscard]] inline std::vector<LatticeCoord> brickwall_neighbors(
    LatticeCoord c) {
  const int r = c.a;
  const int col = c.b;
  const bool odd = ((r % 2) + 2) % 2 == 1;
  const int lo = odd ? 0 : -1;  // column shift of the left upper/lower cell
  return {{r, col - 1},     {r, col + 1},      {r + 1, col + lo},
          {r + 1, col + lo + 1}, {r - 1, col + lo}, {r - 1, col + lo + 1}};
}

/// Neighbour rule of the HexaMesh lattice in axial coordinates stored as
/// LatticeCoord{a = r, b = q}: the six triangular-lattice directions.
[[nodiscard]] inline std::vector<LatticeCoord> hex_neighbors(LatticeCoord c) {
  const int r = c.a;
  const int q = c.b;
  return {{r, q + 1},     {r, q - 1},     {r + 1, q},
          {r - 1, q},     {r - 1, q + 1}, {r + 1, q - 1}};
}

}  // namespace hm::core::detail
