#include "core/frequency_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace hm::core {

double full_rate_reach_mm(PackagingTech tech) {
  switch (tech) {
    case PackagingTech::kSiliconInterposer:
      return 2.0;  // Sec. II: interposer links <= 2 mm [6]
    case PackagingTech::kOrganicSubstrate:
      return 4.0;  // Sec. V: adjacent-chiplet links < 4 mm in general
  }
  throw std::invalid_argument("full_rate_reach_mm: unknown technology");
}

double max_link_frequency_hz(double length_mm, PackagingTech tech,
                             double full_rate_hz) {
  if (!(length_mm > 0.0)) {
    throw std::invalid_argument(
        "max_link_frequency_hz: length must be positive");
  }
  if (!(full_rate_hz > 0.0)) {
    throw std::invalid_argument(
        "max_link_frequency_hz: full rate must be positive");
  }
  const double reach = full_rate_reach_mm(tech);
  if (length_mm <= reach) return full_rate_hz;
  return std::max(full_rate_hz / 8.0, full_rate_hz * reach / length_mm);
}

double adjacent_link_length_mm(const ChipletShape& shape) {
  return shape.bump_edge_distance;
}

LinkEstimate estimate_link_with_length(const LinkModelParams& params,
                                       double length_mm, PackagingTech tech) {
  LinkModelParams derated = params;
  derated.frequency_hz =
      max_link_frequency_hz(length_mm, tech, params.frequency_hz);
  return estimate_link(derated);
}

}  // namespace hm::core
