// D2D link bandwidth model (Sec. V, Table I):
//   N_w  = A_B / P_B^2          wires that fit into the link's bump sector
//   N_dw = N_w - N_ndw          data wires (minus handshake/clock/sideband)
//   B    = N_dw * f             link bandwidth
// The default parameters follow the paper's UCIe-based evaluation setup
// (Sec. VI-B).
#pragma once

#include <cstdint>

namespace hm::core {

/// Paper defaults (Sec. VI-B, UCIe-derived).
inline constexpr double kDefaultTotalAreaMm2 = 800.0;  ///< A_all
inline constexpr double kDefaultPowerFraction = 0.4;   ///< p_p
inline constexpr double kDefaultBumpPitchMm = 0.15;    ///< P_B (C4 bumps)
inline constexpr int kDefaultNonDataWires = 12;        ///< N_ndw
inline constexpr double kDefaultFrequencyHz = 16e9;    ///< f

/// Micro-bump pitch for silicon interposers (Sec. II: 30-60 um).
inline constexpr double kMicroBumpPitchMm = 0.045;

/// Architectural inputs of the model (Table I).
struct LinkModelParams {
  double link_area_mm2 = 1.0;             ///< A_B
  double bump_pitch_mm = kDefaultBumpPitchMm;  ///< P_B
  int non_data_wires = kDefaultNonDataWires;   ///< N_ndw
  double frequency_hz = kDefaultFrequencyHz;   ///< f

  /// Throws std::invalid_argument when out of range.
  void validate() const;
};

/// Model outputs.
struct LinkEstimate {
  std::int64_t total_wires = 0;    ///< N_w (floor of the area ratio)
  std::int64_t data_wires = 0;     ///< N_dw, clamped at 0
  double bandwidth_bps = 0.0;      ///< B = N_dw * f (bits/s)
};

/// Evaluates the model. Wire counts are floored to integers (a regular bump
/// layout cannot use fractional bumps; the paper notes a staggered layout
/// would fit slightly more).
[[nodiscard]] LinkEstimate estimate_link(const LinkModelParams& p);

}  // namespace hm::core
