// Brickwall (BW) arrangement factories (Fig. 4c): rectangular chiplets in
// rows offset by half a chiplet width, realizing the honeycomb graph without
// violating the rectangular-chiplet constraint.
#pragma once

#include <cstddef>

#include "core/arrangement.hpp"

namespace hm::core {

/// Regular side x side brickwall (N = side^2). Requires side >= 1.
[[nodiscard]] Arrangement make_brickwall_regular(std::size_t side);

/// Semi-regular rows x cols brickwall (regular when rows == cols).
[[nodiscard]] Arrangement make_brickwall_rect(std::size_t rows,
                                              std::size_t cols);

/// Irregular brickwall: largest regular s x s base plus appended chiplets in
/// incomplete rows; chiplets are appended in an order that keeps the minimum
/// neighbour count at 2 wherever possible (Sec. IV-C). Requires n >= 1.
[[nodiscard]] Arrangement make_brickwall_irregular(std::size_t n);

/// Auto-classified brickwall (same classification rule as make_grid).
[[nodiscard]] Arrangement make_brickwall(std::size_t n);

}  // namespace hm::core
