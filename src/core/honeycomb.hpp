// Honeycomb (HC) arrangement (Fig. 4b): hexagonal chiplets in a honeycomb
// pattern. The HC maximizes the average number of neighbours per chiplet
// (asymptotically 6, the planar-graph bound) but violates the
// rectangular-chiplet constraint; the paper keeps it for the theoretical
// analysis only. Its adjacency graph is identical to the brickwall's
// (Sec. IV-A), which is exactly how we construct it.
#pragma once

#include <cstddef>

#include "core/arrangement.hpp"

namespace hm::core {

/// Honeycomb with `n` hexagonal chiplets (same graph as make_brickwall(n),
/// same regularity classification). No rectangle placement is available:
/// Arrangement::placement throws for this type. Requires n >= 1.
[[nodiscard]] Arrangement make_honeycomb(std::size_t n);

}  // namespace hm::core
