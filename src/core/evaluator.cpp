#include "core/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/proxies.hpp"
#include "graph/algorithms.hpp"
#include "partition/partitioner.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"

namespace hm::core {

double link_area_for(const Arrangement& arr, double chiplet_area_mm2,
                     const EvaluationParams& params) {
  const double usable = (1.0 - params.power_fraction) * chiplet_area_mm2;
  if (params.hand_optimized_small_n && arr.chiplet_count() <= 7) {
    const std::size_t sectors = std::max<std::size_t>(
        1, arr.graph().max_degree());
    return usable / static_cast<double>(sectors);
  }
  const ShapeParams sp{chiplet_area_mm2, params.power_fraction};
  return solve_shape(arr.type() == ArrangementType::kHoneycomb
                         ? ArrangementType::kBrickwall
                         : arr.type(),
                     sp)
      .link_sector_area;
}

namespace {

/// bisection_width memoized on the graph's content digest. The partitioner
/// is deterministic (fixed seed, fixed start count), so equal graphs always
/// produce equal cuts — and search loops re-evaluate the same arrangement
/// graphs constantly (tempering replicas, warm-started sweeps), where the
/// multilevel bisection dominates evaluate_analytic. Computation happens
/// outside the lock: a racing duplicate is wasted work, never a wrong value.
std::size_t cached_bisection_width(const graph::Graph& g) {
  static std::mutex mu;
  static std::unordered_map<std::uint64_t, std::size_t> cache;

  const std::uint64_t key = noc::graph_digest(g);
  {
    std::lock_guard<std::mutex> lock(mu);
    if (const auto it = cache.find(key); it != cache.end()) {
      return it->second;
    }
  }
  const std::size_t width = partition::bisection_width(g);
  {
    std::lock_guard<std::mutex> lock(mu);
    // Crude bound on memory: a long-running multi-sweep process visits an
    // unbounded stream of candidate graphs. Dropping everything is fine —
    // this is a pure cache and refills in one evaluation wave.
    if (cache.size() >= 4096) cache.clear();
    cache.emplace(key, width);
  }
  return width;
}

void fill_analytic(const Arrangement& arr, const EvaluationParams& params,
                   EvaluationResult& r) {
  const std::size_t n = arr.chiplet_count();
  r.chiplet_count = n;
  r.regularity = arr.regularity();

  r.diameter = graph::diameter(arr.graph());
  r.avg_hop_distance = graph::average_distance(arr.graph());

  // Bisection: closed form for regular arrangements, partitioner otherwise
  // (the paper uses METIS for semi-regular/irregular cases, Sec. IV-D).
  if (arr.regularity() == RegularityClass::kRegular && n >= 2) {
    r.bisection_links = static_cast<std::size_t>(
        std::llround(analytic_bisection(arr.type(), n)));
  } else if (n >= 2) {
    r.bisection_links = cached_bisection_width(arr.graph());
  } else {
    r.bisection_links = 0;
  }

  // Link model (Sec. VI-B): A_C = A_all / N.
  r.link_count = arr.graph().edge_count();
  r.chiplet_area_mm2 = params.total_area_mm2 / static_cast<double>(n);
  r.link_area_mm2 = link_area_for(arr, r.chiplet_area_mm2, params);
  LinkModelParams lp;
  lp.link_area_mm2 = r.link_area_mm2;
  lp.bump_pitch_mm = params.bump_pitch_mm;
  lp.non_data_wires = params.non_data_wires;
  lp.frequency_hz = params.frequency_hz;
  r.per_link_bandwidth_bps = estimate_link(lp).bandwidth_bps;
  r.full_global_bandwidth_bps =
      static_cast<double>(n) *
      static_cast<double>(params.sim.endpoints_per_chiplet) *
      r.per_link_bandwidth_bps;
}

}  // namespace

EvaluationResult evaluate_analytic(const Arrangement& arr,
                                   const EvaluationParams& params) {
  EvaluationResult r;
  fill_analytic(arr, params, r);
  return r;
}

double analytic_saturation_estimate(const EvaluationResult& r,
                                    const EvaluationParams& params) {
  const double endpoints_total =
      static_cast<double>(r.chiplet_count) *
      static_cast<double>(params.sim.endpoints_per_chiplet);
  if (endpoints_total <= 0.0 || r.avg_hop_distance <= 0.0) return 0.0;
  // Uniform traffic: half of all flits cross the bisection, split evenly
  // over the two directions, each served by B one-flit/cycle channels ->
  // rate <= 4*B/E. Channel capacity: each flit occupies avg_hop_distance
  // channel-cycles of the 2*L directed channels -> rate <= 2*L/(E*h_avg).
  const double bisection_bound =
      4.0 * static_cast<double>(r.bisection_links) / endpoints_total;
  const double channel_bound = 2.0 * static_cast<double>(r.link_count) /
                               (endpoints_total * r.avg_hop_distance);
  // Measured knee / min(bound) sits at 0.68-0.88 across the stock families
  // (0.70 +- 0.02 for HexaMesh N in [19, 91]); 0.71 lands the estimate
  // within a few dyadic grid steps of the knee everywhere measured, which
  // is what keeps the surrogate gallop at <= 6 probes (test_active_set and
  // bench_perf_micro's sat.probes keys pin this empirically).
  constexpr double kRouterEfficiency = 0.71;
  return std::clamp(
      kRouterEfficiency * std::min(bisection_bound, channel_bound), 0.0, 1.0);
}

EvaluationResult evaluate(const Arrangement& arr,
                          const EvaluationParams& params,
                          const noc::TrafficSpec& traffic,
                          noc::ProbeExecutor* executor) {
  return evaluate_simulation(arr, params, evaluate_analytic(arr, params),
                             traffic, executor);
}

EvaluationResult evaluate(const Arrangement& arr,
                          const EvaluationParams& params,
                          const noc::TrafficSpec& traffic,
                          noc::ProbeExecutor* executor,
                          std::shared_ptr<const noc::TopologyContext> topology) {
  return evaluate_simulation(arr, params, evaluate_analytic(arr, params),
                             traffic, executor, std::move(topology));
}

EvaluationResult evaluate_simulation(const Arrangement& arr,
                                     const EvaluationParams& params,
                                     EvaluationResult analytic,
                                     const noc::TrafficSpec& traffic,
                                     noc::ProbeExecutor* executor) {
  // One shared topology for the latency run and every saturation probe;
  // the process-wide cache collapses repeated evaluations of the same
  // design (e.g. traffic/simulator ablations) onto one table build.
  return evaluate_simulation(arr, params, std::move(analytic), traffic,
                             executor,
                             noc::TopologyContext::acquire(arr.graph()));
}

EvaluationResult evaluate_simulation(
    const Arrangement& arr, const EvaluationParams& params,
    EvaluationResult r, const noc::TrafficSpec& traffic,
    noc::ProbeExecutor* executor,
    std::shared_ptr<const noc::TopologyContext> topology) {
  if (arr.chiplet_count() < 2) {
    throw std::invalid_argument(
        "evaluate: cycle-accurate evaluation needs >= 2 chiplets");
  }
  if (topology == nullptr) {
    throw std::invalid_argument("evaluate: null topology context");
  }
  if (topology->digest() != noc::graph_digest(arr.graph())) {
    throw std::invalid_argument(
        "evaluate: topology context built for a different graph");
  }

  // Zero-load latency (Fig. 7a): low injection rate, simulator on the
  // shared topology with its network recycled from the worker's arena.
  auto latency_run = [&] {
    noc::Simulator sim(noc::SimulationArena::local(), topology, params.sim);
    sim.set_traffic(traffic);
    const auto lat = sim.run_latency(
        params.zero_load_injection_rate, params.latency_warmup,
        params.latency_measure, params.latency_drain_limit);
    r.zero_load_latency_cycles = lat.avg_packet_latency;
    r.latency_run_drained = lat.drained;
  };

  // Saturation throughput (Fig. 7b): binary-search the knee of the
  // accepted-vs-offered curve (fresh network per probe, shared topology).
  auto saturation_run = [&] {
    noc::SaturationSearchOptions search;
    search.warmup = params.throughput_warmup;
    search.measure = params.throughput_measure;
    // Seed the search with the analytic saturation estimate so a good
    // estimate needs ~3 probes instead of ~7. A bad estimate costs extra
    // probes, never a different answer.
    search.surrogate_rate = analytic_saturation_estimate(r, params);
    const auto sat =
        noc::find_saturation(topology, params.sim, search, traffic,
                             executor);
    r.saturation_fraction = sat.accepted_flit_rate;
    r.saturation_throughput_bps =
        r.saturation_fraction * r.full_global_bandwidth_bps;
  };

  // Resilience under the fault scenario (worst case over its plan set).
  // Each plan runs on a fresh, deterministically seeded simulator, and the
  // plans run in a fixed order, so the aggregate is bit-reproducible no
  // matter how many threads drive the surrounding sweep.
  auto resilience_run = [&] {
    params.faults.validate();
    const std::vector<faults::FaultPlan> plans =
        params.faults.plans_for(arr.graph());
    double worst_rate = 0.0;
    noc::Cycle slowest_recovery = 0;
    bool all_recovered = true;
    for (const faults::FaultPlan& plan : plans) {
      noc::Simulator sim(noc::SimulationArena::local(), topology, params.sim);
      sim.set_traffic(traffic);
      const faults::ResilienceStats stats =
          sim.run_resilience(params.faults.offered_rate, plan,
                             params.faults.warmup, params.faults.measure);
      if (r.fault_plans_run == 0 || stats.degraded_rate < worst_rate) {
        worst_rate = stats.degraded_rate;
      }
      if (stats.recovered) {
        slowest_recovery = std::max(slowest_recovery, stats.recovery_cycles);
      } else {
        all_recovered = false;
      }
      r.fault_packets_lost += stats.packets_lost;
      ++r.fault_plans_run;
    }
    if (r.fault_plans_run > 0) {
      r.fault_degraded_throughput = worst_rate;
      r.fault_robust_throughput_bps =
          worst_rate * r.full_global_bandwidth_bps;
      r.fault_recovery_cycles = all_recovered ? slowest_recovery : -1;
    }
  };

  // The two measurements are independent (each owns a fresh network and a
  // deterministically seeded RNG), so they can run as one parallel batch;
  // the saturation search speculates its own probes through the same
  // executor. Results match the sequential path bit for bit either way.
  if (executor != nullptr && params.measure_latency &&
      params.measure_saturation) {
    std::vector<std::function<void()>> jobs;
    jobs.push_back(latency_run);
    jobs.push_back(saturation_run);
    if (params.faults.enabled()) jobs.push_back(resilience_run);
    executor->run_batch(jobs);
  } else {
    if (params.measure_latency) latency_run();
    if (params.measure_saturation) saturation_run();
    if (params.faults.enabled()) resilience_run();
  }
  return r;
}

}  // namespace hm::core
