// Chiplet arrangements (paper Sec. IV): Grid (G), Brickwall (BW),
// HexaMesh (HM) and the theory-only Honeycomb (HC), each in regular,
// semi-regular (G/BW only) and irregular variants (Sec. IV-C).
//
// An Arrangement couples
//   * lattice coordinates per chiplet,
//   * the combinatorial adjacency graph (vertices = chiplets, edges = pairs
//     sharing a boundary edge; Sec. III-C), and
//   * a generator for the physical rectangle placement given chiplet
//     dimensions (Sec. IV-B).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/placement.hpp"
#include "graph/graph.hpp"

namespace hm::core {

/// The arrangement families discussed in the paper (Fig. 4).
enum class ArrangementType {
  kGrid,       ///< 2D grid, the paper's baseline
  kBrickwall,  ///< offset rows of rectangles (same graph family as honeycomb)
  kHexaMesh,   ///< rings around a central chiplet (the paper's contribution)
  kHoneycomb,  ///< hexagonal chiplets; violates the rectangular constraint
};

/// Regularity classes of Sec. IV-C.
enum class RegularityClass {
  kRegular,      ///< square chiplet count (G/BW) or N = 1+3r(r+1) (HM)
  kSemiRegular,  ///< R x C with R != C but bounded aspect ratio (G/BW)
  kIrregular,    ///< closest smaller regular arrangement plus appended chiplets
};

/// Short names, e.g. "grid", "hexamesh" / "regular", "irregular".
[[nodiscard]] std::string to_string(ArrangementType t);
[[nodiscard]] std::string to_string(RegularityClass c);

/// Integer lattice coordinate of one chiplet: (row, col) for grid/brickwall,
/// axial hex coordinates (q, r) for HexaMesh.
struct LatticeCoord {
  int a = 0;
  int b = 0;
  friend bool operator==(const LatticeCoord&, const LatticeCoord&) = default;
};

/// Aggregate degree statistics (the "neighbours per chiplet" numbers
/// annotated in Fig. 4).
struct NeighborStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double avg = 0.0;
};

/// An immutable arrangement of N identical chiplets.
class Arrangement {
 public:
  /// Builds an arrangement from its lattice coordinates and adjacency graph.
  /// Intended to be called by the factory functions in grid.hpp /
  /// brickwall.hpp / hexamesh.hpp / honeycomb.hpp; exposed publicly so users
  /// can analyze custom arrangements. The graph must have exactly
  /// coords.size() vertices.
  Arrangement(ArrangementType type, RegularityClass regularity,
              std::vector<LatticeCoord> coords, graph::Graph graph);

  [[nodiscard]] ArrangementType type() const noexcept { return type_; }
  [[nodiscard]] RegularityClass regularity() const noexcept {
    return regularity_;
  }
  [[nodiscard]] std::size_t chiplet_count() const noexcept {
    return coords_.size();
  }
  [[nodiscard]] const std::vector<LatticeCoord>& coords() const noexcept {
    return coords_;
  }

  /// Adjacency graph (Sec. III-C): one vertex per chiplet, one edge per
  /// D2D-connectable pair.
  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }

  /// Min/max/average neighbours per chiplet (Fig. 4 annotations).
  [[nodiscard]] NeighborStats neighbor_stats() const;

  /// True iff a rectangle placement can be generated (false only for the
  /// honeycomb, whose chiplets are hexagonal).
  [[nodiscard]] bool has_rect_placement() const noexcept;

  /// Physical placement for chiplets of size `wc` x `hc` mm: grid rows are
  /// aligned, brickwall/HexaMesh rows are offset by wc/2 (Fig. 4). Throws
  /// std::logic_error for the honeycomb.
  [[nodiscard]] geom::ChipletPlacement placement(double wc, double hc) const;

  /// e.g. "hexamesh (irregular, N=42)".
  [[nodiscard]] std::string name() const;

 private:
  ArrangementType type_;
  RegularityClass regularity_;
  std::vector<LatticeCoord> coords_;
  graph::Graph graph_;
};

/// Factory dispatching on type with automatic regularity classification
/// (see make_grid / make_brickwall / make_hexamesh / make_honeycomb).
/// Degenerate sizes are validated here, once for every family: n == 0
/// throws std::invalid_argument with a uniform, family-tagged message.
[[nodiscard]] Arrangement make_arrangement(ArrangementType type,
                                           std::size_t n);

}  // namespace hm::core
