// Minimal undirected-graph library used to represent chiplet arrangements
// (paper Sec. III-C: vertices = chiplets, edges = D2D links between chiplets
// that share a boundary edge).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace hm::graph {

/// Vertex identifier. Vertices are dense integers 0..node_count()-1.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected simple graph (no self-loops, no parallel edges) with a
/// dense vertex numbering. Adjacency lists are kept sorted so that
/// neighbour iteration is deterministic and `has_edge` is O(log d).
class Graph {
 public:
  /// Creates a graph with `n` isolated vertices.
  explicit Graph(std::size_t n = 0);

  /// Appends a new isolated vertex and returns its id.
  NodeId add_node();

  /// Adds the undirected edge {a, b}.
  /// Self-loops and duplicate edges are rejected with std::invalid_argument;
  /// out-of-range endpoints with std::out_of_range.
  void add_edge(NodeId a, NodeId b);

  /// Removes the undirected edge {a, b}. A missing edge is rejected with
  /// std::invalid_argument; out-of-range endpoints with std::out_of_range.
  void remove_edge(NodeId a, NodeId b);

  /// Number of vertices.
  [[nodiscard]] std::size_t node_count() const noexcept { return adj_.size(); }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Sorted neighbours of `v`.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const;

  /// True iff the undirected edge {a, b} exists.
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;

  /// Degree (number of neighbours) of `v`.
  [[nodiscard]] std::size_t degree(NodeId v) const;

  /// Smallest vertex degree; 0 for the empty graph.
  [[nodiscard]] std::size_t min_degree() const noexcept;

  /// Largest vertex degree; 0 for the empty graph.
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// Average vertex degree 2e/v; 0 for the empty graph.
  [[nodiscard]] double avg_degree() const noexcept;

  /// All undirected edges as (a, b) pairs with a < b, lexicographically sorted.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Human-readable single-line summary, e.g. "Graph(v=9, e=12)".
  [[nodiscard]] std::string to_string() const;

 private:
  void check_node(NodeId v) const;

  std::vector<std::vector<NodeId>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace hm::graph
