#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace hm::graph {

std::vector<int> bfs_distances(const Graph& g, NodeId src) {
  if (src >= g.node_count()) {
    throw std::out_of_range("bfs_distances: source out of range");
  }
  std::vector<int> dist(g.node_count(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

int eccentricity(const Graph& g, NodeId src) {
  const auto dist = bfs_distances(g, src);
  int ecc = 0;
  for (int d : dist) {
    if (d == kUnreachable) {
      throw std::invalid_argument("eccentricity: graph is disconnected");
    }
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int diameter(const Graph& g) {
  if (g.node_count() <= 1) return 0;
  int diam = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    diam = std::max(diam, eccentricity(g, v));
  }
  return diam;
}

double average_distance(const Graph& g) {
  const std::size_t n = g.node_count();
  if (n <= 1) return 0.0;
  long long total = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (int d : bfs_distances(g, v)) {
      if (d == kUnreachable) {
        throw std::invalid_argument("average_distance: graph is disconnected");
      }
      total += d;
    }
  }
  return static_cast<double>(total) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

bool is_connected(const Graph& g) {
  if (g.node_count() <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d == kUnreachable; });
}

std::vector<std::pair<NodeId, NodeId>> bridges(const Graph& g) {
  const std::size_t n = g.node_count();
  std::vector<int> disc(n, -1);  // DFS discovery time; -1 = unvisited
  std::vector<int> low(n, 0);    // lowest discovery time reachable
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<std::pair<NodeId, NodeId>> out;
  int timer = 0;

  // Iterative DFS (explicit stack of (vertex, next-neighbour index));
  // the graph is simple, so skipping exactly the parent vertex is safe.
  std::vector<std::pair<NodeId, std::size_t>> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (disc[start] != -1) continue;
    disc[start] = low[start] = timer++;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      const NodeId v = stack.back().first;
      const auto nbrs = g.neighbors(v);
      if (stack.back().second < nbrs.size()) {
        const NodeId w = nbrs[stack.back().second++];
        if (w == parent[v]) continue;
        if (disc[w] == -1) {
          parent[w] = v;
          disc[w] = low[w] = timer++;
          stack.emplace_back(w, 0);
        } else {
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        stack.pop_back();
        if (!stack.empty()) {
          const NodeId p = stack.back().first;
          low[p] = std::min(low[p], low[v]);
          // No back edge from v's subtree climbs above p: {p, v} is the
          // subtree's only link to the rest of the component.
          if (low[v] > disc[p]) {
            out.emplace_back(std::min(p, v), std::max(p, v));
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool satisfies_planar_bound(const Graph& g) {
  const std::size_t v = g.node_count();
  if (v < 3) return true;
  return g.edge_count() <= 3 * v - 6;
}

double planar_avg_degree_bound(std::size_t v) {
  if (v < 3) {
    throw std::invalid_argument("planar_avg_degree_bound requires v >= 3");
  }
  return 6.0 - 12.0 / static_cast<double>(v);
}

std::vector<std::vector<int>> all_pairs_distances(const Graph& g) {
  std::vector<std::vector<int>> dist;
  dist.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    dist.push_back(bfs_distances(g, v));
  }
  return dist;
}

std::vector<std::size_t> distance_histogram(const Graph& g) {
  std::vector<std::size_t> hist;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (NodeId u = v; u < g.node_count(); ++u) {
      const int d = dist[u];
      if (d == kUnreachable) continue;
      if (hist.size() <= static_cast<std::size_t>(d)) {
        hist.resize(static_cast<std::size_t>(d) + 1, 0);
      }
      ++hist[static_cast<std::size_t>(d)];
    }
  }
  return hist;
}

}  // namespace hm::graph
