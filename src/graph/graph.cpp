#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace hm::graph {

Graph::Graph(std::size_t n) : adj_(n) {}

NodeId Graph::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

void Graph::check_node(NodeId v) const {
  if (v >= adj_.size()) {
    throw std::out_of_range("Graph: node id " + std::to_string(v) +
                            " out of range (node_count=" +
                            std::to_string(adj_.size()) + ")");
  }
}

void Graph::add_edge(NodeId a, NodeId b) {
  check_node(a);
  check_node(b);
  if (a == b) {
    throw std::invalid_argument("Graph: self-loops are not allowed");
  }
  if (has_edge(a, b)) {
    throw std::invalid_argument("Graph: duplicate edge {" + std::to_string(a) +
                                ", " + std::to_string(b) + "}");
  }
  auto insert_sorted = [](std::vector<NodeId>& list, NodeId v) {
    list.insert(std::lower_bound(list.begin(), list.end(), v), v);
  };
  insert_sorted(adj_[a], b);
  insert_sorted(adj_[b], a);
  ++edge_count_;
}

void Graph::remove_edge(NodeId a, NodeId b) {
  check_node(a);
  check_node(b);
  if (!has_edge(a, b)) {
    throw std::invalid_argument("Graph: cannot remove missing edge {" +
                                std::to_string(a) + ", " + std::to_string(b) +
                                "}");
  }
  auto erase_sorted = [](std::vector<NodeId>& list, NodeId v) {
    list.erase(std::lower_bound(list.begin(), list.end(), v));
  };
  erase_sorted(adj_[a], b);
  erase_sorted(adj_[b], a);
  --edge_count_;
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  check_node(v);
  return adj_[v];
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  const auto& list = adj_[a];
  return std::binary_search(list.begin(), list.end(), b);
}

std::size_t Graph::degree(NodeId v) const {
  check_node(v);
  return adj_[v].size();
}

std::size_t Graph::min_degree() const noexcept {
  std::size_t best = adj_.empty() ? 0 : adj_[0].size();
  for (const auto& list : adj_) best = std::min(best, list.size());
  return best;
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t best = 0;
  for (const auto& list : adj_) best = std::max(best, list.size());
  return best;
}

double Graph::avg_degree() const noexcept {
  if (adj_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edge_count_) /
         static_cast<double>(adj_.size());
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count_);
  for (NodeId a = 0; a < adj_.size(); ++a) {
    for (NodeId b : adj_[a]) {
      if (a < b) out.emplace_back(a, b);
    }
  }
  return out;
}

std::string Graph::to_string() const {
  return "Graph(v=" + std::to_string(node_count()) +
         ", e=" + std::to_string(edge_count()) + ")";
}

}  // namespace hm::graph
