// Graph algorithms used by the arrangement analysis (paper Sec. III-C and
// IV-D): BFS distances, eccentricity, diameter (latency proxy), average
// shortest-path distance (zero-load-latency predictor), connectivity, and the
// planar average-degree bound of Sec. IV-A.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace hm::graph {

/// Distance value for unreachable vertices.
inline constexpr int kUnreachable = -1;

/// Breadth-first-search distances (in hops) from `src` to every vertex.
/// Unreachable vertices get kUnreachable.
[[nodiscard]] std::vector<int> bfs_distances(const Graph& g, NodeId src);

/// Largest finite BFS distance from `src` (the vertex eccentricity).
/// Throws std::invalid_argument if some vertex is unreachable from `src`.
[[nodiscard]] int eccentricity(const Graph& g, NodeId src);

/// Network diameter: the maximum over all vertex pairs of the shortest-path
/// hop distance (the paper's latency proxy). Throws std::invalid_argument if
/// the graph is disconnected; returns 0 for graphs with <= 1 vertex.
[[nodiscard]] int diameter(const Graph& g);

/// Mean shortest-path distance over all ordered vertex pairs (u != v).
/// This predicts zero-load latency up to the per-hop cost. Throws if
/// disconnected; returns 0 for graphs with <= 1 vertex.
[[nodiscard]] double average_distance(const Graph& g);

/// True iff every vertex is reachable from every other (or v <= 1).
[[nodiscard]] bool is_connected(const Graph& g);

/// All bridges — edges whose removal disconnects their component — as
/// (a, b) pairs with a < b, lexicographically sorted. One DFS low-link
/// pass (Tarjan); works per component on disconnected graphs. Used by the
/// arrangement search to enumerate the legally removable D2D links in
/// O(v + e) instead of one connectivity check per edge.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> bridges(const Graph& g);

/// True iff the graph satisfies the planar edge bound e <= 3v - 6 for v >= 3
/// (vacuously true for v < 3). All shared-edge chiplet-adjacency graphs are
/// planar, so this must hold for every arrangement (paper Sec. IV-A).
[[nodiscard]] bool satisfies_planar_bound(const Graph& g);

/// Upper bound on the average degree of a planar graph: 6 - 12/v (v >= 3).
[[nodiscard]] double planar_avg_degree_bound(std::size_t v);

/// Full all-pairs shortest-path distance matrix (hops); dist[u][v] ==
/// kUnreachable when v is not reachable from u.
[[nodiscard]] std::vector<std::vector<int>> all_pairs_distances(const Graph& g);

/// Histogram of shortest-path distances over unordered reachable pairs:
/// result[d] = number of pairs at distance d (result[0] == node_count).
[[nodiscard]] std::vector<std::size_t> distance_histogram(const Graph& g);

}  // namespace hm::graph
