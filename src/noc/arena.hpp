// Per-worker simulation arenas.
//
// A saturation search runs ~13 fresh simulator probes per design, and the
// sweep engine multiplies that across its (arrangement x params x traffic)
// grid. Before this layer, every probe constructed a brand-new Network —
// thousands of small vector allocations per probe — so a parallel sweep's
// workers spent their time contending on the global heap instead of
// simulating. A SimulationArena is the fix from the classic cycle-accurate-
// simulator playbook: keep concurrent actors off each other's resources.
// Each ThreadPool worker owns one arena (SimulationArena::local() is
// thread_local, so the caller thread of a sequential run gets one too);
// the arena caches a few fully-wired Networks keyed by (TopologyContext,
// structural SimConfig) and hands them out through RAII leases after a
// cheap in-place reset() — rings rewound, VC/credit state and statistics
// cleared, zero allocator traffic and zero cross-thread sharing.
//
// Correctness contract, pinned by test_arena: a probe on a reset arena
// network is bit-identical to the same probe on a fresh Network. The RNG
// seed is deliberately not part of the reuse key — the Simulator re-seeds
// the leased network's per-router RNG streams via Network::seed_rngs, so
// no seed-dependent state survives a lease — and consecutive probes of a
// sweep job therefore hit the arena even when per-job/per-probe seeds
// differ.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "noc/config.hpp"
#include "noc/network.hpp"
#include "noc/topology.hpp"

namespace hm::noc {

class SimulationArena {
 public:
  /// Lifetime counters (per arena, i.e. per worker thread).
  ///
  /// Deprecated for observability use: the same events are published,
  /// summed across all arenas, as the `arena.*` counters in
  /// telemetry::snapshot() (telemetry/telemetry.hpp). stats() stays for
  /// the per-arena assertions in test_arena.
  struct Stats {
    std::uint64_t networks_built = 0;   ///< cache misses: full construction
    std::uint64_t networks_reused = 0;  ///< cache hits: reset() only
    /// Leases served with a one-off network because every matching slot was
    /// already checked out (nested probes on one thread) — never cached.
    std::uint64_t oneoff_networks = 0;
  };

  /// RAII handle on an arena network. While a lease is alive its entry is
  /// checked out and cannot be handed to another lease; destruction returns
  /// it. A lease may instead own its network outright (the one-off fallback
  /// and the plain owning constructors of Simulator). A lease must not
  /// outlive the arena that issued it (leases live inside Simulators, which
  /// live inside probe scopes on the arena's own thread).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      release();
      entry_ = other.entry_;
      net_ = other.net_;
      owned_ = std::move(other.owned_);
      other.entry_ = nullptr;
      other.net_ = nullptr;
      return *this;
    }
    ~Lease() { release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] Network& network() const noexcept { return *net_; }
    [[nodiscard]] bool valid() const noexcept { return net_ != nullptr; }
    /// True when the network came from (and returns to) an arena slot.
    [[nodiscard]] bool arena_backed() const noexcept {
      return entry_ != nullptr;
    }

   private:
    friend class SimulationArena;
    struct Entry;
    explicit Lease(Entry* entry);
    explicit Lease(std::unique_ptr<Network> owned)
        : net_(owned.get()), owned_(std::move(owned)) {}

    void release() noexcept;

    Entry* entry_ = nullptr;
    Network* net_ = nullptr;
    std::unique_ptr<Network> owned_;
  };

  /// `capacity` caches that many networks per arena. A sweep worker
  /// alternates between at most a couple of designs at a time (the current
  /// job's graph plus perhaps the previous job's), so a small LRU suffices;
  /// anything beyond it rebuilds on the next lease.
  explicit SimulationArena(std::size_t capacity = 4);
  ~SimulationArena();  // out-of-line: Entry is defined in arena.cpp

  SimulationArena(const SimulationArena&) = delete;
  SimulationArena& operator=(const SimulationArena&) = delete;

  /// Returns a lease on a network for (topo, cfg): a reset() cached network
  /// when one matches, a freshly built (and cached, evicting the least-
  /// recently-used idle slot) one otherwise. When every slot is checked
  /// out, a one-off network owned by the lease itself.
  [[nodiscard]] Lease lease(std::shared_ptr<const TopologyContext> topo,
                            const SimConfig& cfg);

  /// A lease that owns a fresh network outright, bypassing every cache.
  /// This is what the non-arena Simulator constructors use.
  [[nodiscard]] static Lease owned(std::shared_ptr<const TopologyContext> topo,
                                   const SimConfig& cfg);

  /// The calling thread's arena. Each ThreadPool worker (and the caller of
  /// a sequential run) gets its own instance, so arena access never locks.
  /// Lifetime: the instance lives until the thread exits; pool workers
  /// clear() theirs on shutdown, and a long-lived thread that is done
  /// simulating can call local().clear() to release the cached networks
  /// (and the TopologyContexts they pin) early.
  [[nodiscard]] static SimulationArena& local();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Number of networks currently cached (checked out or idle).
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  /// Drops every idle cached network; checked-out entries are kept (their
  /// leases still point at them) and become evictable once returned.
  void clear();

 private:
  using Entry = Lease::Entry;

  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< stable Entry addresses
  Stats stats_;
};

}  // namespace hm::noc
