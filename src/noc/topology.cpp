#include "noc/topology.hpp"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/stable_hash.hpp"

namespace hm::noc {

namespace {

std::atomic<std::uint64_t> g_context_builds{0};
std::atomic<std::uint64_t> g_cache_hits{0};

/// Index of `u` within the sorted neighbour list of `v` (v's port toward u).
std::uint8_t port_of(const graph::Graph& g, graph::NodeId v, graph::NodeId u) {
  const auto nbrs = g.neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
  if (it == nbrs.end() || *it != u) {
    throw std::logic_error("TopologyContext: port_of for non-neighbour");
  }
  return static_cast<std::uint8_t>(it - nbrs.begin());
}

bool same_graph(const graph::Graph& a, const graph::Graph& b) {
  return a.node_count() == b.node_count() &&
         a.edge_count() == b.edge_count() && a.edges() == b.edges();
}

/// Digest-keyed intern table. Weak references: a context lives exactly as
/// long as some Network/Simulator/sweep job holds it. The rare digest
/// collision falls through to a structural comparison. Dead entries (the
/// digest never re-acquired — one-shot designs in a long sweep) are swept
/// by a periodic full prune so the map stays proportional to the number of
/// *live* contexts, not the number of graphs ever seen.
struct ContextCache {
  std::mutex mu;
  std::unordered_map<std::uint64_t,
                     std::vector<std::weak_ptr<const TopologyContext>>>
      map;
  std::uint64_t acquires_since_prune = 0;
};

ContextCache& cache() {
  static ContextCache* c = new ContextCache();  // leaked: outlives statics
  return *c;
}

/// Drops expired slots map-wide every 64 acquires (amortized O(1) per
/// acquire). Called with the cache mutex held.
void maybe_prune(ContextCache& c) {
  if (++c.acquires_since_prune < 64) return;
  c.acquires_since_prune = 0;
  // HM_LINT allow(unordered-iter): pure eviction of expired weak slots —
  // the walk order mutates nothing observable (no export/hash/trace reads
  // this map; lookups go through find())
  for (auto it = c.map.begin(); it != c.map.end();) {
    std::erase_if(it->second, [](const auto& w) { return w.expired(); });
    it = it->second.empty() ? c.map.erase(it) : std::next(it);
  }
}

}  // namespace

std::uint64_t graph_digest(const graph::Graph& g) {
  util::StableHash h;
  h.mix(g.node_count());
  const auto edges = g.edges();  // sorted (a < b, lexicographic)
  h.mix(edges.size());
  for (const auto& [a, b] : edges) h.mix(a).mix(b);
  return h.value();
}

std::uint64_t TopologyContext::lifetime_builds() noexcept {
  return g_context_builds.load(std::memory_order_relaxed);
}

std::uint64_t TopologyContext::cache_hits() noexcept {
  return g_cache_hits.load(std::memory_order_relaxed);
}

TopologyContext::TopologyContext(const graph::Graph& g)
    : graph_(g), digest_(graph_digest(g)), tables_([&] {
        telemetry::Span span("topo.build_full");
        return RoutingTables(g);
      }()) {
  static telemetry::Counter full_builds("topo.full_builds");
  full_builds.add();
  g_context_builds.fetch_add(1, std::memory_order_relaxed);
  build_links();
}

TopologyContext::TopologyContext(const graph::Graph& g,
                                 const TopologyContext& prev,
                                 const GraphEdit& edit)
    : graph_(g), digest_(graph_digest(g)), tables_([&] {
        telemetry::Span span("topo.build_incremental");
        return RoutingTables(g, prev.tables_, edit);
      }()) {
  static telemetry::Counter incr_builds("topo.incremental_builds");
  incr_builds.add();
  g_context_builds.fetch_add(1, std::memory_order_relaxed);
  build_links();
}

void TopologyContext::build_links() {
  links_.clear();
  links_.reserve(2 * graph_.edge_count());
  for (const auto& [a, b] : graph_.edges()) {
    const std::uint8_t port_ab = port_of(graph_, a, b);
    const std::uint8_t port_ba = port_of(graph_, b, a);
    links_.push_back(DirectedLink{a, b, port_ab, port_ba});
    links_.push_back(DirectedLink{b, a, port_ba, port_ab});
  }
}

namespace {

/// Shared intern protocol of acquire() and rebuild_from(): return a live
/// context for `g` if one exists, otherwise build one via `build` (outside
/// the lock, so distinct graphs build in parallel across sweep/search
/// workers) and register it. Two threads racing on the *same* graph may
/// both build — harmless (contexts built either way are value-identical;
/// the incremental-vs-full equivalence tests pin this for the delta path);
/// the loser's copy is discarded and every later acquire sees one shared
/// instance. Plain shared_ptr<>(new ...) rather than make_shared so the
/// bulky object storage is freed as soon as the last strong reference
/// drops, even while a weak cache slot lingers until the next prune.
template <typename Build>
std::shared_ptr<const TopologyContext> intern_or_build(const graph::Graph& g,
                                                       Build&& build) {
  const std::uint64_t digest = graph_digest(g);
  ContextCache& c = cache();

  // Looks up a live context for `g`, pruning expired slots of this digest
  // in passing. Requires the cache mutex.
  const auto lookup = [&]() -> std::shared_ptr<const TopologyContext> {
    const auto it = c.map.find(digest);
    if (it == c.map.end()) return nullptr;
    std::erase_if(it->second, [](const auto& w) { return w.expired(); });
    for (const auto& weak : it->second) {
      if (auto ctx = weak.lock(); ctx && same_graph(ctx->graph(), g)) {
        return ctx;
      }
    }
    if (it->second.empty()) c.map.erase(it);
    return nullptr;
  };

  static telemetry::Counter intern_hits("topo.intern_hits");
  {
    const std::lock_guard<std::mutex> lock(c.mu);
    maybe_prune(c);
    if (auto ctx = lookup()) {
      g_cache_hits.fetch_add(1, std::memory_order_relaxed);
      intern_hits.add();
      return ctx;
    }
  }

  std::shared_ptr<const TopologyContext> built(build());
  const std::lock_guard<std::mutex> lock(c.mu);
  if (auto ctx = lookup()) {
    g_cache_hits.fetch_add(1, std::memory_order_relaxed);
    intern_hits.add();
    return ctx;  // a racer registered first; adopt the shared instance
  }
  c.map[digest].push_back(built);
  return built;
}

}  // namespace

std::shared_ptr<const TopologyContext> TopologyContext::acquire(
    const graph::Graph& g) {
  return intern_or_build(g, [&g] { return new TopologyContext(g); });
}

std::shared_ptr<const TopologyContext> TopologyContext::rebuild_from(
    const std::shared_ptr<const TopologyContext>& prev, const GraphEdit& edit) {
  if (prev == nullptr) {
    throw std::invalid_argument("TopologyContext::rebuild_from: null prev");
  }
  if (edit.empty()) return prev;
  const graph::Graph g = apply_edit(prev->graph(), edit);
  // Keyed by the same stable digest as acquire(): if a from-scratch build
  // of the edited graph is already live, adopt it; if this delta build
  // registers first, later acquire() calls adopt it instead.
  return intern_or_build(
      g, [&] { return new TopologyContext(g, *prev, edit); });
}

}  // namespace hm::noc
