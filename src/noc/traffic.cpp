#include "noc/traffic.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace hm::noc {

void TrafficSpec::validate(std::size_t num_endpoints) const {
  if (!(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0)) {
    throw std::invalid_argument(
        "TrafficSpec: hotspot_fraction must be in [0, 1]");
  }
  if (num_endpoints > 0) {
    for (const std::uint16_t h : hotspots) {
      if (h >= num_endpoints) {
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "TrafficSpec: hotspot endpoint id %u out of range for "
                      "%zu endpoints",
                      static_cast<unsigned>(h), num_endpoints);
        throw std::invalid_argument(msg);
      }
    }
  }
}

std::string TrafficSpec::describe() const {
  switch (pattern) {
    case TrafficPattern::kHotspot: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "hotspot(f=%g,n=%zu)", hotspot_fraction,
                    hotspots.empty() ? std::size_t{1} : hotspots.size());
      return buf;
    }
    case TrafficPattern::kPermutation:
      return "permutation(seed=" + std::to_string(permutation_seed) + ")";
    default:
      return to_string(pattern);
  }
}

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform: return "uniform";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kBitComplement: return "bit-complement";
    case TrafficPattern::kPermutation: return "permutation";
  }
  return "?";
}

UniformRandomTraffic::UniformRandomTraffic(std::size_t num_endpoints,
                                           double flit_rate,
                                           int packet_length)
    : num_endpoints_(num_endpoints),
      flit_rate_(flit_rate),
      packet_length_(packet_length),
      packet_rate_(flit_rate / packet_length) {
  if (num_endpoints < 2) {
    throw std::invalid_argument(
        "UniformRandomTraffic: need >= 2 endpoints for non-self traffic");
  }
  if (flit_rate < 0.0 || flit_rate > 1.0) {
    throw std::invalid_argument(
        "UniformRandomTraffic: flit_rate must be in [0, 1]");
  }
  if (packet_length < 1) {
    throw std::invalid_argument(
        "UniformRandomTraffic: packet_length must be >= 1");
  }
}

std::optional<Packet> UniformRandomTraffic::maybe_generate(std::uint16_t src,
                                                           Cycle now,
                                                           Rng& rng) {
  if (!rng.bernoulli(packet_rate_)) return std::nullopt;
  // Uniform destination among the other endpoints.
  auto dst = static_cast<std::uint16_t>(rng.uniform_int(num_endpoints_ - 1));
  if (dst >= src) ++dst;
  ++generated_;
  Packet p;  // id is assigned by the PacketTable at source-queue admission
  p.src_endpoint = src;
  p.dst_endpoint = dst;
  p.length = static_cast<std::uint16_t>(packet_length_);
  p.gen_time = now;
  return p;
}

SyntheticTraffic::SyntheticTraffic(TrafficSpec spec,
                                   std::size_t num_endpoints,
                                   double flit_rate, int packet_length)
    : spec_(std::move(spec)),
      num_endpoints_(num_endpoints),
      packet_rate_(flit_rate / packet_length),
      packet_length_(packet_length) {
  if (num_endpoints < 2) {
    throw std::invalid_argument("SyntheticTraffic: need >= 2 endpoints");
  }
  if (flit_rate < 0.0 || flit_rate > 1.0) {
    throw std::invalid_argument(
        "SyntheticTraffic: flit_rate must be in [0, 1]");
  }
  if (packet_length < 1) {
    throw std::invalid_argument(
        "SyntheticTraffic: packet_length must be >= 1");
  }
  spec_.validate(num_endpoints_);
  if (spec_.pattern == TrafficPattern::kHotspot && spec_.hotspots.empty()) {
    spec_.hotspots.push_back(0);
  }
  if (spec_.pattern == TrafficPattern::kPermutation) {
    permutation_.resize(num_endpoints_);
    std::iota(permutation_.begin(), permutation_.end(), 0);
    // Fisher-Yates with the library RNG so the permutation is platform-
    // independent and fully determined by permutation_seed.
    Rng rng(spec_.permutation_seed);
    for (std::size_t i = num_endpoints_ - 1; i > 0; --i) {
      const std::size_t j = rng.uniform_int(i + 1);
      std::swap(permutation_[i], permutation_[j]);
    }
  }
}

std::uint16_t SyntheticTraffic::permutation_target(std::uint16_t src) const {
  if (spec_.pattern == TrafficPattern::kPermutation) {
    return permutation_[src];
  }
  if (spec_.pattern == TrafficPattern::kBitComplement) {
    return static_cast<std::uint16_t>(num_endpoints_ - 1 - src);
  }
  throw std::logic_error(
      "permutation_target: pattern has no fixed destination");
}

std::optional<Packet> SyntheticTraffic::maybe_generate(std::uint16_t src,
                                                       Cycle now, Rng& rng) {
  if (!rng.bernoulli(packet_rate_)) return std::nullopt;

  std::uint16_t dst = src;
  switch (spec_.pattern) {
    case TrafficPattern::kUniform: {
      dst = static_cast<std::uint16_t>(rng.uniform_int(num_endpoints_ - 1));
      if (dst >= src) ++dst;
      break;
    }
    case TrafficPattern::kHotspot: {
      if (rng.bernoulli(spec_.hotspot_fraction)) {
        dst = spec_.hotspots[rng.uniform_int(spec_.hotspots.size())];
      } else {
        dst = static_cast<std::uint16_t>(rng.uniform_int(num_endpoints_ - 1));
        if (dst >= src) ++dst;
      }
      break;
    }
    case TrafficPattern::kBitComplement:
    case TrafficPattern::kPermutation:
      dst = permutation_target(src);
      break;
  }
  if (dst == src) return std::nullopt;  // self-traffic carries no ICI load

  ++generated_;
  Packet p;  // id is assigned by the PacketTable at source-queue admission
  p.src_endpoint = src;
  p.dst_endpoint = dst;
  p.length = static_cast<std::uint16_t>(packet_length_);
  p.gen_time = now;
  return p;
}

}  // namespace hm::noc
