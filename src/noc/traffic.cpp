#include "noc/traffic.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace hm::noc {

void TrafficSpec::validate(std::size_t num_endpoints) const {
  if (!(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0)) {
    throw std::invalid_argument(
        "TrafficSpec: hotspot_fraction must be in [0, 1]");
  }
  if (num_endpoints > 0) {
    for (const std::uint16_t h : hotspots) {
      if (h >= num_endpoints) {
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "TrafficSpec: hotspot endpoint id %u out of range for "
                      "%zu endpoints",
                      static_cast<unsigned>(h), num_endpoints);
        throw std::invalid_argument(msg);
      }
    }
  }
}

std::string TrafficSpec::describe() const {
  switch (pattern) {
    case TrafficPattern::kHotspot: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "hotspot(f=%g,n=%zu)", hotspot_fraction,
                    hotspots.empty() ? std::size_t{1} : hotspots.size());
      return buf;
    }
    case TrafficPattern::kPermutation:
      return "permutation(seed=" + std::to_string(permutation_seed) + ")";
    default:
      return to_string(pattern);
  }
}

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform: return "uniform";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kBitComplement: return "bit-complement";
    case TrafficPattern::kPermutation: return "permutation";
  }
  return "?";
}

UniformRandomTraffic::UniformRandomTraffic(std::size_t num_endpoints,
                                           double flit_rate,
                                           int packet_length)
    : num_endpoints_(num_endpoints),
      flit_rate_(flit_rate),
      packet_length_(packet_length),
      packet_rate_(flit_rate / packet_length) {
  if (num_endpoints < 2) {
    throw std::invalid_argument(
        "UniformRandomTraffic: need >= 2 endpoints for non-self traffic");
  }
  if (flit_rate < 0.0 || flit_rate > 1.0) {
    throw std::invalid_argument(
        "UniformRandomTraffic: flit_rate must be in [0, 1]");
  }
  if (packet_length < 1) {
    throw std::invalid_argument(
        "UniformRandomTraffic: packet_length must be >= 1");
  }
}

std::optional<Packet> UniformRandomTraffic::maybe_generate(std::uint16_t src,
                                                           Cycle now,
                                                           Rng& rng) {
  if (!rng.bernoulli(packet_rate_)) return std::nullopt;
  // Uniform destination among the other endpoints.
  auto dst = static_cast<std::uint16_t>(rng.uniform_int(num_endpoints_ - 1));
  if (dst >= src) ++dst;
  ++generated_;
  Packet p;  // id is assigned by the PacketTable at source-queue admission
  p.src_endpoint = src;
  p.dst_endpoint = dst;
  p.length = static_cast<std::uint16_t>(packet_length_);
  p.gen_time = now;
  return p;
}

SyntheticTraffic::SyntheticTraffic(TrafficSpec spec,
                                   std::size_t num_endpoints,
                                   double flit_rate, int packet_length)
    : spec_(std::move(spec)),
      num_endpoints_(num_endpoints),
      packet_rate_(flit_rate / packet_length),
      packet_length_(packet_length) {
  if (num_endpoints < 2) {
    throw std::invalid_argument("SyntheticTraffic: need >= 2 endpoints");
  }
  if (flit_rate < 0.0 || flit_rate > 1.0) {
    throw std::invalid_argument(
        "SyntheticTraffic: flit_rate must be in [0, 1]");
  }
  if (packet_length < 1) {
    throw std::invalid_argument(
        "SyntheticTraffic: packet_length must be >= 1");
  }
  spec_.validate(num_endpoints_);
  if (spec_.pattern == TrafficPattern::kHotspot && spec_.hotspots.empty()) {
    spec_.hotspots.push_back(0);
  }
  if (spec_.pattern == TrafficPattern::kPermutation) {
    permutation_.resize(num_endpoints_);
    std::iota(permutation_.begin(), permutation_.end(), 0);
    // Fisher-Yates with the library RNG so the permutation is platform-
    // independent and fully determined by permutation_seed.
    Rng rng(spec_.permutation_seed);
    for (std::size_t i = num_endpoints_ - 1; i > 0; --i) {
      const std::size_t j = rng.uniform_int(i + 1);
      std::swap(permutation_[i], permutation_[j]);
    }
  }
}

std::uint16_t SyntheticTraffic::permutation_target(std::uint16_t src) const {
  if (spec_.pattern == TrafficPattern::kPermutation) {
    return permutation_[src];
  }
  if (spec_.pattern == TrafficPattern::kBitComplement) {
    return static_cast<std::uint16_t>(num_endpoints_ - 1 - src);
  }
  throw std::logic_error(
      "permutation_target: pattern has no fixed destination");
}

std::uint16_t SyntheticTraffic::draw_destination(std::uint16_t src, Rng& rng) {
  std::uint16_t dst = src;
  switch (spec_.pattern) {
    case TrafficPattern::kUniform: {
      dst = static_cast<std::uint16_t>(rng.uniform_int(num_endpoints_ - 1));
      if (dst >= src) ++dst;
      break;
    }
    case TrafficPattern::kHotspot: {
      if (rng.bernoulli(spec_.hotspot_fraction)) {
        dst = spec_.hotspots[rng.uniform_int(spec_.hotspots.size())];
      } else {
        dst = static_cast<std::uint16_t>(rng.uniform_int(num_endpoints_ - 1));
        if (dst >= src) ++dst;
      }
      break;
    }
    case TrafficPattern::kBitComplement:
    case TrafficPattern::kPermutation:
      dst = permutation_target(src);
      break;
  }
  return dst;
}

std::optional<Packet> SyntheticTraffic::maybe_generate(std::uint16_t src,
                                                       Cycle now, Rng& rng) {
  if (!rng.bernoulli(packet_rate_)) return std::nullopt;

  const std::uint16_t dst = draw_destination(src, rng);
  if (dst == src) return std::nullopt;  // self-traffic carries no ICI load

  ++generated_;
  Packet p;  // id is assigned by the PacketTable at source-queue admission
  p.src_endpoint = src;
  p.dst_endpoint = dst;
  p.length = static_cast<std::uint16_t>(packet_length_);
  p.gen_time = now;
  return p;
}

Cycle SyntheticTraffic::sample_gap(Rng& rng) const {
  if (packet_rate_ <= 0.0) return kNever;
  if (packet_rate_ >= 1.0) return 0;  // every cycle is a success
  // Inverse-CDF geometric sampling: the number of Bernoulli(p) failures
  // before the next success is floor(log(1-u) / log(1-p)) for u ~ U[0,1).
  // One uniform draw replaces a die roll per idle cycle, with exactly the
  // per-cycle Bernoulli attempt-time distribution.
  const double u = rng.uniform();
  const double k = std::floor(std::log1p(-u) / std::log1p(-packet_rate_));
  // Clamp pathological tails (u extremely close to 1 at tiny rates) so the
  // scheduled cycle can never overflow Cycle arithmetic.
  constexpr double kMaxGap = 1e15;
  return static_cast<Cycle>(std::min(k, kMaxGap));
}

void SyntheticTraffic::bind(std::uint64_t base_seed, Cycle start_cycle) {
  streams_.clear();
  streams_.reserve(num_endpoints_);
  events_.clear();
  events_.reserve(num_endpoints_);
  for (std::size_t e = 0; e < num_endpoints_; ++e) {
    streams_.emplace_back(derive_seed(base_seed, e));
    const Cycle gap = sample_gap(streams_.back());
    if (gap == kNever) continue;
    events_.push_back(Event{start_cycle + gap,
                            static_cast<std::uint16_t>(e)});
  }
  // Min-heap on (cycle, endpoint id): pops at equal cycles come out in
  // ascending endpoint order, matching the dense sweep's admission order.
  const auto later = [](const Event& a, const Event& b) {
    return a.at != b.at ? a.at > b.at : a.src > b.src;
  };
  std::make_heap(events_.begin(), events_.end(), later);
}

void SyntheticTraffic::generate_due(Cycle now, std::vector<Packet>& out) {
  const auto later = [](const Event& a, const Event& b) {
    return a.at != b.at ? a.at > b.at : a.src > b.src;
  };
  while (!events_.empty() && events_.front().at <= now) {
    std::pop_heap(events_.begin(), events_.end(), later);
    const Event ev = events_.back();
    events_.pop_back();
    Rng& rng = streams_[ev.src];

    const std::uint16_t dst = draw_destination(ev.src, rng);
    if (dst != ev.src) {  // self-traffic carries no ICI load
      ++generated_;
      Packet p;  // id is assigned by the PacketTable at admission
      p.src_endpoint = ev.src;
      p.dst_endpoint = dst;
      p.length = static_cast<std::uint16_t>(packet_length_);
      p.gen_time = now;
      out.push_back(p);
    }

    const Cycle gap = sample_gap(rng);
    if (gap == kNever) continue;
    events_.push_back(Event{ev.at + 1 + gap, ev.src});
    std::push_heap(events_.begin(), events_.end(), later);
  }
}

}  // namespace hm::noc
