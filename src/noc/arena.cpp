#include "noc/arena.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace hm::noc {

/// One cached network slot. Entries are heap-allocated so leases can hold a
/// stable pointer across cache growth and (idle-only) eviction.
struct SimulationArena::Lease::Entry {
  std::shared_ptr<const TopologyContext> topo;
  SimConfig cfg;
  std::unique_ptr<Network> net;
  bool in_use = false;
  std::uint64_t last_used = 0;
};

SimulationArena::Lease::Lease(Entry* entry)
    : entry_(entry), net_(entry->net.get()) {}

// HM_HOT: lease hand-back between saturation probes — pointer resets only.
void SimulationArena::Lease::release() noexcept {
  if (entry_ != nullptr) entry_->in_use = false;
  entry_ = nullptr;
  net_ = nullptr;
  owned_.reset();
}

SimulationArena::SimulationArena(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

SimulationArena::~SimulationArena() = default;

// HM_HOT: per-probe entry point — the steady-state reuse branch is reset-
// and-return; only the cold miss/fallback branches below may build (each
// carries its own hot-alloc waiver).
SimulationArena::Lease SimulationArena::lease(
    std::shared_ptr<const TopologyContext> topo, const SimConfig& cfg) {
  // Hit: same shared context instance (acquire() interns per graph, so
  // pointer identity is graph identity) and the same network structure.
  for (auto& e : entries_) {
    if (!e->in_use && e->topo.get() == topo.get() &&
        e->cfg.same_structure(cfg)) {
      telemetry::Span span("arena.reuse");
      static telemetry::Counter reused("arena.networks_reused");
      reused.add();
      e->in_use = true;
      e->last_used = ++tick_;
      e->net->reset();
      ++stats_.networks_reused;
      return Lease(e.get());
    }
  }

  // Miss: pick a slot — a fresh one while below capacity, else the least-
  // recently-used idle one — and build the network into it.
  Entry* slot = nullptr;
  if (entries_.size() < capacity_) {
    // HM_LINT allow(hot-alloc): cold miss — a slot is built at most
    // `capacity_` times per thread, then every later lease reuses it
    slot = entries_.emplace_back(std::make_unique<Entry>()).get();
  } else {
    for (auto& e : entries_) {
      if (e->in_use) continue;
      if (slot == nullptr || e->last_used < slot->last_used) slot = e.get();
    }
  }
  if (slot == nullptr) {
    // Every slot is checked out (nested probes on this thread): serve a
    // one-off network the lease owns outright.
    telemetry::Span span("arena.build");
    static telemetry::Counter oneoff("arena.oneoff_networks");
    oneoff.add();
    ++stats_.oneoff_networks;
    // HM_LINT allow(hot-alloc): cold fallback — only reached when every
    // slot is checked out by nested probes on this thread
    return Lease(std::make_unique<Network>(std::move(topo), cfg));
  }
  telemetry::Span span("arena.build");
  static telemetry::Counter built("arena.networks_built");
  built.add();
  ++stats_.networks_built;
  // HM_LINT allow(hot-alloc): cold miss — builds once per (context,
  // structure) pair, after which the reuse branch above serves the probes
  slot->net = std::make_unique<Network>(topo, cfg);
  slot->topo = std::move(topo);
  slot->cfg = cfg;
  slot->in_use = true;
  slot->last_used = ++tick_;
  return Lease(slot);
}

SimulationArena::Lease SimulationArena::owned(
    std::shared_ptr<const TopologyContext> topo, const SimConfig& cfg) {
  return Lease(std::make_unique<Network>(std::move(topo), cfg));
}

SimulationArena& SimulationArena::local() {
  static thread_local SimulationArena arena;
  return arena;
}

void SimulationArena::clear() {
  std::erase_if(entries_, [](const auto& e) { return !e->in_use; });
}

}  // namespace hm::noc
