// Small, fast, deterministic PRNG for the simulator hot loop
// (xoshiro256** seeded via SplitMix64). Header-only.
#pragma once

#include <cstdint>

namespace hm::noc {

/// xoshiro256** by Blackman & Vigna: excellent statistical quality, a few
/// cycles per draw, fully deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) {
    // SplitMix64 seeding avoids correlated low-entropy states.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next 64 random bits.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (p <= 0 never, p >= 1 always).
  bool bernoulli(double p) { return uniform() < p; }

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) { return next() % n; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

/// Deterministically derives an independent seed from a base seed and a
/// salt (one SplitMix64 step over their combination). Used to give every
/// parallel sweep job / simulation probe its own decorrelated RNG stream
/// whose value depends only on (base, salt) — never on thread scheduling —
/// so multi-threaded runs reproduce single-threaded ones bit for bit.
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t base,
                                               std::uint64_t salt) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace hm::noc
