// Shared immutable topology layer.
//
// A TopologyContext bundles everything derived from an arrangement graph
// that every simulation of that graph needs but none may mutate: the graph
// itself, the flat RoutingTables (all-pairs distances, CSR minimal-port
// sets, up*/down* escape hops) and the precomputed directed-link wiring
// (which output port at the source feeds which input port at the sink).
// It is built once per distinct graph and handed around as a
// shared_ptr<const TopologyContext>: the Fig. 7 methodology runs ~13 fresh
// simulator probes per saturation search, and the sweep engine multiplies
// that into (arrangement x params x traffic) grids — without sharing, every
// probe's Network constructor rebuilt the O(N^2 * deg) tables from scratch.
//
// acquire() interns contexts in a process-wide cache keyed by a stable
// content digest of the graph (util::StableHash over node count + sorted
// edges), holding weak references so contexts live exactly as long as some
// network, simulator or sweep job still uses them. Entries with equal
// digests are verified structurally, so a hash collision costs a rebuild,
// never a wrong table. Everything reachable from a const TopologyContext is
// deeply immutable, making concurrent read-only use from any number of
// ThreadPool workers safe without locks.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "noc/routing.hpp"

namespace hm::noc {

/// Stable content digest of a graph (node count + sorted edge list).
[[nodiscard]] std::uint64_t graph_digest(const graph::Graph& g);

class TopologyContext {
 public:
  /// One directed channel of a D2D link, with both port indices resolved.
  struct DirectedLink {
    graph::NodeId from = 0;
    graph::NodeId to = 0;
    std::uint8_t out_port_at_from = 0;  ///< port index at `from` toward `to`
    std::uint8_t in_port_at_to = 0;     ///< port index at `to` toward `from`
  };

  /// Builds a private (uncached) context. Prefer acquire() — it shares one
  /// build across every simulator of the same graph.
  explicit TopologyContext(const graph::Graph& g);

  /// Returns the shared context for `g`, building it only when no live
  /// context for a structurally equal graph exists. Thread-safe.
  [[nodiscard]] static std::shared_ptr<const TopologyContext> acquire(
      const graph::Graph& g);

  /// Returns the shared context for `prev`'s graph with `edit` applied,
  /// rebuilding only the routing-table rows and CSR segments the edit
  /// invalidates (see the incremental RoutingTables constructor; non-local
  /// edits fall back to a full build internally). Delta-built contexts are
  /// interned in the same digest-keyed cache as acquire(), so an
  /// incremental rebuild and a from-scratch acquire of the same graph
  /// return the same shared instance — whichever ran first — and the two
  /// build paths are interchangeable everywhere a context is consumed.
  /// This is the hot enabling path of the arrangement-search optimizer:
  /// every mutation step perturbs one chiplet or one link, so most of the
  /// O(N^2 * deg) table content survives verbatim. Thread-safe. Throws
  /// std::invalid_argument when `prev` is null or the edit is inconsistent
  /// with prev's graph (missing removed edge / duplicate added edge), and
  /// std::invalid_argument via RoutingTables when the edited graph is
  /// disconnected.
  [[nodiscard]] static std::shared_ptr<const TopologyContext> rebuild_from(
      const std::shared_ptr<const TopologyContext>& prev,
      const GraphEdit& edit);

  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const RoutingTables& tables() const noexcept {
    return tables_;
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return graph_.node_count();
  }
  /// Hop distance between routers (the shared distance matrix).
  [[nodiscard]] int distance(graph::NodeId u, graph::NodeId v) const {
    return tables_.distance(u, v);
  }
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  /// Two directed links per undirected edge, in deterministic order:
  /// edges() order (a < b, lexicographic), a->b before b->a. This is the
  /// port map Network previously recomputed per construction.
  [[nodiscard]] std::span<const DirectedLink> directed_links() const noexcept {
    return links_;
  }

  /// Process-lifetime count of contexts constructed / acquire() calls
  /// served from the cache. Used by tests and the perf bench to verify the
  /// build-once contract. Deprecated for observability use: the same
  /// events are published as the `topo.*` counters in
  /// telemetry::snapshot() (telemetry/telemetry.hpp).
  [[nodiscard]] static std::uint64_t lifetime_builds() noexcept;
  [[nodiscard]] static std::uint64_t cache_hits() noexcept;

 private:
  /// Incremental build for rebuild_from: `g` is prev's graph with `edit`
  /// applied; the routing tables reuse every row the edit leaves intact.
  TopologyContext(const graph::Graph& g, const TopologyContext& prev,
                  const GraphEdit& edit);

  void build_links();

  graph::Graph graph_;
  std::uint64_t digest_ = 0;
  RoutingTables tables_;
  std::vector<DirectedLink> links_;
};

}  // namespace hm::noc
