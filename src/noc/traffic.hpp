// Traffic generation. The paper's evaluation uses uniform random traffic:
// each endpoint injects flits at a configurable rate (flits/cycle/endpoint);
// destinations are drawn uniformly among all other endpoints. The synthetic
// generator additionally provides the classic BookSim-style patterns
// (hotspot, bit-complement, random permutation) used by the traffic-pattern
// ablation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "noc/flit.hpp"
#include "noc/rng.hpp"

namespace hm::noc {

/// Destination selection pattern.
enum class TrafficPattern {
  kUniform,        ///< uniform over all other endpoints (the paper's setup)
  kHotspot,        ///< fraction of packets targets a fixed hotspot set
  kBitComplement,  ///< endpoint e always sends to (E-1-e)
  kPermutation,    ///< fixed random permutation of endpoints
};

/// Short name, e.g. "uniform", "hotspot".
[[nodiscard]] const char* to_string(TrafficPattern p);

/// Pattern configuration for SyntheticTraffic.
struct TrafficSpec {
  TrafficPattern pattern = TrafficPattern::kUniform;
  /// kHotspot: probability a packet targets the hotspot set.
  double hotspot_fraction = 0.2;
  /// kHotspot: hotspot endpoints; defaults to {0} when empty.
  std::vector<std::uint16_t> hotspots;
  /// kPermutation: seed of the fixed permutation.
  unsigned long long permutation_seed = 1;

  /// Throws std::invalid_argument when the spec is malformed — a
  /// hotspot_fraction outside [0, 1] (rejected for every pattern: a spec
  /// that silently misbehaves the moment someone flips the pattern to
  /// kHotspot is a latent bug) or, when `num_endpoints` is non-zero, a
  /// hotspot endpoint id >= num_endpoints. Called by Simulator::set_traffic,
  /// find_saturation and the SyntheticTraffic constructor so a bad spec is
  /// rejected where it is configured instead of deep inside a run.
  void validate(std::size_t num_endpoints = 0) const;

  /// Short description for logs/exports, e.g. "uniform",
  /// "hotspot(f=0.2,n=2)", "permutation(seed=7)".
  [[nodiscard]] std::string describe() const;
};

/// Bernoulli packet source with uniformly random destinations.
class UniformRandomTraffic {
 public:
  /// `flit_rate` is the offered load in flits/cycle/endpoint in [0, 1];
  /// packets of `packet_length` flits are generated with probability
  /// flit_rate / packet_length per endpoint per cycle.
  UniformRandomTraffic(std::size_t num_endpoints, double flit_rate,
                       int packet_length);

  /// Rolls the Bernoulli die for endpoint `src` at cycle `now`.
  [[nodiscard]] std::optional<Packet> maybe_generate(std::uint16_t src,
                                                     Cycle now, Rng& rng);

  [[nodiscard]] double flit_rate() const noexcept { return flit_rate_; }
  [[nodiscard]] std::uint64_t packets_generated() const noexcept {
    return generated_;
  }

 private:
  std::size_t num_endpoints_;
  double flit_rate_;
  int packet_length_;
  double packet_rate_;
  std::uint64_t generated_ = 0;  ///< packets returned (ids come from the
                                 ///< PacketTable at admission, not here)
};

/// Bernoulli packet source with configurable destination pattern. Behaves
/// exactly like UniformRandomTraffic for TrafficPattern::kUniform.
class SyntheticTraffic {
 public:
  /// Same rate semantics as UniformRandomTraffic. Throws
  /// std::invalid_argument for out-of-range rates, < 2 endpoints, hotspot
  /// endpoints out of range or hotspot_fraction outside [0, 1].
  SyntheticTraffic(TrafficSpec spec, std::size_t num_endpoints,
                   double flit_rate, int packet_length);

  /// Rolls the Bernoulli die for endpoint `src` at cycle `now`. Returns
  /// nothing when the pattern maps `src` to itself (e.g. a hotspot endpoint
  /// drawing itself, or a permutation fixed point).
  [[nodiscard]] std::optional<Packet> maybe_generate(std::uint16_t src,
                                                     Cycle now, Rng& rng);

  [[nodiscard]] const TrafficSpec& spec() const noexcept { return spec_; }

  /// Destination endpoint `src` would target (for deterministic patterns;
  /// kUniform/kHotspot draw per packet and return the first draw's rules:
  /// exposed for tests via pattern-specific behaviour).
  [[nodiscard]] std::uint16_t permutation_target(std::uint16_t src) const;

 private:
  TrafficSpec spec_;
  std::size_t num_endpoints_;
  double packet_rate_;
  int packet_length_;
  std::vector<std::uint16_t> permutation_;
  std::uint64_t generated_ = 0;  ///< packets returned (ids come from the
                                 ///< PacketTable at admission, not here)
};

}  // namespace hm::noc
