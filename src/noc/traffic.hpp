// Traffic generation. The paper's evaluation uses uniform random traffic:
// each endpoint injects flits at a configurable rate (flits/cycle/endpoint);
// destinations are drawn uniformly among all other endpoints. The synthetic
// generator additionally provides the classic BookSim-style patterns
// (hotspot, bit-complement, random permutation) used by the traffic-pattern
// ablation.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "noc/flit.hpp"
#include "noc/rng.hpp"

namespace hm::noc {

/// Destination selection pattern.
enum class TrafficPattern {
  kUniform,        ///< uniform over all other endpoints (the paper's setup)
  kHotspot,        ///< fraction of packets targets a fixed hotspot set
  kBitComplement,  ///< endpoint e always sends to (E-1-e)
  kPermutation,    ///< fixed random permutation of endpoints
};

/// Short name, e.g. "uniform", "hotspot".
[[nodiscard]] const char* to_string(TrafficPattern p);

/// Pattern configuration for SyntheticTraffic.
struct TrafficSpec {
  TrafficPattern pattern = TrafficPattern::kUniform;
  /// kHotspot: probability a packet targets the hotspot set.
  double hotspot_fraction = 0.2;
  /// kHotspot: hotspot endpoints; defaults to {0} when empty.
  std::vector<std::uint16_t> hotspots;
  /// kPermutation: seed of the fixed permutation.
  unsigned long long permutation_seed = 1;

  /// Throws std::invalid_argument when the spec is malformed — a
  /// hotspot_fraction outside [0, 1] (rejected for every pattern: a spec
  /// that silently misbehaves the moment someone flips the pattern to
  /// kHotspot is a latent bug) or, when `num_endpoints` is non-zero, a
  /// hotspot endpoint id >= num_endpoints. Called by Simulator::set_traffic,
  /// find_saturation and the SyntheticTraffic constructor so a bad spec is
  /// rejected where it is configured instead of deep inside a run.
  void validate(std::size_t num_endpoints = 0) const;

  /// Short description for logs/exports, e.g. "uniform",
  /// "hotspot(f=0.2,n=2)", "permutation(seed=7)".
  [[nodiscard]] std::string describe() const;
};

/// Bernoulli packet source with uniformly random destinations.
class UniformRandomTraffic {
 public:
  /// `flit_rate` is the offered load in flits/cycle/endpoint in [0, 1];
  /// packets of `packet_length` flits are generated with probability
  /// flit_rate / packet_length per endpoint per cycle.
  UniformRandomTraffic(std::size_t num_endpoints, double flit_rate,
                       int packet_length);

  /// Rolls the Bernoulli die for endpoint `src` at cycle `now`.
  [[nodiscard]] std::optional<Packet> maybe_generate(std::uint16_t src,
                                                     Cycle now, Rng& rng);

  [[nodiscard]] double flit_rate() const noexcept { return flit_rate_; }
  [[nodiscard]] std::uint64_t packets_generated() const noexcept {
    return generated_;
  }

 private:
  std::size_t num_endpoints_;
  double flit_rate_;
  int packet_length_;
  double packet_rate_;
  std::uint64_t generated_ = 0;  ///< packets returned (ids come from the
                                 ///< PacketTable at admission, not here)
};

/// Bernoulli packet source with configurable destination pattern. Behaves
/// exactly like UniformRandomTraffic for TrafficPattern::kUniform.
class SyntheticTraffic {
 public:
  /// Same rate semantics as UniformRandomTraffic. Throws
  /// std::invalid_argument for out-of-range rates, < 2 endpoints, hotspot
  /// endpoints out of range or hotspot_fraction outside [0, 1].
  SyntheticTraffic(TrafficSpec spec, std::size_t num_endpoints,
                   double flit_rate, int packet_length);

  /// Rolls the Bernoulli die for endpoint `src` at cycle `now`. Returns
  /// nothing when the pattern maps `src` to itself (e.g. a hotspot endpoint
  /// drawing itself, or a permutation fixed point).
  [[nodiscard]] std::optional<Packet> maybe_generate(std::uint16_t src,
                                                     Cycle now, Rng& rng);

  [[nodiscard]] const TrafficSpec& spec() const noexcept { return spec_; }

  /// Destination endpoint `src` would target (for deterministic patterns;
  /// kUniform/kHotspot draw per packet and return the first draw's rules:
  /// exposed for tests via pattern-specific behaviour).
  [[nodiscard]] std::uint16_t permutation_target(std::uint16_t src) const;

  // --- Event-driven source API (skip-idle stepping) -----------------------
  //
  // Instead of rolling a Bernoulli(p) die per endpoint per cycle, each
  // endpoint owns an independent RNG stream (derive_seed(base, endpoint))
  // and samples the gap to its next generation *attempt* directly from the
  // geometric distribution — one uniform draw per attempt instead of one
  // per cycle, and an exact next-event cycle the Simulator can fast-forward
  // to when the network is quiescent. The attempt-time distribution is
  // identical to per-cycle Bernoulli sampling; destination draws then come
  // from the same endpoint stream.

  /// Sentinel "no next event" cycle.
  static constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

  /// Arms the event-driven source: seeds one RNG stream per endpoint from
  /// `base_seed` and schedules every endpoint's first generation attempt at
  /// or after `start_cycle`. Must be called before next_event_cycle /
  /// generate_due; may be called again to rebind.
  void bind(std::uint64_t base_seed, Cycle start_cycle);

  /// Cycle of the earliest pending generation attempt (kNever when none —
  /// zero rate, or bind() not called).
  [[nodiscard]] Cycle next_event_cycle() const noexcept {
    return events_.empty() ? kNever : events_.front().at;
  }

  /// Runs every generation attempt due at or before `now`, appending the
  /// produced packets to `out` (self-traffic attempts produce nothing but
  /// still reschedule). Attempts at equal cycles run in ascending endpoint
  /// order, matching the dense per-cycle endpoint sweep's admission order.
  void generate_due(Cycle now, std::vector<Packet>& out);

 private:
  struct Event {
    Cycle at = 0;
    std::uint16_t src = 0;
  };

  /// Draws the destination for one admitted attempt of `src` (the part of
  /// maybe_generate after the Bernoulli roll). May return src itself
  /// (self-traffic: caller suppresses the packet).
  [[nodiscard]] std::uint16_t draw_destination(std::uint16_t src, Rng& rng);

  /// Failures before the next Bernoulli(packet_rate_) success, sampled in
  /// one draw; kNever when the rate is zero.
  [[nodiscard]] Cycle sample_gap(Rng& rng) const;

  TrafficSpec spec_;
  std::size_t num_endpoints_;
  double packet_rate_;
  int packet_length_;
  std::vector<std::uint16_t> permutation_;
  std::vector<Rng> streams_;   ///< per-endpoint streams (bind())
  std::vector<Event> events_;  ///< min-heap on (at, src)
  std::uint64_t generated_ = 0;  ///< packets returned (ids come from the
                                 ///< PacketTable at admission, not here)
};

}  // namespace hm::noc
