// Cache-friendly FIFO ring over a contiguous power-of-two slot array.
//
// The simulation hot path (router input VCs, delay-line channels, endpoint
// source queues) previously used std::deque, whose chunked storage costs an
// indirection per access and an allocation every few pushes. Every queue in
// the network has a provable occupancy bound (credits bound input VCs, the
// link latency bounds in-flight flits, source_queue_capacity bounds the
// source queue), so Network reserves each ring to its bound up front and the
// steady state runs allocation-free. A push beyond the current capacity
// still grows the ring (correctness never depends on the reservation).
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace hm::noc {

// HM_HOT: every flit/credit movement goes through these rings — steady
// state must stay allocation-free (regrow only fires past the reserved
// occupancy bound, which the wiring sizes exactly).
template <typename T>
class RingQueue {
 public:
  RingQueue() = default;

  /// Ensures room for `min_capacity` elements without further allocation.
  void reserve(std::size_t min_capacity) {
    if (min_capacity > slots_.size()) regrow(min_capacity);
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return slots_[head_];
  }
  [[nodiscard]] const T& back() const {
    assert(size_ > 0);
    return slots_[(head_ + size_ - 1) & mask_];
  }
  /// i-th element from the front (0 == front()).
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) & mask_];
  }

  void push_back(const T& v) {
    if (size_ == slots_.size()) regrow(size_ + 1);
    slots_[(head_ + size_) & mask_] = v;
    ++size_;
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  void regrow(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = slots_[(head_ + i) & mask_];
    }
    slots_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace hm::noc
