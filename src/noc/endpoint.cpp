#include "noc/endpoint.hpp"

#include <cassert>
#include <stdexcept>

namespace hm::noc {

Endpoint::Endpoint(std::uint16_t id, const SimConfig& cfg,
                   PacketTable* packets)
    : id_(id), cfg_(cfg), packets_(packets) {
  if (packets_ == nullptr) {
    throw std::invalid_argument("Endpoint: null packet table");
  }
  credits_.assign(cfg_.vcs, cfg_.buffer_depth);
  queue_.reserve(static_cast<std::size_t>(cfg_.source_queue_capacity));
}

void Endpoint::wire_injection(FlitChannel* channel, int latency) {
  if (channel == nullptr || latency < 1) {
    throw std::invalid_argument("Endpoint::wire_injection: bad wiring");
  }
  inj_channel_ = channel;
  inj_latency_ = latency;
}

bool Endpoint::try_enqueue(const Packet& p) {
  if (!alive_ ||
      queue_.size() >= static_cast<std::size_t>(cfg_.source_queue_capacity)) {
    return false;
  }
  assert(p.src_endpoint == id_);
  Packet admitted = p;
  admitted.id = packets_->add(p);  // cold record written exactly once
  queue_.push_back(admitted);
  ++packets_enqueued_;
  if (queue_.size() > queue_hwm_) queue_hwm_ = queue_.size();
  return true;
}

void Endpoint::receive_credit(int vc) {
  ++credits_[vc];
  assert(credits_[vc] <= cfg_.buffer_depth);
}

void Endpoint::inject(Cycle now) {
  if (queue_.empty() || inj_channel_ == nullptr) return;

  // Pick a VC for a fresh packet (round-robin among VCs with credit).
  if (active_vc_ < 0) {
    for (int i = 0; i < cfg_.vcs; ++i) {
      const int vc = (rr_vc_ + i) % cfg_.vcs;
      if (credits_[vc] > 0) {
        active_vc_ = vc;
        rr_vc_ = (vc + 1) % cfg_.vcs;
        next_flit_ = 0;
        break;
      }
    }
    if (active_vc_ < 0) return;  // all VCs back-pressured
  }

  if (credits_[active_vc_] <= 0) return;  // stall mid-packet

  const Packet& p = queue_.front();
  Flit f;
  f.packet_id = p.id;
  f.dst_router = static_cast<std::uint16_t>(
      p.dst_endpoint / cfg_.endpoints_per_chiplet);
  f.vc = static_cast<std::uint8_t>(active_vc_);
  f.head = next_flit_ == 0;
  f.tail = next_flit_ == p.length - 1;

  inj_channel_->push(f, now + inj_latency_);
  --credits_[active_vc_];
  ++flits_injected_;
  ++next_flit_;
  if (f.tail) {
    queue_.pop_front();
    active_vc_ = -1;
    next_flit_ = 0;
  }
}

bool Endpoint::receive_flit(const Flit& f, Cycle now) {
  ++sink_.flits_ejected;
  if (f.tail) {
    const PacketRecord& rec = (*packets_)[f.packet_id];
    assert(rec.dst_endpoint == id_);
    ++sink_.packets_ejected;
    if (rec.gen_time >= window_begin_ && rec.gen_time < window_end_) {
      ++sink_.tagged_packets;
      sink_.tagged_latency_sum +=
          static_cast<std::uint64_t>(now - rec.gen_time);
      return true;
    }
  }
  return false;
}

void Endpoint::set_measurement_window(Cycle begin, Cycle end) {
  window_begin_ = begin;
  window_end_ = end;
}

void Endpoint::reset() {
  queue_.clear();
  credits_.assign(cfg_.vcs, cfg_.buffer_depth);
  active_vc_ = -1;
  next_flit_ = 0;
  rr_vc_ = 0;
  flits_injected_ = 0;
  packets_enqueued_ = 0;
  queue_hwm_ = 0;
  sink_ = SinkStats{};
  window_begin_ = 0;
  window_end_ = std::numeric_limits<Cycle>::min();
  alive_ = true;
}

void Endpoint::fault_refund_credit(int vc) {
  ++credits_[vc];
  assert(credits_[vc] <= cfg_.buffer_depth);
}

void Endpoint::fault_abort_active() {
  assert(next_flit_ > 0 && !queue_.empty());
  queue_.pop_front();
  active_vc_ = -1;
  next_flit_ = 0;
}

std::size_t Endpoint::fault_flush_queue(
    const std::function<bool(const Packet&)>& drop) {
  if (queue_.empty()) return 0;
  std::size_t removed = 0;
  if (next_flit_ > 0 && drop(queue_.front())) {
    fault_abort_active();  // pops the front; its injected flits are excised
    ++removed;
  }
  RingQueue<Packet> kept;
  kept.reserve(static_cast<std::size_t>(cfg_.source_queue_capacity));
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (drop(queue_[i])) {
      ++removed;
    } else {
      kept.push_back(queue_[i]);
    }
  }
  queue_ = std::move(kept);
  return removed;
}

void Endpoint::fault_reset_flow_state() {
  credits_.assign(cfg_.vcs, cfg_.buffer_depth);
  active_vc_ = -1;
  next_flit_ = 0;
}

std::size_t Endpoint::pending_flits() const noexcept {
  std::size_t flits = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) flits += queue_[i].length;
  // Subtract the part of the front packet that has already been injected.
  flits -= static_cast<std::size_t>(next_flit_);
  return flits;
}

}  // namespace hm::noc
