// Routing tables for arbitrary (connected) chiplet topologies.
//
// Two coordinated routing functions are precomputed from the arrangement
// graph (BookSim2's "anynet" equivalent, hardened for saturation runs):
//  * minimal routing: for every (current, destination) pair, the set of
//    output ports lying on some shortest path — used by the adaptive VCs;
//  * up*/down* escape routing: a BFS tree is rooted at a graph center; a
//    legal path takes "up" hops (toward smaller (depth, id) keys) before
//    "down" hops. The escape next hop is precomputed per (node, phase,
//    destination) over the 2N-state phase graph, which makes the escape
//    network provably deadlock-free (acyclic channel ordering) while still
//    using the shortest legal path.
//
// Storage is flat and offset-indexed: the distance matrix and escape tables
// are dense row-major N*N arrays, and the variable-length minimal-port sets
// live concatenated in one byte array addressed through an offset table
// (CSR-style). A lookup is one index computation plus contiguous loads —
// no nested-vector pointer chasing on the router's per-cycle path — and a
// built table is trivially immutable, which is what lets a single
// TopologyContext share it read-only across concurrent simulators.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace hm::noc {

/// One escape-routing hop: the output port to take and the up*/down* phase
/// the packet carries afterwards.
struct EscapeHop {
  std::uint8_t port = 0;        ///< index into graph.neighbors(current)
  std::uint8_t next_phase = 0;  ///< 0 = still ascending, 1 = descending
  friend bool operator==(const EscapeHop&, const EscapeHop&) = default;
};

/// A local edit of an arrangement graph: edges removed from and added to a
/// fixed vertex set (the node count never changes — a chiplet relocation
/// moves a vertex's incident edges, it never deletes the vertex). `removed`
/// edges must exist in the pre-edit graph and `added` edges must be absent
/// from it; endpoint order within a pair is irrelevant. This is the unit of
/// change the arrangement-search mutations produce and the incremental
/// routing-table rebuild consumes.
struct GraphEdit {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> removed;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> added;
  [[nodiscard]] bool empty() const noexcept {
    return removed.empty() && added.empty();
  }
};

/// Returns a copy of `g` with `edit` applied (removals first, then
/// additions). Throws std::invalid_argument when a removed edge is missing
/// or an added edge already exists.
[[nodiscard]] graph::Graph apply_edit(const graph::Graph& g,
                                      const GraphEdit& edit);

/// Precomputed routing tables for a fixed topology.
class RoutingTables {
 public:
  /// Builds tables for `g`, which must be connected with >= 1 vertex and
  /// degree <= 255 (std::invalid_argument otherwise).
  explicit RoutingTables(const graph::Graph& g);

  /// Incremental build: `g` must equal `edit` applied to the graph `prev`
  /// was built for (same vertex set — node-count changes fall back to a
  /// full build, as does any edit that invalidates more than half of the
  /// distance rows, e.g. a chiplet relocation, which genuinely changes
  /// d(u, moved) for nearly every u). Only the distance rows the edit
  /// actually changes are re-run through BFS, decided by exact per-row
  /// criteria over prev's distances: a removed edge invalidates row u only
  /// when it is tight (|d(u,a) - d(u,b)| == 1) *and* its far endpoint
  /// keeps no surviving tight predecessor (with one, every vertex still
  /// has an old-length path, by induction over BFS depth — path diversity
  /// makes most mesh edge toggles a no-op row-wise); an added edge only
  /// when |d(u,a) - d(u,b)| >= 2 (with every gap <= 1, no path through
  /// the added edges can beat the old distances). Likewise only the
  /// minimal-port CSR segments whose inputs (the row's own distances, a
  /// neighbour's distances, or the neighbour list itself) changed are
  /// recomputed; everything else is copied from `prev` byte for byte. The
  /// up*/down* escape tables rebuild per destination column: when the root
  /// and its distance row survive the edit (so the orientation keys are
  /// unchanged), the stored backward state-BFS distances let the same
  /// tight-inlet/shortcut criteria decide which destinations the edited
  /// transitions can reach at all — surviving columns are copied with only
  /// the edit-incident routers' hops re-derived (their port numbering
  /// changed), the rest re-run the full per-destination build. The result
  /// is bit-identical to RoutingTables(g) by construction (and by the
  /// property tests in test_search).
  RoutingTables(const graph::Graph& g, const RoutingTables& prev,
                const GraphEdit& edit);

  /// Hop distance between routers.
  [[nodiscard]] int distance(graph::NodeId u, graph::NodeId v) const {
    return dist_[flat(u, v)];
  }

  /// Output ports (indices into neighbors(cur)) on shortest paths cur->dst.
  /// Empty iff cur == dst.
  [[nodiscard]] std::span<const std::uint8_t> minimal_ports(
      graph::NodeId cur, graph::NodeId dst) const {
    const std::size_t i = flat(cur, dst);
    return {min_port_data_.data() + min_port_offset_[i],
            min_port_data_.data() + min_port_offset_[i + 1]};
  }

  /// Escape next hop from `cur` toward `dst` given the packet's current
  /// up*/down* phase. Precondition: cur != dst and the state is reachable
  /// (guaranteed when phases are only advanced through this table).
  [[nodiscard]] EscapeHop escape_hop(graph::NodeId cur, graph::NodeId dst,
                                     std::uint8_t phase) const {
    return escape_[phase][flat(cur, dst)];
  }

  /// Root of the up*/down* tree (a graph center).
  [[nodiscard]] graph::NodeId escape_root() const noexcept { return root_; }

  /// Number of network ports of router `v` (== its degree).
  [[nodiscard]] std::size_t num_ports(graph::NodeId v) const {
    return degree_[v];
  }

  /// Number of routers the tables were built for.
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// Process-lifetime count of table constructions. The topology-sharing
  /// contract — "one table build per evaluate / find_saturation / sweep-job
  /// chain" — is asserted by tests through deltas of this counter.
  ///
  /// Deprecated for observability use: the same counts are published as
  /// `routing.*` counters in telemetry::snapshot() (telemetry/telemetry.hpp),
  /// the uniform surface. These bespoke accessors stay for the existing
  /// delta-based test/engine bookkeeping only.
  [[nodiscard]] static std::uint64_t lifetime_builds() noexcept;

  /// Process-lifetime counts of incremental builds that stayed incremental
  /// (vs. falling back to a full rebuild) and of distance rows copied from
  /// the previous tables instead of re-running BFS. Observability for the
  /// search bench and the equivalence tests. Deprecated in favour of the
  /// `routing.incremental_*` telemetry counters (see lifetime_builds()).
  [[nodiscard]] static std::uint64_t incremental_builds() noexcept;
  [[nodiscard]] static std::uint64_t incremental_rows_reused() noexcept;

  /// True iff every table (distances, minimal-port CSR, escape hops, root,
  /// degrees) compares equal element for element. The incremental-vs-full
  /// equivalence contract of the (g, prev, edit) constructor.
  [[nodiscard]] bool identical_to(const RoutingTables& o) const;

 private:
  /// Shared table-construction phases (both constructors funnel through
  /// these so incremental and from-scratch builds run identical code).
  void build_full(const graph::Graph& g);
  void build_min_port_row(const graph::Graph& g, graph::NodeId cur);
  void build_escape(const graph::Graph& g);
  /// Graph center the escape tree roots at (argmin eccentricity over the
  /// current dist_ matrix, smallest id on ties).
  [[nodiscard]] graph::NodeId select_escape_root() const;
  /// Backward state-graph BFS + forward hop assignment for one
  /// destination. `depth` is the root's distance row (the up*/down*
  /// orientation key); writes escape_[*][flat(*, dst)] and the dst block
  /// of escape_sdist_.
  void build_escape_column(const graph::Graph& g, const std::vector<int>& depth,
                           graph::NodeId dst);
  /// Forward next hop of state (u, phase) toward dst given the dst
  /// column's state distances `sd`; the default hop for unreachable
  /// states. Exactly the selection loop of the full build.
  [[nodiscard]] EscapeHop forward_escape_hop(const graph::Graph& g,
                                             const std::vector<int>& depth,
                                             graph::NodeId dst, graph::NodeId u,
                                             int phase, const int* sd) const;
  [[nodiscard]] std::size_t flat(graph::NodeId u, graph::NodeId v) const {
    return static_cast<std::size_t>(u) * n_ + v;
  }

  std::size_t n_ = 0;
  graph::NodeId root_ = 0;
  std::vector<std::size_t> degree_;
  std::vector<int> dist_;                       ///< flat [u*n + v]
  std::vector<std::uint32_t> min_port_offset_;  ///< n*n + 1 entries
  std::vector<std::uint8_t> min_port_data_;     ///< concatenated port sets
  /// escape_[phase][cur*n + dst]
  std::vector<EscapeHop> escape_[2];
  /// Backward state-graph BFS distances per destination,
  /// escape_sdist_[dst * 2n + phase * n + v] (kInf-like sentinel for
  /// unreachable states). Never read on the routing hot path — kept so an
  /// incremental rebuild can decide, per destination, whether a graph edit
  /// touches that column's escape paths at all.
  std::vector<int> escape_sdist_;
};

}  // namespace hm::noc
