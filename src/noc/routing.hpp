// Routing tables for arbitrary (connected) chiplet topologies.
//
// Two coordinated routing functions are precomputed from the arrangement
// graph (BookSim2's "anynet" equivalent, hardened for saturation runs):
//  * minimal routing: for every (current, destination) pair, the set of
//    output ports lying on some shortest path — used by the adaptive VCs;
//  * up*/down* escape routing: a BFS tree is rooted at a graph center; a
//    legal path takes "up" hops (toward smaller (depth, id) keys) before
//    "down" hops. The escape next hop is precomputed per (node, phase,
//    destination) over the 2N-state phase graph, which makes the escape
//    network provably deadlock-free (acyclic channel ordering) while still
//    using the shortest legal path.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace hm::noc {

/// One escape-routing hop: the output port to take and the up*/down* phase
/// the packet carries afterwards.
struct EscapeHop {
  std::uint8_t port = 0;        ///< index into graph.neighbors(current)
  std::uint8_t next_phase = 0;  ///< 0 = still ascending, 1 = descending
};

/// Precomputed routing tables for a fixed topology.
class RoutingTables {
 public:
  /// Builds tables for `g`, which must be connected with >= 1 vertex and
  /// degree <= 255 (std::invalid_argument otherwise).
  explicit RoutingTables(const graph::Graph& g);

  /// Hop distance between routers.
  [[nodiscard]] int distance(graph::NodeId u, graph::NodeId v) const {
    return dist_[u][v];
  }

  /// Output ports (indices into neighbors(cur)) on shortest paths cur->dst.
  /// Empty iff cur == dst.
  [[nodiscard]] const std::vector<std::uint8_t>& minimal_ports(
      graph::NodeId cur, graph::NodeId dst) const {
    return min_ports_[cur][dst];
  }

  /// Escape next hop from `cur` toward `dst` given the packet's current
  /// up*/down* phase. Precondition: cur != dst and the state is reachable
  /// (guaranteed when phases are only advanced through this table).
  [[nodiscard]] EscapeHop escape_hop(graph::NodeId cur, graph::NodeId dst,
                                     std::uint8_t phase) const {
    return escape_[phase][cur][dst];
  }

  /// Root of the up*/down* tree (a graph center).
  [[nodiscard]] graph::NodeId escape_root() const noexcept { return root_; }

  /// Number of network ports of router `v` (== its degree).
  [[nodiscard]] std::size_t num_ports(graph::NodeId v) const {
    return degree_[v];
  }

 private:
  graph::NodeId root_ = 0;
  std::vector<std::size_t> degree_;
  std::vector<std::vector<int>> dist_;
  std::vector<std::vector<std::vector<std::uint8_t>>> min_ports_;
  /// escape_[phase][cur][dst]
  std::vector<std::vector<EscapeHop>> escape_[2];
};

}  // namespace hm::noc
