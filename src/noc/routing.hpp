// Routing tables for arbitrary (connected) chiplet topologies.
//
// Two coordinated routing functions are precomputed from the arrangement
// graph (BookSim2's "anynet" equivalent, hardened for saturation runs):
//  * minimal routing: for every (current, destination) pair, the set of
//    output ports lying on some shortest path — used by the adaptive VCs;
//  * up*/down* escape routing: a BFS tree is rooted at a graph center; a
//    legal path takes "up" hops (toward smaller (depth, id) keys) before
//    "down" hops. The escape next hop is precomputed per (node, phase,
//    destination) over the 2N-state phase graph, which makes the escape
//    network provably deadlock-free (acyclic channel ordering) while still
//    using the shortest legal path.
//
// Storage is flat and offset-indexed: the distance matrix and escape tables
// are dense row-major N*N arrays, and the variable-length minimal-port sets
// live concatenated in one byte array addressed through an offset table
// (CSR-style). A lookup is one index computation plus contiguous loads —
// no nested-vector pointer chasing on the router's per-cycle path — and a
// built table is trivially immutable, which is what lets a single
// TopologyContext share it read-only across concurrent simulators.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace hm::noc {

/// One escape-routing hop: the output port to take and the up*/down* phase
/// the packet carries afterwards.
struct EscapeHop {
  std::uint8_t port = 0;        ///< index into graph.neighbors(current)
  std::uint8_t next_phase = 0;  ///< 0 = still ascending, 1 = descending
};

/// Precomputed routing tables for a fixed topology.
class RoutingTables {
 public:
  /// Builds tables for `g`, which must be connected with >= 1 vertex and
  /// degree <= 255 (std::invalid_argument otherwise).
  explicit RoutingTables(const graph::Graph& g);

  /// Hop distance between routers.
  [[nodiscard]] int distance(graph::NodeId u, graph::NodeId v) const {
    return dist_[flat(u, v)];
  }

  /// Output ports (indices into neighbors(cur)) on shortest paths cur->dst.
  /// Empty iff cur == dst.
  [[nodiscard]] std::span<const std::uint8_t> minimal_ports(
      graph::NodeId cur, graph::NodeId dst) const {
    const std::size_t i = flat(cur, dst);
    return {min_port_data_.data() + min_port_offset_[i],
            min_port_data_.data() + min_port_offset_[i + 1]};
  }

  /// Escape next hop from `cur` toward `dst` given the packet's current
  /// up*/down* phase. Precondition: cur != dst and the state is reachable
  /// (guaranteed when phases are only advanced through this table).
  [[nodiscard]] EscapeHop escape_hop(graph::NodeId cur, graph::NodeId dst,
                                     std::uint8_t phase) const {
    return escape_[phase][flat(cur, dst)];
  }

  /// Root of the up*/down* tree (a graph center).
  [[nodiscard]] graph::NodeId escape_root() const noexcept { return root_; }

  /// Number of network ports of router `v` (== its degree).
  [[nodiscard]] std::size_t num_ports(graph::NodeId v) const {
    return degree_[v];
  }

  /// Number of routers the tables were built for.
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// Process-lifetime count of table constructions. The topology-sharing
  /// contract — "one table build per evaluate / find_saturation / sweep-job
  /// chain" — is asserted by tests through deltas of this counter.
  [[nodiscard]] static std::uint64_t lifetime_builds() noexcept;

 private:
  [[nodiscard]] std::size_t flat(graph::NodeId u, graph::NodeId v) const {
    return static_cast<std::size_t>(u) * n_ + v;
  }

  std::size_t n_ = 0;
  graph::NodeId root_ = 0;
  std::vector<std::size_t> degree_;
  std::vector<int> dist_;                       ///< flat [u*n + v]
  std::vector<std::uint32_t> min_port_offset_;  ///< n*n + 1 entries
  std::vector<std::uint8_t> min_port_data_;     ///< concatenated port sets
  /// escape_[phase][cur*n + dst]
  std::vector<EscapeHop> escape_[2];
};

}  // namespace hm::noc
