#include "noc/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "faults/controller.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace hm::noc {

namespace {
/// Stream salt separating the traffic base seed from every other consumer
/// of derive_seed(cfg.seed, ...) (per-router arbitration streams, per-job
/// sweep seeds).
constexpr std::uint64_t kTrafficStreamSalt = 0x6369666661725463ULL;
}  // namespace

Simulator::Simulator(const graph::Graph& g, const SimConfig& cfg)
    : Simulator(TopologyContext::acquire(g), cfg) {}

Simulator::Simulator(std::shared_ptr<const TopologyContext> topo,
                     const SimConfig& cfg)
    : cfg_(cfg),
      lease_(SimulationArena::owned(std::move(topo), cfg)),
      net_(lease_.network()) {}

Simulator::Simulator(SimulationArena& arena,
                     std::shared_ptr<const TopologyContext> topo,
                     const SimConfig& cfg)
    : cfg_(cfg),
      lease_(arena.lease(std::move(topo), cfg)),
      net_(lease_.network()) {
  // The arena reuse key deliberately excludes the seed, so a recycled
  // network may carry router streams seeded by the previous probe.
  net_.seed_rngs(cfg.seed);
}

Simulator::~Simulator() {
  if (!telemetry::enabled()) return;
  static telemetry::Counter flits_routed("sim.flits_routed");
  static telemetry::Counter va_stalls("sim.va_stall_cycles");
  static telemetry::Counter sa_conflicts("sim.sa_conflict_stalls");
  static telemetry::Counter sa_credit("sim.sa_credit_stalls");
  static telemetry::Counter revoked("sim.heads_revoked");
  static telemetry::Counter admitted("sim.packets_admitted");
  static telemetry::Counter dropped("sim.packets_dropped");
  static telemetry::Gauge ring_hwm("sim.ring_hwm");
  static telemetry::Gauge source_hwm("sim.source_queue_hwm");
  static telemetry::Gauge active_routers("sim.active_routers");
  static telemetry::Counter idle_skipped("sim.idle_skipped_cycles");
  static telemetry::Counter router_steps("sim.router_steps");
  const Network::HotStats s = net_.hot_stats();
  flits_routed.add(s.routers.flits_routed);
  va_stalls.add(s.routers.va_stall_cycles);
  sa_conflicts.add(s.routers.sa_conflict_stalls);
  sa_credit.add(s.routers.sa_credit_stalls);
  revoked.add(s.routers.heads_revoked);
  admitted.add(packets_admitted_);
  dropped.add(packets_dropped_);
  ring_hwm.set_max(s.routers.ring_hwm);
  source_hwm.set_max(s.source_queue_hwm);
  active_routers.set_max(s.active_router_hwm);
  idle_skipped.add(idle_skipped_cycles_);
  router_steps.add(s.router_steps);
}

void Simulator::set_traffic(const TrafficSpec& spec) {
  spec.validate(net_.num_endpoints());
  traffic_spec_ = spec;
}

void Simulator::bind_traffic(SyntheticTraffic& traffic) {
  // Salting with the start cycle gives back-to-back runs on one Simulator
  // decorrelated streams (the shared-Rng scheme this replaces consumed one
  // stream across runs, so the second run never replayed the first).
  const std::uint64_t base =
      derive_seed(derive_seed(cfg_.seed, kTrafficStreamSalt),
                  static_cast<std::uint64_t>(now_));
  traffic.bind(base, now_);
}

void Simulator::tick(SyntheticTraffic& traffic) {
  if (faults_ != nullptr) faults_->on_tick(net_, now_);
  gen_scratch_.clear();
  traffic.generate_due(now_, gen_scratch_);
  for (const Packet& p : gen_scratch_) {
    if (faults_ != nullptr && !faults_->packet_routable(p)) {
      // Dead source or destination: suppress the packet before it touches
      // a source queue (counted, never on the wire).
      faults_->note_unroutable_packet();
      continue;
    }
    // A full source queue throttles the offered load (the generated packet
    // is dropped at the source, exactly like BookSim's finite source
    // queues under saturation).
    if (net_.offer_packet(p.src_endpoint, p)) {
      ++packets_admitted_;
      if (p.gen_time >= tag_begin_ && p.gen_time < tag_end_) {
        ++tagged_generated_;
      }
    } else {
      ++packets_dropped_;
    }
  }
  net_.step(now_);
  ++now_;
}

void Simulator::advance_until(Cycle limit, SyntheticTraffic& traffic) {
  while (now_ < limit) {
    if (cfg_.skip_idle && net_.quiescent()) {
      // Nothing buffered, queued or in flight: every cycle until the next
      // traffic event is an observable no-op. Jump straight there. Gated
      // on skip_idle so the dense mode stays the plain reference stepper
      // (quiescent() is O(1) here, a full scan there).
      Cycle next = traffic.next_event_cycle();
      if (faults_ != nullptr) {
        // Never skip over a pending fault event or table swap.
        const Cycle fault_next = faults_->next_event_cycle();
        if (fault_next < next) next = fault_next;
      }
      const Cycle target = next < limit ? next : limit;
      if (target > now_) {
        idle_skipped_cycles_ += static_cast<std::uint64_t>(target - now_);
        now_ = target;
        if (now_ >= limit) break;
      }
    }
    tick(traffic);
  }
}

LatencyResult Simulator::run_latency(double flit_rate, Cycle warmup,
                                     Cycle measure, Cycle drain_limit) {
  SyntheticTraffic traffic(traffic_spec_, net_.num_endpoints(), flit_rate,
                           cfg_.packet_length);
  bind_traffic(traffic);
  const Cycle window_begin = now_ + warmup;
  const Cycle window_end = window_begin + measure;
  for (std::size_t e = 0; e < net_.num_endpoints(); ++e) {
    net_.endpoint(e).set_measurement_window(window_begin, window_end);
  }

  // Tagged packets are counted at generation time (enqueue success, inside
  // tick()) so the drain condition is exact; deliveries come from the
  // network's O(1) running counter instead of an O(endpoints) sink scan
  // per drain cycle.
  tag_begin_ = window_begin;
  tag_end_ = window_end;
  tagged_generated_ = 0;
  const std::uint64_t delivered_before = net_.tagged_delivered();

  // Warmup + measurement window.
  advance_until(window_end, traffic);

  // Drain phase: keep offering traffic (BookSim semantics) until every
  // tagged packet is delivered. No fast-forward check: a quiescent network
  // has no undelivered tagged packets, so the loop exits first.
  const Cycle drain_end = window_end + drain_limit;
  while (net_.tagged_delivered() - delivered_before < tagged_generated_ &&
         now_ < drain_end) {
    tick(traffic);
  }

  LatencyResult result;
  result.packets_measured = net_.tagged_delivered() - delivered_before;
  result.drained = result.packets_measured == tagged_generated_;
  std::uint64_t latency_sum = 0;
  for (std::size_t e = 0; e < net_.num_endpoints(); ++e) {
    latency_sum += net_.endpoint(e).sink().tagged_latency_sum;
  }
  result.avg_packet_latency =
      result.packets_measured == 0
          ? 0.0
          : static_cast<double>(latency_sum) /
                static_cast<double>(result.packets_measured);
  tag_end_ = std::numeric_limits<Cycle>::min();  // stop tagging admissions
  return result;
}

ThroughputResult Simulator::run_throughput(double flit_rate, Cycle warmup,
                                           Cycle measure) {
  SyntheticTraffic traffic(traffic_spec_, net_.num_endpoints(), flit_rate,
                           cfg_.packet_length);
  bind_traffic(traffic);
  const Cycle measure_begin = now_ + warmup;
  const Cycle measure_end = measure_begin + measure;
  advance_until(measure_begin, traffic);

  const std::uint64_t ejected_before = net_.total_flits_ejected();
  const std::uint64_t admitted_before = packets_admitted_;
  const std::uint64_t dropped_before = packets_dropped_;
  advance_until(measure_end, traffic);
  const std::uint64_t ejected_after = net_.total_flits_ejected();

  ThroughputResult result;
  result.offered_flit_rate = flit_rate;
  const double window_endpoints =
      static_cast<double>(measure) * static_cast<double>(net_.num_endpoints());
  result.accepted_flit_rate =
      static_cast<double>(ejected_after - ejected_before) / window_endpoints;
  result.generated_flit_rate =
      static_cast<double>((packets_admitted_ - admitted_before) *
                          static_cast<std::uint64_t>(cfg_.packet_length)) /
      window_endpoints;
  result.dropped_packets = packets_dropped_ - dropped_before;
  return result;
}

faults::ResilienceStats Simulator::run_resilience(double flit_rate,
                                                  const faults::FaultPlan& plan,
                                                  Cycle warmup, Cycle measure) {
  if (faults_ != nullptr) {
    throw std::logic_error(
        "Simulator::run_resilience: a fault plan is already armed on this "
        "simulator (the network keeps its post-fault state; use a fresh "
        "Simulator per resilience run)");
  }
  SyntheticTraffic traffic(traffic_spec_, net_.num_endpoints(), flit_rate,
                           cfg_.packet_length);
  bind_traffic(traffic);
  advance_until(now_ + warmup, traffic);
  faults_ = std::make_unique<faults::FaultController>(plan);
  faults_->arm(net_, now_);
  advance_until(now_ + measure, traffic);
  faults_->flush_telemetry();
  return faults_->stats();
}

std::uint64_t saturation_rate_key(double rate) noexcept {
  if (std::isnan(rate)) {
    // Any NaN payload (or sign) collapses onto the canonical quiet NaN.
    return std::bit_cast<std::uint64_t>(
        std::numeric_limits<double>::quiet_NaN());
  }
  if (rate == 0.0) rate = 0.0;  // collapse -0.0 onto +0.0 (they compare ==)
  return std::bit_cast<std::uint64_t>(rate);
}

SaturationResult find_saturation(const graph::Graph& g, const SimConfig& cfg,
                                 const SaturationSearchOptions& opts,
                                 const TrafficSpec& traffic,
                                 ProbeExecutor* executor) {
  // One topology build (or cache hit) for the whole probe sequence.
  return find_saturation(TopologyContext::acquire(g), cfg, opts, traffic,
                         executor);
}

SaturationResult find_saturation(std::shared_ptr<const TopologyContext> topo,
                                 const SimConfig& cfg,
                                 const SaturationSearchOptions& opts,
                                 const TrafficSpec& traffic,
                                 ProbeExecutor* executor) {
  if (topo == nullptr) {
    throw std::invalid_argument("find_saturation: null topology context");
  }
  traffic.validate(topo->node_count() *
                   static_cast<std::size_t>(cfg.endpoints_per_chiplet));
  telemetry::Span search_span("sat.search");
  SaturationResult result;

  // A probe's outcome is a pure function of its offered rate: it runs on a
  // fresh network whose seed depends only on (cfg.seed, rate). That is the
  // invariant that makes speculative parallel probing below bit-identical
  // to the sequential search.
  auto run_one = [&](double rate) {
    telemetry::Span span("sat.probe");
    static telemetry::Counter probes_run("sat.probes");
    probes_run.add();
    SimConfig probe_cfg = cfg;
    if (opts.per_probe_seeds) {
      probe_cfg.seed = derive_seed(cfg.seed, saturation_rate_key(rate));
    }
    // Reset-and-reuse network from the calling worker's arena (bit-identical
    // to a fresh network on the shared topology, minus the allocator churn).
    Simulator sim(SimulationArena::local(), topo, probe_cfg);
    sim.set_traffic(traffic);
    return sim.run_throughput(rate, opts.warmup, opts.measure);
  };

  // Memoized probes, batched through the executor when one is available.
  // Keyed by the rate's canonicalized bit pattern (saturation_rate_key:
  // -0.0 folded onto +0.0, NaNs onto one NaN): probe rates repeat exactly
  // (they are recomputed from the same midpoint arithmetic), so an O(1)
  // bit-equality hash lookup replaces ordered exact-double operator<
  // comparisons on the probe path.
  std::unordered_map<std::uint64_t, ThroughputResult> memo;
  const auto rate_key = [](double rate) { return saturation_rate_key(rate); };
  auto ensure = [&](const std::vector<double>& rates) {
    std::vector<double> missing;
    for (double r : rates) {
      if (!memo.contains(rate_key(r)) &&
          std::find(missing.begin(), missing.end(), r) == missing.end()) {
        missing.push_back(r);
      }
    }
    if (missing.empty()) return;
    result.probes += static_cast<int>(missing.size());
    if (executor != nullptr && missing.size() > 1) {
      std::vector<ThroughputResult> out(missing.size());
      std::vector<std::function<void()>> jobs;
      jobs.reserve(missing.size());
      for (std::size_t i = 0; i < missing.size(); ++i) {
        jobs.push_back([&, i] { out[i] = run_one(missing[i]); });
      }
      executor->run_batch(jobs);
      for (std::size_t i = 0; i < missing.size(); ++i) {
        memo.emplace(rate_key(missing[i]), out[i]);
      }
    } else {
      for (double r : missing) memo.emplace(rate_key(r), run_one(r));
    }
  };
  auto probe = [&](double rate) -> const ThroughputResult& {
    ensure({rate});
    return memo.at(rate_key(rate));
  };

  // Stable = the source queues never overflowed during the measurement
  // window (the knee indicator) and the ejected rate keeps up with the
  // rate the sources actually generated (guards against slowly-filling
  // in-network congestion). Comparing against the measured generated rate
  // rather than the nominal offered rate keeps low-rate probes with short
  // windows from flapping on traffic-generation shot noise — below the
  // knee accepted tracks generated almost exactly, noise and all — which
  // is what makes probe outcomes monotone in practice (the property the
  // surrogate-bracketed search below leans on).
  auto stable = [&](const ThroughputResult& r) {
    return r.dropped_packets == 0 &&
           r.accepted_flit_rate >= opts.stability * r.generated_flit_rate;
  };

  // --- Surrogate-bracketed search ------------------------------------------
  // Gallop outward from the analytic estimate on the dyadic grid
  // k / 2^iterations — exactly the rates the plain bisection can probe
  // (its midpoints are dyadic, hence exactly representable, so memo keys
  // coincide) — then binary-search the bracket. Probe outcomes are a pure
  // function of the rate, so under monotone outcomes this returns the same
  // grid point and accepted rate as the plain search (test_active_set pins
  // this) in ~2 + log2(estimate error in grid steps) probes instead of
  // iterations + 1.
  if (opts.surrogate_rate >= 0.0 && opts.iterations >= 1) {
    const int scale = 1 << opts.iterations;
    const auto rate_of = [scale](int k) {
      return static_cast<double>(k) / static_cast<double>(scale);
    };
    auto stable_at = [&](int k) { return stable(probe(rate_of(k))); };

    int k0 = static_cast<int>(std::lround(opts.surrogate_rate * scale));
    k0 = std::clamp(k0, 1, scale);
    if (executor != nullptr && k0 < scale) {
      // Prefetch the common good-estimate case: the bracket is (k0, k0+1).
      ensure({rate_of(k0), rate_of(k0 + 1)});
    }

    int lo_k = 0;           // stable by definition (zero offered rate)
    int hi_k = scale;       // overwritten by the gallop before use
    int jump = 1;
    if (stable_at(k0)) {
      lo_k = k0;
      while (lo_k < scale) {
        const int j = std::min(lo_k + jump, scale);
        jump *= 2;
        if (stable_at(j)) {
          lo_k = j;
        } else {
          hi_k = j;
          break;
        }
      }
      if (lo_k == scale) {
        // Full rate is stable: injection-limited, same early return as the
        // plain search's initial 1.0 probe.
        result.saturation_flit_rate = 1.0;
        result.accepted_flit_rate = probe(1.0).accepted_flit_rate;
        return result;
      }
    } else {
      hi_k = k0;
      while (hi_k > 1) {
        const int j = std::max(hi_k - jump, 1);
        jump *= 2;
        if (stable_at(j)) {
          lo_k = j;
          break;
        }
        hi_k = j;
      }
    }

    // Bracket established: S(lo_k) stable (or lo_k == 0), S(hi_k) unstable.
    while (hi_k - lo_k > 1) {
      const int midk = (lo_k + hi_k) / 2;
      if (executor != nullptr && hi_k - lo_k > 2) {
        // Speculate both possible next midpoints alongside, as the plain
        // parallel search does.
        std::vector<double> batch{rate_of(midk)};
        const int lmid = (lo_k + midk) / 2;
        const int rmid = (midk + hi_k) / 2;
        if (lmid > lo_k && lmid != midk && lmid > 0) {
          batch.push_back(rate_of(lmid));
        }
        if (rmid < hi_k && rmid != midk) batch.push_back(rate_of(rmid));
        ensure(batch);
      }
      if (stable_at(midk)) {
        lo_k = midk;
      } else {
        hi_k = midk;
      }
    }
    result.saturation_flit_rate = rate_of(lo_k);
    // Same pathological-case fallback as the plain search: no stable point
    // above 0 found, report the lowest unstable probe's accepted rate.
    result.accepted_flit_rate =
        lo_k > 0 ? memo.at(rate_key(rate_of(lo_k))).accepted_flit_rate
                 : std::min(probe(rate_of(hi_k)).accepted_flit_rate,
                            rate_of(hi_k));
    return result;
  }

  // Full-rate probe first: if the network keeps up with offered = 1.0 it is
  // injection-limited, not network-limited. With an executor, speculate the
  // first two binary-search levels alongside it — they are the probes the
  // search will want next unless the full-rate probe short-circuits.
  if (executor != nullptr && opts.iterations >= 2) {
    ensure({1.0, 0.5, 0.25, 0.75});
  } else if (executor != nullptr && opts.iterations == 1) {
    ensure({1.0, 0.5});
  }
  {
    const auto& full = probe(1.0);
    if (stable(full)) {
      result.saturation_flit_rate = 1.0;
      result.accepted_flit_rate = full.accepted_flit_rate;
      return result;
    }
  }

  double lo = 0.0;  // known stable
  double hi = 1.0;  // known unstable
  double accepted_at_lo = 0.0;
  auto step = [&](const ThroughputResult& r, double mid) {
    if (stable(r)) {
      lo = mid;
      accepted_at_lo = r.accepted_flit_rate;
    } else {
      hi = mid;
    }
  };
  for (int i = 0; i < opts.iterations; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (executor != nullptr && i + 1 < opts.iterations) {
      // Probe the midpoint and both possible next midpoints in one parallel
      // batch, then consume two levels of the search from the memo.
      ensure({mid, (lo + mid) / 2.0, (mid + hi) / 2.0});
      step(memo.at(rate_key(mid)), mid);
      ++i;
      const double mid2 = (lo + hi) / 2.0;
      step(memo.at(rate_key(mid2)), mid2);
    } else {
      step(probe(mid), mid);
    }
  }
  result.saturation_flit_rate = lo;
  // If the search never found a stable point above 0 (pathological), report
  // the accepted rate of the lowest unstable probe as a best effort.
  result.accepted_flit_rate =
      lo > 0.0 ? accepted_at_lo
               : std::min(probe(hi).accepted_flit_rate, hi);
  return result;
}

}  // namespace hm::noc
