#include "noc/simulator.hpp"

#include <algorithm>

namespace hm::noc {

Simulator::Simulator(const graph::Graph& g, const SimConfig& cfg)
    : cfg_(cfg), net_(g, cfg), rng_(cfg.seed) {}

void Simulator::tick(SyntheticTraffic& traffic) {
  const std::size_t n_eps = net_.num_endpoints();
  for (std::size_t e = 0; e < n_eps; ++e) {
    auto packet =
        traffic.maybe_generate(static_cast<std::uint16_t>(e), now_, rng_);
    if (packet.has_value()) {
      // A full source queue throttles the offered load (the generated packet
      // is dropped at the source, exactly like BookSim's finite source
      // queues under saturation).
      if (net_.endpoint(e).try_enqueue(*packet)) {
        ++packets_admitted_;
      } else {
        ++packets_dropped_;
      }
    }
  }
  net_.step(now_, rng_);
  ++now_;
}

LatencyResult Simulator::run_latency(double flit_rate, Cycle warmup,
                                     Cycle measure, Cycle drain_limit) {
  SyntheticTraffic traffic(traffic_spec_, net_.num_endpoints(), flit_rate,
                           cfg_.packet_length);
  const Cycle window_begin = now_ + warmup;
  const Cycle window_end = window_begin + measure;
  for (std::size_t e = 0; e < net_.num_endpoints(); ++e) {
    net_.endpoint(e).set_measurement_window(window_begin, window_end);
  }

  // Count tagged packets at generation time (enqueue success) so the drain
  // condition is exact.
  std::uint64_t tagged_generated = 0;
  {
    // Warmup + measurement window.
    while (now_ < window_end) {
      const bool in_window = now_ >= window_begin;
      const std::size_t n_eps = net_.num_endpoints();
      for (std::size_t e = 0; e < n_eps; ++e) {
        auto packet =
            traffic.maybe_generate(static_cast<std::uint16_t>(e), now_, rng_);
        if (!packet.has_value()) continue;
        if (net_.endpoint(e).try_enqueue(*packet)) {
          ++packets_admitted_;
          if (in_window) ++tagged_generated;
        } else {
          ++packets_dropped_;
        }
      }
      net_.step(now_, rng_);
      ++now_;
    }
  }

  auto tagged_delivered = [this] {
    std::uint64_t total = 0;
    for (std::size_t e = 0; e < net_.num_endpoints(); ++e) {
      total += net_.endpoint(e).sink().tagged_packets;
    }
    return total;
  };

  // Drain phase: keep offering traffic (BookSim semantics) until every
  // tagged packet is delivered.
  const Cycle drain_end = window_end + drain_limit;
  while (tagged_delivered() < tagged_generated && now_ < drain_end) {
    tick(traffic);
  }

  LatencyResult result;
  result.packets_measured = tagged_delivered();
  result.drained = result.packets_measured == tagged_generated;
  std::uint64_t latency_sum = 0;
  for (std::size_t e = 0; e < net_.num_endpoints(); ++e) {
    latency_sum += net_.endpoint(e).sink().tagged_latency_sum;
  }
  result.avg_packet_latency =
      result.packets_measured == 0
          ? 0.0
          : static_cast<double>(latency_sum) /
                static_cast<double>(result.packets_measured);
  return result;
}

ThroughputResult Simulator::run_throughput(double flit_rate, Cycle warmup,
                                           Cycle measure) {
  SyntheticTraffic traffic(traffic_spec_, net_.num_endpoints(), flit_rate,
                           cfg_.packet_length);
  const Cycle measure_begin = now_ + warmup;
  const Cycle measure_end = measure_begin + measure;
  while (now_ < measure_begin) tick(traffic);

  const std::uint64_t ejected_before = net_.total_flits_ejected();
  const std::uint64_t admitted_before = packets_admitted_;
  const std::uint64_t dropped_before = packets_dropped_;
  while (now_ < measure_end) tick(traffic);
  const std::uint64_t ejected_after = net_.total_flits_ejected();

  ThroughputResult result;
  result.offered_flit_rate = flit_rate;
  const double window_endpoints =
      static_cast<double>(measure) * static_cast<double>(net_.num_endpoints());
  result.accepted_flit_rate =
      static_cast<double>(ejected_after - ejected_before) / window_endpoints;
  result.generated_flit_rate =
      static_cast<double>((packets_admitted_ - admitted_before) *
                          static_cast<std::uint64_t>(cfg_.packet_length)) /
      window_endpoints;
  result.dropped_packets = packets_dropped_ - dropped_before;
  return result;
}

SaturationResult find_saturation(const graph::Graph& g, const SimConfig& cfg,
                                 const SaturationSearchOptions& opts,
                                 const TrafficSpec& traffic) {
  SaturationResult result;
  auto probe = [&](double rate) {
    Simulator sim(g, cfg);  // fresh network per probe
    sim.set_traffic(traffic);
    ++result.probes;
    return sim.run_throughput(rate, opts.warmup, opts.measure);
  };
  // Stable = the source queues never overflowed during the measurement
  // window (the knee indicator) and the ejected rate keeps up with the
  // offered rate (guards against slowly-filling in-network congestion).
  auto stable = [&](const ThroughputResult& r) {
    return r.dropped_packets == 0 &&
           r.accepted_flit_rate >= opts.stability * r.offered_flit_rate;
  };

  // Full-rate probe first: if the network keeps up with offered = 1.0 it is
  // injection-limited, not network-limited.
  {
    const auto full = probe(1.0);
    if (stable(full)) {
      result.saturation_flit_rate = 1.0;
      result.accepted_flit_rate = full.accepted_flit_rate;
      return result;
    }
  }

  double lo = 0.0;  // known stable
  double hi = 1.0;  // known unstable
  double accepted_at_lo = 0.0;
  for (int i = 0; i < opts.iterations; ++i) {
    const double mid = (lo + hi) / 2.0;
    const auto r = probe(mid);
    if (stable(r)) {
      lo = mid;
      accepted_at_lo = r.accepted_flit_rate;
    } else {
      hi = mid;
    }
  }
  result.saturation_flit_rate = lo;
  // If the search never found a stable point above 0 (pathological), report
  // the accepted rate of the lowest unstable probe as a best effort.
  result.accepted_flit_rate =
      lo > 0.0 ? accepted_at_lo
               : std::min(probe(hi).accepted_flit_rate, hi);
  return result;
}

}  // namespace hm::noc
