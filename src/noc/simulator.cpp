#include "noc/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace hm::noc {

Simulator::Simulator(const graph::Graph& g, const SimConfig& cfg)
    : Simulator(TopologyContext::acquire(g), cfg) {}

Simulator::Simulator(std::shared_ptr<const TopologyContext> topo,
                     const SimConfig& cfg)
    : cfg_(cfg),
      lease_(SimulationArena::owned(std::move(topo), cfg)),
      net_(lease_.network()),
      rng_(cfg.seed) {}

Simulator::Simulator(SimulationArena& arena,
                     std::shared_ptr<const TopologyContext> topo,
                     const SimConfig& cfg)
    : cfg_(cfg),
      lease_(arena.lease(std::move(topo), cfg)),
      net_(lease_.network()),
      rng_(cfg.seed) {}

Simulator::~Simulator() {
  if (!telemetry::enabled()) return;
  static telemetry::Counter flits_routed("sim.flits_routed");
  static telemetry::Counter va_stalls("sim.va_stall_cycles");
  static telemetry::Counter sa_conflicts("sim.sa_conflict_stalls");
  static telemetry::Counter sa_credit("sim.sa_credit_stalls");
  static telemetry::Counter revoked("sim.heads_revoked");
  static telemetry::Counter admitted("sim.packets_admitted");
  static telemetry::Counter dropped("sim.packets_dropped");
  static telemetry::Gauge ring_hwm("sim.ring_hwm");
  static telemetry::Gauge source_hwm("sim.source_queue_hwm");
  const Network::HotStats s = net_.hot_stats();
  flits_routed.add(s.routers.flits_routed);
  va_stalls.add(s.routers.va_stall_cycles);
  sa_conflicts.add(s.routers.sa_conflict_stalls);
  sa_credit.add(s.routers.sa_credit_stalls);
  revoked.add(s.routers.heads_revoked);
  admitted.add(packets_admitted_);
  dropped.add(packets_dropped_);
  ring_hwm.set_max(s.routers.ring_hwm);
  source_hwm.set_max(s.source_queue_hwm);
}

void Simulator::set_traffic(const TrafficSpec& spec) {
  spec.validate(net_.num_endpoints());
  traffic_spec_ = spec;
}

void Simulator::tick(SyntheticTraffic& traffic) {
  const std::size_t n_eps = net_.num_endpoints();
  for (std::size_t e = 0; e < n_eps; ++e) {
    auto packet =
        traffic.maybe_generate(static_cast<std::uint16_t>(e), now_, rng_);
    if (packet.has_value()) {
      // A full source queue throttles the offered load (the generated packet
      // is dropped at the source, exactly like BookSim's finite source
      // queues under saturation).
      if (net_.endpoint(e).try_enqueue(*packet)) {
        ++packets_admitted_;
      } else {
        ++packets_dropped_;
      }
    }
  }
  net_.step(now_, rng_);
  ++now_;
}

LatencyResult Simulator::run_latency(double flit_rate, Cycle warmup,
                                     Cycle measure, Cycle drain_limit) {
  SyntheticTraffic traffic(traffic_spec_, net_.num_endpoints(), flit_rate,
                           cfg_.packet_length);
  const Cycle window_begin = now_ + warmup;
  const Cycle window_end = window_begin + measure;
  for (std::size_t e = 0; e < net_.num_endpoints(); ++e) {
    net_.endpoint(e).set_measurement_window(window_begin, window_end);
  }

  // Count tagged packets at generation time (enqueue success) so the drain
  // condition is exact.
  std::uint64_t tagged_generated = 0;
  {
    // Warmup + measurement window.
    while (now_ < window_end) {
      const bool in_window = now_ >= window_begin;
      const std::size_t n_eps = net_.num_endpoints();
      for (std::size_t e = 0; e < n_eps; ++e) {
        auto packet =
            traffic.maybe_generate(static_cast<std::uint16_t>(e), now_, rng_);
        if (!packet.has_value()) continue;
        if (net_.endpoint(e).try_enqueue(*packet)) {
          ++packets_admitted_;
          if (in_window) ++tagged_generated;
        } else {
          ++packets_dropped_;
        }
      }
      net_.step(now_, rng_);
      ++now_;
    }
  }

  auto tagged_delivered = [this] {
    std::uint64_t total = 0;
    for (std::size_t e = 0; e < net_.num_endpoints(); ++e) {
      total += net_.endpoint(e).sink().tagged_packets;
    }
    return total;
  };

  // Drain phase: keep offering traffic (BookSim semantics) until every
  // tagged packet is delivered.
  const Cycle drain_end = window_end + drain_limit;
  while (tagged_delivered() < tagged_generated && now_ < drain_end) {
    tick(traffic);
  }

  LatencyResult result;
  result.packets_measured = tagged_delivered();
  result.drained = result.packets_measured == tagged_generated;
  std::uint64_t latency_sum = 0;
  for (std::size_t e = 0; e < net_.num_endpoints(); ++e) {
    latency_sum += net_.endpoint(e).sink().tagged_latency_sum;
  }
  result.avg_packet_latency =
      result.packets_measured == 0
          ? 0.0
          : static_cast<double>(latency_sum) /
                static_cast<double>(result.packets_measured);
  return result;
}

ThroughputResult Simulator::run_throughput(double flit_rate, Cycle warmup,
                                           Cycle measure) {
  SyntheticTraffic traffic(traffic_spec_, net_.num_endpoints(), flit_rate,
                           cfg_.packet_length);
  const Cycle measure_begin = now_ + warmup;
  const Cycle measure_end = measure_begin + measure;
  while (now_ < measure_begin) tick(traffic);

  const std::uint64_t ejected_before = net_.total_flits_ejected();
  const std::uint64_t admitted_before = packets_admitted_;
  const std::uint64_t dropped_before = packets_dropped_;
  while (now_ < measure_end) tick(traffic);
  const std::uint64_t ejected_after = net_.total_flits_ejected();

  ThroughputResult result;
  result.offered_flit_rate = flit_rate;
  const double window_endpoints =
      static_cast<double>(measure) * static_cast<double>(net_.num_endpoints());
  result.accepted_flit_rate =
      static_cast<double>(ejected_after - ejected_before) / window_endpoints;
  result.generated_flit_rate =
      static_cast<double>((packets_admitted_ - admitted_before) *
                          static_cast<std::uint64_t>(cfg_.packet_length)) /
      window_endpoints;
  result.dropped_packets = packets_dropped_ - dropped_before;
  return result;
}

std::uint64_t saturation_rate_key(double rate) noexcept {
  if (std::isnan(rate)) {
    // Any NaN payload (or sign) collapses onto the canonical quiet NaN.
    return std::bit_cast<std::uint64_t>(
        std::numeric_limits<double>::quiet_NaN());
  }
  if (rate == 0.0) rate = 0.0;  // collapse -0.0 onto +0.0 (they compare ==)
  return std::bit_cast<std::uint64_t>(rate);
}

SaturationResult find_saturation(const graph::Graph& g, const SimConfig& cfg,
                                 const SaturationSearchOptions& opts,
                                 const TrafficSpec& traffic,
                                 ProbeExecutor* executor) {
  // One topology build (or cache hit) for the whole probe sequence.
  return find_saturation(TopologyContext::acquire(g), cfg, opts, traffic,
                         executor);
}

SaturationResult find_saturation(std::shared_ptr<const TopologyContext> topo,
                                 const SimConfig& cfg,
                                 const SaturationSearchOptions& opts,
                                 const TrafficSpec& traffic,
                                 ProbeExecutor* executor) {
  if (topo == nullptr) {
    throw std::invalid_argument("find_saturation: null topology context");
  }
  traffic.validate(topo->node_count() *
                   static_cast<std::size_t>(cfg.endpoints_per_chiplet));
  telemetry::Span search_span("sat.search");
  SaturationResult result;

  // A probe's outcome is a pure function of its offered rate: it runs on a
  // fresh network whose seed depends only on (cfg.seed, rate). That is the
  // invariant that makes speculative parallel probing below bit-identical
  // to the sequential search.
  auto run_one = [&](double rate) {
    telemetry::Span span("sat.probe");
    static telemetry::Counter probes_run("sat.probes");
    probes_run.add();
    SimConfig probe_cfg = cfg;
    if (opts.per_probe_seeds) {
      probe_cfg.seed = derive_seed(cfg.seed, saturation_rate_key(rate));
    }
    // Reset-and-reuse network from the calling worker's arena (bit-identical
    // to a fresh network on the shared topology, minus the allocator churn).
    Simulator sim(SimulationArena::local(), topo, probe_cfg);
    sim.set_traffic(traffic);
    return sim.run_throughput(rate, opts.warmup, opts.measure);
  };

  // Memoized probes, batched through the executor when one is available.
  // Keyed by the rate's canonicalized bit pattern (saturation_rate_key:
  // -0.0 folded onto +0.0, NaNs onto one NaN): probe rates repeat exactly
  // (they are recomputed from the same midpoint arithmetic), so an O(1)
  // bit-equality hash lookup replaces ordered exact-double operator<
  // comparisons on the probe path.
  std::unordered_map<std::uint64_t, ThroughputResult> memo;
  const auto rate_key = [](double rate) { return saturation_rate_key(rate); };
  auto ensure = [&](std::initializer_list<double> rates) {
    std::vector<double> missing;
    for (double r : rates) {
      if (!memo.contains(rate_key(r)) &&
          std::find(missing.begin(), missing.end(), r) == missing.end()) {
        missing.push_back(r);
      }
    }
    if (missing.empty()) return;
    result.probes += static_cast<int>(missing.size());
    if (executor != nullptr && missing.size() > 1) {
      std::vector<ThroughputResult> out(missing.size());
      std::vector<std::function<void()>> jobs;
      jobs.reserve(missing.size());
      for (std::size_t i = 0; i < missing.size(); ++i) {
        jobs.push_back([&, i] { out[i] = run_one(missing[i]); });
      }
      executor->run_batch(jobs);
      for (std::size_t i = 0; i < missing.size(); ++i) {
        memo.emplace(rate_key(missing[i]), out[i]);
      }
    } else {
      for (double r : missing) memo.emplace(rate_key(r), run_one(r));
    }
  };
  auto probe = [&](double rate) -> const ThroughputResult& {
    ensure({rate});
    return memo.at(rate_key(rate));
  };

  // Stable = the source queues never overflowed during the measurement
  // window (the knee indicator) and the ejected rate keeps up with the
  // offered rate (guards against slowly-filling in-network congestion).
  auto stable = [&](const ThroughputResult& r) {
    return r.dropped_packets == 0 &&
           r.accepted_flit_rate >= opts.stability * r.offered_flit_rate;
  };

  // Full-rate probe first: if the network keeps up with offered = 1.0 it is
  // injection-limited, not network-limited. With an executor, speculate the
  // first two binary-search levels alongside it — they are the probes the
  // search will want next unless the full-rate probe short-circuits.
  if (executor != nullptr && opts.iterations >= 2) {
    ensure({1.0, 0.5, 0.25, 0.75});
  } else if (executor != nullptr && opts.iterations == 1) {
    ensure({1.0, 0.5});
  }
  {
    const auto& full = probe(1.0);
    if (stable(full)) {
      result.saturation_flit_rate = 1.0;
      result.accepted_flit_rate = full.accepted_flit_rate;
      return result;
    }
  }

  double lo = 0.0;  // known stable
  double hi = 1.0;  // known unstable
  double accepted_at_lo = 0.0;
  auto step = [&](const ThroughputResult& r, double mid) {
    if (stable(r)) {
      lo = mid;
      accepted_at_lo = r.accepted_flit_rate;
    } else {
      hi = mid;
    }
  };
  for (int i = 0; i < opts.iterations; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (executor != nullptr && i + 1 < opts.iterations) {
      // Probe the midpoint and both possible next midpoints in one parallel
      // batch, then consume two levels of the search from the memo.
      ensure({mid, (lo + mid) / 2.0, (mid + hi) / 2.0});
      step(memo.at(rate_key(mid)), mid);
      ++i;
      const double mid2 = (lo + hi) / 2.0;
      step(memo.at(rate_key(mid2)), mid2);
    } else {
      step(probe(mid), mid);
    }
  }
  result.saturation_flit_rate = lo;
  // If the search never found a stable point above 0 (pathological), report
  // the accepted rate of the lowest unstable probe as a best effort.
  result.accepted_flit_rate =
      lo > 0.0 ? accepted_at_lo
               : std::min(probe(hi).accepted_flit_rate, hi);
  return result;
}

}  // namespace hm::noc
