// Fixed-latency channels: flits and credits are scheduled with an arrival
// cycle and delivered in FIFO order. Arrival times are monotone because the
// sender schedules at (now + constant latency), so a deque suffices.
#pragma once

#include <cassert>
#include <deque>
#include <utility>

#include "noc/flit.hpp"

namespace hm::noc {

/// FIFO delay line carrying flits.
class FlitChannel {
 public:
  void push(const Flit& f, Cycle arrival) {
    assert(q_.empty() || q_.back().first <= arrival);
    q_.emplace_back(arrival, f);
  }
  [[nodiscard]] bool ready(Cycle now) const {
    return !q_.empty() && q_.front().first <= now;
  }
  Flit pop() {
    Flit f = q_.front().second;
    q_.pop_front();
    return f;
  }
  [[nodiscard]] std::size_t in_flight() const { return q_.size(); }

 private:
  std::deque<std::pair<Cycle, Flit>> q_;
};

/// FIFO delay line carrying credit returns (the VC being credited).
class CreditChannel {
 public:
  void push(int vc, Cycle arrival) {
    assert(q_.empty() || q_.back().first <= arrival);
    q_.emplace_back(arrival, vc);
  }
  [[nodiscard]] bool ready(Cycle now) const {
    return !q_.empty() && q_.front().first <= now;
  }
  int pop() {
    const int vc = q_.front().second;
    q_.pop_front();
    return vc;
  }
  [[nodiscard]] std::size_t in_flight() const { return q_.size(); }

 private:
  std::deque<std::pair<Cycle, int>> q_;
};

}  // namespace hm::noc
