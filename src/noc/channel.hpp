// Fixed-latency channels: flits and credits are scheduled with an arrival
// cycle and delivered in FIFO order. Arrival times are monotone because the
// sender schedules at (now + constant latency), so a FIFO ring suffices; the
// in-flight count is bounded by the link latency (one push per cycle, and
// everything older than `latency` cycles has already been delivered), which
// lets Network pre-size every channel for allocation-free steady state.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>

#include "noc/flit.hpp"
#include "noc/ring_buffer.hpp"

namespace hm::noc {

/// FIFO delay line carrying `Payload` values tagged with an arrival cycle.
template <typename Payload>
class TimedRing {
 public:
  /// Pre-sizes the ring (see Network; the channel still grows if exceeded).
  void reserve(std::size_t min_capacity) { q_.reserve(min_capacity); }

  void push(const Payload& v, Cycle arrival) {
    assert(q_.empty() || q_.back().at <= arrival);
    q_.push_back(Slot{arrival, v});
  }
  [[nodiscard]] bool ready(Cycle now) const {
    return !q_.empty() && q_.front().at <= now;
  }
  Payload pop() {
    Payload v = q_.front().v;
    q_.pop_front();
    return v;
  }
  [[nodiscard]] std::size_t in_flight() const { return q_.size(); }

  /// Visits every in-flight payload in FIFO order (fault excision).
  template <typename Fn>
  void for_each(Fn fn) const {
    for (std::size_t i = 0; i < q_.size(); ++i) fn(q_[i].v);
  }

  /// Removes every in-flight payload for which `pred(payload)` is true,
  /// preserving the order and arrival times of the survivors. Returns the
  /// number removed. Fault-excision only — O(in_flight) rebuild.
  template <typename Pred>
  std::size_t remove_if(Pred pred) {
    const std::size_t before = q_.size();
    RingQueue<Slot> kept;
    kept.reserve(q_.capacity());
    for (std::size_t i = 0; i < before; ++i) {
      if (!pred(q_[i].v)) kept.push_back(q_[i]);
    }
    if (kept.size() == before) return 0;
    q_ = std::move(kept);
    return before - q_.size();
  }

  /// Drops everything in flight, keeping the allocation (arena reset).
  void clear() noexcept { q_.clear(); }

 private:
  struct Slot {
    Cycle at = 0;
    Payload v{};
  };
  RingQueue<Slot> q_;
};

/// FIFO delay line carrying flits.
using FlitChannel = TimedRing<Flit>;

/// FIFO delay line carrying credit returns (the VC being credited).
using CreditChannel = TimedRing<int>;

}  // namespace hm::noc
