// Input-queued virtual-channel router with credit-based wormhole flow
// control, modelled after BookSim2's router (paper Sec. VI-A: 3-cycle router
// latency, 8 VCs, 8-flit buffers).
//
// Pipeline per packet: route computation (RC) when the head flit reaches the
// buffer front, VC allocation (VA) of an output VC, then per-flit switch
// allocation (SA) and traversal. Heads prefer minimal adaptive VCs (1..V-1)
// and fall back to the up*/down* escape VC 0; a head that holds an output VC
// with zero credits and has not yet sent any flit releases it and re-enters
// VA, so a blocked packet can always reach the deadlock-free escape network
// (Duato's protocol, conservative stay-on-escape variant).
//
// Hot-path layout: input and output VC state lives in flat [port*vcs + vc]
// arrays (one contiguous block each, walked linearly every cycle), flit
// buffers are fixed-capacity rings sized to buffer_depth, and the switch
// allocator's matching scratch is preallocated — a steady-state step() does
// no heap allocation. Flits are 8-byte routing words (see flit.hpp); the
// only cold data a router ever needs — the destination endpoint for
// ejection-port routing — is looked up once per packet in the Network's
// PacketTable when the head flit is route-computed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "noc/channel.hpp"
#include "noc/config.hpp"
#include "noc/flit.hpp"
#include "noc/ring_buffer.hpp"
#include "noc/routing.hpp"
#include "noc/rng.hpp"

namespace hm::noc {

/// One router; ports 0..deg-1 connect to neighbour routers (in the order of
/// graph.neighbors(id)), ports deg..deg+E-1 connect to the local endpoints.
class Router {
 public:
  /// Hot-path event counters, kept as plain members (bumping them is a
  /// register increment, cheap enough to run unconditionally) and flushed
  /// into the telemetry registry by ~Simulator when telemetry is enabled.
  /// Zeroed by reset() like every other mutable field.
  struct HotStats {
    std::uint64_t flits_routed = 0;       ///< switch grants (flit traversals)
    std::uint64_t va_stall_cycles = 0;    ///< VC-allocation failures
    std::uint64_t sa_conflict_stalls = 0; ///< SA loss: input port taken
    std::uint64_t sa_credit_stalls = 0;   ///< SA loss: zero output credits
    std::uint64_t heads_revoked = 0;      ///< escape-fallback revocations
    std::uint64_t ring_hwm = 0;           ///< max input RingQueue occupancy
  };

  /// `tables` must outlive the router (it lives in the shared
  /// TopologyContext that the owning Network keeps alive); `packets` is the
  /// owning Network's packet table (read at RC for ejection routing). A
  /// null `packets` is only valid for routers that never eject, e.g. the
  /// wiring-validation unit tests.
  Router(std::uint32_t id, const SimConfig& cfg, const RoutingTables* tables,
         const PacketTable* packets = nullptr);

  /// Wires output port `port`: flits sent there arrive after `latency`.
  void wire_output(std::size_t port, FlitChannel* channel, int latency);

  /// Wires the credit return path of input port `port` (credits for freed
  /// buffer slots are sent there after `latency`).
  void wire_credit_return(std::size_t port, CreditChannel* channel,
                          int latency);

  /// Delivers a flit into input port `port`, VC `f.vc`.
  void receive_flit(std::size_t port, Flit f, Cycle now);

  /// Delivers a credit for output port `port`, VC `vc`.
  void receive_credit(std::size_t port, int vc);

  /// One cycle: RC, VA, SA (+ escape-fallback revocation). Arbitration
  /// draws come from the router's own RNG stream (seeded from the config
  /// seed and the router id), and the fair-allocation round-robin offsets
  /// are derived from `now` — so a step on an empty router is an observable
  /// no-op and the active-set stepper can skip drained routers without
  /// perturbing any later draw or arbitration decision.
  void step(Cycle now);

  /// Re-seeds the router's RNG stream as derive_seed(derive_seed(base,
  /// router-stream salt), id). Called by Network::seed_rngs when a Simulator
  /// adopts a leased network whose cached config carries a stale seed.
  void seed_rng(std::uint64_t base);

  /// Rewinds every mutable field to the freshly-constructed state (arena
  /// reuse). Must stay exhaustive: a reset router has to be bit-identical
  /// to a new one (test_arena pins this).
  void reset();

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::size_t network_ports() const noexcept {
    return n_network_ports_;
  }
  [[nodiscard]] std::size_t total_ports() const noexcept { return n_ports_; }

  /// Total flits currently buffered (for conservation checks; O(VCs) scan).
  [[nodiscard]] std::size_t buffered_flits() const;

  /// O(1) buffered-flit count, maintained incrementally. Zero is exactly
  /// the active-set idle criterion: a router with no buffered flits has no
  /// RC/VA/SA work and its step is an observable no-op (pending credits
  /// only top counters up; they cannot trigger an action on their own).
  [[nodiscard]] std::size_t buffered_flit_count() const noexcept {
    return buffered_;
  }

  [[nodiscard]] const HotStats& hot_stats() const noexcept { return stats_; }

  /// Switch-allocation scratch, valid immediately after step(): which
  /// output ports pushed a flit into their channel this step, and which
  /// input ports had a grant (and therefore returned a credit upstream
  /// when a credit channel is wired). The active-set stepper arms exactly
  /// the channels these ports feed instead of re-scanning every channel
  /// adjacent to the router.
  [[nodiscard]] const std::vector<char>& out_ports_pushed() const noexcept {
    return sa_out_port_used_;
  }
  [[nodiscard]] const std::vector<char>& in_ports_granted() const noexcept {
    return sa_in_port_used_;
  }

  /// Validates internal invariants (buffer bounds, credit bounds, ownership
  /// consistency). Returns false and fills `why` on violation.
  [[nodiscard]] bool invariants_ok(std::string* why = nullptr) const;

  // --- Fault-injection hooks (cold path; driven by Network) -----------------

  /// Installs (or, with nullptrs, removes) a degraded routing view: lookups
  /// go through `tables` with this router's and the destination's ids
  /// translated by `live_id`, and the returned ports translated back to
  /// physical ports by `port_map`. The pointed-to storage is owned by the
  /// Network and outlives the view.
  void set_degraded(const RoutingTables* tables,
                    const std::uint32_t* live_id,
                    const std::uint8_t* port_map);

  /// Kills network port `port`: output and credit-return channels are
  /// detached (SA already skips null output channels) and the output VC
  /// credits and free-adaptive count drop to zero so no new allocation can
  /// target the port. Callers must excise in-flight state afterwards
  /// (fault_excise) — the port's output VCs may still have owners here.
  void fault_kill_port(std::size_t port);

  /// Restores a killed port after a repair: rewires the channels and
  /// refills credits / free-adaptive to the fresh-build state. The port's
  /// output VCs must be ownerless (guaranteed after fault_excise).
  void fault_restore_port(std::size_t port, FlitChannel* out, int out_latency,
                          CreditChannel* credit, int credit_latency);

  /// Refunds one output-VC credit (upstream side of an excised flit).
  void fault_refund_credit(std::size_t port, int vc);

  /// Packets that already sent flits toward a now-dead output port (the
  /// wormhole body is severed mid-link): appended to `out` so the caller
  /// can poison them network-wide. Zero-progress allocations are left for
  /// fault_excise to revoke.
  void fault_collect_committed(const std::function<bool(std::size_t)>& dead_out,
                               std::vector<std::uint32_t>* out) const;

  /// Every packet with state in this router (buffered flits or a tracked
  /// in-progress transmission) — used to poison a killed router wholesale.
  void fault_collect_all(std::vector<std::uint32_t>* out) const;

  struct FaultExcision {
    std::uint64_t flits_removed = 0;
    std::uint64_t packets_rerouted = 0;
  };

  /// Removes every buffered flit whose packet `poisoned(id)` approves,
  /// resets the state machines of the affected input VCs, and revokes
  /// zero-progress allocations toward `dead_out` ports (those packets
  /// re-route on the degraded tables). `refund(in_port, vc)` fires once per
  /// removed flit so the Network can credit the upstream sender; releases
  /// never re-grow free_adaptive_ of a dead output port.
  FaultExcision fault_excise(
      const std::function<bool(std::uint32_t)>& poisoned,
      const std::function<bool(std::size_t)>& dead_out,
      const std::function<void(std::size_t, int)>& refund);

 private:
  enum class VcState : std::uint8_t { kIdle, kNeedsVc, kActive };

  /// A buffered flit: the 8-byte routing word plus the cycle it becomes
  /// eligible for switch allocation (arrival + router_latency).
  struct BufFlit {
    Flit flit;
    Cycle ready_time = 0;
  };

  struct InputVc {
    RingQueue<BufFlit> buf;
    VcState state = VcState::kIdle;
    int out_port = -1;
    int out_vc = -1;
    bool out_is_ejection = false;
    bool escape = false;          ///< current packet leaves via escape VC
    std::uint8_t next_phase = 0;  ///< up*/down* phase after the escape hop
    int flits_sent = 0;           ///< flits of the current packet sent on
    int blocked_cycles = 0;       ///< VA failures since the header arrived
    /// Packet being routed while state != kIdle. The buffer can drain to
    /// empty mid-packet (body still upstream), so fault excision needs the
    /// id recorded at route compute, not the front flit.
    std::uint32_t cur_packet = 0;
  };

  struct OutputVc {
    int credits = 0;
    int owner = -1;  ///< flat input-VC index holding this VC, or -1
  };

  [[nodiscard]] int flat(std::size_t port, int vc) const {
    return static_cast<int>(port) * cfg_.vcs + vc;
  }

  /// Marks flat input VC `iv_flat` as requesting output port `out_p` (set
  /// exactly while the VC is kActive), so the switch allocator can walk
  /// requesters with countr_zero instead of scanning every input VC. The
  /// per-port requester count lets SA skip request-free ports with one
  /// load instead of probing an empty mask per port per cycle.
  void mark_request(std::size_t out_p, int iv_flat) {
    sa_request_mask_[out_p * mask_words_ +
                     (static_cast<std::size_t>(iv_flat) >> 6)] |=
        1ULL << (iv_flat & 63);
    ++sa_req_count_[out_p];
  }
  void clear_request(std::size_t out_p, int iv_flat) {
    sa_request_mask_[out_p * mask_words_ +
                     (static_cast<std::size_t>(iv_flat) >> 6)] &=
        ~(1ULL << (iv_flat & 63));
    --sa_req_count_[out_p];
  }

  void route_compute(InputVc& iv, int iv_flat);
  bool try_allocate_vc(InputVc& iv, int iv_flat);
  void switch_allocate(Cycle now);
  void revoke_blocked_heads();

  std::uint32_t id_;
  SimConfig cfg_;
  const RoutingTables* tables_;
  const PacketTable* packets_;

  // Degraded routing view (all null when healthy — the single null check in
  // VA is the only fault cost on the hot path). See set_degraded().
  const RoutingTables* deg_tables_ = nullptr;
  const std::uint32_t* deg_live_ = nullptr;
  const std::uint8_t* deg_port_map_ = nullptr;

  std::size_t n_network_ports_;
  std::size_t n_ports_;

  std::vector<InputVc> in_;   ///< flat [port*vcs + vc]
  std::vector<OutputVc> out_; ///< flat [port*vcs + vc]
  std::vector<FlitChannel*> out_channel_;
  std::vector<int> out_latency_;
  std::vector<CreditChannel*> credit_channel_;
  std::vector<int> credit_latency_;

  // Round-robin state for fair allocation. The VA and SA-output starting
  // offsets are derived from the cycle number (now % size) instead of being
  // incremented per step, so a router skipped while idle resumes with
  // exactly the offsets a densely-stepped router would have. sa_in_rr_
  // advances only on grants, which cannot happen while idle.
  std::vector<int> sa_in_rr_;  ///< per output port, over flat input-VC ids

  // Preallocated switch-allocation scratch (per-cycle matching state).
  std::vector<char> sa_in_port_used_;
  std::vector<char> sa_out_port_used_;

  // Requester bitmasks: [out_port * mask_words_ + word] over flat input-VC
  // ids; bit set iff that input VC is kActive toward that output port.
  std::size_t mask_words_ = 1;
  std::vector<std::uint64_t> sa_request_mask_;
  std::vector<std::uint16_t> sa_req_count_;  ///< requesters per output port

  // Occupancy bitmask over flat input-VC ids: bit set iff the VC buffers at
  // least one flit. Every per-VC action of step() requires a buffered flit
  // (RC classifies a buffered head, VA only sees kNeedsVc VCs — whose head
  // is still buffered by construction — and the escape-fallback revocation
  // skips empty buffers; SA walks its own request masks), so RC/VA/revoke
  // walk only set bits instead of scanning every VC. The walks visit bits
  // in exactly the order the former linear scans used (ascending for
  // RC/revoke, circular from the cycle-derived offset for VA), keeping
  // arbitration and RNG draws bit-identical.
  std::vector<std::uint64_t> occupied_;

  /// Per output port: free adaptive output VCs (owner < 0 among VCs
  /// 1..vcs-1). Lets a blocked header skip a fully-owned port with one load
  /// instead of vcs-1 owner probes every VA cycle.
  std::vector<int> free_adaptive_;

  Cycle now_ = 0;  ///< updated by step(); used for SA readiness checks

  /// Per-router arbitration stream: adaptive-VC rotation draws come from
  /// here instead of a network-wide shared Rng, so skipping an idle router
  /// cannot shift any other router's draws. rng_seed_ remembers the seed so
  /// reset() rewinds the stream bit-identically.
  Rng rng_;
  std::uint64_t rng_seed_ = 0;

  std::size_t buffered_ = 0;  ///< incrementally maintained buffered flits

  HotStats stats_;
};

}  // namespace hm::noc
