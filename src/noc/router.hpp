// Input-queued virtual-channel router with credit-based wormhole flow
// control, modelled after BookSim2's router (paper Sec. VI-A: 3-cycle router
// latency, 8 VCs, 8-flit buffers).
//
// Pipeline per packet: route computation (RC) when the head flit reaches the
// buffer front, VC allocation (VA) of an output VC, then per-flit switch
// allocation (SA) and traversal. Heads prefer minimal adaptive VCs (1..V-1)
// and fall back to the up*/down* escape VC 0; a head that holds an output VC
// with zero credits and has not yet sent any flit releases it and re-enters
// VA, so a blocked packet can always reach the deadlock-free escape network
// (Duato's protocol, conservative stay-on-escape variant).
//
// Hot-path layout: input and output VC state lives in flat [port*vcs + vc]
// arrays (one contiguous block each, walked linearly every cycle), flit
// buffers are fixed-capacity rings sized to buffer_depth, and the switch
// allocator's matching scratch is preallocated — a steady-state step() does
// no heap allocation. Flits are 8-byte routing words (see flit.hpp); the
// only cold data a router ever needs — the destination endpoint for
// ejection-port routing — is looked up once per packet in the Network's
// PacketTable when the head flit is route-computed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noc/channel.hpp"
#include "noc/config.hpp"
#include "noc/flit.hpp"
#include "noc/ring_buffer.hpp"
#include "noc/routing.hpp"
#include "noc/rng.hpp"

namespace hm::noc {

/// One router; ports 0..deg-1 connect to neighbour routers (in the order of
/// graph.neighbors(id)), ports deg..deg+E-1 connect to the local endpoints.
class Router {
 public:
  /// Hot-path event counters, kept as plain members (bumping them is a
  /// register increment, cheap enough to run unconditionally) and flushed
  /// into the telemetry registry by ~Simulator when telemetry is enabled.
  /// Zeroed by reset() like every other mutable field.
  struct HotStats {
    std::uint64_t flits_routed = 0;       ///< switch grants (flit traversals)
    std::uint64_t va_stall_cycles = 0;    ///< VC-allocation failures
    std::uint64_t sa_conflict_stalls = 0; ///< SA loss: input port taken
    std::uint64_t sa_credit_stalls = 0;   ///< SA loss: zero output credits
    std::uint64_t heads_revoked = 0;      ///< escape-fallback revocations
    std::uint64_t ring_hwm = 0;           ///< max input RingQueue occupancy
  };

  /// `tables` must outlive the router (it lives in the shared
  /// TopologyContext that the owning Network keeps alive); `packets` is the
  /// owning Network's packet table (read at RC for ejection routing). A
  /// null `packets` is only valid for routers that never eject, e.g. the
  /// wiring-validation unit tests.
  Router(std::uint32_t id, const SimConfig& cfg, const RoutingTables* tables,
         const PacketTable* packets = nullptr);

  /// Wires output port `port`: flits sent there arrive after `latency`.
  void wire_output(std::size_t port, FlitChannel* channel, int latency);

  /// Wires the credit return path of input port `port` (credits for freed
  /// buffer slots are sent there after `latency`).
  void wire_credit_return(std::size_t port, CreditChannel* channel,
                          int latency);

  /// Delivers a flit into input port `port`, VC `f.vc`.
  void receive_flit(std::size_t port, Flit f, Cycle now);

  /// Delivers a credit for output port `port`, VC `vc`.
  void receive_credit(std::size_t port, int vc);

  /// One cycle: RC, VA, SA (+ escape-fallback revocation).
  void step(Cycle now, Rng& rng);

  /// Rewinds every mutable field to the freshly-constructed state (arena
  /// reuse). Must stay exhaustive: a reset router has to be bit-identical
  /// to a new one (test_arena pins this).
  void reset();

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::size_t network_ports() const noexcept {
    return n_network_ports_;
  }
  [[nodiscard]] std::size_t total_ports() const noexcept { return n_ports_; }

  /// Total flits currently buffered (for conservation checks).
  [[nodiscard]] std::size_t buffered_flits() const;

  [[nodiscard]] const HotStats& hot_stats() const noexcept { return stats_; }

  /// Validates internal invariants (buffer bounds, credit bounds, ownership
  /// consistency). Returns false and fills `why` on violation.
  [[nodiscard]] bool invariants_ok(std::string* why = nullptr) const;

 private:
  enum class VcState : std::uint8_t { kIdle, kNeedsVc, kActive };

  /// A buffered flit: the 8-byte routing word plus the cycle it becomes
  /// eligible for switch allocation (arrival + router_latency).
  struct BufFlit {
    Flit flit;
    Cycle ready_time = 0;
  };

  struct InputVc {
    RingQueue<BufFlit> buf;
    VcState state = VcState::kIdle;
    int out_port = -1;
    int out_vc = -1;
    bool out_is_ejection = false;
    bool escape = false;          ///< current packet leaves via escape VC
    std::uint8_t next_phase = 0;  ///< up*/down* phase after the escape hop
    int flits_sent = 0;           ///< flits of the current packet sent on
    int blocked_cycles = 0;       ///< VA failures since the header arrived
  };

  struct OutputVc {
    int credits = 0;
    int owner = -1;  ///< flat input-VC index holding this VC, or -1
  };

  [[nodiscard]] int flat(std::size_t port, int vc) const {
    return static_cast<int>(port) * cfg_.vcs + vc;
  }

  /// Marks flat input VC `iv_flat` as requesting output port `out_p` (set
  /// exactly while the VC is kActive), so the switch allocator can walk
  /// requesters with countr_zero instead of scanning every input VC.
  void mark_request(std::size_t out_p, int iv_flat) {
    sa_request_mask_[out_p * mask_words_ +
                     (static_cast<std::size_t>(iv_flat) >> 6)] |=
        1ULL << (iv_flat & 63);
  }
  void clear_request(std::size_t out_p, int iv_flat) {
    sa_request_mask_[out_p * mask_words_ +
                     (static_cast<std::size_t>(iv_flat) >> 6)] &=
        ~(1ULL << (iv_flat & 63));
  }

  void route_compute(InputVc& iv, int iv_flat);
  bool try_allocate_vc(InputVc& iv, int iv_flat, Rng& rng);
  void switch_allocate(Cycle now);
  void revoke_blocked_heads();

  std::uint32_t id_;
  SimConfig cfg_;
  const RoutingTables* tables_;
  const PacketTable* packets_;
  std::size_t n_network_ports_;
  std::size_t n_ports_;

  std::vector<InputVc> in_;   ///< flat [port*vcs + vc]
  std::vector<OutputVc> out_; ///< flat [port*vcs + vc]
  std::vector<FlitChannel*> out_channel_;
  std::vector<int> out_latency_;
  std::vector<CreditChannel*> credit_channel_;
  std::vector<int> credit_latency_;

  // Round-robin pointers for fair allocation.
  int va_rr_ = 0;
  int sa_out_rr_ = 0;
  std::vector<int> sa_in_rr_;  ///< per output port, over flat input-VC ids

  // Preallocated switch-allocation scratch (per-cycle matching state).
  std::vector<char> sa_in_port_used_;
  std::vector<char> sa_out_port_used_;

  // Requester bitmasks: [out_port * mask_words_ + word] over flat input-VC
  // ids; bit set iff that input VC is kActive toward that output port.
  std::size_t mask_words_ = 1;
  std::vector<std::uint64_t> sa_request_mask_;

  /// Per output port: free adaptive output VCs (owner < 0 among VCs
  /// 1..vcs-1). Lets a blocked header skip a fully-owned port with one load
  /// instead of vcs-1 owner probes every VA cycle.
  std::vector<int> free_adaptive_;

  Cycle now_ = 0;  ///< updated by step(); used for SA readiness checks

  HotStats stats_;
};

}  // namespace hm::noc
