#include "noc/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hm::noc {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double Accumulator::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    throw std::invalid_argument("percentile: empty input");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p must be in [0, 100]");
  }
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

double mean(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("mean: empty input");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("geomean: empty input");
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument("geomean: values must be positive");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace hm::noc
