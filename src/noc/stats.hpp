// Small statistics helpers for simulation results.
#pragma once

#include <cstddef>
#include <vector>

namespace hm::noc {

/// Online mean/min/max accumulator.
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0 <= p <= 100) via nearest-rank on a copy of `values`.
/// Throws std::invalid_argument for empty input or p out of range.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Arithmetic mean; throws std::invalid_argument for empty input.
[[nodiscard]] double mean(const std::vector<double>& values);

/// Geometric mean of positive values; throws on empty/non-positive input.
[[nodiscard]] double geomean(const std::vector<double>& values);

}  // namespace hm::noc
