// Simulator configuration mirroring the paper's BookSim2 setup (Sec. VI-A):
// each chiplet holds one router and two endpoints; routers have a 3-cycle
// latency, 8 virtual channels and 8-flit buffers; a D2D link (outgoing PHY +
// wire + incoming PHY) costs 27 cycles.
#pragma once

#include <stdexcept>

namespace hm::noc {

/// Routing mode of the inter-chiplet network.
enum class RoutingMode {
  /// Minimal *adaptive* routing on VCs 1..V-1 (heads may claim any free VC
  /// on any minimal output port) with a deadlock-free up*/down* escape on
  /// VC 0 (Duato's protocol). The default: shortest paths at low load, no
  /// deadlock at saturation, and no artificial hot channels from tie-break
  /// bias (see bench_ablation_routing).
  kMinimalAdaptive,
  /// Deterministic single-path minimal routing: one fixed shortest path per
  /// (node, destination) pair, lowest-port tie-break (closest to BookSim2's
  /// "anynet" tables). Systematic tie-breaking funnels disk-shaped
  /// topologies through the center; provided for ablation studies.
  kDeterministicMinimal,
  /// All packets use the up*/down* escape routing on every VC. Deadlock-free
  /// but non-minimal; provided for ablation studies.
  kUpDownOnly,
};

/// All knobs of the cycle-accurate ICI simulator.
struct SimConfig {
  int vcs = 8;                      ///< virtual channels per port
  int buffer_depth = 8;             ///< flit buffer depth per VC
  int router_latency = 3;           ///< cycles a flit spends in a router
  int link_latency = 27;            ///< D2D link cycles (PHY + wire + PHY)
  int injection_link_latency = 1;   ///< endpoint -> router cycles
  int ejection_link_latency = 1;    ///< router -> endpoint cycles
  int packet_length = 4;            ///< flits per packet
  int endpoints_per_chiplet = 2;    ///< endpoints attached to each router
  int source_queue_capacity = 16;   ///< max packets queued per endpoint
  /// Cycles a header must have waited in VC allocation before the up*/down*
  /// escape VC becomes a candidate. 0 = escape immediately on first failure.
  /// A finite threshold keeps deadlock freedom (a blocked header eventually
  /// requests the always-draining escape network) while preventing the
  /// escape tree root from becoming the bottleneck at saturation.
  int escape_threshold = 20;
  /// Switch-allocation iterations per cycle (iSLIP-style). Each iteration
  /// matches unmatched output ports to unmatched input ports; more
  /// iterations raise crossbar matching quality, which matters most for the
  /// high-radix (degree-6) brickwall/HexaMesh routers.
  int sa_iterations = 2;
  RoutingMode routing = RoutingMode::kMinimalAdaptive;
  /// Active-set stepping: Network::step walks only routers/links/endpoints
  /// that can make progress this cycle instead of sweeping every component.
  /// Results are bit-identical to the dense sweep (test_active_set pins
  /// this); the dense mode remains as the reference implementation.
  bool skip_idle = true;
  unsigned long long seed = 42;     ///< RNG seed (fully deterministic runs)

  /// Memberwise equality (keeps the arena key honest when fields are added:
  /// a new knob is automatically part of the comparison).
  [[nodiscard]] friend bool operator==(const SimConfig&,
                                       const SimConfig&) = default;

  /// True when `other` builds a bit-identical Network structure: everything
  /// but the RNG seed matches. The seed drives traffic and per-router
  /// arbitration streams; Simulator re-seeds a leased network's routers via
  /// Network::seed_rngs, so it stays out of the SimulationArena reuse key.
  [[nodiscard]] bool same_structure(const SimConfig& other) const {
    SimConfig a = *this;
    a.seed = other.seed;
    return a == other;
  }

  /// Throws std::invalid_argument when a parameter is out of range.
  void validate() const {
    if (vcs < 1 || vcs > 255) {
      throw std::invalid_argument("SimConfig: vcs must be in [1, 255]");
    }
    if (buffer_depth < 1) {
      throw std::invalid_argument("SimConfig: buffer_depth must be >= 1");
    }
    if (router_latency < 1 || link_latency < 1 ||
        injection_link_latency < 1 || ejection_link_latency < 1) {
      throw std::invalid_argument("SimConfig: latencies must be >= 1 cycle");
    }
    if (packet_length < 1 || packet_length > 0xFFFF) {
      throw std::invalid_argument("SimConfig: packet_length out of range");
    }
    if (endpoints_per_chiplet < 1) {
      throw std::invalid_argument(
          "SimConfig: endpoints_per_chiplet must be >= 1");
    }
    if (source_queue_capacity < 1) {
      throw std::invalid_argument(
          "SimConfig: source_queue_capacity must be >= 1");
    }
    if (escape_threshold < 0) {
      throw std::invalid_argument("SimConfig: escape_threshold must be >= 0");
    }
    if (sa_iterations < 1) {
      throw std::invalid_argument("SimConfig: sa_iterations must be >= 1");
    }
  }
};

}  // namespace hm::noc
