// A network endpoint: packet source (bounded source queue, credit-aware flit
// injection onto its router port) and packet sink (latency accounting over a
// measurement window). Each chiplet hosts `endpoints_per_chiplet` endpoints
// (paper Sec. VI-A uses two).
//
// SoA split: the endpoint registers each admitted packet's cold record
// (src/dst, gen_time, length) in the Network's PacketTable once and injects
// 8-byte routing words; the sink looks the record back up by packet id for
// the latency accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "noc/channel.hpp"
#include "noc/config.hpp"
#include "noc/flit.hpp"
#include "noc/ring_buffer.hpp"

namespace hm::noc {

/// Sink-side statistics of one endpoint.
struct SinkStats {
  std::uint64_t flits_ejected = 0;
  std::uint64_t packets_ejected = 0;
  /// Packets generated inside the measurement window that have been
  /// delivered, and their cumulative latency (tail ejection - generation).
  std::uint64_t tagged_packets = 0;
  std::uint64_t tagged_latency_sum = 0;
};

class Endpoint {
 public:
  /// `id` is the global endpoint id; its router is id / endpoints_per_chiplet.
  /// `packets` is the owning Network's packet table (must outlive the
  /// endpoint); source and sink both use it.
  Endpoint(std::uint16_t id, const SimConfig& cfg, PacketTable* packets);

  /// Wires the injection channel toward the local router.
  void wire_injection(FlitChannel* channel, int latency);

  /// Tries to append a packet to the source queue; false when full. On
  /// success the packet's cold record is registered in the packet table and
  /// the queued copy carries the table id.
  bool try_enqueue(const Packet& p);

  /// Delivers an injection credit for router-input VC `vc`.
  void receive_credit(int vc);

  /// Sends at most one flit of the packet currently being serialized.
  void inject(Cycle now);

  /// Sink: consumes an ejected flit (infinite acceptance). Returns true
  /// when the flit completed a packet generated inside the measurement
  /// window (the Network keeps an O(1) tagged-delivery counter from this,
  /// so drain loops stop scanning every endpoint per cycle).
  bool receive_flit(const Flit& f, Cycle now);

  /// Sets the measurement window [begin, end): packets with gen_time inside
  /// it contribute to tagged latency stats on delivery.
  void set_measurement_window(Cycle begin, Cycle end);

  /// Rewinds every mutable field to the freshly-constructed state (arena
  /// reuse). Must stay exhaustive: a reset endpoint has to be bit-identical
  /// to a new one (test_arena pins this).
  void reset();

  [[nodiscard]] const SinkStats& sink() const noexcept { return sink_; }
  [[nodiscard]] std::uint64_t flits_injected() const noexcept {
    return flits_injected_;
  }
  [[nodiscard]] std::uint64_t packets_enqueued() const noexcept {
    return packets_enqueued_;
  }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return queue_.size();
  }
  /// Max source-queue occupancy since construction/reset (telemetry HWM).
  [[nodiscard]] std::uint64_t queue_hwm() const noexcept { return queue_hwm_; }
  /// Flits belonging to enqueued-but-not-yet-fully-injected packets.
  [[nodiscard]] std::size_t pending_flits() const noexcept;

  // --- Fault-injection hooks (cold path; driven by Network) -----------------

  /// False after the endpoint's router was killed: try_enqueue refuses and
  /// the Simulator suppresses generated traffic touching the endpoint.
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  void fault_set_alive(bool alive) noexcept { alive_ = alive; }

  /// Refunds one injection credit (upstream side of an excised flit).
  void fault_refund_credit(int vc);

  /// Packet id of the front packet when its serialization already started
  /// (flits of it are in the network), or -1.
  [[nodiscard]] std::int64_t mid_serialization_packet() const noexcept {
    return next_flit_ > 0 && !queue_.empty()
               ? static_cast<std::int64_t>(queue_.front().id)
               : -1;
  }

  /// Aborts the in-progress serialization, dropping the front packet (its
  /// already-injected flits are the caller's to excise; the rest never
  /// existed on the wire).
  void fault_abort_active();

  /// Removes every queued packet `drop` approves (aborting the active
  /// serialization if the front packet matches). Returns the number
  /// removed — offered load lost before injection.
  std::size_t fault_flush_queue(const std::function<bool(const Packet&)>& drop);

  /// Restores the flow-control state of a killed/repaired endpoint to the
  /// fresh-build state (full credits, no active packet). Queue and
  /// statistics are untouched.
  void fault_reset_flow_state();

 private:
  std::uint16_t id_;
  SimConfig cfg_;
  PacketTable* packets_;
  FlitChannel* inj_channel_ = nullptr;
  int inj_latency_ = 1;

  RingQueue<Packet> queue_;  ///< bounded by source_queue_capacity
  std::vector<int> credits_;  ///< per router-input VC
  int active_vc_ = -1;        ///< VC of the packet being serialized
  int next_flit_ = 0;         ///< next flit index of the active packet
  int rr_vc_ = 0;             ///< round-robin start for VC selection
  std::uint64_t flits_injected_ = 0;
  std::uint64_t packets_enqueued_ = 0;
  std::uint64_t queue_hwm_ = 0;
  SinkStats sink_;
  Cycle window_begin_ = 0;
  Cycle window_end_ = std::numeric_limits<Cycle>::min();
  bool alive_ = true;  ///< cleared when the endpoint's router is killed
};

}  // namespace hm::noc
