#include "noc/router.hpp"

#include <cassert>
#include <stdexcept>

namespace hm::noc {

Router::Router(std::uint32_t id, const SimConfig& cfg,
               const RoutingTables* tables)
    : id_(id),
      cfg_(cfg),
      tables_(tables),
      n_network_ports_(tables->num_ports(id)),
      n_ports_(n_network_ports_ +
               static_cast<std::size_t>(cfg.endpoints_per_chiplet)) {
  cfg_.validate();
  in_.assign(n_ports_, std::vector<InputVc>(cfg_.vcs));
  out_.assign(n_ports_, std::vector<OutputVc>(cfg_.vcs));
  for (std::size_t p = 0; p < n_ports_; ++p) {
    for (int v = 0; v < cfg_.vcs; ++v) {
      // Network outputs start with the downstream buffer depth; ejection
      // outputs are modelled with effectively infinite credits (the endpoint
      // always sinks flits; the port still serializes 1 flit/cycle).
      out_[p][v].credits =
          p < n_network_ports_ ? cfg_.buffer_depth : (1 << 30);
    }
  }
  out_channel_.assign(n_ports_, nullptr);
  out_latency_.assign(n_ports_, 1);
  credit_channel_.assign(n_ports_, nullptr);
  credit_latency_.assign(n_ports_, 1);
  sa_in_rr_.assign(n_ports_, 0);
}

void Router::wire_output(std::size_t port, FlitChannel* channel, int latency) {
  if (port >= n_ports_ || channel == nullptr || latency < 1) {
    throw std::invalid_argument("Router::wire_output: bad wiring");
  }
  out_channel_[port] = channel;
  out_latency_[port] = latency;
}

void Router::wire_credit_return(std::size_t port, CreditChannel* channel,
                                int latency) {
  if (port >= n_ports_ || channel == nullptr || latency < 1) {
    throw std::invalid_argument("Router::wire_credit_return: bad wiring");
  }
  credit_channel_[port] = channel;
  credit_latency_[port] = latency;
}

void Router::receive_flit(std::size_t port, Flit f, Cycle now) {
  assert(port < n_ports_);
  assert(f.vc < cfg_.vcs);
  InputVc& iv = in_[port][f.vc];
  assert(iv.buf.size() <
         static_cast<std::size_t>(cfg_.buffer_depth));  // credits guarantee
  f.ready_time = now + cfg_.router_latency;
  iv.buf.push_back(f);
}

void Router::receive_credit(std::size_t port, int vc) {
  assert(port < n_network_ports_);
  ++out_[port][vc].credits;
  assert(out_[port][vc].credits <= cfg_.buffer_depth);
}

void Router::route_compute(InputVc& iv) {
  const Flit& head = iv.buf.front();
  assert(head.head);
  if (head.dst_router == id_) {
    // Deliver locally: ejection port of the destination endpoint.
    const int local_ep =
        static_cast<int>(head.dst_endpoint) -
        static_cast<int>(id_) * cfg_.endpoints_per_chiplet;
    assert(local_ep >= 0 && local_ep < cfg_.endpoints_per_chiplet);
    iv.out_port = static_cast<int>(n_network_ports_) + local_ep;
    iv.out_vc = 0;
    iv.out_is_ejection = true;
    iv.escape = false;
    iv.flits_sent = 0;
    iv.blocked_cycles = 0;
    iv.state = VcState::kActive;
  } else {
    iv.out_is_ejection = false;
    iv.blocked_cycles = 0;
    iv.state = VcState::kNeedsVc;
  }
}

bool Router::try_allocate_vc(InputVc& iv, int iv_flat, Rng& rng) {
  const Flit& head = iv.buf.front();
  const graph::NodeId dst = head.dst_router;

  const bool use_minimal = cfg_.routing != RoutingMode::kUpDownOnly &&
                           !head.escape && cfg_.vcs > 1;
  if (use_minimal) {
    const auto& ports = tables_->minimal_ports(id_, dst);
    std::size_t first = 0;
    std::size_t count = ports.size();
    if (cfg_.routing == RoutingMode::kDeterministicMinimal) {
      // anynet-style: one fixed shortest path per (node, destination).
      count = 1;
    } else if (ports.size() > 1) {
      // Adaptive: rotate the starting candidate to spread load.
      first = static_cast<std::size_t>(rng.uniform_int(ports.size()));
    }
    for (std::size_t i = 0; i < count; ++i) {
      const int port = ports[(i + first) % ports.size()];
      for (int vc = 1; vc < cfg_.vcs; ++vc) {
        OutputVc& ov = out_[port][vc];
        if (ov.owner < 0) {
          ov.owner = iv_flat;
          iv.out_port = port;
          iv.out_vc = vc;
          iv.escape = false;
          iv.flits_sent = 0;
          iv.state = VcState::kActive;
          return true;
        }
      }
    }
  }

  // Escape (or up*/down*-only mode): deterministic up*/down* next hop.
  // Headers that still have adaptive options only consider the escape VC
  // after `escape_threshold` blocked cycles, so the escape tree root does
  // not become the bottleneck at saturation; deadlock freedom is preserved
  // for any finite threshold (a blocked header eventually requests the
  // always-draining escape network).
  const bool allow_escape =
      !use_minimal || iv.blocked_cycles >= cfg_.escape_threshold;
  if (allow_escape) {
    const EscapeHop hop = tables_->escape_hop(id_, dst, head.ud_phase);
    const int vc_lo = 0;
    const int vc_hi = cfg_.routing == RoutingMode::kUpDownOnly ? cfg_.vcs : 1;
    for (int vc = vc_lo; vc < vc_hi; ++vc) {
      OutputVc& ov = out_[hop.port][vc];
      if (ov.owner < 0) {
        ov.owner = iv_flat;
        iv.out_port = hop.port;
        iv.out_vc = vc;
        iv.escape = true;
        iv.next_phase = hop.next_phase;
        iv.flits_sent = 0;
        iv.state = VcState::kActive;
        return true;
      }
    }
  }
  ++iv.blocked_cycles;
  return false;
}

void Router::step(Cycle now, Rng& rng) {
  now_ = now;
  const int total_vcs = static_cast<int>(n_ports_) * cfg_.vcs;

  // --- RC: classify fresh heads -------------------------------------------
  for (std::size_t p = 0; p < n_ports_; ++p) {
    for (int v = 0; v < cfg_.vcs; ++v) {
      InputVc& iv = in_[p][v];
      if (iv.state == VcState::kIdle && !iv.buf.empty()) {
        assert(iv.buf.front().head);
        route_compute(iv);
      }
    }
  }

  // --- VA: allocate output VCs in round-robin order ------------------------
  for (int i = 0; i < total_vcs; ++i) {
    const int idx = (va_rr_ + i) % total_vcs;
    InputVc& iv = in_vc(idx);
    if (iv.state == VcState::kNeedsVc) {
      try_allocate_vc(iv, idx, rng);
    }
  }
  va_rr_ = (va_rr_ + 1) % total_vcs;

  // --- SA: switch allocation + traversal -----------------------------------
  switch_allocate(now);

  // --- Escape fallback: release blocked, not-yet-started allocations -------
  revoke_blocked_heads();
}

void Router::switch_allocate(Cycle now) {
  const int total_vcs = static_cast<int>(n_ports_) * cfg_.vcs;
  std::vector<char> in_port_used(n_ports_, 0);
  std::vector<char> out_port_used(n_ports_, 0);

  // iSLIP-style iterations: each pass matches still-unmatched output ports
  // to still-unmatched input ports.
  for (int iter = 0; iter < cfg_.sa_iterations; ++iter) {
  bool granted_any = false;
  for (std::size_t i = 0; i < n_ports_; ++i) {
    const std::size_t out_p = (static_cast<std::size_t>(sa_out_rr_) + i) %
                              n_ports_;
    if (out_channel_[out_p] == nullptr || out_port_used[out_p]) continue;

    // Pick one requesting input VC in round-robin order.
    for (int j = 0; j < total_vcs; ++j) {
      const int idx = (sa_in_rr_[out_p] + j) % total_vcs;
      InputVc& iv = in_vc(idx);
      const auto in_port = static_cast<std::size_t>(idx) /
                           static_cast<std::size_t>(cfg_.vcs);
      if (iv.state != VcState::kActive || iv.buf.empty()) continue;
      if (iv.out_port != static_cast<int>(out_p)) continue;
      if (in_port_used[in_port]) continue;
      if (iv.buf.front().ready_time > now) continue;
      OutputVc& ov = out_[out_p][iv.out_vc];
      if (ov.credits <= 0) continue;

      // Grant: traverse the switch and the output link.
      Flit f = iv.buf.front();
      iv.buf.pop_front();
      f.vc = static_cast<std::uint8_t>(iv.out_vc);
      if (iv.escape) {
        f.escape = true;
        f.ud_phase = iv.next_phase;
      }
      out_channel_[out_p]->push(f, now + out_latency_[out_p]);
      --ov.credits;
      ++iv.flits_sent;
      in_port_used[in_port] = 1;
      out_port_used[out_p] = 1;
      granted_any = true;

      // Return a credit for the freed buffer slot upstream.
      if (credit_channel_[in_port] != nullptr) {
        credit_channel_[in_port]->push(
            static_cast<int>(static_cast<std::size_t>(idx) %
                             static_cast<std::size_t>(cfg_.vcs)),
            now + credit_latency_[in_port]);
      }

      if (f.tail) {
        // Release the input VC and (for network outputs) the output VC.
        if (!iv.out_is_ejection) ov.owner = -1;
        iv.state = VcState::kIdle;
        iv.out_port = -1;
        iv.out_vc = -1;
        iv.escape = false;
        iv.next_phase = 0;
        iv.flits_sent = 0;
      }
      sa_in_rr_[out_p] = (idx + 1) % total_vcs;
      break;
    }
  }
  if (!granted_any) break;  // no further matches possible
  }
  sa_out_rr_ = (sa_out_rr_ + 1) % static_cast<int>(n_ports_);
}

void Router::revoke_blocked_heads() {
  for (std::size_t p = 0; p < n_ports_; ++p) {
    for (int v = 0; v < cfg_.vcs; ++v) {
      InputVc& iv = in_[p][v];
      if (iv.state != VcState::kActive || iv.out_is_ejection) continue;
      if (iv.flits_sent > 0) continue;  // header already left: must stay
      if (iv.buf.empty() || iv.buf.front().ready_time > now_) continue;
      OutputVc& ov = out_[iv.out_port][iv.out_vc];
      if (ov.credits > 0) continue;  // not blocked, just lost arbitration
      // Header is blocked with zero progress: release the allocation so the
      // next VA round can try other minimal ports or the escape VC. This
      // must count toward the escape threshold, otherwise a header cycling
      // through allocate/revoke on credit-starved VCs would never become
      // eligible for the escape network.
      ov.owner = -1;
      iv.out_port = -1;
      iv.out_vc = -1;
      iv.escape = false;
      iv.state = VcState::kNeedsVc;
      ++iv.blocked_cycles;
    }
  }
}

std::size_t Router::buffered_flits() const {
  std::size_t total = 0;
  for (const auto& port : in_) {
    for (const auto& vc : port) total += vc.buf.size();
  }
  return total;
}

bool Router::invariants_ok(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = "router " + std::to_string(id_) + ": " + msg;
    return false;
  };
  for (std::size_t p = 0; p < n_ports_; ++p) {
    for (int v = 0; v < cfg_.vcs; ++v) {
      const InputVc& iv = in_[p][v];
      if (iv.buf.size() > static_cast<std::size_t>(cfg_.buffer_depth)) {
        return fail("input buffer overflow");
      }
      if (iv.state == VcState::kIdle && !iv.buf.empty() &&
          !iv.buf.front().head) {
        return fail("idle VC with non-head front flit");
      }
      if (iv.state == VcState::kActive && !iv.out_is_ejection) {
        if (iv.out_port < 0 || iv.out_vc < 0) return fail("active without VC");
        const OutputVc& ov = out_[iv.out_port][iv.out_vc];
        if (ov.owner != flat(p, v)) return fail("ownership mismatch");
      }
    }
    if (p < n_network_ports_) {
      for (int v = 0; v < cfg_.vcs; ++v) {
        if (out_[p][v].credits < 0 || out_[p][v].credits > cfg_.buffer_depth) {
          return fail("credit out of range");
        }
      }
    }
  }
  return true;
}

}  // namespace hm::noc
