#include "noc/router.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace hm::noc {

namespace {
/// Stream salt separating per-router arbitration streams from every other
/// consumer of derive_seed(cfg.seed, ...) (traffic streams, per-job seeds).
constexpr std::uint64_t kRouterStreamSalt = 0x9061747552746572ULL;
}  // namespace

Router::Router(std::uint32_t id, const SimConfig& cfg,
               const RoutingTables* tables, const PacketTable* packets)
    : id_(id),
      cfg_(cfg),
      tables_(tables),
      packets_(packets),
      n_network_ports_(tables->num_ports(id)),
      n_ports_(n_network_ports_ +
               static_cast<std::size_t>(cfg.endpoints_per_chiplet)) {
  cfg_.validate();
  const std::size_t vcs = static_cast<std::size_t>(cfg_.vcs);
  in_.resize(n_ports_ * vcs);
  for (auto& iv : in_) {
    iv.buf.reserve(static_cast<std::size_t>(cfg_.buffer_depth));
  }
  out_.resize(n_ports_ * vcs);
  for (std::size_t p = 0; p < n_ports_; ++p) {
    for (int v = 0; v < cfg_.vcs; ++v) {
      // Network outputs start with the downstream buffer depth; ejection
      // outputs are modelled with effectively infinite credits (the endpoint
      // always sinks flits; the port still serializes 1 flit/cycle).
      out_[static_cast<std::size_t>(flat(p, v))].credits =
          p < n_network_ports_ ? cfg_.buffer_depth : (1 << 30);
    }
  }
  out_channel_.assign(n_ports_, nullptr);
  out_latency_.assign(n_ports_, 1);
  credit_channel_.assign(n_ports_, nullptr);
  credit_latency_.assign(n_ports_, 1);
  sa_in_rr_.assign(n_ports_, 0);
  sa_in_port_used_.assign(n_ports_, 0);
  sa_out_port_used_.assign(n_ports_, 0);
  mask_words_ = (n_ports_ * vcs + 63) / 64;
  sa_request_mask_.assign(n_ports_ * mask_words_, 0);
  sa_req_count_.assign(n_ports_, 0);
  occupied_.assign(mask_words_, 0);
  free_adaptive_.assign(n_ports_, cfg_.vcs - 1);
  seed_rng(cfg_.seed);
}

void Router::seed_rng(std::uint64_t base) {
  rng_seed_ = derive_seed(derive_seed(base, kRouterStreamSalt), id_);
  rng_ = Rng(rng_seed_);
}

// HM_HOT: arena lease rewind — state rewind over preallocated flat
// arrays and rings only.
void Router::reset() {
  for (auto& iv : in_) {
    iv.buf.clear();
    iv.state = VcState::kIdle;
    iv.out_port = -1;
    iv.out_vc = -1;
    iv.out_is_ejection = false;
    iv.escape = false;
    iv.next_phase = 0;
    iv.flits_sent = 0;
    iv.blocked_cycles = 0;
    iv.cur_packet = 0;
  }
  for (std::size_t p = 0; p < n_ports_; ++p) {
    for (int v = 0; v < cfg_.vcs; ++v) {
      OutputVc& ov = out_[static_cast<std::size_t>(flat(p, v))];
      ov.credits = p < n_network_ports_ ? cfg_.buffer_depth : (1 << 30);
      ov.owner = -1;
    }
  }
  std::fill(sa_in_rr_.begin(), sa_in_rr_.end(), 0);
  std::fill(sa_in_port_used_.begin(), sa_in_port_used_.end(), 0);
  std::fill(sa_out_port_used_.begin(), sa_out_port_used_.end(), 0);
  std::fill(sa_request_mask_.begin(), sa_request_mask_.end(), 0);
  std::fill(sa_req_count_.begin(), sa_req_count_.end(), 0);
  std::fill(occupied_.begin(), occupied_.end(), 0);
  std::fill(free_adaptive_.begin(), free_adaptive_.end(), cfg_.vcs - 1);
  now_ = 0;
  rng_ = Rng(rng_seed_);
  buffered_ = 0;
  stats_ = HotStats{};
}

void Router::wire_output(std::size_t port, FlitChannel* channel, int latency) {
  if (port >= n_ports_ || channel == nullptr || latency < 1) {
    throw std::invalid_argument("Router::wire_output: bad wiring");
  }
  out_channel_[port] = channel;
  out_latency_[port] = latency;
}

void Router::wire_credit_return(std::size_t port, CreditChannel* channel,
                                int latency) {
  if (port >= n_ports_ || channel == nullptr || latency < 1) {
    throw std::invalid_argument("Router::wire_credit_return: bad wiring");
  }
  credit_channel_[port] = channel;
  credit_latency_[port] = latency;
}

void Router::receive_flit(std::size_t port, Flit f, Cycle now) {
  assert(port < n_ports_);
  assert(f.vc < cfg_.vcs);
  const int idx = flat(port, f.vc);
  InputVc& iv = in_[static_cast<std::size_t>(idx)];
  assert(iv.buf.size() <
         static_cast<std::size_t>(cfg_.buffer_depth));  // credits guarantee
  iv.buf.push_back(BufFlit{f, now + cfg_.router_latency});
  ++buffered_;
  occupied_[static_cast<std::size_t>(idx) >> 6] |= 1ULL << (idx & 63);
  if (iv.buf.size() > stats_.ring_hwm) stats_.ring_hwm = iv.buf.size();
}

void Router::receive_credit(std::size_t port, int vc) {
  assert(port < n_network_ports_);
  ++out_[static_cast<std::size_t>(flat(port, vc))].credits;
  assert(out_[static_cast<std::size_t>(flat(port, vc))].credits <=
         cfg_.buffer_depth);
}

// HM_HOT: per-cycle simulation path — no allocation, no throw.
void Router::route_compute(InputVc& iv, int iv_flat) {
  const Flit& head = iv.buf.front().flit;
  assert(head.head);
  iv.cur_packet = head.packet_id;
  if (head.dst_router == id_) {
    // Deliver locally: ejection port of the destination endpoint. The
    // destination endpoint is cold per-packet data, looked up once here.
    assert(packets_ != nullptr);
    const int local_ep =
        static_cast<int>((*packets_)[head.packet_id].dst_endpoint) -
        static_cast<int>(id_) * cfg_.endpoints_per_chiplet;
    assert(local_ep >= 0 && local_ep < cfg_.endpoints_per_chiplet);
    iv.out_port = static_cast<int>(n_network_ports_) + local_ep;
    iv.out_vc = 0;
    iv.out_is_ejection = true;
    iv.escape = false;
    iv.flits_sent = 0;
    iv.blocked_cycles = 0;
    iv.state = VcState::kActive;
    mark_request(static_cast<std::size_t>(iv.out_port), iv_flat);
  } else {
    iv.out_is_ejection = false;
    iv.blocked_cycles = 0;
    iv.state = VcState::kNeedsVc;
  }
}

// HM_HOT: per-cycle simulation path — no allocation, no throw.
bool Router::try_allocate_vc(InputVc& iv, int iv_flat) {
  const Flit& head = iv.buf.front().flit;
  const graph::NodeId dst = head.dst_router;

  const bool use_minimal = cfg_.routing != RoutingMode::kUpDownOnly &&
                           !head.escape && cfg_.vcs > 1;
  if (use_minimal) {
    // Degraded view installed (mid-fault): route on the rebuilt tables with
    // ids translated to the live subgraph and ports translated back to the
    // physical port numbering. Healthy runs pay one perfectly-predicted
    // null check.
    const auto ports =
        deg_tables_ == nullptr
            ? tables_->minimal_ports(id_, dst)
            : deg_tables_->minimal_ports(deg_live_[id_], deg_live_[dst]);
    std::size_t first = 0;
    std::size_t count = ports.size();
    if (cfg_.routing == RoutingMode::kDeterministicMinimal) {
      // anynet-style: one fixed shortest path per (node, destination).
      count = 1;
    } else if (ports.size() > 1) {
      // Adaptive: rotate the starting candidate to spread load.
      first = static_cast<std::size_t>(rng_.uniform_int(ports.size()));
    }
    for (std::size_t i = 0; i < count; ++i) {
      int port = ports[(i + first) % ports.size()];
      if (deg_port_map_ != nullptr) {
        port = deg_port_map_[static_cast<std::size_t>(port)];
      }
      if (free_adaptive_[static_cast<std::size_t>(port)] == 0) continue;
      for (int vc = 1; vc < cfg_.vcs; ++vc) {
        OutputVc& ov = out_[static_cast<std::size_t>(flat(port, vc))];
        if (ov.owner < 0) {
          ov.owner = iv_flat;
          --free_adaptive_[static_cast<std::size_t>(port)];
          iv.out_port = port;
          iv.out_vc = vc;
          iv.escape = false;
          iv.flits_sent = 0;
          iv.state = VcState::kActive;
          mark_request(static_cast<std::size_t>(port), iv_flat);
          return true;
        }
      }
    }
  }

  // Escape (or up*/down*-only mode): deterministic up*/down* next hop.
  // Headers that still have adaptive options only consider the escape VC
  // after `escape_threshold` blocked cycles, so the escape tree root does
  // not become the bottleneck at saturation; deadlock freedom is preserved
  // for any finite threshold (a blocked header eventually requests the
  // always-draining escape network).
  const bool allow_escape =
      !use_minimal || iv.blocked_cycles >= cfg_.escape_threshold;
  if (allow_escape) {
    EscapeHop hop;
    if (deg_tables_ == nullptr) {
      hop = tables_->escape_hop(id_, dst, head.ud_phase);
    } else {
      hop = deg_tables_->escape_hop(deg_live_[id_], deg_live_[dst],
                                    head.ud_phase);
      hop.port = deg_port_map_[hop.port];
    }
    // During a reconvergence window the stale escape hop can aim at a
    // killed port; a detached channel means "wait for the table swap"
    // (blocked, not allocated), never a push into a dead link.
    if (out_channel_[hop.port] == nullptr) {
      ++iv.blocked_cycles;
      ++stats_.va_stall_cycles;
      return false;
    }
    const int vc_lo = 0;
    const int vc_hi = cfg_.routing == RoutingMode::kUpDownOnly ? cfg_.vcs : 1;
    for (int vc = vc_lo; vc < vc_hi; ++vc) {
      OutputVc& ov = out_[static_cast<std::size_t>(flat(hop.port, vc))];
      if (ov.owner < 0) {
        ov.owner = iv_flat;
        if (vc >= 1) --free_adaptive_[hop.port];
        iv.out_port = hop.port;
        iv.out_vc = vc;
        iv.escape = true;
        iv.next_phase = hop.next_phase;
        iv.flits_sent = 0;
        iv.state = VcState::kActive;
        mark_request(hop.port, iv_flat);
        return true;
      }
    }
  }
  ++iv.blocked_cycles;
  ++stats_.va_stall_cycles;
  return false;
}

// HM_HOT: per-cycle simulation path — no allocation, no throw.
void Router::step(Cycle now) {
  now_ = now;
  const int total_vcs = static_cast<int>(in_.size());

  // --- RC: classify fresh heads -------------------------------------------
  // Ascending walk of the occupied VCs only — same visit order as a linear
  // scan over every VC, since unoccupied VCs have no head to classify.
  for (std::size_t w = 0; w < mask_words_; ++w) {
    std::uint64_t m = occupied_[w];
    while (m != 0) {
      const int idx = static_cast<int>(w << 6) + std::countr_zero(m);
      m &= m - 1;
      InputVc& iv = in_[static_cast<std::size_t>(idx)];
      if (iv.state == VcState::kIdle) {
        assert(iv.buf.front().flit.head);
        route_compute(iv, idx);
      }
    }
  }

  // --- VA: allocate output VCs in round-robin order ------------------------
  // Starting offset derived from the cycle number: identical to a pointer
  // incremented once per cycle, but invariant under idle-cycle skipping.
  // Circular walk of the occupied VCs from that offset (a kNeedsVc head is
  // always still buffered), in the order the former modular scan used.
  const int va_start = static_cast<int>(now % static_cast<Cycle>(total_vcs));
  {
    const std::size_t sw = static_cast<std::size_t>(va_start) >> 6;
    const std::uint64_t high = ~0ULL << (va_start & 63);
    std::uint64_t m = occupied_[sw] & high;
    for (std::size_t step = 0; step <= mask_words_; ++step) {
      const std::size_t w =
          step == 0 ? sw
                    : (step == mask_words_ ? sw : (sw + step) % mask_words_);
      if (step == mask_words_) m = occupied_[sw] & ~high;
      while (m != 0) {
        const int idx = static_cast<int>(w << 6) + std::countr_zero(m);
        m &= m - 1;
        InputVc& iv = in_[static_cast<std::size_t>(idx)];
        if (iv.state == VcState::kNeedsVc) {
          try_allocate_vc(iv, idx);
        }
      }
      if (step + 1 < mask_words_) m = occupied_[(sw + step + 1) % mask_words_];
    }
  }

  // --- SA: switch allocation + traversal -----------------------------------
  switch_allocate(now);

  // --- Escape fallback: release blocked, not-yet-started allocations -------
  revoke_blocked_heads();
}

// HM_HOT: per-cycle simulation path — no allocation, no throw.
void Router::switch_allocate(Cycle now) {
  const int total_vcs = static_cast<int>(in_.size());
  std::fill(sa_in_port_used_.begin(), sa_in_port_used_.end(), 0);
  std::fill(sa_out_port_used_.begin(), sa_out_port_used_.end(), 0);

  // Examines the requesters of `out_p` in round-robin order starting at
  // sa_in_rr_[out_p] (exactly the order the former linear scan over every
  // input VC produced), but walks only set bits of the request mask.
  // Returns true when a flit was granted.
  auto grant_one = [&](std::size_t out_p) {
    const std::uint64_t* mask = &sa_request_mask_[out_p * mask_words_];
    const int start = sa_in_rr_[out_p];

    auto try_grant = [&](int idx) {
      InputVc& iv = in_[static_cast<std::size_t>(idx)];
      const auto in_port = static_cast<std::size_t>(idx) /
                           static_cast<std::size_t>(cfg_.vcs);
      if (iv.buf.empty()) return false;
      if (sa_in_port_used_[in_port]) {
        ++stats_.sa_conflict_stalls;
        return false;
      }
      if (iv.buf.front().ready_time > now) return false;
      OutputVc& ov = out_[static_cast<std::size_t>(flat(out_p, iv.out_vc))];
      if (ov.credits <= 0) {
        ++stats_.sa_credit_stalls;
        return false;
      }

      // Grant: traverse the switch and the output link (an 8-byte copy).
      Flit f = iv.buf.front().flit;
      iv.buf.pop_front();
      --buffered_;
      if (iv.buf.empty()) {
        occupied_[static_cast<std::size_t>(idx) >> 6] &=
            ~(1ULL << (idx & 63));
      }
      f.vc = static_cast<std::uint8_t>(iv.out_vc);
      if (iv.escape) {
        f.escape = 1;
        f.ud_phase = iv.next_phase & 1;
      }
      out_channel_[out_p]->push(f, now + out_latency_[out_p]);
      --ov.credits;
      ++iv.flits_sent;
      ++stats_.flits_routed;
      sa_in_port_used_[in_port] = 1;
      sa_out_port_used_[out_p] = 1;

      // Return a credit for the freed buffer slot upstream.
      if (credit_channel_[in_port] != nullptr) {
        credit_channel_[in_port]->push(
            static_cast<int>(static_cast<std::size_t>(idx) %
                             static_cast<std::size_t>(cfg_.vcs)),
            now + credit_latency_[in_port]);
      }

      if (f.tail) {
        // Release the input VC and (for network outputs) the output VC.
        if (!iv.out_is_ejection) {
          ov.owner = -1;
          if (iv.out_vc >= 1) ++free_adaptive_[out_p];
        }
        clear_request(out_p, idx);
        iv.state = VcState::kIdle;
        iv.out_port = -1;
        iv.out_vc = -1;
        iv.escape = false;
        iv.next_phase = 0;
        iv.flits_sent = 0;
      }
      sa_in_rr_[out_p] = (idx + 1) % total_vcs;
      return true;
    };

    // Word walk in circular flat-id order: the start word masked to bits
    // >= start, the remaining words wrapping around, then the start word's
    // low bits.
    const std::size_t sw = static_cast<std::size_t>(start) >> 6;
    const std::uint64_t high = ~0ULL << (start & 63);
    std::uint64_t m = mask[sw] & high;
    for (std::size_t step = 0; step <= mask_words_; ++step) {
      const std::size_t w =
          step == 0 ? sw
                    : (step == mask_words_ ? sw : (sw + step) % mask_words_);
      if (step == mask_words_) m = mask[sw] & ~high;
      while (m != 0) {
        const int idx =
            static_cast<int>(w << 6) + std::countr_zero(m);
        m &= m - 1;
        if (try_grant(idx)) return true;
      }
      if (step + 1 < mask_words_) m = mask[(sw + step + 1) % mask_words_];
    }
    return false;
  };

  // iSLIP-style iterations: each pass matches still-unmatched output ports
  // to still-unmatched input ports. The output round-robin offset is
  // derived from the cycle number (see step()), so it is skip-invariant.
  const std::size_t out_start =
      static_cast<std::size_t>(now % static_cast<Cycle>(n_ports_));
  for (int iter = 0; iter < cfg_.sa_iterations; ++iter) {
    bool granted_any = false;
    for (std::size_t i = 0; i < n_ports_; ++i) {
      const std::size_t out_p = (out_start + i) % n_ports_;
      // Request-free ports cannot grant; skipping them is free of side
      // effects (grant_one on an empty mask calls no try_grant, so it
      // touches no stats and draws nothing).
      if (sa_req_count_[out_p] == 0) continue;
      if (out_channel_[out_p] == nullptr || sa_out_port_used_[out_p]) continue;
      if (grant_one(out_p)) granted_any = true;
    }
    if (!granted_any) break;  // no further matches possible
  }
}

// HM_HOT: per-cycle simulation path — no allocation, no throw.
void Router::revoke_blocked_heads() {
  // Ascending occupied-VC walk: a revocable head (zero flits sent) is by
  // definition still buffered, so unoccupied VCs cannot qualify.
  for (std::size_t w = 0; w < mask_words_; ++w) {
    std::uint64_t m = occupied_[w];
    while (m != 0) {
    const int idx = static_cast<int>(w << 6) + std::countr_zero(m);
    m &= m - 1;
    InputVc& iv = in_[static_cast<std::size_t>(idx)];
    if (iv.state != VcState::kActive || iv.out_is_ejection) continue;
    if (iv.flits_sent > 0) continue;  // header already left: must stay
    if (iv.buf.front().ready_time > now_) continue;
    OutputVc& ov = out_[static_cast<std::size_t>(flat(iv.out_port, iv.out_vc))];
    if (ov.credits > 0) continue;  // not blocked, just lost arbitration
    // Header is blocked with zero progress: release the allocation so the
    // next VA round can try other minimal ports or the escape VC. This
    // must count toward the escape threshold, otherwise a header cycling
    // through allocate/revoke on credit-starved VCs would never become
    // eligible for the escape network.
    ov.owner = -1;
    if (iv.out_vc >= 1) ++free_adaptive_[static_cast<std::size_t>(iv.out_port)];
    clear_request(static_cast<std::size_t>(iv.out_port), idx);
    iv.out_port = -1;
    iv.out_vc = -1;
    iv.escape = false;
    iv.state = VcState::kNeedsVc;
    ++iv.blocked_cycles;
    ++stats_.heads_revoked;
    }
  }
}

std::size_t Router::buffered_flits() const {
  std::size_t total = 0;
  for (const auto& iv : in_) total += iv.buf.size();
  return total;
}

void Router::set_degraded(const RoutingTables* tables,
                          const std::uint32_t* live_id,
                          const std::uint8_t* port_map) {
  deg_tables_ = tables;
  deg_live_ = live_id;
  deg_port_map_ = port_map;
}

void Router::fault_kill_port(std::size_t port) {
  assert(port < n_network_ports_);
  out_channel_[port] = nullptr;
  credit_channel_[port] = nullptr;
  for (int v = 0; v < cfg_.vcs; ++v) {
    out_[static_cast<std::size_t>(flat(port, v))].credits = 0;
  }
  free_adaptive_[port] = 0;
}

void Router::fault_restore_port(std::size_t port, FlitChannel* out,
                                int out_latency, CreditChannel* credit,
                                int credit_latency) {
  assert(port < n_network_ports_);
  out_channel_[port] = out;
  out_latency_[port] = out_latency;
  credit_channel_[port] = credit;
  credit_latency_[port] = credit_latency;
  for (int v = 0; v < cfg_.vcs; ++v) {
    OutputVc& ov = out_[static_cast<std::size_t>(flat(port, v))];
    assert(ov.owner < 0);
    ov.credits = cfg_.buffer_depth;
  }
  free_adaptive_[port] = cfg_.vcs - 1;
}

void Router::fault_refund_credit(std::size_t port, int vc) {
  assert(port < n_network_ports_);
  OutputVc& ov = out_[static_cast<std::size_t>(flat(port, vc))];
  ++ov.credits;
  assert(ov.credits <= cfg_.buffer_depth);
}

void Router::fault_collect_committed(
    const std::function<bool(std::size_t)>& dead_out,
    std::vector<std::uint32_t>* out) const {
  for (const InputVc& iv : in_) {
    if (iv.state == VcState::kActive && !iv.out_is_ejection &&
        iv.flits_sent > 0 &&
        dead_out(static_cast<std::size_t>(iv.out_port))) {
      out->push_back(iv.cur_packet);
    }
  }
}

void Router::fault_collect_all(std::vector<std::uint32_t>* out) const {
  for (const InputVc& iv : in_) {
    for (std::size_t i = 0; i < iv.buf.size(); ++i) {
      out->push_back(iv.buf[i].flit.packet_id);
    }
    if (iv.state != VcState::kIdle) out->push_back(iv.cur_packet);
  }
}

Router::FaultExcision Router::fault_excise(
    const std::function<bool(std::uint32_t)>& poisoned,
    const std::function<bool(std::size_t)>& dead_out,
    const std::function<void(std::size_t, int)>& refund) {
  FaultExcision result;
  std::vector<BufFlit> kept;
  for (std::size_t p = 0; p < n_ports_; ++p) {
    for (int v = 0; v < cfg_.vcs; ++v) {
      const int idx = flat(p, v);
      InputVc& iv = in_[static_cast<std::size_t>(idx)];

      // Drop buffered flits of poisoned packets, refunding the upstream
      // credit for each exactly as a grant would have.
      if (!iv.buf.empty()) {
        kept.clear();
        const std::size_t sz = iv.buf.size();
        for (std::size_t i = 0; i < sz; ++i) {
          const BufFlit& bf = iv.buf[i];
          if (poisoned(bf.flit.packet_id)) {
            refund(p, v);
          } else {
            kept.push_back(bf);
          }
        }
        if (kept.size() != sz) {
          const std::size_t removed = sz - kept.size();
          iv.buf.clear();
          for (const BufFlit& bf : kept) iv.buf.push_back(bf);
          buffered_ -= removed;
          result.flits_removed += removed;
          if (iv.buf.empty()) {
            occupied_[static_cast<std::size_t>(idx) >> 6] &=
                ~(1ULL << (idx & 63));
          }
        }
      }

      // Fix the VC state machine: a poisoned tracked packet resets to
      // idle; a zero-progress allocation toward a dead port is revoked so
      // the head re-routes (packets with flits already on the dead link
      // were poisoned by fault_collect_committed).
      if (iv.state == VcState::kIdle) continue;
      const bool tracked_poisoned = poisoned(iv.cur_packet);
      const bool toward_dead =
          iv.state == VcState::kActive && !iv.out_is_ejection &&
          dead_out(static_cast<std::size_t>(iv.out_port));
      if (!tracked_poisoned && !toward_dead) continue;
      if (iv.state == VcState::kActive) {
        clear_request(static_cast<std::size_t>(iv.out_port), idx);
        if (!iv.out_is_ejection) {
          OutputVc& ov =
              out_[static_cast<std::size_t>(flat(iv.out_port, iv.out_vc))];
          ov.owner = -1;
          if (iv.out_vc >= 1 &&
              !dead_out(static_cast<std::size_t>(iv.out_port))) {
            ++free_adaptive_[static_cast<std::size_t>(iv.out_port)];
          }
        }
      }
      if (tracked_poisoned) {
        iv.state = VcState::kIdle;
        iv.blocked_cycles = 0;
        iv.cur_packet = 0;
      } else {
        assert(iv.flits_sent == 0);
        iv.state = VcState::kNeedsVc;
        ++result.packets_rerouted;
      }
      iv.out_port = -1;
      iv.out_vc = -1;
      iv.out_is_ejection = false;
      iv.escape = false;
      iv.next_phase = 0;
      iv.flits_sent = 0;
    }
  }
  return result;
}

bool Router::invariants_ok(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = "router " + std::to_string(id_) + ": " + msg;
    return false;
  };
  if (buffered_ != buffered_flits()) {
    return fail("incremental buffered-flit count out of sync");
  }
  for (std::size_t p = 0; p < n_ports_; ++p) {
    for (int v = 0; v < cfg_.vcs; ++v) {
      const InputVc& iv = in_[static_cast<std::size_t>(flat(p, v))];
      const int idx = flat(p, v);
      const bool marked =
          (occupied_[static_cast<std::size_t>(idx) >> 6] >> (idx & 63)) & 1;
      if (marked != !iv.buf.empty()) {
        return fail("occupancy bit out of sync with buffer");
      }
      if (iv.buf.size() > static_cast<std::size_t>(cfg_.buffer_depth)) {
        return fail("input buffer overflow");
      }
      if (iv.state == VcState::kIdle && !iv.buf.empty() &&
          !iv.buf.front().flit.head) {
        return fail("idle VC with non-head front flit");
      }
      if (iv.state == VcState::kActive && !iv.out_is_ejection) {
        if (iv.out_port < 0 || iv.out_vc < 0) return fail("active without VC");
        const OutputVc& ov =
            out_[static_cast<std::size_t>(flat(iv.out_port, iv.out_vc))];
        if (ov.owner != flat(p, v)) return fail("ownership mismatch");
      }
    }
    if (p < n_network_ports_) {
      for (int v = 0; v < cfg_.vcs; ++v) {
        const OutputVc& ov = out_[static_cast<std::size_t>(flat(p, v))];
        if (ov.credits < 0 || ov.credits > cfg_.buffer_depth) {
          return fail("credit out of range");
        }
      }
    }
  }
  return true;
}

}  // namespace hm::noc
