#include "noc/routing.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <limits>
#include <queue>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "telemetry/telemetry.hpp"

namespace hm::noc {

namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 4;

std::atomic<std::uint64_t> g_lifetime_builds{0};
std::atomic<std::uint64_t> g_incremental_builds{0};
std::atomic<std::uint64_t> g_incremental_rows_reused{0};

/// up*/down* orientation: an edge goes "up" toward the endpoint with the
/// smaller (root depth, id) key.
bool ud_goes_up(const std::vector<int>& depth, graph::NodeId u,
                graph::NodeId w) {
  return depth[w] != depth[u] ? depth[w] < depth[u] : w < u;
}

void check_buildable(const graph::Graph& g) {
  if (g.node_count() == 0) {
    throw std::invalid_argument("RoutingTables: empty graph");
  }
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("RoutingTables: graph must be connected");
  }
  if (g.max_degree() > 255) {
    throw std::invalid_argument("RoutingTables: degree must be <= 255");
  }
}

}  // namespace

graph::Graph apply_edit(const graph::Graph& g, const GraphEdit& edit) {
  graph::Graph out = g;
  for (const auto& [a, b] : edit.removed) out.remove_edge(a, b);
  for (const auto& [a, b] : edit.added) out.add_edge(a, b);
  return out;
}

std::uint64_t RoutingTables::lifetime_builds() noexcept {
  return g_lifetime_builds.load(std::memory_order_relaxed);
}

std::uint64_t RoutingTables::incremental_builds() noexcept {
  return g_incremental_builds.load(std::memory_order_relaxed);
}

std::uint64_t RoutingTables::incremental_rows_reused() noexcept {
  return g_incremental_rows_reused.load(std::memory_order_relaxed);
}

bool RoutingTables::identical_to(const RoutingTables& o) const {
  return n_ == o.n_ && root_ == o.root_ && degree_ == o.degree_ &&
         dist_ == o.dist_ && min_port_offset_ == o.min_port_offset_ &&
         min_port_data_ == o.min_port_data_ && escape_[0] == o.escape_[0] &&
         escape_[1] == o.escape_[1] && escape_sdist_ == o.escape_sdist_;
}

RoutingTables::RoutingTables(const graph::Graph& g) {
  check_buildable(g);
  g_lifetime_builds.fetch_add(1, std::memory_order_relaxed);
  static telemetry::Counter builds("routing.lifetime_builds");
  builds.add();
  build_full(g);
}

RoutingTables::RoutingTables(const graph::Graph& g, const RoutingTables& prev,
                             const GraphEdit& edit) {
  check_buildable(g);
  g_lifetime_builds.fetch_add(1, std::memory_order_relaxed);
  // HM_LINT allow(telemetry-name): deliberate alias — full and incremental
  // constructors both count into the one lifetime-builds metric
  static telemetry::Counter builds("routing.lifetime_builds");
  builds.add();
  const std::size_t n = g.node_count();
  if (n != prev.n_ || edit.empty()) {
    // Vertex-set changes (and no-op edits on a fresh graph) are non-local
    // by definition; nothing of prev can be reused safely.
    build_full(g);
    return;
  }
  n_ = n;

  // --- Affected distance rows ----------------------------------------------
  // Both criteria are evaluated against prev's distances and are *exact*
  // for the row as a whole (u's row changes iff a criterion fires), which
  // is what keeps mesh-like graphs — where path diversity absorbs most
  // single-edge edits — on the incremental path:
  //
  //  * Removals. An edge can only carry shortest paths from u when it is
  //    tight (|d(u,a) - d(u,b)| == 1, head = the farther endpoint), and a
  //    removed tight edge is harmless when its head keeps another tight
  //    predecessor that survives the whole edit: by induction over BFS
  //    depth, every vertex then still has a surviving old-length path
  //    (each depth-k vertex hangs off a preserved depth-(k-1) predecessor).
  //    Conversely, a head with no surviving tight predecessor has lost
  //    every shortest path from u.
  //  * Additions. An added edge shortens some distance from u iff
  //    |d(u,a) - d(u,b)| >= 2 (then d(u, far side) itself improves). With
  //    the gap <= 1 for every added edge, no path through any subset of
  //    them can beat the old distances: along such a path the invariant
  //    "cost so far >= d_old(u, current)" survives old edges and added
  //    edges alike.
  std::vector<char> row_changed(n, 0);
  std::size_t changed_rows = 0;
  const auto prev_d = [&](graph::NodeId u, graph::NodeId v) {
    return prev.dist_[static_cast<std::size_t>(u) * n + v];
  };
  const auto in_edit = [](const auto& edges, graph::NodeId x, graph::NodeId y) {
    for (const auto& [p, q] : edges) {
      if ((p == x && q == y) || (p == y && q == x)) return true;
    }
    return false;
  };
  for (graph::NodeId u = 0; u < n; ++u) {
    bool affected = false;
    for (const auto& [a, b] : edit.removed) {
      const int da = prev_d(u, a);
      const int db = prev_d(u, b);
      // Endpoints adjacent in prev, so the gap is 0 (not tight — the edge
      // lies on no shortest path from u) or 1.
      if (std::abs(da - db) != 1) continue;
      const graph::NodeId lo = da < db ? a : b;
      const graph::NodeId hi = da < db ? b : a;
      const int want = prev_d(u, hi) - 1;
      bool survivor = false;
      // Surviving old tight predecessors of hi: new-graph neighbours minus
      // edges the edit added (removed edges are absent from g already).
      for (const graph::NodeId w : g.neighbors(hi)) {
        if (w == lo || prev_d(u, w) != want) continue;
        if (in_edit(edit.added, w, hi)) continue;
        survivor = true;
        break;
      }
      if (!survivor) {
        affected = true;
        break;
      }
    }
    for (const auto& [a, b] : edit.added) {
      if (affected) break;
      if (std::abs(prev_d(u, a) - prev_d(u, b)) >= 2) affected = true;
    }
    row_changed[u] = affected ? 1 : 0;
    changed_rows += affected ? 1 : 0;
  }
  if (2 * changed_rows > n) {
    // Non-local edit: the copy bookkeeping would cost more than it saves.
    build_full(g);
    return;
  }
  g_incremental_builds.fetch_add(1, std::memory_order_relaxed);
  g_incremental_rows_reused.fetch_add(n - changed_rows,
                                      std::memory_order_relaxed);
  static telemetry::Counter incr("routing.incremental_builds");
  static telemetry::Counter rows("routing.incremental_rows_reused");
  incr.add();
  rows.add(n - changed_rows);

  degree_.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) degree_[v] = g.degree(v);

  // --- Distances: BFS only the invalidated rows ----------------------------
  dist_.resize(n * n);
  for (graph::NodeId src = 0; src < n; ++src) {
    if (row_changed[src]) {
      const auto row = graph::bfs_distances(g, src);
      std::copy(row.begin(), row.end(), dist_.begin() + flat(src, 0));
    } else {
      std::copy(prev.dist_.begin() + flat(src, 0),
                prev.dist_.begin() + flat(src, 0) + n,
                dist_.begin() + flat(src, 0));
    }
  }

  // --- Minimal-port CSR: recompute invalidated segments, splice the rest ---
  // Row `cur` depends on cur's neighbour list, cur's distance row and each
  // neighbour's distance row; anything else is copied from prev with its
  // offsets rebased.
  std::vector<char> incident(n, 0);
  for (const auto& [a, b] : edit.removed) incident[a] = incident[b] = 1;
  for (const auto& [a, b] : edit.added) incident[a] = incident[b] = 1;
  min_port_offset_.assign(n * n + 1, 0);
  min_port_data_.clear();
  min_port_data_.reserve(prev.min_port_data_.size() + 4 * edit.added.size());
  for (graph::NodeId cur = 0; cur < n; ++cur) {
    bool recompute = row_changed[cur] || incident[cur];
    if (!recompute) {
      for (graph::NodeId nb : g.neighbors(cur)) {
        if (row_changed[nb]) {
          recompute = true;
          break;
        }
      }
    }
    if (recompute) {
      build_min_port_row(g, cur);
    } else {
      const std::uint32_t begin = prev.min_port_offset_[flat(cur, 0)];
      const std::uint32_t end = prev.min_port_offset_[flat(cur, 0) + n];
      const auto base = static_cast<std::uint32_t>(min_port_data_.size());
      min_port_data_.insert(min_port_data_.end(),
                            prev.min_port_data_.begin() + begin,
                            prev.min_port_data_.begin() + end);
      for (graph::NodeId dst = 0; dst < n; ++dst) {
        min_port_offset_[flat(cur, dst) + 1] =
            prev.min_port_offset_[flat(cur, dst) + 1] - begin + base;
      }
    }
  }

  // --- Escape network: per-destination incremental rebuild ------------------
  // The up*/down* orientation keys on (root distance, id). When the edit
  // moves the graph center or changes the root's distance row, the whole
  // orientation basis shifts and the escape tables are rebuilt wholesale
  // (same code as the from-scratch constructor, hence bit-identical).
  // Otherwise the state graph differs from prev's only in the transitions
  // of the edited edges, and the stored per-destination state distances
  // (escape_sdist_) let the exact distance-row criteria replay per column:
  // a destination's column survives untouched unless a removed transition
  // was its only tight inlet somewhere or an added transition shortcuts it.
  const graph::NodeId new_root = select_escape_root();
  if (new_root != prev.root_ || row_changed[new_root]) {
    build_escape(g);
    return;
  }
  root_ = new_root;
  const std::vector<int> depth(dist_.begin() + flat(root_, 0),
                               dist_.begin() + flat(root_, 0) + n);
  for (int phase = 0; phase < 2; ++phase) {
    escape_[phase].assign(n * n, EscapeHop{});
  }
  escape_sdist_.assign(2 * n * n, kInf);
  auto sidx = [n](graph::NodeId v, int phase) {
    return static_cast<std::size_t>(phase) * n + v;
  };

  // Forward state transitions of one graph edge {x, y} under the (shared)
  // orientation: with p the lower-key endpoint, (q,0)->(p,0) up plus
  // (p,0)->(q,1) and (p,1)->(q,1) down.
  struct Transition {
    std::size_t from, to;  ///< sidx state indices
  };
  const auto transitions_of = [&](graph::NodeId x, graph::NodeId y) {
    const graph::NodeId p = ud_goes_up(depth, y, x) ? x : y;  // lower key
    const graph::NodeId q = p == x ? y : x;
    return std::array<Transition, 3>{{{sidx(q, 0), sidx(p, 0)},
                                      {sidx(p, 0), sidx(q, 1)},
                                      {sidx(p, 1), sidx(q, 1)}}};
  };

  std::vector<graph::NodeId> incident_list;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (incident[v]) incident_list.push_back(v);
  }

  for (graph::NodeId dst = 0; dst < n; ++dst) {
    const int* const psd =
        prev.escape_sdist_.data() + static_cast<std::size_t>(dst) * 2 * n;
    // Does any removed transition lose a state's last tight inlet, or any
    // added transition shorten a state distance? (Same exact criteria as
    // the distance rows, on the backward state BFS.)
    bool affected = false;
    for (const auto& [a, b] : edit.removed) {
      if (affected) break;
      for (const Transition& t : transitions_of(a, b)) {
        if (psd[t.from] != psd[t.to] + 1) continue;  // not tight
        // Surviving alternative: another old forward transition from
        // t.from one step closer to dst.
        const graph::NodeId v = static_cast<graph::NodeId>(t.from % n);
        const int from_phase = static_cast<int>(t.from / n);
        bool survivor = false;
        for (const graph::NodeId w : g.neighbors(v)) {
          if (in_edit(edit.added, v, w)) continue;  // new, not "surviving"
          const bool up_vw = ud_goes_up(depth, v, w);
          if (from_phase == 0 && up_vw &&
              psd[sidx(w, 0)] == psd[t.from] - 1) {
            survivor = true;
            break;
          }
          if (!up_vw && psd[sidx(w, 1)] == psd[t.from] - 1) {
            survivor = true;
            break;
          }
        }
        if (!survivor) {
          affected = true;
          break;
        }
      }
    }
    for (const auto& [a, b] : edit.added) {
      if (affected) break;
      for (const Transition& t : transitions_of(a, b)) {
        if (psd[t.to] != kInf && psd[t.to] + 1 < psd[t.from]) {
          affected = true;
          break;
        }
      }
    }

    if (affected) {
      build_escape_column(g, depth, dst);
      continue;
    }
    // Column unchanged: copy the state distances and hop entries, then
    // re-derive the hops of edit-incident routers — their port numbering
    // and transition sets changed even though the distances did not.
    int* const sd =
        escape_sdist_.data() + static_cast<std::size_t>(dst) * 2 * n;
    std::copy(psd, psd + 2 * n, sd);
    for (int phase = 0; phase < 2; ++phase) {
      for (graph::NodeId u = 0; u < n; ++u) {
        escape_[phase][flat(u, dst)] = prev.escape_[phase][flat(u, dst)];
      }
    }
    for (const graph::NodeId u : incident_list) {
      if (u == dst) continue;
      for (int phase = 0; phase < 2; ++phase) {
        escape_[phase][flat(u, dst)] =
            forward_escape_hop(g, depth, dst, u, phase, sd);
      }
    }
  }
}

void RoutingTables::build_full(const graph::Graph& g) {
  const std::size_t n = g.node_count();
  n_ = n;

  degree_.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) degree_[v] = g.degree(v);

  // --- All-pairs distances (flat row-major) --------------------------------
  dist_.resize(n * n);
  for (graph::NodeId src = 0; src < n; ++src) {
    const auto row = graph::bfs_distances(g, src);
    std::copy(row.begin(), row.end(), dist_.begin() + flat(src, 0));
  }

  // --- Minimal next-hop port sets (CSR: offsets into one byte array) -------
  min_port_offset_.resize(n * n + 1, 0);
  min_port_data_.reserve(n * n);  // lower bound; most pairs have >= 1 port
  for (graph::NodeId cur = 0; cur < n; ++cur) {
    build_min_port_row(g, cur);
  }

  build_escape(g);
}

void RoutingTables::build_min_port_row(const graph::Graph& g,
                                       graph::NodeId cur) {
  const std::size_t n = n_;
  const auto nbrs = g.neighbors(cur);
  for (graph::NodeId dst = 0; dst < n; ++dst) {
    if (dst != cur) {
      const int want = dist_[flat(cur, dst)] - 1;
      for (std::size_t p = 0; p < nbrs.size(); ++p) {
        if (dist_[flat(nbrs[p], dst)] == want) {
          min_port_data_.push_back(static_cast<std::uint8_t>(p));
        }
      }
    }
    min_port_offset_[flat(cur, dst) + 1] =
        static_cast<std::uint32_t>(min_port_data_.size());
  }
}

graph::NodeId RoutingTables::select_escape_root() const {
  const std::size_t n = n_;
  graph::NodeId root = 0;
  int best_ecc = kInf;
  for (graph::NodeId v = 0; v < n; ++v) {
    int ecc = 0;
    for (graph::NodeId u = 0; u < n; ++u) {
      ecc = std::max(ecc, dist_[flat(v, u)]);
    }
    if (ecc < best_ecc) {
      best_ecc = ecc;
      root = v;
    }
  }
  return root;
}

void RoutingTables::build_escape(const graph::Graph& g) {
  const std::size_t n = n_;

  // --- Escape network: BFS tree from a center, up*/down* orientation -------
  root_ = select_escape_root();
  const std::vector<int> depth(dist_.begin() + flat(root_, 0),
                               dist_.begin() + flat(root_, 0) + n);

  // State graph: state (v, phase). Forward transitions:
  //   (u, 0) -up-> (w, 0), (u, 0) -down-> (w, 1), (u, 1) -down-> (w, 1).
  // For each destination, run a backward BFS from {(dst,0), (dst,1)} over
  // reversed transitions and record the forward next hop per state.
  for (int phase = 0; phase < 2; ++phase) {
    escape_[phase].assign(n * n, EscapeHop{});
  }
  escape_sdist_.assign(2 * n * n, kInf);
  for (graph::NodeId dst = 0; dst < n; ++dst) {
    build_escape_column(g, depth, dst);
  }
}

void RoutingTables::build_escape_column(const graph::Graph& g,
                                        const std::vector<int>& depth,
                                        graph::NodeId dst) {
  const std::size_t n = n_;
  int* const sd = escape_sdist_.data() + static_cast<std::size_t>(dst) * 2 * n;
  auto sidx = [n](graph::NodeId v, int phase) {
    return static_cast<std::size_t>(phase) * n + v;
  };

  std::fill(sd, sd + 2 * n, kInf);
  std::queue<std::pair<graph::NodeId, int>> frontier;
  sd[sidx(dst, 0)] = 0;
  sd[sidx(dst, 1)] = 0;
  frontier.emplace(dst, 0);
  frontier.emplace(dst, 1);
  while (!frontier.empty()) {
    const auto [v, phase] = frontier.front();
    frontier.pop();
    const int d = sd[sidx(v, phase)];
    // Find predecessors (u, pu) with a forward transition into (v, phase).
    for (graph::NodeId u : g.neighbors(v)) {
      const bool up_uv = ud_goes_up(depth, u, v);
      // (u,0) -> (v,0) requires up; (u,0) -> (v,1) and (u,1) -> (v,1)
      // require down.
      if (phase == 0) {
        if (up_uv && sd[sidx(u, 0)] == kInf) {
          sd[sidx(u, 0)] = d + 1;
          frontier.emplace(u, 0);
        }
      } else {
        if (!up_uv) {
          for (int pu = 0; pu < 2; ++pu) {
            if (sd[sidx(u, pu)] == kInf) {
              sd[sidx(u, pu)] = d + 1;
              frontier.emplace(u, pu);
            }
          }
        }
      }
    }
  }

  for (graph::NodeId u = 0; u < n; ++u) {
    if (u == dst) continue;
    for (int phase = 0; phase < 2; ++phase) {
      escape_[phase][flat(u, dst)] =
          forward_escape_hop(g, depth, dst, u, phase, sd);
    }
  }
}

EscapeHop RoutingTables::forward_escape_hop(const graph::Graph& g,
                                            const std::vector<int>& depth,
                                            graph::NodeId dst, graph::NodeId u,
                                            int phase, const int* sd) const {
  const std::size_t n = n_;
  auto sidx = [n](graph::NodeId v, int ph) {
    return static_cast<std::size_t>(ph) * n + v;
  };
  const int d = sd[sidx(u, phase)];
  if (d == kInf) return EscapeHop{};  // unreachable state; never queried

  // Forward next hop: from (u, phase), pick the transition that decreases
  // the state distance (smallest port for determinism).
  const auto nbrs = g.neighbors(u);
  for (std::size_t p = 0; p < nbrs.size(); ++p) {
    const graph::NodeId w = nbrs[p];
    const bool up_uw = ud_goes_up(depth, u, w);
    if (phase == 0 && up_uw) {
      if (w == dst || sd[sidx(w, 0)] == d - 1) {
        return {static_cast<std::uint8_t>(p), 0};
      }
    }
    if (!up_uw) {  // down transition, allowed from either phase
      if (w == dst || sd[sidx(w, 1)] == d - 1) {
        return {static_cast<std::uint8_t>(p), 1};
      }
    }
  }
  throw std::logic_error("RoutingTables: inconsistent up*/down* state graph");
}

}  // namespace hm::noc
