#include "noc/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace hm::noc {

namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 4;

std::atomic<std::uint64_t> g_lifetime_builds{0};

/// Key used to orient edges for up*/down*: ascending (depth, id); an edge
/// goes "up" toward the endpoint with the smaller key.
struct UdKey {
  int depth;
  graph::NodeId id;
  [[nodiscard]] bool less_than(const UdKey& o) const {
    return depth != o.depth ? depth < o.depth : id < o.id;
  }
};

}  // namespace

std::uint64_t RoutingTables::lifetime_builds() noexcept {
  return g_lifetime_builds.load(std::memory_order_relaxed);
}

RoutingTables::RoutingTables(const graph::Graph& g) {
  const std::size_t n = g.node_count();
  if (n == 0) {
    throw std::invalid_argument("RoutingTables: empty graph");
  }
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("RoutingTables: graph must be connected");
  }
  if (g.max_degree() > 255) {
    throw std::invalid_argument("RoutingTables: degree must be <= 255");
  }
  g_lifetime_builds.fetch_add(1, std::memory_order_relaxed);
  n_ = n;

  degree_.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) degree_[v] = g.degree(v);

  // --- All-pairs distances (flat row-major) --------------------------------
  dist_.resize(n * n);
  for (graph::NodeId src = 0; src < n; ++src) {
    const auto row = graph::bfs_distances(g, src);
    std::copy(row.begin(), row.end(), dist_.begin() + flat(src, 0));
  }

  // --- Minimal next-hop port sets (CSR: offsets into one byte array) -------
  min_port_offset_.resize(n * n + 1, 0);
  min_port_data_.reserve(n * n);  // lower bound; most pairs have >= 1 port
  for (graph::NodeId cur = 0; cur < n; ++cur) {
    const auto nbrs = g.neighbors(cur);
    for (graph::NodeId dst = 0; dst < n; ++dst) {
      if (dst != cur) {
        const int want = dist_[flat(cur, dst)] - 1;
        for (std::size_t p = 0; p < nbrs.size(); ++p) {
          if (dist_[flat(nbrs[p], dst)] == want) {
            min_port_data_.push_back(static_cast<std::uint8_t>(p));
          }
        }
      }
      min_port_offset_[flat(cur, dst) + 1] =
          static_cast<std::uint32_t>(min_port_data_.size());
    }
  }

  // --- Escape network: BFS tree from a center, up*/down* orientation -------
  int best_ecc = kInf;
  for (graph::NodeId v = 0; v < n; ++v) {
    int ecc = 0;
    for (graph::NodeId u = 0; u < n; ++u) {
      ecc = std::max(ecc, dist_[flat(v, u)]);
    }
    if (ecc < best_ecc) {
      best_ecc = ecc;
      root_ = v;
    }
  }

  std::vector<UdKey> key(n);
  for (graph::NodeId v = 0; v < n; ++v) key[v] = {dist_[flat(root_, v)], v};

  // up(u, p): does the edge from u through port p go "up"?
  auto goes_up = [&](graph::NodeId u, graph::NodeId w) {
    return key[w].less_than(key[u]);
  };

  // State graph: state (v, phase). Forward transitions:
  //   (u, 0) -up-> (w, 0), (u, 0) -down-> (w, 1), (u, 1) -down-> (w, 1).
  // For each destination, run a backward BFS from {(dst,0), (dst,1)} over
  // reversed transitions and record the forward next hop per state.
  for (int phase = 0; phase < 2; ++phase) {
    escape_[phase].assign(n * n, EscapeHop{});
  }
  std::vector<int> sdist(2 * n);
  auto sidx = [n](graph::NodeId v, int phase) {
    return static_cast<std::size_t>(phase) * n + v;
  };

  for (graph::NodeId dst = 0; dst < n; ++dst) {
    std::fill(sdist.begin(), sdist.end(), kInf);
    std::queue<std::pair<graph::NodeId, int>> frontier;
    sdist[sidx(dst, 0)] = 0;
    sdist[sidx(dst, 1)] = 0;
    frontier.emplace(dst, 0);
    frontier.emplace(dst, 1);
    while (!frontier.empty()) {
      const auto [v, phase] = frontier.front();
      frontier.pop();
      const int d = sdist[sidx(v, phase)];
      // Find predecessors (u, pu) with a forward transition into (v, phase).
      for (graph::NodeId u : g.neighbors(v)) {
        const bool up_uv = goes_up(u, v);
        // (u,0) -> (v,0) requires up; (u,0) -> (v,1) and (u,1) -> (v,1)
        // require down.
        if (phase == 0) {
          if (up_uv && sdist[sidx(u, 0)] == kInf) {
            sdist[sidx(u, 0)] = d + 1;
            frontier.emplace(u, 0);
          }
        } else {
          if (!up_uv) {
            for (int pu = 0; pu < 2; ++pu) {
              if (sdist[sidx(u, pu)] == kInf) {
                sdist[sidx(u, pu)] = d + 1;
                frontier.emplace(u, pu);
              }
            }
          }
        }
      }
    }

    // Forward next hops: from (u, phase), pick the transition that decreases
    // the state distance (smallest port for determinism).
    for (graph::NodeId u = 0; u < n; ++u) {
      if (u == dst) continue;
      const auto nbrs = g.neighbors(u);
      for (int phase = 0; phase < 2; ++phase) {
        const int d = sdist[sidx(u, phase)];
        if (d == kInf) continue;  // unreachable state; never queried
        EscapeHop hop{};
        bool found = false;
        for (std::size_t p = 0; p < nbrs.size() && !found; ++p) {
          const graph::NodeId w = nbrs[p];
          const bool up_uw = goes_up(u, w);
          if (phase == 0 && up_uw) {
            if (w == dst || sdist[sidx(w, 0)] == d - 1) {
              hop = {static_cast<std::uint8_t>(p), 0};
              found = true;
            }
          }
          if (!up_uw) {  // down transition, allowed from either phase
            if (w == dst || sdist[sidx(w, 1)] == d - 1) {
              hop = {static_cast<std::uint8_t>(p), 1};
              found = true;
            }
          }
        }
        if (!found) {
          throw std::logic_error(
              "RoutingTables: inconsistent up*/down* state graph");
        }
        escape_[phase][flat(u, dst)] = hop;
      }
    }
  }
}

}  // namespace hm::noc
