// The assembled inter-chiplet network: one router per chiplet (vertex), two
// directed channels per D2D link (edge), and `endpoints_per_chiplet`
// endpoints per router, exactly as the paper configures BookSim2
// (Sec. VI-A). Pure transport: traffic generation lives in the Simulator.
//
// A Network is the mutable per-probe state (buffers, credits, statistics)
// built on top of an immutable shared TopologyContext (graph, routing
// tables, port maps). Routers, endpoints and channels are stored by value
// in contiguous vectors — sized exactly and wired once during construction,
// so the per-cycle step() walks flat arrays instead of chasing unique_ptr
// indirections, and every ring buffer is pre-sized to its occupancy bound
// (steady-state stepping does no heap allocation).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "noc/channel.hpp"
#include "noc/config.hpp"
#include "noc/endpoint.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/rng.hpp"
#include "noc/topology.hpp"

namespace hm::noc {

/// Degraded routing view installed after faults: routing tables built on the
/// post-fault live graph, plus the translations back to the physical
/// network. `live_id` maps physical router ids to live-graph ids (kDead for
/// offline routers); `port_map[r]` maps a live-graph port of router r back
/// to the physical port index. Built and owned by the fault controller; the
/// Network borrows it and pushes the per-router raw pointers down (it must
/// outlive the installation).
struct DegradedRouting {
  static constexpr std::uint32_t kDead = 0xFFFFFFFFu;
  std::shared_ptr<const TopologyContext> topo;
  std::vector<std::uint32_t> live_id;
  std::vector<std::vector<std::uint8_t>> port_map;
};

/// A ready-to-run network instance built from an arrangement graph.
class Network {
 public:
  /// Builds routers, endpoints and channels on a shared topology (connected,
  /// >= 1 vertex). The context is held read-only for the network's lifetime;
  /// any number of concurrent networks may share one context.
  Network(std::shared_ptr<const TopologyContext> topo, const SimConfig& cfg);

  /// Convenience: acquires the shared context for `g` (building routing
  /// tables only when no live context for an equal graph exists).
  Network(const graph::Graph& g, const SimConfig& cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Executes one cycle: channel delivery, endpoint injection, router step.
  /// With cfg.skip_idle (the default) only components that can make
  /// progress are visited (active-set worklists); otherwise every link,
  /// endpoint and router is swept densely. Both modes produce bit-identical
  /// results (test_active_set pins this) — the dense sweep stays as the
  /// reference implementation.
  void step(Cycle now);

  /// Enqueues a packet at endpoint `e` (false when its source queue is
  /// full) and arms the endpoint's active-set entry. All traffic must enter
  /// through here (or through a Simulator run): a direct
  /// endpoint().try_enqueue() would leave a skip-idle endpoint dormant.
  bool offer_packet(std::size_t e, const Packet& p);

  /// Re-seeds every router's arbitration stream from `base` (see
  /// Router::seed_rng). Simulator calls this right after taking a lease:
  /// the arena reuse key deliberately excludes the seed, so a recycled
  /// network may carry stale router streams.
  void seed_rngs(std::uint64_t base);

  /// True when nothing can happen until new traffic is offered: no buffered
  /// or in-flight flits, no queued packets, no in-flight credits. O(1) in
  /// skip-idle mode (all worklists empty), O(N) scan in dense mode. The
  /// Simulator fast-forwards quiescent stretches to the traffic source's
  /// next event cycle.
  [[nodiscard]] bool quiescent() const;

  /// Packets delivered whose generation time fell inside their sink's
  /// measurement window (O(1) running counter; see Endpoint::receive_flit).
  [[nodiscard]] std::uint64_t tagged_delivered() const noexcept {
    return tagged_delivered_;
  }

  /// Rewinds the network to its freshly-constructed state without touching
  /// any allocation: rings are emptied in place, VC/credit state and every
  /// statistic rewound, and the packet table cleared. A reset network is
  /// bit-identical to a new Network(topo, cfg) (test_arena pins this);
  /// SimulationArena uses it to recycle networks across probes.
  void reset();

  [[nodiscard]] std::size_t num_routers() const noexcept {
    return routers_.size();
  }
  [[nodiscard]] std::size_t num_endpoints() const noexcept {
    return endpoints_.size();
  }
  [[nodiscard]] Endpoint& endpoint(std::size_t e) { return endpoints_[e]; }
  [[nodiscard]] const Endpoint& endpoint(std::size_t e) const {
    return endpoints_[e];
  }
  [[nodiscard]] Router& router(std::size_t r) { return routers_[r]; }
  [[nodiscard]] const RoutingTables& tables() const noexcept {
    return topo_->tables();
  }
  [[nodiscard]] const TopologyContext& topology() const noexcept {
    return *topo_;
  }
  [[nodiscard]] const std::shared_ptr<const TopologyContext>&
  topology_ptr() const noexcept {
    return topo_;
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const PacketTable& packets() const noexcept {
    return packets_;
  }

  /// Flits buffered in routers plus flits on channels (conservation checks).
  [[nodiscard]] std::size_t flits_in_network() const;

  /// Sum of injected / ejected flits over all endpoints.
  [[nodiscard]] std::uint64_t total_flits_injected() const;
  [[nodiscard]] std::uint64_t total_flits_ejected() const;

  /// Network-wide hot-path counters since construction/reset: router stats
  /// summed (HWMs maxed) over all routers, plus the source-queue HWM over
  /// all endpoints. ~Simulator flushes this into the telemetry registry.
  struct HotStats {
    Router::HotStats routers;           ///< summed; ring_hwm is the max
    std::uint64_t source_queue_hwm = 0; ///< max endpoint queue occupancy
    std::uint64_t active_router_hwm = 0;  ///< max routers stepped in a cycle
    std::uint64_t router_steps = 0;       ///< router step() calls executed
    std::uint64_t cycles_stepped = 0;     ///< Network::step() calls
  };
  [[nodiscard]] HotStats hot_stats() const;

  /// Runs all router invariant checks; false + reason on violation.
  [[nodiscard]] bool invariants_ok(std::string* why = nullptr) const;

  // --- Fault injection (cold path; driven by faults::FaultController) -----

  /// Accounting of one fault transition. Every flit is conserved:
  /// injected == ejected + in-network + dropped holds before and after
  /// (invariants_ok checks it).
  struct FaultOutcome {
    std::uint64_t flits_dropped = 0;     ///< flits excised network-wide
    std::uint64_t packets_lost = 0;      ///< distinct packets losing flits
    std::uint64_t packets_flushed = 0;   ///< queued packets dropped unsent
    std::uint64_t packets_rerouted = 0;  ///< committed heads sent back to VA
  };

  /// Applies one batch of simultaneous fault events. `kill_links` /
  /// `repair_links` are undirected physical edges (currently wired /
  /// currently killed respectively); `router_online` is the full
  /// post-transition routable set (size num_routers) — routers leaving it
  /// are powered off wholesale (state excised, endpoints dead), routers
  /// re-entering come back with fresh flow state. In-flight flits of
  /// severed or unroutable packets are excised deterministically with
  /// upstream credits refunded, zero-progress allocations toward dead
  /// ports are revoked for re-routing, and the active-set worklists are
  /// rebuilt exactly. Install the matching DegradedRouting separately
  /// (possibly later: reconvergence window).
  FaultOutcome fault_transition(
      const std::vector<std::pair<graph::NodeId, graph::NodeId>>& kill_links,
      const std::vector<std::pair<graph::NodeId, graph::NodeId>>& repair_links,
      const std::vector<char>& router_online);

  /// Installs (nullptr: clears) the degraded routing view on every router.
  void set_degraded_routing(const DegradedRouting* dr);

  [[nodiscard]] bool endpoint_alive(std::size_t e) const {
    return endpoints_[e].alive();
  }
  [[nodiscard]] bool router_online(graph::NodeId r) const {
    return router_online_.empty() || router_online_[r] != 0;
  }
  /// Flits excised by fault transitions since construction/reset.
  [[nodiscard]] std::uint64_t flits_dropped() const noexcept {
    return flits_dropped_;
  }

 private:
  struct RouterLink {
    FlitChannel flits;      ///< from -> to
    CreditChannel credits;  ///< to -> from (credit returns)
    graph::NodeId from = 0;
    graph::NodeId to = 0;
    std::size_t out_port_at_from = 0;
    std::size_t in_port_at_to = 0;
  };
  struct EndpointChannels {
    FlitChannel injection;      ///< endpoint -> router
    CreditChannel inj_credits;  ///< router -> endpoint
    FlitChannel ejection;       ///< router -> endpoint
  };

  void step_dense(Cycle now);
  void step_active(Cycle now);
  /// Re-derives every worklist from scratch (exact post-fault state).
  void rebuild_worklists();

  /// Membership-flagged worklist push (no-op when already a member).
  static void arm(std::vector<std::uint32_t>& list, std::vector<char>& flag,
                  std::size_t idx) {
    if (!flag[idx]) {
      flag[idx] = 1;
      list.push_back(static_cast<std::uint32_t>(idx));
    }
  }

  SimConfig cfg_;
  std::shared_ptr<const TopologyContext> topo_;
  /// Cold per-packet records (SoA split); declared before routers/endpoints
  /// so its address is valid while they are wired. Stable: Network is
  /// neither copyable nor movable.
  PacketTable packets_;
  std::vector<Router> routers_;
  std::vector<Endpoint> endpoints_;
  std::vector<RouterLink> links_;
  std::vector<EndpointChannels> ep_channels_;

  // --- Active-set worklists (skip-idle stepping) --------------------------
  // A component sits on its worklist exactly while it can make progress:
  // links/channels with anything in flight, routers with buffered flits,
  // endpoints with queued packets. Each list carries a parallel membership
  // flag so arming is O(1) and idempotent; step_active compacts the lists
  // in place as components drain. Re-arming happens at the producer: a
  // router step arms exactly the channels its ports pushed into this step
  // (the router's SA scratch records pushed ports; the target tables below
  // map ports to worklist entries), channel delivery arms the receiving
  // router, and offer_packet arms the endpoint.
  std::vector<std::uint32_t> active_links_;
  std::vector<char> link_active_;
  std::vector<std::uint32_t> active_chans_;
  std::vector<char> chan_active_;
  std::vector<std::uint32_t> active_routers_;
  std::vector<char> router_active_;
  std::vector<std::uint32_t> active_eps_;
  std::vector<char> ep_active_;
  /// Port -> worklist-target tables, built once at wiring time. For router
  /// r and port p, out_flit_target_[r][p] is the worklist entry to arm when
  /// that port pushes a flit (a link for network ports, an endpoint-channel
  /// ejection for endpoint ports) and in_credit_target_[r][p] the entry
  /// armed when a grant on that input port returns a credit (the reverse
  /// link, or the endpoint's injection-credit channel). Endpoint-channel
  /// entries carry kChanBit; links are plain indices.
  static constexpr std::uint32_t kChanBit = 0x80000000u;
  std::vector<std::vector<std::uint32_t>> out_flit_target_;
  std::vector<std::vector<std::uint32_t>> in_credit_target_;

  // --- Fault state (empty/zero until the first fault_transition) ----------
  std::vector<char> router_online_;     ///< empty == everything online
  std::uint64_t flits_dropped_ = 0;     ///< excised flits (conservation)
  bool fault_dirty_ = false;            ///< reset() must rewind fault wiring

  std::uint64_t tagged_delivered_ = 0;   ///< in-window packet completions
  std::uint64_t active_router_hwm_ = 0;  ///< max |active_routers_| per step
  std::uint64_t router_steps_ = 0;       ///< router step() calls executed
  std::uint64_t cycles_stepped_ = 0;     ///< Network::step() calls
};

}  // namespace hm::noc
