// The assembled inter-chiplet network: one router per chiplet (vertex), two
// directed channels per D2D link (edge), and `endpoints_per_chiplet`
// endpoints per router, exactly as the paper configures BookSim2
// (Sec. VI-A). Pure transport: traffic generation lives in the Simulator.
//
// A Network is the mutable per-probe state (buffers, credits, statistics)
// built on top of an immutable shared TopologyContext (graph, routing
// tables, port maps). Routers, endpoints and channels are stored by value
// in contiguous vectors — sized exactly and wired once during construction,
// so the per-cycle step() walks flat arrays instead of chasing unique_ptr
// indirections, and every ring buffer is pre-sized to its occupancy bound
// (steady-state stepping does no heap allocation).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "noc/channel.hpp"
#include "noc/config.hpp"
#include "noc/endpoint.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/rng.hpp"
#include "noc/topology.hpp"

namespace hm::noc {

/// A ready-to-run network instance built from an arrangement graph.
class Network {
 public:
  /// Builds routers, endpoints and channels on a shared topology (connected,
  /// >= 1 vertex). The context is held read-only for the network's lifetime;
  /// any number of concurrent networks may share one context.
  Network(std::shared_ptr<const TopologyContext> topo, const SimConfig& cfg);

  /// Convenience: acquires the shared context for `g` (building routing
  /// tables only when no live context for an equal graph exists).
  Network(const graph::Graph& g, const SimConfig& cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Executes one cycle: channel delivery, endpoint injection, router step.
  void step(Cycle now, Rng& rng);

  /// Rewinds the network to its freshly-constructed state without touching
  /// any allocation: rings are emptied in place, VC/credit state and every
  /// statistic rewound, and the packet table cleared. A reset network is
  /// bit-identical to a new Network(topo, cfg) (test_arena pins this);
  /// SimulationArena uses it to recycle networks across probes.
  void reset();

  [[nodiscard]] std::size_t num_routers() const noexcept {
    return routers_.size();
  }
  [[nodiscard]] std::size_t num_endpoints() const noexcept {
    return endpoints_.size();
  }
  [[nodiscard]] Endpoint& endpoint(std::size_t e) { return endpoints_[e]; }
  [[nodiscard]] const Endpoint& endpoint(std::size_t e) const {
    return endpoints_[e];
  }
  [[nodiscard]] Router& router(std::size_t r) { return routers_[r]; }
  [[nodiscard]] const RoutingTables& tables() const noexcept {
    return topo_->tables();
  }
  [[nodiscard]] const TopologyContext& topology() const noexcept {
    return *topo_;
  }
  [[nodiscard]] const std::shared_ptr<const TopologyContext>&
  topology_ptr() const noexcept {
    return topo_;
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const PacketTable& packets() const noexcept {
    return packets_;
  }

  /// Flits buffered in routers plus flits on channels (conservation checks).
  [[nodiscard]] std::size_t flits_in_network() const;

  /// Sum of injected / ejected flits over all endpoints.
  [[nodiscard]] std::uint64_t total_flits_injected() const;
  [[nodiscard]] std::uint64_t total_flits_ejected() const;

  /// Network-wide hot-path counters since construction/reset: router stats
  /// summed (HWMs maxed) over all routers, plus the source-queue HWM over
  /// all endpoints. ~Simulator flushes this into the telemetry registry.
  struct HotStats {
    Router::HotStats routers;           ///< summed; ring_hwm is the max
    std::uint64_t source_queue_hwm = 0; ///< max endpoint queue occupancy
  };
  [[nodiscard]] HotStats hot_stats() const;

  /// Runs all router invariant checks; false + reason on violation.
  [[nodiscard]] bool invariants_ok(std::string* why = nullptr) const;

 private:
  struct RouterLink {
    FlitChannel flits;      ///< from -> to
    CreditChannel credits;  ///< to -> from (credit returns)
    graph::NodeId from = 0;
    graph::NodeId to = 0;
    std::size_t out_port_at_from = 0;
    std::size_t in_port_at_to = 0;
  };
  struct EndpointChannels {
    FlitChannel injection;      ///< endpoint -> router
    CreditChannel inj_credits;  ///< router -> endpoint
    FlitChannel ejection;       ///< router -> endpoint
  };

  SimConfig cfg_;
  std::shared_ptr<const TopologyContext> topo_;
  /// Cold per-packet records (SoA split); declared before routers/endpoints
  /// so its address is valid while they are wired. Stable: Network is
  /// neither copyable nor movable.
  PacketTable packets_;
  std::vector<Router> routers_;
  std::vector<Endpoint> endpoints_;
  std::vector<RouterLink> links_;
  std::vector<EndpointChannels> ep_channels_;
};

}  // namespace hm::noc
