#include "noc/network.hpp"

#include <stdexcept>

namespace hm::noc {

Network::Network(const graph::Graph& g, const SimConfig& cfg)
    : Network(TopologyContext::acquire(g), cfg) {}

Network::Network(std::shared_ptr<const TopologyContext> topo,
                 const SimConfig& cfg)
    : cfg_(cfg), topo_(std::move(topo)) {
  if (topo_ == nullptr) {
    throw std::invalid_argument("Network: null topology context");
  }
  cfg_.validate();
  const graph::Graph& g = topo_->graph();
  const std::size_t n = g.node_count();
  const std::size_t eps = static_cast<std::size_t>(cfg_.endpoints_per_chiplet);
  if (n * eps > 0xFFFF) {
    throw std::invalid_argument("Network: endpoint ids must fit in 16 bits");
  }

  // All storage is by value: reserve exact element counts up front so the
  // channel/router addresses taken during wiring stay valid.
  routers_.reserve(n);
  for (graph::NodeId r = 0; r < n; ++r) {
    routers_.emplace_back(r, cfg_, &topo_->tables(), &packets_);
  }

  // Two directed channels per undirected edge, wired from the context's
  // precomputed port map. A channel holds at most `latency` entries (one
  // push per cycle; older entries have been delivered), so pre-size to that.
  const auto directed = topo_->directed_links();
  links_.resize(directed.size());
  for (std::size_t i = 0; i < directed.size(); ++i) {
    const auto& d = directed[i];
    RouterLink& link = links_[i];
    link.from = d.from;
    link.to = d.to;
    link.out_port_at_from = d.out_port_at_from;
    link.in_port_at_to = d.in_port_at_to;
    link.flits.reserve(static_cast<std::size_t>(cfg_.link_latency) + 1);
    link.credits.reserve(static_cast<std::size_t>(cfg_.link_latency) + 1);
    routers_[link.from].wire_output(link.out_port_at_from, &link.flits,
                                    cfg_.link_latency);
    routers_[link.to].wire_credit_return(link.in_port_at_to, &link.credits,
                                         cfg_.link_latency);
  }

  // Endpoints and their injection/ejection channels.
  endpoints_.reserve(n * eps);
  ep_channels_.resize(n * eps);
  for (std::size_t e = 0; e < n * eps; ++e) {
    const auto router = static_cast<graph::NodeId>(e / eps);
    const std::size_t local = e % eps;
    const std::size_t port = g.degree(router) + local;

    EndpointChannels& chans = ep_channels_[e];
    chans.injection.reserve(
        static_cast<std::size_t>(cfg_.injection_link_latency) + 1);
    chans.inj_credits.reserve(
        static_cast<std::size_t>(cfg_.injection_link_latency) + 1);
    chans.ejection.reserve(
        static_cast<std::size_t>(cfg_.ejection_link_latency) + 1);
    Endpoint& ep = endpoints_.emplace_back(static_cast<std::uint16_t>(e),
                                           cfg_, &packets_);
    ep.wire_injection(&chans.injection, cfg_.injection_link_latency);
    routers_[router].wire_credit_return(port, &chans.inj_credits,
                                        cfg_.injection_link_latency);
    routers_[router].wire_output(port, &chans.ejection,
                                 cfg_.ejection_link_latency);
  }
}

void Network::step(Cycle now, Rng& rng) {
  // 1. Deliver everything arriving this cycle.
  for (auto& link : links_) {
    while (link.flits.ready(now)) {
      routers_[link.to].receive_flit(link.in_port_at_to, link.flits.pop(),
                                     now);
    }
    while (link.credits.ready(now)) {
      routers_[link.from].receive_credit(link.out_port_at_from,
                                         link.credits.pop());
    }
  }
  const std::size_t eps = static_cast<std::size_t>(cfg_.endpoints_per_chiplet);
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    EndpointChannels& chans = ep_channels_[e];
    const auto router = e / eps;
    const std::size_t port = routers_[router].network_ports() + e % eps;
    while (chans.injection.ready(now)) {
      routers_[router].receive_flit(port, chans.injection.pop(), now);
    }
    while (chans.inj_credits.ready(now)) {
      endpoints_[e].receive_credit(chans.inj_credits.pop());
    }
    while (chans.ejection.ready(now)) {
      endpoints_[e].receive_flit(chans.ejection.pop(), now);
    }
  }

  // 2. Endpoints inject.
  for (auto& ep : endpoints_) ep.inject(now);

  // 3. Routers advance.
  for (auto& r : routers_) r.step(now, rng);
}

void Network::reset() {
  for (auto& link : links_) {
    link.flits.clear();
    link.credits.clear();
  }
  for (auto& chans : ep_channels_) {
    chans.injection.clear();
    chans.inj_credits.clear();
    chans.ejection.clear();
  }
  for (auto& r : routers_) r.reset();
  for (auto& ep : endpoints_) ep.reset();
  packets_.clear();
}

std::size_t Network::flits_in_network() const {
  std::size_t total = 0;
  for (const auto& r : routers_) total += r.buffered_flits();
  for (const auto& link : links_) total += link.flits.in_flight();
  for (const auto& chans : ep_channels_) {
    total += chans.injection.in_flight() + chans.ejection.in_flight();
  }
  return total;
}

std::uint64_t Network::total_flits_injected() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints_) total += ep.flits_injected();
  return total;
}

std::uint64_t Network::total_flits_ejected() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints_) total += ep.sink().flits_ejected;
  return total;
}

Network::HotStats Network::hot_stats() const {
  HotStats out;
  for (const auto& r : routers_) {
    const Router::HotStats& s = r.hot_stats();
    out.routers.flits_routed += s.flits_routed;
    out.routers.va_stall_cycles += s.va_stall_cycles;
    out.routers.sa_conflict_stalls += s.sa_conflict_stalls;
    out.routers.sa_credit_stalls += s.sa_credit_stalls;
    out.routers.heads_revoked += s.heads_revoked;
    if (s.ring_hwm > out.routers.ring_hwm) out.routers.ring_hwm = s.ring_hwm;
  }
  for (const auto& ep : endpoints_) {
    if (ep.queue_hwm() > out.source_queue_hwm) {
      out.source_queue_hwm = ep.queue_hwm();
    }
  }
  return out;
}

bool Network::invariants_ok(std::string* why) const {
  for (const auto& r : routers_) {
    if (!r.invariants_ok(why)) return false;
  }
  if (total_flits_injected() !=
      total_flits_ejected() + flits_in_network()) {
    if (why != nullptr) *why = "flit conservation violated";
    return false;
  }
  return true;
}

}  // namespace hm::noc
