#include "noc/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace hm::noc {

namespace {

/// Index of `u` within the sorted neighbour list of `v` (v's port toward u).
std::size_t port_of(const graph::Graph& g, graph::NodeId v, graph::NodeId u) {
  const auto nbrs = g.neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
  if (it == nbrs.end() || *it != u) {
    throw std::logic_error("Network: port_of called for non-neighbour");
  }
  return static_cast<std::size_t>(it - nbrs.begin());
}

}  // namespace

Network::Network(const graph::Graph& g, const SimConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  const std::size_t n = g.node_count();
  const std::size_t eps = static_cast<std::size_t>(cfg_.endpoints_per_chiplet);
  if (n * eps > 0xFFFF) {
    throw std::invalid_argument("Network: endpoint ids must fit in 16 bits");
  }

  tables_ = std::make_unique<RoutingTables>(g);

  routers_.reserve(n);
  for (graph::NodeId r = 0; r < n; ++r) {
    routers_.push_back(std::make_unique<Router>(r, cfg_, tables_.get()));
  }

  // Two directed channels per undirected edge.
  for (const auto& [a, b] : g.edges()) {
    for (int dir = 0; dir < 2; ++dir) {
      auto link = std::make_unique<RouterLink>();
      link->from = dir == 0 ? a : b;
      link->to = dir == 0 ? b : a;
      link->out_port_at_from = port_of(g, link->from, link->to);
      link->in_port_at_to = port_of(g, link->to, link->from);
      routers_[link->from]->wire_output(link->out_port_at_from, &link->flits,
                                        cfg_.link_latency);
      routers_[link->to]->wire_credit_return(link->in_port_at_to,
                                             &link->credits,
                                             cfg_.link_latency);
      links_.push_back(std::move(link));
    }
  }

  // Endpoints and their injection/ejection channels.
  endpoints_.reserve(n * eps);
  ep_channels_.reserve(n * eps);
  for (std::size_t e = 0; e < n * eps; ++e) {
    const auto router = static_cast<graph::NodeId>(e / eps);
    const std::size_t local = e % eps;
    const std::size_t port = g.degree(router) + local;

    auto chans = std::make_unique<EndpointChannels>();
    auto ep = std::make_unique<Endpoint>(static_cast<std::uint16_t>(e), cfg_);
    ep->wire_injection(&chans->injection, cfg_.injection_link_latency);
    routers_[router]->wire_credit_return(port, &chans->inj_credits,
                                         cfg_.injection_link_latency);
    routers_[router]->wire_output(port, &chans->ejection,
                                  cfg_.ejection_link_latency);
    endpoints_.push_back(std::move(ep));
    ep_channels_.push_back(std::move(chans));
  }
}

void Network::step(Cycle now, Rng& rng) {
  // 1. Deliver everything arriving this cycle.
  for (auto& link : links_) {
    while (link->flits.ready(now)) {
      routers_[link->to]->receive_flit(link->in_port_at_to, link->flits.pop(),
                                       now);
    }
    while (link->credits.ready(now)) {
      routers_[link->from]->receive_credit(link->out_port_at_from,
                                           link->credits.pop());
    }
  }
  const std::size_t eps = static_cast<std::size_t>(cfg_.endpoints_per_chiplet);
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    auto& chans = *ep_channels_[e];
    const auto router = e / eps;
    const std::size_t port = routers_[router]->network_ports() + e % eps;
    while (chans.injection.ready(now)) {
      routers_[router]->receive_flit(port, chans.injection.pop(), now);
    }
    while (chans.inj_credits.ready(now)) {
      endpoints_[e]->receive_credit(chans.inj_credits.pop());
    }
    while (chans.ejection.ready(now)) {
      endpoints_[e]->receive_flit(chans.ejection.pop(), now);
    }
  }

  // 2. Endpoints inject.
  for (auto& ep : endpoints_) ep->inject(now);

  // 3. Routers advance.
  for (auto& r : routers_) r->step(now, rng);
}

std::size_t Network::flits_in_network() const {
  std::size_t total = 0;
  for (const auto& r : routers_) total += r->buffered_flits();
  for (const auto& link : links_) total += link->flits.in_flight();
  for (const auto& chans : ep_channels_) {
    total += chans->injection.in_flight() + chans->ejection.in_flight();
  }
  return total;
}

std::uint64_t Network::total_flits_injected() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints_) total += ep->flits_injected();
  return total;
}

std::uint64_t Network::total_flits_ejected() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints_) total += ep->sink().flits_ejected;
  return total;
}

bool Network::invariants_ok(std::string* why) const {
  for (const auto& r : routers_) {
    if (!r->invariants_ok(why)) return false;
  }
  if (total_flits_injected() !=
      total_flits_ejected() + flits_in_network()) {
    if (why != nullptr) *why = "flit conservation violated";
    return false;
  }
  return true;
}

}  // namespace hm::noc
