#include "noc/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace hm::noc {

Network::Network(const graph::Graph& g, const SimConfig& cfg)
    : Network(TopologyContext::acquire(g), cfg) {}

Network::Network(std::shared_ptr<const TopologyContext> topo,
                 const SimConfig& cfg)
    : cfg_(cfg), topo_(std::move(topo)) {
  if (topo_ == nullptr) {
    throw std::invalid_argument("Network: null topology context");
  }
  cfg_.validate();
  const graph::Graph& g = topo_->graph();
  const std::size_t n = g.node_count();
  const std::size_t eps = static_cast<std::size_t>(cfg_.endpoints_per_chiplet);
  if (n * eps > 0xFFFF) {
    throw std::invalid_argument("Network: endpoint ids must fit in 16 bits");
  }

  // All storage is by value: reserve exact element counts up front so the
  // channel/router addresses taken during wiring stay valid.
  routers_.reserve(n);
  for (graph::NodeId r = 0; r < n; ++r) {
    routers_.emplace_back(r, cfg_, &topo_->tables(), &packets_);
  }

  // Two directed channels per undirected edge, wired from the context's
  // precomputed port map. A channel holds at most `latency` entries (one
  // push per cycle; older entries have been delivered), so pre-size to that.
  const auto directed = topo_->directed_links();
  links_.resize(directed.size());
  out_flit_target_.resize(n);
  in_credit_target_.resize(n);
  for (graph::NodeId r = 0; r < n; ++r) {
    out_flit_target_[r].assign(routers_[r].total_ports(), 0xFFFFFFFFu);
    in_credit_target_[r].assign(routers_[r].total_ports(), 0xFFFFFFFFu);
  }
  for (std::size_t i = 0; i < directed.size(); ++i) {
    const auto& d = directed[i];
    RouterLink& link = links_[i];
    link.from = d.from;
    link.to = d.to;
    link.out_port_at_from = d.out_port_at_from;
    link.in_port_at_to = d.in_port_at_to;
    link.flits.reserve(static_cast<std::size_t>(cfg_.link_latency) + 1);
    link.credits.reserve(static_cast<std::size_t>(cfg_.link_latency) + 1);
    routers_[link.from].wire_output(link.out_port_at_from, &link.flits,
                                    cfg_.link_latency);
    routers_[link.to].wire_credit_return(link.in_port_at_to, &link.credits,
                                         cfg_.link_latency);
    // A step of either end can (re-)fill this link: `from` pushes flits,
    // `to` pushes credit returns.
    out_flit_target_[link.from][link.out_port_at_from] =
        static_cast<std::uint32_t>(i);
    in_credit_target_[link.to][link.in_port_at_to] =
        static_cast<std::uint32_t>(i);
  }

  // Endpoints and their injection/ejection channels.
  endpoints_.reserve(n * eps);
  ep_channels_.resize(n * eps);
  for (std::size_t e = 0; e < n * eps; ++e) {
    const auto router = static_cast<graph::NodeId>(e / eps);
    const std::size_t local = e % eps;
    const std::size_t port = g.degree(router) + local;

    EndpointChannels& chans = ep_channels_[e];
    chans.injection.reserve(
        static_cast<std::size_t>(cfg_.injection_link_latency) + 1);
    chans.inj_credits.reserve(
        static_cast<std::size_t>(cfg_.injection_link_latency) + 1);
    chans.ejection.reserve(
        static_cast<std::size_t>(cfg_.ejection_link_latency) + 1);
    Endpoint& ep = endpoints_.emplace_back(static_cast<std::uint16_t>(e),
                                           cfg_, &packets_);
    ep.wire_injection(&chans.injection, cfg_.injection_link_latency);
    routers_[router].wire_credit_return(port, &chans.inj_credits,
                                        cfg_.injection_link_latency);
    routers_[router].wire_output(port, &chans.ejection,
                                 cfg_.ejection_link_latency);
    out_flit_target_[router][port] = kChanBit | static_cast<std::uint32_t>(e);
    in_credit_target_[router][port] = kChanBit | static_cast<std::uint32_t>(e);
  }

  // Worklist storage: membership flags plus capacity for the worst case
  // (every component active) so arming never allocates mid-run.
  link_active_.assign(links_.size(), 0);
  chan_active_.assign(ep_channels_.size(), 0);
  router_active_.assign(routers_.size(), 0);
  ep_active_.assign(endpoints_.size(), 0);
  active_links_.reserve(links_.size());
  active_chans_.reserve(ep_channels_.size());
  active_routers_.reserve(routers_.size());
  active_eps_.reserve(endpoints_.size());
}

bool Network::offer_packet(std::size_t e, const Packet& p) {
  if (!endpoints_[e].try_enqueue(p)) return false;
  arm(active_eps_, ep_active_, e);
  return true;
}

void Network::seed_rngs(std::uint64_t base) {
  cfg_.seed = base;
  for (auto& r : routers_) r.seed_rng(base);
}

// HM_HOT: per-cycle simulation path — no allocation, no throw (hm_lint R3).
void Network::step(Cycle now) {
  if (cfg_.skip_idle) {
    step_active(now);
  } else {
    step_dense(now);
  }
  ++cycles_stepped_;
}

// HM_HOT: per-cycle simulation path — no allocation, no throw.
void Network::step_dense(Cycle now) {
  // 1. Deliver everything arriving this cycle.
  for (auto& link : links_) {
    while (link.flits.ready(now)) {
      routers_[link.to].receive_flit(link.in_port_at_to, link.flits.pop(),
                                     now);
    }
    while (link.credits.ready(now)) {
      routers_[link.from].receive_credit(link.out_port_at_from,
                                         link.credits.pop());
    }
  }
  const std::size_t eps = static_cast<std::size_t>(cfg_.endpoints_per_chiplet);
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    EndpointChannels& chans = ep_channels_[e];
    const auto router = e / eps;
    const std::size_t port = routers_[router].network_ports() + e % eps;
    while (chans.injection.ready(now)) {
      routers_[router].receive_flit(port, chans.injection.pop(), now);
    }
    while (chans.inj_credits.ready(now)) {
      endpoints_[e].receive_credit(chans.inj_credits.pop());
    }
    while (chans.ejection.ready(now)) {
      if (endpoints_[e].receive_flit(chans.ejection.pop(), now)) {
        ++tagged_delivered_;
      }
    }
  }

  // 2. Endpoints inject.
  for (auto& ep : endpoints_) ep.inject(now);

  // 3. Routers advance.
  for (auto& r : routers_) r.step(now);
  router_steps_ += routers_.size();
  if (routers_.size() > active_router_hwm_) {
    active_router_hwm_ = routers_.size();
  }
}

// HM_HOT: per-cycle simulation path — no allocation, no throw.
void Network::step_active(Cycle now) {
  // Identical per-component operations and phase order as step_dense; only
  // components that can make progress are visited. Correctness rests on two
  // facts pinned by test_active_set: (a) a step / delivery sweep of an idle
  // component is an observable no-op (idle routers draw no RNG and mutate
  // nothing; empty channels deliver nothing; endpoints with empty queues
  // inject nothing), and (b) within a phase, operations on distinct
  // components commute (each delivery/step touches disjoint state), so the
  // worklist order standing in for index order cannot change the outcome.
  const std::size_t eps = static_cast<std::size_t>(cfg_.endpoints_per_chiplet);

  // 1a. Deliver link arrivals; drop drained links from the worklist.
  for (std::size_t i = 0; i < active_links_.size();) {
    const std::uint32_t li = active_links_[i];
    RouterLink& link = links_[li];
    while (link.flits.ready(now)) {
      routers_[link.to].receive_flit(link.in_port_at_to, link.flits.pop(),
                                     now);
      arm(active_routers_, router_active_, link.to);
    }
    while (link.credits.ready(now)) {
      // Credits top up output-VC counters but cannot start progress on
      // their own: any flit waiting for them is buffered downstream-side,
      // which already keeps its router on the worklist.
      routers_[link.from].receive_credit(link.out_port_at_from,
                                         link.credits.pop());
    }
    if (link.flits.in_flight() == 0 && link.credits.in_flight() == 0) {
      link_active_[li] = 0;
      active_links_[i] = active_links_.back();
      active_links_.pop_back();
    } else {
      ++i;
    }
  }

  // 1b. Deliver endpoint-channel arrivals.
  for (std::size_t i = 0; i < active_chans_.size();) {
    const std::uint32_t e = active_chans_[i];
    EndpointChannels& chans = ep_channels_[e];
    const std::size_t router = e / eps;
    const std::size_t port = routers_[router].network_ports() + e % eps;
    while (chans.injection.ready(now)) {
      routers_[router].receive_flit(port, chans.injection.pop(), now);
      arm(active_routers_, router_active_, router);
    }
    while (chans.inj_credits.ready(now)) {
      // An endpoint with queued packets is already on the worklist; one
      // with an empty queue has no use for the credit until new traffic
      // arrives (offer_packet arms it then).
      endpoints_[e].receive_credit(chans.inj_credits.pop());
    }
    while (chans.ejection.ready(now)) {
      if (endpoints_[e].receive_flit(chans.ejection.pop(), now)) {
        ++tagged_delivered_;
      }
    }
    if (chans.injection.in_flight() == 0 &&
        chans.inj_credits.in_flight() == 0 &&
        chans.ejection.in_flight() == 0) {
      chan_active_[e] = 0;
      active_chans_[i] = active_chans_.back();
      active_chans_.pop_back();
    } else {
      ++i;
    }
  }

  // 2. Endpoints with queued packets inject; drop drained queues.
  for (std::size_t i = 0; i < active_eps_.size();) {
    const std::uint32_t e = active_eps_[i];
    endpoints_[e].inject(now);
    if (ep_channels_[e].injection.in_flight() > 0) {
      arm(active_chans_, chan_active_, e);
    }
    if (endpoints_[e].queue_length() == 0) {
      ep_active_[e] = 0;
      active_eps_[i] = active_eps_.back();
      active_eps_.pop_back();
    } else {
      ++i;
    }
  }

  // 3. Routers with buffered flits advance; arm whatever they pushed into,
  // drop the ones that drained.
  router_steps_ += active_routers_.size();
  if (active_routers_.size() > active_router_hwm_) {
    active_router_hwm_ = active_routers_.size();
  }
  for (std::size_t i = 0; i < active_routers_.size();) {
    const std::uint32_t r = active_routers_[i];
    routers_[r].step(now);
    // Arm exactly what this step pushed: the SA scratch records which out
    // ports sent a flit and which in ports granted (and so returned a
    // credit); the target tables map those ports straight to worklist
    // entries. Channels still carrying older traffic are already armed —
    // a channel only leaves its worklist when fully drained.
    const std::vector<char>& outs = routers_[r].out_ports_pushed();
    const std::vector<char>& ins = routers_[r].in_ports_granted();
    for (std::size_t p = 0; p < outs.size(); ++p) {
      if (outs[p] != 0) {
        const std::uint32_t t = out_flit_target_[r][p];
        if ((t & kChanBit) != 0) {
          arm(active_chans_, chan_active_, t & ~kChanBit);
        } else {
          arm(active_links_, link_active_, t);
        }
      }
      if (ins[p] != 0) {
        const std::uint32_t t = in_credit_target_[r][p];
        if ((t & kChanBit) != 0) {
          arm(active_chans_, chan_active_, t & ~kChanBit);
        } else {
          arm(active_links_, link_active_, t);
        }
      }
    }
    if (routers_[r].buffered_flit_count() == 0) {
      router_active_[r] = 0;
      active_routers_[i] = active_routers_.back();
      active_routers_.pop_back();
    } else {
      ++i;
    }
  }
}

bool Network::quiescent() const {
  if (cfg_.skip_idle) {
    // The worklists are exact between steps: empty lists == nothing
    // buffered, queued or in flight anywhere.
    return active_links_.empty() && active_chans_.empty() &&
           active_routers_.empty() && active_eps_.empty();
  }
  for (const auto& r : routers_) {
    if (r.buffered_flit_count() != 0) return false;
  }
  for (const auto& link : links_) {
    if (link.flits.in_flight() != 0 || link.credits.in_flight() != 0) {
      return false;
    }
  }
  for (const auto& chans : ep_channels_) {
    if (chans.injection.in_flight() != 0 ||
        chans.inj_credits.in_flight() != 0 ||
        chans.ejection.in_flight() != 0) {
      return false;
    }
  }
  for (const auto& ep : endpoints_) {
    if (ep.queue_length() != 0) return false;
  }
  return true;
}

// HM_HOT: arena lease rewind — runs once per probe between
// simulations; reuses wired storage, never reallocates.
void Network::reset() {
  if (fault_dirty_) {
    // Fault transitions detach channel pointers and install degraded
    // routing views; a reset network must match a fresh build bit for bit,
    // so re-run the construction wiring before the state rewind.
    for (auto& link : links_) {
      routers_[link.from].wire_output(link.out_port_at_from, &link.flits,
                                      cfg_.link_latency);
      routers_[link.to].wire_credit_return(link.in_port_at_to, &link.credits,
                                           cfg_.link_latency);
    }
    const std::size_t eps =
        static_cast<std::size_t>(cfg_.endpoints_per_chiplet);
    for (std::size_t e = 0; e < endpoints_.size(); ++e) {
      const std::size_t router = e / eps;
      const std::size_t port = routers_[router].network_ports() + e % eps;
      routers_[router].wire_credit_return(port, &ep_channels_[e].inj_credits,
                                          cfg_.injection_link_latency);
      routers_[router].wire_output(port, &ep_channels_[e].ejection,
                                   cfg_.ejection_link_latency);
    }
    for (auto& r : routers_) r.set_degraded(nullptr, nullptr, nullptr);
    router_online_.clear();
    flits_dropped_ = 0;
    fault_dirty_ = false;
  }
  for (auto& link : links_) {
    link.flits.clear();
    link.credits.clear();
  }
  for (auto& chans : ep_channels_) {
    chans.injection.clear();
    chans.inj_credits.clear();
    chans.ejection.clear();
  }
  for (auto& r : routers_) r.reset();
  for (auto& ep : endpoints_) ep.reset();
  packets_.clear();
  active_links_.clear();
  active_chans_.clear();
  active_routers_.clear();
  active_eps_.clear();
  std::fill(link_active_.begin(), link_active_.end(), 0);
  std::fill(chan_active_.begin(), chan_active_.end(), 0);
  std::fill(router_active_.begin(), router_active_.end(), 0);
  std::fill(ep_active_.begin(), ep_active_.end(), 0);
  tagged_delivered_ = 0;
  active_router_hwm_ = 0;
  router_steps_ = 0;
  cycles_stepped_ = 0;
}

Network::FaultOutcome Network::fault_transition(
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& kill_links,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& repair_links,
    const std::vector<char>& router_online) {
  assert(router_online.size() == routers_.size());
  fault_dirty_ = true;
  const std::size_t n = routers_.size();
  const std::size_t eps = static_cast<std::size_t>(cfg_.endpoints_per_chiplet);
  if (router_online_.empty()) router_online_.assign(n, 1);
  const std::vector<char> was_online = router_online_;
  FaultOutcome out;

  auto find_directed = [&](graph::NodeId from,
                           graph::NodeId to) -> RouterLink& {
    for (auto& link : links_) {
      if (link.from == from && link.to == to) return link;
    }
    throw std::logic_error("Network::fault_transition: unknown link");
  };

  // 1. Kill both port sides of every killed link, harvesting the packet
  // ids of flits caught on the wire (the wormhole is severed: the whole
  // packet is poisoned network-wide). In-flight credits die with the port
  // (its counters are sealed to zero anyway).
  std::vector<std::vector<char>> dead_port(n);
  auto mark_dead = [&](graph::NodeId r, std::size_t port) {
    if (dead_port[r].empty()) dead_port[r].assign(routers_[r].total_ports(), 0);
    dead_port[r][port] = 1;
  };
  auto is_dead_port = [&](graph::NodeId r, std::size_t port) {
    return !dead_port[r].empty() && dead_port[r][port] != 0;
  };
  std::vector<std::uint32_t> poison_list;
  for (const auto& [a, b] : kill_links) {
    RouterLink& ab = find_directed(a, b);
    RouterLink& ba = find_directed(b, a);
    routers_[a].fault_kill_port(ab.out_port_at_from);
    routers_[b].fault_kill_port(ba.out_port_at_from);
    mark_dead(a, ab.out_port_at_from);
    mark_dead(b, ba.out_port_at_from);
    const auto harvest = [&](const Flit& f) {
      poison_list.push_back(f.packet_id);
    };
    ab.flits.for_each(harvest);
    ba.flits.for_each(harvest);
    ab.credits.clear();
    ba.credits.clear();
  }

  // 2. Routers going offline poison everything they hold, everything on
  // their endpoint channels, and every packet their endpoints are mid-way
  // through serializing (the source dies: the tail would never follow).
  for (graph::NodeId r = 0; r < n; ++r) {
    if (was_online[r] == 0 || router_online[r] != 0) continue;
    routers_[r].fault_collect_all(&poison_list);
    for (std::size_t local = 0; local < eps; ++local) {
      const std::size_t e = r * eps + local;
      const auto harvest = [&](const Flit& f) {
        poison_list.push_back(f.packet_id);
      };
      ep_channels_[e].injection.for_each(harvest);
      ep_channels_[e].ejection.for_each(harvest);
      const std::int64_t mid = endpoints_[e].mid_serialization_packet();
      if (mid >= 0) poison_list.push_back(static_cast<std::uint32_t>(mid));
    }
  }

  // 3. Committed wormholes pointed at a freshly dead port: their bodies
  // are severed too (zero-progress allocations re-route instead).
  for (graph::NodeId r = 0; r < n; ++r) {
    if (router_online[r] != 0 && !dead_port[r].empty()) {
      routers_[r].fault_collect_committed(
          [&](std::size_t p) { return dead_port[r][p] != 0; }, &poison_list);
    }
  }

  // 4. Poison predicate: harvested ids plus anything destined to an
  // offline router (its sink can never eject it).
  std::sort(poison_list.begin(), poison_list.end());
  poison_list.erase(std::unique(poison_list.begin(), poison_list.end()),
                    poison_list.end());
  auto poisoned = [&](std::uint32_t pid) {
    if (std::binary_search(poison_list.begin(), poison_list.end(), pid)) {
      return true;
    }
    const std::size_t dst = packets_[pid].dst_endpoint / eps;
    return router_online[dst] == 0;
  };
  std::vector<std::uint32_t> lost;  // packets losing >= 1 flit (dedup below)

  // 5. Excise poisoned flits from the link channels, refunding the
  // upstream output-VC credit unless that port died with the flit.
  for (auto& link : links_) {
    out.flits_dropped += link.flits.remove_if([&](const Flit& f) {
      if (!poisoned(f.packet_id)) return false;
      lost.push_back(f.packet_id);
      if (router_online[link.from] != 0 &&
          !is_dead_port(link.from, link.out_port_at_from)) {
        routers_[link.from].fault_refund_credit(link.out_port_at_from, f.vc);
      }
      return true;
    });
  }

  // 6. Endpoint channels: poisoned injections refund the source endpoint's
  // credits, poisoned ejections just vanish (ejection credits are
  // effectively infinite). Dead endpoints also lose in-flight credit
  // returns — their flow state is rebuilt from scratch below.
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    const std::size_t r = e / eps;
    EndpointChannels& chans = ep_channels_[e];
    const bool ep_online = router_online[r] != 0;
    out.flits_dropped += chans.injection.remove_if([&](const Flit& f) {
      if (!poisoned(f.packet_id)) return false;
      lost.push_back(f.packet_id);
      if (ep_online) endpoints_[e].fault_refund_credit(f.vc);
      return true;
    });
    out.flits_dropped += chans.ejection.remove_if([&](const Flit& f) {
      if (!poisoned(f.packet_id)) return false;
      lost.push_back(f.packet_id);
      return true;
    });
    if (!ep_online) chans.inj_credits.clear();
  }

  // 7. Excise router-buffered state; refunds go to the physical upstream
  // hop of the input port each removed flit sat behind.
  for (graph::NodeId r = 0; r < n; ++r) {
    if (was_online[r] == 0 && router_online[r] == 0) continue;  // drained
    const bool online_r = router_online[r] != 0;
    const auto dead_out = [&](std::size_t p) {
      return !online_r || is_dead_port(r, p);
    };
    const auto refund = [&](std::size_t in_port, int vc) {
      const std::uint32_t t = in_credit_target_[r][in_port];
      if ((t & kChanBit) != 0) {
        const std::size_t e = t & ~kChanBit;
        if (router_online[e / eps] != 0) {
          endpoints_[e].fault_refund_credit(vc);
        }
        return;
      }
      const RouterLink& up = links_[t];
      if (router_online[up.from] != 0 &&
          !is_dead_port(up.from, up.out_port_at_from)) {
        routers_[up.from].fault_refund_credit(up.out_port_at_from, vc);
      }
    };
    const Router::FaultExcision ex = routers_[r].fault_excise(
        [&](std::uint32_t pid) {
          if (!poisoned(pid)) return false;
          lost.push_back(pid);
          return true;
        },
        dead_out, refund);
    out.flits_dropped += ex.flits_removed;
    out.packets_rerouted += ex.packets_rerouted;
  }

  // 8. Endpoints: abort poisoned mid-serializations, flush queued packets
  // that lost their destination, and power endpoint state up/down with
  // their router.
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    const std::size_t r = e / eps;
    Endpoint& ep = endpoints_[e];
    if (router_online[r] != 0) {
      if (was_online[r] == 0) {  // router repaired: endpoint revives
        ep.fault_set_alive(true);
        ep.fault_reset_flow_state();
        continue;
      }
      const std::int64_t mid = ep.mid_serialization_packet();
      if (mid >= 0 && poisoned(static_cast<std::uint32_t>(mid))) {
        lost.push_back(static_cast<std::uint32_t>(mid));
        ep.fault_abort_active();
      }
      out.packets_flushed += ep.fault_flush_queue([&](const Packet& p) {
        return router_online[p.dst_endpoint / eps] == 0;
      });
    } else if (was_online[r] != 0) {  // router died: endpoint goes dark
      const std::int64_t mid = ep.mid_serialization_packet();
      if (mid >= 0) {
        lost.push_back(static_cast<std::uint32_t>(mid));
        ep.fault_abort_active();
      }
      out.packets_flushed += ep.fault_flush_queue(
          [](const Packet&) { return true; });
      ep.fault_set_alive(false);
      ep.fault_reset_flow_state();
    }
  }

  // 9. Repairs: the channels drained at kill time; rewire both sides.
  for (const auto& [a, b] : repair_links) {
    RouterLink& ab = find_directed(a, b);
    RouterLink& ba = find_directed(b, a);
    assert(ab.flits.in_flight() == 0 && ba.flits.in_flight() == 0);
    routers_[a].fault_restore_port(ab.out_port_at_from, &ab.flits,
                                   cfg_.link_latency, &ba.credits,
                                   cfg_.link_latency);
    routers_[b].fault_restore_port(ba.out_port_at_from, &ba.flits,
                                   cfg_.link_latency, &ab.credits,
                                   cfg_.link_latency);
  }

  router_online_ = router_online;
  flits_dropped_ += out.flits_dropped;
  std::sort(lost.begin(), lost.end());
  out.packets_lost = static_cast<std::uint64_t>(
      std::unique(lost.begin(), lost.end()) - lost.begin());

  // 10. The worklists may now both overstate (drained components) and
  // understate (revoked heads whose router drained its channels) the
  // active set; re-derive them exactly, in ascending index order.
  if (cfg_.skip_idle) rebuild_worklists();
  return out;
}

void Network::set_degraded_routing(const DegradedRouting* dr) {
  fault_dirty_ = true;
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    if (dr == nullptr || dr->live_id[r] == DegradedRouting::kDead) {
      routers_[r].set_degraded(nullptr, nullptr, nullptr);
    } else {
      routers_[r].set_degraded(&dr->topo->tables(), dr->live_id.data(),
                               dr->port_map[r].data());
    }
  }
}

void Network::rebuild_worklists() {
  active_links_.clear();
  active_chans_.clear();
  active_routers_.clear();
  active_eps_.clear();
  std::fill(link_active_.begin(), link_active_.end(), 0);
  std::fill(chan_active_.begin(), chan_active_.end(), 0);
  std::fill(router_active_.begin(), router_active_.end(), 0);
  std::fill(ep_active_.begin(), ep_active_.end(), 0);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].flits.in_flight() != 0 ||
        links_[i].credits.in_flight() != 0) {
      arm(active_links_, link_active_, i);
    }
  }
  for (std::size_t e = 0; e < ep_channels_.size(); ++e) {
    if (ep_channels_[e].injection.in_flight() != 0 ||
        ep_channels_[e].inj_credits.in_flight() != 0 ||
        ep_channels_[e].ejection.in_flight() != 0) {
      arm(active_chans_, chan_active_, e);
    }
  }
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    if (routers_[r].buffered_flit_count() > 0) {
      arm(active_routers_, router_active_, r);
    }
  }
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    if (endpoints_[e].queue_length() > 0) arm(active_eps_, ep_active_, e);
  }
}

std::size_t Network::flits_in_network() const {
  std::size_t total = 0;
  for (const auto& r : routers_) total += r.buffered_flits();
  for (const auto& link : links_) total += link.flits.in_flight();
  for (const auto& chans : ep_channels_) {
    total += chans.injection.in_flight() + chans.ejection.in_flight();
  }
  return total;
}

std::uint64_t Network::total_flits_injected() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints_) total += ep.flits_injected();
  return total;
}

std::uint64_t Network::total_flits_ejected() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints_) total += ep.sink().flits_ejected;
  return total;
}

Network::HotStats Network::hot_stats() const {
  HotStats out;
  for (const auto& r : routers_) {
    const Router::HotStats& s = r.hot_stats();
    out.routers.flits_routed += s.flits_routed;
    out.routers.va_stall_cycles += s.va_stall_cycles;
    out.routers.sa_conflict_stalls += s.sa_conflict_stalls;
    out.routers.sa_credit_stalls += s.sa_credit_stalls;
    out.routers.heads_revoked += s.heads_revoked;
    if (s.ring_hwm > out.routers.ring_hwm) out.routers.ring_hwm = s.ring_hwm;
  }
  for (const auto& ep : endpoints_) {
    if (ep.queue_hwm() > out.source_queue_hwm) {
      out.source_queue_hwm = ep.queue_hwm();
    }
  }
  out.active_router_hwm = active_router_hwm_;
  out.router_steps = router_steps_;
  out.cycles_stepped = cycles_stepped_;
  return out;
}

bool Network::invariants_ok(std::string* why) const {
  for (const auto& r : routers_) {
    if (!r.invariants_ok(why)) return false;
  }
  if (total_flits_injected() !=
      total_flits_ejected() + flits_in_network() + flits_dropped_) {
    if (why != nullptr) *why = "flit conservation violated";
    return false;
  }
  if (cfg_.skip_idle) {
    // Worklist exactness between steps: a component holds work iff its
    // membership flag is set. Catches both a dropped arming (work that
    // would never be stepped again) and direct endpoint().try_enqueue()
    // misuse that bypasses offer_packet.
    auto fail = [&](const char* msg) {
      if (why != nullptr) *why = msg;
      return false;
    };
    for (std::size_t r = 0; r < routers_.size(); ++r) {
      if ((routers_[r].buffered_flit_count() > 0) !=
          (router_active_[r] != 0)) {
        return fail("active-set router flag out of sync");
      }
    }
    for (std::size_t i = 0; i < links_.size(); ++i) {
      const bool busy = links_[i].flits.in_flight() != 0 ||
                        links_[i].credits.in_flight() != 0;
      if (busy != (link_active_[i] != 0)) {
        return fail("active-set link flag out of sync");
      }
    }
    for (std::size_t e = 0; e < ep_channels_.size(); ++e) {
      const bool busy = ep_channels_[e].injection.in_flight() != 0 ||
                        ep_channels_[e].inj_credits.in_flight() != 0 ||
                        ep_channels_[e].ejection.in_flight() != 0;
      if (busy != (chan_active_[e] != 0)) {
        return fail("active-set channel flag out of sync");
      }
    }
    for (std::size_t e = 0; e < endpoints_.size(); ++e) {
      if ((endpoints_[e].queue_length() > 0) != (ep_active_[e] != 0)) {
        return fail("active-set endpoint flag out of sync");
      }
    }
  }
  return true;
}

}  // namespace hm::noc
