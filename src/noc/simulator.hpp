// Simulation driver replicating BookSim2's measurement methodology
// (Sec. VI-A): warm the network up, tag packets generated during a
// measurement window, then drain; report average packet latency and
// accepted throughput. Saturation throughput is located with a binary
// search for the knee of the accepted-vs-offered curve (find_saturation);
// the resulting fraction of the full injection rate is what the paper
// multiplies by the full global bandwidth to obtain Tb/s.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "faults/fault_plan.hpp"
#include "graph/graph.hpp"
#include "noc/arena.hpp"
#include "noc/config.hpp"
#include "noc/network.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"

namespace hm::faults {
class FaultController;
}  // namespace hm::faults

namespace hm::noc {

/// Executes batches of independent simulation jobs, possibly concurrently.
/// The contract that keeps parallel runs reproducible: every job runs
/// exactly once, run_batch returns only after all jobs finished, and jobs
/// never share mutable state (each probe owns a fresh Simulator). An
/// implementation may run jobs on the calling thread (the sequential
/// fallback does exactly that); explore::ThreadPool is the pooled one.
class ProbeExecutor {
 public:
  virtual ~ProbeExecutor() = default;
  virtual void run_batch(std::vector<std::function<void()>>& jobs) = 0;
};

/// Result of a latency measurement run.
struct LatencyResult {
  double avg_packet_latency = 0.0;  ///< cycles, generation -> tail ejection
  std::uint64_t packets_measured = 0;
  bool drained = false;  ///< all tagged packets delivered before the limit
};

/// Result of a throughput measurement run.
struct ThroughputResult {
  double offered_flit_rate = 0.0;    ///< nominal flits/cycle/endpoint
  double accepted_flit_rate = 0.0;   ///< flits/cycle/endpoint ejected
  /// Flit rate actually admitted into the source queues during the window
  /// (drops excluded); tracks the nominal rate below saturation.
  double generated_flit_rate = 0.0;
  /// Packets dropped at full source queues during the measurement window —
  /// the reliable saturation indicator (zero below the knee).
  std::uint64_t dropped_packets = 0;
};

/// Options for the saturation-point search.
struct SaturationSearchOptions {
  /// A probe at offered rate r is "stable" when no packet was dropped at a
  /// full source queue during the measurement window AND accepted >=
  /// stability * generated (the latter guards against in-network congestion
  /// with queues that have not filled yet; generated — the rate actually
  /// admitted — rather than the nominal r, so short-window low-rate probes
  /// do not flap on generation shot noise).
  double stability = 0.9;
  /// Binary-search iterations after the initial full-rate probe
  /// (resolution = 2^-iterations in offered rate).
  int iterations = 6;
  Cycle warmup = 4000;
  Cycle measure = 4000;
  /// When true, each probe seeds its fresh simulator with
  /// derive_seed(cfg.seed, bits(offered rate)) instead of cfg.seed, so
  /// probes at different rates draw decorrelated traffic streams. Either
  /// way a probe's outcome depends only on the offered rate — never on the
  /// order probes run in — which is what keeps speculative parallel
  /// searches bit-identical to sequential ones. Off by default to preserve
  /// the historical single-seed numbers.
  bool per_probe_seeds = false;
  /// Analytic saturation estimate in [0, 1] (e.g. from evaluate_analytic's
  /// bisection/channel-load bounds). When set, the search gallops outward
  /// from the estimate on the same dyadic probe grid the plain bisection
  /// refines over, so a good estimate needs ~3 probes instead of ~7 — and
  /// because probe outcomes are monotone in the offered rate in practice,
  /// the returned rate is identical to the plain search's. Negative (the
  /// default) disables the surrogate and runs the plain bisection.
  double surrogate_rate = -1.0;
};

/// Result of the saturation-point search.
struct SaturationResult {
  /// Largest offered rate (flits/cycle/endpoint) the network sustains.
  double saturation_flit_rate = 0.0;
  /// Accepted rate measured at that offered rate.
  double accepted_flit_rate = 0.0;
  /// Number of simulation probes run. With a parallel executor the search
  /// speculates ahead, so this may exceed the sequential minimum even
  /// though the returned rates are identical.
  int probes = 0;
};

/// Canonical bit pattern of an offered-rate memo key: collapses -0.0 onto
/// +0.0 and every NaN onto one canonical quiet NaN, so the bit-pattern
/// hashing in find_saturation's probe memo (and the per-probe seed
/// derivation) can neither split a rate that compares equal nor alias
/// distinct NaN payloads. Exposed for the regression tests in test_arena.
[[nodiscard]] std::uint64_t saturation_rate_key(double rate) noexcept;

/// Finds the saturation throughput the way BookSim-based studies do
/// (Sec. VI-A): sweep the offered load for the knee of the accepted-vs-
/// offered curve via binary search, running each probe on a fresh network.
/// Overdriving a fully adaptive network far beyond saturation only measures
/// the escape network's drain rate, not the design's usable throughput.
///
/// Re-entrant: no shared mutable state, safe to call concurrently. When
/// `executor` is non-null the search runs its independent probes in
/// parallel, speculatively evaluating both possible next midpoints of the
/// binary search (two levels per batch, ~2x fewer sequential probe waves);
/// because each probe's result is a pure function of its offered rate, the
/// returned result is bit-identical to the sequential search.
[[nodiscard]] SaturationResult find_saturation(
    const graph::Graph& g, const SimConfig& cfg,
    const SaturationSearchOptions& opts = {},
    const TrafficSpec& traffic = {}, ProbeExecutor* executor = nullptr);

/// find_saturation on a pre-built shared topology: every probe's fresh
/// Simulator reuses `topo` read-only, so the O(N^2 * deg) routing tables
/// are built zero times here no matter how many probes the search runs.
/// The graph overload above acquires the shared context once and delegates.
[[nodiscard]] SaturationResult find_saturation(
    std::shared_ptr<const TopologyContext> topo, const SimConfig& cfg,
    const SaturationSearchOptions& opts = {},
    const TrafficSpec& traffic = {}, ProbeExecutor* executor = nullptr);

/// Drives a Network (owned outright or leased from a SimulationArena) plus
/// RNG/traffic state and runs measurement phases.
class Simulator {
 public:
  /// Acquires the shared TopologyContext for `g` (table build only when no
  /// live context for an equal graph exists), then runs on it.
  Simulator(const graph::Graph& g, const SimConfig& cfg);

  /// Runs on a pre-built shared topology (no table build at all). Any
  /// number of concurrent Simulators may share one context.
  Simulator(std::shared_ptr<const TopologyContext> topo, const SimConfig& cfg);

  /// Runs on a network leased from `arena` (reset-and-reuse instead of
  /// construction when the arena has one for this topology + structural
  /// config). Results are bit-identical to the owning constructors; this
  /// is the hot-path entry every probe of find_saturation and evaluate()
  /// uses via SimulationArena::local().
  Simulator(SimulationArena& arena, std::shared_ptr<const TopologyContext> topo,
            const SimConfig& cfg);

  /// Flushes the run's hot-path counters (Network::hot_stats plus the
  /// admitted/dropped packet totals) into the telemetry registry when
  /// telemetry is enabled, before the lease is released. Pure observation:
  /// never touches simulation state, so results are identical either way.
  ~Simulator();

  /// Selects the traffic pattern for subsequent runs (default: uniform
  /// random, the paper's setup). Throws std::invalid_argument right here —
  /// not cycles later inside a measurement run — when the spec is invalid
  /// for this network's endpoint count (see TrafficSpec::validate).
  void set_traffic(const TrafficSpec& spec);

  /// Average packet latency at the given injection rate (flits/cycle/
  /// endpoint). Tags packets generated in [warmup, warmup+measure) and runs
  /// until they all drain (or `drain_limit` extra cycles pass).
  LatencyResult run_latency(double flit_rate, Cycle warmup = 3000,
                            Cycle measure = 12000,
                            Cycle drain_limit = 300000);

  /// Accepted throughput at the given offered rate over a measurement
  /// window following warmup. Offer 1.0 to measure saturation throughput.
  ThroughputResult run_throughput(double flit_rate, Cycle warmup = 10000,
                                  Cycle measure = 10000);

  /// Resilience run: warm the healthy network up at `flit_rate` for
  /// `warmup` cycles, arm `plan` (event times count from the arm point),
  /// then run `measure` more cycles with the fault controller driving
  /// kills, repairs, table swaps and recovery sampling. Traffic touching
  /// unroutable endpoints is suppressed at generation (counted as
  /// packets_unroutable, never offered). The network is left in its
  /// post-fault state — one resilience run per Simulator (a second call
  /// throws std::logic_error); the arena lease rewind restores the wiring.
  faults::ResilienceStats run_resilience(double flit_rate,
                                         const faults::FaultPlan& plan,
                                         Cycle warmup = 2000,
                                         Cycle measure = 6000);

  [[nodiscard]] Network& network() noexcept { return net_; }
  [[nodiscard]] Cycle now() const noexcept { return now_; }
  /// Cycles fast-forwarded over quiescent stretches (skip-idle mode only).
  [[nodiscard]] std::uint64_t idle_skipped_cycles() const noexcept {
    return idle_skipped_cycles_;
  }

 private:
  /// Advances one cycle: due traffic events, then network step.
  void tick(SyntheticTraffic& traffic);

  /// Ticks until now_ == limit. In skip-idle mode, quiescent stretches
  /// (nothing in the network, no traffic event due) are fast-forwarded to
  /// the traffic source's next event cycle — the skipped cycles are
  /// observable no-ops, so results are bit-identical to dense stepping.
  void advance_until(Cycle limit, SyntheticTraffic& traffic);

  /// Binds `traffic`'s per-endpoint event streams for a run starting now.
  /// The base seed is salted with the start cycle so back-to-back runs on
  /// one Simulator draw fresh streams (the shared-Rng scheme this replaces
  /// had the same property by consuming the stream across runs).
  void bind_traffic(SyntheticTraffic& traffic);

  SimConfig cfg_;
  SimulationArena::Lease lease_;  ///< owns or borrows the network
  Network& net_;                  ///< lease_.network()
  TrafficSpec traffic_spec_;
  Cycle now_ = 0;
  std::uint64_t packets_admitted_ = 0;  ///< enqueue successes (lifetime)
  std::uint64_t packets_dropped_ = 0;   ///< enqueue failures (lifetime)
  std::uint64_t idle_skipped_cycles_ = 0;
  /// Tagged-generation window of the current latency run: admissions with
  /// gen_time inside it count toward the drain target.
  Cycle tag_begin_ = 0;
  Cycle tag_end_ = std::numeric_limits<Cycle>::min();
  std::uint64_t tagged_generated_ = 0;
  std::vector<Packet> gen_scratch_;  ///< per-tick generated packets
  /// Armed by run_resilience; owns the degraded routing views the routers
  /// borrow, so it outlives the run and dies with the Simulator (the lease
  /// reset clears the borrowed pointers before any reuse).
  std::unique_ptr<faults::FaultController> faults_;
};

}  // namespace hm::noc
