// Flow-control units (flits) and packets, split hot/cold (SoA style).
//
// A packet is serialized into `packet_length` flits; the head flit carries
// the routing decision state (escape flag and up*/down* phase), body/tail
// flits follow the head's path through the virtual channels the head
// allocated (wormhole switching).
//
// The per-flit data the routers actually route on is an 8-byte word (Flit):
// packet id, destination router, VC and four flag bits. Everything a flit
// used to drag through every ring buffer and channel but that is constant
// per packet — source/destination endpoints, generation time, length — is
// written exactly once into a PacketTable owned by the Network (and thus by
// the simulation arena) and looked up by packet id at the two places that
// need it: ejection-port routing at the destination router and latency
// accounting at the sink. This cuts the bytes copied per switch grant ~3x
// versus the old 32-byte all-in-one Flit.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace hm::noc {

/// Simulation time in cycles.
using Cycle = std::int64_t;

/// One flow-control unit: the hot 8-byte routing word.
struct Flit {
  std::uint32_t packet_id = 0;  ///< index into the Network's PacketTable
  std::uint16_t dst_router = 0;
  /// VC the flit travels on over the current channel.
  std::uint8_t vc = 0;
  std::uint8_t head : 1 = 0;
  std::uint8_t tail : 1 = 0;
  /// Routed on the escape network (up*/down* on VC 0); once set it stays set
  /// for the rest of the path (conservative Duato protocol).
  std::uint8_t escape : 1 = 0;
  /// up*/down* phase: 0 = may still ascend, 1 = descending only.
  std::uint8_t ud_phase : 1 = 0;
};
static_assert(sizeof(Flit) == 8, "Flit must stay an 8-byte routing word");

/// A packet pending injection at an endpoint. `id` is assigned by the
/// owning Network's PacketTable at source-queue admission (unique per
/// network epoch, i.e. between arena resets), not by the traffic generator.
struct Packet {
  std::uint32_t id = 0;
  std::uint16_t src_endpoint = 0;
  std::uint16_t dst_endpoint = 0;
  std::uint16_t length = 1;  ///< flits
  Cycle gen_time = 0;
};

/// Cold per-packet record: written once when the packet is admitted to a
/// source queue, read at ejection routing and sink accounting.
struct PacketRecord {
  std::uint16_t src_endpoint = 0;
  std::uint16_t dst_endpoint = 0;
  std::uint16_t length = 1;
  Cycle gen_time = 0;
};

/// Dense id -> PacketRecord store, one per Network. Admission order defines
/// the ids, which is deterministic (endpoints are polled in index order each
/// cycle), so parallel sweeps stay bit-identical to sequential ones.
class PacketTable {
 public:
  /// Registers `p` and returns its id. The caller stores the id back into
  /// the queued packet; every flit of the packet carries it.
  std::uint32_t add(const Packet& p) {
    records_.push_back(
        PacketRecord{p.src_endpoint, p.dst_endpoint, p.length, p.gen_time});
    return static_cast<std::uint32_t>(records_.size() - 1);
  }

  [[nodiscard]] const PacketRecord& operator[](std::uint32_t id) const {
    assert(static_cast<std::size_t>(id) < records_.size());
    return records_[id];
  }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Forgets all records but keeps the allocation (arena reuse: a reset
  /// network starts a fresh id epoch without churning the heap).
  void clear() noexcept { records_.clear(); }

  void reserve(std::size_t n) { records_.reserve(n); }

 private:
  std::vector<PacketRecord> records_;
};

}  // namespace hm::noc
