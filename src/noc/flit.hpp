// Flow-control units (flits) and packets. A packet is serialized into
// `packet_length` flits; the head flit carries the routing decision state
// (escape flag and up*/down* phase), body/tail flits follow the head's path
// through the virtual channels the head allocated (wormhole switching).
#pragma once

#include <cstdint>

namespace hm::noc {

/// Simulation time in cycles.
using Cycle = std::int64_t;

/// One flow-control unit.
struct Flit {
  std::uint32_t packet_id = 0;
  std::uint16_t src_endpoint = 0;
  std::uint16_t dst_endpoint = 0;
  std::uint16_t dst_router = 0;
  std::uint16_t flit_index = 0;  ///< position within the packet
  bool head = false;
  bool tail = false;
  /// Routed on the escape network (up*/down* on VC 0); once set it stays set
  /// for the rest of the path (conservative Duato protocol).
  bool escape = false;
  /// up*/down* phase: 0 = may still ascend, 1 = descending only.
  std::uint8_t ud_phase = 0;
  /// VC the flit travels on over the current channel.
  std::uint8_t vc = 0;
  Cycle gen_time = 0;     ///< cycle the packet was created at the source
  Cycle ready_time = 0;   ///< earliest cycle the flit may leave the router
};

/// A packet pending injection at an endpoint.
struct Packet {
  std::uint32_t id = 0;
  std::uint16_t src_endpoint = 0;
  std::uint16_t dst_endpoint = 0;
  std::uint16_t length = 1;  ///< flits
  Cycle gen_time = 0;
};

}  // namespace hm::noc
