// Parallel design-space exploration engine.
//
// A SweepSpec describes a cartesian product
//     arrangement types x chiplet counts x EvaluationParams x TrafficSpec
// and the SweepEngine fans its points out across a ThreadPool, evaluating
// each with the Sec. VI pipeline (analytic proxies + cycle-accurate
// simulation). Three properties make the engine a measurement tool rather
// than just a speedup:
//   * Determinism — every job's RNG seed is derived from (base_seed, job
//     index) before execution, and each evaluation owns fresh simulators,
//     so an N-thread sweep is bit-identical to the 1-thread sweep (the CSV
//     exports compare equal byte for byte).
//   * Caching — results are keyed by stable content hashes, so the analytic
//     half of a design shared across traffic ablations is computed once,
//     and re-running an extended sweep only simulates the new points. The
//     cycle-accurate half runs on a shared immutable noc::TopologyContext,
//     so the routing tables of a design are built once per job chain (and
//     shared across jobs ablating the same graph), not once per probe.
//   * Collection — results arrive as an index-ordered SweepRecord vector
//     with CSV/JSON writers (explore/export.hpp) and a progress callback,
//     replacing the hand-rolled printf loops of the bench drivers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/arrangement.hpp"
#include "core/evaluator.hpp"
#include "explore/result_cache.hpp"
#include "explore/thread_pool.hpp"
#include "noc/traffic.hpp"

namespace hm::explore {

/// One fully resolved design point of a sweep (after the cartesian
/// expansion and per-job seed derivation).
struct SweepPoint {
  std::size_t index = 0;  ///< stable job index within the sweep
  core::ArrangementType type = core::ArrangementType::kGrid;
  std::size_t chiplet_count = 0;
  std::size_t param_index = 0;    ///< position in SweepSpec::param_grid
  std::size_t traffic_index = 0;  ///< position in SweepSpec::traffic_grid
  core::EvaluationParams params;  ///< sim.seed already derived per job
  noc::TrafficSpec traffic;

  /// Warm-start point: when set, this exact arrangement is evaluated
  /// instead of make_arrangement(type, chiplet_count) — the mechanism that
  /// lets searched arrangements (SweepEngine::add_arrangement,
  /// search::search_then_sweep) ride in the same sweep as the stock
  /// families. `type`/`chiplet_count` mirror the custom arrangement;
  /// `label` replaces the family name in the CSV/JSON exports.
  std::shared_ptr<const core::Arrangement> custom;
  std::string label;
};

/// The sweep description. Empty grids default to a single entry.
struct SweepSpec {
  std::vector<core::ArrangementType> types = {
      core::ArrangementType::kGrid, core::ArrangementType::kBrickwall,
      core::ArrangementType::kHexaMesh};
  std::vector<std::size_t> chiplet_counts;
  std::vector<core::EvaluationParams> param_grid = {core::EvaluationParams{}};
  std::vector<noc::TrafficSpec> traffic_grid = {noc::TrafficSpec{}};

  /// false = analytic proxies + link model only (cheap, Fig. 4/6 style);
  /// true = full cycle-accurate evaluation (Fig. 7 style). Designs with a
  /// single chiplet are always analytic-only (no ICI to simulate).
  bool simulate = true;

  /// Base of the per-job seed derivation: job i simulates with
  /// sim.seed = noc::derive_seed(base_seed, i). Stable across thread
  /// counts by construction. Set derive_per_job_seeds = false to keep the
  /// seeds given in param_grid instead.
  unsigned long long base_seed = 42;
  bool derive_per_job_seeds = true;

  /// Expands the cartesian product in deterministic order (types outer,
  /// then counts, params, traffic) and derives per-job seeds. Throws
  /// std::invalid_argument when a traffic spec is malformed or a grid that
  /// must be non-empty is empty.
  [[nodiscard]] std::vector<SweepPoint> points() const;
};

/// Outcome of one sweep job. `error` is non-empty when the evaluation threw
/// (the sweep continues; the record keeps its slot).
struct SweepRecord {
  SweepPoint point;
  core::EvaluationResult result;
  bool analytic_only = false;
  /// True when the result came out of the cache. Timing-dependent under
  /// concurrency (two threads may both miss on a racing key), so exports
  /// exclude it — everything the CSV/JSON writers emit is deterministic.
  bool from_cache = false;
  double wall_seconds = 0.0;  ///< also nondeterministic; excluded from exports
  std::string error;
};

/// Progress snapshot passed to the callback after every completed job.
struct SweepProgress {
  std::size_t completed = 0;
  std::size_t total = 0;
  const SweepRecord* last = nullptr;  ///< the record that just finished
};

/// Fans sweep jobs out across a thread pool, with result caching shared
/// across runs of the same engine.
class SweepEngine {
 public:
  struct Options {
    /// Total worker concurrency (see ThreadPool); 0 = hardware threads.
    unsigned threads = 0;
    bool use_cache = true;
    /// Parallelize the probes *inside* one design evaluation too (the
    /// latency run and the speculative saturation probes). Worthwhile when
    /// the sweep has fewer points than threads; off by default because a
    /// saturated pool gains nothing from the extra speculative probes.
    ///
    /// Scheduling policy: intra-design probes share the one sweep pool
    /// with every other job (no extra threads are ever spawned, so the
    /// pool cannot oversubscribe the machine), but each job's probe
    /// batches are throttled through a BoundedProbeExecutor so at most
    /// `max_intra_probes` of its probes are in flight at once. Without the
    /// cap, N concurrent jobs each fanning out speculative saturation
    /// probes flood the queue with work the binary search may discard,
    /// and every issuing worker sits idle in its nested batch wait
    /// ("deadlock-idle": forward progress is guaranteed — the issuer
    /// drains its own batch — but a worker waiting on nested stragglers
    /// cannot steal other batches' work). The cap bounds that waste per
    /// job; results are bit-identical either way.
    bool intra_design_parallelism = false;
    /// In-flight cap per job for intra-design probes (see above). <= 1
    /// runs every intra-design probe inline on the job's own worker.
    std::size_t max_intra_probes = 4;
    /// Directory of a persistent store::ResultStore attached under the
    /// cache (opened/created in the constructor; empty = memory only).
    /// A warm store turns re-runs of the same sweep into pure lookups.
    /// Flushed to disk when the engine is destroyed; flush earlier via
    /// cache().flush_to_store().
    std::string cache_dir;
    /// Called after every completed job, serialized (never concurrently).
    std::function<void(const SweepProgress&)> on_progress;
  };

  SweepEngine();
  explicit SweepEngine(Options options);

  /// Registers an explicit arrangement (e.g. the best state of a
  /// search/tempering run) as an extra sweep point. Every subsequent run()
  /// appends one point per (registered arrangement x param_grid x
  /// traffic_grid entry) after the cartesian family points, with per-job
  /// seeds derived from the continued index sequence — so warm-started
  /// sweeps stay deterministic at any thread count and searched points
  /// share the cache with everything else. `label` replaces the family
  /// name in exports (empty = the arrangement's name()). Registered
  /// arrangements persist across run() calls; clear_arrangements() resets.
  void add_arrangement(core::Arrangement arrangement, std::string label = "");
  void clear_arrangements() noexcept { extra_.clear(); }
  [[nodiscard]] std::size_t arrangement_count() const noexcept {
    return extra_.size();
  }

  /// Runs every point of the sweep (the spec's cartesian product plus any
  /// arrangements registered via add_arrangement); records are returned in
  /// point order regardless of completion order. Re-entrant per engine:
  /// call run() repeatedly to reuse the cache across related sweeps.
  [[nodiscard]] std::vector<SweepRecord> run(const SweepSpec& spec);

  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] const ResultCache& cache() const noexcept { return cache_; }
  [[nodiscard]] unsigned thread_count() const noexcept {
    return pool_.thread_count();
  }

 private:
  struct ExtraArrangement {
    std::shared_ptr<const core::Arrangement> arrangement;
    std::string label;
  };

  SweepRecord evaluate_point(const SweepPoint& point);

  Options options_;
  ThreadPool pool_;
  ResultCache cache_;
  std::vector<ExtraArrangement> extra_;
  std::mutex progress_mu_;
};

}  // namespace hm::explore
