// The cached-evaluation core shared by SweepEngine::evaluate_point and the
// hm_server request handlers: key a design point with the stable content
// hashes of explore/hash.hpp, serve the analytic half and the full result
// through a ResultCache (and, transitively, its attached persistent
// store), and only simulate on a genuine miss.
#pragma once

#include "core/arrangement.hpp"
#include "core/evaluator.hpp"
#include "noc/traffic.hpp"

namespace hm::noc {
class ProbeExecutor;
}  // namespace hm::noc

namespace hm::explore {

class ResultCache;

/// What the cached evaluation did, for callers that report provenance.
struct CachedEvalOutcome {
  /// True when the *final* lookup (full result, or analytic when the point
  /// is analytic-only) was a cache hit. Timing-dependent under concurrency.
  bool from_cache = false;
  /// True when no simulation was requested or possible (single chiplet).
  bool analytic_only = false;
};

/// Evaluates `arr` under `params`/`traffic` through `cache` (nullptr =
/// uncached). The analytic half is keyed separately so traffic/simulator
/// ablations of the same design share it. `executor`, when given, carries
/// intra-design probe parallelism into the simulation.
[[nodiscard]] core::EvaluationResult cached_evaluate(
    const core::Arrangement& arr, const core::EvaluationParams& params,
    const noc::TrafficSpec& traffic, ResultCache* cache,
    noc::ProbeExecutor* executor = nullptr,
    CachedEvalOutcome* outcome = nullptr);

}  // namespace hm::explore
