// Stable 64-bit hashing of design points for the exploration result cache.
//
// "Stable" means the digest depends only on the logical content — the
// arrangement's topology and the evaluation/traffic parameters — serialized
// field by field in a fixed order, never on pointers, container capacity or
// platform. Two sweep jobs that would compute the same EvaluationResult
// hash to the same key, which is what lets the cache share e.g. the
// analytic half of evaluate() across traffic ablations.
#pragma once

#include <cstdint>

#include "core/arrangement.hpp"
#include "core/evaluator.hpp"
#include "noc/traffic.hpp"

namespace hm::explore {

/// FNV-1a (64-bit) accumulator over explicitly serialized fields.
class StableHash {
 public:
  StableHash& mix(std::uint64_t v) noexcept;
  StableHash& mix_i(std::int64_t v) noexcept;
  StableHash& mix_f(double v) noexcept;  ///< bit pattern (-0.0 != +0.0)
  StableHash& mix_b(bool v) noexcept { return mix(v ? 1 : 0); }

  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

/// Order-independent-of-nothing combiner: mixes `b` into `a` (asymmetric).
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a,
                                         std::uint64_t b) noexcept;

/// Digest of the arrangement's identity: type, regularity, lattice
/// coordinates and adjacency edges (sorted, so any graph construction order
/// yields the same digest).
[[nodiscard]] std::uint64_t hash_arrangement(const core::Arrangement& arr);

/// Digest of the parameters the *analytic* half of evaluate() depends on
/// (area budget, link model, endpoints per chiplet). Excludes simulator
/// knobs, phase lengths and seeds — analytic results are seed-free.
[[nodiscard]] std::uint64_t hash_analytic_params(
    const core::EvaluationParams& params);

/// Digest of everything the cycle-accurate half depends on: the full
/// SimConfig (seed included), phase lengths, injection rate and the
/// measurement-selection flags.
[[nodiscard]] std::uint64_t hash_simulation_params(
    const core::EvaluationParams& params);

/// Digest of a traffic spec (pattern, hotspot set, permutation seed).
[[nodiscard]] std::uint64_t hash_traffic(const noc::TrafficSpec& traffic);

}  // namespace hm::explore
