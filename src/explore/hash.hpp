// Stable 64-bit hashing of design points for the exploration result cache.
//
// "Stable" means the digest depends only on the logical content — the
// arrangement's topology and the evaluation/traffic parameters — serialized
// field by field in a fixed order, never on pointers, container capacity or
// platform. Two sweep jobs that would compute the same EvaluationResult
// hash to the same key, which is what lets the cache share e.g. the
// analytic half of evaluate() across traffic ablations.
#pragma once

#include <cstdint>

#include "core/arrangement.hpp"
#include "core/evaluator.hpp"
#include "noc/traffic.hpp"
#include "util/stable_hash.hpp"

namespace hm::explore {

/// The accumulator itself lives in util/stable_hash.hpp so lower layers
/// (e.g. the noc topology-context cache) can key on the same digests;
/// re-exported here for the exploration layer's existing callers.
using util::StableHash;
using util::hash_combine;

/// Digest of the arrangement's identity: type, regularity, lattice
/// coordinates and adjacency edges (sorted, so any graph construction order
/// yields the same digest).
[[nodiscard]] std::uint64_t hash_arrangement(const core::Arrangement& arr);

/// Digest of the parameters the *analytic* half of evaluate() depends on
/// (area budget, link model, endpoints per chiplet). Excludes simulator
/// knobs, phase lengths and seeds — analytic results are seed-free.
[[nodiscard]] std::uint64_t hash_analytic_params(
    const core::EvaluationParams& params);

/// Digest of everything the cycle-accurate half depends on: the full
/// SimConfig (seed included), phase lengths, injection rate and the
/// measurement-selection flags.
[[nodiscard]] std::uint64_t hash_simulation_params(
    const core::EvaluationParams& params);

/// Digest of a traffic spec (pattern, hotspot set, permutation seed).
[[nodiscard]] std::uint64_t hash_traffic(const noc::TrafficSpec& traffic);

}  // namespace hm::explore
