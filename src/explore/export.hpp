// CSV / JSON serialization of sweep results.
//
// Writers emit only deterministic fields (design identity, derived seed,
// analytic proxies, simulation measurements) — never wall-clock times or
// cache-hit flags — so the export of an N-thread sweep is byte-identical
// to the 1-thread export of the same spec. Doubles are printed with
// std::to_chars shortest round-trip form, which is exact and
// locale-independent.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "explore/sweep.hpp"

namespace hm::explore {

/// Header + one row per record, in record order.
void write_csv(std::ostream& os, const std::vector<SweepRecord>& records);
[[nodiscard]] std::string to_csv(const std::vector<SweepRecord>& records);

/// A JSON array of objects, one per record, in record order.
void write_json(std::ostream& os, const std::vector<SweepRecord>& records);
[[nodiscard]] std::string to_json(const std::vector<SweepRecord>& records);

/// Opt-in variant wrapping the record array together with the current
/// telemetry::snapshot(): {"records": [...], "telemetry": {...}}. A
/// separate entry point — never the default — so the plain exports (and
/// the committed goldens built from them) stay byte-identical whether or
/// not telemetry is enabled. The telemetry block is timing-dependent under
/// concurrency; don't diff it across runs.
void write_json_with_telemetry(std::ostream& os,
                               const std::vector<SweepRecord>& records);
[[nodiscard]] std::string to_json_with_telemetry(
    const std::vector<SweepRecord>& records);

/// Explicit-format file writers. Throw std::runtime_error when the file
/// cannot be opened.
void write_csv_file(const std::string& path,
                    const std::vector<SweepRecord>& records);
void write_json_file(const std::string& path,
                     const std::vector<SweepRecord>& records);

/// Writes records to `path`, dispatching on the extension: ".json" gets
/// JSON, everything else CSV. Throws std::runtime_error when the file
/// cannot be opened.
void export_file(const std::string& path,
                 const std::vector<SweepRecord>& records);

}  // namespace hm::explore
