#include "explore/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "noc/arena.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace hm::explore {

/// One batch of jobs. Threads claim jobs by atomically bumping `next`; the
/// batch is done when `done` reaches the job count. The first exception is
/// captured and rethrown by the thread that issued the batch.
///
/// `jobs` points at memory owned by the run_batch caller, which may be gone
/// the moment every job has finished (run_batch returns and its caller's
/// vector goes out of scope while a straggler worker still holds this Batch
/// via shared_ptr). `size` is therefore a plain copy, and `jobs` is only
/// dereferenced after a successful claim (i < size) — a claimed job cannot
/// have been counted done, so run_batch is still blocked and the vector is
/// still alive.
struct ThreadPool::Batch {
  explicit Batch(std::vector<std::function<void()>>& j)
      : jobs(&j), size(j.size()) {}

  std::vector<std::function<void()>>* jobs;
  const std::size_t size;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure, guarded by mu
};

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads != 0 ? threads
                            : std::max(1u, std::thread::hardware_concurrency())) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

// HM_HOT: every sweep/search/saturation job funnels through here —
// job claim and completion accounting must not allocate or throw
// (the jobs themselves may; the catch block only captures).
void ThreadPool::drain(Batch& batch) {
  const std::size_t n = batch.size;
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    static telemetry::Counter jobs_run("pool.jobs_run");
    jobs_run.add();
    try {
      telemetry::Span span("pool.job");
      (*batch.jobs)[i]();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(batch.mu);
      if (!batch.error) batch.error = std::current_exception();
    }
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      const std::lock_guard<std::mutex> lock(batch.mu);
      batch.cv.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      telemetry::Span idle_span("pool.idle");
      cv_.wait(lock, [this] { return stop_ || !open_batches_.empty(); });
      if (stop_) {
        // Release this worker's cached simulation networks: after the pool
        // dies nothing can reuse them, and dropping the leases also lets
        // the weak-ptr TopologyContext intern cache free shared tables.
        noc::SimulationArena::local().clear();
        return;
      }
      batch = open_batches_.front();
      if (batch->next.load(std::memory_order_relaxed) >= batch->size) {
        // Exhausted batch still waiting for in-flight jobs; retire it from
        // the help queue and look again.
        open_batches_.pop_front();
        continue;
      }
    }
    drain(*batch);
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>>& jobs) {
  if (jobs.empty()) return;
  if (workers_.empty() || jobs.size() == 1) {
    // Sequential baseline; exceptions propagate. Same job accounting as
    // drain() so pool.jobs_run means "jobs the pool executed" at any
    // thread count, not "jobs that went through a Batch".
    // HM_LINT allow(telemetry-name): deliberate alias of drain()'s counter —
    // the inline path must feed the same pool.jobs_run slot
    static telemetry::Counter jobs_run("pool.jobs_run");
    for (auto& job : jobs) {
      jobs_run.add();
      telemetry::Span span("pool.job");
      job();
    }
    return;
  }

  auto batch = std::make_shared<Batch>(jobs);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    open_batches_.push_back(batch);
  }
  cv_.notify_all();

  drain(*batch);  // the issuing thread always helps with its own batch

  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->size;
    });
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::erase(open_batches_, batch);
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

void BoundedProbeExecutor::run_batch(std::vector<std::function<void()>>& jobs) {
  if (inner_ == nullptr || max_in_flight_ <= 1) {
    for (auto& job : jobs) job();
    return;
  }
  for (std::size_t begin = 0; begin < jobs.size(); begin += max_in_flight_) {
    const std::size_t end = std::min(jobs.size(), begin + max_in_flight_);
    if (end - begin == 1) {
      jobs[begin]();
      continue;
    }
    // Forwarding wrappers: the chunk borrows the caller's callables in
    // place, so nothing is moved out of `jobs` (the batch contract says
    // every job runs exactly once, not that the vector is consumed).
    std::vector<std::function<void()>> chunk;
    chunk.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      chunk.emplace_back([&job = jobs[i]] { job(); });
    }
    inner_->run_batch(chunk);
  }
}

}  // namespace hm::explore
