#include "explore/result_cache.hpp"

#include <mutex>

namespace hm::explore {

std::optional<core::EvaluationResult> ResultCache::lookup(
    std::uint64_t key) const {
  const Shard& shard = shard_for(key);
  const std::shared_lock<std::shared_mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ResultCache::insert(std::uint64_t key,
                         const core::EvaluationResult& result) {
  Shard& shard = shard_for(key);
  const std::unique_lock<std::shared_mutex> lock(shard.mu);
  shard.map.insert_or_assign(key, result);
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

void ResultCache::clear() {
  for (Shard& shard : shards_) {
    const std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map.clear();
  }
}

}  // namespace hm::explore
