#include "explore/result_cache.hpp"

#include <algorithm>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "store/result_store.hpp"
#include "telemetry/telemetry.hpp"

namespace hm::explore {

namespace {

/// Per-shard telemetry counters, aggregated across every ResultCache
/// instance in the process (the registry view; per-instance deltas stay on
/// hits()/misses()). Built once, on first lookup.
struct ShardCounters {
  std::vector<telemetry::Counter> hits;
  std::vector<telemetry::Counter> misses;
  ShardCounters(const char* prefix, std::size_t shards) {
    hits.reserve(shards);
    misses.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      const std::string base =
          std::string(prefix) + (s < 10 ? ".shard0" : ".shard") +
          std::to_string(s);
      hits.emplace_back((base + ".hits").c_str());
      misses.emplace_back((base + ".misses").c_str());
    }
  }
};

ShardCounters& shard_counters() {
  static ShardCounters counters("cache", 16);
  return counters;
}

}  // namespace

ResultCache::~ResultCache() {
  try {
    flush_to_store();
  } catch (...) {
  }
}

void ResultCache::attach_store(std::shared_ptr<store::ResultStore> store) {
  store_ = std::move(store);
}

std::size_t ResultCache::flush_to_store() {
  if (store_ == nullptr) return 0;
  std::size_t written = 0;
  for (Shard& shard : shards_) {
    // Snapshot the dirty entries under the lock, write them through
    // outside it (store puts take the store's own lock).
    std::vector<std::pair<std::uint64_t, core::EvaluationResult>> batch;
    {
      const std::unique_lock<std::shared_mutex> lock(shard.mu);
      batch.reserve(shard.dirty.size());
      // HM_LINT allow(unordered-iter): snapshot only — the batch is sorted
      // by key below before anything ordered (the on-disk segment) sees it
      for (const std::uint64_t key : shard.dirty) {
        const auto it = shard.map.find(key);
        if (it != shard.map.end()) batch.emplace_back(key, it->second);
      }
      shard.dirty.clear();
    }
    // Key order, not hash-set order: put() appends to the store's pending
    // segment in call order, so the dirty set's iteration order would leak
    // straight into the segment bytes — equal stores written by different
    // runs (or standard libraries) would no longer be byte-identical,
    // which breaks segment-level dedup/rsync between hosts.
    std::sort(batch.begin(), batch.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [key, result] : batch) {
      store_->put(key, result);
      ++written;
    }
  }
  store_->flush();
  return written;
}

std::optional<core::EvaluationResult> ResultCache::lookup(
    std::uint64_t key) const {
  ShardCounters& counters = shard_counters();
  const std::size_t shard_idx = key & (kShards - 1);
  const Shard& shard = shards_[shard_idx];
  {
    const std::shared_lock<std::shared_mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      counters.hits[shard_idx].add();
      return it->second;
    }
  }
  // Memory miss: fall through to the persistent tier. Only entries at or
  // above the clear() watermark are served (older disk state must not
  // resurrect cleared keys).
  if (store_ != nullptr) {
    std::uint64_t seq = 0;
    if (auto stored = store_->lookup(key, &seq)) {
      if (seq >= store_watermark_.load(std::memory_order_relaxed)) {
        {
          Shard& mutable_shard = shards_[shard_idx];
          const std::unique_lock<std::shared_mutex> lock(mutable_shard.mu);
          mutable_shard.map.insert_or_assign(key, *stored);
          // Disk-sourced: not dirty, flushing it back would be a no-op.
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        counters.hits[shard_idx].add();
        return stored;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  counters.misses[shard_idx].add();
  return std::nullopt;
}

void ResultCache::insert(std::uint64_t key,
                         const core::EvaluationResult& result) {
  Shard& shard = shard_for(key);
  const std::unique_lock<std::shared_mutex> lock(shard.mu);
  shard.map.insert_or_assign(key, result);
  if (store_ != nullptr) shard.dirty.insert(key);
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

void ResultCache::clear() {
  // Dirty sets go first, in the same critical section as the map wipe:
  // a cleared entry must never survive into a later flush_to_store().
  for (Shard& shard : shards_) {
    const std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map.clear();
    shard.dirty.clear();
  }
  if (store_ != nullptr) {
    // Everything the store holds right now predates this clear; only
    // entries sequenced after it may be served from disk again.
    store_watermark_.store(store_->next_sequence(),
                           std::memory_order_relaxed);
  }
}

}  // namespace hm::explore
