#include "explore/result_cache.hpp"

#include <mutex>

namespace hm::explore {

std::optional<core::EvaluationResult> ResultCache::lookup(
    std::uint64_t key) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ResultCache::insert(std::uint64_t key,
                         const core::EvaluationResult& result) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  map_.insert_or_assign(key, result);
}

core::EvaluationResult ResultCache::get_or_compute(
    std::uint64_t key,
    const std::function<core::EvaluationResult()>& compute, bool* was_hit) {
  if (auto cached = lookup(key)) {
    if (was_hit != nullptr) *was_hit = true;
    return *cached;
  }
  if (was_hit != nullptr) *was_hit = false;
  core::EvaluationResult result = compute();
  insert(key, result);
  return result;
}

std::size_t ResultCache::size() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.size();
}

void ResultCache::clear() {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  map_.clear();
}

}  // namespace hm::explore
