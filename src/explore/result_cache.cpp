#include "explore/result_cache.hpp"

#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace hm::explore {

namespace {

/// Per-shard telemetry counters, aggregated across every ResultCache
/// instance in the process (the registry view; per-instance deltas stay on
/// hits()/misses()). Built once, on first lookup.
struct ShardCounters {
  std::vector<telemetry::Counter> hits;
  std::vector<telemetry::Counter> misses;
  ShardCounters(const char* prefix, std::size_t shards) {
    hits.reserve(shards);
    misses.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      const std::string base =
          std::string(prefix) + (s < 10 ? ".shard0" : ".shard") +
          std::to_string(s);
      hits.emplace_back((base + ".hits").c_str());
      misses.emplace_back((base + ".misses").c_str());
    }
  }
};

}  // namespace

std::optional<core::EvaluationResult> ResultCache::lookup(
    std::uint64_t key) const {
  static ShardCounters counters("cache", kShards);
  const std::size_t shard_idx = key & (kShards - 1);
  const Shard& shard = shards_[shard_idx];
  const std::shared_lock<std::shared_mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    counters.misses[shard_idx].add();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  counters.hits[shard_idx].add();
  return it->second;
}

void ResultCache::insert(std::uint64_t key,
                         const core::EvaluationResult& result) {
  Shard& shard = shard_for(key);
  const std::unique_lock<std::shared_mutex> lock(shard.mu);
  shard.map.insert_or_assign(key, result);
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

void ResultCache::clear() {
  for (Shard& shard : shards_) {
    const std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map.clear();
  }
}

}  // namespace hm::explore
