#include "explore/export.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace hm::explore {

namespace {

/// Shortest round-trip decimal form of a double (exact, locale-free).
std::string fmt(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, ptr);
}

/// RFC-4180 quoting: wrap when the value contains a comma, quote or
/// newline; double any embedded quotes.
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Exported arrangement name: the family for cartesian points, the
/// registered label for warm-start points (SweepEngine::add_arrangement).
std::string arrangement_name(const SweepPoint& p) {
  return p.custom ? p.label : core::to_string(p.type);
}

/// Fault columns appear only when some record ran with a fault scenario,
/// so fault-free exports (goldens included) stay byte-identical to the
/// pre-fault format.
bool any_faults(const std::vector<SweepRecord>& records) {
  for (const auto& rec : records) {
    if (rec.point.params.faults.enabled()) return true;
  }
  return false;
}

}  // namespace

void write_csv(std::ostream& os, const std::vector<SweepRecord>& records) {
  const bool faults = any_faults(records);
  os << "index,arrangement,regularity,chiplets,param_set,traffic,seed,"
        "diameter,avg_hop_distance,bisection_links,chiplet_area_mm2,"
        "link_area_mm2,per_link_bandwidth_bps,full_global_bandwidth_bps,"
        "zero_load_latency_cycles,latency_run_drained,saturation_fraction,"
        "saturation_throughput_bps";
  if (faults) {
    os << ",fault_scenario,fault_plans_run,fault_degraded_throughput,"
          "fault_robust_throughput_bps,fault_recovery_cycles,"
          "fault_packets_lost";
  }
  os << ",analytic_only,error\n";
  for (const auto& rec : records) {
    const auto& p = rec.point;
    const auto& r = rec.result;
    os << p.index << ',' << csv_escape(arrangement_name(p)) << ','
       << core::to_string(r.regularity) << ',' << p.chiplet_count << ','
       << p.param_index << ',' << csv_escape(p.traffic.describe()) << ','
       << p.params.sim.seed << ',' << r.diameter << ','
       << fmt(r.avg_hop_distance) << ',' << r.bisection_links << ','
       << fmt(r.chiplet_area_mm2) << ',' << fmt(r.link_area_mm2) << ','
       << fmt(r.per_link_bandwidth_bps) << ','
       << fmt(r.full_global_bandwidth_bps) << ','
       << fmt(r.zero_load_latency_cycles) << ','
       << (r.latency_run_drained ? 1 : 0) << ',' << fmt(r.saturation_fraction)
       << ',' << fmt(r.saturation_throughput_bps);
    if (faults) {
      os << ',' << csv_escape(p.params.faults.describe()) << ','
         << r.fault_plans_run << ',' << fmt(r.fault_degraded_throughput)
         << ',' << fmt(r.fault_robust_throughput_bps) << ','
         << r.fault_recovery_cycles << ',' << r.fault_packets_lost;
    }
    os << ',' << (rec.analytic_only ? 1 : 0) << ',' << csv_escape(rec.error)
       << '\n';
  }
}

std::string to_csv(const std::vector<SweepRecord>& records) {
  std::ostringstream os;
  write_csv(os, records);
  return os.str();
}

void write_json(std::ostream& os, const std::vector<SweepRecord>& records) {
  const bool faults = any_faults(records);
  os << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& rec = records[i];
    const auto& p = rec.point;
    const auto& r = rec.result;
    os << "  {\"index\": " << p.index
       << ", \"arrangement\": \"" << json_escape(arrangement_name(p))
       << "\", \"regularity\": \"" << json_escape(core::to_string(r.regularity))
       << "\", \"chiplets\": " << p.chiplet_count
       << ", \"param_set\": " << p.param_index
       << ", \"traffic\": \"" << json_escape(p.traffic.describe())
       << "\", \"seed\": " << p.params.sim.seed
       << ", \"diameter\": " << r.diameter
       << ", \"avg_hop_distance\": " << fmt(r.avg_hop_distance)
       << ", \"bisection_links\": " << r.bisection_links
       << ", \"chiplet_area_mm2\": " << fmt(r.chiplet_area_mm2)
       << ", \"link_area_mm2\": " << fmt(r.link_area_mm2)
       << ", \"per_link_bandwidth_bps\": " << fmt(r.per_link_bandwidth_bps)
       << ", \"full_global_bandwidth_bps\": "
       << fmt(r.full_global_bandwidth_bps)
       << ", \"zero_load_latency_cycles\": "
       << fmt(r.zero_load_latency_cycles)
       << ", \"latency_run_drained\": "
       << (r.latency_run_drained ? "true" : "false")
       << ", \"saturation_fraction\": " << fmt(r.saturation_fraction)
       << ", \"saturation_throughput_bps\": "
       << fmt(r.saturation_throughput_bps);
    if (faults) {
      os << ", \"fault_scenario\": \""
         << json_escape(p.params.faults.describe())
         << "\", \"fault_plans_run\": " << r.fault_plans_run
         << ", \"fault_degraded_throughput\": "
         << fmt(r.fault_degraded_throughput)
         << ", \"fault_robust_throughput_bps\": "
         << fmt(r.fault_robust_throughput_bps)
         << ", \"fault_recovery_cycles\": " << r.fault_recovery_cycles
         << ", \"fault_packets_lost\": " << r.fault_packets_lost;
    }
    os << ", \"analytic_only\": " << (rec.analytic_only ? "true" : "false")
       << ", \"error\": \"" << json_escape(rec.error) << "\"}"
       << (i + 1 < records.size() ? ",\n" : "\n");
  }
  os << "]\n";
}

std::string to_json(const std::vector<SweepRecord>& records) {
  std::ostringstream os;
  write_json(os, records);
  return os.str();
}

void write_json_with_telemetry(std::ostream& os,
                               const std::vector<SweepRecord>& records) {
  os << "{\n\"records\": ";
  write_json(os, records);
  os << ",\n\"telemetry\": ";
  telemetry::write_snapshot_json(os);
  os << "\n}\n";
}

std::string to_json_with_telemetry(const std::vector<SweepRecord>& records) {
  std::ostringstream os;
  write_json_with_telemetry(os, records);
  return os.str();
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("export_file: cannot open " + path);
  }
  return os;
}

}  // namespace

void write_csv_file(const std::string& path,
                    const std::vector<SweepRecord>& records) {
  auto os = open_or_throw(path);
  write_csv(os, records);
}

void write_json_file(const std::string& path,
                     const std::vector<SweepRecord>& records) {
  auto os = open_or_throw(path);
  write_json(os, records);
}

void export_file(const std::string& path,
                 const std::vector<SweepRecord>& records) {
  if (path.size() >= 5 && path.substr(path.size() - 5) == ".json") {
    write_json_file(path, records);
  } else {
    write_csv_file(path, records);
  }
}

}  // namespace hm::explore
