#include "explore/hash.hpp"

namespace hm::explore {

std::uint64_t hash_arrangement(const core::Arrangement& arr) {
  StableHash h;
  h.mix(static_cast<std::uint64_t>(arr.type()))
      .mix(static_cast<std::uint64_t>(arr.regularity()))
      .mix(arr.chiplet_count());
  for (const auto& c : arr.coords()) h.mix_i(c.a).mix_i(c.b);
  const auto edges = arr.graph().edges();  // sorted (a < b, lexicographic)
  h.mix(edges.size());
  for (const auto& [a, b] : edges) h.mix(a).mix(b);
  return h.value();
}

std::uint64_t hash_analytic_params(const core::EvaluationParams& params) {
  StableHash h;
  h.mix_f(params.total_area_mm2)
      .mix_f(params.power_fraction)
      .mix_f(params.bump_pitch_mm)
      .mix_i(params.non_data_wires)
      .mix_f(params.frequency_hz)
      .mix_b(params.hand_optimized_small_n)
      .mix_i(params.sim.endpoints_per_chiplet);
  return h.value();
}

std::uint64_t hash_simulation_params(const core::EvaluationParams& params) {
  const noc::SimConfig& s = params.sim;
  StableHash h;
  h.mix_i(s.vcs)
      .mix_i(s.buffer_depth)
      .mix_i(s.router_latency)
      .mix_i(s.link_latency)
      .mix_i(s.injection_link_latency)
      .mix_i(s.ejection_link_latency)
      .mix_i(s.packet_length)
      .mix_i(s.endpoints_per_chiplet)
      .mix_i(s.source_queue_capacity)
      .mix_i(s.escape_threshold)
      .mix_i(s.sa_iterations)
      .mix(static_cast<std::uint64_t>(s.routing))
      .mix(s.seed)
      .mix_f(params.zero_load_injection_rate)
      .mix(params.latency_warmup)
      .mix(params.latency_measure)
      .mix(params.latency_drain_limit)
      .mix(params.throughput_warmup)
      .mix(params.throughput_measure)
      .mix_b(params.measure_latency)
      .mix_b(params.measure_saturation);
  return h.value();
}

std::uint64_t hash_traffic(const noc::TrafficSpec& traffic) {
  StableHash h;
  h.mix(static_cast<std::uint64_t>(traffic.pattern))
      .mix_f(traffic.hotspot_fraction)
      .mix(traffic.hotspots.size());
  for (const auto hs : traffic.hotspots) h.mix(hs);
  h.mix(traffic.permutation_seed);
  return h.value();
}

}  // namespace hm::explore
