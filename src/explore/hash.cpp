#include "explore/hash.hpp"

namespace hm::explore {

std::uint64_t hash_arrangement(const core::Arrangement& arr) {
  StableHash h;
  h.mix(static_cast<std::uint64_t>(arr.type()))
      .mix(static_cast<std::uint64_t>(arr.regularity()))
      .mix(arr.chiplet_count());
  for (const auto& c : arr.coords()) h.mix_i(c.a).mix_i(c.b);
  const auto edges = arr.graph().edges();  // sorted (a < b, lexicographic)
  h.mix(edges.size());
  for (const auto& [a, b] : edges) h.mix(a).mix(b);
  return h.value();
}

std::uint64_t hash_analytic_params(const core::EvaluationParams& params) {
  StableHash h;
  h.mix_f(params.total_area_mm2)
      .mix_f(params.power_fraction)
      .mix_f(params.bump_pitch_mm)
      .mix_i(params.non_data_wires)
      .mix_f(params.frequency_hz)
      .mix_b(params.hand_optimized_small_n)
      .mix_i(params.sim.endpoints_per_chiplet);
  return h.value();
}

std::uint64_t hash_simulation_params(const core::EvaluationParams& params) {
  const noc::SimConfig& s = params.sim;
  StableHash h;
  h.mix_i(s.vcs)
      .mix_i(s.buffer_depth)
      .mix_i(s.router_latency)
      .mix_i(s.link_latency)
      .mix_i(s.injection_link_latency)
      .mix_i(s.ejection_link_latency)
      .mix_i(s.packet_length)
      .mix_i(s.endpoints_per_chiplet)
      .mix_i(s.source_queue_capacity)
      .mix_i(s.escape_threshold)
      .mix_i(s.sa_iterations)
      .mix(static_cast<std::uint64_t>(s.routing))
      .mix(s.seed)
      .mix_f(params.zero_load_injection_rate)
      .mix(params.latency_warmup)
      .mix(params.latency_measure)
      .mix(params.latency_drain_limit)
      .mix(params.throughput_warmup)
      .mix(params.throughput_measure)
      .mix_b(params.measure_latency)
      .mix_b(params.measure_saturation);
  // Fault scenario: every field participates — two jobs differing only in
  // their fault setup must never collide in the sweep's result cache.
  const faults::FaultScenarioSpec& f = params.faults;
  h.mix_i(f.single_link_kills)
      .mix_i(f.storm_kills)
      .mix(f.seed)
      .mix_i(f.kill_at)
      .mix_i(f.storm_spacing)
      .mix_i(f.repair_after)
      .mix_i(f.reconvergence_delay)
      .mix_f(f.offered_rate)
      .mix_i(f.warmup)
      .mix_i(f.measure)
      .mix_f(f.recovery_threshold)
      .mix_i(f.recovery_window)
      .mix(f.explicit_plans.size());
  for (const faults::FaultPlan& plan : f.explicit_plans) {
    h.mix_b(plan.allow_partition)
        .mix_i(plan.reconvergence_delay)
        .mix_f(plan.recovery_threshold)
        .mix_i(plan.recovery_window)
        .mix(plan.events.size());
    for (const faults::FaultEvent& e : plan.events) {
      h.mix_i(e.at).mix(static_cast<std::uint64_t>(e.kind)).mix(e.a).mix(e.b);
    }
  }
  return h.value();
}

std::uint64_t hash_traffic(const noc::TrafficSpec& traffic) {
  StableHash h;
  h.mix(static_cast<std::uint64_t>(traffic.pattern))
      .mix_f(traffic.hotspot_fraction)
      .mix(traffic.hotspots.size());
  for (const auto hs : traffic.hotspots) h.mix(hs);
  h.mix(traffic.permutation_seed);
  return h.value();
}

}  // namespace hm::explore
