#include "explore/cached_eval.hpp"

#include "explore/hash.hpp"
#include "explore/result_cache.hpp"
#include "noc/topology.hpp"

namespace hm::explore {

core::EvaluationResult cached_evaluate(const core::Arrangement& arr,
                                       const core::EvaluationParams& params,
                                       const noc::TrafficSpec& traffic,
                                       ResultCache* cache,
                                       noc::ProbeExecutor* executor,
                                       CachedEvalOutcome* outcome) {
  CachedEvalOutcome local;
  const auto cached = [&](std::uint64_t key, auto compute) {
    if (cache == nullptr) {
      local.from_cache = false;
      return compute();
    }
    return cache->get_or_compute(key, compute, &local.from_cache);
  };

  // Analytic half, shared across every simulator/traffic ablation of the
  // same design via the cache.
  const std::uint64_t analytic_key =
      hash_combine(hash_arrangement(arr), hash_analytic_params(params));
  const auto analytic =
      cached(analytic_key, [&] { return core::evaluate_analytic(arr, params); });

  const bool want_sim = params.measure_latency || params.measure_saturation;
  core::EvaluationResult result;
  if (!want_sim || arr.chiplet_count() < 2) {
    local.analytic_only = true;
    result = analytic;
  } else {
    const std::uint64_t full_key = hash_combine(
        hash_combine(analytic_key, hash_simulation_params(params)),
        hash_traffic(traffic));
    result = cached(full_key, [&] {
      // One shared topology per evaluation chain; the process-wide context
      // cache additionally shares it across concurrent evaluations that
      // ablate the same design (different seeds/params/traffic, same graph).
      return core::evaluate_simulation(arr, params, analytic, traffic,
                                       executor,
                                       noc::TopologyContext::acquire(arr.graph()));
    });
  }
  if (outcome != nullptr) *outcome = local;
  return result;
}

}  // namespace hm::explore
