// Thread-safe cache of evaluation results keyed by the stable design-point
// hashes of explore/hash.hpp. Repeated probes of the same (arrangement,
// params) — e.g. the analytic half of evaluate() shared across traffic
// ablations, or a re-run of an extended sweep — are computed once.
//
// This is the top of a two-level sharing scheme: ResultCache shares whole
// EvaluationResults across identical design points, while the process-wide
// noc::TopologyContext intern cache (keyed by the same util::StableHash
// digests) shares the routing tables underneath points that differ only in
// seeds, simulator knobs or traffic.
//
// Contention design: the map is split into 16 shards, each behind its own
// shared_mutex, so sweep workers hitting the cache concurrently only
// serialize when their keys land in the same shard (keys are well-mixed
// 64-bit content hashes, so shard selection is uniform). get_or_compute is
// a template over the compute callable — no std::function allocation on
// the per-job path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "core/evaluator.hpp"

namespace hm::explore {

class ResultCache {
 public:
  /// Returns the cached result for `key`, if any. Counts a hit or miss.
  [[nodiscard]] std::optional<core::EvaluationResult> lookup(
      std::uint64_t key) const;

  /// Stores `result` under `key` (last writer wins; with deterministic
  /// evaluation, racing writers store identical values).
  void insert(std::uint64_t key, const core::EvaluationResult& result);

  /// lookup(), falling back to `compute` + insert() on a miss. `compute`
  /// runs outside the lock, so two threads racing on the same key may both
  /// compute — harmless for deterministic evaluations and cheaper than
  /// serializing every simulation behind a mutex. `was_hit`, when given,
  /// reports whether the value came from the cache.
  template <typename Compute>
  core::EvaluationResult get_or_compute(std::uint64_t key, Compute&& compute,
                                        bool* was_hit = nullptr) {
    if (auto cached = lookup(key)) {
      if (was_hit != nullptr) *was_hit = true;
      return *cached;
    }
    if (was_hit != nullptr) *was_hit = false;
    core::EvaluationResult result = std::forward<Compute>(compute)();
    insert(key, result);
    return result;
  }

  /// Total entries across all shards (each shard locked in turn, so the
  /// result is approximate under concurrent insertion).
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Lifetime lookup counters (lookup() and get_or_compute()).
  ///
  /// Deprecated for observability use: lookups are also published, per
  /// shard and aggregated across every ResultCache instance, as the
  /// `cache.shardNN.{hits,misses}` counters in telemetry::snapshot() — the
  /// uniform surface. These per-instance accessors stay for the engines'
  /// delta bookkeeping (SearchResult::cache_hits etc.).
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::uint64_t, core::EvaluationResult> map;
  };

  /// Keys are stable content hashes (already well mixed), so the low bits
  /// select a shard uniformly.
  [[nodiscard]] Shard& shard_for(std::uint64_t key) const {
    return shards_[key & (kShards - 1)];
  }

  mutable std::array<Shard, kShards> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace hm::explore
