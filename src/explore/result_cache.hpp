// Thread-safe cache of evaluation results keyed by the stable design-point
// hashes of explore/hash.hpp. Repeated probes of the same (arrangement,
// params) — e.g. the analytic half of evaluate() shared across traffic
// ablations, or a re-run of an extended sweep — are computed once.
//
// This is the top of a two-level sharing scheme: ResultCache shares whole
// EvaluationResults across identical design points, while the process-wide
// noc::TopologyContext intern cache (keyed by the same util::StableHash
// digests) shares the routing tables underneath points that differ only in
// seeds, simulator knobs or traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "core/evaluator.hpp"

namespace hm::explore {

class ResultCache {
 public:
  /// Returns the cached result for `key`, if any. Counts a hit or miss.
  [[nodiscard]] std::optional<core::EvaluationResult> lookup(
      std::uint64_t key) const;

  /// Stores `result` under `key` (last writer wins; with deterministic
  /// evaluation, racing writers store identical values).
  void insert(std::uint64_t key, const core::EvaluationResult& result);

  /// lookup(), falling back to `compute` + insert() on a miss. `compute`
  /// runs outside the lock, so two threads racing on the same key may both
  /// compute — harmless for deterministic evaluations and cheaper than
  /// serializing every simulation behind a mutex. `was_hit`, when given,
  /// reports whether the value came from the cache.
  core::EvaluationResult get_or_compute(
      std::uint64_t key,
      const std::function<core::EvaluationResult()>& compute,
      bool* was_hit = nullptr);

  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Lifetime lookup counters (lookup() and get_or_compute()).
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::uint64_t, core::EvaluationResult> map_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace hm::explore
