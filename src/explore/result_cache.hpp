// Thread-safe cache of evaluation results keyed by the stable design-point
// hashes of explore/hash.hpp. Repeated probes of the same (arrangement,
// params) — e.g. the analytic half of evaluate() shared across traffic
// ablations, or a re-run of an extended sweep — are computed once.
//
// This is the top of a two-level sharing scheme: ResultCache shares whole
// EvaluationResults across identical design points, while the process-wide
// noc::TopologyContext intern cache (keyed by the same util::StableHash
// digests) shares the routing tables underneath points that differ only in
// seeds, simulator knobs or traffic.
//
// Contention design: the map is split into 16 shards, each behind its own
// shared_mutex, so sweep workers hitting the cache concurrently only
// serialize when their keys land in the same shard (keys are well-mixed
// 64-bit content hashes, so shard selection is uniform). get_or_compute is
// a template over the compute callable — no std::function allocation on
// the per-job path.
// Persistence: attach_store() hangs a store::ResultStore under the cache
// as a second tier. Memory misses fall through to the store (a disk hit
// repopulates the shard and counts as a cache hit), inserts are tracked as
// dirty per shard, and flush_to_store() — also run by the destructor —
// writes the dirty set through. clear() drops the dirty sets *before* any
// flush and takes a store sequence watermark, so cleared entries neither
// reach disk nor resurrect from pre-clear disk state.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/evaluator.hpp"

namespace hm::store {
class ResultStore;
}  // namespace hm::store

namespace hm::explore {

class ResultCache {
 public:
  ResultCache() = default;
  /// Flushes dirty entries to the attached store, if any (errors swallowed:
  /// a failed shutdown flush costs warmth, never correctness).
  ~ResultCache();
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Attaches the persistent tier. Call before the cache is shared across
  /// threads (engines attach in their constructor); passing nullptr
  /// detaches. Entries already in memory are left alone (and stay
  /// non-dirty — only post-attach inserts are flushed).
  void attach_store(std::shared_ptr<store::ResultStore> store);
  [[nodiscard]] bool has_store() const noexcept { return store_ != nullptr; }

  /// Writes every dirty entry through to the attached store and flushes it
  /// to disk. Returns the number of entries written (0 without a store).
  std::size_t flush_to_store();

  /// Returns the cached result for `key`, if any. Counts a hit or miss.
  /// With a store attached, a memory miss falls through to disk; a disk
  /// hit repopulates the shard (non-dirty) and counts as a hit.
  [[nodiscard]] std::optional<core::EvaluationResult> lookup(
      std::uint64_t key) const;

  /// Stores `result` under `key` (last writer wins; with deterministic
  /// evaluation, racing writers store identical values).
  void insert(std::uint64_t key, const core::EvaluationResult& result);

  /// lookup(), falling back to `compute` + insert() on a miss. `compute`
  /// runs outside the lock, so two threads racing on the same key may both
  /// compute — harmless for deterministic evaluations and cheaper than
  /// serializing every simulation behind a mutex. `was_hit`, when given,
  /// reports whether the value came from the cache.
  template <typename Compute>
  core::EvaluationResult get_or_compute(std::uint64_t key, Compute&& compute,
                                        bool* was_hit = nullptr) {
    if (auto cached = lookup(key)) {
      if (was_hit != nullptr) *was_hit = true;
      return *cached;
    }
    if (was_hit != nullptr) *was_hit = false;
    core::EvaluationResult result = std::forward<Compute>(compute)();
    insert(key, result);
    return result;
  }

  /// Total entries across all shards (each shard locked in turn, so the
  /// result is approximate under concurrent insertion).
  [[nodiscard]] std::size_t size() const;

  /// Empties the cache. Entries never inserted again are gone for good:
  /// the per-shard dirty sets are discarded before anything could flush
  /// (a cleared entry must not reach disk), and with a store attached the
  /// store's current sequence becomes a freshness watermark so lookups
  /// stop resurrecting disk entries that predate the clear.
  void clear();

  /// Lifetime lookup counters (lookup() and get_or_compute()).
  ///
  /// Deprecated for observability use: lookups are also published, per
  /// shard and aggregated across every ResultCache instance, as the
  /// `cache.shardNN.{hits,misses}` counters in telemetry::snapshot() — the
  /// uniform surface. These per-instance accessors stay for the engines'
  /// delta bookkeeping (SearchResult::cache_hits etc.).
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::uint64_t, core::EvaluationResult> map;
    /// Keys inserted since the last flush_to_store() (only tracked while a
    /// store is attached; disk-sourced entries are never dirty).
    std::unordered_set<std::uint64_t> dirty;
  };

  /// Keys are stable content hashes (already well mixed), so the low bits
  /// select a shard uniformly.
  [[nodiscard]] Shard& shard_for(std::uint64_t key) const {
    return shards_[key & (kShards - 1)];
  }

  mutable std::array<Shard, kShards> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::shared_ptr<store::ResultStore> store_;
  /// Store entries with seq < watermark predate the last clear() and are
  /// not served (the resurrection guard).
  mutable std::atomic<std::uint64_t> store_watermark_{0};
};

}  // namespace hm::explore
