// Work-sharing thread pool for the design-space exploration engine.
//
// The pool executes *batches*: run_batch() blocks until every job of the
// batch has run exactly once. The calling thread always participates in its
// own batch, which gives two properties the sweep engine relies on:
//   * nested batches cannot deadlock — a pool thread that issues a batch of
//     its own (e.g. a sweep job whose saturation search speculates probes)
//     drains that batch itself even when every worker is busy, and
//   * ThreadPool(1) degenerates to plain sequential execution, the baseline
//     that multi-threaded sweeps must reproduce bit for bit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "noc/simulator.hpp"

namespace hm::explore {

/// Fixed-size pool; implements noc::ProbeExecutor so the same pool that
/// fans designs out across cores also parallelizes the probes inside one
/// design evaluation.
class ThreadPool final : public noc::ProbeExecutor {
 public:
  /// `threads` is the total concurrency including the caller of
  /// run_batch(): the pool spawns threads-1 workers. 0 means
  /// std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread).
  [[nodiscard]] unsigned thread_count() const noexcept { return threads_; }

  /// Runs every job exactly once and returns when all have finished. Jobs
  /// are claimed in index order, so with thread_count() == 1 this is a
  /// plain sequential loop. The first exception a job throws is rethrown
  /// here after the batch has drained.
  void run_batch(std::vector<std::function<void()>>& jobs) override;

 private:
  struct Batch;

  void worker_loop();
  static void drain(Batch& batch);

  unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> open_batches_;
  bool stop_ = false;
};

/// ProbeExecutor adapter that caps how many jobs of one batch are in flight
/// at once: run_batch slices the batch into chunks of at most
/// `max_in_flight` jobs and runs the chunks through the inner executor one
/// after another (single-job chunks run inline on the caller).
///
/// This is the throttle for intra-design parallelism (see
/// SweepEngine::Options::intra_design_parallelism): a sweep job's
/// speculative saturation probes share the one process-wide pool with every
/// other sweep job, and an uncapped speculative batch from each of N
/// concurrent jobs floods the pool with probes that the binary search may
/// discard, while each issuing worker sits "deadlock-idle" in its nested
/// run_batch wait (it cannot steal other batches' work while waiting for
/// its own stragglers). Chunking bounds both: at most `max_in_flight`
/// speculative probes per job compete for workers, and the issuing thread
/// re-joins its own batch every chunk. Results are unaffected — chunking
/// only changes scheduling, and every probe's outcome is a pure function of
/// its inputs.
class BoundedProbeExecutor final : public noc::ProbeExecutor {
 public:
  /// `inner == nullptr` or `max_in_flight <= 1` degenerate to running every
  /// job inline on the calling thread.
  BoundedProbeExecutor(noc::ProbeExecutor* inner, std::size_t max_in_flight)
      : inner_(inner), max_in_flight_(max_in_flight) {}

  void run_batch(std::vector<std::function<void()>>& jobs) override;

 private:
  noc::ProbeExecutor* inner_;
  std::size_t max_in_flight_;
};

}  // namespace hm::explore
