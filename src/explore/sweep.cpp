#include "explore/sweep.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>

#include "explore/cached_eval.hpp"
#include "noc/rng.hpp"
#include "store/result_store.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace hm::explore {

std::vector<SweepPoint> SweepSpec::points() const {
  if (types.empty()) {
    throw std::invalid_argument("SweepSpec: types must be non-empty");
  }
  if (chiplet_counts.empty()) {
    throw std::invalid_argument("SweepSpec: chiplet_counts must be non-empty");
  }
  if (param_grid.empty() || traffic_grid.empty()) {
    throw std::invalid_argument(
        "SweepSpec: param_grid and traffic_grid must be non-empty");
  }
  for (const auto& traffic : traffic_grid) {
    traffic.validate();  // endpoint-count check happens per design
  }

  std::vector<SweepPoint> out;
  out.reserve(types.size() * chiplet_counts.size() * param_grid.size() *
              traffic_grid.size());
  std::size_t index = 0;
  for (const auto type : types) {
    for (const auto n : chiplet_counts) {
      for (std::size_t pi = 0; pi < param_grid.size(); ++pi) {
        for (std::size_t ti = 0; ti < traffic_grid.size(); ++ti) {
          SweepPoint p;
          p.index = index;
          p.type = type;
          p.chiplet_count = n;
          p.param_index = pi;
          p.traffic_index = ti;
          p.params = param_grid[pi];
          p.traffic = traffic_grid[ti];
          if (derive_per_job_seeds) {
            p.params.sim.seed = noc::derive_seed(base_seed, index);
          }
          out.push_back(std::move(p));
          ++index;
        }
      }
    }
  }
  return out;
}

SweepEngine::SweepEngine() : SweepEngine(Options{}) {}

SweepEngine::SweepEngine(Options options)
    : options_(std::move(options)), pool_(options_.threads) {
  if (!options_.cache_dir.empty()) {
    cache_.attach_store(store::ResultStore::open(options_.cache_dir));
  }
}

void SweepEngine::add_arrangement(core::Arrangement arrangement,
                                  std::string label) {
  if (arrangement.chiplet_count() == 0) {
    throw std::invalid_argument(
        "SweepEngine::add_arrangement: arrangement has no chiplets");
  }
  if (label.empty()) label = arrangement.name();
  extra_.push_back(
      {std::make_shared<const core::Arrangement>(std::move(arrangement)),
       std::move(label)});
}

SweepRecord SweepEngine::evaluate_point(const SweepPoint& point) {
  telemetry::Span span("sweep.job");
  static telemetry::Counter jobs("sweep.jobs");
  jobs.add();
  SweepRecord rec;
  rec.point = point;
  const auto start = std::chrono::steady_clock::now();
  try {
    const core::Arrangement arr =
        point.custom ? *point.custom
                     : core::make_arrangement(point.type, point.chiplet_count);
    // Intra-design probes go through a per-job bounded adapter so one job
    // cannot flood the shared pool with speculative probes (policy in
    // Options::intra_design_parallelism / max_intra_probes).
    BoundedProbeExecutor bounded(&pool_, options_.max_intra_probes);
    noc::ProbeExecutor* executor =
        options_.intra_design_parallelism ? &bounded : nullptr;

    CachedEvalOutcome outcome;
    rec.result = cached_evaluate(arr, point.params, point.traffic,
                                 options_.use_cache ? &cache_ : nullptr,
                                 executor, &outcome);
    rec.from_cache = outcome.from_cache;
    rec.analytic_only = outcome.analytic_only;
  } catch (const std::exception& e) {
    rec.error = e.what();
  } catch (...) {
    rec.error = "unknown error";
  }
  rec.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return rec;
}

std::vector<SweepRecord> SweepEngine::run(const SweepSpec& spec) {
  // SweepSpec.simulate is a convenience switch over the per-params flags.
  SweepSpec resolved = spec;
  if (!spec.simulate) {
    for (auto& p : resolved.param_grid) {
      p.measure_latency = false;
      p.measure_saturation = false;
    }
  }
  std::vector<SweepPoint> points = resolved.points();

  // Warm-start points ride after the cartesian product, crossed with the
  // same param/traffic grids and the continued per-job seed sequence —
  // indistinguishable from family points to the pool, the cache and the
  // exports (except for their label).
  for (std::size_t e = 0; e < extra_.size(); ++e) {
    for (std::size_t pi = 0; pi < resolved.param_grid.size(); ++pi) {
      for (std::size_t ti = 0; ti < resolved.traffic_grid.size(); ++ti) {
        SweepPoint p;
        p.index = points.size();
        p.type = extra_[e].arrangement->type();
        p.chiplet_count = extra_[e].arrangement->chiplet_count();
        p.param_index = pi;
        p.traffic_index = ti;
        p.params = resolved.param_grid[pi];
        p.traffic = resolved.traffic_grid[ti];
        if (resolved.derive_per_job_seeds) {
          p.params.sim.seed = noc::derive_seed(resolved.base_seed, p.index);
        }
        p.custom = extra_[e].arrangement;
        p.label = extra_[e].label;
        points.push_back(std::move(p));
      }
    }
  }

  std::vector<SweepRecord> records(points.size());
  std::size_t completed = 0;  // guarded by progress_mu_
  std::vector<std::function<void()>> jobs;
  jobs.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    jobs.push_back([this, &points, &records, &completed, i] {
      records[i] = evaluate_point(points[i]);
      if (options_.on_progress) {
        const std::lock_guard<std::mutex> lock(progress_mu_);
        ++completed;
        SweepProgress progress;
        progress.completed = completed;
        progress.total = points.size();
        progress.last = &records[i];
        options_.on_progress(progress);
      }
    });
  }
  pool_.run_batch(jobs);
  return records;
}

}  // namespace hm::explore
