// Process-wide flight-recorder metrics registry.
//
// Named counters, high-water gauges and fixed-bucket histograms, sharded
// per thread so hot-path increments never contend: every mutation is a
// relaxed atomic op on a slot owned by the calling thread's shard, and
// snapshot() merges the shards (plus the folded totals of exited threads)
// under the registry mutex. The design rules, in priority order:
//
//   1. Never perturb simulation results. The registry touches no RNG, no
//      simulation state and no output stream; instrumented code only adds
//      counter increments. Golden sweeps stay byte-identical with
//      telemetry enabled (pinned by test_telemetry).
//   2. Near-zero overhead when disabled. The only cost on a disabled hot
//      path is one relaxed atomic load of the global enabled flag
//      (`telemetry.overhead_ratio` in BENCH_perf.json tracks this).
//   3. TSan-clean under concurrent writers and concurrent snapshots: all
//      shard slots are std::atomic, shard lifetime is managed under the
//      registry mutex, and exited threads fold into a retired accumulator
//      before their shard is recycled.
//
// Instrumentation sites hold a handle (Counter / Gauge / Histogram),
// typically as a function-local static so name lookup happens once:
//
//   static telemetry::Counter c("arena.networks_reused");
//   c.add();
//
// Metric identity is the name: two handles with the same name share the
// slot, so process-wide aggregation across engine instances is the default
// (per-instance deltas stay available through the legacy accessors, e.g.
// ResultCache::hits()).
//
// Enablement: HM_TELEMETRY=1 in the environment, or set_enabled(true)
// (the examples' --telemetry flag). Snapshots work either way; disabled
// just means the increments are dropped.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace hm::telemetry {

/// Global on/off switch. Initialized from HM_TELEMETRY (unset/"0" = off).
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic counter. add() is a relaxed fetch_add on the calling
/// thread's shard when enabled, a single relaxed load when disabled.
class Counter {
 public:
  explicit Counter(const char* name);
  void add(std::uint64_t n = 1) noexcept;

 private:
  std::uint32_t id_;
};

/// High-water gauge: each thread tracks the max value it has seen;
/// snapshot() reports the max across threads (the right merge for
/// queue-occupancy high-water marks, the only gauge use so far).
class Gauge {
 public:
  explicit Gauge(const char* name);
  void set_max(std::uint64_t v) noexcept;

 private:
  std::uint32_t id_;
};

/// Fixed-bucket histogram. Bucket i counts values <= bounds[i] (first
/// matching bucket wins); values above the last bound land in the
/// overflow bucket. At most kMaxHistogramBounds bounds; they must be
/// strictly increasing.
class Histogram {
 public:
  Histogram(const char* name, std::initializer_list<std::uint64_t> bounds);
  void record(std::uint64_t v) noexcept;

 private:
  std::uint32_t id_;
  std::vector<std::uint64_t> bounds_;  ///< copy; keeps record() lock-free
};

inline constexpr std::size_t kMaxHistogramBounds = 15;

/// Merged view of every registered metric at one instant.
struct Snapshot {
  struct Hist {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;  ///< max across threads
  std::map<std::string, Hist> histograms;
};

/// Merges all live shards and retired totals. Safe to call concurrently
/// with writers (relaxed reads; the result is a consistent-enough view,
/// exact once writers are quiescent).
[[nodiscard]] Snapshot snapshot();

/// snapshot() rendered as a JSON object with sorted keys:
/// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
void write_snapshot_json(std::ostream& os);
[[nodiscard]] std::string snapshot_json();

/// Zeroes every slot (live shards and retired totals) without touching
/// registrations. Test-only: callers must be quiescent.
void reset_for_test();

}  // namespace hm::telemetry
