#include "telemetry/telemetry.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hm::telemetry {

namespace {

constexpr std::size_t kMaxCounters = 192;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 32;
constexpr std::size_t kMaxBuckets = kMaxHistogramBounds + 1;  // + overflow

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("HM_TELEMETRY");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}()};

/// One thread's slice of every metric. Fixed-capacity atomic arrays so
/// slot addresses are stable for the shard's lifetime and concurrent
/// add/snapshot is race-free by construction.
struct Shard {
  std::atomic<std::uint64_t> counters[kMaxCounters]{};
  std::atomic<std::uint64_t> gauges[kMaxGauges]{};  // high-water, 0 = unset
  std::atomic<std::uint64_t> hist_buckets[kMaxHistograms][kMaxBuckets]{};
  std::atomic<std::uint64_t> hist_count[kMaxHistograms]{};
  std::atomic<std::uint64_t> hist_sum[kMaxHistograms]{};

  void zero() noexcept {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : gauges) g.store(0, std::memory_order_relaxed);
    for (auto& row : hist_buckets) {
      for (auto& b : row) b.store(0, std::memory_order_relaxed);
    }
    for (auto& c : hist_count) c.store(0, std::memory_order_relaxed);
    for (auto& s : hist_sum) s.store(0, std::memory_order_relaxed);
  }
};

/// Plain (mutex-guarded) accumulator the shards of exited threads fold
/// into, so short-lived worker threads don't pin shards forever.
struct Retired {
  std::uint64_t counters[kMaxCounters]{};
  std::uint64_t gauges[kMaxGauges]{};  // max across exited threads
  std::uint64_t hist_buckets[kMaxHistograms][kMaxBuckets]{};
  std::uint64_t hist_count[kMaxHistograms]{};
  std::uint64_t hist_sum[kMaxHistograms]{};
};

class Registry {
 public:
  // Leaked singleton: outlives every thread_local shard owner, so thread
  // exit during static destruction never touches a dead registry.
  static Registry& instance() {
    static Registry* r = new Registry;
    return *r;
  }

  std::uint32_t register_counter(const char* name) {
    std::lock_guard<std::mutex> lock(mu_);
    return register_named(counter_names_, name, kMaxCounters,
                          "telemetry: counter capacity exhausted");
  }

  std::uint32_t register_gauge(const char* name) {
    std::lock_guard<std::mutex> lock(mu_);
    return register_named(gauge_names_, name, kMaxGauges,
                          "telemetry: gauge capacity exhausted");
  }

  std::uint32_t register_histogram(const char* name,
                                   std::initializer_list<std::uint64_t> bounds) {
    if (bounds.size() == 0 || bounds.size() > kMaxHistogramBounds) {
      throw std::invalid_argument("telemetry: histogram needs 1..15 bounds");
    }
    std::uint64_t prev = 0;
    bool first = true;
    for (std::uint64_t b : bounds) {
      if (!first && b <= prev) {
        throw std::invalid_argument(
            "telemetry: histogram bounds must be strictly increasing");
      }
      prev = b;
      first = false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const auto id = register_named(hist_names_, name, kMaxHistograms,
                                   "telemetry: histogram capacity exhausted");
    if (id == hist_bounds_.size()) {
      hist_bounds_.emplace_back(bounds);
    }
    return id;
  }

  /// The calling thread's shard, created (or recycled from the free list)
  /// on first use and folded into `retired_` on thread exit.
  Shard& local_shard() {
    thread_local ShardOwner owner(*this);
    return *owner.shard;
  }

  Snapshot take_snapshot() {
    Snapshot out;
    std::lock_guard<std::mutex> lock(mu_);
    Retired total = retired_;
    for (const Shard* s : live_) merge_shard(*s, total);
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      out.counters[counter_names_[i]] = total.counters[i];
    }
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
      out.gauges[gauge_names_[i]] = total.gauges[i];
    }
    for (std::size_t i = 0; i < hist_names_.size(); ++i) {
      Snapshot::Hist h;
      h.bounds = hist_bounds_[i];
      h.buckets.assign(total.hist_buckets[i],
                       total.hist_buckets[i] + h.bounds.size() + 1);
      h.count = total.hist_count[i];
      h.sum = total.hist_sum[i];
      out.histograms[hist_names_[i]] = std::move(h);
    }
    return out;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    retired_ = Retired{};
    for (Shard* s : live_) s->zero();
  }

 private:
  struct ShardOwner {
    explicit ShardOwner(Registry& r) : registry(r), shard(r.acquire_shard()) {}
    ~ShardOwner() { registry.release_shard(shard); }
    Registry& registry;
    Shard* shard;
  };

  static std::uint32_t register_named(std::vector<std::string>& names,
                                      const char* name, std::size_t cap,
                                      const char* overflow_msg) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<std::uint32_t>(i);
    }
    if (names.size() >= cap) throw std::length_error(overflow_msg);
    names.emplace_back(name);
    return static_cast<std::uint32_t>(names.size() - 1);
  }

  static void merge_shard(const Shard& s, Retired& into) {
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      into.counters[i] += s.counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxGauges; ++i) {
      const auto v = s.gauges[i].load(std::memory_order_relaxed);
      if (v > into.gauges[i]) into.gauges[i] = v;
    }
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      for (std::size_t b = 0; b < kMaxBuckets; ++b) {
        into.hist_buckets[i][b] +=
            s.hist_buckets[i][b].load(std::memory_order_relaxed);
      }
      into.hist_count[i] += s.hist_count[i].load(std::memory_order_relaxed);
      into.hist_sum[i] += s.hist_sum[i].load(std::memory_order_relaxed);
    }
  }

  Shard* acquire_shard() {
    std::lock_guard<std::mutex> lock(mu_);
    Shard* s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
      s->zero();
    } else {
      all_.push_back(std::make_unique<Shard>());
      s = all_.back().get();
    }
    live_.push_back(s);
    return s;
  }

  void release_shard(Shard* s) {
    std::lock_guard<std::mutex> lock(mu_);
    merge_shard(*s, retired_);
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i] == s) {
        live_[i] = live_.back();
        live_.pop_back();
        break;
      }
    }
    free_.push_back(s);
  }

  std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::vector<std::vector<std::uint64_t>> hist_bounds_;
  std::vector<std::unique_ptr<Shard>> all_;  ///< owns every shard ever made
  std::vector<Shard*> live_;                 ///< shards with an owner thread
  std::vector<Shard*> free_;                 ///< folded, ready for reuse
  Retired retired_;
};

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

Counter::Counter(const char* name)
    : id_(Registry::instance().register_counter(name)) {}

void Counter::add(std::uint64_t n) noexcept {
  if (!enabled()) return;
  Registry::instance().local_shard().counters[id_].fetch_add(
      n, std::memory_order_relaxed);
}

Gauge::Gauge(const char* name)
    : id_(Registry::instance().register_gauge(name)) {}

void Gauge::set_max(std::uint64_t v) noexcept {
  if (!enabled()) return;
  auto& slot = Registry::instance().local_shard().gauges[id_];
  // Thread-owned slot: the only concurrent access is a snapshot read, so
  // load + store (no CAS loop) is enough.
  if (v > slot.load(std::memory_order_relaxed)) {
    slot.store(v, std::memory_order_relaxed);
  }
}

Histogram::Histogram(const char* name,
                     std::initializer_list<std::uint64_t> bounds)
    : id_(Registry::instance().register_histogram(name, bounds)),
      bounds_(bounds) {}

void Histogram::record(std::uint64_t v) noexcept {
  if (!enabled()) return;
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  auto& shard = Registry::instance().local_shard();
  shard.hist_buckets[id_][b].fetch_add(1, std::memory_order_relaxed);
  shard.hist_count[id_].fetch_add(1, std::memory_order_relaxed);
  shard.hist_sum[id_].fetch_add(v, std::memory_order_relaxed);
}

Snapshot snapshot() { return Registry::instance().take_snapshot(); }

void write_snapshot_json(std::ostream& os) {
  const Snapshot s = snapshot();
  os << "{\n  \"counters\": {";
  std::size_t i = 0;
  for (const auto& [name, v] : s.counters) {
    os << (i++ ? ",\n    " : "\n    ") << '"' << name << "\": " << v;
  }
  os << (i ? "\n  " : "") << "},\n  \"gauges\": {";
  i = 0;
  for (const auto& [name, v] : s.gauges) {
    os << (i++ ? ",\n    " : "\n    ") << '"' << name << "\": " << v;
  }
  os << (i ? "\n  " : "") << "},\n  \"histograms\": {";
  i = 0;
  for (const auto& [name, h] : s.histograms) {
    os << (i++ ? ",\n    " : "\n    ") << '"' << name << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      os << (b ? ", " : "") << h.bounds[b];
    }
    os << "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b ? ", " : "") << h.buckets[b];
    }
    os << "], \"count\": " << h.count << ", \"sum\": " << h.sum << "}";
  }
  os << (i ? "\n  " : "") << "}\n}";
}

std::string snapshot_json() {
  std::ostringstream os;
  write_snapshot_json(os);
  return os.str();
}

void reset_for_test() { Registry::instance().reset(); }

}  // namespace hm::telemetry
