#include "telemetry/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace hm::telemetry {

namespace {

struct Event {
  const char* name;
  long long start_ns;
  long long dur_ns;
};

/// One thread's event buffer. The owning thread appends under the buffer's
/// own mutex (uncontended in steady state — only trace_stop ever takes it
/// from another thread); shared_ptr keeps the buffer alive for the final
/// drain even after its thread exits.
struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> events;
  int tid = 0;
};

struct TraceState {
  std::mutex mu;  ///< guards path/bufs/next_tid and start/stop transitions
  std::atomic<bool> armed{false};
  std::chrono::steady_clock::time_point base;
  std::string path;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  int next_tid = 1;
};

TraceState& state() {
  static TraceState* s = new TraceState;  // leaked: see Registry in telemetry.cpp
  return *s;
}

ThreadBuf& local_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    b->tid = s.next_tid++;
    s.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

long long now_ns(const TraceState& s) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - s.base)
      .count();
}

/// HM_TRACE_FILE arms a process-lifetime trace written at exit.
[[maybe_unused]] const bool g_env_armed = [] {
  const char* path = std::getenv("HM_TRACE_FILE");
  if (path != nullptr && path[0] != '\0') {
    trace_start(path);
    std::atexit([] { trace_stop(); });
  }
  return true;
}();

}  // namespace

bool tracing() noexcept {
  // Acquire pairs with the release store in trace_start so a thread that
  // observes armed also observes the new time base.
  return state().armed.load(std::memory_order_acquire);
}

bool trace_start(const std::string& path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.armed.load(std::memory_order_relaxed)) return false;
  s.path = path;
  s.base = std::chrono::steady_clock::now();
  for (auto& b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->events.clear();
  }
  s.armed.store(true, std::memory_order_release);
  return true;
}

bool trace_stop() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.armed.load(std::memory_order_relaxed)) return false;
  s.armed.store(false, std::memory_order_release);

  std::ofstream os(s.path);
  if (!os) {
    std::fprintf(stderr, "telemetry: cannot write trace file %s\n",
                 s.path.c_str());
    return false;
  }
  os << "{\"traceEvents\": [";
  bool first = true;
  char num[32];
  for (auto& b : s.bufs) {
    std::lock_guard<std::mutex> bl(b->mu);
    for (const Event& e : b->events) {
      os << (first ? "\n" : ",\n");
      first = false;
      os << "{\"name\": \"" << e.name << "\", \"cat\": \"hm\", \"ph\": \"X\"";
      std::snprintf(num, sizeof(num), "%.3f",
                    static_cast<double>(e.start_ns) / 1000.0);
      os << ", \"ts\": " << num;
      std::snprintf(num, sizeof(num), "%.3f",
                    static_cast<double>(e.dur_ns) / 1000.0);
      os << ", \"dur\": " << num << ", \"pid\": 1, \"tid\": " << b->tid
         << "}";
    }
    b->events.clear();
  }
  os << "\n]}\n";
  return true;
}

Span::Span(const char* name) noexcept : name_(name), start_ns_(-1) {
  if (!tracing()) return;
  start_ns_ = now_ns(state());
}

Span::~Span() {
  if (start_ns_ < 0 || !tracing()) return;
  TraceState& s = state();
  const long long end = now_ns(s);
  ThreadBuf& b = local_buf();
  std::lock_guard<std::mutex> lock(b.mu);
  b.events.push_back({name_, start_ns_, end - start_ns_});
}

}  // namespace hm::telemetry
