// Scoped-span tracer emitting Chrome trace_event JSON.
//
// Spans are RAII: construct at scope entry, the destructor records one
// complete "X" (duration) event into the calling thread's buffer. The
// resulting file loads directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing:
//
//   {"traceEvents": [
//     {"name": "sweep.job", "cat": "hm", "ph": "X",
//      "ts": 1234.5, "dur": 87.2, "pid": 1, "tid": 2},
//     ...
//   ]}
//
// Events are appended when a span *ends*, so file order is end-time
// order, not start-time order; viewers (and tools/check_trace.py) sort by
// ts per tid. Timestamps are microseconds on the steady clock, zeroed at
// trace_start(). tid is a small stable per-thread index assigned on the
// thread's first traced span, not the OS thread id.
//
// Same non-perturbation contract as the metrics registry: a span never
// touches simulation state, and when tracing is off the entire cost is
// one relaxed atomic load in the constructor.
//
// Arming: trace_start(path)/trace_stop() programmatically (the examples'
// --trace flag), or HM_TRACE_FILE=<path> in the environment, which arms
// at startup and writes the file at process exit.
#pragma once

#include <string>

namespace hm::telemetry {

/// True while a trace is being recorded.
[[nodiscard]] bool tracing() noexcept;

/// Starts recording into an in-memory buffer destined for `path`.
/// Returns false (and changes nothing) when a trace is already active.
bool trace_start(const std::string& path);

/// Stops recording and writes the JSON file. Returns false when no trace
/// was active or the file could not be written. Threads may still be
/// inside spans; their events simply miss the file (complete events are
/// only recorded at span end).
bool trace_stop();

/// RAII span: one complete "X" event from construction to destruction.
/// `name` must outlive the span (string literals at the call sites).
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  long long start_ns_;  ///< -1 = tracing was off at construction
};

}  // namespace hm::telemetry
