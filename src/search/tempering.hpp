// Population-based parallel-tempering search over chiplet arrangements.
//
// Where search/search.hpp runs ONE chain (hill climb or a cooling anneal),
// TemperingEngine runs K replicas of the same mutation/evaluate pipeline
// concurrently, each at a temperature of a geometric ladder:
//
//     T_k = max(T_hot * ladder_ratio^(K-1-k), min_temperature)
//
// With adapt_ladder (the default) the spacing self-tunes: after each
// exchange sweep the ratio moves toward the value that keeps adjacent
// replicas swapping at target_exchange_acceptance, deterministically,
// from the sweep's own (deterministic) acceptance count.
//
// with replica K-1 the hottest (T_hot = |baseline| * initial_temperature,
// floored) and replica 0 the coldest, near-greedy one. Hot replicas cross
// score barriers the cold ones cannot; every `exchange_interval` steps
// adjacent replicas attempt a configuration swap with the classical
// Metropolis exchange rule
//
//     p = min(1, exp((1/T_cold - 1/T_hot) * (S_hot - S_cold)))
//
// so improvements found at high temperature percolate down to the cold
// replica while the population keeps exploring. Alternating even/odd pair
// sweeps let a configuration traverse the whole ladder.
//
// Everything heavy is reused from the earlier PRs: candidate evaluations
// fan out across one explore::ThreadPool (per-worker SimulationArena
// networks, sharded explore::ResultCache memoization), and each candidate's
// routing tables are delta-built from its replica's current context via
// noc::TopologyContext::rebuild_from.
//
// Determinism contract (mirrors SearchEngine, pinned by test_tempering):
// replica k's proposal/acceptance RNG for step s is seeded
// derive_seed(derive_seed(seed, kReplicaSalt + k), s); the exchange RNG for
// (step s, pair p) is seeded
// derive_seed(derive_seed(derive_seed(seed, kExchangeSalt), s), p). All
// proposals, acceptances and swaps run on the calling thread in fixed
// order; candidates are evaluated with the same fixed simulator seed. The
// trace is byte-identical at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "explore/result_cache.hpp"
#include "explore/thread_pool.hpp"
#include "noc/traffic.hpp"
#include "search/mutation.hpp"
#include "search/objective.hpp"

namespace hm::search {

struct TemperingProgress;

struct TemperingOptions {
  /// Replica count K (>= 1; K == 1 is a single fixed-temperature chain).
  std::size_t replicas = 4;

  /// Mutation steps; every step advances all K replicas by one
  /// propose/evaluate/accept round (one parallel batch of
  /// K * candidates_per_step evaluations).
  std::size_t steps = 48;

  /// Candidates per replica per step. Like SearchOptions, fixed by the
  /// options — never the thread count — so traces are thread-independent.
  std::size_t candidates_per_step = 2;

  /// Proposal redraws per candidate slot before the slot is skipped.
  std::size_t max_proposal_tries = 8;

  /// Steps between replica-exchange sweeps (>= 1). Pair parity alternates
  /// between sweeps (0-1/2-3/... then 1-2/3-4/...).
  std::size_t exchange_interval = 4;

  /// Hottest-replica temperature as a fraction of |baseline score| (same
  /// design-independent semantics as SearchOptions::initial_temperature),
  /// the geometric ladder ratio between adjacent replicas (in (0, 1]), and
  /// the absolute floor every rung is clamped to (> 0; keeps the ladder
  /// meaningful when the baseline score is zero or near zero).
  double initial_temperature = 0.08;
  double ladder_ratio = 0.5;
  double min_temperature = 1e-9;

  /// Adapt `ladder_ratio` between exchange sweeps: after each sweep the
  /// ratio moves (deterministically, from the sweep's own acceptance count)
  /// toward the rate that keeps adjacent replicas exchanging at
  /// `target_exchange_acceptance` — too few swaps pushes the ratio toward 1
  /// (rungs closer together), too many spreads the ladder out. The hottest
  /// rung stays fixed; only the spacing adapts. Adaptation is a pure
  /// function of the (deterministic) exchange outcomes, so traces remain
  /// byte-identical at any thread count.
  bool adapt_ladder = true;
  double target_exchange_acceptance = 0.3;

  ObjectiveSpec objective;  ///< see search/objective.hpp

  /// Worker concurrency for candidate evaluation; 0 = hardware threads.
  unsigned threads = 0;
  bool use_cache = true;
  /// Directory of a persistent store::ResultStore attached under the
  /// result cache (empty = memory only); see SearchOptions::cache_dir.
  std::string cache_dir;

  /// Base of every RNG derivation (see the determinism contract above).
  unsigned long long seed = 42;

  /// Evaluation pipeline configuration; measurement-selection flags are
  /// overridden to match `objective`.
  core::EvaluationParams params;
  noc::TrafficSpec traffic;

  /// Called after every completed step (all replicas advanced, exchanges
  /// done), on the calling thread.
  std::function<void(const TemperingProgress&)> on_progress;
};

/// One (step, replica) row of the tempering trace. Deterministic fields
/// only — scores, the selected mutation, exchange outcomes and the
/// post-step state identity; never wall-clock or cache statistics.
struct TemperingStep {
  std::size_t step = 0;
  std::size_t replica = 0;
  double temperature = 0.0;  ///< this replica's (floored) rung at this step
  MutationKind kind = MutationKind::kNone;  ///< selected candidate's op
  std::size_t candidates = 0;  ///< legal proposals evaluated this step
  bool accepted = false;       ///< candidate became the replica's state
  bool improved_best = false;  ///< candidate beat the global best-so-far
  double candidate_score = 0.0;  ///< best candidate of the step (0 if none)
  double current_score = 0.0;    ///< post-step (post-exchange) replica state
  double best_score = 0.0;       ///< post-step global best (monotone)
  bool exchanged = false;        ///< replica swapped configurations
  int exchange_partner = -1;     ///< partner replica index (-1 = none)
  std::uint64_t graph_digest = 0;  ///< post-step replica graph digest
  std::size_t edge_count = 0;      ///< post-step replica link count
};

struct TemperingProgress {
  std::size_t step = 0;   ///< steps completed
  std::size_t total = 0;  ///< total steps
  double best_score = 0.0;
  /// The completed step's rows (one per replica), coldest first.
  const TemperingStep* first = nullptr;
  std::size_t replicas = 0;
};

struct TemperingResult {
  explicit TemperingResult(core::Arrangement initial)
      : best(std::move(initial)) {}

  core::Arrangement best;  ///< best-scoring arrangement across all replicas
  core::EvaluationResult best_result{};
  double best_score = 0.0;
  core::EvaluationResult baseline_result{};  ///< the start arrangement
  double baseline_score = 0.0;

  /// Temperature ladder in effect when the run ended, coldest first (after
  /// flooring). With adapt_ladder the spacing may differ from the initial
  /// ladder_ratio; trace rows carry the rung each step actually used.
  std::vector<double> temperatures;
  /// Ladder ratio in effect when the run ended (== options.ladder_ratio
  /// unless adapt_ladder moved it).
  double final_ladder_ratio = 0.0;
  /// Final per-replica current scores, coldest first.
  std::vector<double> replica_scores;

  /// Steps-major, replica-minor: trace[s * K + k] is step s, replica k.
  std::vector<TemperingStep> trace;

  std::size_t exchange_attempts = 0;
  std::size_t exchange_accepts = 0;

  // Observability; timing-dependent under concurrency, excluded from the
  // trace exports.
  std::size_t evaluations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t incremental_rebuilds = 0;
  double wall_seconds = 0.0;
};

/// Runs parallel tempering from a start arrangement (all replicas start
/// there; they decorrelate through their per-replica RNG streams).
class TemperingEngine {
 public:
  TemperingEngine();
  explicit TemperingEngine(TemperingOptions options);

  /// Searches from `start` (>= 2 chiplets, legal per
  /// is_legal_arrangement). Re-entrant per engine: repeated runs share the
  /// result cache.
  [[nodiscard]] TemperingResult run(const core::Arrangement& start);

  [[nodiscard]] explore::ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] unsigned thread_count() const noexcept {
    return pool_.thread_count();
  }

 private:
  TemperingOptions options_;
  explore::ThreadPool pool_;
  explore::ResultCache cache_;
};

/// Trace serialization, mirroring search/search.hpp: deterministic fields
/// only, shortest-round-trip doubles.
void write_trace_csv(std::ostream& os, const std::vector<TemperingStep>& trace);
[[nodiscard]] std::string trace_to_csv(const std::vector<TemperingStep>& trace);
void write_trace_json(std::ostream& os,
                      const std::vector<TemperingStep>& trace);
[[nodiscard]] std::string trace_to_json(
    const std::vector<TemperingStep>& trace);

/// Writes the trace to `path`: ".json" gets JSON, everything else CSV.
/// Throws std::runtime_error when the file cannot be opened.
void export_trace_file(const std::string& path,
                       const std::vector<TemperingStep>& trace);

}  // namespace hm::search
