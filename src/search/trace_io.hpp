// Shared trace-serialization plumbing for the search engines' CSV/JSON
// exporters (search/search.cpp, search/tempering.cpp): the
// shortest-round-trip double formatter that makes traces byte-comparable
// across thread counts, and the open-or-throw / ".json"-suffix dispatch of
// the export_trace_file entry points. Internal to src/search.
#pragma once

#include <charconv>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace hm::search::detail {

/// Shortest round-trip decimal form of a double (exact, locale-free) —
/// the same formatting contract as the sweep exports.
inline std::string fmt(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, ptr);
}

/// Writes `trace` to `path` via the matching writer: ".json" gets
/// `json_writer`, everything else `csv_writer`. Throws std::runtime_error
/// when the file cannot be opened.
template <typename Trace>
void export_trace(const std::string& path, const Trace& trace,
                  void (*csv_writer)(std::ostream&, const Trace&),
                  void (*json_writer)(std::ostream&, const Trace&)) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("export_trace_file: cannot open " + path);
  }
  if (path.size() >= 5 && path.substr(path.size() - 5) == ".json") {
    json_writer(os, trace);
  } else {
    csv_writer(os, trace);
  }
}

}  // namespace hm::search::detail
