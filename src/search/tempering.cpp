#include "search/tempering.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "explore/hash.hpp"
#include "noc/rng.hpp"
#include "noc/topology.hpp"
#include "search/trace_io.hpp"
#include "store/result_store.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace hm::search {

using detail::fmt;

namespace {

// Salt tags keeping the per-replica proposal streams and the per-(step,
// pair) exchange streams disjoint under noc::derive_seed.
constexpr std::uint64_t kReplicaSalt = 0x5245504c49434100ULL;   // "REPLICA"
constexpr std::uint64_t kExchangeSalt = 0x45584348414e4745ULL;  // "EXCHANGE"

/// One replica of the population: its configuration, shared topology,
/// score and cached evaluation.
struct Replica {
  core::Arrangement arrangement;
  std::shared_ptr<const noc::TopologyContext> ctx;
  core::EvaluationResult eval;
  double score = 0.0;
};

}  // namespace

TemperingEngine::TemperingEngine() : TemperingEngine(TemperingOptions{}) {}

TemperingEngine::TemperingEngine(TemperingOptions options)
    : options_(std::move(options)), pool_(options_.threads) {
  if (!options_.cache_dir.empty()) {
    cache_.attach_store(store::ResultStore::open(options_.cache_dir));
  }
}

TemperingResult TemperingEngine::run(const core::Arrangement& start) {
  if (start.chiplet_count() < 2) {
    throw std::invalid_argument(
        "TemperingEngine: search needs >= 2 chiplets (nothing to simulate)");
  }
  if (!is_legal_arrangement(start)) {
    throw std::invalid_argument(
        "TemperingEngine: start arrangement is not a legal search state");
  }
  if (options_.replicas == 0) {
    throw std::invalid_argument("TemperingEngine: replicas must be >= 1");
  }
  if (options_.candidates_per_step == 0) {
    throw std::invalid_argument(
        "TemperingEngine: candidates_per_step must be >= 1");
  }
  if (options_.exchange_interval == 0) {
    throw std::invalid_argument(
        "TemperingEngine: exchange_interval must be >= 1");
  }
  if (!(options_.ladder_ratio > 0.0) || options_.ladder_ratio > 1.0) {
    throw std::invalid_argument(
        "TemperingEngine: ladder_ratio must be in (0, 1]");
  }
  if (!(options_.min_temperature > 0.0)) {
    throw std::invalid_argument(
        "TemperingEngine: min_temperature must be > 0");
  }
  if (options_.adapt_ladder &&
      (!(options_.target_exchange_acceptance > 0.0) ||
       options_.target_exchange_acceptance >= 1.0)) {
    throw std::invalid_argument(
        "TemperingEngine: target_exchange_acceptance must be in (0, 1)");
  }
  options_.objective.validate();

  // Only the half of the pipeline the objective scores is simulated.
  core::EvaluationParams params = options_.params;
  apply_measurement_selection(options_.objective, params);

  const std::uint64_t param_key = explore::hash_combine(
      explore::hash_combine(explore::hash_analytic_params(params),
                            explore::hash_simulation_params(params)),
      explore::hash_traffic(options_.traffic));
  const auto evaluate_cached =
      [&](const core::Arrangement& arr,
          std::shared_ptr<const noc::TopologyContext> ctx) {
        const std::uint64_t key = explore::hash_combine(
            explore::hash_arrangement(arr), param_key);
        const auto compute = [&] {
          return core::evaluate(arr, params, options_.traffic, nullptr,
                                std::move(ctx));
        };
        return options_.use_cache ? cache_.get_or_compute(key, compute)
                                  : compute();
      };

  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t cache_hits0 = cache_.hits();
  const std::uint64_t incr0 = noc::RoutingTables::incremental_builds();

  const std::size_t K = options_.replicas;
  TemperingResult result{start};

  // Baseline: every replica starts from the same evaluated configuration.
  auto start_ctx = noc::TopologyContext::acquire(start.graph());
  const core::EvaluationResult baseline = evaluate_cached(start, start_ctx);
  const Replica seed_replica{start, std::move(start_ctx), baseline,
                             score(options_.objective, baseline)};

  result.baseline_result = seed_replica.eval;
  result.baseline_score = seed_replica.score;
  result.best_result = seed_replica.eval;
  result.best_score = seed_replica.score;
  result.evaluations = 1;

  // Geometric ladder, coldest first; every rung floored so a zero/near-zero
  // baseline cannot collapse the population into K hill climbers. The
  // hottest rung is pinned; adapt_ladder only re-spaces the rungs below it.
  const double hot = std::max(
      std::abs(result.baseline_score) * options_.initial_temperature,
      options_.min_temperature);
  double ladder_ratio = options_.ladder_ratio;
  result.temperatures.resize(K);
  const auto rebuild_ladder = [&] {
    for (std::size_t k = 0; k < K; ++k) {
      result.temperatures[k] = std::max(
          hot * std::pow(ladder_ratio, static_cast<double>(K - 1 - k)),
          options_.min_temperature);
    }
  };
  rebuild_ladder();

  std::vector<Replica> replicas(K, seed_replica);
  result.trace.reserve(options_.steps * K);

  static telemetry::Counter steps_run("tempering.steps");
  static telemetry::Counter exchange_sweeps("tempering.exchange_sweeps");
  for (std::size_t step = 0; step < options_.steps; ++step) {
    telemetry::Span step_span("tempering.step");
    steps_run.add();
    // Phase 1: propose. All nondeterminism of replica k's step flows from
    // rng[k], on this thread; the flattened batch layout is a pure function
    // of the options and the proposals.
    std::vector<noc::Rng> rng;
    rng.reserve(K);
    std::vector<std::vector<Candidate>> cands(K);
    for (std::size_t k = 0; k < K; ++k) {
      rng.emplace_back(noc::derive_seed(
          noc::derive_seed(options_.seed, kReplicaSalt + k), step));
      cands[k].reserve(options_.candidates_per_step);
      for (std::size_t slot = 0; slot < options_.candidates_per_step;
           ++slot) {
        for (std::size_t t = 0; t < options_.max_proposal_tries; ++t) {
          if (auto c = propose_mutation(replicas[k].arrangement, rng[k])) {
            cands[k].push_back(std::move(*c));
            break;
          }
        }
      }
    }

    // Phase 2: evaluate every replica's batch in one parallel fan-out.
    // Each job delta-builds (or adopts from the intern cache) its
    // candidate's topology from its replica's current context and scores
    // it with the same fixed simulator seed — a pure function of the
    // candidate, so scores are identical at any thread count.
    struct Slot {
      std::size_t replica;
      std::size_t index;
    };
    std::vector<Slot> slots;
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t i = 0; i < cands[k].size(); ++i) {
        slots.push_back({k, i});
      }
    }
    std::vector<double> scores(slots.size(), 0.0);
    std::vector<core::EvaluationResult> evals(slots.size());
    std::vector<std::shared_ptr<const noc::TopologyContext>> contexts(
        slots.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(slots.size());
    for (std::size_t j = 0; j < slots.size(); ++j) {
      jobs.push_back([&, j] {
        const auto& [k, i] = slots[j];
        contexts[j] =
            noc::TopologyContext::rebuild_from(replicas[k].ctx,
                                               cands[k][i].edit);
        evals[j] = evaluate_cached(cands[k][i].arrangement, contexts[j]);
        scores[j] = score(options_.objective, evals[j]);
      });
    }
    pool_.run_batch(jobs);
    result.evaluations += slots.size();

    // Phase 3: per-replica Metropolis acceptance at the replica's fixed
    // rung, coldest first, on this thread.
    const std::size_t row0 = result.trace.size();
    std::size_t slot_base = 0;
    for (std::size_t k = 0; k < K; ++k) {
      TemperingStep rec;
      rec.step = step;
      rec.replica = k;
      rec.temperature = result.temperatures[k];
      rec.candidates = cands[k].size();

      if (!cands[k].empty()) {
        // Deterministic selection: best score, ties to the lowest index.
        std::size_t pick = 0;
        for (std::size_t i = 1; i < cands[k].size(); ++i) {
          if (scores[slot_base + i] > scores[slot_base + pick]) pick = i;
        }
        const double cand_score = scores[slot_base + pick];
        rec.kind = cands[k][pick].kind;
        rec.candidate_score = cand_score;

        bool accept = cand_score > replicas[k].score;
        if (!accept) {
          const double p = std::exp((cand_score - replicas[k].score) /
                                    rec.temperature);
          accept = rng[k].uniform() < p;
        }
        if (accept) {
          replicas[k].arrangement = cands[k][pick].arrangement;
          replicas[k].ctx = contexts[slot_base + pick];
          replicas[k].eval = evals[slot_base + pick];
          replicas[k].score = cand_score;
          rec.accepted = true;
          if (cand_score > result.best_score) {
            result.best = cands[k][pick].arrangement;
            result.best_result = evals[slot_base + pick];
            result.best_score = cand_score;
            rec.improved_best = true;
          }
        }
      }
      slot_base += cands[k].size();
      result.trace.push_back(rec);
    }

    // Phase 4: replica exchange every exchange_interval steps. Alternating
    // pair parity (0-1/2-3/..., then 1-2/3-4/...) lets a configuration
    // traverse the whole ladder; each pair's RNG is seeded per (step, pair)
    // so the swap pattern is independent of thread count and of the
    // replica streams.
    if ((step + 1) % options_.exchange_interval == 0 && K > 1) {
      telemetry::Span exchange_span("tempering.exchange");
      exchange_sweeps.add();
      const std::size_t round = (step + 1) / options_.exchange_interval;
      const std::size_t parity = (round - 1) % 2;
      const std::uint64_t sweep_base = noc::derive_seed(
          noc::derive_seed(options_.seed, kExchangeSalt), step);
      std::size_t pair = 0;
      std::size_t sweep_attempts = 0;
      std::size_t sweep_accepts = 0;
      for (std::size_t k = parity; k + 1 < K; k += 2, ++pair) {
        noc::Rng xrng(noc::derive_seed(sweep_base, pair));
        ++result.exchange_attempts;
        ++sweep_attempts;
        // Maximization form of the exchange rule: with energies E = -S,
        // p = min(1, exp((1/T_cold - 1/T_hot) * (S_hot - S_cold))) — an
        // improvement moving down-ladder is always accepted.
        const double delta =
            (1.0 / result.temperatures[k] - 1.0 / result.temperatures[k + 1]) *
            (replicas[k + 1].score - replicas[k].score);
        if (delta >= 0.0 || xrng.uniform() < std::exp(delta)) {
          std::swap(replicas[k], replicas[k + 1]);
          ++result.exchange_accepts;
          ++sweep_accepts;
          result.trace[row0 + k].exchanged = true;
          result.trace[row0 + k].exchange_partner = static_cast<int>(k + 1);
          result.trace[row0 + k + 1].exchanged = true;
          result.trace[row0 + k + 1].exchange_partner = static_cast<int>(k);
        }
      }

      // Ladder adaptation (the ROADMAP carry-over): nudge the geometric
      // ratio toward the target per-pair exchange acceptance. Too few swaps
      // means adjacent rungs are too far apart -> ratio up (closer rungs);
      // too many means the ladder is wastefully dense -> ratio down
      // (broader temperature range). Multiplicative-in-log update, clamped
      // so the ladder never degenerates; a pure function of the sweep's
      // deterministic accept count, so traces stay thread-independent.
      if (options_.adapt_ladder && sweep_attempts > 0) {
        const double acceptance = static_cast<double>(sweep_accepts) /
                                  static_cast<double>(sweep_attempts);
        constexpr double kAdaptGain = 0.2;
        ladder_ratio = std::clamp(
            ladder_ratio * std::exp(kAdaptGain *
                                    (options_.target_exchange_acceptance -
                                     acceptance)),
            0.05, 0.98);
        rebuild_ladder();
      }
    }

    // Phase 5: finalize the step's rows with the post-exchange state.
    for (std::size_t k = 0; k < K; ++k) {
      TemperingStep& rec = result.trace[row0 + k];
      rec.current_score = replicas[k].score;
      rec.best_score = result.best_score;
      rec.graph_digest = noc::graph_digest(replicas[k].arrangement.graph());
      rec.edge_count = replicas[k].arrangement.graph().edge_count();
    }

    if (options_.on_progress) {
      TemperingProgress progress;
      progress.step = step + 1;
      progress.total = options_.steps;
      progress.best_score = result.best_score;
      progress.first = &result.trace[row0];
      progress.replicas = K;
      options_.on_progress(progress);
    }
  }

  result.final_ladder_ratio = ladder_ratio;
  result.replica_scores.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    result.replica_scores[k] = replicas[k].score;
  }
  result.cache_hits = cache_.hits() - cache_hits0;
  result.incremental_rebuilds =
      noc::RoutingTables::incremental_builds() - incr0;
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  return result;
}

void write_trace_csv(std::ostream& os,
                     const std::vector<TemperingStep>& trace) {
  os << "step,replica,temperature,mutation,candidates,accepted,"
        "improved_best,candidate_score,current_score,best_score,exchanged,"
        "exchange_partner,graph_digest,edge_count\n";
  for (const auto& s : trace) {
    os << s.step << ',' << s.replica << ',' << fmt(s.temperature) << ','
       << to_string(s.kind) << ',' << s.candidates << ','
       << (s.accepted ? 1 : 0) << ',' << (s.improved_best ? 1 : 0) << ','
       << fmt(s.candidate_score) << ',' << fmt(s.current_score) << ','
       << fmt(s.best_score) << ',' << (s.exchanged ? 1 : 0) << ','
       << s.exchange_partner << ',' << s.graph_digest << ',' << s.edge_count
       << '\n';
  }
}

std::string trace_to_csv(const std::vector<TemperingStep>& trace) {
  std::ostringstream os;
  write_trace_csv(os, trace);
  return os.str();
}

void write_trace_json(std::ostream& os,
                      const std::vector<TemperingStep>& trace) {
  os << "[\n";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& s = trace[i];
    os << "  {\"step\": " << s.step << ", \"replica\": " << s.replica
       << ", \"temperature\": " << fmt(s.temperature)
       << ", \"mutation\": \"" << to_string(s.kind)
       << "\", \"candidates\": " << s.candidates
       << ", \"accepted\": " << (s.accepted ? "true" : "false")
       << ", \"improved_best\": " << (s.improved_best ? "true" : "false")
       << ", \"candidate_score\": " << fmt(s.candidate_score)
       << ", \"current_score\": " << fmt(s.current_score)
       << ", \"best_score\": " << fmt(s.best_score)
       << ", \"exchanged\": " << (s.exchanged ? "true" : "false")
       << ", \"exchange_partner\": " << s.exchange_partner
       << ", \"graph_digest\": " << s.graph_digest
       << ", \"edge_count\": " << s.edge_count << "}"
       << (i + 1 < trace.size() ? ",\n" : "\n");
  }
  os << "]\n";
}

std::string trace_to_json(const std::vector<TemperingStep>& trace) {
  std::ostringstream os;
  write_trace_json(os, trace);
  return os.str();
}

void export_trace_file(const std::string& path,
                       const std::vector<TemperingStep>& trace) {
  detail::export_trace(path, trace, &write_trace_csv, &write_trace_json);
}

}  // namespace hm::search
