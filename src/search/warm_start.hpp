// Warm-started sweeps: run a parallel-tempering search, feed its best
// arrangement into a SweepEngine as an extra sweep point, and run the
// sweep — so one CSV/JSON export compares searched arrangements against
// the stock families under identical per-job seeding. This is the glue the
// ROADMAP's "warm-starting sweeps from searched arrangements" item asks
// for; examples/design_sweep --search drives it end to end.
#pragma once

#include <string>
#include <vector>

#include "core/arrangement.hpp"
#include "explore/sweep.hpp"
#include "search/tempering.hpp"

namespace hm::search {

/// Everything a warm-started sweep produces: the tempering run itself and
/// the combined sweep records (stock families first, searched points
/// after, in registration order).
struct WarmStartedSweep {
  TemperingResult tempering;
  std::vector<explore::SweepRecord> records;
};

/// Runs parallel tempering from `start` under `topt`, registers the best
/// arrangement with `engine` (labelled `label`; empty derives
/// "searched:<name>" from the start arrangement), then runs `spec` through
/// the engine. The searched point inherits the sweep's param/traffic grids
/// and deterministic seeding, so records stay byte-identical at any thread
/// count. Reuses the engine's cache across repeated calls.
[[nodiscard]] WarmStartedSweep search_then_sweep(
    const core::Arrangement& start, const TemperingOptions& topt,
    explore::SweepEngine& engine, const explore::SweepSpec& spec,
    std::string label = "");

}  // namespace hm::search
