#include "search/objective.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cost/cost_model.hpp"

namespace hm::search {

std::string to_string(Objective o) {
  switch (o) {
    case Objective::kSaturationThroughput: return "throughput";
    case Objective::kZeroLoadLatency: return "latency";
    case Objective::kThroughputPerLinkArea:
      return "throughput_per_link_area";
  }
  return "unknown";
}

void ObjectiveSpec::validate() const {
  if (!std::isfinite(area_weight) || area_weight < 0.0) {
    throw std::invalid_argument(
        "ObjectiveSpec: area_weight must be finite and >= 0");
  }
}

double score(const ObjectiveSpec& spec, const core::EvaluationResult& r) {
  if (spec.custom) return spec.custom(r);
  switch (spec.kind) {
    case Objective::kSaturationThroughput:
      return r.saturation_throughput_bps;
    case Objective::kZeroLoadLatency:
      return -r.zero_load_latency_cycles;
    case Objective::kThroughputPerLinkArea: {
      // Degenerate designs (no links / zero sector area) get a tiny
      // denominator floor instead of an infinite score, so a malformed
      // candidate can never hijack the search.
      const double area =
          cost::d2d_link_area_mm2(r.link_area_mm2, r.link_count);
      return r.saturation_throughput_bps /
             std::pow(std::max(area, 1e-9), spec.area_weight);
    }
  }
  return 0.0;
}

void apply_measurement_selection(const ObjectiveSpec& spec,
                                 core::EvaluationParams& params) {
  if (spec.custom) {
    params.measure_latency = true;
    params.measure_saturation = true;
    return;
  }
  params.measure_latency = spec.kind == Objective::kZeroLoadLatency;
  params.measure_saturation = spec.kind != Objective::kZeroLoadLatency;
}

}  // namespace hm::search
