#include "search/objective.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cost/cost_model.hpp"

namespace hm::search {

std::string to_string(Objective o) {
  switch (o) {
    case Objective::kSaturationThroughput: return "throughput";
    case Objective::kZeroLoadLatency: return "latency";
    case Objective::kThroughputPerLinkArea:
      return "throughput_per_link_area";
    case Objective::kRobustThroughput: return "robust_throughput";
  }
  return "unknown";
}

void ObjectiveSpec::validate() const {
  if (!std::isfinite(area_weight) || area_weight < 0.0) {
    throw std::invalid_argument(
        "ObjectiveSpec: area_weight must be finite and >= 0");
  }
}

double score(const ObjectiveSpec& spec, const core::EvaluationResult& r) {
  if (spec.custom) return spec.custom(r);
  switch (spec.kind) {
    case Objective::kSaturationThroughput:
      return r.saturation_throughput_bps;
    case Objective::kZeroLoadLatency:
      return -r.zero_load_latency_cycles;
    case Objective::kThroughputPerLinkArea: {
      // Degenerate designs (no links / zero sector area) get a tiny
      // denominator floor instead of an infinite score, so a malformed
      // candidate can never hijack the search.
      const double area =
          cost::d2d_link_area_mm2(r.link_area_mm2, r.link_count);
      return r.saturation_throughput_bps /
             std::pow(std::max(area, 1e-9), spec.area_weight);
    }
    case Objective::kRobustThroughput:
      if (r.fault_plans_run == 0) {
        throw std::invalid_argument(
            "ObjectiveSpec: robust_throughput needs a fault scenario "
            "(EvaluationParams::faults) enabled on the evaluation");
      }
      return r.fault_robust_throughput_bps;
  }
  return 0.0;
}

void apply_measurement_selection(const ObjectiveSpec& spec,
                                 core::EvaluationParams& params) {
  if (spec.custom) {
    params.measure_latency = true;
    params.measure_saturation = true;
    return;
  }
  params.measure_latency = spec.kind == Objective::kZeroLoadLatency;
  params.measure_saturation =
      spec.kind != Objective::kZeroLoadLatency &&
      spec.kind != Objective::kRobustThroughput;
  if (spec.kind == Objective::kRobustThroughput &&
      !params.faults.enabled()) {
    // A robust search with no scenario configured gets a sensible default:
    // two independent single-link kills per candidate.
    params.faults.single_link_kills = 2;
  }
}

}  // namespace hm::search
