#include "search/search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "explore/hash.hpp"
#include "noc/rng.hpp"
#include "noc/topology.hpp"
#include "search/trace_io.hpp"
#include "store/result_store.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace hm::search {

using detail::fmt;

SearchEngine::SearchEngine() : SearchEngine(SearchOptions{}) {}

SearchEngine::SearchEngine(SearchOptions options)
    : options_(std::move(options)), pool_(options_.threads) {
  if (!options_.cache_dir.empty()) {
    cache_.attach_store(store::ResultStore::open(options_.cache_dir));
  }
}

double SearchEngine::score_of(const core::EvaluationResult& r) const {
  return score(options_.objective, r);
}

SearchResult SearchEngine::run(const core::Arrangement& start) {
  if (start.chiplet_count() < 2) {
    throw std::invalid_argument(
        "SearchEngine: search needs >= 2 chiplets (nothing to simulate)");
  }
  if (!is_legal_arrangement(start)) {
    throw std::invalid_argument(
        "SearchEngine: start arrangement is not a legal search state");
  }
  if (options_.candidates_per_step == 0) {
    throw std::invalid_argument(
        "SearchEngine: candidates_per_step must be >= 1");
  }
  if (!(options_.cooling > 0.0) || options_.cooling > 1.0) {
    throw std::invalid_argument("SearchEngine: cooling must be in (0, 1]");
  }
  if (!(options_.min_temperature > 0.0)) {
    throw std::invalid_argument("SearchEngine: min_temperature must be > 0");
  }
  options_.objective.validate();

  // Only the half of the pipeline the objective scores is simulated.
  core::EvaluationParams params = options_.params;
  apply_measurement_selection(options_.objective, params);

  const std::uint64_t param_key = explore::hash_combine(
      explore::hash_combine(explore::hash_analytic_params(params),
                            explore::hash_simulation_params(params)),
      explore::hash_traffic(options_.traffic));
  const auto evaluate_cached =
      [&](const core::Arrangement& arr,
          std::shared_ptr<const noc::TopologyContext> ctx) {
        const std::uint64_t key = explore::hash_combine(
            explore::hash_arrangement(arr), param_key);
        const auto compute = [&] {
          return core::evaluate(arr, params, options_.traffic, nullptr,
                                std::move(ctx));
        };
        return options_.use_cache ? cache_.get_or_compute(key, compute)
                                  : compute();
      };

  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t cache_hits0 = cache_.hits();
  const std::uint64_t incr0 = noc::RoutingTables::incremental_builds();

  auto current_ctx = noc::TopologyContext::acquire(start.graph());
  core::Arrangement current = start;
  const core::EvaluationResult baseline =
      evaluate_cached(current, current_ctx);
  double current_score = score_of(baseline);

  SearchResult result{start};
  result.baseline_result = baseline;
  result.baseline_score = current_score;
  result.best_result = baseline;
  result.best_score = current_score;
  result.evaluations = 1;
  result.trace.reserve(options_.steps);

  // Temperature in absolute score units, scaled off the baseline magnitude
  // so the initial_temperature knob transfers across designs/objectives.
  // A zero/near-zero baseline would scale the temperature to ~0 and
  // silently turn annealing into hill climbing; min_temperature floors the
  // effective per-step temperature instead (visible in the trace).
  const double temp_scale =
      std::abs(result.baseline_score) * options_.initial_temperature;

  static telemetry::Counter steps_run("search.steps");
  for (std::size_t step = 0; step < options_.steps; ++step) {
    telemetry::Span step_span("search.step");
    steps_run.add();
    // All nondeterminism of a step flows from this seed, on this thread.
    noc::Rng rng(noc::derive_seed(options_.seed, step));

    std::vector<Candidate> cands;
    cands.reserve(options_.candidates_per_step);
    for (std::size_t slot = 0; slot < options_.candidates_per_step; ++slot) {
      for (std::size_t t = 0; t < options_.max_proposal_tries; ++t) {
        if (auto c = propose_mutation(current, rng)) {
          cands.push_back(std::move(*c));
          break;
        }
      }
    }

    SearchStep rec;
    rec.step = step;
    rec.candidates = cands.size();
    if (options_.schedule == Schedule::kAnneal) {
      const double cooled =
          temp_scale * std::pow(options_.cooling, static_cast<double>(step));
      rec.temperature = std::max(cooled, options_.min_temperature);
      rec.temperature_floored = cooled < options_.min_temperature;
    }

    if (!cands.empty()) {
      // Evaluate the batch in parallel. Each job delta-builds (or adopts
      // from the intern cache) its candidate's topology and scores it with
      // the same fixed simulator seed — a pure function of the candidate,
      // so the scores are identical at any thread count.
      std::vector<double> scores(cands.size(), 0.0);
      std::vector<core::EvaluationResult> evals(cands.size());
      std::vector<std::shared_ptr<const noc::TopologyContext>> contexts(
          cands.size());
      std::vector<std::function<void()>> jobs;
      jobs.reserve(cands.size());
      for (std::size_t i = 0; i < cands.size(); ++i) {
        jobs.push_back([&, i] {
          contexts[i] =
              noc::TopologyContext::rebuild_from(current_ctx, cands[i].edit);
          evals[i] = evaluate_cached(cands[i].arrangement, contexts[i]);
          scores[i] = score_of(evals[i]);
        });
      }
      pool_.run_batch(jobs);
      result.evaluations += cands.size();

      // Deterministic selection: best score, ties to the lowest index.
      std::size_t pick = 0;
      for (std::size_t i = 1; i < cands.size(); ++i) {
        if (scores[i] > scores[pick]) pick = i;
      }
      rec.kind = cands[pick].kind;
      rec.candidate_score = scores[pick];

      bool accept = scores[pick] > current_score;
      if (!accept && options_.schedule == Schedule::kAnneal &&
          rec.temperature > 0.0) {
        const double p =
            std::exp((scores[pick] - current_score) / rec.temperature);
        accept = rng.uniform() < p;
      }
      if (accept) {
        current = cands[pick].arrangement;
        current_ctx = contexts[pick];
        current_score = scores[pick];
        rec.accepted = true;
        if (scores[pick] > result.best_score) {
          result.best = cands[pick].arrangement;
          result.best_result = evals[pick];
          result.best_score = scores[pick];
          rec.improved_best = true;
        }
      }
    }

    rec.current_score = current_score;
    rec.best_score = result.best_score;
    rec.graph_digest = noc::graph_digest(current.graph());
    rec.edge_count = current.graph().edge_count();
    result.trace.push_back(rec);

    if (options_.on_progress) {
      SearchProgress progress;
      progress.step = step + 1;
      progress.total = options_.steps;
      progress.best_score = result.best_score;
      progress.last = &result.trace.back();
      options_.on_progress(progress);
    }
  }

  result.cache_hits = cache_.hits() - cache_hits0;
  result.incremental_rebuilds =
      noc::RoutingTables::incremental_builds() - incr0;
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  return result;
}

void write_trace_csv(std::ostream& os, const std::vector<SearchStep>& trace) {
  os << "step,mutation,candidates,accepted,improved_best,candidate_score,"
        "current_score,best_score,temperature,temperature_floored,"
        "graph_digest,edge_count\n";
  for (const auto& s : trace) {
    os << s.step << ',' << to_string(s.kind) << ',' << s.candidates << ','
       << (s.accepted ? 1 : 0) << ',' << (s.improved_best ? 1 : 0) << ','
       << fmt(s.candidate_score) << ',' << fmt(s.current_score) << ','
       << fmt(s.best_score) << ',' << fmt(s.temperature) << ','
       << (s.temperature_floored ? 1 : 0) << ',' << s.graph_digest << ','
       << s.edge_count << '\n';
  }
}

std::string trace_to_csv(const std::vector<SearchStep>& trace) {
  std::ostringstream os;
  write_trace_csv(os, trace);
  return os.str();
}

void write_trace_json(std::ostream& os, const std::vector<SearchStep>& trace) {
  os << "[\n";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& s = trace[i];
    os << "  {\"step\": " << s.step << ", \"mutation\": \"" << to_string(s.kind)
       << "\", \"candidates\": " << s.candidates
       << ", \"accepted\": " << (s.accepted ? "true" : "false")
       << ", \"improved_best\": " << (s.improved_best ? "true" : "false")
       << ", \"candidate_score\": " << fmt(s.candidate_score)
       << ", \"current_score\": " << fmt(s.current_score)
       << ", \"best_score\": " << fmt(s.best_score)
       << ", \"temperature\": " << fmt(s.temperature)
       << ", \"temperature_floored\": "
       << (s.temperature_floored ? "true" : "false")
       << ", \"graph_digest\": " << s.graph_digest
       << ", \"edge_count\": " << s.edge_count << "}"
       << (i + 1 < trace.size() ? ",\n" : "\n");
  }
  os << "]\n";
}

std::string trace_to_json(const std::vector<SearchStep>& trace) {
  std::ostringstream os;
  write_trace_json(os, trace);
  return os.str();
}

void export_trace_file(const std::string& path,
                       const std::vector<SearchStep>& trace) {
  detail::export_trace(path, trace, &write_trace_csv, &write_trace_json);
}

}  // namespace hm::search
