#include "search/warm_start.hpp"

#include <utility>

namespace hm::search {

WarmStartedSweep search_then_sweep(const core::Arrangement& start,
                                   const TemperingOptions& topt,
                                   explore::SweepEngine& engine,
                                   const explore::SweepSpec& spec,
                                   std::string label) {
  TemperingEngine tempering(topt);
  WarmStartedSweep out{tempering.run(start), {}};
  if (label.empty()) label = "searched:" + start.name();
  engine.add_arrangement(out.tempering.best, std::move(label));
  out.records = engine.run(spec);
  return out;
}

}  // namespace hm::search
