// Pluggable scoring for the arrangement-search engines (single-chain
// local search in search/search.hpp, parallel tempering in
// search/tempering.hpp). A score is a scalar the search *maximizes*,
// derived from one Sec. VI EvaluationResult.
//
// Besides the two single-axis objectives of PR 4 (saturation throughput,
// negated zero-load latency), this adds the multi-objective score the
// ROADMAP calls for: throughput per mm² of D2D link area. Adding links to
// an arrangement buys bandwidth but spends bump-sector silicon on both
// endpoint chiplets (cost::d2d_link_area_mm2); the `area_weight` knob
// scalarizes the trade —
//
//     score = saturation_throughput_bps / (total_link_area_mm2 ^ w)
//
// with w = 0 collapsing to pure throughput and w = 1 the full
// throughput-per-mm² normalization. For a fixed throughput the score is
// strictly decreasing in link count whenever w > 0 (pinned by test_search).
#pragma once

#include <functional>
#include <string>

#include "core/evaluator.hpp"

namespace hm::search {

/// What the search maximizes.
enum class Objective {
  kSaturationThroughput,   ///< saturation_throughput_bps (Fig. 7b axis)
  kZeroLoadLatency,        ///< negated zero_load_latency_cycles (Fig. 7a axis)
  kThroughputPerLinkArea,  ///< saturation throughput / D2D link area^w
  /// Worst-case delivered bandwidth over the fault scenario's plan set
  /// (fault_robust_throughput_bps): rewards arrangements that keep moving
  /// traffic with links or routers dead. Requires params.faults to be
  /// enabled on the evaluation (score() throws otherwise — a silent zero
  /// would make every candidate tie).
  kRobustThroughput,
};

/// Short names, e.g. "throughput", "latency", "throughput_per_link_area".
[[nodiscard]] std::string to_string(Objective o);

/// Fully specified scoring rule. Implicitly constructible from a bare
/// Objective so existing `options.objective = Objective::k...` call sites
/// keep working.
struct ObjectiveSpec {
  Objective kind = Objective::kSaturationThroughput;

  /// Scalarization knob of kThroughputPerLinkArea (see file comment);
  /// ignored by the other kinds. Must be finite and >= 0.
  double area_weight = 1.0;

  /// When set, overrides `kind` entirely: the score of a design is
  /// custom(result). The function must be pure (same result -> same score)
  /// — the engines evaluate candidates in parallel and cache by content
  /// hash, so a stateful score would break both determinism and reuse.
  std::function<double(const core::EvaluationResult&)> custom;

  ObjectiveSpec() = default;
  ObjectiveSpec(Objective k) : kind(k) {}  // NOLINT(google-explicit-*)

  /// Throws std::invalid_argument on a malformed spec (bad area_weight).
  void validate() const;
};

/// The scalar the search maximizes for `r` under `spec`.
[[nodiscard]] double score(const ObjectiveSpec& spec,
                           const core::EvaluationResult& r);

/// Restricts `params`' measurement-selection flags to the half of the
/// pipeline `spec` actually reads (a custom score may read anything, so it
/// keeps both halves on).
void apply_measurement_selection(const ObjectiveSpec& spec,
                                 core::EvaluationParams& params);

}  // namespace hm::search
