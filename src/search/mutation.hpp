// Mutation operators over chiplet arrangements (the move set of the
// local-search optimizer in search/search.hpp).
//
// A search state is an ordinary core::Arrangement: lattice coordinates per
// chiplet plus an adjacency graph. The paper's factories emit the *full*
// induced adjacency (every boundary-sharing pair is linked); mutations
// explore the wider space of (site occupancy, link subset) states:
//
//   * kRelocate — move one chiplet to a free lattice site on the occupied
//     frontier; its links are re-derived as the full induced adjacency at
//     the new site (links elsewhere, including earlier toggles, persist).
//   * kSwap    — exchange the lattice sites of two chiplets (a vertex
//     relabeling of the graph; physically meaningful under non-uniform
//     traffic, where endpoint ids are tied to chiplet ids).
//   * kAddEdge / kRemoveEdge — toggle one D2D link. An edge is *legal* only
//     between chiplets whose sites share a boundary under the family's
//     lattice rule (grid: 4-neighborhood; brickwall/honeycomb: 2 same-row +
//     4 parity-offset row neighbours; HexaMesh: the 6 axial directions).
//
// Every candidate is legal by construction: coordinates stay unique, every
// edge connects boundary-sharing sites, and the graph stays connected
// (required by the routing layer); proposals that would violate any of
// these return nullopt and the caller redraws. Each mutation also reports
// the noc::GraphEdit taking the old graph to the new one, which is what
// lets the search engine rebuild routing tables incrementally
// (TopologyContext::rebuild_from) instead of from scratch.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/arrangement.hpp"
#include "noc/rng.hpp"
#include "noc/routing.hpp"

namespace hm::search {

enum class MutationKind {
  kRelocate,
  kSwap,
  kAddEdge,
  kRemoveEdge,
  kNone,  ///< trace marker for a step where no legal proposal was found
};

/// Short names, e.g. "relocate", "add_edge".
[[nodiscard]] std::string to_string(MutationKind k);

/// The lattice neighbour sites of `c` under `type`'s adjacency rule
/// (candidates; occupied or not). Honeycomb shares the brickwall lattice.
[[nodiscard]] std::vector<core::LatticeCoord> lattice_neighbors(
    core::ArrangementType type, core::LatticeCoord c);

/// True iff sites `a` and `b` share a boundary under `type`'s rule — the
/// legality condition for a D2D link between their occupants.
[[nodiscard]] bool sites_adjacent(core::ArrangementType type,
                                  core::LatticeCoord a, core::LatticeCoord b);

/// A proposed successor state: the mutated arrangement plus the graph edit
/// taking the current graph to the candidate's (empty for pure relabelings
/// only when the relabeling is the identity, which proposals never emit).
struct Candidate {
  core::Arrangement arrangement;
  MutationKind kind = MutationKind::kNone;
  noc::GraphEdit edit;
};

/// Structural legality of an arrangement as a search state: unique
/// coordinates, every edge between boundary-sharing sites, connected graph,
/// graph vertex count == chiplet count. The factories' outputs and every
/// Candidate satisfy this; exposed for tests and for validating custom
/// start states.
[[nodiscard]] bool is_legal_arrangement(const core::Arrangement& arr);

/// Proposes one mutation of the given kind. Returns nullopt when the drawn
/// move is illegal (e.g. the drawn edge is a bridge) or the kind has no
/// legal move at all (e.g. kAddEdge on a fully linked arrangement); the
/// caller redraws, so RNG consumption stays deterministic either way.
[[nodiscard]] std::optional<Candidate> propose_mutation(
    const core::Arrangement& cur, MutationKind kind, noc::Rng& rng);

/// Proposes a mutation of a uniformly drawn kind (relocate / swap /
/// add_edge / remove_edge).
[[nodiscard]] std::optional<Candidate> propose_mutation(
    const core::Arrangement& cur, noc::Rng& rng);

}  // namespace hm::search
