#include "search/mutation.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <set>
#include <utility>

#include "core/lattice_detail.hpp"
#include "graph/algorithms.hpp"

namespace hm::search {

namespace {

using core::Arrangement;
using core::ArrangementType;
using core::LatticeCoord;
using graph::NodeId;

using Site = std::pair<int, int>;

Site site_of(LatticeCoord c) { return {c.a, c.b}; }

/// Canonical (min, max) form of an undirected edge.
std::pair<NodeId, NodeId> canon(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

std::map<Site, NodeId> occupancy(const Arrangement& arr) {
  std::map<Site, NodeId> occ;
  const auto& coords = arr.coords();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    occ[site_of(coords[i])] = static_cast<NodeId>(i);
  }
  return occ;
}

std::optional<Candidate> propose_relocate(const Arrangement& cur,
                                          noc::Rng& rng) {
  const std::size_t n = cur.chiplet_count();
  if (n < 2) return std::nullopt;
  const auto x = static_cast<NodeId>(rng.uniform_int(n));

  // Target sites: the free frontier (unoccupied sites sharing a boundary
  // with at least one chiplet), enumerated in deterministic sorted order.
  const auto occ = occupancy(cur);
  std::set<Site> frontier;
  for (const LatticeCoord& c : cur.coords()) {
    for (const LatticeCoord& nb : lattice_neighbors(cur.type(), c)) {
      if (occ.find(site_of(nb)) == occ.end()) frontier.insert(site_of(nb));
    }
  }
  if (frontier.empty()) return std::nullopt;
  const std::vector<Site> targets(frontier.begin(), frontier.end());
  const Site target = targets[rng.uniform_int(targets.size())];

  noc::GraphEdit edit;
  for (const NodeId w : cur.graph().neighbors(x)) {
    edit.removed.push_back(canon(x, w));
  }
  const LatticeCoord target_coord{target.first, target.second};
  for (const LatticeCoord& nb : lattice_neighbors(cur.type(), target_coord)) {
    const auto it = occ.find(site_of(nb));
    if (it != occ.end() && it->second != x) {
      edit.added.push_back(canon(x, it->second));
    }
  }
  if (edit.added.empty()) return std::nullopt;  // x would be stranded

  graph::Graph g = noc::apply_edit(cur.graph(), edit);
  if (!graph::is_connected(g)) return std::nullopt;
  std::vector<LatticeCoord> coords = cur.coords();
  coords[x] = target_coord;
  return Candidate{
      Arrangement(cur.type(), core::RegularityClass::kIrregular,
                  std::move(coords), std::move(g)),
      MutationKind::kRelocate, std::move(edit)};
}

std::optional<Candidate> propose_swap(const Arrangement& cur, noc::Rng& rng) {
  const std::size_t n = cur.chiplet_count();
  if (n < 2) return std::nullopt;
  const auto i = static_cast<NodeId>(rng.uniform_int(n));
  const auto j = static_cast<NodeId>(rng.uniform_int(n));
  if (i == j) return std::nullopt;

  // Relabel the two vertices through the transposition (i j): a chiplet
  // takes over its partner's site *and* that site's current link set, so
  // earlier edge toggles survive the swap.
  const auto relabel = [&](NodeId v) { return v == i ? j : (v == j ? i : v); };
  std::set<std::pair<NodeId, NodeId>> old_edges;
  std::set<std::pair<NodeId, NodeId>> new_edges;
  for (const NodeId v : {i, j}) {
    for (const NodeId w : cur.graph().neighbors(v)) {
      old_edges.insert(canon(v, w));
      new_edges.insert(canon(relabel(v), relabel(w)));
    }
  }
  noc::GraphEdit edit;
  for (const auto& e : old_edges) {
    if (new_edges.find(e) == new_edges.end()) edit.removed.push_back(e);
  }
  for (const auto& e : new_edges) {
    if (old_edges.find(e) == old_edges.end()) edit.added.push_back(e);
  }
  if (edit.empty()) return std::nullopt;  // N(i) and N(j) coincide; no-op

  graph::Graph g = noc::apply_edit(cur.graph(), edit);
  std::vector<LatticeCoord> coords = cur.coords();
  std::swap(coords[i], coords[j]);
  return Candidate{
      Arrangement(cur.type(), core::RegularityClass::kIrregular,
                  std::move(coords), std::move(g)),
      MutationKind::kSwap, std::move(edit)};
}

std::optional<Candidate> propose_add_edge(const Arrangement& cur,
                                          noc::Rng& rng) {
  // Legal absent edges: boundary-sharing occupied site pairs not yet
  // linked. Enumerated deterministically via the sorted occupancy map.
  const auto occ = occupancy(cur);
  std::vector<std::pair<NodeId, NodeId>> absent;
  for (const auto& [site, u] : occ) {
    const LatticeCoord c{site.first, site.second};
    for (const LatticeCoord& nb : lattice_neighbors(cur.type(), c)) {
      const auto it = occ.find(site_of(nb));
      if (it == occ.end()) continue;
      const NodeId v = it->second;
      if (u < v && !cur.graph().has_edge(u, v)) absent.push_back(canon(u, v));
    }
  }
  std::sort(absent.begin(), absent.end());
  absent.erase(std::unique(absent.begin(), absent.end()), absent.end());
  if (absent.empty()) return std::nullopt;

  noc::GraphEdit edit;
  edit.added.push_back(absent[rng.uniform_int(absent.size())]);
  graph::Graph g = noc::apply_edit(cur.graph(), edit);
  return Candidate{
      Arrangement(cur.type(), core::RegularityClass::kIrregular,
                  cur.coords(), std::move(g)),
      MutationKind::kAddEdge, std::move(edit)};
}

std::optional<Candidate> propose_remove_edge(const Arrangement& cur,
                                             noc::Rng& rng) {
  // Only non-bridge edges are removable (the routing layer requires a
  // connected graph). One low-link pass finds every bridge, so the draw
  // succeeds whenever any legal removal exists.
  const auto edges = cur.graph().edges();          // sorted
  const auto bridge_edges = graph::bridges(cur.graph());  // sorted
  std::vector<std::pair<NodeId, NodeId>> removable;
  removable.reserve(edges.size() - bridge_edges.size());
  std::set_difference(edges.begin(), edges.end(), bridge_edges.begin(),
                      bridge_edges.end(), std::back_inserter(removable));
  if (removable.empty()) return std::nullopt;

  noc::GraphEdit edit;
  edit.removed.push_back(removable[rng.uniform_int(removable.size())]);
  graph::Graph g = noc::apply_edit(cur.graph(), edit);
  return Candidate{
      Arrangement(cur.type(), core::RegularityClass::kIrregular,
                  cur.coords(), std::move(g)),
      MutationKind::kRemoveEdge, std::move(edit)};
}

}  // namespace

std::string to_string(MutationKind k) {
  switch (k) {
    case MutationKind::kRelocate: return "relocate";
    case MutationKind::kSwap: return "swap";
    case MutationKind::kAddEdge: return "add_edge";
    case MutationKind::kRemoveEdge: return "remove_edge";
    case MutationKind::kNone: return "none";
  }
  return "?";
}

std::vector<core::LatticeCoord> lattice_neighbors(core::ArrangementType type,
                                                  core::LatticeCoord c) {
  switch (type) {
    case ArrangementType::kGrid: return core::detail::grid_neighbors(c);
    case ArrangementType::kBrickwall:
    case ArrangementType::kHoneycomb:  // same lattice, hexagonal chiplets
      return core::detail::brickwall_neighbors(c);
    case ArrangementType::kHexaMesh: return core::detail::hex_neighbors(c);
  }
  return {};
}

bool sites_adjacent(core::ArrangementType type, core::LatticeCoord a,
                    core::LatticeCoord b) {
  for (const LatticeCoord& nb : lattice_neighbors(type, a)) {
    if (nb == b) return true;
  }
  return false;
}

bool is_legal_arrangement(const core::Arrangement& arr) {
  if (arr.graph().node_count() != arr.chiplet_count()) return false;
  std::set<Site> sites;
  for (const LatticeCoord& c : arr.coords()) {
    if (!sites.insert(site_of(c)).second) return false;  // duplicate site
  }
  const auto& coords = arr.coords();
  for (const auto& [u, v] : arr.graph().edges()) {
    if (!sites_adjacent(arr.type(), coords[u], coords[v])) return false;
  }
  return graph::is_connected(arr.graph());
}

std::optional<Candidate> propose_mutation(const core::Arrangement& cur,
                                          MutationKind kind, noc::Rng& rng) {
  switch (kind) {
    case MutationKind::kRelocate: return propose_relocate(cur, rng);
    case MutationKind::kSwap: return propose_swap(cur, rng);
    case MutationKind::kAddEdge: return propose_add_edge(cur, rng);
    case MutationKind::kRemoveEdge: return propose_remove_edge(cur, rng);
    case MutationKind::kNone: return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Candidate> propose_mutation(const core::Arrangement& cur,
                                          noc::Rng& rng) {
  constexpr MutationKind kKinds[] = {
      MutationKind::kRelocate, MutationKind::kSwap, MutationKind::kAddEdge,
      MutationKind::kRemoveEdge};
  return propose_mutation(cur, kKinds[rng.uniform_int(4)], rng);
}

}  // namespace hm::search
