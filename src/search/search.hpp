// Local-search arrangement optimizer (hill climbing + simulated annealing).
//
// The sweep engine (explore/sweep.hpp) *enumerates* the three fixed
// arrangement families; SearchEngine *searches* the wider space of
// (site occupancy, link subset) states around a start arrangement using the
// mutation operators of search/mutation.hpp, scoring every candidate
// through the same Sec. VI evaluate() pipeline the sweeps use. The pieces
// the earlier PRs built are reused wholesale:
//
//   * candidate evaluations fan out across an explore::ThreadPool, each
//     probe chain leasing its network from the per-worker SimulationArena;
//   * results are memoized in a sharded explore::ResultCache keyed by the
//     stable (arrangement, params, traffic) content hashes, so revisited
//     states cost a lookup instead of a simulation;
//   * every candidate's routing tables come from
//     noc::TopologyContext::rebuild_from(current, edit) — the incremental
//     rebuild path this PR adds — because a mutation step only perturbs one
//     chiplet or one link, leaving most of the O(N^2 * deg) tables intact.
//
// Determinism contract (mirrors SweepEngine): each step's proposal and
// acceptance RNG is seeded with noc::derive_seed(options.seed, step); every
// candidate is evaluated with the same fixed simulator seed (comparing two
// designs under identical traffic realizations); proposals and the
// accept/reject decision run on the calling thread. The resulting search
// trace is bit-identical at any thread count — pinned by test_search.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "explore/result_cache.hpp"
#include "explore/thread_pool.hpp"
#include "noc/traffic.hpp"
#include "search/mutation.hpp"
#include "search/objective.hpp"

namespace hm::search {

/// Acceptance schedules.
enum class Schedule {
  kHillClimb,  ///< accept strictly improving candidates only
  kAnneal,     ///< Metropolis acceptance with geometric cooling
};

struct SearchProgress;

struct SearchOptions {
  Schedule schedule = Schedule::kHillClimb;
  ObjectiveSpec objective;  ///< see search/objective.hpp; defaults to
                            ///< saturation throughput

  /// Mutation steps; each step proposes and evaluates a batch of
  /// candidates and accepts at most one.
  std::size_t steps = 48;

  /// Candidates per step, evaluated as one parallel batch. Fixed by the
  /// options — never by the thread count — so traces are thread-count
  /// independent.
  std::size_t candidates_per_step = 4;

  /// Proposal redraws per candidate slot before the slot is skipped.
  std::size_t max_proposal_tries = 8;

  /// Annealing temperature, as a fraction of the baseline score magnitude
  /// (so the knob is design-independent), and its per-step decay.
  double initial_temperature = 0.02;
  double cooling = 0.92;

  /// Absolute floor on the per-step annealing temperature, in score units.
  /// The relative scaling above degenerates silently when the baseline
  /// score is zero or near zero (temperature ~ 0 turns kAnneal into hill
  /// climbing); the floor keeps Metropolis acceptance alive regardless of
  /// the baseline magnitude. Must be > 0. The effective (post-floor)
  /// temperature is recorded per step in SearchStep::temperature, with
  /// SearchStep::temperature_floored flagging steps where the floor bound.
  double min_temperature = 1e-9;

  /// Worker concurrency for candidate evaluation (see explore::ThreadPool);
  /// 0 = hardware threads.
  unsigned threads = 0;
  bool use_cache = true;
  /// Directory of a persistent store::ResultStore attached under the
  /// result cache (empty = memory only). Re-searching a neighbourhood with
  /// a warm store serves revisited states from disk instead of simulating.
  std::string cache_dir;

  /// Base of the per-step RNG derivation (noc::derive_seed(seed, step)).
  unsigned long long seed = 42;

  /// Evaluation pipeline configuration. The measurement-selection flags are
  /// overridden to match `objective` (only the needed half runs).
  core::EvaluationParams params;
  noc::TrafficSpec traffic;

  /// Called after every completed step, on the calling thread.
  std::function<void(const SearchProgress&)> on_progress;
};

/// One step of the search trace. Only deterministic fields: scores, the
/// selected mutation and the post-step state identity — never wall-clock
/// times or cache/rebuild statistics (those are timing-dependent under
/// concurrency and live in SearchResult instead).
struct SearchStep {
  std::size_t step = 0;
  MutationKind kind = MutationKind::kNone;  ///< selected candidate's op
  std::size_t candidates = 0;   ///< legal proposals evaluated this step
  bool accepted = false;        ///< candidate became the current state
  bool improved_best = false;   ///< candidate beat the best-so-far
  double candidate_score = 0.0; ///< best candidate of the step (0 if none)
  double current_score = 0.0;   ///< post-step current state
  double best_score = 0.0;      ///< post-step best-so-far (monotone)
  double temperature = 0.0;     ///< effective annealing temperature after
                                ///< the min_temperature floor (0 = hill
                                ///< climb)
  bool temperature_floored = false;  ///< floor bound this step's temperature
  std::uint64_t graph_digest = 0;  ///< post-step current graph digest
  std::size_t edge_count = 0;      ///< post-step current link count
};

struct SearchProgress {
  std::size_t step = 0;   ///< steps completed
  std::size_t total = 0;  ///< total steps
  double best_score = 0.0;
  const SearchStep* last = nullptr;
};

struct SearchResult {
  /// Seeded with the start arrangement; `best` is replaced whenever a
  /// candidate beats the best-so-far score.
  explicit SearchResult(core::Arrangement initial) : best(std::move(initial)) {}

  core::Arrangement best;  ///< best-scoring arrangement encountered
  core::EvaluationResult best_result{};
  double best_score = 0.0;
  core::EvaluationResult baseline_result{};  ///< the start arrangement
  double baseline_score = 0.0;
  std::vector<SearchStep> trace;  ///< one entry per step, deterministic

  // Observability; timing-dependent under concurrency, excluded from the
  // trace exports.
  std::size_t evaluations = 0;       ///< simulated or cache-served scores
  std::uint64_t cache_hits = 0;      ///< ResultCache hits during this run
  std::uint64_t incremental_rebuilds = 0;  ///< delta-built routing tables
  double wall_seconds = 0.0;
};

/// Runs the configured local search from a start arrangement.
class SearchEngine {
 public:
  SearchEngine();
  explicit SearchEngine(SearchOptions options);

  /// Searches from `start` (>= 2 chiplets, legal per
  /// is_legal_arrangement). Re-entrant per engine: repeated runs share the
  /// result cache, so re-searching a neighbourhood is mostly lookups.
  [[nodiscard]] SearchResult run(const core::Arrangement& start);

  [[nodiscard]] explore::ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] unsigned thread_count() const noexcept {
    return pool_.thread_count();
  }

 private:
  [[nodiscard]] double score_of(const core::EvaluationResult& r) const;

  SearchOptions options_;
  explore::ThreadPool pool_;
  explore::ResultCache cache_;
};

/// Trace serialization, mirroring explore/export.hpp: deterministic fields
/// only, shortest-round-trip doubles, so traces compare byte-for-byte
/// across thread counts.
void write_trace_csv(std::ostream& os, const std::vector<SearchStep>& trace);
[[nodiscard]] std::string trace_to_csv(const std::vector<SearchStep>& trace);
void write_trace_json(std::ostream& os, const std::vector<SearchStep>& trace);
[[nodiscard]] std::string trace_to_json(const std::vector<SearchStep>& trace);

/// Writes the trace to `path`: ".json" gets JSON, everything else CSV.
/// Throws std::runtime_error when the file cannot be opened.
void export_trace_file(const std::string& path,
                       const std::vector<SearchStep>& trace);

}  // namespace hm::search
