// Micro-validation of the cycle-accurate NoC: exact hand-computed zero-load
// latencies on tiny topologies, credit backpressure, conservation and
// invariants, plus config validation.
#include <gtest/gtest.h>

#include "core/grid.hpp"
#include "graph/graph.hpp"
#include "noc/network.hpp"
#include "noc/simulator.hpp"

namespace {

using hm::graph::Graph;
using hm::noc::Cycle;
using hm::noc::Network;
using hm::noc::Packet;
using hm::noc::Rng;
using hm::noc::SimConfig;

Graph two_chiplets() {
  Graph g(2);
  g.add_edge(0, 1);
  return g;
}

/// Steps the network until `cycle` (exclusive).
void run_until(Network& net, Cycle& now, Cycle cycle) {
  while (now < cycle) {
    net.step(now);
    ++now;
  }
}

SimConfig default_config() {
  SimConfig cfg;  // paper defaults: 3-cycle router, 27-cycle link, 8 VCs
  return cfg;
}

TEST(ConfigValidation, RejectsBadValues) {
  SimConfig cfg;
  cfg.vcs = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.buffer_depth = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.link_latency = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig{};
  cfg.packet_length = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(SimConfig{}.validate());
}

TEST(NetworkBuild, CountsMatchGraph) {
  const auto arr = hm::core::make_grid(9);
  Network net(arr.graph(), default_config());
  EXPECT_EQ(net.num_routers(), 9u);
  EXPECT_EQ(net.num_endpoints(), 18u);
}

// --- Exact zero-load latencies ------------------------------------------------
//
// Timeline for a single flit, single hop (all queues empty):
//   cycle 0: endpoint injects          -> arrives at router at 1
//   cycle 4: head ready (1 + router_latency) -> departs onto D2D link
//   cycle 31: arrives at remote router (4 + 27)
//   cycle 34: ready -> departs onto ejection link
//   cycle 35: ejected. Latency = 35 - 0.

TEST(ZeroLoad, SingleFlitOneHopExactLatency) {
  SimConfig cfg = default_config();
  cfg.packet_length = 1;
  Network net(two_chiplets(), cfg);
  net.endpoint(0).set_measurement_window(0, 1000);

  Packet p;
  p.id = 1;
  p.src_endpoint = 0;
  p.dst_endpoint = 2;  // first endpoint of chiplet 1
  p.length = 1;
  p.gen_time = 0;
  ASSERT_TRUE(net.offer_packet(0, p));

  Cycle now = 0;
  run_until(net, now, 100);
  ASSERT_EQ(net.endpoint(2).sink().packets_ejected, 1u);
  // Latency is recorded at the destination endpoint.
  net.endpoint(2).set_measurement_window(0, 1000);
  EXPECT_EQ(net.total_flits_ejected(), 1u);
}

TEST(ZeroLoad, LatencyValueOneHop) {
  SimConfig cfg = default_config();
  cfg.packet_length = 1;
  Network net(two_chiplets(), cfg);
  net.endpoint(2).set_measurement_window(0, 1000);

  Packet p;
  p.id = 1;
  p.src_endpoint = 0;
  p.dst_endpoint = 2;
  p.length = 1;
  p.gen_time = 0;
  ASSERT_TRUE(net.offer_packet(0, p));

  Cycle now = 0;
  run_until(net, now, 100);
  ASSERT_EQ(net.endpoint(2).sink().tagged_packets, 1u);
  const Cycle expected = 1 + cfg.router_latency      // source router
                         + cfg.link_latency          // D2D link
                         + cfg.router_latency        // remote router
                         + cfg.ejection_link_latency;  // 1+3+27+3+1 = 35
  EXPECT_EQ(net.endpoint(2).sink().tagged_latency_sum,
            static_cast<std::uint64_t>(expected));
}

TEST(ZeroLoad, LatencyValueLocalDelivery) {
  // Same chiplet, endpoint 0 -> endpoint 1: 1 (inject) + 3 (router) + 1
  // (ejection) = 5 cycles.
  SimConfig cfg = default_config();
  cfg.packet_length = 1;
  Network net(two_chiplets(), cfg);
  net.endpoint(1).set_measurement_window(0, 1000);

  Packet p;
  p.id = 7;
  p.src_endpoint = 0;
  p.dst_endpoint = 1;
  p.length = 1;
  p.gen_time = 0;
  ASSERT_TRUE(net.offer_packet(0, p));

  Cycle now = 0;
  run_until(net, now, 50);
  ASSERT_EQ(net.endpoint(1).sink().tagged_packets, 1u);
  EXPECT_EQ(net.endpoint(1).sink().tagged_latency_sum, 5u);
}

TEST(ZeroLoad, MultiFlitPacketAddsSerialization) {
  // A 4-flit packet's tail trails the head by 3 cycles everywhere.
  SimConfig cfg = default_config();
  cfg.packet_length = 4;
  Network net(two_chiplets(), cfg);
  net.endpoint(2).set_measurement_window(0, 1000);

  Packet p;
  p.id = 1;
  p.src_endpoint = 0;
  p.dst_endpoint = 2;
  p.length = 4;
  p.gen_time = 0;
  ASSERT_TRUE(net.offer_packet(0, p));

  Cycle now = 0;
  run_until(net, now, 100);
  ASSERT_EQ(net.endpoint(2).sink().tagged_packets, 1u);
  EXPECT_EQ(net.endpoint(2).sink().tagged_latency_sum, 35u + 3u);
}

TEST(ZeroLoad, TwoHopPathLatency) {
  // 0 - 1 - 2 path graph; endpoint 0 (chiplet 0) -> endpoint 4 (chiplet 2):
  // 1 + 3 + 27 + 3 + 27 + 3 + 1 = 65.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  SimConfig cfg = default_config();
  cfg.packet_length = 1;
  Network net(g, cfg);
  net.endpoint(4).set_measurement_window(0, 1000);

  Packet p;
  p.id = 1;
  p.src_endpoint = 0;
  p.dst_endpoint = 4;
  p.length = 1;
  p.gen_time = 0;
  ASSERT_TRUE(net.offer_packet(0, p));

  Cycle now = 0;
  run_until(net, now, 200);
  ASSERT_EQ(net.endpoint(4).sink().tagged_packets, 1u);
  EXPECT_EQ(net.endpoint(4).sink().tagged_latency_sum, 65u);
}

// --- Conservation & invariants ------------------------------------------------

TEST(Conservation, HoldsThroughoutARandomRun) {
  const auto arr = hm::core::make_grid(9);
  SimConfig cfg = default_config();
  Network net(arr.graph(), cfg);
  hm::noc::UniformRandomTraffic traffic(net.num_endpoints(), 0.3,
                                        cfg.packet_length);
  Rng rng(3);
  Cycle now = 0;
  for (; now < 2000; ++now) {
    for (std::size_t e = 0; e < net.num_endpoints(); ++e) {
      auto pkt = traffic.maybe_generate(static_cast<std::uint16_t>(e), now, rng);
      if (pkt.has_value()) net.offer_packet(e, *pkt);
    }
    net.step(now);
    if (now % 250 == 0) {
      std::string why;
      ASSERT_TRUE(net.invariants_ok(&why)) << "cycle " << now << ": " << why;
    }
  }
  EXPECT_EQ(net.total_flits_injected(),
            net.total_flits_ejected() + net.flits_in_network());
  EXPECT_GT(net.total_flits_ejected(), 0u);
}

TEST(Backpressure, SourceQueueCapacityRespected) {
  SimConfig cfg = default_config();
  cfg.source_queue_capacity = 2;
  Network net(two_chiplets(), cfg);
  Packet p;
  p.src_endpoint = 0;
  p.dst_endpoint = 2;
  p.length = 4;
  EXPECT_TRUE(net.offer_packet(0, p));
  EXPECT_TRUE(net.offer_packet(0, p));
  EXPECT_FALSE(net.offer_packet(0, p));  // full
}

TEST(Backpressure, InjectionStallsWithoutCredits) {
  // With tiny buffers and a long link, the source cannot dump unboundedly.
  SimConfig cfg = default_config();
  cfg.vcs = 1;
  cfg.buffer_depth = 2;
  cfg.packet_length = 8;
  Network net(two_chiplets(), cfg);
  Packet p;
  p.src_endpoint = 0;
  p.dst_endpoint = 2;
  p.length = 8;
  net.offer_packet(0, p);
  Cycle now = 0;
  run_until(net, now, 3);
  // After 3 cycles at most buffer_depth flits can have been injected.
  EXPECT_LE(net.endpoint(0).flits_injected(),
            static_cast<std::uint64_t>(cfg.buffer_depth));
}

TEST(Simulator, LatencyRunDrainsAtLowLoad) {
  const auto arr = hm::core::make_grid(4);
  hm::noc::Simulator sim(arr.graph(), default_config());
  const auto result = sim.run_latency(0.02, 500, 2000, 50000);
  EXPECT_TRUE(result.drained);
  EXPECT_GT(result.packets_measured, 0u);
  EXPECT_GT(result.avg_packet_latency, 5.0);
}

TEST(Simulator, ThroughputBoundedByCapacity) {
  const auto arr = hm::core::make_grid(4);
  hm::noc::Simulator sim(arr.graph(), default_config());
  const auto result = sim.run_throughput(1.0, 2000, 2000);
  EXPECT_GT(result.accepted_flit_rate, 0.0);
  EXPECT_LE(result.accepted_flit_rate, 1.0);
}

TEST(Simulator, AcceptedTracksOfferedBelowSaturation) {
  const auto arr = hm::core::make_grid(4);
  hm::noc::Simulator sim(arr.graph(), default_config());
  const auto result = sim.run_throughput(0.05, 2000, 4000);
  EXPECT_NEAR(result.accepted_flit_rate, 0.05, 0.01);
}

TEST(Traffic, RatesAndDestinations) {
  hm::noc::UniformRandomTraffic traffic(10, 0.5, 4);
  Rng rng(11);
  std::size_t generated = 0;
  for (Cycle t = 0; t < 20000; ++t) {
    auto p = traffic.maybe_generate(3, t, rng);
    if (p.has_value()) {
      ++generated;
      EXPECT_NE(p->dst_endpoint, 3u);  // never self
      EXPECT_LT(p->dst_endpoint, 10u);
      EXPECT_EQ(p->length, 4u);
    }
  }
  // Packet rate = 0.5 / 4 = 0.125; expect ~2500 +- noise.
  EXPECT_NEAR(static_cast<double>(generated), 2500.0, 200.0);
}

TEST(Traffic, InvalidParamsRejected) {
  EXPECT_THROW(hm::noc::UniformRandomTraffic(1, 0.5, 4),
               std::invalid_argument);
  EXPECT_THROW(hm::noc::UniformRandomTraffic(4, 1.5, 4),
               std::invalid_argument);
  EXPECT_THROW(hm::noc::UniformRandomTraffic(4, 0.5, 0),
               std::invalid_argument);
}

TEST(Rng, DeterministicAndUniform) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
  Rng r(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
