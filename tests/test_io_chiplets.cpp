// Tests for the perimeter I/O-chiplet placement (Sec. III-A, Fig. 2).
#include <gtest/gtest.h>

#include "core/brickwall.hpp"
#include "core/grid.hpp"
#include "core/hexamesh.hpp"
#include "core/honeycomb.hpp"
#include "core/io_chiplets.hpp"
#include "graph/algorithms.hpp"

namespace {

using namespace hm::core;

TEST(IoChiplets, SingleChipletGetsFourSlots) {
  const auto plan = place_io_chiplets(make_grid(1), 4.0, 4.0, 2.0);
  EXPECT_EQ(plan.io.size(), 4u);
  EXPECT_EQ(plan.extended.node_count(), 5u);
  // Every I/O chiplet touches the single compute chiplet.
  for (const auto& slot : plan.io) {
    EXPECT_EQ(slot.attached_chiplet, 0u);
    EXPECT_DOUBLE_EQ(slot.contact_mm, 4.0);
  }
}

TEST(IoChiplets, ThreeByThreeGridPerimeter) {
  // 3x3 grid: 4 corner chiplets expose 2 sides, 4 edge chiplets expose 1,
  // the center none -> 12 slots.
  const auto plan = place_io_chiplets(make_grid(9), 3.0, 3.0, 1.5);
  EXPECT_EQ(plan.io.size(), 12u);
}

TEST(IoChiplets, CombinedPlacementIsOverlapFree) {
  for (std::size_t n : {9u, 19u, 37u}) {
    const auto plan = place_io_chiplets(make_hexamesh(n), 4.38, 3.65, 1.8);
    EXPECT_TRUE(plan.combined_placement().is_overlap_free()) << "n=" << n;
    EXPECT_GT(plan.io.size(), 0u);
  }
}

TEST(IoChiplets, ExtendedGraphIsConnectedAndPlanar) {
  for (std::size_t n : {4u, 12u, 19u}) {
    const auto plan = place_io_chiplets(make_brickwall(n), 4.38, 3.65, 1.0);
    EXPECT_TRUE(hm::graph::is_connected(plan.extended)) << "n=" << n;
    EXPECT_TRUE(hm::graph::satisfies_planar_bound(plan.extended));
  }
}

TEST(IoChiplets, ExtendedGraphContainsComputeGraph) {
  const auto arr = make_grid(9);
  const auto plan = place_io_chiplets(arr, 3.0, 3.0, 1.0);
  for (const auto& [a, b] : arr.graph().edges()) {
    EXPECT_TRUE(plan.extended.has_edge(a, b));
  }
  EXPECT_EQ(plan.extended.node_count(),
            arr.chiplet_count() + plan.io.size());
}

TEST(IoChiplets, EveryIoSlotIsAdjacentToItsChiplet) {
  const auto arr = make_hexamesh(7);
  const auto plan = place_io_chiplets(arr, 4.38, 3.65, 1.5);
  const auto combined = plan.combined_placement();
  for (std::size_t i = 0; i < plan.io.size(); ++i) {
    const auto io_vertex =
        static_cast<hm::graph::NodeId>(arr.chiplet_count() + i);
    EXPECT_TRUE(plan.extended.has_edge(
        io_vertex,
        static_cast<hm::graph::NodeId>(plan.io[i].attached_chiplet)));
    EXPECT_GT(combined.contact_length(plan.io[i].attached_chiplet,
                                      arr.chiplet_count() + i),
              0.0);
  }
}

TEST(IoChiplets, MaxIoCapRespected) {
  const auto plan = place_io_chiplets(make_grid(9), 3.0, 3.0, 1.5, 5);
  EXPECT_EQ(plan.io.size(), 5u);
}

TEST(IoChiplets, InteriorChipletsGetNoIo) {
  const auto arr = make_hexamesh_regular(2);  // 19 chiplets
  const auto plan = place_io_chiplets(arr, 4.38, 3.65, 1.0);
  // Chiplets 0..6 (center + first ring) are interior.
  for (const auto& slot : plan.io) {
    EXPECT_GE(slot.attached_chiplet, 7u);
  }
}

TEST(IoChiplets, DeeperIoChipletsStillFit) {
  const auto plan = place_io_chiplets(make_grid(4), 4.0, 4.0, 6.0);
  EXPECT_TRUE(plan.combined_placement().is_overlap_free());
  EXPECT_GT(plan.io.size(), 0u);
}

TEST(IoChiplets, InvalidInputsRejected) {
  EXPECT_THROW((void)place_io_chiplets(make_grid(4), 4.0, 4.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)place_io_chiplets(make_honeycomb(9), 4.0, 4.0, 1.0),
               std::logic_error);
}

TEST(IoChiplets, BrickwallStaircaseSidesAreRejected) {
  // In a brickwall, partially covered sides must not spawn I/O chiplets
  // that overlap the half-offset neighbours.
  const auto plan = place_io_chiplets(make_brickwall(9), 4.0, 3.0, 1.0);
  EXPECT_TRUE(plan.combined_placement().is_overlap_free());
}

}  // namespace
