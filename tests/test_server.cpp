// hm_server contracts (src/server/): wire-protocol codec strictness, the
// request queue's round-robin fairness + admission control, and a live
// loopback server exercised over a Unix socket — determinism of evaluate
// and sweep replies, malformed-frame survival, and clean shutdown.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.hpp"
#include "server/queue.hpp"
#include "server/server.hpp"
#include "store/record.hpp"
#include "util/byte_io.hpp"

namespace fs = std::filesystem;
using namespace hm::server;

namespace {

// ---------------------------------------------------------------- protocol

std::vector<std::uint8_t> frame_bytes(std::uint32_t magic, Command command,
                                      const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  encode_frame(magic, command, payload, out);
  return out;
}

TEST(Protocol, FrameHeaderRoundTrip) {
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const auto bytes = frame_bytes(kRequestMagic, Command::kEvaluate, payload);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + payload.size());

  const auto header = parse_frame_header(bytes.data(), bytes.size());
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->magic, kRequestMagic);
  EXPECT_EQ(header->version, kProtocolVersion);
  EXPECT_EQ(header->command,
            static_cast<std::uint16_t>(Command::kEvaluate));
  EXPECT_EQ(header->payload_len, payload.size());
  EXPECT_TRUE(frame_header_ok(*header, kRequestMagic));
  EXPECT_FALSE(frame_header_ok(*header, kReplyMagic));  // wrong direction
}

TEST(Protocol, FrameHeaderRejectsShortVersionAndOversize) {
  const auto bytes = frame_bytes(kRequestMagic, Command::kPing, {});
  EXPECT_FALSE(parse_frame_header(bytes.data(), kFrameHeaderSize - 1));

  auto header = *parse_frame_header(bytes.data(), bytes.size());
  header.version = kProtocolVersion + 1;
  EXPECT_FALSE(frame_header_ok(header, kRequestMagic));

  header = *parse_frame_header(bytes.data(), bytes.size());
  header.payload_len = kMaxPayload + 1;
  EXPECT_FALSE(frame_header_ok(header, kRequestMagic));
}

TEST(Protocol, EvaluateRequestRoundTripAndStrictDecode) {
  EvaluateRequest req;
  req.type = hm::core::ArrangementType::kBrickwall;
  req.chiplet_count = 19;
  req.seed = 7;
  req.measure_latency = true;
  req.measure_saturation = false;
  std::vector<std::uint8_t> bytes;
  encode_evaluate_request(req, bytes);

  const auto decoded = decode_evaluate_request(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, req.type);
  EXPECT_EQ(decoded->chiplet_count, req.chiplet_count);
  EXPECT_EQ(decoded->seed, req.seed);
  EXPECT_EQ(decoded->measure_latency, req.measure_latency);
  EXPECT_EQ(decoded->measure_saturation, req.measure_saturation);

  // Truncated body, unknown family, flag bits outside 0..3, n == 0 — all
  // rejected, never best-effort decoded. Layout: u8 family, u64 n,
  // u64 seed, u8 flags.
  EXPECT_FALSE(decode_evaluate_request(bytes.data(), bytes.size() - 1));
  auto bad = bytes;
  bad[0] = 0x7f;
  EXPECT_FALSE(decode_evaluate_request(bad.data(), bad.size()));
  bad = bytes;
  bad[17] = 4;
  EXPECT_FALSE(decode_evaluate_request(bad.data(), bad.size()));
  EvaluateRequest zero = req;
  zero.chiplet_count = 0;
  bytes.clear();
  encode_evaluate_request(zero, bytes);
  EXPECT_FALSE(decode_evaluate_request(bytes.data(), bytes.size()));
}

TEST(Protocol, SweepRequestRoundTripAndStrictDecode) {
  SweepRequest req;
  req.types = {hm::core::ArrangementType::kGrid,
               hm::core::ArrangementType::kHexaMesh};
  req.chiplet_counts = {4, 7, 12};
  req.base_seed = 99;
  req.simulate = false;
  std::vector<std::uint8_t> bytes;
  encode_sweep_request(req, bytes);

  const auto decoded = decode_sweep_request(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->types, req.types);
  EXPECT_EQ(decoded->chiplet_counts, req.chiplet_counts);
  EXPECT_EQ(decoded->base_seed, req.base_seed);
  EXPECT_EQ(decoded->simulate, req.simulate);

  EXPECT_FALSE(decode_sweep_request(bytes.data(), bytes.size() - 1));
  SweepRequest empty = req;
  empty.types.clear();
  bytes.clear();
  encode_sweep_request(empty, bytes);
  EXPECT_FALSE(decode_sweep_request(bytes.data(), bytes.size()));
  empty = req;
  empty.chiplet_counts.clear();
  bytes.clear();
  encode_sweep_request(empty, bytes);
  EXPECT_FALSE(decode_sweep_request(bytes.data(), bytes.size()));
}

TEST(Protocol, SearchRequestRoundTripAndStrictDecode) {
  SearchRequest req;
  req.type = hm::core::ArrangementType::kHexaMesh;
  req.chiplet_count = 9;
  req.steps = 25;
  req.seed = 5;
  std::vector<std::uint8_t> bytes;
  encode_search_request(req, bytes);

  const auto decoded = decode_search_request(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->chiplet_count, req.chiplet_count);
  EXPECT_EQ(decoded->steps, req.steps);

  SearchRequest bad = req;
  bad.chiplet_count = 1;  // nothing to search below 2 chiplets
  bytes.clear();
  encode_search_request(bad, bytes);
  EXPECT_FALSE(decode_search_request(bytes.data(), bytes.size()));
  bad = req;
  bad.steps = 0;
  bytes.clear();
  encode_search_request(bad, bytes);
  EXPECT_FALSE(decode_search_request(bytes.data(), bytes.size()));
}

TEST(Protocol, ReplyPayloadRoundTrip) {
  const std::vector<std::uint8_t> body{9, 8, 7};
  std::vector<std::uint8_t> payload;
  encode_reply_payload(Status::kRejected, body, payload);

  const auto view = parse_reply_payload(payload.data(), payload.size());
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->status, Status::kRejected);
  ASSERT_EQ(view->body_size, body.size());
  EXPECT_EQ(std::memcmp(view->body, body.data(), body.size()), 0);

  EXPECT_FALSE(parse_reply_payload(payload.data(), 1));  // shorter than u16
}

// ------------------------------------------------------------ RequestQueue

TEST(RequestQueueTest, PopBatchIsRoundRobinAcrossClients) {
  RequestQueue<int> queue(64, 8);
  // Client 1 pipelines three requests before 2 and 3 send one each.
  EXPECT_TRUE(queue.push(1, 10));
  EXPECT_TRUE(queue.push(1, 11));
  EXPECT_TRUE(queue.push(1, 12));
  EXPECT_TRUE(queue.push(2, 20));
  EXPECT_TRUE(queue.push(3, 30));

  const auto batch = queue.pop_batch(5);
  // One request per client per rotation: every client's first request
  // rides in the first fan-out, then client 1's backlog drains.
  EXPECT_EQ(batch, (std::vector<int>{10, 20, 30, 11, 12}));
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(RequestQueueTest, RotationResumesAfterLastServedClient) {
  RequestQueue<int> queue(64, 8);
  EXPECT_TRUE(queue.push(1, 10));
  EXPECT_TRUE(queue.push(2, 20));
  EXPECT_EQ(queue.pop_batch(1), (std::vector<int>{10}));
  // The cursor sits on client 1, so client 2 goes first in the next batch.
  EXPECT_TRUE(queue.push(1, 11));
  EXPECT_EQ(queue.pop_batch(2), (std::vector<int>{20, 11}));
}

TEST(RequestQueueTest, AdmissionCapsPerClientAndGlobally) {
  RequestQueue<int> queue(3, 2);
  EXPECT_TRUE(queue.push(1, 0));
  EXPECT_TRUE(queue.push(1, 1));
  EXPECT_FALSE(queue.push(1, 2));  // per-client cap: one chatty client
  EXPECT_TRUE(queue.push(2, 0));
  EXPECT_FALSE(queue.push(3, 0));  // global cap
  EXPECT_EQ(queue.pending(), 3u);

  (void)queue.pop_batch(1);
  EXPECT_TRUE(queue.push(3, 0));  // capacity freed, admitted again
}

TEST(RequestQueueTest, CloseDrainsThenReturnsEmpty) {
  RequestQueue<int> queue(64, 8);
  EXPECT_TRUE(queue.push(1, 10));
  EXPECT_TRUE(queue.push(2, 20));
  queue.close();
  EXPECT_FALSE(queue.push(1, 99));  // closed: nothing new admitted

  EXPECT_EQ(queue.pop_batch(16), (std::vector<int>{10, 20}));
  EXPECT_TRUE(queue.pop_batch(16).empty());  // drained: unblocked, empty
}

// --------------------------------------------------------- loopback server

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends one request frame and reads one reply frame; returns the reply
/// payload (u16 status + body) or nullopt on transport failure.
std::optional<std::vector<std::uint8_t>> roundtrip(
    int fd, Command command, const std::vector<std::uint8_t>& payload) {
  if (!write_frame(fd, kRequestMagic, command, payload)) return std::nullopt;
  FrameHeader header;
  std::vector<std::uint8_t> reply;
  if (read_frame(fd, kReplyMagic, &header, &reply) != ReadResult::kOk) {
    return std::nullopt;
  }
  EXPECT_EQ(header.command, static_cast<std::uint16_t>(command));
  return reply;
}

Status reply_status(const std::vector<std::uint8_t>& payload) {
  const auto view = parse_reply_payload(payload.data(), payload.size());
  return view ? view->status : Status::kError;
}

std::vector<std::uint8_t> reply_body(const std::vector<std::uint8_t>& payload) {
  const auto view = parse_reply_payload(payload.data(), payload.size());
  if (!view) return {};
  return std::vector<std::uint8_t>(view->body, view->body + view->body_size);
}

/// A started server on a Unix socket in a private temp dir, plus one
/// connected client fd per connect() call. Analytic-only requests keep
/// every test interactive-speed.
class LoopbackServer : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hm_server_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    options_.unix_path = (dir_ / "hm.sock").string();
    options_.threads = 2;
    server_ = std::make_unique<Server>(options_);
    server_->start();
  }

  void TearDown() override {
    for (const int fd : fds_) {
      if (fd >= 0) ::close(fd);
    }
    server_->stop();
    server_.reset();
    fs::remove_all(dir_);
  }

  int connect() {
    const int fd = connect_unix(options_.unix_path);
    EXPECT_GE(fd, 0);
    fds_.push_back(fd);
    return fd;
  }

  fs::path dir_;
  ServerOptions options_;
  std::unique_ptr<Server> server_;
  std::vector<int> fds_;
};

TEST_F(LoopbackServer, PingPongs) {
  const auto reply = roundtrip(connect(), Command::kPing, {});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply_status(*reply), Status::kOk);
  EXPECT_TRUE(reply_body(*reply).empty());
}

TEST_F(LoopbackServer, EvaluateRepliesAreDeterministicAndDecodable) {
  EvaluateRequest req;
  req.type = hm::core::ArrangementType::kHexaMesh;
  req.chiplet_count = 12;
  req.seed = 3;
  req.measure_latency = false;  // analytic-only: fast and deterministic
  req.measure_saturation = false;
  std::vector<std::uint8_t> payload;
  encode_evaluate_request(req, payload);

  const auto first = roundtrip(connect(), Command::kEvaluate, payload);
  const auto second = roundtrip(connect(), Command::kEvaluate, payload);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(reply_status(*first), Status::kOk);
  // The byte-identity CI cmp's, from two independent connections.
  EXPECT_EQ(*first, *second);

  const auto body = reply_body(*first);
  const auto result = hm::store::decode_result(body.data(), body.size());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->chiplet_count, req.chiplet_count);
  EXPECT_GT(result->link_count, 0u);
}

TEST_F(LoopbackServer, SweepRepliesAreDeterministicCsv) {
  SweepRequest req;
  req.types = {hm::core::ArrangementType::kGrid,
               hm::core::ArrangementType::kHexaMesh};
  req.chiplet_counts = {4, 9};
  req.simulate = false;
  std::vector<std::uint8_t> payload;
  encode_sweep_request(req, payload);

  const auto first = roundtrip(connect(), Command::kSweep, payload);
  const auto second = roundtrip(connect(), Command::kSweep, payload);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(reply_status(*first), Status::kOk);
  EXPECT_EQ(*first, *second);

  const auto body = reply_body(*first);
  const std::string csv(body.begin(), body.end());
  EXPECT_NE(csv.find("arrangement"), std::string::npos);  // header row
  // One row per (type, count) pair plus the header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

TEST_F(LoopbackServer, UndecodableRequestBodyIsBadRequestNotDeath) {
  const std::vector<std::uint8_t> garbage{0xff, 0xfe, 0xfd};
  const auto reply = roundtrip(connect(), Command::kEvaluate, garbage);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply_status(*reply), Status::kBadRequest);
  // The server survives: a fresh connection still works.
  const auto ping = roundtrip(connect(), Command::kPing, {});
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(reply_status(*ping), Status::kOk);
}

TEST_F(LoopbackServer, MalformedFramesRejectedWithoutKillingServer) {
  // Bad magic: the server replies kBadRequest and closes the connection.
  {
    const int fd = connect();
    std::vector<std::uint8_t> raw;
    hm::util::ByteWriter w(raw);
    w.u32(0x58585858u)  // "XXXX"
        .u16(kProtocolVersion)
        .u16(static_cast<std::uint16_t>(Command::kPing))
        .u32(0);
    ASSERT_TRUE(write_all(fd, raw.data(), raw.size()));
    FrameHeader header;
    std::vector<std::uint8_t> reply;
    ASSERT_EQ(read_frame(fd, kReplyMagic, &header, &reply), ReadResult::kOk);
    EXPECT_EQ(reply_status(reply), Status::kBadRequest);
    EXPECT_EQ(read_frame(fd, kReplyMagic, &header, &reply),
              ReadResult::kEof);  // connection closed behind the reply
  }
  // Truncated frame: header promises 64 payload bytes, one arrives.
  {
    const int fd = connect();
    std::vector<std::uint8_t> raw;
    hm::util::ByteWriter w(raw);
    w.u32(kRequestMagic)
        .u16(kProtocolVersion)
        .u16(static_cast<std::uint16_t>(Command::kEvaluate))
        .u32(64);
    raw.push_back(0xab);
    ASSERT_TRUE(write_all(fd, raw.data(), raw.size()));
    ::shutdown(fd, SHUT_WR);
    FrameHeader header;
    std::vector<std::uint8_t> reply;
    // No reply is owed for a frame that never finished arriving.
    EXPECT_NE(read_frame(fd, kReplyMagic, &header, &reply), ReadResult::kOk);
  }
  // The server survived both.
  const auto ping = roundtrip(connect(), Command::kPing, {});
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(reply_status(*ping), Status::kOk);
}

TEST_F(LoopbackServer, StatsReportServedRequests) {
  (void)roundtrip(connect(), Command::kPing, {});
  const auto reply = roundtrip(connect(), Command::kStats, {});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply_status(*reply), Status::kOk);
  const auto body = reply_body(*reply);
  const std::string json(body.begin(), body.end());
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"uptime_s\""), std::string::npos);
  EXPECT_GE(server_->stats_snapshot().requests, 2u);
}

TEST_F(LoopbackServer, ShutdownCommandStopsServerAndUnlinksSocket) {
  const auto reply = roundtrip(connect(), Command::kShutdown, {});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply_status(*reply), Status::kOk);
  server_->wait();  // returns because the command requested shutdown
  server_->stop();
  EXPECT_FALSE(fs::exists(options_.unix_path));
  // Stop is idempotent; a second stop is a no-op.
  server_->stop();
}

}  // namespace
