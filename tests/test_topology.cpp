// Tests for the shared immutable topology layer: the context intern cache,
// the build-once contract of evaluate()/find_saturation()/sweep jobs, the
// ring-buffer hot path (flit conservation under saturation), and result
// equivalence between simulators sharing one TopologyContext and simulators
// on private copies — including concurrent sharing.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/arrangement.hpp"
#include "core/evaluator.hpp"
#include "graph/graph.hpp"
#include "noc/ring_buffer.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"

namespace {

using hm::graph::Graph;
using hm::noc::RingQueue;
using hm::noc::RoutingTables;
using hm::noc::SimConfig;
using hm::noc::Simulator;
using hm::noc::TopologyContext;

Graph ring_graph(std::size_t n) {
  Graph g(n);
  for (hm::graph::NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<hm::graph::NodeId>((v + 1) % n));
  }
  return g;
}

// --- RingQueue -----------------------------------------------------------------

TEST(RingQueue, FifoWithWraparound) {
  RingQueue<int> q;
  q.reserve(4);
  const std::size_t cap = q.capacity();
  EXPECT_GE(cap, 4u);
  // Push/pop across the wrap point several times.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 10; ++round) {
    while (q.size() < cap) q.push_back(next_in++);
    EXPECT_EQ(q.capacity(), cap);  // no growth at the bound
    while (!q.empty()) {
      EXPECT_EQ(q.front(), next_out);
      q.pop_front();
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(RingQueue, GrowsBeyondReservationPreservingOrder) {
  RingQueue<int> q;
  q.reserve(2);
  // Misalign head first, then overflow the reservation.
  q.push_back(-1);
  q.pop_front();
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(q.back(), 99);
}

// --- Context cache -------------------------------------------------------------

TEST(TopologyContext, AcquireInternsStructurallyEqualGraphs) {
  const auto g = ring_graph(23);
  const auto a = TopologyContext::acquire(g);
  const auto b = TopologyContext::acquire(ring_graph(23));  // fresh object
  EXPECT_EQ(a.get(), b.get());  // same shared instance
  EXPECT_EQ(a->digest(), hm::noc::graph_digest(g));

  const auto other = TopologyContext::acquire(ring_graph(24));
  EXPECT_NE(a.get(), other.get());
}

TEST(TopologyContext, ExpiredContextsAreRebuilt) {
  const auto g = ring_graph(29);
  const TopologyContext* first = nullptr;
  {
    const auto ctx = TopologyContext::acquire(g);
    first = ctx.get();
  }  // last reference dropped; the cache holds only a weak_ptr
  const auto before = TopologyContext::lifetime_builds();
  const auto again = TopologyContext::acquire(g);
  EXPECT_EQ(TopologyContext::lifetime_builds(), before + 1);
  (void)first;
}

TEST(TopologyContext, DirectedLinksMatchGraphEdges) {
  const auto arr =
      hm::core::make_arrangement(hm::core::ArrangementType::kHexaMesh, 7);
  const auto ctx = TopologyContext::acquire(arr.graph());
  const auto links = ctx->directed_links();
  ASSERT_EQ(links.size(), 2 * arr.graph().edge_count());
  for (const auto& l : links) {
    EXPECT_TRUE(arr.graph().has_edge(l.from, l.to));
    EXPECT_EQ(arr.graph().neighbors(l.from)[l.out_port_at_from], l.to);
    EXPECT_EQ(arr.graph().neighbors(l.to)[l.in_port_at_to], l.from);
  }
}

// --- Build-once contract -------------------------------------------------------

TEST(TopologyContext, FindSaturationBuildsTablesOnce) {
  const auto g = ring_graph(9);  // not used by any other test in this binary
  SimConfig cfg;
  hm::noc::SaturationSearchOptions opts;
  opts.warmup = 300;
  opts.measure = 300;
  opts.iterations = 4;
  const auto before = RoutingTables::lifetime_builds();
  const auto result = hm::noc::find_saturation(g, cfg, opts);
  EXPECT_GE(result.probes, opts.iterations);  // many probes ran...
  EXPECT_EQ(RoutingTables::lifetime_builds(), before + 1);  // ...one build
}

TEST(TopologyContext, EvaluateBuildsTablesOnce) {
  const auto arr =
      hm::core::make_arrangement(hm::core::ArrangementType::kBrickwall, 11);
  hm::core::EvaluationParams params;
  params.latency_warmup = 200;
  params.latency_measure = 400;
  params.latency_drain_limit = 50000;
  params.throughput_warmup = 300;
  params.throughput_measure = 300;
  const auto before = RoutingTables::lifetime_builds();
  const auto r = hm::core::evaluate(arr, params);
  EXPECT_GT(r.saturation_fraction, 0.0);
  EXPECT_EQ(RoutingTables::lifetime_builds(), before + 1);
}

TEST(TopologyContext, EvaluateSimulationRejectsForeignContext) {
  const auto arr =
      hm::core::make_arrangement(hm::core::ArrangementType::kGrid, 4);
  hm::core::EvaluationParams params;
  const auto analytic = hm::core::evaluate_analytic(arr, params);
  const auto wrong = TopologyContext::acquire(ring_graph(17));
  EXPECT_THROW((void)hm::core::evaluate_simulation(arr, params, analytic, {},
                                             nullptr, wrong),
               std::invalid_argument);
  EXPECT_THROW((void)hm::core::evaluate_simulation(arr, params, analytic, {},
                                             nullptr, nullptr),
               std::invalid_argument);
}

// --- Shared-context equivalence ------------------------------------------------

TEST(TopologyContext, SharedContextMatchesPrivateCopies) {
  const auto arr =
      hm::core::make_arrangement(hm::core::ArrangementType::kHexaMesh, 12);
  SimConfig cfg;
  const auto shared = TopologyContext::acquire(arr.graph());

  auto run = [&](std::shared_ptr<const TopologyContext> topo) {
    Simulator sim(std::move(topo), cfg);
    return sim.run_throughput(0.6, 800, 800);
  };

  // Two simulators sharing one context vs two private (uncached) builds.
  const auto shared_a = run(shared);
  const auto shared_b = run(shared);
  const auto private_a =
      run(std::make_shared<const TopologyContext>(arr.graph()));
  const auto private_b =
      run(std::make_shared<const TopologyContext>(arr.graph()));

  EXPECT_EQ(shared_a.accepted_flit_rate, shared_b.accepted_flit_rate);
  EXPECT_EQ(shared_a.accepted_flit_rate, private_a.accepted_flit_rate);
  EXPECT_EQ(shared_a.generated_flit_rate, private_b.generated_flit_rate);
  EXPECT_EQ(shared_a.dropped_packets, private_a.dropped_packets);
}

TEST(TopologyContext, ConcurrentSimulatorsOnOneContextMatchSequential) {
  const auto arr =
      hm::core::make_arrangement(hm::core::ArrangementType::kBrickwall, 9);
  const auto shared = TopologyContext::acquire(arr.graph());

  // Sequential reference runs, each at a distinct seed, on private tables.
  std::vector<hm::noc::ThroughputResult> expected(4);
  for (int i = 0; i < 4; ++i) {
    SimConfig cfg;
    cfg.seed = 1000 + static_cast<unsigned long long>(i);
    Simulator sim(std::make_shared<const TopologyContext>(arr.graph()), cfg);
    expected[static_cast<std::size_t>(i)] = sim.run_throughput(0.8, 600, 600);
  }

  // The same runs concurrently, all sharing one immutable context.
  std::vector<hm::noc::ThroughputResult> actual(4);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      SimConfig cfg;
      cfg.seed = 1000 + static_cast<unsigned long long>(i);
      Simulator sim(shared, cfg);
      actual[static_cast<std::size_t>(i)] = sim.run_throughput(0.8, 600, 600);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < 4; ++i) {
    const auto& e = expected[static_cast<std::size_t>(i)];
    const auto& a = actual[static_cast<std::size_t>(i)];
    EXPECT_EQ(e.accepted_flit_rate, a.accepted_flit_rate) << "seed " << i;
    EXPECT_EQ(e.generated_flit_rate, a.generated_flit_rate) << "seed " << i;
    EXPECT_EQ(e.dropped_packets, a.dropped_packets) << "seed " << i;
  }
}

// --- Ring-buffer hot path ------------------------------------------------------

TEST(RingRouter, FlitConservationUnderSaturation) {
  const auto arr =
      hm::core::make_arrangement(hm::core::ArrangementType::kHexaMesh, 19);
  SimConfig cfg;
  Simulator sim(arr.graph(), cfg);
  hm::noc::UniformRandomTraffic traffic(sim.network().num_endpoints(), 1.0,
                                        cfg.packet_length);
  hm::noc::Rng rng(7);
  hm::noc::Cycle now = 0;
  std::string why;
  for (int c = 0; c < 3000; ++c) {
    for (std::size_t e = 0; e < sim.network().num_endpoints(); ++e) {
      auto p = traffic.maybe_generate(static_cast<std::uint16_t>(e), now, rng);
      if (p.has_value()) (void)sim.network().offer_packet(e, *p);
    }
    sim.network().step(now);
    ++now;
    if (c % 500 == 0) {
      ASSERT_TRUE(sim.network().invariants_ok(&why)) << "cycle " << c << ": "
                                                     << why;
    }
  }
  ASSERT_TRUE(sim.network().invariants_ok(&why)) << why;
  EXPECT_EQ(sim.network().total_flits_injected(),
            sim.network().total_flits_ejected() +
                sim.network().flits_in_network());
  EXPECT_GT(sim.network().total_flits_ejected(), 0u);
}

}  // namespace
