// Unit tests for NoC internals: delay-line channels, endpoint source/sink
// behaviour, router wiring validation, and routing-table edge cases that the
// system-level tests do not isolate.
#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "noc/channel.hpp"
#include "noc/endpoint.hpp"
#include "noc/network.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"

namespace {

using hm::graph::Graph;
using hm::noc::CreditChannel;
using hm::noc::Endpoint;
using hm::noc::Flit;
using hm::noc::FlitChannel;
using hm::noc::Packet;
using hm::noc::PacketTable;
using hm::noc::Router;
using hm::noc::RoutingTables;
using hm::noc::SimConfig;

// --- Channels ------------------------------------------------------------------

TEST(FlitChannel, DeliversInFifoOrderAtArrivalTime) {
  FlitChannel ch;
  Flit a, b;
  a.packet_id = 1;
  b.packet_id = 2;
  ch.push(a, 10);
  ch.push(b, 12);
  EXPECT_FALSE(ch.ready(9));
  ASSERT_TRUE(ch.ready(10));
  EXPECT_EQ(ch.pop().packet_id, 1u);
  EXPECT_FALSE(ch.ready(11));
  ASSERT_TRUE(ch.ready(12));
  EXPECT_EQ(ch.pop().packet_id, 2u);
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST(FlitChannel, InFlightCountsQueuedFlits) {
  FlitChannel ch;
  for (int i = 0; i < 5; ++i) ch.push(Flit{}, 100 + i);
  EXPECT_EQ(ch.in_flight(), 5u);
}

TEST(CreditChannel, CarriesVcIds) {
  CreditChannel ch;
  ch.push(3, 5);
  ch.push(7, 5);
  ASSERT_TRUE(ch.ready(5));
  EXPECT_EQ(ch.pop(), 3);
  EXPECT_EQ(ch.pop(), 7);
}

TEST(CreditChannel, NotReadyBeforeArrival) {
  CreditChannel ch;
  ch.push(0, 42);
  EXPECT_FALSE(ch.ready(41));
  EXPECT_TRUE(ch.ready(42));
  EXPECT_TRUE(ch.ready(43));
}

// --- Endpoint ------------------------------------------------------------------

SimConfig small_config() {
  SimConfig cfg;
  cfg.vcs = 2;
  cfg.buffer_depth = 2;
  cfg.packet_length = 3;
  cfg.source_queue_capacity = 2;
  return cfg;
}

TEST(Endpoint, InjectsHeadBodyTailInOrder) {
  const SimConfig cfg = small_config();
  PacketTable packets;
  Endpoint ep(0, cfg, &packets);
  FlitChannel inj;
  ep.wire_injection(&inj, 1);
  Packet p;
  p.src_endpoint = 0;
  p.dst_endpoint = 5;
  p.length = 3;
  ASSERT_TRUE(ep.try_enqueue(p));
  // The cold half went into the packet table exactly once.
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].dst_endpoint, 5);
  EXPECT_EQ(packets[0].length, 3);
  ep.inject(0);
  ep.inject(1);
  ep.receive_credit(0);  // free a buffer slot so the tail can follow
  ep.inject(2);
  ASSERT_EQ(inj.in_flight(), 3u);
  const Flit head = inj.pop();
  const Flit body = inj.pop();
  const Flit tail = inj.pop();
  EXPECT_TRUE(head.head);
  EXPECT_FALSE(head.tail);
  EXPECT_FALSE(body.head);
  EXPECT_FALSE(body.tail);
  EXPECT_TRUE(tail.tail);
  EXPECT_EQ(head.vc, body.vc);
  EXPECT_EQ(head.vc, tail.vc);
  EXPECT_EQ(head.packet_id, 0u);  // table id, not the generator's
  EXPECT_EQ(head.dst_router, 5 / cfg.endpoints_per_chiplet);
}

TEST(Endpoint, StallsWithoutCredits) {
  const SimConfig cfg = small_config();  // 2 VCs x 2 credits
  PacketTable packets;
  Endpoint ep(0, cfg, &packets);
  FlitChannel inj;
  ep.wire_injection(&inj, 1);
  Packet p;
  p.src_endpoint = 0;
  p.dst_endpoint = 3;
  p.length = 3;
  ep.try_enqueue(p);
  ep.try_enqueue(p);
  for (hm::noc::Cycle t = 0; t < 10; ++t) ep.inject(t);
  // Packet 1 uses VC0 (2 credits -> 2 flits then stall); it cannot finish,
  // and packet 2 cannot start because only the active packet injects.
  EXPECT_EQ(ep.flits_injected(), 2u);
  ep.receive_credit(0);
  ep.inject(11);
  EXPECT_EQ(ep.flits_injected(), 3u);  // tail flows after the credit
}

TEST(Endpoint, PendingFlitsTracksPartialInjection) {
  const SimConfig cfg = small_config();
  PacketTable packets;
  Endpoint ep(0, cfg, &packets);
  FlitChannel inj;
  ep.wire_injection(&inj, 1);
  Packet p;
  p.src_endpoint = 0;
  p.dst_endpoint = 3;
  p.length = 3;
  ep.try_enqueue(p);
  EXPECT_EQ(ep.pending_flits(), 3u);
  ep.inject(0);
  EXPECT_EQ(ep.pending_flits(), 2u);
}

TEST(Endpoint, SinkCountsOnlyWindowedPackets) {
  const SimConfig cfg = small_config();
  PacketTable packets;
  Endpoint ep(4, cfg, &packets);
  ep.set_measurement_window(100, 200);
  // Register the cold records the sink will look up by packet id.
  Packet before;
  before.src_endpoint = 0;
  before.dst_endpoint = 4;
  before.gen_time = 50;  // before the window
  Packet inside = before;
  inside.gen_time = 150;  // inside
  Flit tail;
  tail.tail = true;
  tail.packet_id = packets.add(before);
  ep.receive_flit(tail, 90);
  tail.packet_id = packets.add(inside);
  ep.receive_flit(tail, 190);
  EXPECT_EQ(ep.sink().packets_ejected, 2u);
  EXPECT_EQ(ep.sink().tagged_packets, 1u);
  EXPECT_EQ(ep.sink().tagged_latency_sum, 40u);
}

TEST(Endpoint, WiringValidation) {
  PacketTable packets;
  Endpoint ep(0, small_config(), &packets);
  FlitChannel ch;
  EXPECT_THROW(ep.wire_injection(nullptr, 1), std::invalid_argument);
  EXPECT_THROW(ep.wire_injection(&ch, 0), std::invalid_argument);
  EXPECT_THROW(Endpoint(0, small_config(), nullptr), std::invalid_argument);
}

// --- Router wiring -------------------------------------------------------------

TEST(Router, WiringValidation) {
  Graph g(2);
  g.add_edge(0, 1);
  const RoutingTables tables(g);
  SimConfig cfg;
  Router r(0, cfg, &tables);
  EXPECT_EQ(r.network_ports(), 1u);
  EXPECT_EQ(r.total_ports(), 3u);  // 1 network + 2 endpoint ports
  FlitChannel ch;
  CreditChannel cr;
  EXPECT_THROW(r.wire_output(9, &ch, 1), std::invalid_argument);
  EXPECT_THROW(r.wire_output(0, nullptr, 1), std::invalid_argument);
  EXPECT_THROW(r.wire_credit_return(0, &cr, 0), std::invalid_argument);
  EXPECT_NO_THROW(r.wire_output(0, &ch, 27));
  EXPECT_NO_THROW(r.wire_credit_return(0, &cr, 27));
}

TEST(Router, InvariantsHoldWhenIdle) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const RoutingTables tables(g);
  SimConfig cfg;
  Router r(1, cfg, &tables);
  std::string why;
  EXPECT_TRUE(r.invariants_ok(&why)) << why;
  EXPECT_EQ(r.buffered_flits(), 0u);
}

// --- Network construction edge cases --------------------------------------------

TEST(Network, SingleChipletWorks) {
  // One chiplet: no D2D links, local traffic between its two endpoints.
  hm::noc::Network net(Graph(1), SimConfig{});
  EXPECT_EQ(net.num_routers(), 1u);
  EXPECT_EQ(net.num_endpoints(), 2u);
  Packet p;
  p.src_endpoint = 0;
  p.dst_endpoint = 1;
  p.length = 4;
  ASSERT_TRUE(net.offer_packet(0, p));
  for (hm::noc::Cycle t = 0; t < 50; ++t) net.step(t);
  EXPECT_EQ(net.endpoint(1).sink().packets_ejected, 1u);
}

TEST(Network, RejectsTooManyEndpoints) {
  SimConfig cfg;
  cfg.endpoints_per_chiplet = 70000;
  EXPECT_THROW(hm::noc::Network(Graph(2), cfg), std::invalid_argument);
}

TEST(Network, MoreEndpointsPerChiplet) {
  Graph g(2);
  g.add_edge(0, 1);
  SimConfig cfg;
  cfg.endpoints_per_chiplet = 4;
  hm::noc::Network net(g, cfg);
  EXPECT_EQ(net.num_endpoints(), 8u);
  Packet p;
  p.src_endpoint = 1;
  p.dst_endpoint = 6;  // chiplet 1, local endpoint 2
  p.length = 2;
  ASSERT_TRUE(net.offer_packet(1, p));
  for (hm::noc::Cycle t = 0; t < 100; ++t) net.step(t);
  EXPECT_EQ(net.endpoint(6).sink().packets_ejected, 1u);
}

// --- Routing tables edge cases ---------------------------------------------------

TEST(RoutingTablesEdge, TwoNodeEscape) {
  Graph g(2);
  g.add_edge(0, 1);
  const RoutingTables t(g);
  const auto hop01 = t.escape_hop(0, 1, 0);
  EXPECT_EQ(g.neighbors(0)[hop01.port], 1u);
  const auto hop10 = t.escape_hop(1, 0, 0);
  EXPECT_EQ(g.neighbors(1)[hop10.port], 0u);
}

TEST(RoutingTablesEdge, StarGraphRoutesThroughHub) {
  Graph g(5);
  for (hm::graph::NodeId leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  const RoutingTables t(g);
  EXPECT_EQ(t.escape_root(), 0u);  // hub is the center
  const auto& ports = t.minimal_ports(1, 2);
  ASSERT_EQ(ports.size(), 1u);
  EXPECT_EQ(g.neighbors(1)[ports[0]], 0u);
  EXPECT_EQ(t.distance(1, 2), 2);
}

}  // namespace
