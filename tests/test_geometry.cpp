// Tests for the geometry substrate: rectangles, polygons, shared edges,
// placements (adjacency extraction, overlaps, bounding box) and the Fig. 5
// bump-sector layouts.
#include <gtest/gtest.h>

#include <stdexcept>

#include "geometry/bump_layout.hpp"
#include "geometry/placement.hpp"
#include "geometry/rect.hpp"

namespace {

using hm::geom::BumpSector;
using hm::geom::ChipletPlacement;
using hm::geom::Point;
using hm::geom::Polygon;
using hm::geom::Rect;
using hm::geom::SectorRole;

// --- Rect --------------------------------------------------------------------

TEST(Rect, BasicAccessors) {
  const Rect r{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r.left(), 1.0);
  EXPECT_DOUBLE_EQ(r.right(), 4.0);
  EXPECT_DOUBLE_EQ(r.bottom(), 2.0);
  EXPECT_DOUBLE_EQ(r.top(), 6.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.center().x, 2.5);
  EXPECT_DOUBLE_EQ(r.center().y, 4.0);
}

TEST(Rect, ValidateRejectsDegenerate) {
  EXPECT_THROW((Rect{0, 0, 0, 1}.validate()), std::invalid_argument);
  EXPECT_THROW((Rect{0, 0, 1, -1}.validate()), std::invalid_argument);
  EXPECT_NO_THROW((Rect{0, 0, 1, 1}.validate()));
}

TEST(Rect, OverlapsDetectsInterior) {
  const Rect a{0, 0, 2, 2};
  EXPECT_TRUE(a.overlaps(Rect{1, 1, 2, 2}));
  EXPECT_FALSE(a.overlaps(Rect{2, 0, 2, 2}));  // edge contact only
  EXPECT_FALSE(a.overlaps(Rect{3, 3, 1, 1}));
}

TEST(Rect, ContainsBoundaryPoints) {
  const Rect a{0, 0, 2, 2};
  EXPECT_TRUE(a.contains(Point{0, 0}));
  EXPECT_TRUE(a.contains(Point{2, 2}));
  EXPECT_TRUE(a.contains(Point{1, 1}));
  EXPECT_FALSE(a.contains(Point{2.1, 1}));
}

// --- shared_edge_length ------------------------------------------------------

TEST(SharedEdge, FullVerticalContact) {
  const Rect a{0, 0, 1, 2};
  const Rect b{1, 0, 1, 2};
  EXPECT_DOUBLE_EQ(shared_edge_length(a, b), 2.0);
  EXPECT_DOUBLE_EQ(shared_edge_length(b, a), 2.0);
}

TEST(SharedEdge, PartialHorizontalContact) {
  const Rect a{0, 0, 2, 1};
  const Rect b{1, 1, 2, 1};  // offset by half
  EXPECT_DOUBLE_EQ(shared_edge_length(a, b), 1.0);
}

TEST(SharedEdge, CornerContactIsZero) {
  const Rect a{0, 0, 1, 1};
  const Rect b{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(shared_edge_length(a, b), 0.0);
}

TEST(SharedEdge, SeparatedRectsAreZero) {
  const Rect a{0, 0, 1, 1};
  const Rect b{5, 0, 1, 1};
  EXPECT_DOUBLE_EQ(shared_edge_length(a, b), 0.0);
}

// --- Polygon -----------------------------------------------------------------

TEST(Polygon, RectArea) {
  const Polygon p = to_polygon(Rect{0, 0, 3, 2});
  EXPECT_DOUBLE_EQ(p.area(), 6.0);
  EXPECT_GT(p.signed_area(), 0.0);  // counter-clockwise
}

TEST(Polygon, TriangleArea) {
  const Polygon p{{{0, 0}, {2, 0}, {0, 2}}};
  EXPECT_DOUBLE_EQ(p.area(), 2.0);
}

TEST(Polygon, TrapezoidArea) {
  // Trapezoid with parallel sides 4 and 2, height 1.
  const Polygon p{{{0, 0}, {4, 0}, {3, 1}, {1, 1}}};
  EXPECT_DOUBLE_EQ(p.area(), 3.0);
}

// --- bounding_box ------------------------------------------------------------

TEST(BoundingBox, EnclosesAll) {
  const Rect bb = hm::geom::bounding_box(
      {Rect{0, 0, 1, 1}, Rect{2, -1, 1, 1}, Rect{-1, 3, 2, 1}});
  EXPECT_DOUBLE_EQ(bb.left(), -1.0);
  EXPECT_DOUBLE_EQ(bb.bottom(), -1.0);
  EXPECT_DOUBLE_EQ(bb.right(), 3.0);
  EXPECT_DOUBLE_EQ(bb.top(), 4.0);
}

TEST(BoundingBox, EmptyThrows) {
  EXPECT_THROW((void)hm::geom::bounding_box({}), std::invalid_argument);
}

// --- ChipletPlacement --------------------------------------------------------

ChipletPlacement two_by_two() {
  return ChipletPlacement{{Rect{0, 0, 1, 1}, Rect{1, 0, 1, 1},
                           Rect{0, 1, 1, 1}, Rect{1, 1, 1, 1}}};
}

TEST(Placement, AdjacencyOfTwoByTwo) {
  const auto g = two_by_two().adjacency_graph();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);  // square of 4 chiplets: 4 shared edges
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));  // diagonal: corner contact only
}

TEST(Placement, OverlapDetection) {
  ChipletPlacement ok = two_by_two();
  EXPECT_TRUE(ok.is_overlap_free());
  ChipletPlacement bad{{Rect{0, 0, 2, 2}, Rect{1, 1, 2, 2}}};
  EXPECT_FALSE(bad.is_overlap_free());
}

TEST(Placement, ContactLengthAndCenterDistance) {
  const auto p = two_by_two();
  EXPECT_DOUBLE_EQ(p.contact_length(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.contact_length(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(p.center_distance(0, 1), 1.0);
}

TEST(Placement, UtilizationOfFullTiling) {
  EXPECT_NEAR(two_by_two().utilization(), 1.0, 1e-12);
}

TEST(Placement, MinContactFiltersShortEdges) {
  // Two rects sharing only 0.1 of their boundary.
  ChipletPlacement p{{Rect{0, 0, 1, 1}, Rect{1, 0.9, 1, 1}}};
  EXPECT_EQ(p.adjacency_graph(0.05).edge_count(), 1u);
  EXPECT_EQ(p.adjacency_graph(0.2).edge_count(), 0u);
}

TEST(Placement, RejectsDegenerateChiplet) {
  EXPECT_THROW(ChipletPlacement({Rect{0, 0, 0, 1}}), std::invalid_argument);
}

TEST(Placement, IndexOutOfRangeThrows) {
  const auto p = two_by_two();
  EXPECT_THROW((void)p.chiplet(9), std::out_of_range);
  EXPECT_THROW((void)p.contact_length(0, 9), std::out_of_range);
}

TEST(Placement, AsciiRenderingHasContent) {
  const auto art = two_by_two().to_ascii(16);
  EXPECT_NE(art.find('0'), std::string::npos);
  EXPECT_NE(art.find('\n'), std::string::npos);
}

// --- Bump layouts (Fig. 5) ---------------------------------------------------

TEST(BumpLayout, GridSectorCountAndRoles) {
  const auto sectors = hm::geom::grid_bump_layout(4.0, 2.0);
  ASSERT_EQ(sectors.size(), 5u);
  EXPECT_EQ(sectors[0].role, SectorRole::kPower);
}

TEST(BumpLayout, GridSectorAreasMatchFormulas) {
  const double wc = 4.0, wp = 2.0;
  const auto sectors = hm::geom::grid_bump_layout(wc, wp);
  const double expected_link = (wc * wc - wp * wp) / 4.0;
  double total = 0.0;
  for (const auto& s : sectors) {
    total += s.area();
    if (s.role != SectorRole::kPower) {
      EXPECT_NEAR(s.area(), expected_link, 1e-12);
    } else {
      EXPECT_NEAR(s.area(), wp * wp, 1e-12);
    }
  }
  EXPECT_NEAR(total, wc * wc, 1e-12);  // sectors tile the chiplet
}

TEST(BumpLayout, GridMaxBumpDistanceEqualsFrame) {
  const double wc = 4.0, wp = 2.0;
  for (const auto& s : hm::geom::grid_bump_layout(wc, wp)) {
    if (s.role == SectorRole::kPower) continue;
    EXPECT_NEAR(hm::geom::max_bump_to_edge_distance(s, wc, wc),
                (wc - wp) / 2.0, 1e-12);
  }
}

TEST(BumpLayout, HexSectorAreasAllEqual) {
  const double wc = 4.3818, hc = 3.6515, db = 0.7303;
  const auto sectors = hm::geom::hex_bump_layout(wc, hc, db);
  ASSERT_EQ(sectors.size(), 7u);
  double total = 0.0;
  double link_area = -1.0;
  for (const auto& s : sectors) {
    total += s.area();
    if (s.role == SectorRole::kPower) continue;
    if (link_area < 0) link_area = s.area();
    EXPECT_NEAR(s.area(), link_area, 1e-9);
  }
  EXPECT_NEAR(total, wc * hc, 1e-9);
}

TEST(BumpLayout, HexMaxBumpDistanceEqualsDb) {
  const double wc = 4.3818, hc = 3.6515, db = 0.7303;
  for (const auto& s : hm::geom::hex_bump_layout(wc, hc, db)) {
    if (s.role == SectorRole::kPower) continue;
    EXPECT_NEAR(hm::geom::max_bump_to_edge_distance(s, wc, hc), db, 1e-12);
  }
}

TEST(BumpLayout, InvalidParamsRejected) {
  EXPECT_THROW((void)hm::geom::grid_bump_layout(2.0, 3.0),
               std::invalid_argument);
  EXPECT_THROW((void)hm::geom::hex_bump_layout(4.0, 3.0, 2.0),
               std::invalid_argument);
}

TEST(BumpLayout, PowerSectorHasNoEdgeDistance) {
  const auto sectors = hm::geom::grid_bump_layout(4.0, 2.0);
  EXPECT_THROW(
      (void)hm::geom::max_bump_to_edge_distance(sectors[0], 4.0, 4.0),
      std::invalid_argument);
}

TEST(BumpLayout, RoleNames) {
  EXPECT_EQ(hm::geom::to_string(SectorRole::kPower), "power");
  EXPECT_EQ(hm::geom::to_string(SectorRole::kLinkNorthWest), "NW");
}

}  // namespace
