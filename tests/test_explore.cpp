// Tests for the design-space exploration engine: thread-pool semantics,
// stable hashing, the result cache, and — the load-bearing guarantee —
// that multi-threaded sweeps are bit-identical to single-threaded ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>

#include "core/arrangement.hpp"
#include "core/evaluator.hpp"
#include "explore/export.hpp"
#include "explore/hash.hpp"
#include "explore/result_cache.hpp"
#include "explore/sweep.hpp"
#include "explore/thread_pool.hpp"
#include "noc/rng.hpp"

namespace {

using namespace hm;
using namespace hm::explore;

// Short simulation windows: the determinism guarantees under test are
// independent of window length, so keep the suite fast.
core::EvaluationParams tiny_sim_params() {
  core::EvaluationParams p;
  p.latency_warmup = 200;
  p.latency_measure = 500;
  p.latency_drain_limit = 30000;
  p.throughput_warmup = 300;
  p.throughput_measure = 300;
  return p;
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr int kJobs = 100;
  std::vector<std::atomic<int>> runs(kJobs);
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back([&runs, i] { runs[i].fetch_add(1); });
  }
  pool.run_batch(jobs);
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(runs[i].load(), 1);
}

TEST(ThreadPool, SingleThreadRunsSequentiallyInOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back([&order, i] { order.push_back(i); });
  }
  pool.run_batch(jobs);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, NestedBatchesDoNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> inner_runs{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.push_back([&pool, &inner_runs] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 4; ++j) {
        inner.push_back([&inner_runs] { inner_runs.fetch_add(1); });
      }
      pool.run_batch(inner);
    });
  }
  pool.run_batch(outer);
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] {});
  jobs.push_back([]() { throw std::runtime_error("boom"); });
  jobs.push_back([] {});
  EXPECT_THROW(pool.run_batch(jobs), std::runtime_error);
}

// ----------------------------------------------------------- derive_seed

TEST(DeriveSeed, DeterministicAndSaltSensitive) {
  EXPECT_EQ(noc::derive_seed(42, 7), noc::derive_seed(42, 7));
  EXPECT_NE(noc::derive_seed(42, 7), noc::derive_seed(42, 8));
  EXPECT_NE(noc::derive_seed(42, 7), noc::derive_seed(43, 7));
  // Consecutive salts must give well-spread seeds (no accidental reuse).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(noc::derive_seed(42, i));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

// ----------------------------------------------------------------- hashes

TEST(StableHashing, ArrangementIdentityAndSensitivity) {
  const auto a1 = core::make_arrangement(core::ArrangementType::kHexaMesh, 19);
  const auto a2 = core::make_arrangement(core::ArrangementType::kHexaMesh, 19);
  const auto b = core::make_arrangement(core::ArrangementType::kHexaMesh, 20);
  const auto c = core::make_arrangement(core::ArrangementType::kGrid, 19);
  EXPECT_EQ(hash_arrangement(a1), hash_arrangement(a2));
  EXPECT_NE(hash_arrangement(a1), hash_arrangement(b));
  EXPECT_NE(hash_arrangement(a1), hash_arrangement(c));
}

TEST(StableHashing, ParamsSensitivity) {
  core::EvaluationParams p;
  core::EvaluationParams q;
  EXPECT_EQ(hash_analytic_params(p), hash_analytic_params(q));
  EXPECT_EQ(hash_simulation_params(p), hash_simulation_params(q));
  q.bump_pitch_mm *= 2.0;
  EXPECT_NE(hash_analytic_params(p), hash_analytic_params(q));
  q = p;
  q.sim.seed += 1;  // seeds matter for simulation, not analytic
  EXPECT_EQ(hash_analytic_params(p), hash_analytic_params(q));
  EXPECT_NE(hash_simulation_params(p), hash_simulation_params(q));
}

TEST(StableHashing, TrafficSensitivity) {
  noc::TrafficSpec a;
  noc::TrafficSpec b;
  EXPECT_EQ(hash_traffic(a), hash_traffic(b));
  b.pattern = noc::TrafficPattern::kHotspot;
  EXPECT_NE(hash_traffic(a), hash_traffic(b));
  noc::TrafficSpec c = b;
  c.hotspots = {0, 3};
  EXPECT_NE(hash_traffic(b), hash_traffic(c));
}

// ------------------------------------------------------------ ResultCache

TEST(ResultCache, HitReturnsIdenticalResult) {
  ResultCache cache;
  const auto arr = core::make_arrangement(core::ArrangementType::kGrid, 16);
  const auto r = core::evaluate_analytic(arr);
  const std::uint64_t key = hash_arrangement(arr);
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, r);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->chiplet_count, r.chiplet_count);
  EXPECT_EQ(hit->diameter, r.diameter);
  EXPECT_EQ(hit->bisection_links, r.bisection_links);
  EXPECT_DOUBLE_EQ(hit->per_link_bandwidth_bps, r.per_link_bandwidth_bps);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, GetOrComputeComputesOnce) {
  ResultCache cache;
  int computed = 0;
  auto compute = [&] {
    ++computed;
    return core::evaluate_analytic(
        core::make_arrangement(core::ArrangementType::kGrid, 9));
  };
  const auto a = cache.get_or_compute(123, compute);
  const auto b = cache.get_or_compute(123, compute);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(a.diameter, b.diameter);
}

// ------------------------------------------------------------ SweepEngine

SweepSpec small_analytic_spec() {
  SweepSpec spec;
  spec.types = {core::ArrangementType::kGrid,
                core::ArrangementType::kHexaMesh};
  for (std::size_t n = 2; n <= 13; ++n) spec.chiplet_counts.push_back(n);
  spec.simulate = false;
  return spec;
}

SweepSpec small_sim_spec() {
  SweepSpec spec;
  spec.types = {core::ArrangementType::kGrid,
                core::ArrangementType::kHexaMesh};
  spec.chiplet_counts = {4, 7, 9};
  spec.param_grid = {tiny_sim_params()};
  return spec;
}

TEST(SweepEngine, AnalyticSweepByteIdenticalAcrossThreadCounts) {
  // >= 20 design points, evaluated at 1 and 4 threads.
  SweepEngine::Options one;
  one.threads = 1;
  SweepEngine::Options four;
  four.threads = 4;
  const auto spec = small_analytic_spec();
  ASSERT_GE(spec.points().size(), 20u);
  const auto csv1 = to_csv(SweepEngine(one).run(spec));
  const auto csv4 = to_csv(SweepEngine(four).run(spec));
  EXPECT_EQ(csv1, csv4);
  EXPECT_NE(csv1.find("hexamesh"), std::string::npos);
}

TEST(SweepEngine, SimulatedSweepByteIdenticalAcrossThreadCounts) {
  SweepEngine::Options one;
  one.threads = 1;
  SweepEngine::Options three;
  three.threads = 3;
  const auto spec = small_sim_spec();
  const auto csv1 = to_csv(SweepEngine(one).run(spec));
  const auto csv3 = to_csv(SweepEngine(three).run(spec));
  EXPECT_EQ(csv1, csv3);
  const auto json1 = to_json(SweepEngine(one).run(spec));
  const auto json3 = to_json(SweepEngine(three).run(spec));
  EXPECT_EQ(json1, json3);
}

TEST(SweepEngine, SecondRunServedFromCache) {
  SweepEngine::Options opt;
  opt.threads = 2;
  SweepEngine engine(opt);
  const auto spec = small_sim_spec();
  const auto first = engine.run(spec);
  const auto second = engine.run(spec);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(second[i].from_cache) << "record " << i;
    EXPECT_DOUBLE_EQ(second[i].result.saturation_fraction,
                     first[i].result.saturation_fraction);
    EXPECT_DOUBLE_EQ(second[i].result.zero_load_latency_cycles,
                     first[i].result.zero_load_latency_cycles);
  }
  // And the export is identical either way (cache flags are not exported).
  EXPECT_EQ(to_csv(first), to_csv(second));
}

TEST(SweepEngine, AnalyticResultSharedAcrossTrafficAblations) {
  SweepEngine::Options opt;
  opt.threads = 1;
  SweepEngine engine(opt);
  SweepSpec spec;
  spec.types = {core::ArrangementType::kGrid};
  spec.chiplet_counts = {4};
  spec.param_grid = {tiny_sim_params()};
  noc::TrafficSpec uniform;
  noc::TrafficSpec bitcomp;
  bitcomp.pattern = noc::TrafficPattern::kBitComplement;
  spec.traffic_grid = {uniform, bitcomp};
  const auto records = engine.run(spec);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].error.empty());
  EXPECT_TRUE(records[1].error.empty());
  // One analytic entry + two full entries: the analytic half was shared.
  EXPECT_EQ(engine.cache().size(), 3u);
  EXPECT_DOUBLE_EQ(records[0].result.link_area_mm2,
                   records[1].result.link_area_mm2);
}

TEST(SweepEngine, ProgressCallbackCoversEveryJob) {
  SweepEngine::Options opt;
  opt.threads = 3;
  std::vector<std::size_t> completions;
  opt.on_progress = [&](const SweepProgress& p) {
    completions.push_back(p.completed);
    EXPECT_EQ(p.total, 24u);
    ASSERT_NE(p.last, nullptr);
  };
  SweepEngine engine(opt);
  const auto records = engine.run(small_analytic_spec());
  EXPECT_EQ(records.size(), 24u);
  ASSERT_EQ(completions.size(), 24u);
  // Serialized callback sees a strictly increasing completion count.
  for (std::size_t i = 0; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i], i + 1);
  }
}

TEST(SweepEngine, ErrorsAreRecordedNotThrown) {
  SweepSpec spec;
  spec.types = {core::ArrangementType::kGrid};
  spec.chiplet_counts = {0};  // make_arrangement rejects n = 0
  spec.param_grid = {tiny_sim_params()};
  SweepEngine::Options opt;
  opt.threads = 1;
  const auto records = SweepEngine(opt).run(spec);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].error.empty());
}

TEST(SweepEngine, PerJobSeedsAreDerivedAndStable) {
  const auto spec = small_sim_spec();
  const auto points1 = spec.points();
  const auto points2 = spec.points();
  ASSERT_EQ(points1.size(), points2.size());
  std::set<unsigned long long> seeds;
  for (std::size_t i = 0; i < points1.size(); ++i) {
    EXPECT_EQ(points1[i].params.sim.seed, points2[i].params.sim.seed);
    EXPECT_EQ(points1[i].params.sim.seed,
              noc::derive_seed(spec.base_seed, i));
    seeds.insert(points1[i].params.sim.seed);
  }
  EXPECT_EQ(seeds.size(), points1.size());
}

// --------------------------------------------- parallel evaluate() probes

TEST(ParallelEvaluate, ExecutorMatchesSequentialBitForBit) {
  const auto arr = core::make_arrangement(core::ArrangementType::kHexaMesh, 7);
  const auto params = tiny_sim_params();
  const auto seq = core::evaluate(arr, params);
  ThreadPool pool(4);
  const auto par = core::evaluate(arr, params, {}, &pool);
  EXPECT_EQ(par.zero_load_latency_cycles, seq.zero_load_latency_cycles);
  EXPECT_EQ(par.saturation_fraction, seq.saturation_fraction);
  EXPECT_EQ(par.saturation_throughput_bps, seq.saturation_throughput_bps);
  EXPECT_EQ(par.latency_run_drained, seq.latency_run_drained);
}

TEST(ParallelEvaluate, PerProbeSeedsStayOrderIndependent) {
  const auto arr = core::make_arrangement(core::ArrangementType::kGrid, 9);
  noc::SaturationSearchOptions opts;
  opts.warmup = 300;
  opts.measure = 300;
  opts.per_probe_seeds = true;
  noc::SimConfig cfg;
  const auto seq = noc::find_saturation(arr.graph(), cfg, opts);
  ThreadPool pool(4);
  const auto par = noc::find_saturation(arr.graph(), cfg, opts, {}, &pool);
  EXPECT_EQ(par.saturation_flit_rate, seq.saturation_flit_rate);
  EXPECT_EQ(par.accepted_flit_rate, seq.accepted_flit_rate);
}

TEST(ParallelEvaluate, MeasurementSelectionFlags) {
  const auto arr = core::make_arrangement(core::ArrangementType::kGrid, 4);
  auto params = tiny_sim_params();
  params.measure_saturation = false;
  const auto lat_only = core::evaluate(arr, params);
  EXPECT_GT(lat_only.zero_load_latency_cycles, 0.0);
  EXPECT_EQ(lat_only.saturation_fraction, 0.0);
  params = tiny_sim_params();
  params.measure_latency = false;
  const auto sat_only = core::evaluate(arr, params);
  EXPECT_EQ(sat_only.zero_load_latency_cycles, 0.0);
  EXPECT_GT(sat_only.saturation_fraction, 0.0);
}

// ----------------------------------------------------------------- export

TEST(Export, CsvShapeAndJsonWellFormedness) {
  SweepEngine::Options opt;
  opt.threads = 1;
  SweepSpec spec = small_analytic_spec();
  spec.chiplet_counts = {4, 9};
  const auto records = SweepEngine(opt).run(spec);
  const auto csv = to_csv(records);
  // Header + one line per record.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), records.size() + 1);
  EXPECT_EQ(csv.find("index,arrangement,regularity,chiplets"), 0u);
  const auto json = to_json(records);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            static_cast<long>(records.size()));
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'),
            static_cast<long>(records.size()));
  EXPECT_NE(json.find("\"arrangement\": \"grid\""), std::string::npos);
}

}  // namespace
