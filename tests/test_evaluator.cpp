// Tests for the end-to-end evaluator (Sec. VI pipeline): analytic fields,
// link-model wiring, full-global-bandwidth accounting and the cycle-accurate
// path on small designs.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/grid.hpp"
#include "core/hexamesh.hpp"
#include "core/proxies.hpp"

namespace {

using namespace hm::core;

EvaluationParams fast_sim_params() {
  EvaluationParams p;
  p.latency_warmup = 500;
  p.latency_measure = 3000;
  p.latency_drain_limit = 100000;
  p.throughput_warmup = 2000;
  p.throughput_measure = 3000;
  return p;
}

TEST(EvaluatorAnalytic, GridFieldsAt100) {
  const auto arr = make_grid(100);
  const auto r = evaluate_analytic(arr);
  EXPECT_EQ(r.chiplet_count, 100u);
  EXPECT_EQ(r.regularity, RegularityClass::kRegular);
  EXPECT_EQ(r.diameter, 18);
  EXPECT_EQ(r.bisection_links, 10u);
  EXPECT_DOUBLE_EQ(r.chiplet_area_mm2, 8.0);
  EXPECT_DOUBLE_EQ(r.link_area_mm2, 0.6 * 8.0 / 4.0);
  // 41 data wires * 16 GHz per link; x 200 endpoints for full global BW.
  EXPECT_DOUBLE_EQ(r.per_link_bandwidth_bps, 41.0 * 16e9);
  EXPECT_DOUBLE_EQ(r.full_global_bandwidth_bps, 200.0 * 41.0 * 16e9);
}

TEST(EvaluatorAnalytic, HexameshUsesHexShape) {
  const auto arr = make_hexamesh(91);
  const auto r = evaluate_analytic(arr);
  EXPECT_DOUBLE_EQ(r.chiplet_area_mm2, 800.0 / 91.0);
  EXPECT_NEAR(r.link_area_mm2, 0.6 * (800.0 / 91.0) / 6.0, 1e-12);
  EXPECT_EQ(r.diameter, 10);  // 2r with r = 5
  EXPECT_EQ(r.bisection_links, 21u);  // 4r + 1
}

TEST(EvaluatorAnalytic, IrregularUsesPartitioner) {
  const auto arr = make_grid(13);  // irregular
  const auto r = evaluate_analytic(arr);
  EXPECT_EQ(r.regularity, RegularityClass::kIrregular);
  EXPECT_GE(r.bisection_links, 3u);
  EXPECT_LE(r.bisection_links, 6u);
}

TEST(EvaluatorAnalytic, HexameshBeatsGridOnProxies) {
  const auto grid = evaluate_analytic(make_grid(100));
  const auto hexa = evaluate_analytic(make_hexamesh(100));
  EXPECT_LT(hexa.diameter, grid.diameter);
  EXPECT_GT(hexa.bisection_links, grid.bisection_links);
  // ...but pays with a lower per-link bandwidth (Sec. VI-C).
  EXPECT_LT(hexa.per_link_bandwidth_bps, grid.per_link_bandwidth_bps);
}

TEST(EvaluatorAnalytic, HandOptimizedSmallN) {
  EvaluationParams p;
  p.hand_optimized_small_n = true;
  const auto arr = make_grid(2);  // two chiplets, one link, max degree 1
  const auto r = evaluate_analytic(arr, p);
  EXPECT_DOUBLE_EQ(r.link_area_mm2, 0.6 * 400.0);
  EvaluationParams q;  // default: general formula
  const auto r2 = evaluate_analytic(arr, q);
  EXPECT_DOUBLE_EQ(r2.link_area_mm2, 0.6 * 400.0 / 4.0);
}

TEST(Evaluator, FullPipelineOnSmallGrid) {
  const auto arr = make_grid(9);
  const auto r = evaluate(arr, fast_sim_params());
  EXPECT_TRUE(r.latency_run_drained);
  EXPECT_GT(r.zero_load_latency_cycles, 30.0);   // at least one hop
  EXPECT_LT(r.zero_load_latency_cycles, 200.0);  // 3x3 grid is small
  EXPECT_GT(r.saturation_fraction, 0.05);
  EXPECT_LE(r.saturation_fraction, 1.0);
  EXPECT_NEAR(r.saturation_throughput_bps,
              r.saturation_fraction * r.full_global_bandwidth_bps, 1e-3);
}

TEST(Evaluator, SingleChipletRejected) {
  EXPECT_THROW((void)evaluate(make_grid(1), fast_sim_params()),
               std::invalid_argument);
  EXPECT_NO_THROW((void)evaluate_analytic(make_grid(1)));
}

TEST(Evaluator, ZeroLoadLatencyScalesWithDiameter) {
  const auto small = evaluate(make_grid(4), fast_sim_params());
  const auto large = evaluate(make_grid(25), fast_sim_params());
  EXPECT_GT(large.zero_load_latency_cycles, small.zero_load_latency_cycles);
}

TEST(Evaluator, LinkAreaForHonorsSmallNFlag) {
  const auto arr = make_hexamesh(7);
  EvaluationParams p;
  p.hand_optimized_small_n = true;
  // Regular HM with 1 ring: center has degree 6.
  EXPECT_DOUBLE_EQ(link_area_for(arr, 14.0, p), 0.6 * 14.0 / 6.0);
  const auto big = make_hexamesh(19);
  // N > 7: flag must not change anything.
  EXPECT_DOUBLE_EQ(link_area_for(big, 10.0, p), 0.6 * 10.0 / 6.0);
}

}  // namespace
