// Tests for the routing tables: minimal next hops lie on shortest paths, and
// the up*/down* escape routing terminates for every (src, dst) pair, never
// ascends after descending (the deadlock-freedom invariant) and keeps paths
// reasonably short.
#include <gtest/gtest.h>

#include "core/brickwall.hpp"
#include "core/grid.hpp"
#include "core/hexamesh.hpp"
#include "graph/algorithms.hpp"
#include "noc/routing.hpp"

namespace {

using hm::graph::Graph;
using hm::graph::NodeId;
using hm::noc::EscapeHop;
using hm::noc::RoutingTables;

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(RoutingTables, RejectsDisconnectedAndEmpty) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(RoutingTables{g}, std::invalid_argument);
  EXPECT_THROW(RoutingTables{Graph(0)}, std::invalid_argument);
}

TEST(RoutingTables, SingleVertexGraphIsFine) {
  const RoutingTables t{Graph(1)};
  EXPECT_EQ(t.num_ports(0), 0u);
}

TEST(RoutingTables, DistancesMatchBfs) {
  const auto arr = hm::core::make_hexamesh(19);
  const RoutingTables t(arr.graph());
  for (NodeId v = 0; v < arr.graph().node_count(); ++v) {
    const auto dist = hm::graph::bfs_distances(arr.graph(), v);
    for (NodeId u = 0; u < arr.graph().node_count(); ++u) {
      EXPECT_EQ(t.distance(v, u), dist[u]);
    }
  }
}

TEST(RoutingTables, MinimalPortsDecreaseDistance) {
  const auto arr = hm::core::make_grid(16);
  const Graph& g = arr.graph();
  const RoutingTables t(g);
  for (NodeId cur = 0; cur < g.node_count(); ++cur) {
    const auto nbrs = g.neighbors(cur);
    for (NodeId dst = 0; dst < g.node_count(); ++dst) {
      if (cur == dst) continue;
      const auto& ports = t.minimal_ports(cur, dst);
      ASSERT_FALSE(ports.empty()) << "no minimal port " << cur << "->" << dst;
      for (auto p : ports) {
        EXPECT_EQ(t.distance(nbrs[p], dst), t.distance(cur, dst) - 1);
      }
    }
  }
}

TEST(RoutingTables, MinimalPortsAreExhaustive) {
  const auto arr = hm::core::make_brickwall(25);
  const Graph& g = arr.graph();
  const RoutingTables t(g);
  for (NodeId cur = 0; cur < g.node_count(); ++cur) {
    const auto nbrs = g.neighbors(cur);
    for (NodeId dst = 0; dst < g.node_count(); ++dst) {
      if (cur == dst) continue;
      std::size_t count = 0;
      for (std::size_t p = 0; p < nbrs.size(); ++p) {
        if (t.distance(nbrs[p], dst) == t.distance(cur, dst) - 1) ++count;
      }
      EXPECT_EQ(t.minimal_ports(cur, dst).size(), count);
    }
  }
}

TEST(RoutingTables, PathGraphMinimalRouting) {
  const Graph g = path_graph(5);
  const RoutingTables t(g);
  // From node 1 toward node 4 the only minimal port leads to node 2.
  const auto& ports = t.minimal_ports(1, 4);
  ASSERT_EQ(ports.size(), 1u);
  EXPECT_EQ(g.neighbors(1)[ports[0]], 2u);
}

/// Follows escape hops from src (phase 0) to dst; returns hop count and
/// verifies the up-then-down discipline. Fails the test on any violation.
int follow_escape(const Graph& g, const RoutingTables& t, NodeId src,
                  NodeId dst) {
  NodeId cur = src;
  std::uint8_t phase = 0;
  int hops = 0;
  const int limit = 4 * static_cast<int>(g.node_count());
  while (cur != dst) {
    const EscapeHop hop = t.escape_hop(cur, dst, phase);
    const NodeId next = g.neighbors(cur)[hop.port];
    // Deadlock-freedom invariant: phase never goes 1 -> 0.
    EXPECT_GE(hop.next_phase, phase) << src << "->" << dst << " at " << cur;
    cur = next;
    phase = hop.next_phase;
    if (++hops > limit) {
      ADD_FAILURE() << "escape routing loop " << src << "->" << dst;
      return hops;
    }
  }
  return hops;
}

class EscapeRoutingTest : public ::testing::TestWithParam<int> {};

TEST_P(EscapeRoutingTest, TerminatesForAllPairsOnAllArrangements) {
  const auto n = static_cast<std::size_t>(GetParam());
  for (const auto& arr :
       {hm::core::make_grid(n), hm::core::make_brickwall(n),
        hm::core::make_hexamesh(n)}) {
    const Graph& g = arr.graph();
    const RoutingTables t(g);
    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId d = 0; d < g.node_count(); ++d) {
        if (s == d) continue;
        const int hops = follow_escape(g, t, s, d);
        // An up*/down* path is at most up-to-root + down-from-root.
        EXPECT_LE(hops, 2 * hm::graph::diameter(g) + 2)
            << arr.name() << " " << s << "->" << d;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EscapeRoutingTest,
                         ::testing::Values(2, 5, 9, 16, 25, 37, 50),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param);
                         });

TEST(EscapeRouting, PathsAreNearMinimalOnHexamesh) {
  // On the radius-3 HexaMesh, escape paths should average well under 2x the
  // shortest distance (the tree root sits at the center).
  const auto arr = hm::core::make_hexamesh(37);
  const Graph& g = arr.graph();
  const RoutingTables t(g);
  double total_escape = 0.0, total_min = 0.0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId d = 0; d < g.node_count(); ++d) {
      if (s == d) continue;
      total_escape += follow_escape(g, t, s, d);
      total_min += t.distance(s, d);
    }
  }
  EXPECT_LT(total_escape / total_min, 1.6);
}

TEST(EscapeRouting, RootIsGraphCenter) {
  const auto arr = hm::core::make_hexamesh_regular(2);
  const RoutingTables t(arr.graph());
  EXPECT_EQ(t.escape_root(), 0u);  // id 0 is the central chiplet
}

TEST(EscapeRouting, UpHopsNeverFollowDownHops) {
  // Stronger check on a semi-regular grid: enumerate full escape paths and
  // assert monotone phase.
  const auto arr = hm::core::make_grid(12);
  const Graph& g = arr.graph();
  const RoutingTables t(g);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId d = 0; d < g.node_count(); ++d) {
      if (s != d) follow_escape(g, t, s, d);
    }
  }
}

}  // namespace
