// Pins fault injection & degraded-mode resilience:
//
//  - FaultPlan validation rejects malformed schedules up front (unordered
//    times, bad ids, duplicate kills, repairs of healthy components, and
//    disconnecting cuts unless allow_partition is set).
//  - An armed-but-empty plan is bit-identical to an unarmed run: arming the
//    controller must cost exactly nothing in behavior.
//  - A mid-run link kill on the paper's HexaMesh completes without deadlock
//    or flit leak (conservation: injected == ejected + in-network +
//    dropped), deterministically across skip-idle modes, reconvergence
//    windows and repeated runs.
//  - Recovery metrics behave: finite recovery time at a survivable kill,
//    monotone in the recovery threshold, degraded rate <= pre-fault rate.
//  - Router kills and allowed partitions power endpoints down (offered
//    traffic suppressed, never leaked) and repairs bring them back.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/arrangement.hpp"
#include "core/evaluator.hpp"
#include "explore/export.hpp"
#include "explore/sweep.hpp"
#include "explore/thread_pool.hpp"
#include "faults/controller.hpp"
#include "faults/fault_plan.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "noc/simulator.hpp"

namespace {

using hm::core::ArrangementType;
using hm::core::make_arrangement;
using hm::faults::FaultEvent;
using hm::faults::FaultKind;
using hm::faults::FaultPlan;
using hm::faults::FaultScenarioSpec;
using hm::faults::ResilienceStats;
using hm::graph::Graph;
using hm::graph::NodeId;
using hm::noc::Cycle;
using hm::noc::SimConfig;
using hm::noc::Simulator;

/// Path graph 0-1-2: every edge is a bridge, node 1 is a cut vertex.
Graph path3() {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return g;
}

FaultPlan kill_link_plan(NodeId a, NodeId b, Cycle at, Cycle repair_at = 0) {
  FaultPlan plan;
  plan.events.push_back(FaultEvent{at, FaultKind::kLinkKill, a, b});
  if (repair_at > 0) {
    plan.events.push_back(FaultEvent{repair_at, FaultKind::kLinkRepair, a, b});
  }
  return plan;
}

/// First edge of `g` whose removal keeps the graph connected.
std::pair<NodeId, NodeId> first_non_bridge(const Graph& g) {
  const auto bridges = hm::graph::bridges(g);
  for (const auto& e : g.edges()) {
    bool is_bridge = false;
    for (const auto& b : bridges) {
      if (b == e) {
        is_bridge = true;
        break;
      }
    }
    if (!is_bridge) return e;
  }
  throw std::logic_error("no non-bridge edge");
}

/// First router whose removal keeps the remaining graph connected.
NodeId first_removable_router(const Graph& g) {
  for (NodeId r = 0; r < g.node_count(); ++r) {
    FaultPlan plan;
    plan.events.push_back(FaultEvent{100, FaultKind::kRouterKill, r, 0});
    try {
      plan.validate(g);
      return r;
    } catch (const std::invalid_argument&) {
    }
  }
  throw std::logic_error("no removable router");
}

TEST(FaultPlanValidation, RejectsMalformedSchedules) {
  const Graph g = make_arrangement(ArrangementType::kHexaMesh, 7).graph();
  const auto edge = first_non_bridge(g);

  {  // unordered times
    FaultPlan plan;
    plan.events.push_back(
        FaultEvent{200, FaultKind::kLinkKill, edge.first, edge.second});
    plan.events.push_back(
        FaultEvent{100, FaultKind::kLinkKill, edge.first, edge.second});
    EXPECT_THROW(plan.validate(g), std::invalid_argument);
  }
  {  // ids out of range
    EXPECT_THROW(kill_link_plan(0, 99, 100).validate(g),
                 std::invalid_argument);
    FaultPlan plan;
    plan.events.push_back(FaultEvent{100, FaultKind::kRouterKill, 99, 0});
    EXPECT_THROW(plan.validate(g), std::invalid_argument);
  }
  {  // kill of a link that does not exist / duplicate kill
    NodeId a = 0, b = 0;
    bool found = false;
    for (NodeId u = 0; u < g.node_count() && !found; ++u) {
      for (NodeId v = u + 1; v < g.node_count() && !found; ++v) {
        if (!g.has_edge(u, v)) {
          a = u;
          b = v;
          found = true;
        }
      }
    }
    ASSERT_TRUE(found);
    EXPECT_THROW(kill_link_plan(a, b, 100).validate(g),
                 std::invalid_argument);

    FaultPlan dup = kill_link_plan(edge.first, edge.second, 100);
    dup.events.push_back(
        FaultEvent{300, FaultKind::kLinkKill, edge.first, edge.second});
    dup.allow_partition = true;  // isolate the duplicate-kill rule
    EXPECT_THROW(dup.validate(g), std::invalid_argument);
  }
  {  // repair of a healthy link
    FaultPlan plan;
    plan.events.push_back(
        FaultEvent{100, FaultKind::kLinkRepair, edge.first, edge.second});
    EXPECT_THROW(plan.validate(g), std::invalid_argument);
  }
  // A well-formed kill+repair schedule passes.
  EXPECT_NO_THROW(
      kill_link_plan(edge.first, edge.second, 100, 400).validate(g));
}

TEST(FaultPlanValidation, BridgeCutsNeedAllowPartition) {
  const Graph g = path3();
  FaultPlan plan = kill_link_plan(0, 1, 100);
  EXPECT_THROW(plan.validate(g), std::invalid_argument);
  plan.allow_partition = true;
  EXPECT_NO_THROW(plan.validate(g));

  FaultPlan cut_vertex;
  cut_vertex.events.push_back(FaultEvent{100, FaultKind::kRouterKill, 1, 0});
  EXPECT_THROW(cut_vertex.validate(g), std::invalid_argument);
  cut_vertex.allow_partition = true;
  EXPECT_NO_THROW(cut_vertex.validate(g));
}

TEST(FaultScenario, GeneratedPlansValidateAndAreDeterministic) {
  const Graph g = make_arrangement(ArrangementType::kHexaMesh, 19).graph();
  FaultScenarioSpec spec;
  spec.single_link_kills = 3;
  spec.storm_kills = 4;
  spec.seed = 42;
  spec.validate();

  const auto plans = spec.plans_for(g);
  ASSERT_EQ(plans.size(), 4u);  // 3 single kills + 1 storm
  for (const FaultPlan& plan : plans) {
    EXPECT_NO_THROW(plan.validate(g)) << plan.describe();
  }
  EXPECT_EQ(plans, spec.plans_for(g));  // deterministic in (spec, graph)

  FaultScenarioSpec other = spec;
  other.seed = 43;
  EXPECT_NE(plans, other.plans_for(g));  // and seed-sensitive
}

/// Everything observable about a resilience run.
struct Observed {
  ResilienceStats stats;
  std::uint64_t injected = 0;
  std::uint64_t ejected = 0;
  std::uint64_t in_network = 0;
  std::uint64_t dropped = 0;
};

Observed run_faulted(const Graph& g, const SimConfig& cfg,
                     const FaultPlan& plan, double rate = 0.25,
                     Cycle warmup = 1000, Cycle measure = 4000) {
  Simulator sim(g, cfg);
  Observed obs;
  obs.stats = sim.run_resilience(rate, plan, warmup, measure);
  obs.injected = sim.network().total_flits_injected();
  obs.ejected = sim.network().total_flits_ejected();
  obs.in_network = sim.network().flits_in_network();
  obs.dropped = sim.network().flits_dropped();
  std::string why;
  EXPECT_TRUE(sim.network().invariants_ok(&why)) << why;
  // Flit conservation across fault transitions: nothing leaks, nothing is
  // double-counted.
  EXPECT_EQ(obs.injected, obs.ejected + obs.in_network + obs.dropped);
  return obs;
}

void expect_same(const Observed& x, const Observed& y,
                 const std::string& ctx) {
  EXPECT_EQ(x.injected, y.injected) << ctx;
  EXPECT_EQ(x.ejected, y.ejected) << ctx;
  EXPECT_EQ(x.in_network, y.in_network) << ctx;
  EXPECT_EQ(x.dropped, y.dropped) << ctx;
  EXPECT_EQ(x.stats.flits_dropped, y.stats.flits_dropped) << ctx;
  EXPECT_EQ(x.stats.packets_lost, y.stats.packets_lost) << ctx;
  EXPECT_EQ(x.stats.packets_rerouted, y.stats.packets_rerouted) << ctx;
  EXPECT_EQ(x.stats.packets_unroutable, y.stats.packets_unroutable) << ctx;
  EXPECT_EQ(x.stats.pre_fault_rate, y.stats.pre_fault_rate) << ctx;
  EXPECT_EQ(x.stats.degraded_rate, y.stats.degraded_rate) << ctx;
  EXPECT_EQ(x.stats.recovery_cycles, y.stats.recovery_cycles) << ctx;
}

TEST(Faults, ArmedEmptyPlanIsBitIdenticalToUnarmed) {
  const Graph g = make_arrangement(ArrangementType::kHexaMesh, 19).graph();
  SimConfig cfg;
  cfg.seed = 7;

  Simulator plain(g, cfg);
  plain.run_throughput(0.25, 1000, 4000);
  const std::uint64_t plain_injected = plain.network().total_flits_injected();
  const std::uint64_t plain_ejected = plain.network().total_flits_ejected();

  const Observed armed = run_faulted(g, cfg, FaultPlan{});
  EXPECT_EQ(armed.injected, plain_injected);
  EXPECT_EQ(armed.ejected, plain_ejected);
  EXPECT_EQ(armed.stats.links_killed, 0u);
  EXPECT_EQ(armed.dropped, 0u);
  EXPECT_LT(armed.stats.first_kill_cycle, 0);
  EXPECT_GT(armed.stats.pre_fault_rate, 0.0);  // sampling alone still runs
}

TEST(Faults, SingleLinkKillIsDeterministicAcrossModes) {
  const Graph g = make_arrangement(ArrangementType::kHexaMesh, 37).graph();
  const auto edge = first_non_bridge(g);

  for (const Cycle reconvergence : {Cycle{0}, Cycle{16}}) {
    FaultPlan plan = kill_link_plan(edge.first, edge.second, 500);
    plan.reconvergence_delay = reconvergence;

    SimConfig cfg;
    cfg.seed = 11;
    cfg.skip_idle = true;
    const Observed active = run_faulted(g, cfg, plan);
    const Observed again = run_faulted(g, cfg, plan);
    cfg.skip_idle = false;
    const Observed dense = run_faulted(g, cfg, plan);

    const std::string ctx =
        "reconvergence=" + std::to_string(reconvergence);
    expect_same(active, again, ctx + " (repeat)");
    expect_same(active, dense, ctx + " (dense)");

    EXPECT_EQ(active.stats.links_killed, 1u) << ctx;
    EXPECT_EQ(active.stats.first_kill_cycle, 500) << ctx;
    // The network keeps delivering after the kill and recovers: one link
    // of a 37-chiplet HexaMesh is nowhere near the bisection at 0.25.
    EXPECT_GT(active.stats.pre_fault_rate, 0.0) << ctx;
    EXPECT_GT(active.stats.degraded_rate, 0.0) << ctx;
    EXPECT_TRUE(active.stats.recovered) << ctx;
    EXPECT_GT(active.stats.recovery_cycles, 0) << ctx;
    EXPECT_GT(active.ejected, 0u) << ctx;
  }
}

TEST(Faults, RecoveryTimeIsMonotoneInThreshold) {
  const Graph g = make_arrangement(ArrangementType::kHexaMesh, 19).graph();
  const auto edge = first_non_bridge(g);
  SimConfig cfg;
  cfg.seed = 3;

  Cycle prev_recovery = 0;
  for (const double threshold : {0.5, 0.9}) {
    FaultPlan plan = kill_link_plan(edge.first, edge.second, 500);
    plan.recovery_threshold = threshold;
    const Observed obs = run_faulted(g, cfg, plan, 0.2, 1000, 6000);
    ASSERT_TRUE(obs.stats.recovered) << "threshold=" << threshold;
    EXPECT_GE(obs.stats.recovery_cycles, prev_recovery)
        << "threshold=" << threshold;
    // Window rates carry generation shot noise, so the degraded rate can
    // nose slightly above the pre-fault baseline at light load — it just
    // must not be wildly off.
    EXPECT_LE(obs.stats.degraded_rate, obs.stats.pre_fault_rate * 1.1)
        << "threshold=" << threshold;
    prev_recovery = obs.stats.recovery_cycles;
  }
}

TEST(Faults, RepairRestoresTheLink) {
  const Graph g = make_arrangement(ArrangementType::kHexaMesh, 19).graph();
  const auto edge = first_non_bridge(g);
  SimConfig cfg;
  cfg.seed = 5;

  const FaultPlan plan =
      kill_link_plan(edge.first, edge.second, 400, /*repair_at=*/1400);
  const Observed obs = run_faulted(g, cfg, plan, 0.25, 1000, 5000);
  EXPECT_EQ(obs.stats.links_killed, 1u);
  EXPECT_EQ(obs.stats.repairs, 1u);
  EXPECT_TRUE(obs.stats.recovered);
}

TEST(Faults, RouterKillSuppressesItsEndpoints) {
  const Graph g = make_arrangement(ArrangementType::kHexaMesh, 19).graph();
  const NodeId victim = first_removable_router(g);
  SimConfig cfg;
  cfg.seed = 9;

  FaultPlan plan;
  plan.events.push_back(FaultEvent{500, FaultKind::kRouterKill, victim, 0});

  Simulator sim(g, cfg);
  const ResilienceStats stats = sim.run_resilience(0.2, plan, 1000, 4000);
  EXPECT_EQ(stats.routers_killed, 1u);
  // Uniform traffic keeps addressing the dead router's endpoints, so
  // suppression must be visible; the dying router's own queued load is
  // flushed at the transition.
  EXPECT_GT(stats.packets_unroutable, 0u);
  for (std::size_t e = 0; e < sim.network().num_endpoints(); ++e) {
    const bool on_victim =
        e / static_cast<std::size_t>(cfg.endpoints_per_chiplet) == victim;
    EXPECT_EQ(sim.network().endpoint_alive(e), !on_victim) << "e=" << e;
  }
  std::string why;
  EXPECT_TRUE(sim.network().invariants_ok(&why)) << why;
  EXPECT_EQ(sim.network().total_flits_injected(),
            sim.network().total_flits_ejected() +
                sim.network().flits_in_network() +
                sim.network().flits_dropped());
}

TEST(Faults, AllowedPartitionPowersTheIslandDown) {
  // 2x3 grid path-cut: killing both rungs of one column splits off a
  // 2-router island. The principal component keeps running; the island
  // goes dark without leaking a flit.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(0, 3);
  g.add_edge(1, 4);
  g.add_edge(2, 5);

  FaultPlan plan;
  plan.allow_partition = true;
  plan.events.push_back(FaultEvent{500, FaultKind::kLinkKill, 1, 2});
  plan.events.push_back(FaultEvent{500, FaultKind::kLinkKill, 4, 5});
  plan.validate(g);

  SimConfig cfg;
  cfg.seed = 13;
  Simulator sim(g, cfg);
  const ResilienceStats stats = sim.run_resilience(0.2, plan, 1000, 4000);
  EXPECT_EQ(stats.links_killed, 2u);
  EXPECT_GT(stats.packets_unroutable, 0u);
  for (std::size_t e = 0; e < sim.network().num_endpoints(); ++e) {
    const std::size_t r =
        e / static_cast<std::size_t>(cfg.endpoints_per_chiplet);
    const bool on_island = r == 2 || r == 5;
    EXPECT_EQ(sim.network().endpoint_alive(e), !on_island) << "e=" << e;
  }
  std::string why;
  EXPECT_TRUE(sim.network().invariants_ok(&why)) << why;
  EXPECT_EQ(sim.network().total_flits_injected(),
            sim.network().total_flits_ejected() +
                sim.network().flits_in_network() +
                sim.network().flits_dropped());
}

TEST(Faults, StormRunsCleanAcrossSkipModes) {
  const Graph g = make_arrangement(ArrangementType::kHexaMesh, 19).graph();
  FaultScenarioSpec spec;
  spec.storm_kills = 3;
  spec.seed = 21;
  spec.kill_at = 400;
  spec.storm_spacing = 300;
  const auto plans = spec.plans_for(g);
  ASSERT_EQ(plans.size(), 1u);

  SimConfig cfg;
  cfg.seed = 17;
  cfg.skip_idle = true;
  const Observed active = run_faulted(g, cfg, plans[0], 0.2, 1000, 4000);
  cfg.skip_idle = false;
  const Observed dense = run_faulted(g, cfg, plans[0], 0.2, 1000, 4000);
  expect_same(active, dense, "storm");
  EXPECT_EQ(active.stats.links_killed, 3u);
}

TEST(Faults, SecondResilienceRunOnOneSimulatorThrows) {
  const Graph g = make_arrangement(ArrangementType::kHexaMesh, 7).graph();
  SimConfig cfg;
  Simulator sim(g, cfg);
  sim.run_resilience(0.1, FaultPlan{}, 200, 400);
  EXPECT_THROW(sim.run_resilience(0.1, FaultPlan{}, 200, 400),
               std::logic_error);
}

// --- Evaluator + export integration -----------------------------------------

hm::core::EvaluationParams quick_fault_params() {
  hm::core::EvaluationParams params;
  params.latency_warmup = 200;
  params.latency_measure = 400;
  params.latency_drain_limit = 60000;
  params.throughput_warmup = 300;
  params.throughput_measure = 300;
  params.faults.single_link_kills = 2;
  params.faults.kill_at = 500;
  params.faults.warmup = 500;
  params.faults.measure = 2500;
  return params;
}

TEST(FaultsEvaluator, PopulatesFaultFieldsDeterministically) {
  const auto arr = make_arrangement(ArrangementType::kHexaMesh, 13);
  const auto params = quick_fault_params();

  const auto sequential = hm::core::evaluate(arr, params);
  EXPECT_EQ(sequential.fault_plans_run, 2u);
  EXPECT_GT(sequential.fault_degraded_throughput, 0.0);
  EXPECT_GT(sequential.fault_robust_throughput_bps, 0.0);
  EXPECT_LE(sequential.fault_robust_throughput_bps,
            sequential.full_global_bandwidth_bps);

  // The parallel executor fans the resilience runs out with the other
  // probes; the result must stay bit-identical (fixed plan order, fresh
  // deterministically seeded simulator per plan).
  hm::explore::ThreadPool pool(4);
  hm::explore::BoundedProbeExecutor bounded(&pool, 3);
  const auto parallel = hm::core::evaluate(arr, params, {}, &bounded);
  EXPECT_EQ(sequential.fault_plans_run, parallel.fault_plans_run);
  EXPECT_EQ(sequential.fault_degraded_throughput,
            parallel.fault_degraded_throughput);
  EXPECT_EQ(sequential.fault_robust_throughput_bps,
            parallel.fault_robust_throughput_bps);
  EXPECT_EQ(sequential.fault_recovery_cycles, parallel.fault_recovery_cycles);
  EXPECT_EQ(sequential.fault_packets_lost, parallel.fault_packets_lost);
}

TEST(FaultsEvaluator, ExportGrowsFaultColumnsOnlyWhenEnabled) {
  const auto arr = make_arrangement(ArrangementType::kHexaMesh, 7);
  auto params = quick_fault_params();
  params.faults = {};  // fault-free first

  hm::explore::SweepRecord rec;
  rec.point.type = ArrangementType::kHexaMesh;
  rec.point.chiplet_count = 7;
  rec.point.params = params;
  rec.result = hm::core::evaluate_analytic(arr, params);
  std::vector<hm::explore::SweepRecord> records{rec};

  const std::string plain_csv = hm::explore::to_csv(records);
  EXPECT_EQ(plain_csv.find("fault_"), std::string::npos);
  EXPECT_EQ(hm::explore::to_json(records).find("fault_"), std::string::npos);

  records[0].point.params.faults.single_link_kills = 2;
  const std::string fault_csv = hm::explore::to_csv(records);
  EXPECT_NE(fault_csv.find("fault_robust_throughput_bps"), std::string::npos);
  EXPECT_NE(hm::explore::to_json(records).find("\"fault_plans_run\": 0"),
            std::string::npos);
}

}  // namespace
