// Tests for the arrangement generators: chiplet counts, regularity
// classification, Fig. 4 neighbour statistics, and the key cross-module
// property that the combinatorial adjacency graph equals the geometric
// shared-edge adjacency of the generated placement.
#include <gtest/gtest.h>

#include <set>

#include "core/arrangement.hpp"
#include "core/brickwall.hpp"
#include "core/grid.hpp"
#include "core/hexamesh.hpp"
#include "core/honeycomb.hpp"
#include "graph/algorithms.hpp"

namespace {

using hm::core::Arrangement;
using hm::core::ArrangementType;
using hm::core::make_arrangement;
using hm::core::make_brickwall;
using hm::core::make_grid;
using hm::core::make_hexamesh;
using hm::core::make_honeycomb;
using hm::core::RegularityClass;

// --- Grid --------------------------------------------------------------------

TEST(Grid, RegularCountsAndDegrees) {
  const auto arr = hm::core::make_grid_regular(4);
  EXPECT_EQ(arr.chiplet_count(), 16u);
  EXPECT_EQ(arr.graph().edge_count(), 2u * 4 * 3);  // 2*s*(s-1)
  const auto stats = arr.neighbor_stats();
  EXPECT_EQ(stats.min, 2u);  // Fig. 4a: min 2
  EXPECT_EQ(stats.max, 4u);  // Fig. 4a: max 4
}

TEST(Grid, AutoClassification) {
  EXPECT_EQ(make_grid(16).regularity(), RegularityClass::kRegular);
  EXPECT_EQ(make_grid(12).regularity(), RegularityClass::kSemiRegular);
  EXPECT_EQ(make_grid(13).regularity(), RegularityClass::kIrregular);
  EXPECT_EQ(make_grid(2).regularity(), RegularityClass::kSemiRegular);
}

TEST(Grid, SemiRegularAspectBound) {
  // 2x5 has ratio 2.5 > 2 -> irregular instead.
  EXPECT_EQ(make_grid(10).regularity(), RegularityClass::kIrregular);
  // 3x4 ratio 1.33 -> semi-regular.
  EXPECT_EQ(make_grid(12).regularity(), RegularityClass::kSemiRegular);
}

TEST(Grid, ExactChipletCountForAllN) {
  for (std::size_t n = 1; n <= 60; ++n) {
    EXPECT_EQ(make_grid(n).chiplet_count(), n) << "n=" << n;
  }
}

TEST(Grid, IrregularMinDegreeCanBeOne) {
  // s^2 + 1 chiplets: the lone extra chiplet touches exactly one neighbour.
  const auto arr = hm::core::make_grid_irregular(10);
  EXPECT_EQ(arr.neighbor_stats().min, 1u);
}

TEST(Grid, DiameterMatchesFormulaForRegular) {
  for (std::size_t side : {2u, 3u, 5u, 8u, 10u}) {
    const auto arr = hm::core::make_grid_regular(side);
    EXPECT_EQ(hm::graph::diameter(arr.graph()),
              static_cast<int>(2 * side - 2));
  }
}

// --- Brickwall ---------------------------------------------------------------

TEST(Brickwall, RegularDegrees) {
  const auto arr = hm::core::make_brickwall_regular(5);
  const auto stats = arr.neighbor_stats();
  EXPECT_EQ(stats.min, 2u);  // Fig. 4c: min 2
  EXPECT_EQ(stats.max, 6u);  // Fig. 4c: max 6
}

TEST(Brickwall, ExactChipletCountForAllN) {
  for (std::size_t n = 1; n <= 60; ++n) {
    EXPECT_EQ(make_brickwall(n).chiplet_count(), n) << "n=" << n;
  }
}

TEST(Brickwall, DiameterMatchesFormulaForRegular) {
  // D_BW = 2 sqrt(N) - 2 - floor((sqrt(N)-1)/2).
  for (std::size_t side : {2u, 3u, 4u, 5u, 7u, 9u}) {
    const auto arr = hm::core::make_brickwall_regular(side);
    const int expected = static_cast<int>(2 * side - 2 - (side - 1) / 2);
    EXPECT_EQ(hm::graph::diameter(arr.graph()), expected) << "side=" << side;
  }
}

TEST(Brickwall, AvgDegreeApproachesSix) {
  const auto small = hm::core::make_brickwall_regular(3);
  const auto big = hm::core::make_brickwall_regular(10);
  EXPECT_GT(big.neighbor_stats().avg, small.neighbor_stats().avg);
  EXPECT_LT(big.neighbor_stats().avg, 6.0);
}

TEST(Brickwall, MoreEdgesThanGridSameN) {
  EXPECT_GT(make_brickwall(49).graph().edge_count(),
            make_grid(49).graph().edge_count());
}

// --- HexaMesh ----------------------------------------------------------------

TEST(Hexamesh, RingCountFormula) {
  EXPECT_EQ(hm::core::hexamesh_chiplet_count(0), 1u);
  EXPECT_EQ(hm::core::hexamesh_chiplet_count(1), 7u);
  EXPECT_EQ(hm::core::hexamesh_chiplet_count(2), 19u);
  EXPECT_EQ(hm::core::hexamesh_chiplet_count(3), 37u);
  EXPECT_EQ(hm::core::hexamesh_chiplet_count(4), 61u);
  EXPECT_EQ(hm::core::hexamesh_chiplet_count(5), 91u);
}

TEST(Hexamesh, RegularCountDetection) {
  for (std::size_t n : {1u, 7u, 19u, 37u, 61u, 91u, 127u}) {
    EXPECT_TRUE(hm::core::is_regular_hexamesh_count(n)) << n;
  }
  for (std::size_t n : {2u, 6u, 8u, 18u, 20u, 36u, 38u, 100u}) {
    EXPECT_FALSE(hm::core::is_regular_hexamesh_count(n)) << n;
  }
}

TEST(Hexamesh, RegularDegrees) {
  const auto arr = hm::core::make_hexamesh_regular(3);
  const auto stats = arr.neighbor_stats();
  EXPECT_EQ(stats.min, 3u);  // Fig. 4d: min 3 (vs 2 for BW)
  EXPECT_EQ(stats.max, 6u);
}

TEST(Hexamesh, RegularDiameterIsTwoR) {
  for (std::size_t rings : {1u, 2u, 3u, 4u, 5u}) {
    const auto arr = hm::core::make_hexamesh_regular(rings);
    EXPECT_EQ(hm::graph::diameter(arr.graph()), static_cast<int>(2 * rings));
  }
}

TEST(Hexamesh, ExactChipletCountForAllN) {
  for (std::size_t n = 1; n <= 100; ++n) {
    EXPECT_EQ(make_hexamesh(n).chiplet_count(), n) << "n=" << n;
  }
}

TEST(Hexamesh, IrregularMinDegreeAtLeastTwoBeyondFirstRing) {
  // Sec. IV-C: irregular HM keeps min degree 2 (for n past the first ring).
  for (std::size_t n = 8; n <= 100; ++n) {
    if (hm::core::is_regular_hexamesh_count(n)) continue;
    const auto arr = hm::core::make_hexamesh_irregular(n);
    EXPECT_GE(arr.neighbor_stats().min, 2u) << "n=" << n;
  }
}

TEST(Hexamesh, EdgeCountOfRegular) {
  // Triangular-lattice ball with r rings: 9r^2 + 3r edges.
  for (std::size_t r : {1u, 2u, 3u, 4u}) {
    const auto arr = hm::core::make_hexamesh_regular(r);
    EXPECT_EQ(arr.graph().edge_count(), 9 * r * r + 3 * r) << "r=" << r;
  }
}

TEST(Hexamesh, CenterHasSixNeighborsFromFirstRing) {
  const auto arr = hm::core::make_hexamesh_regular(2);
  EXPECT_EQ(arr.graph().degree(0), 6u);  // id 0 is the center
}

// --- Honeycomb ---------------------------------------------------------------

TEST(Honeycomb, GraphMatchesBrickwall) {
  for (std::size_t n : {9u, 12u, 13u, 25u}) {
    const auto hc = make_honeycomb(n);
    const auto bw = make_brickwall(n);
    EXPECT_EQ(hc.graph().edges(), bw.graph().edges()) << "n=" << n;
  }
}

TEST(Honeycomb, NoRectPlacement) {
  const auto hc = make_honeycomb(9);
  EXPECT_FALSE(hc.has_rect_placement());
  EXPECT_THROW((void)hc.placement(1.0, 1.0), std::logic_error);
}

// --- Cross-cutting properties -------------------------------------------------

class AllArrangementsTest
    : public ::testing::TestWithParam<std::tuple<ArrangementType, int>> {};

TEST_P(AllArrangementsTest, ConnectedAndPlanarBound) {
  const auto [type, n] = GetParam();
  const auto arr = make_arrangement(type, static_cast<std::size_t>(n));
  EXPECT_TRUE(hm::graph::is_connected(arr.graph()));
  // Sec. IV-A: every arrangement graph is planar -> e <= 3v - 6.
  EXPECT_TRUE(hm::graph::satisfies_planar_bound(arr.graph()));
  EXPECT_LE(arr.graph().max_degree(), 6u);
}

TEST_P(AllArrangementsTest, GeometricAdjacencyMatchesGraph) {
  const auto [type, n] = GetParam();
  if (type == ArrangementType::kHoneycomb) GTEST_SKIP();
  const auto arr = make_arrangement(type, static_cast<std::size_t>(n));
  const auto placement = arr.placement(4.38, 3.65);
  EXPECT_TRUE(placement.is_overlap_free());
  EXPECT_EQ(placement.adjacency_graph(0.01).edges(), arr.graph().edges());
}

TEST_P(AllArrangementsTest, CoordsAreUnique) {
  const auto [type, n] = GetParam();
  const auto arr = make_arrangement(type, static_cast<std::size_t>(n));
  std::set<std::pair<int, int>> seen;
  for (const auto& c : arr.coords()) seen.insert({c.a, c.b});
  EXPECT_EQ(seen.size(), arr.chiplet_count());
}

TEST_P(AllArrangementsTest, AvgDegreeBelowPlanarBound) {
  const auto [type, n] = GetParam();
  const auto arr = make_arrangement(type, static_cast<std::size_t>(n));
  if (arr.chiplet_count() < 3) GTEST_SKIP();
  EXPECT_LE(arr.neighbor_stats().avg,
            hm::graph::planar_avg_degree_bound(arr.chiplet_count()) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllArrangementsTest,
    ::testing::Combine(::testing::Values(ArrangementType::kGrid,
                                         ArrangementType::kBrickwall,
                                         ArrangementType::kHexaMesh,
                                         ArrangementType::kHoneycomb),
                       ::testing::Values(1, 2, 3, 4, 5, 7, 9, 12, 13, 16, 19,
                                         25, 36, 37, 42, 50, 61, 64, 77, 91,
                                         100)),
    [](const auto& info) {
      return hm::core::to_string(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Arrangement, NameIsHumanReadable) {
  EXPECT_EQ(make_hexamesh(37).name(), "hexamesh (regular, N=37)");
  EXPECT_EQ(make_grid(13).name(), "grid (irregular, N=13)");
}

TEST(Arrangement, GraphCoordMismatchRejected) {
  EXPECT_THROW(Arrangement(ArrangementType::kGrid, RegularityClass::kRegular,
                           {{0, 0}, {0, 1}}, hm::graph::Graph(3)),
               std::invalid_argument);
}

TEST(Arrangement, EmptyRejected) {
  EXPECT_THROW(Arrangement(ArrangementType::kGrid, RegularityClass::kRegular,
                           {}, hm::graph::Graph(0)),
               std::invalid_argument);
}

TEST(Arrangement, FactoriesRejectZero) {
  EXPECT_THROW((void)make_grid(0), std::invalid_argument);
  EXPECT_THROW((void)make_brickwall(0), std::invalid_argument);
  EXPECT_THROW((void)make_hexamesh(0), std::invalid_argument);
}

// Regression: degenerate sizes used to be rejected family by family with
// different messages (honeycomb delegated to brickwall's), so callers like
// arrangement_explorer surfaced inconsistent errors. make_arrangement now
// validates once, uniformly, for every family.
TEST(Arrangement, MakeArrangementRejectsZeroUniformlyAcrossFamilies) {
  for (const auto type :
       {ArrangementType::kGrid, ArrangementType::kBrickwall,
        ArrangementType::kHexaMesh, ArrangementType::kHoneycomb}) {
    try {
      (void)make_arrangement(type, 0);
      FAIL() << "make_arrangement(" << hm::core::to_string(type)
             << ", 0) did not throw";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("make_arrangement"), std::string::npos) << what;
      EXPECT_NE(what.find("chiplet count must be >= 1"), std::string::npos)
          << what;
      EXPECT_NE(what.find(hm::core::to_string(type)), std::string::npos)
          << what;
    }
  }
  // N == 1 stays valid for every family (a single chiplet is a legal,
  // simulation-free design point).
  for (const auto type :
       {ArrangementType::kGrid, ArrangementType::kBrickwall,
        ArrangementType::kHexaMesh, ArrangementType::kHoneycomb}) {
    EXPECT_EQ(make_arrangement(type, 1).chiplet_count(), 1u);
  }
}

TEST(Arrangement, PlacementRejectsBadDims) {
  const auto arr = make_grid(4);
  EXPECT_THROW((void)arr.placement(0.0, 1.0), std::invalid_argument);
}

}  // namespace
