// Tests for the link-length/frequency model, including the paper's Sec. V
// claim: adjacent-chiplet links are below 4 mm in general and below 2 mm
// for N >= 10 chiplets.
#include <gtest/gtest.h>

#include "core/frequency_model.hpp"
#include "core/link_model.hpp"
#include "core/shape.hpp"

namespace {

using namespace hm::core;

TEST(FrequencyModel, FullRateWithinReach) {
  EXPECT_DOUBLE_EQ(
      max_link_frequency_hz(1.0, PackagingTech::kSiliconInterposer), 16e9);
  EXPECT_DOUBLE_EQ(
      max_link_frequency_hz(2.0, PackagingTech::kSiliconInterposer), 16e9);
  EXPECT_DOUBLE_EQ(
      max_link_frequency_hz(4.0, PackagingTech::kOrganicSubstrate), 16e9);
}

TEST(FrequencyModel, InverseDeratingBeyondReach) {
  // Doubling the length beyond the reach halves the rate.
  EXPECT_DOUBLE_EQ(
      max_link_frequency_hz(4.0, PackagingTech::kSiliconInterposer), 8e9);
  EXPECT_DOUBLE_EQ(
      max_link_frequency_hz(8.0, PackagingTech::kSiliconInterposer), 4e9);
  EXPECT_DOUBLE_EQ(
      max_link_frequency_hz(8.0, PackagingTech::kOrganicSubstrate), 8e9);
}

TEST(FrequencyModel, FlooredAtOneEighth) {
  EXPECT_DOUBLE_EQ(
      max_link_frequency_hz(1000.0, PackagingTech::kSiliconInterposer),
      2e9);
}

TEST(FrequencyModel, MonotoneNonIncreasingInLength) {
  double prev = 1e18;
  for (double len = 0.5; len < 30.0; len += 0.5) {
    const double f =
        max_link_frequency_hz(len, PackagingTech::kSiliconInterposer);
    EXPECT_LE(f, prev);
    prev = f;
  }
}

TEST(FrequencyModel, InvalidInputsRejected) {
  EXPECT_THROW((void)max_link_frequency_hz(0.0,
                                           PackagingTech::kOrganicSubstrate),
               std::invalid_argument);
  EXPECT_THROW(
      (void)max_link_frequency_hz(1.0, PackagingTech::kOrganicSubstrate, 0.0),
      std::invalid_argument);
}

TEST(FrequencyModel, InterposerReachIsShorterThanSubstrate) {
  EXPECT_LT(full_rate_reach_mm(PackagingTech::kSiliconInterposer),
            full_rate_reach_mm(PackagingTech::kOrganicSubstrate));
}

// --- The paper's Sec. V link-length claim -------------------------------------

TEST(LinkLength, Below4mmInGeneral) {
  for (std::size_t n = 2; n <= 100; ++n) {
    const double ac = kDefaultTotalAreaMm2 / static_cast<double>(n);
    EXPECT_LT(adjacent_link_length_mm(solve_grid_shape({ac, 0.4})), 4.0)
        << "grid n=" << n;
    EXPECT_LT(adjacent_link_length_mm(solve_hex_shape({ac, 0.4})), 4.0)
        << "hex n=" << n;
  }
}

TEST(LinkLength, Below2mmForTenOrMoreChiplets) {
  for (std::size_t n = 10; n <= 100; ++n) {
    const double ac = kDefaultTotalAreaMm2 / static_cast<double>(n);
    EXPECT_LT(adjacent_link_length_mm(solve_grid_shape({ac, 0.4})), 2.0)
        << "grid n=" << n;
    EXPECT_LT(adjacent_link_length_mm(solve_hex_shape({ac, 0.4})), 2.0)
        << "hex n=" << n;
  }
}

TEST(LinkLength, ShrinksWithChipletCount) {
  const double a10 = kDefaultTotalAreaMm2 / 10.0;
  const double a100 = kDefaultTotalAreaMm2 / 100.0;
  EXPECT_GT(adjacent_link_length_mm(solve_hex_shape({a10, 0.4})),
            adjacent_link_length_mm(solve_hex_shape({a100, 0.4})));
}

TEST(DeratedLink, AdjacentLinksKeepFullBandwidth) {
  const double ac = kDefaultTotalAreaMm2 / 64.0;
  const ChipletShape s = solve_hex_shape({ac, 0.4});
  LinkModelParams p;
  p.link_area_mm2 = s.link_sector_area;
  const auto plain = estimate_link(p);
  const auto derated = estimate_link_with_length(
      p, adjacent_link_length_mm(s), PackagingTech::kSiliconInterposer);
  EXPECT_DOUBLE_EQ(plain.bandwidth_bps, derated.bandwidth_bps);
}

TEST(DeratedLink, LongLinksLoseBandwidth) {
  LinkModelParams p;
  p.link_area_mm2 = 1.0;
  const auto near = estimate_link_with_length(
      p, 1.0, PackagingTech::kSiliconInterposer);
  const auto far = estimate_link_with_length(
      p, 6.0, PackagingTech::kSiliconInterposer);
  EXPECT_DOUBLE_EQ(far.bandwidth_bps, near.bandwidth_bps / 3.0);
  EXPECT_EQ(far.data_wires, near.data_wires);  // wires unchanged, rate drops
}

}  // namespace
