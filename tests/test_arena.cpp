// SimulationArena contract tests: a probe on a reset arena network must be
// bit-identical to the same probe on a fresh Network, across routing modes,
// seeds and traffic patterns; the SoA flit path must conserve flits; and
// find_saturation's bit-pattern rate memo must normalize -0.0/NaN keys.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "core/arrangement.hpp"
#include "explore/export.hpp"
#include "explore/sweep.hpp"
#include "explore/thread_pool.hpp"
#include "faults/fault_plan.hpp"
#include "noc/arena.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"

namespace {

using hm::noc::Rng;
using hm::noc::RoutingMode;
using hm::noc::SimConfig;
using hm::noc::SimulationArena;
using hm::noc::Simulator;
using hm::noc::ThroughputResult;
using hm::noc::TopologyContext;
using hm::noc::TrafficPattern;
using hm::noc::TrafficSpec;

std::shared_ptr<const TopologyContext> hexamesh_topo(std::size_t n) {
  return TopologyContext::acquire(
      hm::core::make_arrangement(hm::core::ArrangementType::kHexaMesh, n)
          .graph());
}

void expect_same(const ThroughputResult& a, const ThroughputResult& b) {
  // Bit-identical, not approximately equal: the arena reuse contract.
  EXPECT_EQ(a.offered_flit_rate, b.offered_flit_rate);
  EXPECT_EQ(a.accepted_flit_rate, b.accepted_flit_rate);
  EXPECT_EQ(a.generated_flit_rate, b.generated_flit_rate);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
}

ThroughputResult probe_fresh(std::shared_ptr<const TopologyContext> topo,
                             const SimConfig& cfg, const TrafficSpec& traffic,
                             double rate) {
  Simulator sim(std::move(topo), cfg);  // fresh Network, no arena
  sim.set_traffic(traffic);
  return sim.run_throughput(rate, 400, 400);
}

ThroughputResult probe_arena(SimulationArena& arena,
                             std::shared_ptr<const TopologyContext> topo,
                             const SimConfig& cfg, const TrafficSpec& traffic,
                             double rate) {
  Simulator sim(arena, std::move(topo), cfg);
  sim.set_traffic(traffic);
  return sim.run_throughput(rate, 400, 400);
}

// --- Reset-vs-fresh equivalence --------------------------------------------

TEST(SimulationArena, ResetProbesMatchFreshNetworksAcrossModesAndSeeds) {
  const auto topo = hexamesh_topo(9);
  const std::vector<double> rates = {1.0, 0.5, 0.25, 0.75, 0.5};  // repeats
  for (const RoutingMode mode :
       {RoutingMode::kMinimalAdaptive, RoutingMode::kDeterministicMinimal,
        RoutingMode::kUpDownOnly}) {
    for (const unsigned long long seed : {1ULL, 42ULL, 1234ULL}) {
      SimConfig cfg;
      cfg.routing = mode;
      cfg.seed = seed;
      SimulationArena arena(2);
      for (const double rate : rates) {
        const auto fresh = probe_fresh(topo, cfg, TrafficSpec{}, rate);
        const auto reused = probe_arena(arena, topo, cfg, TrafficSpec{}, rate);
        expect_same(fresh, reused);
      }
      // Every probe after the first hit the arena.
      EXPECT_EQ(arena.stats().networks_built, 1u);
      EXPECT_EQ(arena.stats().networks_reused, rates.size() - 1);
    }
  }
}

TEST(SimulationArena, ResetClearsDirtyStateFromDifferentTraffic) {
  const auto topo = hexamesh_topo(9);
  SimConfig cfg;
  SimulationArena arena(2);

  // Saturate with hotspot traffic first: the released network is full of
  // in-flight flits, queued packets and nonzero statistics.
  TrafficSpec hotspot;
  hotspot.pattern = TrafficPattern::kHotspot;
  hotspot.hotspot_fraction = 0.4;
  (void)probe_arena(arena, topo, cfg, hotspot, 1.0);

  // A reused (reset) network must reproduce a fresh network bit for bit.
  const auto fresh = probe_fresh(topo, cfg, TrafficSpec{}, 0.6);
  const auto reused = probe_arena(arena, topo, cfg, TrafficSpec{}, 0.6);
  expect_same(fresh, reused);
  EXPECT_GE(arena.stats().networks_reused, 1u);
}

TEST(SimulationArena, LatencyRunsMatchFresh) {
  const auto topo = hexamesh_topo(7);
  SimConfig cfg;
  SimulationArena arena(2);
  (void)probe_arena(arena, topo, cfg, TrafficSpec{}, 1.0);  // dirty the slot

  Simulator fresh(topo, cfg);
  fresh.set_traffic(TrafficSpec{});
  const auto a = fresh.run_latency(0.05, 300, 600, 60000);

  Simulator reused(arena, topo, cfg);
  reused.set_traffic(TrafficSpec{});
  const auto b = reused.run_latency(0.05, 300, 600, 60000);

  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.drained, b.drained);
}

// --- Arena mechanics --------------------------------------------------------

TEST(SimulationArena, SeedIsNotPartOfTheReuseKey) {
  const auto topo = hexamesh_topo(4);
  SimConfig cfg;
  SimulationArena arena(2);
  cfg.seed = 1;
  (void)probe_arena(arena, topo, cfg, TrafficSpec{}, 0.5);
  cfg.seed = 2;  // different RNG stream, same network structure
  (void)probe_arena(arena, topo, cfg, TrafficSpec{}, 0.5);
  EXPECT_EQ(arena.stats().networks_built, 1u);
  EXPECT_EQ(arena.stats().networks_reused, 1u);
}

TEST(SimulationArena, StructuralConfigChangeMisses) {
  const auto topo = hexamesh_topo(4);
  SimConfig cfg;
  SimulationArena arena(4);
  (void)probe_arena(arena, topo, cfg, TrafficSpec{}, 0.5);
  cfg.vcs = 4;  // different network structure
  (void)probe_arena(arena, topo, cfg, TrafficSpec{}, 0.5);
  EXPECT_EQ(arena.stats().networks_built, 2u);
  EXPECT_EQ(arena.stats().networks_reused, 0u);
}

TEST(SimulationArena, ConcurrentLeasesFallBackToOneOffNetworks) {
  const auto topo = hexamesh_topo(4);
  const SimConfig cfg;
  SimulationArena arena(1);  // one slot
  auto first = arena.lease(topo, cfg);
  ASSERT_TRUE(first.valid());
  EXPECT_TRUE(first.arena_backed());
  auto second = arena.lease(topo, cfg);  // slot checked out -> one-off
  ASSERT_TRUE(second.valid());
  EXPECT_FALSE(second.arena_backed());
  EXPECT_NE(&first.network(), &second.network());
  EXPECT_EQ(arena.stats().oneoff_networks, 1u);

  // Releasing the first lease frees the slot for reuse.
  first = SimulationArena::Lease{};
  auto third = arena.lease(topo, cfg);
  EXPECT_TRUE(third.arena_backed());
  EXPECT_EQ(arena.stats().networks_reused, 1u);
}

TEST(SimulationArena, PacketTableRestartsPerReset) {
  const auto topo = hexamesh_topo(4);
  const SimConfig cfg;
  SimulationArena arena(1);
  {
    Simulator sim(arena, topo, cfg);
    sim.set_traffic(TrafficSpec{});
    (void)sim.run_throughput(0.5, 200, 200);
    EXPECT_GT(sim.network().packets().size(), 0u);
  }
  auto lease = arena.lease(topo, cfg);  // reset happens at checkout
  EXPECT_EQ(lease.network().packets().size(), 0u);
}

// --- Flit conservation on the SoA path --------------------------------------

TEST(SimulationArena, SoaPathConservesFlits) {
  const auto topo = hexamesh_topo(9);
  SimConfig cfg;
  SimulationArena arena(1);
  for (int round = 0; round < 2; ++round) {  // round 2 runs on a reset net
    Simulator sim(arena, topo, cfg);
    sim.set_traffic(TrafficSpec{});
    (void)sim.run_throughput(1.0, 500, 500);  // saturated: full buffers
    std::string why;
    EXPECT_TRUE(sim.network().invariants_ok(&why)) << why;
    EXPECT_EQ(sim.network().total_flits_injected(),
              sim.network().total_flits_ejected() +
                  sim.network().flits_in_network());
  }
}

// --- find_saturation integration --------------------------------------------

TEST(SimulationArena, FindSaturationIsStableAcrossRepeatsAndExecutors) {
  const auto topo = hexamesh_topo(9);
  SimConfig cfg;
  hm::noc::SaturationSearchOptions opts;
  opts.warmup = 400;
  opts.measure = 400;

  const auto sequential = find_saturation(topo, cfg, opts);
  // Repeat on the (now warm) thread-local arena: same result bit for bit.
  const auto repeated = find_saturation(topo, cfg, opts);
  EXPECT_EQ(sequential.saturation_flit_rate, repeated.saturation_flit_rate);
  EXPECT_EQ(sequential.accepted_flit_rate, repeated.accepted_flit_rate);

  // Speculative parallel search through a bounded executor: identical rates
  // (the executor only changes scheduling, never results).
  hm::explore::ThreadPool pool(4);
  hm::explore::BoundedProbeExecutor bounded(&pool, 2);
  const auto parallel = find_saturation(topo, cfg, opts, TrafficSpec{},
                                        &bounded);
  EXPECT_EQ(sequential.saturation_flit_rate, parallel.saturation_flit_rate);
  EXPECT_EQ(sequential.accepted_flit_rate, parallel.accepted_flit_rate);
}

// --- Bounded executor --------------------------------------------------------

TEST(BoundedProbeExecutor, RunsEveryJobExactlyOnce) {
  hm::explore::ThreadPool pool(4);
  hm::explore::BoundedProbeExecutor bounded(&pool, 2);
  std::atomic<int> runs{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 7; ++i) jobs.push_back([&runs] { ++runs; });
  bounded.run_batch(jobs);
  EXPECT_EQ(runs.load(), 7);

  // Degenerate cap: inline execution.
  hm::explore::BoundedProbeExecutor inline_exec(&pool, 1);
  runs = 0;
  bounded.run_batch(jobs);  // jobs are reusable (borrowed, not consumed)
  inline_exec.run_batch(jobs);
  EXPECT_EQ(runs.load(), 14);
}

TEST(BoundedProbeExecutor, IntraDesignSweepMatchesPlainSweep) {
  // End to end through the engine: capped intra-design parallelism must
  // produce byte-identical exports to the plain per-job evaluation.
  hm::core::EvaluationParams params;
  params.latency_warmup = 200;
  params.latency_measure = 400;
  params.latency_drain_limit = 60000;
  params.throughput_warmup = 300;
  params.throughput_measure = 300;
  hm::explore::SweepSpec spec;
  spec.chiplet_counts = {4, 7};
  spec.param_grid = {params};

  hm::explore::SweepEngine::Options plain;
  plain.threads = 2;
  const auto baseline = hm::explore::SweepEngine(plain).run(spec);

  hm::explore::SweepEngine::Options intra;
  intra.threads = 4;
  intra.intra_design_parallelism = true;
  intra.max_intra_probes = 2;
  const auto capped = hm::explore::SweepEngine(intra).run(spec);

  EXPECT_EQ(hm::explore::to_csv(baseline), hm::explore::to_csv(capped));
}

// --- Saturation memo rate-key normalization (regression) ---------------------

TEST(SaturationRateKey, NormalizesNegativeZeroAndNan) {
  using hm::noc::saturation_rate_key;
  EXPECT_EQ(saturation_rate_key(0.0), saturation_rate_key(-0.0));
  EXPECT_EQ(saturation_rate_key(0.0), std::bit_cast<std::uint64_t>(0.0));

  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double payload_nan = std::nan("0x1234");
  EXPECT_EQ(saturation_rate_key(qnan), saturation_rate_key(payload_nan));
  EXPECT_EQ(saturation_rate_key(qnan), saturation_rate_key(-qnan));

  // Ordinary rates keep their exact bit patterns (distinct keys).
  EXPECT_EQ(saturation_rate_key(0.5), std::bit_cast<std::uint64_t>(0.5));
  EXPECT_NE(saturation_rate_key(0.5), saturation_rate_key(0.25));
  EXPECT_NE(saturation_rate_key(1.0), saturation_rate_key(0.0));
}

TEST(SimulationArena, ResetRewindsFaultMutatedWiring) {
  // A resilience run unwires killed links, zeroes their credits, powers
  // routers/endpoints down and installs degraded routing tables. A network
  // recycled after that history must still reproduce a fresh network bit
  // for bit — reset() has to rewind the wiring itself, not just buffers.
  const auto topo = hexamesh_topo(19);
  SimConfig cfg;
  cfg.seed = 29;
  SimulationArena arena(2);

  {
    hm::faults::FaultScenarioSpec spec;
    spec.storm_kills = 3;
    spec.seed = 8;
    spec.kill_at = 300;
    spec.storm_spacing = 250;
    const auto plans = spec.plans_for(topo->graph());
    ASSERT_EQ(plans.size(), 1u);
    Simulator sim(arena, topo, cfg);
    (void)sim.run_resilience(0.25, plans[0], 500, 1500);
    EXPECT_GT(sim.network().flits_dropped(), 0u);  // faults actually bit
  }

  const auto fresh = probe_fresh(topo, cfg, TrafficSpec{}, 0.5);
  const auto reused = probe_arena(arena, topo, cfg, TrafficSpec{}, 0.5);
  expect_same(fresh, reused);
  EXPECT_GE(arena.stats().networks_reused, 1u);
}

}  // namespace
