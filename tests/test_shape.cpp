// Tests for the chiplet shape solver (Sec. IV-B), including the paper's
// worked example (A_C = 16 mm^2, p_p = 0.4 -> W_C = 4.38, H_C = 3.65,
// D_B = 0.73) and property sweeps over the system of equations (1)-(5).
#include <gtest/gtest.h>

#include "core/shape.hpp"
#include "geometry/bump_layout.hpp"

namespace {

using namespace hm::core;

// --- Paper worked example ----------------------------------------------------

TEST(HexShape, PaperWorkedExample) {
  const ShapeParams p{16.0, 0.4};
  const ChipletShape s = solve_hex_shape(p);
  EXPECT_NEAR(s.width, 4.38, 0.005);             // W_C = 4.38 mm
  EXPECT_NEAR(s.height, 3.65, 0.005);            // H_C = 3.65 mm
  EXPECT_NEAR(s.bump_edge_distance, 0.73, 0.005);  // D_B = 0.73 mm
}

TEST(HexShape, PaperExampleDerivedQuantities) {
  const ShapeParams p{16.0, 0.4};
  const ChipletShape s = solve_hex_shape(p);
  EXPECT_NEAR(s.link_sector_area, 0.6 * 16.0 / 6.0, 1e-12);  // A_B = 1.6
  EXPECT_NEAR(s.power_width * s.power_height, 0.4 * 16.0, 1e-9);  // eq (5)
  EXPECT_EQ(s.link_sectors, 6);
}

// --- Grid shape --------------------------------------------------------------

TEST(GridShape, SquareChiplet) {
  const ShapeParams p{16.0, 0.4};
  const ChipletShape s = solve_grid_shape(p);
  EXPECT_DOUBLE_EQ(s.width, 4.0);
  EXPECT_DOUBLE_EQ(s.height, 4.0);
  EXPECT_EQ(s.link_sectors, 4);
}

TEST(GridShape, PowerSquareAndSectors) {
  const ShapeParams p{16.0, 0.25};
  const ChipletShape s = solve_grid_shape(p);
  EXPECT_DOUBLE_EQ(s.power_width, 2.0);  // sqrt(0.25*16)
  EXPECT_DOUBLE_EQ(s.link_sector_area, 0.75 * 16.0 / 4.0);
  EXPECT_DOUBLE_EQ(s.bump_edge_distance, 1.0);  // (4-2)/2
}

TEST(GridShape, ZeroPowerFraction) {
  const ShapeParams p{4.0, 0.0};
  const ChipletShape s = solve_grid_shape(p);
  EXPECT_DOUBLE_EQ(s.power_width, 0.0);
  EXPECT_DOUBLE_EQ(s.bump_edge_distance, 1.0);  // half the chiplet
}

// --- Property sweeps over the system of equations ---------------------------

class HexShapeSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(HexShapeSweep, EquationsSatisfied) {
  const auto [area, pp] = GetParam();
  const ShapeParams p{area, pp};
  const ChipletShape s = solve_hex_shape(p);
  EXPECT_LT(hex_shape_residual(s, p), 1e-9 * area);
}

TEST_P(HexShapeSweep, AreasAreConsistent) {
  const auto [area, pp] = GetParam();
  const ChipletShape s = solve_hex_shape({area, pp});
  // 6 link sectors + power sector tile the chiplet.
  EXPECT_NEAR(6.0 * s.link_sector_area + pp * area, area, 1e-9 * area);
  EXPECT_NEAR(s.width * s.height, area, 1e-9 * area);
}

TEST_P(HexShapeSweep, DimensionsPositiveAndLayoutValid) {
  const auto [area, pp] = GetParam();
  const ChipletShape s = solve_hex_shape({area, pp});
  EXPECT_GT(s.width, 0.0);
  EXPECT_GT(s.height, 0.0);
  EXPECT_GT(s.bump_edge_distance, 0.0);
  // W_C^2 = A_C (2+4pp)/3, so chiplets are wider than tall iff pp >= 1/4
  // (the paper's example uses pp = 0.4 -> 4.38 x 3.65).
  if (pp >= 0.25) {
    EXPECT_GE(s.width, s.height);
  } else {
    EXPECT_LE(s.width, s.height);
  }
  const auto sectors = bump_sectors(s);
  EXPECT_EQ(sectors.size(), 7u);
}

TEST_P(HexShapeSweep, BumpLayoutSectorsMatchSolvedAreas) {
  const auto [area, pp] = GetParam();
  const ChipletShape s = solve_hex_shape({area, pp});
  for (const auto& sector : bump_sectors(s)) {
    if (sector.role == hm::geom::SectorRole::kPower) {
      EXPECT_NEAR(sector.area(), pp * area, 1e-7 * area);
    } else {
      EXPECT_NEAR(sector.area(), s.link_sector_area, 1e-7 * area);
      EXPECT_NEAR(
          hm::geom::max_bump_to_edge_distance(sector, s.width, s.height),
          s.bump_edge_distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, HexShapeSweep,
    ::testing::Combine(::testing::Values(1.0, 4.0, 8.0, 16.0, 80.0, 400.0),
                       ::testing::Values(0.1, 0.25, 0.4, 0.6, 0.8)),
    [](const auto& info) {
      return "A" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
             "_pp" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

class GridShapeSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GridShapeSweep, SectorsTileChiplet) {
  const auto [area, pp] = GetParam();
  const ChipletShape s = solve_grid_shape({area, pp});
  EXPECT_NEAR(4.0 * s.link_sector_area + pp * area, area, 1e-9 * area);
  if (pp > 0.0) {
    for (const auto& sector : bump_sectors(s)) {
      if (sector.role == hm::geom::SectorRole::kPower) {
        EXPECT_NEAR(sector.area(), pp * area, 1e-7 * area);
      } else {
        EXPECT_NEAR(sector.area(), s.link_sector_area, 1e-7 * area);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, GridShapeSweep,
    ::testing::Combine(::testing::Values(1.0, 16.0, 100.0, 400.0),
                       ::testing::Values(0.1, 0.4, 0.7)),
    [](const auto& info) {
      return "A" + std::to_string(static_cast<int>(std::get<0>(info.param))) +
             "_pp" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// --- Dispatch & validation ----------------------------------------------------

TEST(SolveShape, DispatchPerType) {
  const ShapeParams p{16.0, 0.4};
  EXPECT_EQ(solve_shape(ArrangementType::kGrid, p).link_sectors, 4);
  EXPECT_EQ(solve_shape(ArrangementType::kBrickwall, p).link_sectors, 6);
  EXPECT_EQ(solve_shape(ArrangementType::kHexaMesh, p).link_sectors, 6);
  EXPECT_THROW((void)solve_shape(ArrangementType::kHoneycomb, p),
               std::invalid_argument);
}

TEST(SolveShape, InvalidParamsRejected) {
  EXPECT_THROW((void)solve_hex_shape({-1.0, 0.4}), std::invalid_argument);
  EXPECT_THROW((void)solve_hex_shape({16.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)solve_hex_shape({16.0, -0.1}), std::invalid_argument);
}

TEST(SolveShape, HexShapeDbShrinksWithPowerFraction) {
  // More power bumps -> wider power sector -> smaller D_B.
  const double db_low = solve_hex_shape({16.0, 0.1}).bump_edge_distance;
  const double db_high = solve_hex_shape({16.0, 0.7}).bump_edge_distance;
  EXPECT_GT(db_low, db_high);
}

TEST(SolveShape, LinkAreaScalesWithChipletArea) {
  const double a1 = solve_hex_shape({8.0, 0.4}).link_sector_area;
  const double a2 = solve_hex_shape({16.0, 0.4}).link_sector_area;
  EXPECT_NEAR(a2 / a1, 2.0, 1e-12);
}

}  // namespace
