// Tests for the statistics helpers.
#include <gtest/gtest.h>

#include <stdexcept>

#include "noc/stats.hpp"

namespace {

using hm::noc::Accumulator;

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Accumulator, TracksMeanMinMax) {
  Accumulator a;
  a.add(2.0);
  a.add(8.0);
  a.add(5.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(-3.5);
  EXPECT_DOUBLE_EQ(a.mean(), -3.5);
  EXPECT_DOUBLE_EQ(a.min(), -3.5);
  EXPECT_DOUBLE_EQ(a.max(), -3.5);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(hm::noc::percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(hm::noc::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(hm::noc::percentile(v, 100), 5.0);
}

TEST(Percentile, NearestRankBehaviour) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(hm::noc::percentile(v, 25), 10.0);
  EXPECT_DOUBLE_EQ(hm::noc::percentile(v, 26), 20.0);
  EXPECT_DOUBLE_EQ(hm::noc::percentile(v, 75), 30.0);
}

TEST(Percentile, InvalidInputsRejected) {
  EXPECT_THROW((void)hm::noc::percentile({}, 50), std::invalid_argument);
  EXPECT_THROW((void)hm::noc::percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW((void)hm::noc::percentile({1.0}, 101), std::invalid_argument);
}

TEST(Mean, Basic) {
  EXPECT_DOUBLE_EQ(hm::noc::mean({1, 2, 3, 4}), 2.5);
  EXPECT_THROW((void)hm::noc::mean({}), std::invalid_argument);
}

TEST(Geomean, Basic) {
  EXPECT_DOUBLE_EQ(hm::noc::geomean({2, 8}), 4.0);
  EXPECT_NEAR(hm::noc::geomean({1, 10, 100}), 10.0, 1e-12);
}

TEST(Geomean, RejectsNonPositive) {
  EXPECT_THROW((void)hm::noc::geomean({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)hm::noc::geomean({}), std::invalid_argument);
}

}  // namespace
