// End-to-end integration tests reproducing the paper's headline comparisons
// on scaled-down design points (full-scale sweeps live in bench/).
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/grid.hpp"
#include "core/hexamesh.hpp"
#include "core/honeycomb.hpp"
#include "core/brickwall.hpp"
#include "core/proxies.hpp"
#include "graph/algorithms.hpp"
#include "partition/partitioner.hpp"

namespace {

using namespace hm::core;

EvaluationParams fast_sim_params() {
  EvaluationParams p;
  p.latency_warmup = 500;
  p.latency_measure = 4000;
  p.throughput_warmup = 3000;
  p.throughput_measure = 4000;
  return p;
}

TEST(Integration, HexameshReducesZeroLoadLatencyVsGrid) {
  // Paper Sec. VI-C: ~20% latency reduction for N >= 10. Compare at N = 36
  // (regular grid) vs N = 37 (regular HexaMesh).
  const auto grid = evaluate(make_grid(36), fast_sim_params());
  const auto hexa = evaluate(make_hexamesh(37), fast_sim_params());
  ASSERT_TRUE(grid.latency_run_drained);
  ASSERT_TRUE(hexa.latency_run_drained);
  const double ratio =
      hexa.zero_load_latency_cycles / grid.zero_load_latency_cycles;
  EXPECT_LT(ratio, 0.95);  // clearly better
  EXPECT_GT(ratio, 0.60);  // but not implausibly so
}

TEST(Integration, HexameshImprovesSaturationThroughputVsGrid) {
  // Paper Sec. VI-C: +34% average throughput (in Tb/s, accounting for the
  // lower per-link bandwidth of the 6-sector chiplets).
  const auto grid = evaluate(make_grid(36), fast_sim_params());
  const auto hexa = evaluate(make_hexamesh(37), fast_sim_params());
  EXPECT_GT(hexa.saturation_throughput_bps, grid.saturation_throughput_bps);
}

TEST(Integration, BrickwallSitsBetweenGridAndHexamesh) {
  const auto g = evaluate_analytic(make_grid(49));
  const auto b = evaluate_analytic(make_brickwall(49));
  const auto h = evaluate_analytic(make_hexamesh(49));
  EXPECT_LE(b.diameter, g.diameter);
  EXPECT_LE(h.diameter, b.diameter);
  EXPECT_GE(b.bisection_links, g.bisection_links);
  EXPECT_GE(h.bisection_links, b.bisection_links);
}

TEST(Integration, PartitionerTracksFormulasOnRegularArrangements) {
  // Fig. 6b methodology: formulas for regular, METIS (here: FM) otherwise.
  for (std::size_t side : {4u, 6u}) {
    const auto arr = make_grid_regular(side);
    EXPECT_EQ(hm::partition::bisection_width(arr.graph()), side);
  }
  for (std::size_t rings : {2u, 3u}) {
    const auto arr = make_hexamesh_regular(rings);
    EXPECT_EQ(hm::partition::bisection_width(arr.graph()), 4 * rings + 1);
  }
}

TEST(Integration, HoneycombMatchesBrickwallProxies) {
  const auto hc = make_honeycomb(49);
  const auto bw = make_brickwall(49);
  EXPECT_EQ(hm::graph::diameter(hc.graph()), hm::graph::diameter(bw.graph()));
  EXPECT_EQ(hm::partition::bisection_width(hc.graph()),
            hm::partition::bisection_width(bw.graph()));
}

TEST(Integration, DiameterAdvantageGrowsWithN) {
  // The HM/G diameter ratio approaches 1/sqrt(3) from above.
  const double r19 =
      static_cast<double>(hm::graph::diameter(make_hexamesh(19).graph())) /
      hm::graph::diameter(make_grid(16).graph());
  const double r91 =
      static_cast<double>(hm::graph::diameter(make_hexamesh(91).graph())) /
      hm::graph::diameter(make_grid(100).graph());
  EXPECT_LT(r91, r19 + 0.05);
  EXPECT_GT(r91, asymptotic_diameter_ratio_hm() - 0.05);
}

TEST(Integration, FullGlobalBandwidthAccounting) {
  // Sec. VI-A: full global BW = N x endpoints x per-link BW.
  const auto r = evaluate_analytic(make_hexamesh(37));
  EXPECT_DOUBLE_EQ(r.full_global_bandwidth_bps,
                   37.0 * 2.0 * r.per_link_bandwidth_bps);
}

TEST(Integration, EveryArrangementSizeBuildsAndEvaluatesAnalytically) {
  for (std::size_t n = 1; n <= 100; n += 7) {
    for (auto type : {ArrangementType::kGrid, ArrangementType::kBrickwall,
                      ArrangementType::kHexaMesh}) {
      const auto arr = make_arrangement(type, n);
      const auto r = evaluate_analytic(arr);
      EXPECT_EQ(r.chiplet_count, n);
      EXPECT_GT(r.per_link_bandwidth_bps, 0.0) << arr.name();
    }
  }
}

}  // namespace
