// Tests for the arrangement local-search subsystem: mutation legality per
// lattice family, incremental-vs-full RoutingTables equivalence across
// random edit sequences (the byte-identical rebuild contract of
// TopologyContext::rebuild_from), intern-cache interchangeability of
// delta-built and from-scratch contexts, thread-count-independent search
// traces, and the annealing monotonic-best invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/arrangement.hpp"
#include "cost/cost_model.hpp"
#include "graph/algorithms.hpp"
#include "noc/rng.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "search/mutation.hpp"
#include "search/search.hpp"

namespace {

using hm::core::Arrangement;
using hm::core::ArrangementType;
using hm::core::make_arrangement;
using hm::graph::NodeId;
using hm::noc::GraphEdit;
using hm::noc::RoutingTables;
using hm::noc::TopologyContext;
using hm::search::Candidate;
using hm::search::MutationKind;
using hm::search::propose_mutation;

const ArrangementType kFamilies[] = {ArrangementType::kGrid,
                                     ArrangementType::kBrickwall,
                                     ArrangementType::kHexaMesh};

std::size_t family_size(ArrangementType t) {
  switch (t) {
    case ArrangementType::kGrid: return 16;
    case ArrangementType::kBrickwall: return 18;
    default: return 19;
  }
}

/// Draws until a proposal succeeds (or `tries` draws failed).
std::optional<Candidate> draw(const Arrangement& cur, hm::noc::Rng& rng,
                              int tries = 16) {
  for (int t = 0; t < tries; ++t) {
    if (auto c = propose_mutation(cur, rng)) return c;
  }
  return std::nullopt;
}

std::vector<std::size_t> sorted_degrees(const hm::graph::Graph& g) {
  std::vector<std::size_t> d;
  d.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) d.push_back(g.degree(v));
  std::sort(d.begin(), d.end());
  return d;
}

// --- Mutation legality ---------------------------------------------------------

TEST(Mutation, CandidatesAreLegalAcrossFamilies) {
  for (const auto type : kFamilies) {
    const Arrangement arr = make_arrangement(type, family_size(type));
    ASSERT_TRUE(hm::search::is_legal_arrangement(arr));
    hm::noc::Rng rng(101);
    int produced = 0;
    for (int iter = 0; iter < 120; ++iter) {
      const auto c = propose_mutation(arr, rng);
      if (!c.has_value()) continue;
      ++produced;
      EXPECT_TRUE(hm::search::is_legal_arrangement(c->arrangement))
          << hm::core::to_string(type) << " " << to_string(c->kind);
      EXPECT_EQ(c->arrangement.chiplet_count(), arr.chiplet_count());
      EXPECT_TRUE(hm::graph::is_connected(c->arrangement.graph()));
      // The reported edit takes the old graph to the candidate's graph —
      // the contract rebuild_from relies on.
      EXPECT_EQ(hm::noc::apply_edit(arr.graph(), c->edit).edges(),
                c->arrangement.graph().edges());
    }
    EXPECT_GT(produced, 60) << hm::core::to_string(type);
  }
}

TEST(Mutation, PerKindInvariants) {
  for (const auto type : kFamilies) {
    const Arrangement arr = make_arrangement(type, family_size(type));
    hm::noc::Rng rng(202);

    for (int iter = 0; iter < 60; ++iter) {
      // Stock arrangements carry the full induced adjacency, so kAddEdge
      // has no legal move until something is removed.
      EXPECT_FALSE(
          propose_mutation(arr, MutationKind::kAddEdge, rng).has_value());
    }

    int seen_remove = 0, seen_relocate = 0, seen_swap = 0;
    for (int iter = 0; iter < 120; ++iter) {
      if (auto c = propose_mutation(arr, MutationKind::kRemoveEdge, rng)) {
        ++seen_remove;
        EXPECT_EQ(c->arrangement.graph().edge_count(),
                  arr.graph().edge_count() - 1);
        EXPECT_EQ(c->edit.removed.size(), 1u);
        EXPECT_TRUE(c->edit.added.empty());
        // Removal re-opens the slot for kAddEdge.
        hm::noc::Rng rng2(11);
        const auto back =
            propose_mutation(c->arrangement, MutationKind::kAddEdge, rng2);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->arrangement.graph().edge_count(),
                  arr.graph().edge_count());
      }
      if (auto c = propose_mutation(arr, MutationKind::kRelocate, rng)) {
        ++seen_relocate;
        std::size_t moved = 0;
        for (std::size_t i = 0; i < arr.chiplet_count(); ++i) {
          if (!(arr.coords()[i] == c->arrangement.coords()[i])) ++moved;
        }
        EXPECT_EQ(moved, 1u);
      }
      if (auto c = propose_mutation(arr, MutationKind::kSwap, rng)) {
        ++seen_swap;
        // A swap relabels two vertices: same site multiset, same degree
        // sequence, same edge count.
        auto sites = [](const Arrangement& a) {
          std::multiset<std::pair<int, int>> s;
          for (const auto& c2 : a.coords()) s.insert({c2.a, c2.b});
          return s;
        };
        EXPECT_EQ(sites(arr), sites(c->arrangement));
        EXPECT_EQ(sorted_degrees(arr.graph()),
                  sorted_degrees(c->arrangement.graph()));
        EXPECT_EQ(arr.graph().edge_count(),
                  c->arrangement.graph().edge_count());
      }
    }
    EXPECT_GT(seen_remove, 40) << hm::core::to_string(type);
    EXPECT_GT(seen_relocate, 40) << hm::core::to_string(type);
    EXPECT_GT(seen_swap, 40) << hm::core::to_string(type);
  }
}

// --- Incremental vs. full routing-table builds ---------------------------------

TEST(IncrementalRebuild, MatchesFullBuildAcrossRandomEditSequences) {
  // >= 50 random walks through the mutation space (17 per family, 4 edits
  // each); after every edit the delta-built tables must equal a
  // from-scratch build element for element.
  std::size_t edits_checked = 0;
  for (std::size_t fi = 0; fi < 3; ++fi) {
    for (std::uint64_t seq = 0; seq < 17; ++seq) {
      hm::noc::Rng rng(hm::noc::derive_seed(1000 * fi + 17, seq));
      Arrangement cur = make_arrangement(kFamilies[fi], family_size(kFamilies[fi]));
      RoutingTables tables(cur.graph());
      for (int step = 0; step < 4; ++step) {
        auto c = draw(cur, rng);
        if (!c.has_value()) break;
        RoutingTables incremental(c->arrangement.graph(), tables, c->edit);
        const RoutingTables full(c->arrangement.graph());
        ASSERT_TRUE(incremental.identical_to(full))
            << hm::core::to_string(kFamilies[fi]) << " seq " << seq
            << " step " << step << " op " << to_string(c->kind);
        ++edits_checked;
        cur = std::move(c->arrangement);
        tables = std::move(incremental);
      }
    }
  }
  EXPECT_GE(edits_checked, 150u);
}

TEST(IncrementalRebuild, ToggleSequencesStayIncrementalOnMeshes) {
  // Link toggles are the edits the incremental path targets: on mesh-like
  // graphs path diversity absorbs most removals (the far endpoint keeps
  // another tight predecessor), so the sharp per-row criteria must keep
  // the build on the incremental path for a healthy share of the
  // sequence — while staying element-identical to full builds.
  std::size_t toggles = 0;
  const auto incr0 = RoutingTables::incremental_builds();
  for (std::size_t fi = 0; fi < 3; ++fi) {
    for (std::uint64_t seq = 0; seq < 6; ++seq) {
      hm::noc::Rng rng(hm::noc::derive_seed(77 + fi, seq));
      Arrangement cur =
          make_arrangement(kFamilies[fi], family_size(kFamilies[fi]));
      RoutingTables tables(cur.graph());
      for (int step = 0; step < 5; ++step) {
        std::optional<Candidate> c;
        for (int t = 0; t < 16 && !c; ++t) {
          const auto kind = rng.uniform_int(2) == 0
                                ? MutationKind::kRemoveEdge
                                : MutationKind::kAddEdge;
          c = propose_mutation(cur, kind, rng);
        }
        if (!c.has_value()) break;
        RoutingTables incremental(c->arrangement.graph(), tables, c->edit);
        const RoutingTables full(c->arrangement.graph());
        ASSERT_TRUE(incremental.identical_to(full))
            << hm::core::to_string(kFamilies[fi]) << " seq " << seq
            << " step " << step << " op " << to_string(c->kind);
        ++toggles;
        cur = std::move(c->arrangement);
        tables = std::move(incremental);
      }
    }
  }
  EXPECT_GE(toggles, 60u);
  const auto incremental_taken = RoutingTables::incremental_builds() - incr0;
  EXPECT_GE(incremental_taken, toggles / 3)
      << "sharp criteria regressed: toggles mostly falling back to full "
         "builds";
}

TEST(IncrementalRebuild, LocalEditStaysIncrementalAndReusesRows) {
  // Dense graph where an edge removal provably invalidates only the two
  // endpoint rows (in K_n every other vertex keeps distance 1 to both):
  // the rebuild must take the incremental path and reuse n-2 rows.
  constexpr std::size_t n = 20;
  hm::graph::Graph g(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  const RoutingTables prev(g);
  GraphEdit edit;
  edit.removed.push_back({3, 11});
  hm::graph::Graph g2 = hm::noc::apply_edit(g, edit);

  const auto incr0 = RoutingTables::incremental_builds();
  const auto reused0 = RoutingTables::incremental_rows_reused();
  const RoutingTables incremental(g2, prev, edit);
  EXPECT_EQ(RoutingTables::incremental_builds(), incr0 + 1);
  EXPECT_EQ(RoutingTables::incremental_rows_reused(), reused0 + (n - 2));
  EXPECT_TRUE(incremental.identical_to(RoutingTables(g2)));
}

TEST(IncrementalRebuild, NonLocalEditFallsBackAndStaysIdentical) {
  // On a ring, toggling one chord changes distances from almost every
  // vertex — the rebuild must fall back to a full build, still yielding
  // identical tables.
  constexpr std::size_t n = 24;
  hm::graph::Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  }
  const RoutingTables prev(g);
  GraphEdit edit;
  edit.added.push_back({0, 12});  // antipodal chord: every row shortens
  hm::graph::Graph g2 = hm::noc::apply_edit(g, edit);

  const auto incr0 = RoutingTables::incremental_builds();
  const RoutingTables rebuilt(g2, prev, edit);
  EXPECT_EQ(RoutingTables::incremental_builds(), incr0);  // fell back
  EXPECT_TRUE(rebuilt.identical_to(RoutingTables(g2)));
}

TEST(IncrementalRebuild, RebuildFromInternsWithAcquire) {
  const Arrangement arr = make_arrangement(ArrangementType::kHexaMesh, 19);
  const auto ctx = TopologyContext::acquire(arr.graph());

  // An empty edit is the identity: same shared instance, no build.
  EXPECT_EQ(TopologyContext::rebuild_from(ctx, GraphEdit{}).get(), ctx.get());

  hm::noc::Rng rng(5);
  const auto c = draw(arr, rng);
  ASSERT_TRUE(c.has_value());
  const auto delta = TopologyContext::rebuild_from(ctx, c->edit);
  EXPECT_EQ(delta->digest(), hm::noc::graph_digest(c->arrangement.graph()));
  // Delta-built contexts land in the same digest-keyed intern cache, so a
  // from-scratch acquire of the edited graph adopts the delta build (and
  // vice versa): the two build paths are interchangeable.
  const auto fresh = TopologyContext::acquire(c->arrangement.graph());
  EXPECT_EQ(delta.get(), fresh.get());
  // And the delta-built tables equal a private from-scratch build.
  const TopologyContext reference(c->arrangement.graph());
  EXPECT_TRUE(delta->tables().identical_to(reference.tables()));

  EXPECT_THROW(TopologyContext::rebuild_from(nullptr, c->edit),
               std::invalid_argument);
}

// --- SearchEngine --------------------------------------------------------------

hm::search::SearchOptions fast_options() {
  hm::search::SearchOptions opt;
  opt.steps = 4;
  opt.candidates_per_step = 3;
  opt.seed = 7;
  opt.params.throughput_warmup = 250;
  opt.params.throughput_measure = 250;
  opt.params.latency_warmup = 250;
  opt.params.latency_measure = 500;
  return opt;
}

TEST(SearchEngine, TraceIsThreadCountIndependent) {
  std::string reference;
  for (const unsigned threads : {1u, 4u, 8u}) {
    auto opt = fast_options();
    opt.threads = threads;
    hm::search::SearchEngine engine(opt);
    const auto res =
        engine.run(make_arrangement(ArrangementType::kGrid, 9));
    const std::string csv = hm::search::trace_to_csv(res.trace);
    if (reference.empty()) {
      reference = csv;
      EXPECT_EQ(res.trace.size(), opt.steps);
    } else {
      EXPECT_EQ(csv, reference) << "threads=" << threads;
    }
  }
}

TEST(SearchEngine, HillClimbAcceptsOnlyImprovements) {
  auto opt = fast_options();
  opt.steps = 6;
  hm::search::SearchEngine engine(opt);
  const auto res =
      engine.run(make_arrangement(ArrangementType::kBrickwall, 12));
  double current = res.baseline_score;
  for (const auto& s : res.trace) {
    if (s.accepted) {
      EXPECT_GT(s.current_score, current);
    } else {
      EXPECT_EQ(s.current_score, current);
    }
    // Under hill climbing the current state is always the best state.
    EXPECT_EQ(s.current_score, s.best_score);
    current = s.current_score;
  }
  EXPECT_GE(res.best_score, res.baseline_score);
}

TEST(SearchEngine, AnnealMonotonicBestInvariant) {
  auto opt = fast_options();
  opt.schedule = hm::search::Schedule::kAnneal;
  opt.steps = 8;
  opt.candidates_per_step = 2;
  opt.initial_temperature = 0.05;
  hm::search::SearchEngine engine(opt);
  const auto res =
      engine.run(make_arrangement(ArrangementType::kHexaMesh, 13));

  // The annealing current state may walk downhill, but best-so-far is
  // monotone and never below the baseline.
  double best = res.baseline_score;
  for (const auto& s : res.trace) {
    EXPECT_GE(s.best_score, best);
    EXPECT_GE(s.best_score, s.current_score);
    best = s.best_score;
  }
  EXPECT_EQ(best, res.best_score);
  EXPECT_GE(res.best_score, res.baseline_score);
  EXPECT_TRUE(hm::search::is_legal_arrangement(res.best));
  // The reported best is reproducible: re-scoring it yields its score.
  EXPECT_EQ(res.best_result.saturation_throughput_bps, res.best_score);
}

TEST(SearchEngine, ZeroBaselineAnnealKeepsMetropolisAlive) {
  // Regression: the annealing temperature is scaled by |baseline_score|,
  // so a zero baseline used to collapse the temperature to ~0 and silently
  // degenerate kAnneal into hill climbing (strictly-worse candidates were
  // never accepted). The absolute min_temperature floor keeps acceptance
  // alive; the trace records the effective (floored) temperature.
  auto opt = fast_options();
  opt.schedule = hm::search::Schedule::kAnneal;
  opt.steps = 10;
  opt.candidates_per_step = 1;  // no best-of-batch bias toward ties
  opt.seed = 3;
  opt.min_temperature = 0.75;
  // Score = link deficit vs. the stock arrangement: baseline is exactly 0,
  // removing a link scores -1 (strictly worse), re-adding scores back up.
  const auto start = make_arrangement(ArrangementType::kHexaMesh, 13);
  const double start_links =
      static_cast<double>(start.graph().edge_count());
  opt.objective.custom = [start_links](const hm::core::EvaluationResult& r) {
    return static_cast<double>(r.link_count) - start_links;
  };
  hm::search::SearchEngine engine(opt);
  const auto res = engine.run(start);

  EXPECT_EQ(res.baseline_score, 0.0);
  double min_current = 0.0;
  for (const auto& s : res.trace) {
    // The floor is the effective temperature (0 * cooling^step < floor)
    // and the trace makes that visible.
    EXPECT_DOUBLE_EQ(s.temperature, opt.min_temperature);
    EXPECT_TRUE(s.temperature_floored);
    min_current = std::min(min_current, s.current_score);
  }
  // Metropolis accepted a strictly-worse candidate (exp(-1/0.75) ~ 0.26
  // per downhill proposal; deterministic for the fixed seed) — the exact
  // behavior the pre-floor code could never exhibit at zero baseline.
  EXPECT_LT(min_current, 0.0);
  EXPECT_GE(res.best_score, res.baseline_score);
}

// --- Multi-objective scoring ----------------------------------------------------

TEST(Objective, ThroughputPerLinkAreaIsMonotoneInLinkCount) {
  hm::core::EvaluationResult r;
  r.saturation_throughput_bps = 2.5e13;
  r.link_area_mm2 = 3.0;

  hm::search::ObjectiveSpec spec(
      hm::search::Objective::kThroughputPerLinkArea);
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t links = 1; links <= 64; ++links) {
    r.link_count = links;
    const double s = hm::search::score(spec, r);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, prev) << "score must strictly decrease with link count";
    prev = s;
  }

  // Full normalization divides by cost::d2d_link_area_mm2 (two bump
  // sectors per link).
  r.link_count = 10;
  EXPECT_DOUBLE_EQ(hm::search::score(spec, r),
                   r.saturation_throughput_bps /
                       hm::cost::d2d_link_area_mm2(r.link_area_mm2, 10));

  // area_weight is a scalarization knob: 0 collapses to pure throughput,
  // intermediate weights interpolate the penalty.
  spec.area_weight = 0.0;
  EXPECT_DOUBLE_EQ(hm::search::score(spec, r),
                   r.saturation_throughput_bps);
  spec.area_weight = 0.5;
  const double half = hm::search::score(spec, r);
  spec.area_weight = 1.0;
  EXPECT_GT(half, hm::search::score(spec, r));
  EXPECT_LT(half, r.saturation_throughput_bps);
}

TEST(Objective, CustomScoreOverridesKindAndSelectsBothMeasurements) {
  hm::core::EvaluationResult r;
  r.saturation_throughput_bps = 5.0;
  hm::search::ObjectiveSpec spec(hm::search::Objective::kZeroLoadLatency);
  spec.custom = [](const hm::core::EvaluationResult&) { return 7.5; };
  EXPECT_DOUBLE_EQ(hm::search::score(spec, r), 7.5);

  hm::core::EvaluationParams params;
  hm::search::apply_measurement_selection(spec, params);
  EXPECT_TRUE(params.measure_latency);
  EXPECT_TRUE(params.measure_saturation);

  spec.custom = nullptr;
  hm::search::apply_measurement_selection(spec, params);
  EXPECT_TRUE(params.measure_latency);
  EXPECT_FALSE(params.measure_saturation);
  spec.kind = hm::search::Objective::kThroughputPerLinkArea;
  hm::search::apply_measurement_selection(spec, params);
  EXPECT_FALSE(params.measure_latency);
  EXPECT_TRUE(params.measure_saturation);

  spec.area_weight = -0.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(SearchEngine, ProgressAndTraceExports) {
  auto opt = fast_options();
  opt.steps = 3;
  std::size_t calls = 0;
  opt.on_progress = [&](const hm::search::SearchProgress& p) {
    ++calls;
    EXPECT_EQ(p.step, calls);
    EXPECT_EQ(p.total, 3u);
    ASSERT_NE(p.last, nullptr);
  };
  hm::search::SearchEngine engine(opt);
  const auto res = engine.run(make_arrangement(ArrangementType::kGrid, 8));
  EXPECT_EQ(calls, 3u);

  const std::string csv = hm::search::trace_to_csv(res.trace);
  EXPECT_NE(csv.find("step,mutation,candidates"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);  // header + 3 rows
  const std::string json = hm::search::trace_to_json(res.trace);
  EXPECT_NE(json.find("\"best_score\""), std::string::npos);
}

TEST(SearchEngine, RejectsDegenerateInputs) {
  hm::search::SearchEngine engine{hm::search::SearchOptions{}};
  EXPECT_THROW((void)engine.run(make_arrangement(ArrangementType::kGrid, 1)),
               std::invalid_argument);
  auto bad = hm::search::SearchOptions{};
  bad.candidates_per_step = 0;
  hm::search::SearchEngine engine2(bad);
  EXPECT_THROW((void)engine2.run(make_arrangement(ArrangementType::kGrid, 9)),
               std::invalid_argument);
}

}  // namespace
