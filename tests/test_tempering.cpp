// Tests for the population-based parallel-tempering engine
// (search/tempering.hpp): thread-count-independent traces, the geometric
// (floored) temperature ladder, replica-exchange bookkeeping, the global
// monotone-best invariant, option validation, and warm-started sweeps
// (SweepEngine::add_arrangement / search::search_then_sweep) riding
// searched arrangements alongside the stock families.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/arrangement.hpp"
#include "explore/export.hpp"
#include "explore/sweep.hpp"
#include "search/tempering.hpp"
#include "search/warm_start.hpp"

namespace {

using hm::core::Arrangement;
using hm::core::ArrangementType;
using hm::core::make_arrangement;
using hm::search::TemperingEngine;
using hm::search::TemperingOptions;

/// Interactive-speed measurement windows shared by every tempering test
/// (mirrors test_search's fast_options).
TemperingOptions fast_options() {
  TemperingOptions opt;
  opt.replicas = 3;
  opt.steps = 4;
  opt.candidates_per_step = 2;
  opt.exchange_interval = 2;
  opt.seed = 7;
  opt.params.throughput_warmup = 250;
  opt.params.throughput_measure = 250;
  opt.params.latency_warmup = 250;
  opt.params.latency_measure = 500;
  return opt;
}

TEST(TemperingEngine, TraceIsThreadCountIndependent) {
  std::string reference;
  for (const unsigned threads : {1u, 4u, 8u}) {
    auto opt = fast_options();
    opt.threads = threads;
    TemperingEngine engine(opt);
    const auto res = engine.run(make_arrangement(ArrangementType::kGrid, 9));
    const std::string csv = hm::search::trace_to_csv(res.trace);
    if (reference.empty()) {
      reference = csv;
      EXPECT_EQ(res.trace.size(), opt.steps * opt.replicas);
    } else {
      EXPECT_EQ(csv, reference) << "threads=" << threads;
    }
  }
}

TEST(TemperingEngine, LadderIsGeometricColdestFirstAndFloored) {
  auto opt = fast_options();
  opt.replicas = 4;
  opt.steps = 1;
  opt.initial_temperature = 0.08;
  opt.ladder_ratio = 0.5;
  TemperingEngine engine(opt);
  const auto res =
      engine.run(make_arrangement(ArrangementType::kHexaMesh, 13));

  ASSERT_EQ(res.temperatures.size(), 4u);
  const double hot = std::abs(res.baseline_score) * opt.initial_temperature;
  EXPECT_GT(hot, 0.0);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(res.temperatures[k], hot * std::pow(0.5, 3 - k),
                1e-6 * hot);
    if (k > 0) {
      EXPECT_GT(res.temperatures[k], res.temperatures[k - 1]);
    }
  }
  // Trace rows carry each replica's fixed rung.
  for (const auto& row : res.trace) {
    EXPECT_DOUBLE_EQ(row.temperature, res.temperatures[row.replica]);
  }

  // A (hypothetical) zero baseline cannot collapse the ladder: rungs are
  // floored. Simulated via a custom zero objective.
  auto zopt = fast_options();
  zopt.steps = 1;
  zopt.min_temperature = 0.5;
  zopt.objective.custom = [](const hm::core::EvaluationResult&) {
    return 0.0;
  };
  TemperingEngine zengine(zopt);
  const auto zres =
      zengine.run(make_arrangement(ArrangementType::kGrid, 9));
  EXPECT_EQ(zres.baseline_score, 0.0);
  for (const double t : zres.temperatures) EXPECT_DOUBLE_EQ(t, 0.5);
}

TEST(TemperingEngine, GlobalBestIsMonotoneAndReproducible) {
  auto opt = fast_options();
  opt.steps = 6;
  TemperingEngine engine(opt);
  const auto res =
      engine.run(make_arrangement(ArrangementType::kHexaMesh, 13));

  double best = res.baseline_score;
  for (const auto& row : res.trace) {
    EXPECT_GE(row.best_score, best);
    EXPECT_GE(row.best_score, row.current_score);
    best = row.best_score;
  }
  EXPECT_EQ(best, res.best_score);
  EXPECT_GE(res.best_score, res.baseline_score);
  EXPECT_TRUE(hm::search::is_legal_arrangement(res.best));
  EXPECT_EQ(res.best_result.saturation_throughput_bps, res.best_score);
  ASSERT_EQ(res.replica_scores.size(), opt.replicas);
  EXPECT_EQ(res.evaluations,
            1 + opt.steps * opt.replicas * opt.candidates_per_step);
}

TEST(TemperingEngine, ExchangeBookkeepingIsConsistent) {
  auto opt = fast_options();
  opt.steps = 8;
  opt.exchange_interval = 2;
  opt.replicas = 3;
  TemperingEngine engine(opt);
  const auto res = engine.run(make_arrangement(ArrangementType::kGrid, 9));

  // 4 exchange sweeps; parity alternates, so sweeps attempt pair (0,1) or
  // (1,2) — one pair per sweep with K=3.
  EXPECT_EQ(res.exchange_attempts, 4u);
  EXPECT_LE(res.exchange_accepts, res.exchange_attempts);

  std::size_t exchanged_rows = 0;
  for (const auto& row : res.trace) {
    if (!row.exchanged) {
      EXPECT_EQ(row.exchange_partner, -1);
      continue;
    }
    ++exchanged_rows;
    // Partner symmetry within the same step.
    const auto partner = static_cast<std::size_t>(row.exchange_partner);
    const auto& mirror = res.trace[row.step * opt.replicas + partner];
    EXPECT_TRUE(mirror.exchanged);
    EXPECT_EQ(static_cast<std::size_t>(mirror.exchange_partner),
              row.replica);
    // Exchanges only happen on sweep steps.
    EXPECT_EQ((row.step + 1) % opt.exchange_interval, 0u);
  }
  EXPECT_EQ(exchanged_rows, 2 * res.exchange_accepts);
}

TEST(TemperingEngine, SingleReplicaNeverExchanges) {
  auto opt = fast_options();
  opt.replicas = 1;
  opt.steps = 4;
  TemperingEngine engine(opt);
  const auto res = engine.run(make_arrangement(ArrangementType::kGrid, 8));
  EXPECT_EQ(res.exchange_attempts, 0u);
  EXPECT_EQ(res.trace.size(), 4u);
  EXPECT_GE(res.best_score, res.baseline_score);
}

TEST(TemperingEngine, RejectsDegenerateOptions) {
  const auto start = make_arrangement(ArrangementType::kGrid, 9);
  {
    auto opt = fast_options();
    opt.replicas = 0;
    EXPECT_THROW((void)TemperingEngine(opt).run(start),
                 std::invalid_argument);
  }
  {
    auto opt = fast_options();
    opt.exchange_interval = 0;
    EXPECT_THROW((void)TemperingEngine(opt).run(start),
                 std::invalid_argument);
  }
  {
    auto opt = fast_options();
    opt.ladder_ratio = 0.0;
    EXPECT_THROW((void)TemperingEngine(opt).run(start),
                 std::invalid_argument);
  }
  {
    auto opt = fast_options();
    opt.min_temperature = 0.0;
    EXPECT_THROW((void)TemperingEngine(opt).run(start),
                 std::invalid_argument);
  }
  {
    auto opt = fast_options();
    opt.objective.area_weight = -1.0;
    EXPECT_THROW((void)TemperingEngine(opt).run(start),
                 std::invalid_argument);
  }
  EXPECT_THROW((void)TemperingEngine(fast_options())
                   .run(make_arrangement(ArrangementType::kGrid, 1)),
               std::invalid_argument);
}

// --- Warm-started sweeps --------------------------------------------------------

hm::explore::SweepSpec small_spec() {
  hm::explore::SweepSpec spec;
  spec.types = {ArrangementType::kGrid, ArrangementType::kHexaMesh};
  spec.chiplet_counts = {7};
  hm::core::EvaluationParams params;
  params.throughput_warmup = 250;
  params.throughput_measure = 250;
  params.latency_warmup = 250;
  params.latency_measure = 500;
  spec.param_grid = {params};
  return spec;
}

TEST(WarmStartedSweep, AddArrangementAppendsLabelledPoints) {
  hm::explore::SweepEngine engine;
  engine.add_arrangement(make_arrangement(ArrangementType::kHexaMesh, 7),
                         "my-searched-point");
  EXPECT_EQ(engine.arrangement_count(), 1u);
  const auto records = engine.run(small_spec());

  // 2 family points + 1 extra, indices continuous.
  ASSERT_EQ(records.size(), 3u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].point.index, i);
    EXPECT_TRUE(records[i].error.empty()) << records[i].error;
  }
  const auto& extra = records.back();
  ASSERT_TRUE(extra.point.custom != nullptr);
  EXPECT_EQ(extra.point.label, "my-searched-point");
  EXPECT_EQ(extra.point.chiplet_count, 7u);
  // The custom point is a real evaluation, and — being the stock hexamesh
  // here — matches the family point evaluated under its own derived seed.
  EXPECT_GT(extra.result.saturation_throughput_bps, 0.0);

  // Exports carry the label instead of the family name.
  const std::string csv = hm::explore::to_csv(records);
  EXPECT_NE(csv.find("my-searched-point"), std::string::npos);
  const std::string json = hm::explore::to_json(records);
  EXPECT_NE(json.find("\"arrangement\": \"my-searched-point\""),
            std::string::npos);

  engine.clear_arrangements();
  EXPECT_EQ(engine.arrangement_count(), 0u);
  EXPECT_EQ(engine.run(small_spec()).size(), 2u);
}

TEST(WarmStartedSweep, SearchThenSweepIsThreadCountIndependent) {
  std::string reference;
  for (const unsigned threads : {1u, 4u}) {
    auto topt = fast_options();
    topt.steps = 2;
    topt.threads = threads;
    hm::explore::SweepEngine::Options sopt;
    sopt.threads = threads;
    hm::explore::SweepEngine engine(sopt);
    const auto out = hm::search::search_then_sweep(
        make_arrangement(ArrangementType::kHexaMesh, 7), topt, engine,
        small_spec());

    ASSERT_EQ(out.records.size(), 3u);
    EXPECT_TRUE(out.records.back().point.custom != nullptr);
    EXPECT_EQ(out.records.back().point.label,
              "searched:" + make_arrangement(ArrangementType::kHexaMesh, 7)
                                .name());
    EXPECT_GE(out.tempering.best_score, out.tempering.baseline_score);

    const std::string csv = hm::explore::to_csv(out.records);
    if (reference.empty()) {
      reference = csv;
    } else {
      EXPECT_EQ(csv, reference) << "threads=" << threads;
    }
  }
}

}  // namespace
