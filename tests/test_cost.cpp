// Tests for the cost/yield extension module: the negative-binomial yield
// model, dies-per-wafer geometry and the monolithic-vs-chiplets comparison
// that quantifies the paper's Sec. I economics motivation.
#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost_model.hpp"

namespace {

using namespace hm::cost;

TEST(Yield, PerfectProcessYieldsOne) {
  ProcessParams p;
  p.defect_density_per_mm2 = 0.0;
  EXPECT_DOUBLE_EQ(negative_binomial_yield(800.0, p), 1.0);
}

TEST(Yield, KnownValue) {
  // Y = (1 + A*D0/alpha)^-alpha with A=100, D0=0.001, alpha=3:
  // (1 + 0.1/3)^-3 = 0.90622...
  ProcessParams p;
  const double y = negative_binomial_yield(100.0, p);
  EXPECT_NEAR(y, std::pow(1.0 + 0.1 / 3.0, -3.0), 1e-12);
}

TEST(Yield, DecreasesWithArea) {
  ProcessParams p;
  EXPECT_GT(negative_binomial_yield(50.0, p),
            negative_binomial_yield(800.0, p));
}

TEST(Yield, DecreasesWithDefectDensity) {
  ProcessParams clean;
  ProcessParams dirty;
  dirty.defect_density_per_mm2 = 0.01;
  EXPECT_GT(negative_binomial_yield(400.0, clean),
            negative_binomial_yield(400.0, dirty));
}

TEST(DiesPerWafer, RoughGeometry) {
  ProcessParams p;  // 300 mm wafer
  const double dpw = dies_per_wafer(100.0, p);
  // Gross area ratio is ~706; edge losses take out ~67.
  EXPECT_GT(dpw, 550.0);
  EXPECT_LT(dpw, 706.0);
}

TEST(DiesPerWafer, MoreSmallDiesThanLarge) {
  ProcessParams p;
  EXPECT_GT(dies_per_wafer(50.0, p), 2.0 * dies_per_wafer(200.0, p));
}

TEST(GoodDieCost, IncreasesSuperlinearlyWithArea) {
  ProcessParams p;
  p.defect_density_per_mm2 = 0.002;
  const double c100 = good_die_cost(100.0, p);
  const double c400 = good_die_cost(400.0, p);
  EXPECT_GT(c400, 4.0 * c100);  // yield loss makes big dies extra expensive
}

TEST(CostModel, ChipletsWinAtHighDefectDensity) {
  ProcessParams p;
  p.defect_density_per_mm2 = 0.003;  // advanced node, poor yield
  SystemParams s;
  s.total_logic_area_mm2 = 800.0;
  s.num_chiplets = 16;
  EXPECT_LT(chiplet_cost(s, p).total, monolithic_cost(s, p).total);
}

TEST(CostModel, MonolithWinsWhenDefectFree) {
  ProcessParams p;
  p.defect_density_per_mm2 = 0.0;
  SystemParams s;
  s.num_chiplets = 16;
  // No yield advantage left; chiplets still pay PHY area + packaging.
  EXPECT_GT(chiplet_cost(s, p).total, monolithic_cost(s, p).total);
}

TEST(CostModel, BreakdownSumsToTotal) {
  ProcessParams p;
  SystemParams s;
  const auto c = chiplet_cost(s, p);
  EXPECT_NEAR(c.total, c.silicon + c.packaging + c.nre_per_unit, 1e-9);
  const auto m = monolithic_cost(s, p);
  EXPECT_NEAR(m.total, m.silicon + m.packaging + m.nre_per_unit, 1e-9);
}

TEST(CostModel, NreAmortizesWithVolume) {
  ProcessParams p;
  SystemParams low;
  low.volume = 1000;
  SystemParams high;
  high.volume = 1000000;
  EXPECT_GT(chiplet_cost(low, p).nre_per_unit,
            chiplet_cost(high, p).nre_per_unit);
}

TEST(CostModel, AssemblyYieldCompounds) {
  ProcessParams p;
  SystemParams s;
  s.num_chiplets = 20;
  s.assembly_yield_per_chiplet = 0.99;
  const auto c = chiplet_cost(s, p);
  EXPECT_NEAR(c.compound_yield, std::pow(0.99, 20), 1e-12);
}

TEST(CostModel, PhyOverheadIncreasesSilicon) {
  ProcessParams p;
  SystemParams none;
  none.phy_area_fraction = 0.0;
  SystemParams some;
  some.phy_area_fraction = 0.10;
  EXPECT_GT(chiplet_cost(some, p).silicon, chiplet_cost(none, p).silicon);
}

TEST(CostModel, InvalidInputsRejected) {
  ProcessParams p;
  p.wafer_cost = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  SystemParams s;
  s.num_chiplets = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  ProcessParams ok;
  EXPECT_THROW((void)negative_binomial_yield(-5.0, ok),
               std::invalid_argument);
  EXPECT_THROW((void)good_die_cost(1e9, ok), std::invalid_argument);
}

}  // namespace
