// Tests for the balanced bisection (METIS stand-in): exact optima on known
// graphs, balance constraints, determinism, and agreement with the paper's
// closed-form bisection widths on regular arrangements.
#include <gtest/gtest.h>

#include "core/brickwall.hpp"
#include "core/grid.hpp"
#include "core/hexamesh.hpp"
#include "core/proxies.hpp"
#include "graph/graph.hpp"
#include "partition/partitioner.hpp"

namespace {

using hm::graph::Graph;
using hm::graph::NodeId;
using hm::partition::bisect;
using hm::partition::BisectionOptions;
using hm::partition::bisection_width;

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle_graph(std::size_t n) {
  Graph g = path_graph(n);
  g.add_edge(0, static_cast<NodeId>(n - 1));
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

TEST(Bisect, TrivialGraphs) {
  EXPECT_EQ(bisection_width(Graph(0)), 0u);
  EXPECT_EQ(bisection_width(Graph(1)), 0u);
  Graph two(2);
  two.add_edge(0, 1);
  EXPECT_EQ(bisection_width(two), 1u);
}

TEST(Bisect, PathHasCutOne) {
  EXPECT_EQ(bisection_width(path_graph(8)), 1u);
  EXPECT_EQ(bisection_width(path_graph(9)), 1u);
}

TEST(Bisect, CycleHasCutTwo) {
  EXPECT_EQ(bisection_width(cycle_graph(8)), 2u);
  EXPECT_EQ(bisection_width(cycle_graph(13)), 2u);
}

TEST(Bisect, CompleteGraphCut) {
  // K6 split 3/3: cut = 3*3 = 9.
  EXPECT_EQ(bisection_width(complete_graph(6)), 9u);
  // K5 split 2/3: cut = 2*3 = 6.
  EXPECT_EQ(bisection_width(complete_graph(5)), 6u);
}

TEST(Bisect, DisconnectedGraphHasZeroCut) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  EXPECT_EQ(bisection_width(g), 0u);
}

TEST(Bisect, BalanceRespectedEvenN) {
  const auto result = bisect(cycle_graph(10));
  EXPECT_EQ(result.part_sizes[0], 5u);
  EXPECT_EQ(result.part_sizes[1], 5u);
}

TEST(Bisect, BalanceRespectedOddN) {
  const auto result = bisect(cycle_graph(11));
  const auto big = std::max(result.part_sizes[0], result.part_sizes[1]);
  const auto small = std::min(result.part_sizes[0], result.part_sizes[1]);
  EXPECT_EQ(big, 6u);
  EXPECT_EQ(small, 5u);
}

TEST(Bisect, SideAssignmentMatchesCut) {
  Graph g = cycle_graph(12);
  const auto result = bisect(g);
  std::size_t crossing = 0;
  for (const auto& [a, b] : g.edges()) {
    if (result.side[a] != result.side[b]) ++crossing;
  }
  EXPECT_EQ(crossing, result.cut_edges);
}

TEST(Bisect, DeterministicForFixedSeed) {
  Graph g = cycle_graph(20);
  BisectionOptions opts;
  opts.seed = 7;
  const auto a = bisect(g, opts);
  const auto b = bisect(g, opts);
  EXPECT_EQ(a.side, b.side);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
}

TEST(Bisect, ExtraImbalanceAllowsLooserParts) {
  BisectionOptions opts;
  opts.extra_imbalance = 2;
  const auto result = bisect(path_graph(9), opts);
  const auto big = std::max(result.part_sizes[0], result.part_sizes[1]);
  EXPECT_LE(big, 7u);
  EXPECT_EQ(result.cut_edges, 1u);
}

TEST(Bisect, SingleLevelModeAlsoWorks) {
  BisectionOptions opts;
  opts.multilevel = false;
  EXPECT_EQ(bisection_width(cycle_graph(16), opts), 2u);
}

// --- Agreement with the paper's closed forms on regular arrangements --------

TEST(BisectVsFormula, RegularGridEvenSide) {
  // sqrt(N) even: a straight cut across the middle is balanced and optimal.
  for (std::size_t side : {2u, 4u, 6u, 8u}) {
    const auto arr = hm::core::make_grid_regular(side);
    EXPECT_EQ(bisection_width(arr.graph()), side)
        << "grid side=" << side;
  }
}

TEST(BisectVsFormula, RegularBrickwallEvenSide) {
  // B_BW(N) = 2*sqrt(N) - 1.
  for (std::size_t side : {2u, 4u, 6u, 8u}) {
    const auto arr = hm::core::make_brickwall_regular(side);
    EXPECT_EQ(bisection_width(arr.graph()), 2 * side - 1)
        << "brickwall side=" << side;
  }
}

TEST(BisectVsFormula, RegularHexamesh) {
  // B_HM(N) = (2/3)sqrt(12N-3) - 1 = 4r + 1 for N = 1 + 3r(r+1).
  for (std::size_t rings : {1u, 2u, 3u, 4u}) {
    const auto arr = hm::core::make_hexamesh_regular(rings);
    const auto expected = static_cast<std::size_t>(hm::core::hexamesh_bisection(
        arr.chiplet_count()));
    EXPECT_EQ(bisection_width(arr.graph()), expected)
        << "hexamesh rings=" << rings;
  }
}

TEST(BisectVsFormula, HeuristicNeverBeatsOptimalOnOddGrid) {
  // For odd sides the closed form describes an unbalanced straight cut; the
  // balanced heuristic cut can only be >= that.
  for (std::size_t side : {3u, 5u, 7u}) {
    const auto arr = hm::core::make_grid_regular(side);
    EXPECT_GE(bisection_width(arr.graph()), side);
  }
}

TEST(Bisect, MoreStartsNeverWorse) {
  const auto arr = hm::core::make_hexamesh(50);
  BisectionOptions few;
  few.num_starts = 1;
  BisectionOptions many;
  many.num_starts = 16;
  EXPECT_LE(bisection_width(arr.graph(), many),
            bisection_width(arr.graph(), few));
}

}  // namespace
