// Tests for the closed-form proxies of Sec. IV-D: the formulas must agree
// with BFS-computed diameters on regular arrangements, and the asymptotic
// ratios must match the paper's headline claims (-42% diameter, +130%
// bisection bandwidth).
#include <gtest/gtest.h>

#include "core/brickwall.hpp"
#include "core/grid.hpp"
#include "core/hexamesh.hpp"
#include "core/proxies.hpp"
#include "graph/algorithms.hpp"

namespace {

using namespace hm::core;

TEST(Proxies, GridDiameterFormulaMatchesBfs) {
  for (std::size_t side = 2; side <= 10; ++side) {
    const auto arr = make_grid_regular(side);
    EXPECT_DOUBLE_EQ(grid_diameter(arr.chiplet_count()),
                     hm::graph::diameter(arr.graph()))
        << "side=" << side;
  }
}

TEST(Proxies, BrickwallDiameterFormulaMatchesBfs) {
  for (std::size_t side = 2; side <= 10; ++side) {
    const auto arr = make_brickwall_regular(side);
    EXPECT_DOUBLE_EQ(brickwall_diameter(arr.chiplet_count()),
                     hm::graph::diameter(arr.graph()))
        << "side=" << side;
  }
}

TEST(Proxies, HexameshDiameterFormulaMatchesBfs) {
  for (std::size_t rings = 1; rings <= 6; ++rings) {
    const auto arr = make_hexamesh_regular(rings);
    EXPECT_NEAR(hexamesh_diameter(arr.chiplet_count()),
                hm::graph::diameter(arr.graph()), 1e-9)
        << "rings=" << rings;
  }
}

TEST(Proxies, HexameshBisectionIsFourRPlusOne) {
  for (std::size_t r = 1; r <= 5; ++r) {
    const std::size_t n = hexamesh_chiplet_count(r);
    EXPECT_NEAR(hexamesh_bisection(n), 4.0 * static_cast<double>(r) + 1.0,
                1e-9);
  }
}

TEST(Proxies, GridBisectionIsSqrtN) {
  EXPECT_DOUBLE_EQ(grid_bisection(100), 10.0);
  EXPECT_DOUBLE_EQ(grid_bisection(64), 8.0);
}

TEST(Proxies, BrickwallBisection) {
  EXPECT_DOUBLE_EQ(brickwall_bisection(100), 19.0);
}

TEST(Proxies, OrderingGridLtBrickwallLtHexamesh) {
  // For every N, diameter: HM < BW < G; bisection: HM > BW > G.
  for (std::size_t n : {25u, 49u, 64u, 100u}) {
    EXPECT_LT(hexamesh_diameter(n), brickwall_diameter(n));
    EXPECT_LT(brickwall_diameter(n), grid_diameter(n));
    EXPECT_GT(hexamesh_bisection(n), brickwall_bisection(n));
    EXPECT_GT(brickwall_bisection(n), grid_bisection(n));
  }
}

TEST(Proxies, AsymptoticDiameterRatios) {
  EXPECT_DOUBLE_EQ(asymptotic_diameter_ratio_bw(), 0.75);
  EXPECT_NEAR(asymptotic_diameter_ratio_hm(), 0.5774, 1e-4);
  // The abstract's "-42%" claim.
  EXPECT_NEAR(1.0 - asymptotic_diameter_ratio_hm(), 0.42, 0.005);
}

TEST(Proxies, AsymptoticBisectionRatios) {
  EXPECT_DOUBLE_EQ(asymptotic_bisection_ratio_bw(), 2.0);
  // The abstract's "+130%" claim (4/sqrt(3) = 2.309...).
  EXPECT_NEAR(asymptotic_bisection_ratio_hm() - 1.0, 1.30, 0.01);
}

TEST(Proxies, RatiosConvergeToAsymptotes) {
  // The -1/-2 terms vanish as O(1/sqrt(N)); at N = 10^6 the ratios are
  // within ~2e-3 of their limits.
  const std::size_t big = 1000000;
  EXPECT_NEAR(brickwall_diameter(big) / grid_diameter(big),
              asymptotic_diameter_ratio_bw(), 5e-3);
  EXPECT_NEAR(hexamesh_diameter(big) / grid_diameter(big),
              asymptotic_diameter_ratio_hm(), 5e-3);
  EXPECT_NEAR(brickwall_bisection(big) / grid_bisection(big),
              asymptotic_bisection_ratio_bw(), 5e-3);
  EXPECT_NEAR(hexamesh_bisection(big) / grid_bisection(big),
              asymptotic_bisection_ratio_hm(), 5e-3);
}

TEST(Proxies, DispatchMatchesSpecificFormulas) {
  EXPECT_DOUBLE_EQ(analytic_diameter(ArrangementType::kGrid, 49),
                   grid_diameter(49));
  EXPECT_DOUBLE_EQ(analytic_diameter(ArrangementType::kHoneycomb, 49),
                   brickwall_diameter(49));
  EXPECT_DOUBLE_EQ(analytic_bisection(ArrangementType::kHexaMesh, 37),
                   hexamesh_bisection(37));
}

TEST(Proxies, MaxAvgNeighborsBound) {
  EXPECT_NEAR(max_avg_neighbors(12), 5.0, 1e-12);
  // Honeycomb/brickwall approaches 6 from below.
  const auto arr = make_brickwall_regular(12);
  EXPECT_LT(arr.neighbor_stats().avg, max_avg_neighbors(144));
}

TEST(Proxies, InvalidNRejected) {
  EXPECT_THROW((void)grid_diameter(0), std::invalid_argument);
  EXPECT_THROW((void)hexamesh_bisection(0), std::invalid_argument);
}

}  // namespace
