// Pins the two perf contracts of the skip-idle/active-set work:
//
//  1. Active-set stepping (SimConfig::skip_idle, the default) is an
//     optimization, never a behavior change: measurement results and flit
//     accounting are bit-identical to the dense reference sweep across
//     routing modes, seeds and traffic patterns — including the quiescence
//     fast-forward (which must actually engage at low load).
//  2. The surrogate-bracketed saturation search returns exactly the plain
//     bisection's rate (it probes the same dyadic grid), within a bounded
//     probe budget when the analytic estimate is wired in.
//
// Plus: Network::reset() clears the active-set state (the arena recycles
// networks through reset(); stale worklists would violate the skip-mode
// flag-exactness invariants and resurrect ghost work).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/arrangement.hpp"
#include "core/evaluator.hpp"
#include "noc/network.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"

namespace {

using hm::core::ArrangementType;
using hm::core::make_arrangement;
using hm::noc::Cycle;
using hm::noc::Network;
using hm::noc::Packet;
using hm::noc::RoutingMode;
using hm::noc::SimConfig;
using hm::noc::Simulator;
using hm::noc::TrafficPattern;
using hm::noc::TrafficSpec;

TrafficSpec hotspot_spec() {
  TrafficSpec spec;
  spec.pattern = TrafficPattern::kHotspot;
  spec.hotspot_fraction = 0.3;
  spec.hotspots = {0, 3};
  return spec;
}

/// One full measurement pass (latency run then throughput run on the same
/// Simulator, like evaluate() does) with everything observable captured.
struct RunObservation {
  hm::noc::LatencyResult latency;
  hm::noc::ThroughputResult throughput;
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_ejected = 0;
  std::uint64_t idle_skipped = 0;
};

RunObservation observe(const SimConfig& cfg, const TrafficSpec& traffic) {
  const auto arr = make_arrangement(ArrangementType::kGrid, 9);
  Simulator sim(arr.graph(), cfg);
  sim.set_traffic(traffic);
  RunObservation obs;
  obs.latency = sim.run_latency(0.05, 200, 500, 30000);
  obs.throughput = sim.run_throughput(0.3, 300, 300);
  obs.flits_injected = sim.network().total_flits_injected();
  obs.flits_ejected = sim.network().total_flits_ejected();
  obs.idle_skipped = sim.idle_skipped_cycles();
  std::string why;
  EXPECT_TRUE(sim.network().invariants_ok(&why)) << why;
  return obs;
}

TEST(ActiveSet, BitIdenticalToDenseAcrossModesSeedsAndTraffic) {
  const RoutingMode modes[] = {RoutingMode::kMinimalAdaptive,
                               RoutingMode::kDeterministicMinimal,
                               RoutingMode::kUpDownOnly};
  const TrafficSpec traffics[] = {TrafficSpec{}, hotspot_spec()};
  for (const RoutingMode mode : modes) {
    for (const unsigned long long seed : {7ull, 42ull, 1234ull}) {
      for (const TrafficSpec& traffic : traffics) {
        SimConfig cfg;
        cfg.routing = mode;
        cfg.seed = seed;
        cfg.skip_idle = true;
        const RunObservation active = observe(cfg, traffic);
        cfg.skip_idle = false;
        const RunObservation dense = observe(cfg, traffic);

        const std::string ctx =
            "mode=" + std::to_string(static_cast<int>(mode)) +
            " seed=" + std::to_string(seed) + " hotspot=" +
            std::to_string(traffic.pattern == TrafficPattern::kHotspot);
        EXPECT_EQ(active.latency.avg_packet_latency,
                  dense.latency.avg_packet_latency) << ctx;
        EXPECT_EQ(active.latency.packets_measured,
                  dense.latency.packets_measured) << ctx;
        EXPECT_EQ(active.latency.drained, dense.latency.drained) << ctx;
        EXPECT_EQ(active.throughput.accepted_flit_rate,
                  dense.throughput.accepted_flit_rate) << ctx;
        EXPECT_EQ(active.throughput.generated_flit_rate,
                  dense.throughput.generated_flit_rate) << ctx;
        EXPECT_EQ(active.throughput.dropped_packets,
                  dense.throughput.dropped_packets) << ctx;
        EXPECT_EQ(active.flits_injected, dense.flits_injected) << ctx;
        EXPECT_EQ(active.flits_ejected, dense.flits_ejected) << ctx;
        // The optimization must actually optimize: dense mode never
        // fast-forwards, active mode must have skipped something during
        // the low-load latency phase.
        EXPECT_EQ(dense.idle_skipped, 0u) << ctx;
        EXPECT_GT(active.idle_skipped, 0u) << ctx;
      }
    }
  }
}

TEST(ActiveSet, ResetClearsActiveSetState) {
  const auto arr = make_arrangement(ArrangementType::kGrid, 9);
  SimConfig cfg;  // skip_idle on
  Network fresh(arr.graph(), cfg);
  Network recycled(arr.graph(), cfg);

  // Leave `recycled` mid-flight: queued packets, buffered flits, in-flight
  // link traffic — every worklist populated.
  hm::noc::UniformRandomTraffic traffic(recycled.num_endpoints(), 0.4,
                                        cfg.packet_length);
  hm::noc::Rng rng(3);
  for (Cycle now = 0; now < 120; ++now) {
    for (std::size_t e = 0; e < recycled.num_endpoints(); ++e) {
      auto p = traffic.maybe_generate(static_cast<std::uint16_t>(e), now, rng);
      if (p.has_value()) (void)recycled.offer_packet(e, *p);
    }
    recycled.step(now);
  }
  ASSERT_FALSE(recycled.quiescent());

  recycled.reset();
  // Quiescent again (in skip-idle mode that IS "all worklists empty"), with
  // the flag-exactness invariants intact.
  EXPECT_TRUE(recycled.quiescent());
  std::string why;
  EXPECT_TRUE(recycled.invariants_ok(&why)) << why;

  // And behaviorally indistinguishable from a freshly built network: the
  // same offered traffic produces the same flit accounting cycle for cycle.
  hm::noc::UniformRandomTraffic replay_a(fresh.num_endpoints(), 0.4,
                                         cfg.packet_length);
  hm::noc::UniformRandomTraffic replay_b(fresh.num_endpoints(), 0.4,
                                         cfg.packet_length);
  hm::noc::Rng rng_a(11);
  hm::noc::Rng rng_b(11);
  for (Cycle now = 0; now < 400; ++now) {
    for (std::size_t e = 0; e < fresh.num_endpoints(); ++e) {
      auto pa = replay_a.maybe_generate(static_cast<std::uint16_t>(e), now,
                                        rng_a);
      auto pb = replay_b.maybe_generate(static_cast<std::uint16_t>(e), now,
                                        rng_b);
      ASSERT_EQ(pa.has_value(), pb.has_value());
      if (pa.has_value()) {
        ASSERT_EQ(fresh.offer_packet(e, *pa), recycled.offer_packet(e, *pb));
      }
    }
    fresh.step(now);
    recycled.step(now);
  }
  EXPECT_EQ(fresh.total_flits_injected(), recycled.total_flits_injected());
  EXPECT_EQ(fresh.total_flits_ejected(), recycled.total_flits_ejected());
  EXPECT_GT(fresh.total_flits_ejected(), 0u);
}

/// Short-window saturation search options every surrogate test shares.
hm::noc::SaturationSearchOptions fast_search() {
  hm::noc::SaturationSearchOptions opts;
  opts.warmup = 400;
  opts.measure = 400;
  return opts;
}

TEST(SurrogateSearch, SameRateAsPlainBisectionForAnyEstimate) {
  const auto arr = make_arrangement(ArrangementType::kHexaMesh, 19);
  const auto topo = hm::noc::TopologyContext::acquire(arr.graph());
  const SimConfig cfg;
  const auto opts = fast_search();

  const auto plain = hm::noc::find_saturation(topo, cfg, opts);
  ASSERT_GT(plain.saturation_flit_rate, 0.0);

  // Any estimate — spot-on, too low, too high, or at either boundary —
  // must land on the same grid point with the same accepted rate.
  for (const double estimate :
       {plain.saturation_flit_rate, 0.0, 0.05, 0.3, 0.9, 1.0}) {
    auto sopts = opts;
    sopts.surrogate_rate = estimate;
    const auto pruned = hm::noc::find_saturation(topo, cfg, sopts);
    EXPECT_EQ(pruned.saturation_flit_rate, plain.saturation_flit_rate)
        << "estimate=" << estimate;
    EXPECT_EQ(pruned.accepted_flit_rate, plain.accepted_flit_rate)
        << "estimate=" << estimate;
  }
}

TEST(SurrogateSearch, ProbeBudgetBounded) {
  const auto arr = make_arrangement(ArrangementType::kHexaMesh, 19);
  const auto topo = hm::noc::TopologyContext::acquire(arr.graph());
  const SimConfig cfg;
  const auto opts = fast_search();
  const auto plain = hm::noc::find_saturation(topo, cfg, opts);

  // A spot-on estimate needs just the bracket check: stable at k0,
  // unstable one grid step up.
  auto exact = opts;
  exact.surrogate_rate = plain.saturation_flit_rate;
  const auto best_case = hm::noc::find_saturation(topo, cfg, exact);
  EXPECT_LE(best_case.probes, 4);

  // The analytic estimate evaluate() wires in (core/evaluator.cpp) must
  // keep the budget at <= 6 probes — the acceptance bound — versus
  // iterations + 1 == 7 minimum for the plain bisection.
  const hm::core::EvaluationParams eval_params;
  auto seeded = opts;
  seeded.surrogate_rate = hm::core::analytic_saturation_estimate(
      hm::core::evaluate_analytic(arr, eval_params), eval_params);
  const auto pruned = hm::noc::find_saturation(topo, cfg, seeded);
  EXPECT_EQ(pruned.saturation_flit_rate, plain.saturation_flit_rate);
  EXPECT_LE(pruned.probes, 6);
  EXPECT_LT(pruned.probes, plain.probes);
}

}  // namespace
