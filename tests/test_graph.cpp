// Unit tests for the graph substrate: construction, degrees, BFS,
// diameter/average distance, connectivity and the planar bound.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

namespace {

using hm::graph::Graph;
using hm::graph::NodeId;

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle_graph(std::size_t n) {
  Graph g = path_graph(n);
  g.add_edge(0, static_cast<NodeId>(n - 1));
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

// --- Graph construction ------------------------------------------------------

TEST(Graph, EmptyGraphHasNoNodesOrEdges) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, ConstructorCreatesIsolatedVertices) {
  Graph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.min_degree(), 0u);
}

TEST(Graph, AddNodeReturnsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.add_node(), 2u);
  EXPECT_EQ(g.node_count(), 3u);
}

TEST(Graph, AddEdgeCreatesSymmetricAdjacency) {
  Graph g(3);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, NeighborsAreSorted) {
  Graph g(4);
  g.add_edge(2, 3);
  g.add_edge(2, 0);
  g.add_edge(2, 1);
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, DuplicateEdgeRejected) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
}

TEST(Graph, OutOfRangeEndpointRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW((void)g.degree(5), std::out_of_range);
  EXPECT_THROW((void)g.neighbors(2), std::out_of_range);
}

TEST(Graph, DegreeStatistics) {
  Graph g = path_graph(4);  // degrees 1,2,2,1
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 2.0 * 3 / 4);
}

TEST(Graph, EdgesListSortedAndComplete) {
  Graph g(3);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(NodeId{0}, NodeId{2}));
  EXPECT_EQ(edges[1], std::make_pair(NodeId{1}, NodeId{2}));
}

TEST(Graph, ToStringSummarizes) {
  Graph g = cycle_graph(4);
  EXPECT_EQ(g.to_string(), "Graph(v=4, e=4)");
}

// --- BFS ---------------------------------------------------------------------

TEST(Bfs, DistancesOnPath) {
  Graph g = path_graph(5);
  const auto dist = hm::graph::bfs_distances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(Bfs, DistancesFromMiddle) {
  Graph g = path_graph(5);
  const auto dist = hm::graph::bfs_distances(g, 2);
  EXPECT_EQ(dist[0], 2);
  EXPECT_EQ(dist[4], 2);
  EXPECT_EQ(dist[2], 0);
}

TEST(Bfs, UnreachableMarked) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto dist = hm::graph::bfs_distances(g, 0);
  EXPECT_EQ(dist[2], hm::graph::kUnreachable);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW((void)hm::graph::bfs_distances(g, 7), std::out_of_range);
}

// --- Diameter / eccentricity -------------------------------------------------

TEST(Diameter, PathGraph) {
  EXPECT_EQ(hm::graph::diameter(path_graph(10)), 9);
}

TEST(Diameter, CycleGraph) {
  EXPECT_EQ(hm::graph::diameter(cycle_graph(10)), 5);
  EXPECT_EQ(hm::graph::diameter(cycle_graph(11)), 5);
}

TEST(Diameter, CompleteGraph) {
  EXPECT_EQ(hm::graph::diameter(complete_graph(6)), 1);
}

TEST(Diameter, GridGraphMatchesManhattan) {
  // k x k mesh diameter = 2(k-1).
  EXPECT_EQ(hm::graph::diameter(grid_graph(4, 4)), 6);
  EXPECT_EQ(hm::graph::diameter(grid_graph(5, 3)), 6);
}

TEST(Diameter, SingleVertexIsZero) {
  EXPECT_EQ(hm::graph::diameter(Graph(1)), 0);
}

TEST(Diameter, DisconnectedThrows) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW((void)hm::graph::diameter(g), std::invalid_argument);
}

TEST(Eccentricity, CenterOfPath) {
  EXPECT_EQ(hm::graph::eccentricity(path_graph(5), 2), 2);
  EXPECT_EQ(hm::graph::eccentricity(path_graph(5), 0), 4);
}

// --- Average distance --------------------------------------------------------

TEST(AverageDistance, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(hm::graph::average_distance(complete_graph(5)), 1.0);
}

TEST(AverageDistance, PathOfThree) {
  // Pairs: (0,1)=1 (0,2)=2 (1,2)=1 -> mean = 4/3.
  EXPECT_NEAR(hm::graph::average_distance(path_graph(3)), 4.0 / 3.0, 1e-12);
}

TEST(AverageDistance, SingleVertexIsZero) {
  EXPECT_DOUBLE_EQ(hm::graph::average_distance(Graph(1)), 0.0);
}

// --- Connectivity ------------------------------------------------------------

TEST(Connectivity, ConnectedGraph) {
  EXPECT_TRUE(hm::graph::is_connected(cycle_graph(7)));
}

TEST(Connectivity, DisconnectedGraph) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(hm::graph::is_connected(g));
}

TEST(Connectivity, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(hm::graph::is_connected(Graph(0)));
  EXPECT_TRUE(hm::graph::is_connected(Graph(1)));
}

// --- Planar bound ------------------------------------------------------------

TEST(PlanarBound, GridSatisfies) {
  EXPECT_TRUE(hm::graph::satisfies_planar_bound(grid_graph(5, 5)));
}

TEST(PlanarBound, K5Violates) {
  EXPECT_FALSE(hm::graph::satisfies_planar_bound(complete_graph(5)));
}

TEST(PlanarBound, SmallGraphsVacuouslyTrue) {
  EXPECT_TRUE(hm::graph::satisfies_planar_bound(complete_graph(2)));
}

TEST(PlanarBound, AvgDegreeBoundFormula) {
  EXPECT_NEAR(hm::graph::planar_avg_degree_bound(12), 6.0 - 1.0, 1e-12);
  EXPECT_THROW((void)hm::graph::planar_avg_degree_bound(2),
               std::invalid_argument);
}

// --- All-pairs & histogram ---------------------------------------------------

TEST(AllPairs, MatchesSingleSourceBfs) {
  Graph g = grid_graph(3, 4);
  const auto all = hm::graph::all_pairs_distances(g);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(all[v], hm::graph::bfs_distances(g, v));
  }
}

TEST(DistanceHistogram, PathOfThree) {
  const auto hist = hm::graph::distance_histogram(path_graph(3));
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 3u);  // self pairs
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(Bridges, PathCycleAndBarbell) {
  // Every edge of a path is a bridge; no edge of a cycle is.
  const auto path_bridges = hm::graph::bridges(path_graph(6));
  EXPECT_EQ(path_bridges.size(), 5u);
  EXPECT_TRUE(hm::graph::bridges(cycle_graph(6)).empty());

  // Two triangles joined by one edge: exactly that edge is a bridge.
  Graph barbell(6);
  barbell.add_edge(0, 1);
  barbell.add_edge(1, 2);
  barbell.add_edge(0, 2);
  barbell.add_edge(3, 4);
  barbell.add_edge(4, 5);
  barbell.add_edge(3, 5);
  barbell.add_edge(2, 3);
  const auto bb = hm::graph::bridges(barbell);
  ASSERT_EQ(bb.size(), 1u);
  EXPECT_EQ(bb[0], (std::pair<NodeId, NodeId>{2, 3}));

  // Disconnected graphs are handled per component.
  Graph two_paths(5);
  two_paths.add_edge(0, 1);
  two_paths.add_edge(3, 4);
  EXPECT_EQ(hm::graph::bridges(two_paths).size(), 2u);
  EXPECT_TRUE(hm::graph::bridges(Graph(3)).empty());
}

TEST(Bridges, AgreesWithPerEdgeConnectivityCheck) {
  // Cross-check the low-link pass against the O(e * (v + e)) definition on
  // an irregular mesh-with-appendages graph.
  Graph g = cycle_graph(8);
  g.add_edge(0, 4);   // chord
  g.add_edge(2, 6);   // chord
  NodeId tail = 8;    // dangling path 0-8-9
  g.add_node();
  g.add_node();
  g.add_edge(0, tail);
  g.add_edge(tail, 9);
  std::vector<std::pair<NodeId, NodeId>> expected;
  for (const auto& e : g.edges()) {
    Graph h = g;
    h.remove_edge(e.first, e.second);
    if (!hm::graph::is_connected(h)) expected.push_back(e);
  }
  EXPECT_EQ(hm::graph::bridges(g), expected);
}

TEST(DistanceHistogram, SumsToAllPairs) {
  Graph g = grid_graph(4, 4);
  const auto hist = hm::graph::distance_histogram(g);
  std::size_t total = 0;
  for (std::size_t c : hist) total += c;
  EXPECT_EQ(total, 16u * 17u / 2u);  // unordered pairs incl. self
}

}  // namespace
