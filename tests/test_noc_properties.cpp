// Property tests for the NoC under stress: forward progress at full
// injection (deadlock freedom via the escape network), conservation,
// invariants, bisection-bound sanity of measured throughput, and latency
// monotonicity in offered load.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/arrangement.hpp"
#include "core/brickwall.hpp"
#include "core/grid.hpp"
#include "core/hexamesh.hpp"
#include "core/proxies.hpp"
#include "graph/algorithms.hpp"
#include "noc/simulator.hpp"
#include "partition/partitioner.hpp"

namespace {

using hm::core::ArrangementType;
using hm::core::make_arrangement;
using hm::noc::RoutingMode;
using hm::noc::SimConfig;
using hm::noc::Simulator;

class SaturationTest
    : public ::testing::TestWithParam<std::tuple<ArrangementType, int>> {};

TEST_P(SaturationTest, FullInjectionMakesForwardProgress) {
  const auto [type, n] = GetParam();
  const auto arr = make_arrangement(type, static_cast<std::size_t>(n));
  SimConfig cfg;
  cfg.seed = 9;
  Simulator sim(arr.graph(), cfg);
  const auto result = sim.run_throughput(1.0, 3000, 3000);
  // Deadlock would show up as (near-)zero accepted throughput.
  EXPECT_GT(result.accepted_flit_rate, 0.01) << arr.name();
  EXPECT_LE(result.accepted_flit_rate, 1.0);
  std::string why;
  EXPECT_TRUE(sim.network().invariants_ok(&why)) << why;
}

TEST_P(SaturationTest, ThroughputRespectsBisectionBound) {
  // Uniform traffic channel-load bound: flits from endpoint half A to half B
  // (rate lambda * |A| * |B| / (T-1) per cycle) must fit through the `cut`
  // directed channels of the bisection, so
  //   lambda <= cut * (T-1) / (|A| * |B|).
  const auto [type, n] = GetParam();
  const auto arr = make_arrangement(type, static_cast<std::size_t>(n));
  if (arr.chiplet_count() < 9) GTEST_SKIP() << "bound too loose for tiny N";
  SimConfig cfg;
  cfg.seed = 10;
  Simulator sim(arr.graph(), cfg);
  const auto result = sim.run_throughput(1.0, 4000, 4000);
  const auto bisection = hm::partition::bisect(arr.graph());
  const double cut = static_cast<double>(bisection.cut_edges);
  const double total = static_cast<double>(2 * arr.chiplet_count());
  const double half_a = static_cast<double>(2 * bisection.part_sizes[0]);
  const double half_b = static_cast<double>(2 * bisection.part_sizes[1]);
  const double bound = cut * (total - 1.0) / (half_a * half_b);
  // 1.1 slack: finite measurement windows drain warmup-buffered flits.
  EXPECT_LE(result.accepted_flit_rate, std::min(1.0, bound) * 1.1)
      << arr.name();
}

INSTANTIATE_TEST_SUITE_P(
    Arrangements, SaturationTest,
    ::testing::Combine(::testing::Values(ArrangementType::kGrid,
                                         ArrangementType::kBrickwall,
                                         ArrangementType::kHexaMesh),
                       ::testing::Values(4, 9, 13, 19, 25)),
    [](const auto& info) {
      return hm::core::to_string(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Deadlock, UpDownOnlyModeAlsoProgresses) {
  const auto arr = hm::core::make_hexamesh(19);
  SimConfig cfg;
  cfg.routing = RoutingMode::kUpDownOnly;
  Simulator sim(arr.graph(), cfg);
  const auto result = sim.run_throughput(1.0, 3000, 3000);
  EXPECT_GT(result.accepted_flit_rate, 0.01);
}

TEST(Deadlock, SingleVcEscapeOnlyProgresses) {
  // With one VC, all packets ride the escape network; progress must hold.
  const auto arr = hm::core::make_grid(16);
  SimConfig cfg;
  cfg.vcs = 1;
  cfg.buffer_depth = 4;
  Simulator sim(arr.graph(), cfg);
  const auto result = sim.run_throughput(1.0, 3000, 3000);
  EXPECT_GT(result.accepted_flit_rate, 0.005);
}

TEST(Deadlock, LongSaturationRunStaysLive) {
  const auto arr = hm::core::make_hexamesh(37);
  SimConfig cfg;
  cfg.seed = 77;
  Simulator sim(arr.graph(), cfg);
  const auto first = sim.run_throughput(1.0, 5000, 5000);
  // Continue measuring on the same (already saturated) network.
  const auto second = sim.run_throughput(1.0, 0, 5000);
  EXPECT_GT(second.accepted_flit_rate, 0.5 * first.accepted_flit_rate);
}

TEST(Latency, MonotoneInOfferedLoad) {
  const auto arr = hm::core::make_grid(16);
  SimConfig cfg;
  Simulator low(arr.graph(), cfg);
  Simulator mid(arr.graph(), cfg);
  const double lat_low = low.run_latency(0.01, 1000, 4000).avg_packet_latency;
  const double lat_mid = mid.run_latency(0.06, 1000, 4000).avg_packet_latency;
  EXPECT_LT(lat_low, lat_mid * 1.02);  // small slack for sampling noise
}

TEST(Latency, ZeroLoadTracksAverageHopDistance) {
  // Zero-load latency ~= hops * (router + link latency) + constant; check
  // within 15% using the analytic per-hop cost.
  const auto arr = hm::core::make_hexamesh(19);
  SimConfig cfg;
  Simulator sim(arr.graph(), cfg);
  const auto result = sim.run_latency(0.01, 1000, 6000);
  ASSERT_TRUE(result.drained);

  // Average router-to-router hops for uniform endpoint traffic: weight 0-hop
  // (same chiplet) pairs too.
  const auto& g = arr.graph();
  const double n = static_cast<double>(g.node_count());
  double total = 0.0;
  for (hm::graph::NodeId u = 0; u < g.node_count(); ++u) {
    for (hm::graph::NodeId v = 0; v < g.node_count(); ++v) {
      // endpoint pairs per router pair: 2x2, minus self pairs handled below
      total += hm::graph::bfs_distances(g, u)[v];
    }
  }
  // 4 endpoint pairs per (u,v); self-traffic excluded: 2 same-chiplet pairs
  // per router have distance 0 anyway.
  const double pairs = 4.0 * n * n - 2.0 * n;
  const double avg_hops = 4.0 * total / pairs;
  const double per_hop = cfg.router_latency + cfg.link_latency;
  const double predicted = 1.0 + avg_hops * per_hop + cfg.router_latency +
                           cfg.ejection_link_latency +
                           (cfg.packet_length - 1);
  EXPECT_NEAR(result.avg_packet_latency, predicted, 0.15 * predicted);
}

TEST(Throughput, HigherVcCountHelpsUnderLongLinks) {
  // Credit round-trip (2*27+) far exceeds the 8-flit buffer, so a single VC
  // cannot keep a link busy; more VCs must increase accepted throughput.
  const auto arr = hm::core::make_grid(9);
  SimConfig one;
  one.vcs = 2;
  SimConfig eight;
  eight.vcs = 8;
  Simulator s1(arr.graph(), one);
  Simulator s8(arr.graph(), eight);
  const double t1 = s1.run_throughput(1.0, 3000, 3000).accepted_flit_rate;
  const double t8 = s8.run_throughput(1.0, 3000, 3000).accepted_flit_rate;
  EXPECT_GT(t8, t1);
}

TEST(Determinism, IdenticalSeedsIdenticalResults) {
  const auto arr = hm::core::make_brickwall(16);
  SimConfig cfg;
  cfg.seed = 123;
  Simulator a(arr.graph(), cfg);
  Simulator b(arr.graph(), cfg);
  const auto ra = a.run_throughput(1.0, 2000, 2000);
  const auto rb = b.run_throughput(1.0, 2000, 2000);
  EXPECT_DOUBLE_EQ(ra.accepted_flit_rate, rb.accepted_flit_rate);
}

TEST(Determinism, DifferentSeedsSimilarThroughput) {
  const auto arr = hm::core::make_grid(16);
  SimConfig a;
  a.seed = 1;
  SimConfig b;
  b.seed = 2;
  Simulator sa(arr.graph(), a);
  Simulator sb(arr.graph(), b);
  // Long windows: the overdriven regime is chaotic, and short measurement
  // windows leave enough variance for unlucky seed pairs to sit at the two
  // extremes of the scatter and trip the tolerance.
  const double ta = sa.run_throughput(1.0, 8000, 16000).accepted_flit_rate;
  const double tb = sb.run_throughput(1.0, 8000, 16000).accepted_flit_rate;
  EXPECT_NEAR(ta, tb, 0.15 * std::max(ta, tb));
}

}  // namespace
