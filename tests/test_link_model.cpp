// Tests for the D2D link bandwidth model (Sec. V) with the paper's UCIe
// parameters (Sec. VI-B), plus monotonicity and clamping properties.
#include <gtest/gtest.h>

#include "core/link_model.hpp"
#include "core/shape.hpp"

namespace {

using namespace hm::core;

TEST(LinkModel, PaperDefaultsAreUcieValues) {
  EXPECT_DOUBLE_EQ(kDefaultTotalAreaMm2, 800.0);
  EXPECT_DOUBLE_EQ(kDefaultPowerFraction, 0.4);
  EXPECT_DOUBLE_EQ(kDefaultBumpPitchMm, 0.15);
  EXPECT_EQ(kDefaultNonDataWires, 12);
  EXPECT_DOUBLE_EQ(kDefaultFrequencyHz, 16e9);
}

TEST(LinkModel, BasicWireMath) {
  // A_B = 1.6 mm^2 (the Sec. IV-B example chiplet), P_B = 0.15 mm:
  // N_w = floor(1.6 / 0.0225) = 71, N_dw = 59, B = 59 * 16 GHz = 944 Gb/s.
  LinkModelParams p;
  p.link_area_mm2 = 1.6;
  const LinkEstimate e = estimate_link(p);
  EXPECT_EQ(e.total_wires, 71);
  EXPECT_EQ(e.data_wires, 59);
  EXPECT_DOUBLE_EQ(e.bandwidth_bps, 59.0 * 16e9);
}

TEST(LinkModel, GridChipletAt100Chiplets) {
  // A_C = 8 mm^2 -> grid A_B = 0.6*8/4 = 1.2 mm^2 -> N_w = 53, N_dw = 41.
  const ChipletShape s = solve_grid_shape({8.0, 0.4});
  LinkModelParams p;
  p.link_area_mm2 = s.link_sector_area;
  const LinkEstimate e = estimate_link(p);
  EXPECT_EQ(e.total_wires, 53);
  EXPECT_EQ(e.data_wires, 41);
  EXPECT_DOUBLE_EQ(e.bandwidth_bps, 41.0 * 16e9);
}

TEST(LinkModel, HexChipletHasFewerWiresPerLinkThanGrid) {
  // Same chiplet area: 6 sectors instead of 4 -> lower per-link bandwidth
  // (the effect the paper highlights in Sec. VI-C).
  const double grid_ab = solve_grid_shape({8.0, 0.4}).link_sector_area;
  const double hex_ab = solve_hex_shape({8.0, 0.4}).link_sector_area;
  LinkModelParams pg, ph;
  pg.link_area_mm2 = grid_ab;
  ph.link_area_mm2 = hex_ab;
  EXPECT_GT(estimate_link(pg).bandwidth_bps, estimate_link(ph).bandwidth_bps);
  EXPECT_NEAR(grid_ab / hex_ab, 1.5, 1e-12);
}

TEST(LinkModel, MicroBumpsBeatC4Bumps) {
  LinkModelParams c4, micro;
  c4.link_area_mm2 = micro.link_area_mm2 = 1.0;
  micro.bump_pitch_mm = kMicroBumpPitchMm;
  EXPECT_GT(estimate_link(micro).bandwidth_bps,
            estimate_link(c4).bandwidth_bps * 5.0);
}

TEST(LinkModel, NonDataWiresClampToZero) {
  LinkModelParams p;
  p.link_area_mm2 = 0.1;  // only 4 wires fit
  p.non_data_wires = 12;
  const LinkEstimate e = estimate_link(p);
  EXPECT_EQ(e.total_wires, 4);
  EXPECT_EQ(e.data_wires, 0);
  EXPECT_DOUBLE_EQ(e.bandwidth_bps, 0.0);
}

TEST(LinkModel, MonotoneInArea) {
  LinkModelParams a, b;
  a.link_area_mm2 = 1.0;
  b.link_area_mm2 = 2.0;
  EXPECT_LE(estimate_link(a).bandwidth_bps, estimate_link(b).bandwidth_bps);
}

TEST(LinkModel, MonotoneInPitch) {
  LinkModelParams a, b;
  a.link_area_mm2 = b.link_area_mm2 = 1.0;
  a.bump_pitch_mm = 0.15;
  b.bump_pitch_mm = 0.20;
  EXPECT_GE(estimate_link(a).bandwidth_bps, estimate_link(b).bandwidth_bps);
}

TEST(LinkModel, LinearInFrequency) {
  LinkModelParams a, b;
  a.link_area_mm2 = b.link_area_mm2 = 1.0;
  b.frequency_hz = 2.0 * a.frequency_hz;
  EXPECT_DOUBLE_EQ(estimate_link(b).bandwidth_bps,
                   2.0 * estimate_link(a).bandwidth_bps);
}

TEST(LinkModel, WireCountIsFloored) {
  LinkModelParams p;
  p.bump_pitch_mm = 1.0;
  p.link_area_mm2 = 3.999;
  EXPECT_EQ(estimate_link(p).total_wires, 3);
}

TEST(LinkModel, InvalidParamsRejected) {
  LinkModelParams p;
  p.link_area_mm2 = 0.0;
  EXPECT_THROW((void)estimate_link(p), std::invalid_argument);
  p.link_area_mm2 = 1.0;
  p.bump_pitch_mm = -0.1;
  EXPECT_THROW((void)estimate_link(p), std::invalid_argument);
  p.bump_pitch_mm = 0.15;
  p.non_data_wires = -1;
  EXPECT_THROW((void)estimate_link(p), std::invalid_argument);
  p.non_data_wires = 12;
  p.frequency_hz = 0.0;
  EXPECT_THROW((void)estimate_link(p), std::invalid_argument);
}

}  // namespace
