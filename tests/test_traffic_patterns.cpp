// Tests for the synthetic traffic patterns (hotspot, bit-complement,
// permutation) and their integration with the simulator.
#include <gtest/gtest.h>

#include <map>

#include "core/grid.hpp"
#include "core/hexamesh.hpp"
#include "noc/simulator.hpp"
#include "noc/traffic.hpp"

namespace {

using hm::noc::Rng;
using hm::noc::SyntheticTraffic;
using hm::noc::TrafficPattern;
using hm::noc::TrafficSpec;

TEST(SyntheticTraffic, UniformMatchesLegacyGenerator) {
  // Same pattern, same RNG stream -> identical packets.
  TrafficSpec spec;
  SyntheticTraffic synth(spec, 12, 0.4, 4);
  hm::noc::UniformRandomTraffic legacy(12, 0.4, 4);
  Rng ra(5), rb(5);
  for (hm::noc::Cycle t = 0; t < 5000; ++t) {
    auto a = synth.maybe_generate(3, t, ra);
    auto b = legacy.maybe_generate(3, t, rb);
    ASSERT_EQ(a.has_value(), b.has_value()) << t;
    if (a.has_value()) {
      EXPECT_EQ(a->dst_endpoint, b->dst_endpoint);
      EXPECT_EQ(a->length, b->length);
    }
  }
}

TEST(SyntheticTraffic, HotspotFractionRespected) {
  TrafficSpec spec;
  spec.pattern = TrafficPattern::kHotspot;
  spec.hotspot_fraction = 0.5;
  spec.hotspots = {2};
  SyntheticTraffic traffic(spec, 16, 1.0, 1);
  Rng rng(9);
  std::size_t total = 0, to_hotspot = 0;
  for (hm::noc::Cycle t = 0; t < 20000; ++t) {
    auto p = traffic.maybe_generate(7, t, rng);
    if (p.has_value()) {
      ++total;
      if (p->dst_endpoint == 2) ++to_hotspot;
    }
  }
  ASSERT_GT(total, 10000u);
  // 50% targeted + ~1/15 of the uniform rest also hits endpoint 2.
  const double expected = 0.5 + 0.5 / 15.0;
  EXPECT_NEAR(static_cast<double>(to_hotspot) / total, expected, 0.03);
}

TEST(SyntheticTraffic, HotspotDefaultsToEndpointZero) {
  TrafficSpec spec;
  spec.pattern = TrafficPattern::kHotspot;
  spec.hotspot_fraction = 1.0;
  SyntheticTraffic traffic(spec, 8, 1.0, 1);
  Rng rng(1);
  for (hm::noc::Cycle t = 0; t < 100; ++t) {
    auto p = traffic.maybe_generate(5, t, rng);
    if (p.has_value()) {
      EXPECT_EQ(p->dst_endpoint, 0u);
    }
  }
}

TEST(SyntheticTraffic, HotspotSelfTrafficSuppressed) {
  TrafficSpec spec;
  spec.pattern = TrafficPattern::kHotspot;
  spec.hotspot_fraction = 1.0;
  spec.hotspots = {4};
  SyntheticTraffic traffic(spec, 8, 1.0, 1);
  Rng rng(1);
  for (hm::noc::Cycle t = 0; t < 200; ++t) {
    // Source == hotspot: every draw maps to self and must be dropped.
    EXPECT_FALSE(traffic.maybe_generate(4, t, rng).has_value());
  }
}

TEST(SyntheticTraffic, BitComplementIsDeterministic) {
  TrafficSpec spec;
  spec.pattern = TrafficPattern::kBitComplement;
  SyntheticTraffic traffic(spec, 10, 1.0, 1);
  EXPECT_EQ(traffic.permutation_target(0), 9u);
  EXPECT_EQ(traffic.permutation_target(3), 6u);
  Rng rng(2);
  for (hm::noc::Cycle t = 0; t < 100; ++t) {
    auto p = traffic.maybe_generate(1, t, rng);
    if (p.has_value()) {
      EXPECT_EQ(p->dst_endpoint, 8u);
    }
  }
}

TEST(SyntheticTraffic, PermutationIsABijection) {
  TrafficSpec spec;
  spec.pattern = TrafficPattern::kPermutation;
  spec.permutation_seed = 11;
  SyntheticTraffic traffic(spec, 20, 1.0, 1);
  std::map<std::uint16_t, int> hits;
  for (std::uint16_t s = 0; s < 20; ++s) {
    ++hits[traffic.permutation_target(s)];
  }
  EXPECT_EQ(hits.size(), 20u);  // every endpoint hit exactly once
  for (const auto& [dst, count] : hits) EXPECT_EQ(count, 1);
}

TEST(SyntheticTraffic, PermutationSeedChangesMapping) {
  TrafficSpec a;
  a.pattern = TrafficPattern::kPermutation;
  a.permutation_seed = 1;
  TrafficSpec b = a;
  b.permutation_seed = 2;
  SyntheticTraffic ta(a, 32, 1.0, 1), tb(b, 32, 1.0, 1);
  int differing = 0;
  for (std::uint16_t s = 0; s < 32; ++s) {
    if (ta.permutation_target(s) != tb.permutation_target(s)) ++differing;
  }
  EXPECT_GT(differing, 16);
}

TEST(SyntheticTraffic, InvalidSpecsRejected) {
  TrafficSpec bad_frac;
  bad_frac.pattern = TrafficPattern::kHotspot;
  bad_frac.hotspot_fraction = 1.5;
  EXPECT_THROW(SyntheticTraffic(bad_frac, 8, 0.5, 1), std::invalid_argument);

  TrafficSpec bad_hotspot;
  bad_hotspot.pattern = TrafficPattern::kHotspot;
  bad_hotspot.hotspots = {99};
  EXPECT_THROW(SyntheticTraffic(bad_hotspot, 8, 0.5, 1),
               std::invalid_argument);

  EXPECT_THROW(SyntheticTraffic({}, 1, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(SyntheticTraffic({}, 8, 2.0, 1), std::invalid_argument);
}

TEST(SyntheticTraffic, PatternNames) {
  EXPECT_STREQ(hm::noc::to_string(TrafficPattern::kUniform), "uniform");
  EXPECT_STREQ(hm::noc::to_string(TrafficPattern::kHotspot), "hotspot");
  EXPECT_STREQ(hm::noc::to_string(TrafficPattern::kBitComplement),
               "bit-complement");
  EXPECT_STREQ(hm::noc::to_string(TrafficPattern::kPermutation),
               "permutation");
}

// --- Simulator integration ----------------------------------------------------

TEST(SimulatorTraffic, HotspotLowersSaturation) {
  // Concentrating 40% of traffic on two endpoints must saturate earlier
  // than uniform (ejection-port limited).
  const auto arr = hm::core::make_grid(16);
  hm::noc::SimConfig cfg;
  hm::noc::SaturationSearchOptions opts;
  opts.warmup = 3000;
  opts.measure = 3000;
  TrafficSpec hotspot;
  hotspot.pattern = TrafficPattern::kHotspot;
  hotspot.hotspot_fraction = 0.4;
  hotspot.hotspots = {0, 1};
  const auto uni = hm::noc::find_saturation(arr.graph(), cfg, opts);
  const auto hot = hm::noc::find_saturation(arr.graph(), cfg, opts, hotspot);
  EXPECT_LT(hot.accepted_flit_rate, uni.accepted_flit_rate);
}

TEST(SimulatorTraffic, PermutationDrainsAtLowLoad) {
  const auto arr = hm::core::make_hexamesh(19);
  hm::noc::SimConfig cfg;
  hm::noc::Simulator sim(arr.graph(), cfg);
  TrafficSpec spec;
  spec.pattern = TrafficPattern::kPermutation;
  sim.set_traffic(spec);
  const auto r = sim.run_latency(0.02, 1000, 4000);
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.packets_measured, 0u);
}

TEST(TrafficSpecValidate, RejectsHotspotFractionOutsideUnitInterval) {
  TrafficSpec spec;
  spec.pattern = TrafficPattern::kHotspot;
  spec.hotspot_fraction = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.hotspot_fraction = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  // The fraction is rejected even when the pattern is not (yet) hotspot:
  // a latent bad value must not wait for a pattern flip to explode.
  spec.pattern = TrafficPattern::kUniform;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.hotspot_fraction = 0.3;
  EXPECT_NO_THROW(spec.validate());
}

TEST(TrafficSpecValidate, RejectsHotspotEndpointOutOfRange) {
  TrafficSpec spec;
  spec.pattern = TrafficPattern::kHotspot;
  spec.hotspots = {0, 12};
  EXPECT_NO_THROW(spec.validate(13));
  EXPECT_THROW(spec.validate(12), std::invalid_argument);
  // Without an endpoint count the id check is deferred (but the spec is
  // otherwise checked).
  EXPECT_NO_THROW(spec.validate());
}

TEST(TrafficSpecValidate, SetTrafficRejectsAtConfigurationTime) {
  const auto arr = hm::core::make_grid(4);  // 8 endpoints
  hm::noc::SimConfig cfg;
  hm::noc::Simulator sim(arr.graph(), cfg);
  TrafficSpec bad;
  bad.pattern = TrafficPattern::kHotspot;
  bad.hotspots = {42};  // >= 8
  EXPECT_THROW(sim.set_traffic(bad), std::invalid_argument);
  bad.hotspots = {7};
  EXPECT_NO_THROW(sim.set_traffic(bad));
}

TEST(TrafficSpecValidate, FindSaturationRejectsBadSpec) {
  const auto arr = hm::core::make_grid(4);
  hm::noc::SimConfig cfg;
  hm::noc::SaturationSearchOptions opts;
  TrafficSpec bad;
  bad.pattern = TrafficPattern::kHotspot;
  bad.hotspot_fraction = 2.0;
  EXPECT_THROW(
      (void)hm::noc::find_saturation(arr.graph(), cfg, opts, bad),
      std::invalid_argument);
}

TEST(TrafficSpecValidate, SyntheticTrafficConstructorStillRejects) {
  TrafficSpec bad;
  bad.pattern = TrafficPattern::kHotspot;
  bad.hotspots = {9};
  EXPECT_THROW(SyntheticTraffic(bad, 8, 0.1, 4), std::invalid_argument);
}

TEST(TrafficSpecValidate, DescribeNamesThePattern) {
  TrafficSpec spec;
  EXPECT_EQ(spec.describe(), "uniform");
  spec.pattern = TrafficPattern::kHotspot;
  spec.hotspot_fraction = 0.25;
  spec.hotspots = {0, 1};
  EXPECT_EQ(spec.describe(), "hotspot(f=0.25,n=2)");
  spec.pattern = TrafficPattern::kPermutation;
  spec.permutation_seed = 7;
  EXPECT_EQ(spec.describe(), "permutation(seed=7)");
}

TEST(SimulatorTraffic, BitComplementStressesDiameter) {
  // Bit-complement pairs opposite corners; zero-load latency must exceed
  // the uniform average.
  const auto arr = hm::core::make_grid(16);
  hm::noc::SimConfig cfg;
  hm::noc::Simulator uni_sim(arr.graph(), cfg);
  hm::noc::Simulator bc_sim(arr.graph(), cfg);
  TrafficSpec bc;
  bc.pattern = TrafficPattern::kBitComplement;
  bc_sim.set_traffic(bc);
  const double uni = uni_sim.run_latency(0.01, 1000, 5000).avg_packet_latency;
  const double comp = bc_sim.run_latency(0.01, 1000, 5000).avg_packet_latency;
  EXPECT_GT(comp, uni);
}

}  // namespace
